// Package ptlsim_test is the benchmark harness regenerating every
// table and figure of the paper's evaluation (§5), plus ablation
// benchmarks for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers come from this reproduction's scaled workload; the
// comparisons that matter (who wins, in which direction, by what
// order) are reported as benchmark metrics. EXPERIMENTS.md records a
// reference run paired with the paper's published values.
package ptlsim_test

import (
	"strings"
	"testing"

	"ptlsim/internal/cache"
	"ptlsim/internal/core"
	"ptlsim/internal/cosim"
	"ptlsim/internal/experiments"
	"ptlsim/internal/guest"
	"ptlsim/internal/kern"
	"ptlsim/internal/ooo"
	"ptlsim/internal/stats"
)

// table1 caches the paired Table 1 run for the benchmarks that only
// read different slices of it.
var table1Cache *experiments.Table1Result

func table1(b *testing.B) *experiments.Table1Result {
	b.Helper()
	if table1Cache == nil {
		res, err := experiments.RunTable1(experiments.BenchScale())
		if err != nil {
			b.Fatal(err)
		}
		table1Cache = res
	}
	return table1Cache
}

// BenchmarkTable1 regenerates the paper's Table 1: the accuracy
// comparison between the cycle accurate model and the K8
// hardware-counter reference across all major statistics. Reported
// metrics are the sim-vs-native percentage differences per row.
func BenchmarkTable1(b *testing.B) {
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(experiments.BenchScale())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	table1Cache = res
	if !strings.Contains(res.SimConsole, "rsync ok") {
		b.Fatalf("benchmark failed: %q", res.SimConsole)
	}
	for _, row := range res.Rows {
		name := strings.ReplaceAll(row.Name, " ", "_")
		unit := "%diff/" + name
		if row.Percent {
			unit = "pt-diff/" + name
		}
		b.ReportMetric(row.Diff(), unit)
	}
}

// BenchmarkFigure2 regenerates the paper's Figure 2: the time-lapse
// of cycles spent in user, kernel and idle mode, whose aggregate (the
// paper measured 15% kernel, 27% idle) demonstrates what
// userspace-only simulation cannot account for.
func BenchmarkFigure2(b *testing.B) {
	res := table1(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := res.Series.WriteSeries(&sb, experiments.Figure2Columns()...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.UserPct, "user%")
	b.ReportMetric(res.KernelPct, "kernel%")
	b.ReportMetric(res.IdlePct, "idle%")
	b.ReportMetric(float64(len(res.Series.Snapshots)), "snapshots")
}

// BenchmarkFigure3 regenerates the paper's Figure 3: the time-lapse of
// branch mispredict rate, DTLB miss rate and L1D miss rate per
// snapshot interval. The reported metrics are the whole-run rates.
func BenchmarkFigure3(b *testing.B) {
	res := table1(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := res.Series.WriteSeries(&sb, experiments.Figure3Columns()...); err != nil {
			b.Fatal(err)
		}
	}
	find := func(name string) experiments.Row {
		for _, r := range res.Rows {
			if r.Name == name {
				return r
			}
		}
		b.Fatalf("row %q missing", name)
		return experiments.Row{}
	}
	b.ReportMetric(find("Mispredicted %").Sim, "mispredict%")
	b.ReportMetric(find("DTLB Miss Rate %").Sim, "dtlbmiss%")
	b.ReportMetric(find("L1 Misses as %").Sim, "l1dmiss%")
}

// BenchmarkSimThroughput measures simulator speed in simulated cycles
// per wall-clock second (the paper reported 415,540 cycles/second on
// 2007 hardware, §5).
func BenchmarkSimThroughput(b *testing.B) {
	cfg := experiments.BenchScale()
	var cyclesPerSec float64
	for i := 0; i < b.N; i++ {
		m, console, wall, err := experiments.RunSimWith(cfg, core.Config{
			Core: ooo.K8Config(), NativeCPI: 1, ThreadsPerCore: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(console, "rsync ok") {
			b.Fatalf("run failed: %q", console)
		}
		cyclesPerSec = float64(m.Cycle) / wall.Seconds()
	}
	b.ReportMetric(cyclesPerSec, "sim-cycles/s")
}

// BenchmarkUserspaceOnlyPitfall quantifies §6.4: the fraction of all
// cycles a userspace-only simulator would misattribute (kernel time
// plus idle time), plus the kernel-instruction share.
func BenchmarkUserspaceOnlyPitfall(b *testing.B) {
	res := table1(b)
	for i := 0; i < b.N; i++ {
		_ = res.KernelPct + res.IdlePct
	}
	kInsns := float64(res.SimTree.Lookup("core0.commit.kernel_insns").Value())
	uInsns := float64(res.SimTree.Lookup("core0.commit.user_insns").Value())
	b.ReportMetric(res.KernelPct+res.IdlePct, "unaccounted-cycles%")
	b.ReportMetric(100*kInsns/(kInsns+uInsns), "kernel-insns%")
}

// --- ablations ---------------------------------------------------------

// BenchmarkAblationTLBSize compares the Table 1 DTLB configuration
// (32-entry, the paper's PTLsim model) against a 1024-entry DTLB
// standing in for the K8's two-level hierarchy: the miss-count gap is
// the paper's "+144% DTLB misses" row.
func BenchmarkAblationTLBSize(b *testing.B) {
	cfg := experiments.BenchScale()
	run := func(entries int) float64 {
		oc := ooo.K8Config()
		oc.DTLBEntries, oc.DTLBAssoc = entries, entries
		m, console, _, err := experiments.RunSimWith(cfg, core.Config{Core: oc, NativeCPI: 1, ThreadsPerCore: 1})
		if err != nil || !strings.Contains(console, "rsync ok") {
			b.Fatalf("%v %q", err, console)
		}
		return float64(m.Tree.Lookup("core0.dtlb.misses").Value())
	}
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = run(32)
		large = run(1024)
	}
	b.ReportMetric(small, "misses-32e")
	b.ReportMetric(large, "misses-1024e")
	b.ReportMetric(100*(small-large)/large, "gap%")
}

// BenchmarkAblationLoadHoisting compares cycles with load hoisting
// disabled (the K8 configuration of §5) and enabled (the default
// core's speculative loads with replay).
func BenchmarkAblationLoadHoisting(b *testing.B) {
	cfg := experiments.BenchScale()
	run := func(hoist bool) float64 {
		oc := ooo.K8Config()
		oc.LoadHoisting = hoist
		m, console, _, err := experiments.RunSimWith(cfg, core.Config{Core: oc, NativeCPI: 1, ThreadsPerCore: 1})
		if err != nil || !strings.Contains(console, "rsync ok") {
			b.Fatalf("%v %q", err, console)
		}
		// Busy cycles only: idle waits are workload-fixed and would
		// drown the microarchitectural difference.
		return float64(m.Cycle) - float64(m.Tree.Lookup("external.cycles_in_mode.idle").Value())
	}
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(off, "cycles-nohoist")
	b.ReportMetric(on, "cycles-hoist")
	b.ReportMetric(100*(off-on)/on, "hoisting-speedup%")
}

// BenchmarkAblationL1Banking compares the K8's enforced 8-bank L1
// (conflicts replay, §5: "typically less than 2% of accesses") with an
// ideal unbanked L1.
func BenchmarkAblationL1Banking(b *testing.B) {
	cfg := experiments.BenchScale()
	run := func(banked bool) (cycles, replays, accesses float64) {
		oc := ooo.K8Config()
		oc.EnforceBanking = banked
		m, console, _, err := experiments.RunSimWith(cfg, core.Config{Core: oc, NativeCPI: 1, ThreadsPerCore: 1})
		if err != nil || !strings.Contains(console, "rsync ok") {
			b.Fatalf("%v %q", err, console)
		}
		busy := float64(m.Cycle) - float64(m.Tree.Lookup("external.cycles_in_mode.idle").Value())
		return busy,
			float64(m.Tree.Lookup("core0.bank_replays").Value()),
			float64(m.Tree.Lookup("core0.cache.l1d.accesses").Value())
	}
	var bc, br, ba, ic float64
	for i := 0; i < b.N; i++ {
		bc, br, ba = run(true)
		ic, _, _ = run(false)
	}
	b.ReportMetric(100*br/ba, "bank-conflict%")
	b.ReportMetric(100*(bc-ic)/ic, "banking-cost%")
}

// BenchmarkAblationBBCache compares simulator host throughput with the
// basic block cache enabled vs effectively disabled, verifying the
// §2.1 claim: a pure simulator speed optimization with no effect on
// simulated behavior.
func BenchmarkAblationBBCache(b *testing.B) {
	cfg := experiments.BenchScale()
	run := func(capacity int) (wallSec float64, cycles uint64, console string) {
		m, cons, wall, err := experiments.RunSimWith(cfg, core.Config{
			Core: ooo.K8Config(), NativeCPI: 1, ThreadsPerCore: 1,
			BBCacheCapacity: capacity})
		if err != nil {
			b.Fatal(err)
		}
		return wall.Seconds(), m.Cycle, cons
	}
	var onWall, offWall float64
	var onCycles, offCycles uint64
	var onOut, offOut string
	for i := 0; i < b.N; i++ {
		onWall, onCycles, onOut = run(0) // default capacity
		offWall, offCycles, offOut = run(1)
	}
	if onCycles != offCycles || onOut != offOut {
		b.Fatalf("BB cache changed simulated behavior: %d vs %d cycles", onCycles, offCycles)
	}
	b.ReportMetric(offWall/onWall, "decode-slowdown-x")
}

// BenchmarkAblationCoherence compares the instant-visibility coherence
// model with the detailed MOESI bus model on a two-core shared-counter
// contention workload (the paper's future-work interconnect, §7).
func BenchmarkAblationCoherence(b *testing.B) {
	run := func(moesi bool) (cycles uint64, moves float64) {
		tree := stats.NewTree()
		var cc cache.Controller
		if moesi {
			cc = cache.NewMOESICoherence(tree, 20, 30)
		} else {
			cc = cache.NewInstantCoherence(tree)
		}
		h0 := cache.NewHierarchy(cache.K8Hierarchy(), tree, "c0")
		h1 := cache.NewHierarchy(cache.K8Hierarchy(), tree, "c1")
		h0.AttachCoherence(cc, 0)
		h1.AttachCoherence(cc, 1)
		// Ping-pong a line between the two cores.
		now := uint64(0)
		for i := 0; i < 20000; i++ {
			r0 := h0.Store(0x8000, now)
			now = r0.Ready
			r1 := h1.Store(0x8000, now)
			now = r1.Ready
		}
		return now, float64(tree.Lookup("coherence.line_moves").Value())
	}
	var instant, moesi uint64
	var moves float64
	for i := 0; i < b.N; i++ {
		instant, _ = run(false)
		moesi, moves = run(true)
	}
	b.ReportMetric(float64(instant), "cycles-instant")
	b.ReportMetric(float64(moesi), "cycles-moesi")
	b.ReportMetric(moves, "line-moves")
}

// BenchmarkAblationSampling measures statistical sampled simulation
// (§2.3): wall-time speedup versus the full cycle accurate run, and
// the error it introduces into the sampled mispredict rate.
func BenchmarkAblationSampling(b *testing.B) {
	build := func() (*core.Machine, *stats.Tree) {
		cfg := experiments.BenchScale()
		tree := stats.NewTree()
		spec, err := guest.RsyncBenchmark(cfg.Corpus, cfg.TimerPeriod)
		if err != nil {
			b.Fatal(err)
		}
		spec.Tree = tree
		img, err := kern.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		return core.NewMachine(img.Domain, tree, core.DefaultConfig()), tree
	}
	rate := func(tree *stats.Tree) float64 {
		mp := float64(tree.Lookup("core0.mispredicts").Value())
		br := float64(tree.Lookup("core0.branches").Value())
		if br == 0 {
			return 0
		}
		return 100 * mp / br
	}
	var fullRate, sampRate, simShare float64
	for i := 0; i < b.N; i++ {
		mFull, tFull := build()
		mFull.SwitchMode(core.ModeSim)
		if err := mFull.Run(0); err != nil {
			b.Fatal(err)
		}
		fullRate = rate(tFull)

		mSamp, tSamp := build()
		if err := cosim.RunSampled(mSamp, cosim.SampleConfig{SimInsns: 50_000, NativeInsns: 200_000}, 0); err != nil {
			b.Fatal(err)
		}
		sampRate = rate(tSamp)
		sim := float64(tSamp.Lookup("core0.commit.insns").Value())
		nat := float64(tSamp.Lookup("seq0.insns").Value())
		simShare = 100 * sim / (sim + nat)
	}
	b.ReportMetric(fullRate, "full-mispredict%")
	b.ReportMetric(sampRate, "sampled-mispredict%")
	b.ReportMetric(simShare, "insns-simulated%")
}
