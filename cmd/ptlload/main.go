// Command ptlload is a multi-tenant load generator for ptlserve: it
// fires N job submissions at a daemon from a fixed tenant identity,
// at a fixed priority and optional client deadline, over -concurrency
// parallel submitters, and reports exactly what the admission layer
// did with them — accepted, deduplicated, rejected on the tenant
// quota, shed on the deadline estimate, or bounced off the global
// queue. The soak scripts run several ptlload processes as competing
// tenants (one greedy, one latency-sensitive, one behind a chaosnet
// link) and assert fairness and shedding from the merged reports.
//
// The client deliberately does NOT retry 429s: a rejection is the
// datum being measured, not weather to ride out.
//
// Example:
//
//	ptlload -addr http://127.0.0.1:7483 -n 1000 -tenant greedy -concurrency 32
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ptlsim/internal/fleet"
	"ptlsim/internal/jobd"
)

// report is the machine-readable outcome summary, one per process.
type report struct {
	Tenant        string   `json:"tenant"`
	Submitted     int      `json:"submitted"`
	Accepted      int      `json:"accepted"`
	Duplicate     int      `json:"duplicate"`
	QuotaRejected int      `json:"quota_rejected"`
	Shed          int      `json:"shed"`
	QueueFull     int      `json:"queue_full"`
	Errors        int      `json:"errors"`
	ElapsedMs     int64    `json:"elapsed_ms"`
	SubmitP50Ms   float64  `json:"submit_p50_ms"`
	SubmitP99Ms   float64  `json:"submit_p99_ms"`
	IDs           []string `json:"ids"`
	ErrorSamples  []string `json:"error_samples,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "ptlserve base URL (required)")
		n        = flag.Int("n", 100, "submissions to fire")
		conc     = flag.Int("concurrency", 8, "parallel submitters")
		tenant   = flag.String("tenant", "", "tenant identity on every submission")
		priority = flag.Int("priority", 0, "job priority within the tenant (higher first)")
		deadline = flag.Duration("deadline", 0, "client deadline per job (0 = none); jobs whose estimated wait exceeds it are shed")
		scale    = flag.String("scale", "small", "workload scale for every job")
		mode     = flag.String("mode", "sim", "engine mode for every job")
		nfiles   = flag.Int("nfiles", 0, "corpus file count override (0 = scale default)")
		filesize = flag.Int("filesize", 0, "corpus file size override (0 = scale default)")
		maxCyc   = flag.Int64("maxcycles", 0, "engine cycle cap (0 = scale default)")
		seed     = flag.Int64("seed", 1, "corpus seed base; job i uses seed+i so specs stay distinct")
		runID    = flag.String("run", "", "idempotency namespace (default: pid+time) — reruns with the same value dedup instead of resubmitting")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request deadline")
		outPath  = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "ptlload: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	if *runID == "" {
		*runID = fmt.Sprintf("load-%d-%d", os.Getpid(), time.Now().UnixNano())
	}

	// Retries:-1 disables the client's own 429/5xx retry loop: every
	// admission verdict surfaces exactly once and gets counted.
	client := fleet.NewClient(fleet.ClientConfig{Timeout: *timeout, Retries: -1})
	ctx := context.Background()

	var (
		mu    sync.Mutex
		rep   = report{Tenant: *tenant, Submitted: *n}
		latMs = make([]float64, 0, *n)
		wg    sync.WaitGroup
		jobs  = make(chan int)
	)
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				spec := jobd.Spec{
					Scale:            *scale,
					Mode:             *mode,
					NFiles:           *nfiles,
					FileSize:         *filesize,
					MaxCycles:        *maxCyc,
					Seed:             *seed + int64(i),
					Tenant:           *tenant,
					Priority:         *priority,
					ClientDeadlineMs: deadline.Milliseconds(),
				}
				key := fmt.Sprintf("%s-%s-%d", *runID, *tenant, i)
				t0 := time.Now()
				st, dup, err := client.Submit(ctx, *addr, spec, key)
				lat := float64(time.Since(t0).Nanoseconds()) / 1e6
				mu.Lock()
				latMs = append(latMs, lat)
				switch {
				case err == nil && dup:
					rep.Duplicate++
					rep.IDs = append(rep.IDs, st.ID)
				case err == nil:
					rep.Accepted++
					rep.IDs = append(rep.IDs, st.ID)
				case fleet.StatusCode(err) == 429 && strings.Contains(err.Error(), "quota"):
					rep.QuotaRejected++
				case fleet.StatusCode(err) == 429 && strings.Contains(err.Error(), "deadline"):
					rep.Shed++
				case fleet.StatusCode(err) == 429:
					rep.QueueFull++
				default:
					rep.Errors++
					if len(rep.ErrorSamples) < 5 {
						rep.ErrorSamples = append(rep.ErrorSamples, err.Error())
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep.ElapsedMs = time.Since(start).Milliseconds()
	sort.Float64s(latMs)
	rep.SubmitP50Ms = percentile(latMs, 0.50)
	rep.SubmitP99Ms = percentile(latMs, 0.99)
	sort.Strings(rep.IDs)

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptlload:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "ptlload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"ptlload[%s]: %d submitted: %d accepted, %d dup, %d quota, %d shed, %d queue-full, %d errors in %dms (submit p50 %.1fms p99 %.1fms)\n",
		*tenant, rep.Submitted, rep.Accepted, rep.Duplicate, rep.QuotaRejected,
		rep.Shed, rep.QueueFull, rep.Errors, rep.ElapsedMs, rep.SubmitP50Ms, rep.SubmitP99Ms)
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// percentile reads the p-th quantile from an ascending-sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
