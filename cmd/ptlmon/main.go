// Command ptlmon is the domain monitor (the PTLmon of the paper's
// Figure 1): it builds a guest domain, boots it, relays its console,
// and manages the interrupt/DMA trace facilities — recording a run's
// device event stream to a file, or replaying a previously recorded
// trace deterministically into a fresh domain (paper §4.2).
//
// Examples:
//
//	ptlmon                       # boot the rsync benchmark, show console
//	ptlmon -info                 # boot and print domain information
//	ptlmon -record trace.bin     # record device events during the run
//	ptlmon -replay trace.bin     # re-run with injected trace events
//	ptlmon -journal run.jsonl    # summarize a supervised run's journal
//	ptlmon -inspect dir-or-ckpt  # triage checkpoint headers without restoring
//	ptlmon -addr URL             # list a remote ptlserve daemon's jobs
//	ptlmon -addr URL -job 0003   # show one remote job's status
//	ptlmon -addr URL -version    # remote daemon build + schema identity
package main

import (
	"flag"
	"fmt"
	"os"

	"ptlsim/internal/core"
	"ptlsim/internal/guest"
	"ptlsim/internal/kern"
	"ptlsim/internal/stats"
	"ptlsim/internal/trace"
)

func main() {
	var (
		record  = flag.String("record", "", "record device events to this file")
		replay  = flag.String("replay", "", "inject device events from this file")
		info    = flag.Bool("info", false, "print domain information after the run")
		nfiles  = flag.Int("nfiles", 4, "corpus file count")
		fsize   = flag.Int("filesize", 8192, "corpus file size")
		mode    = flag.String("mode", "native", "execution engine: native | sim")
		maxCyc  = flag.Uint64("maxcycles", 0, "cycle budget (0 = unlimited)")
		journal = flag.String("journal", "", "summarize a supervisor run journal (JSONL) and exit")
		tailN   = flag.Int("tail", 0, "with -journal: also print the last N events")
		inspect = flag.String("inspect", "", "print a checkpoint file's header (or every *.ckpt in a directory) without restoring, and exit")
		addr    = flag.String("addr", "", "ptlserve base URL: list its jobs (or use -job/-version) and exit")
		jobID   = flag.String("job", "", "with -addr: show this job's status")
		phase   = flag.String("phase", "", "with -addr: only list jobs in this phase (queued|running|done|failed)")
		limit   = flag.Int("limit", 0, "with -addr: list at most N jobs (0 = all)")
		version = flag.Bool("version", false, "with -addr: print the daemon's build and schema identity")
	)
	flag.Parse()

	if *addr != "" {
		if err := remoteMain(os.Stdout, *addr, *jobID, *phase, *limit, *version); err != nil {
			fatal(err)
		}
		return
	}
	if *journal != "" {
		if err := reportJournal(os.Stdout, *journal, *tailN); err != nil {
			fatal(err)
		}
		return
	}
	if *inspect != "" {
		if err := inspectPath(os.Stdout, *inspect); err != nil {
			fatal(err)
		}
		return
	}

	cs := guest.CorpusSpec{NFiles: *nfiles, FileSize: *fsize, Seed: 20070425, ChangeFraction: 0.25}
	tree := stats.NewTree()
	spec, err := guest.RsyncBenchmark(cs, 0)
	if err != nil {
		fatal(err)
	}
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		fatal(err)
	}
	dom := img.Domain

	var rec *trace.Recorder
	if *record != "" {
		rec = &trace.Recorder{}
		dom.Sink = rec
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		dom.Source = trace.NewInjector(tr)
		fmt.Printf("ptlmon: replaying %d recorded device events\n", len(tr.Events))
	}

	m := core.NewMachine(dom, tree, core.DefaultConfig())
	if *mode == "sim" {
		m.SwitchMode(core.ModeSim)
	}
	fmt.Printf("ptlmon: booting domain (%d vcpus, %d machine pages)\n",
		len(dom.VCPUs), dom.M.PM.NumPages())
	if err := m.Run(*maxCyc); err != nil {
		fatal(err)
	}
	fmt.Printf("--- console ---\n%s---------------\n", dom.Console())
	fmt.Printf("ptlmon: domain shut down (reason %d) at cycle %d after %d instructions\n",
		dom.ShutdownReason, m.Cycle, m.Insns())

	if rec != nil {
		tr := rec.Trace()
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		if err := tr.Write(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("ptlmon: recorded %d device events to %s\n", len(tr.Events), *record)
	}
	if *info {
		fmt.Printf("ptlmon: %s\n", dom)
		fmt.Printf("ptlmon: hypercalls=%d events=%d timer-fires=%d\n",
			tree.Lookup("hv.hypercalls").Value(),
			tree.Lookup("hv.events.sent").Value(),
			tree.Lookup("hv.timer.fires").Value())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptlmon:", err)
	os.Exit(1)
}
