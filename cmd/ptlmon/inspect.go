package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ptlsim/internal/jobd"
	"ptlsim/internal/snapshot"
)

// inspectPath prints the hardened snapshot header (magic/version/
// config-hash/CRC, cycle) of a checkpoint file without restoring a
// machine from it. Given a directory — typically the rotated
// checkpoint directory a killed worker left behind — it inspects every
// *.ckpt slot, newest name first, so the triage question "which slot
// is intact and how far did it get?" is one command. Given a ptlserve
// data directory (one holding a durable job store), it instead renders
// the recovered store state: every job's id, phase, attempt count, and
// newest intact checkpoint slot.
func inspectPath(w io.Writer, path string) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !st.IsDir() {
		return inspectFile(w, path)
	}
	if jobd.StoreExists(path) {
		return inspectStore(w, path)
	}
	slots, err := filepath.Glob(filepath.Join(path, "*.ckpt"))
	if err != nil {
		return err
	}
	if len(slots) == 0 {
		fmt.Fprintf(w, "%s: no *.ckpt files\n", path)
		return nil
	}
	sort.Sort(sort.Reverse(sort.StringSlice(slots)))
	for _, slot := range slots {
		if err := inspectFile(w, slot); err != nil {
			return err
		}
	}
	return nil
}

// inspectStore renders a ptlserve daemon data directory from its
// durable job store — the same replay the daemon performs on boot, but
// read-only: torn log lines are skipped with a warning, and each job's
// recovered state is printed with the newest intact checkpoint slot a
// respawn would resume from.
func inspectStore(w io.Writer, dir string) error {
	states, skipped, err := jobd.ReadJobStore(dir)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(w, "%s: warning: skipped %d torn store log line(s)\n", dir, skipped)
	}
	fmt.Fprintf(w, "%s: job store, %d job(s)\n", dir, len(states))
	for _, js := range jobd.SortedJobStates(states) {
		fmt.Fprintf(w, "  %s: %s", js.ID, js.Phase)
		if js.Attempt > 0 {
			fmt.Fprintf(w, ", attempt %d", js.Attempt)
		}
		if js.PID > 0 && js.Phase == jobd.StateRunning {
			fmt.Fprintf(w, ", worker pid %d", js.PID)
		}
		if js.Kind != "" {
			fmt.Fprintf(w, ", %s", js.Kind)
		}
		if js.Result != nil {
			fmt.Fprintf(w, ", cycle %d, %d instructions", js.Result.Cycles, js.Result.Insns)
		}
		slot, cycle, ok := newestIntactSlot(filepath.Join(dir, "jobs", js.ID, "ckpt"))
		if ok {
			fmt.Fprintf(w, ", newest ckpt %s (cycle %d)", slot, cycle)
		} else {
			fmt.Fprintf(w, ", no intact ckpt")
		}
		fmt.Fprintln(w)
		if js.Error != "" {
			fmt.Fprintf(w, "    error: %s\n", js.Error)
		}
	}
	return nil
}

// newestIntactSlot scans a rotated checkpoint directory newest name
// first and returns the first slot whose hardened header verifies.
func newestIntactSlot(ckptDir string) (slot string, cycle uint64, ok bool) {
	slots, err := filepath.Glob(filepath.Join(ckptDir, "*.ckpt"))
	if err != nil || len(slots) == 0 {
		return "", 0, false
	}
	sort.Sort(sort.Reverse(sort.StringSlice(slots)))
	for _, s := range slots {
		info, err := snapshot.Inspect(s)
		if err != nil || info.Err != "" {
			continue
		}
		return filepath.Base(s), info.Cycle, true
	}
	return "", 0, false
}

func inspectFile(w io.Writer, path string) error {
	info, err := snapshot.Inspect(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %d bytes", info.Path, info.Size)
	if info.Version > 0 {
		fmt.Fprintf(w, ", v%d, cfg %#x, payload %dB, crc %#08x",
			info.Version, info.CfgHash, info.PayloadLen, info.CRC)
	}
	if info.Err != "" {
		fmt.Fprintf(w, "\n  CORRUPT: %s\n", info.Err)
		return nil
	}
	mode := "native"
	if info.SimMode {
		mode = "sim"
	}
	fmt.Fprintf(w, "\n  intact: cycle %d, mode %s, %d vcpu(s), %d page(s)\n",
		info.Cycle, mode, info.VCPUs, info.Pages)
	return nil
}
