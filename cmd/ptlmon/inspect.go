package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ptlsim/internal/snapshot"
)

// inspectPath prints the hardened snapshot header (magic/version/
// config-hash/CRC, cycle) of a checkpoint file without restoring a
// machine from it. Given a directory — typically the rotated
// checkpoint directory a killed worker left behind — it inspects every
// *.ckpt slot, newest name first, so the triage question "which slot
// is intact and how far did it get?" is one command.
func inspectPath(w io.Writer, path string) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !st.IsDir() {
		return inspectFile(w, path)
	}
	slots, err := filepath.Glob(filepath.Join(path, "*.ckpt"))
	if err != nil {
		return err
	}
	if len(slots) == 0 {
		fmt.Fprintf(w, "%s: no *.ckpt files\n", path)
		return nil
	}
	sort.Sort(sort.Reverse(sort.StringSlice(slots)))
	for _, slot := range slots {
		if err := inspectFile(w, slot); err != nil {
			return err
		}
	}
	return nil
}

func inspectFile(w io.Writer, path string) error {
	info, err := snapshot.Inspect(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %d bytes", info.Path, info.Size)
	if info.Version > 0 {
		fmt.Fprintf(w, ", v%d, cfg %#x, payload %dB, crc %#08x",
			info.Version, info.CfgHash, info.PayloadLen, info.CRC)
	}
	if info.Err != "" {
		fmt.Fprintf(w, "\n  CORRUPT: %s\n", info.Err)
		return nil
	}
	mode := "native"
	if info.SimMode {
		mode = "sim"
	}
	fmt.Fprintf(w, "\n  intact: cycle %d, mode %s, %d vcpu(s), %d page(s)\n",
		info.Cycle, mode, info.VCPUs, info.Pages)
	return nil
}
