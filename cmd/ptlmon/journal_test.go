package main

import (
	"strings"
	"testing"

	"ptlsim/internal/supervisor"
)

// sampleEntries reconstructs the journal of a run that failed twice,
// fell back over one corrupted slot, degraded one window, and finished.
func sampleEntries() []supervisor.Entry {
	return []supervisor.Entry{
		{Event: supervisor.EventCheckpoint, Attempt: 0, Cycle: 0, Slot: "ckpt-00000001.ckpt"},
		{Event: supervisor.EventRunStart, Attempt: 1},
		{Event: supervisor.EventCheckpoint, Attempt: 1, Cycle: 100, Slot: "ckpt-00000002.ckpt"},
		{Event: supervisor.EventFailure, Attempt: 1, Cycle: 150, Kind: "panic", Message: "ROB head not SOM", Retryable: true},
		{Event: supervisor.EventDiscardSlot, Attempt: 1, Slot: "ckpt-00000002.ckpt", Message: "snapshot: payload checksum mismatch"},
		{Event: supervisor.EventRestore, Attempt: 1, Cycle: 0, Slot: "ckpt-00000001.ckpt", BackoffMs: 100},
		{Event: supervisor.EventRunStart, Attempt: 2},
		{Event: supervisor.EventFailure, Attempt: 2, Cycle: 150, Kind: "livelock", Message: "watchdog", Retryable: true},
		{Event: supervisor.EventRestore, Attempt: 2, Cycle: 0, Slot: "ckpt-00000003.ckpt", BackoffMs: 200},
		{Event: supervisor.EventDegradeOn, Attempt: 2, FromCycle: 0, ToCycle: 200},
		{Event: supervisor.EventDegradeOff, Attempt: 2, FromCycle: 0, ToCycle: 200, Insns: 180},
		{Event: supervisor.EventRunStart, Attempt: 3},
		{Event: supervisor.EventComplete, Attempt: 3, Cycle: 1000, Insns: 900},
	}
}

func TestJournalReportSummarizes(t *testing.T) {
	var b strings.Builder
	supervisor.WriteReport(&b, sampleEntries(), 0)
	out := b.String()
	for _, want := range []string{
		"13 events, 3 attempt(s)",
		"checkpoints: 2",
		"failures: 2 (livelock: 1, panic: 1), 2 retryable",
		"restores: 2, discarded slots: 1",
		"degraded windows: 1 (200 cycles on the sequential core)",
		"outcome: completed at cycle 1000 (900 instructions)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "last ") && strings.Contains(out, "event(s):") {
		t.Errorf("tail printed without -tail:\n%s", out)
	}
}

func TestJournalReportTailAndOutcomes(t *testing.T) {
	var b strings.Builder
	supervisor.WriteReport(&b, sampleEntries(), 2)
	out := b.String()
	if !strings.Contains(out, "last 2 event(s):") {
		t.Fatalf("missing tail header:\n%s", out)
	}
	if !strings.Contains(out, "complete") || !strings.Contains(out, "run_start") {
		t.Fatalf("tail should show the final two events:\n%s", out)
	}

	b.Reset()
	supervisor.WriteReport(&b, []supervisor.Entry{
		{Event: supervisor.EventRunStart, Attempt: 1},
		{Event: supervisor.EventInterrupt, Attempt: 1, Cycle: 500, Slot: "ckpt-00000004.ckpt"},
	}, 0)
	if !strings.Contains(b.String(), "interrupted at cycle 500; final checkpoint ckpt-00000004.ckpt") {
		t.Fatalf("interrupt outcome:\n%s", b.String())
	}

	b.Reset()
	supervisor.WriteReport(&b, []supervisor.Entry{
		{Event: supervisor.EventGiveUp, Attempt: 4, Message: "retry budget 3 exhausted"},
	}, 0)
	if !strings.Contains(b.String(), "gave up: retry budget 3 exhausted") {
		t.Fatalf("give-up outcome:\n%s", b.String())
	}

	b.Reset()
	supervisor.WriteReport(&b, nil, 0)
	if !strings.Contains(b.String(), "empty") {
		t.Fatalf("empty journal:\n%s", b.String())
	}
}
