// Remote-daemon mode: -addr points ptlmon at a ptlserve daemon (local
// or across the network) and the monitor becomes an operator console,
// going through the same retrying fleet client the campaign dispatcher
// uses — so flaky links, 429 backpressure with Retry-After, and daemon
// restarts are absorbed here exactly as they are in a sweep.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"ptlsim/internal/fleet"
	"ptlsim/internal/jobd"
)

// remoteMain serves the -addr modes: list jobs (with -phase/-limit),
// show one job (-job), or print the daemon's build identity (-version).
func remoteMain(w io.Writer, addr, job, phase string, limit int, version bool) error {
	client := fleet.NewClient(fleet.ClientConfig{Timeout: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if version {
		v, err := client.Version(ctx, addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: version %s go %s schema %016x", addr, v.Version, v.Go, v.SchemaHash)
		if v.Modified {
			fmt.Fprint(w, " (modified tree)")
		}
		fmt.Fprintln(w)
		return nil
	}
	if job != "" {
		st, err := client.Job(ctx, addr, job)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}

	jobs, err := client.Jobs(ctx, addr, phase, limit)
	if err != nil {
		return err
	}
	printMetricsSummary(ctx, w, client, addr)
	if len(jobs) == 0 {
		fmt.Fprintf(w, "%s: no jobs", addr)
		if phase != "" {
			fmt.Fprintf(w, " in phase %s", phase)
		}
		fmt.Fprintln(w)
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tTENANT\tPRI\tSTATE\tATTEMPTS\tWAIT\tELAPSED\tDETAIL")
	for _, st := range jobs {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d\t%s\t%s\t%s\n",
			st.ID, tenantCol(st), st.Spec.Priority, st.State, st.Attempts,
			waitCol(st), elapsedCol(st), detailCol(st))
	}
	return tw.Flush()
}

// printMetricsSummary renders the daemon's operational vital signs
// from its /metrics exposition above the job table. Best-effort: a
// daemon predating /metrics (or a scrape failure) just loses the
// header line, never the listing.
func printMetricsSummary(ctx context.Context, w io.Writer, client *fleet.Client, addr string) {
	vals, err := client.Metrics(ctx, addr)
	if err != nil || len(vals) == 0 {
		return
	}
	g := func(name string) int64 { return int64(vals[name]) }
	fmt.Fprintf(w, "%s: queue %d deep, %d running, breaker open for %d config(s), retry-after %dms\n",
		addr, g("jobd_queue_depth"), g("jobd_jobs_running"),
		g("jobd_breaker_open"), g("jobd_retry_after_ms"))
	fmt.Fprintf(w, "lifetime: %d submitted, %d done, %d failed, %d retried, %d adopted, %d reaped\n",
		g("jobd_jobs_submitted"), g("jobd_jobs_done"), g("jobd_jobs_failed"),
		g("jobd_jobs_retried"), g("jobd_jobs_adopted"), g("jobd_jobs_reaped"))
}

func tenantCol(st jobd.Status) string {
	if st.Spec.Tenant == "" {
		return "default"
	}
	return st.Spec.Tenant
}

func waitCol(st jobd.Status) string {
	if st.QueueWaitMs <= 0 {
		return "-"
	}
	return (time.Duration(st.QueueWaitMs) * time.Millisecond).Round(time.Millisecond).String()
}

func elapsedCol(st jobd.Status) string {
	if st.ElapsedMs <= 0 {
		return "-"
	}
	return (time.Duration(st.ElapsedMs) * time.Millisecond).Round(time.Millisecond).String()
}

func detailCol(st jobd.Status) string {
	switch {
	case st.State == jobd.StateDone && st.Result != nil:
		return fmt.Sprintf("cycle %d, %d insns, fnv %016x",
			st.Result.Cycles, st.Result.Insns, st.Result.ConsoleFNV)
	case st.State == jobd.StateFailed:
		return fmt.Sprintf("%s: %s", st.Kind, st.Error)
	case st.State == jobd.StateRunning && st.PID != 0:
		return fmt.Sprintf("pid %d", st.PID)
	default:
		return ""
	}
}
