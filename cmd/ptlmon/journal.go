package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ptlsim/internal/supervisor"
)

// reportJournal summarizes a supervisor run journal (the JSONL file
// written by ptlsim -supervise -journal): attempt history, failures by
// kind, restore and rotation-discard counts, degraded windows, and the
// run outcome. tail > 0 additionally prints the last tail raw events.
func reportJournal(w io.Writer, path string, tail int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := supervisor.ReadJournal(f)
	if err != nil {
		return err
	}
	writeJournalReport(w, entries, tail)
	return nil
}

func writeJournalReport(w io.Writer, entries []supervisor.Entry, tail int) {
	if len(entries) == 0 {
		fmt.Fprintln(w, "run journal: empty")
		return
	}
	var (
		attempts, checkpoints, retryable int
		restores, discards, degraded     int
		degradedCycles                   uint64
		lastCkpt                         supervisor.Entry
		failures                         = map[string]int{}
		outcome                          = "in progress (or writer crashed hard)"
	)
	for _, e := range entries {
		if e.Attempt > attempts {
			attempts = e.Attempt
		}
		switch e.Event {
		case supervisor.EventCheckpoint:
			checkpoints++
			lastCkpt = e
		case supervisor.EventFailure:
			kind := e.Kind
			if kind == "" {
				kind = "error"
			}
			failures[kind]++
			if e.Retryable {
				retryable++
			}
		case supervisor.EventRestore:
			restores++
		case supervisor.EventDiscardSlot:
			discards++
		case supervisor.EventDegradeOff:
			degraded++
			degradedCycles += e.ToCycle - e.FromCycle
		case supervisor.EventComplete:
			outcome = fmt.Sprintf("completed at cycle %d (%d instructions)", e.Cycle, e.Insns)
		case supervisor.EventInterrupt:
			outcome = fmt.Sprintf("interrupted at cycle %d; final checkpoint %s", e.Cycle, e.Slot)
		case supervisor.EventGiveUp:
			outcome = "gave up: " + e.Message
		}
	}

	fmt.Fprintf(w, "run journal: %d events, %d attempt(s)\n", len(entries), attempts)
	fmt.Fprintf(w, "  checkpoints: %d", checkpoints)
	if checkpoints > 0 {
		fmt.Fprintf(w, " (last %s at cycle %d)", lastCkpt.Slot, lastCkpt.Cycle)
	}
	fmt.Fprintln(w)
	if len(failures) > 0 {
		kinds := make([]string, 0, len(failures))
		for k := range failures {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		total := 0
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s: %d", k, failures[k]))
			total += failures[k]
		}
		fmt.Fprintf(w, "  failures: %d (%s), %d retryable\n", total, strings.Join(parts, ", "), retryable)
	}
	if restores > 0 || discards > 0 {
		fmt.Fprintf(w, "  restores: %d, discarded slots: %d\n", restores, discards)
	}
	if degraded > 0 {
		fmt.Fprintf(w, "  degraded windows: %d (%d cycles on the sequential core)\n", degraded, degradedCycles)
	}
	fmt.Fprintf(w, "  outcome: %s\n", outcome)

	if tail > 0 {
		start := len(entries) - tail
		if start < 0 {
			start = 0
		}
		fmt.Fprintf(w, "last %d event(s):\n", len(entries)-start)
		for _, e := range entries[start:] {
			fmt.Fprintf(w, "  %s\n", formatEntry(e))
		}
	}
}

func formatEntry(e supervisor.Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s attempt=%d", e.Event, e.Attempt)
	if e.Cycle > 0 {
		fmt.Fprintf(&b, " cycle=%d", e.Cycle)
	}
	if e.Insns > 0 {
		fmt.Fprintf(&b, " insns=%d", e.Insns)
	}
	if e.Slot != "" {
		fmt.Fprintf(&b, " slot=%s", e.Slot)
	}
	if e.Kind != "" {
		fmt.Fprintf(&b, " kind=%s", e.Kind)
	}
	if e.BackoffMs > 0 {
		fmt.Fprintf(&b, " backoff=%dms", e.BackoffMs)
	}
	if e.ToCycle > 0 {
		fmt.Fprintf(&b, " window=[%d,%d)", e.FromCycle, e.ToCycle)
	}
	if e.Message != "" {
		fmt.Fprintf(&b, " msg=%q", e.Message)
	}
	return b.String()
}
