package main

import (
	"fmt"
	"io"
	"os"

	"ptlsim/internal/supervisor"
)

// reportJournal summarizes a supervisor run journal (the JSONL file
// written by ptlsim -supervise -journal): attempt history, failures by
// kind, restore and rotation-discard counts, degraded windows,
// self-check and triage verdicts, and the run outcome. tail > 0
// additionally prints the last tail raw events. The rendering lives in
// supervisor.WriteReport so ptlstats -journal prints the same view.
func reportJournal(w io.Writer, path string, tail int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, skipped, err := supervisor.ReadJournalSkipping(f)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(w, "warning: skipped %d torn journal line(s)\n", skipped)
	}
	supervisor.WriteReport(w, entries, tail)
	return nil
}
