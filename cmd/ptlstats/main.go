// Command ptlstats analyzes statistics written by ptlsim -stats-out:
// it renders counter tables, subtracts snapshots to isolate intervals
// (the warmup-stripping workflow of the paper's §2.3), and prints the
// time-lapse series behind Figures 2 and 3.
//
// Examples:
//
//	ptlstats -in run.json -table core0.
//	ptlstats -in run.json -subtract 3,10 -table core0.cache
//	ptlstats -in run.json -series mode
//	ptlstats -in run.json -series uarch
//	ptlstats -journal run.jsonl -tail 5
//	ptlstats -pipeline run.evlog -format chrome -o trace.json
//	ptlstats -pipeline run.evlog -format konata -o run.kanata
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ptlsim/internal/evlog"
	"ptlsim/internal/experiments"
	"ptlsim/internal/stats"
	"ptlsim/internal/supervisor"
)

type statsFile struct {
	Cycles    uint64          `json:"cycles"`
	Final     map[string]int64 `json:"final"`
	Interval  uint64          `json:"interval"`
	Snapshots []statsSnapshot `json:"snapshots"`
}

type statsSnapshot struct {
	Cycle  uint64           `json:"cycle"`
	Values map[string]int64 `json:"values"`
}

func main() {
	var (
		in       = flag.String("in", "", "stats JSON written by ptlsim -stats-out")
		table    = flag.String("table", "", "print final counters matching this prefix")
		subtract = flag.String("subtract", "", "snapshot pair \"a,b\": print counters for the interval (b - a)")
		series   = flag.String("series", "", "print a time-lapse series: mode (Figure 2) | uarch (Figure 3)")
		journal  = flag.String("journal", "", "summarize a supervisor run journal (JSONL) and exit")
		tailN    = flag.Int("tail", 0, "with -journal: also print the last N events")
		pipeline = flag.String("pipeline", "", "render a pipeline event log (ptlsim -evlog JSONL) and exit")
		format   = flag.String("format", "chrome", "with -pipeline: chrome (trace_event JSON) | konata (Kanata text) | text")
		out      = flag.String("o", "", "with -pipeline: write output here instead of stdout")
	)
	flag.Parse()
	if *pipeline != "" {
		if err := renderPipeline(*pipeline, *format, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *journal != "" {
		f, err := os.Open(*journal)
		if err != nil {
			fatal(err)
		}
		entries, skipped, err := supervisor.ReadJournalSkipping(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if skipped > 0 {
			fmt.Printf("warning: skipped %d torn journal line(s)\n", skipped)
		}
		supervisor.WriteReport(os.Stdout, entries, *tailN)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ptlstats: -in is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var sf statsFile
	if err := json.Unmarshal(data, &sf); err != nil {
		fatal(err)
	}

	ser := stats.Series{Interval: sf.Interval}
	for _, s := range sf.Snapshots {
		ser.Snapshots = append(ser.Snapshots, stats.Snapshot{Cycle: s.Cycle, Values: s.Values})
	}

	switch {
	case *subtract != "":
		parts := strings.Split(*subtract, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-subtract wants \"a,b\" snapshot ids"))
		}
		a, err1 := strconv.Atoi(parts[0])
		b, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || a < 0 || b <= a || b >= len(ser.Snapshots) {
			fatal(fmt.Errorf("bad snapshot ids %q (have %d snapshots)", *subtract, len(ser.Snapshots)))
		}
		d := stats.Sub(ser.Snapshots[b], ser.Snapshots[a])
		fmt.Printf("interval: snapshots %d..%d (%d cycles)\n", a, b, d.Cycle)
		if err := d.WriteTable(os.Stdout, prefixes(*table)...); err != nil {
			fatal(err)
		}
	case *series != "":
		var cols []stats.Column
		switch *series {
		case "mode", "cycles_in_mode":
			cols = experiments.Figure2Columns()
		case "uarch":
			cols = experiments.Figure3Columns()
		default:
			fatal(fmt.Errorf("unknown series %q (want mode or uarch)", *series))
		}
		if err := ser.WriteSeries(os.Stdout, cols...); err != nil {
			fatal(err)
		}
	default:
		final := stats.Snapshot{Cycle: sf.Cycles, Values: sf.Final}
		if err := final.WriteTable(os.Stdout, prefixes(*table)...); err != nil {
			fatal(err)
		}
	}
}

// renderPipeline loads a ptlsim -evlog JSONL file and renders it as a
// Chrome trace_event JSON array (chrome://tracing / Perfetto), Kanata
// pipeline-viewer text, or the plain fixed-width event table.
func renderPipeline(path, format, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	events, err := evlog.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	switch format {
	case "chrome":
		return evlog.WriteChromeTrace(w, events)
	case "konata":
		return evlog.WriteKonata(w, events)
	case "text":
		return evlog.WriteText(w, events)
	default:
		return fmt.Errorf("unknown -format %q (want chrome, konata or text)", format)
	}
}

func prefixes(p string) []string {
	if p == "" {
		return nil
	}
	return strings.Split(p, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptlstats:", err)
	os.Exit(1)
}
