// Command ptlsweep dispatches one simulation campaign across a fleet
// of ptlserve daemons. It expands a campaign spec (a base job plus
// grid axes: scales × cores × seeds × fault-specs × repeats) into
// cells and drives them with per-cell leases and monotonic fencing
// epochs: a node that stops answering loses its leases to surviving
// nodes, and anything the superseded lease later produces is rejected
// — both at collection here and at admission by the daemon (HTTP 409).
// The whole sweep journals into the shared supervisor JSONL schema, so
// `ptlmon -journal sweep.jsonl` renders a 1,000-job campaign with the
// same machinery as a single supervised run.
//
// Examples:
//
//	ptlsweep -campaign sweep.json -nodes http://a:8901,http://b:8901
//	ptlsweep -campaign sweep.json -nodes ... -journal sweep.jsonl -out report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the default profiling mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptlsim/internal/fleet"
	"ptlsim/internal/metrics"
	"ptlsim/internal/supervisor"
)

func main() {
	var (
		campaignPath = flag.String("campaign", "", "campaign spec JSON file (required)")
		nodesFlag    = flag.String("nodes", "", "comma-separated ptlserve base URLs (required)")
		journalPath  = flag.String("journal", "", "append campaign events to this JSONL journal")
		outPath      = flag.String("out", "", "write the merged report JSON here")
		lease        = flag.Duration("lease", 10*time.Second, "lease TTL without a successful poll before stealing")
		poll         = flag.Duration("poll", 500*time.Millisecond, "dispatch loop tick interval")
		inflight     = flag.Int("inflight", 32, "per-node concurrent lease cap")
		epochs       = flag.Int("epochs", 8, "lease epochs per cell before it terminally fails")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		quiet        = flag.Bool("q", false, "suppress progress output")
		tenant       = flag.String("tenant", "", "tenant the campaign's jobs bill against on every daemon (overrides the campaign file)")
		priority     = flag.Int("priority", 0, "campaign priority within its tenant, higher first (overrides the campaign file)")
		deadlineFl   = flag.Duration("deadline", 0, "per-cell client deadline; cells whose estimated queue wait exceeds it are shed at admission (overrides the campaign file)")
		metricsAddr  = flag.String("metrics-addr", "", "serve the dispatcher's /metrics (Prometheus text) on this address while the campaign runs")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	)
	flag.Parse()
	if *campaignPath == "" || *nodesFlag == "" {
		fmt.Fprintln(os.Stderr, "ptlsweep: -campaign and -nodes are required")
		flag.Usage()
		os.Exit(2)
	}

	campaign, err := fleet.LoadCampaign(*campaignPath)
	if err != nil {
		fatal(err)
	}
	if *tenant != "" {
		campaign.Tenant = *tenant
	}
	if *priority != 0 {
		campaign.Priority = *priority
	}
	if *deadlineFl != 0 {
		campaign.DeadlineMs = deadlineFl.Milliseconds()
	}
	var nodes []fleet.Node
	for i, url := range strings.Split(*nodesFlag, ",") {
		url = strings.TrimRight(strings.TrimSpace(url), "/")
		if url == "" {
			continue
		}
		nodes = append(nodes, fleet.Node{Name: fmt.Sprintf("node%d", i+1), URL: url})
	}

	var journal *supervisor.Journal
	if *journalPath != "" {
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		journal = supervisor.NewJournal(f)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ptlsweep: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	reg := metrics.NewRegistry()
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler(reg))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "ptlsweep: metrics listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "ptlsweep: metrics on %s\n", *metricsAddr)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "ptlsweep: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "ptlsweep: pprof on %s\n", *pprofAddr)
	}
	d, err := fleet.NewDispatcher(fleet.Config{
		Nodes:        nodes,
		LeaseTTL:     *lease,
		PollInterval: *poll,
		Inflight:     *inflight,
		MaxEpochs:    *epochs,
		Submit:       fleet.NewClient(fleet.ClientConfig{Timeout: *timeout, Seed: time.Now().UnixNano()}),
		Poll:         fleet.NewClient(fleet.ClientConfig{Timeout: *timeout, Retries: -1}),
		Journal:      journal,
		Logf:         logf,
		Metrics:      reg,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := d.Run(ctx, campaign)
	if report != nil {
		if *outPath != "" {
			if werr := writeReport(*outPath, report); werr != nil {
				fatal(werr)
			}
		}
		printSummary(report)
	}
	if err != nil {
		fatal(err)
	}
	if report.Failed > 0 || len(report.Mismatches) > 0 {
		os.Exit(1)
	}
}

func writeReport(path string, r *fleet.Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printSummary(r *fleet.Report) {
	fmt.Printf("campaign %s: %d/%d cell(s) done, %d failed in %s\n",
		r.Campaign, r.Done, r.Cells, r.Failed,
		(time.Duration(r.ElapsedMs) * time.Millisecond).Round(time.Millisecond))
	fmt.Printf("  leases: %d granted, %d stolen, %d fenced, %d abandoned; %d node-down event(s)\n",
		r.Leases, r.Steals, r.Fences, r.Abandoned, r.NodesDown)
	if len(r.Mismatches) > 0 {
		fmt.Printf("  DETERMINISM VIOLATIONS (%d):\n", len(r.Mismatches))
		for _, m := range r.Mismatches {
			fmt.Printf("    %s\n", m)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptlsweep:", err)
	os.Exit(1)
}
