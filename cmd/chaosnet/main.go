// Command chaosnet runs a fault-injecting TCP proxy in front of a
// ptlserve daemon (or anything else speaking TCP), with an HTTP
// control plane so soak scripts flip faults mid-run:
//
//	chaosnet -listen :8911 -target 127.0.0.1:8901 -control :8921
//	curl -X POST :8921/faults -d '{"partition":true}'   # blackhole
//	curl -X POST :8921/faults -d '{}'                   # heal
//	curl :8921/stats
//
// Faults: added connect latency (+jitter), probabilistic connection
// drops and mid-stream RSTs, full partition (bytes stall, peers'
// deadlines fire), and slow-loris byte throttling.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptlsim/internal/fleet/chaosnet"
)

func main() {
	var (
		listen  = flag.String("listen", "", "proxy listen address (required), e.g. 127.0.0.1:8911")
		target  = flag.String("target", "", "upstream address (required), e.g. 127.0.0.1:8901")
		control = flag.String("control", "", "HTTP control listen address (optional)")
		seed    = flag.Int64("seed", 0, "fault probability seed (0 = time-based)")
	)
	flag.Parse()
	if *listen == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "chaosnet: -listen and -target are required")
		flag.Usage()
		os.Exit(2)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}

	proxy, err := chaosnet.New(*listen, *target, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "chaosnet: proxying %s -> %s\n", proxy.Addr(), *target)

	if *control != "" {
		srv := &http.Server{Addr: *control, Handler: proxy.ControlHandler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal(err)
			}
		}()
		fmt.Fprintf(os.Stderr, "chaosnet: control plane on %s\n", *control)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	stats := proxy.Stats()
	proxy.Close()
	fmt.Fprintf(os.Stderr, "chaosnet: %d conn(s), %d dropped, %d reset, %d stalled, %d/%d bytes in/out\n",
		stats.Conns, stats.Dropped, stats.Resets, stats.Stalled, stats.BytesIn, stats.BytesOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaosnet:", err)
	os.Exit(1)
}
