// Command ptlserve is the fault-isolated simulation job service: a
// daemon that accepts simulation jobs over HTTP and executes each one
// in an isolated worker subprocess (a re-exec of this binary in a
// hidden worker mode), so one wedged, OOM-killed, or panicking
// simulation cannot take the service — or any other job — down with
// it. Workers checkpoint through the run supervisor into per-job
// rotation directories; a killed worker is respawned and resumes from
// its newest intact slot with bit-identical guest output.
//
// Examples:
//
//	ptlserve -addr 127.0.0.1:7483 -data /var/lib/ptlserve
//	curl -d '{"scale":"small","mode":"sim"}' localhost:7483/jobs
//	curl localhost:7483/jobs/0001
//	ptlmon -journal /var/lib/ptlserve/service.jsonl
//	ptlmon -inspect /var/lib/ptlserve/jobs/0001/ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the default profiling mux
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ptlsim/internal/jobd"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7483", "HTTP listen address")
		dataDir    = flag.String("data", "ptlserve-data", "service data directory (per-job specs, checkpoints, journals)")
		queueDepth = flag.Int("queue", 8, "bounded job queue depth (backpressure past it: HTTP 429)")
		workers    = flag.Int("workers", 2, "concurrent worker subprocesses")
		deadline   = flag.Duration("deadline", 10*time.Minute, "default per-attempt wall-clock deadline")
		hbTimeout  = flag.Duration("heartbeat-timeout", time.Minute, "kill a worker whose heartbeat goes stale for this long (0 = off)")
		memLimit   = flag.Int64("mem-limit-mb", 0, "default per-worker memory budget in MB (GOMEMLIMIT + RSS kill; 0 = unlimited)")
		restarts   = flag.Int("restarts", 2, "default worker-respawn budget per job")
		brkThresh  = flag.Int("breaker-threshold", 3, "consecutive non-retryable failures that open a config's circuit breaker")
		brkCool    = flag.Duration("breaker-cooldown", time.Minute, "how long an open breaker rejects a config before re-probing")
		retryAfter = flag.Duration("retry-after", 2*time.Second, "Retry-After hint on queue-full 429 responses until drain latency is measured")
		compactN   = flag.Int("compact-every", 256, "compact the durable job store after this many log records")
		tenQueued  = flag.Int("tenant-queued", 0, "default per-tenant queued-job quota (0 = unlimited; past it: HTTP 429)")
		tenRunning = flag.Int("tenant-running", 0, "default per-tenant running-job cap (0 = unlimited)")
		journalOut = flag.String("journal", "", "append the service job journal (JSONL) to this file (default <data>/service.jsonl)")
		drainWait  = flag.Duration("drain-timeout", 2*time.Minute, "SIGTERM: how long running jobs get to finish before workers are stopped")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")

		// Hidden worker mode: the daemon re-execs itself with this flag
		// pointing at a job directory. Not part of the public API.
		workerDir = flag.String("ptlserve-worker", "", "internal: run as an isolated job worker on this job directory")
	)
	policies := tenantPolicyFlag{}
	flag.Var(&policies, "tenant", "per-tenant policy override, repeatable: name=maxQueued:maxRunning:weight (0 = default, -1 = unlimited)")
	flag.Parse()

	if *workerDir != "" {
		os.Exit(jobd.WorkerMain(*workerDir, os.Stderr))
	}

	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	jpath := *journalOut
	if jpath == "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fatal(err)
		}
		jpath = *dataDir + "/service.jsonl"
	}
	jf, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fatal(err)
	}
	defer jf.Close()

	d, err := jobd.New(jobd.Config{
		Dir: *dataDir,
		WorkerCommand: func(jobDir string) *exec.Cmd {
			return exec.Command(self, "-ptlserve-worker", jobDir)
		},
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		Deadline:         *deadline,
		HeartbeatTimeout: *hbTimeout,
		MemLimitMB:       *memLimit,
		Restarts:         *restarts,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		RetryAfter:       *retryAfter,
		CompactEvery:     *compactN,
		TenantMaxQueued:  *tenQueued,
		TenantMaxRunning: *tenRunning,
		TenantPolicies:   policies,
		Journal:          jf,
	})
	if err != nil {
		fatal(err)
	}
	if rec := d.Recovery(); rec.Jobs > 0 {
		fmt.Fprintf(os.Stderr,
			"ptlserve: recovered %d job(s) from the store: %d terminal, %d requeued, %d running (adopt or respawn)",
			rec.Jobs, rec.Terminal, rec.Requeued, rec.Resumed)
		if rec.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "; skipped %d torn store line(s)", rec.Skipped)
		}
		fmt.Fprintln(os.Stderr)
	}
	d.Start()

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank
			// import above; kept off the service mux so profiling is
			// never exposed on the job API address by accident.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "ptlserve: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "ptlserve: pprof on %s\n", *pprofAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ptlserve: listening on %s (data %s, journal %s)\n", *addr, *dataDir, jpath)

	// SIGTERM/SIGINT: graceful drain — stop admitting (readyz goes
	// unready, submissions get 503), let running jobs finish and
	// checkpoint, then exit. A drain-timeout overrun SIGTERMs workers,
	// which land a final checkpoint through the supervisor interrupt
	// path before being stopped.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ptlserve: %v: draining (timeout %v)\n", sig, *drainWait)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	derr := d.Drain(ctx)
	srv.Shutdown(context.Background())
	if derr != nil {
		fmt.Fprintf(os.Stderr, "ptlserve: drain forced: %v\n", derr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "ptlserve: drained cleanly")
}

// tenantPolicyFlag parses repeated -tenant name=maxQueued:maxRunning:weight
// overrides into the daemon's policy map. Trailing fields may be
// omitted (name=16 sets just the queued quota).
type tenantPolicyFlag map[string]jobd.TenantPolicy

func (f *tenantPolicyFlag) String() string {
	parts := make([]string, 0, len(*f))
	for name, pol := range *f {
		parts = append(parts, fmt.Sprintf("%s=%d:%d:%d", name, pol.MaxQueued, pol.MaxRunning, pol.Weight))
	}
	return strings.Join(parts, ",")
}

func (f *tenantPolicyFlag) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=maxQueued[:maxRunning[:weight]], got %q", v)
	}
	var pol jobd.TenantPolicy
	dst := []*int{&pol.MaxQueued, &pol.MaxRunning, &pol.Weight}
	fields := strings.Split(rest, ":")
	if len(fields) > len(dst) {
		return fmt.Errorf("too many fields in %q", v)
	}
	for i, fv := range fields {
		if fv == "" {
			continue
		}
		n, err := strconv.Atoi(fv)
		if err != nil {
			return fmt.Errorf("bad number %q in %q", fv, v)
		}
		*dst[i] = n
	}
	if *f == nil {
		*f = map[string]jobd.TenantPolicy{}
	}
	(*f)[name] = pol
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptlserve:", err)
	os.Exit(1)
}
