// Command ptlsim is the simulator front end: it boots the full-system
// rsync benchmark domain and runs it under the selected engine, then
// reports statistics — the role of the PTLsim core binary in the paper.
//
// Examples:
//
//	ptlsim -mode sim -core k8                 # cycle accurate, K8 config
//	ptlsim -experiment table1                 # the paper's Table 1 run
//	ptlsim -experiment figure2 -o fig2.txt    # time-lapse mode series
//	ptlsim -mode sampled -sim-insns 100000 -native-insns 900000
//	ptlsim -stats-out run.json                # snapshots for ptlstats
//	ptlsim -supervise -journal run.jsonl      # resilient run with crash recovery
//	ptlsim -fuzz -fuzz-seqs 10000             # differential conformance fuzzing
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"ptlsim/internal/conformance"
	"ptlsim/internal/conformance/corpus"
	"ptlsim/internal/core"
	"ptlsim/internal/cosim"
	"ptlsim/internal/evlog"
	"ptlsim/internal/experiments"
	"ptlsim/internal/faultinject"
	"ptlsim/internal/guest"
	"ptlsim/internal/kern"
	"ptlsim/internal/ooo"
	"ptlsim/internal/selfcheck"
	"ptlsim/internal/simerr"
	"ptlsim/internal/snapshot"
	"ptlsim/internal/stats"
	"ptlsim/internal/supervisor"
)

// defaultMaxCycles is the default cycle budget for plain runs: large
// enough for every shipped workload scale, small enough that a hung
// simulation terminates with a structured error instead of spinning
// forever. Override with -maxcycles (0 = unlimited).
const defaultMaxCycles = 2_000_000_000

func main() {
	var (
		experiment = flag.String("experiment", "", "run a paper experiment: table1 | figure2 | figure3 | throughput")
		scale      = flag.String("scale", "bench", "workload scale: small | bench | paper")
		mode       = flag.String("mode", "sim", "execution engine: native | sim | sampled")
		coreKind   = flag.String("core", "k8", "core model config: default | k8")
		nfiles     = flag.Int("nfiles", 0, "override corpus file count")
		filesize   = flag.Int("filesize", 0, "override corpus file size (multiple of 512)")
		change     = flag.Float64("change", -1, "override corpus change fraction")
		timer      = flag.Uint64("timer", 0, "guest timer period in cycles (0 = default)")
		snapCycles = flag.Uint64("snapshot-cycles", 0, "statistics snapshot interval")
		maxCycles  = flag.Uint64("maxcycles", defaultMaxCycles, "abort after this many cycles (0 = unlimited)")
		watchdog   = flag.Uint64("watchdog", 10_000_000, "fail if a core commits nothing for this many cycles (0 = off)")
		selfcheckF = flag.Bool("selfcheck", false, "attach the lockstep commit oracle: shadow every commit on a sequential reference core")
		scInterval = flag.Int64("selfcheck-interval", 1, "compare architectural registers every N committed instructions")
		audit      = flag.Bool("audit", false, "arm the pipeline invariant auditor (ROB/LSQ/physreg/cache/RAS structural checks)")
		auditEvery = flag.Uint64("audit-every", 64, "run the auditor every N cycles")
		triage     = flag.Bool("triage", true, "with -supervise: on a self-check failure, run the checkpoint-seeded divergence search and journal the result")
		inject     = flag.String("inject", "", "fault specs, ';'-separated: kind@insn[:k=v,...] (regflip|memflip|tlbflush|memdelay|robcorrupt)")
		ckptCycles = flag.Uint64("checkpoint-cycles", 0, "checkpoint the machine every N cycles (0 = off)")
		ckptOut    = flag.String("checkpoint-out", "", "write each checkpoint to <prefix>.<k>.ckpt")
		restoreIn  = flag.String("restore", "", "resume from a checkpoint file instead of booting the benchmark")
		supervise  = flag.Bool("supervise", false, "run under the resilient supervisor: retry retryable failures from rotated checkpoints")
		ckptDir    = flag.String("checkpoint-dir", "ptlsim-ckpt", "supervisor checkpoint rotation directory")
		keepCkpts  = flag.Int("keep-checkpoints", 3, "supervisor checkpoint rotation depth")
		maxRetries = flag.Int("max-retries", 5, "supervisor restore-and-retry budget for the whole run")
		degradeAft = flag.Int("degrade-after", 2, "consecutive failures at one restore point before the window runs on the sequential core (negative = never degrade)")
		journalOut = flag.String("journal", "", "append the supervisor run journal (JSONL) to this file")
		fuzzF      = flag.Bool("fuzz", false, "run a differential conformance fuzz campaign instead of the benchmark")
		fuzzSeqs   = flag.Int("fuzz-seqs", 1000, "fuzz: sequences to generate and dual-execute")
		fuzzSeed   = flag.Int64("fuzz-seed", 1, "fuzz: campaign seed (same seed regenerates the same stream)")
		fuzzInsns  = flag.Int64("fuzz-max-insns", 0, "fuzz: per-case committed-instruction budget (0 = default)")
		fuzzUnits  = flag.Int("fuzz-max-units", 0, "fuzz: max instruction units per sequence (0 = default)")
		fuzzTSeeds = flag.Int("fuzz-timing-seeds", 0, "fuzz: extra scrambled-predictor timing seeds per case")
		fuzzOut    = flag.String("fuzz-promote", "", "fuzz: write minimized reproducers into this directory")
		fuzzBench  = flag.String("fuzz-bench-out", "", "fuzz: write campaign throughput metrics as JSON")
		simInsns   = flag.Int64("sim-insns", 100_000, "sampled mode: simulated instructions per period")
		natInsns   = flag.Int64("native-insns", 900_000, "sampled mode: native instructions per period")
		statsOut   = flag.String("stats-out", "", "write snapshot series as JSON for ptlstats")
		out        = flag.String("o", "", "write report to file instead of stdout")
		dumpStats  = flag.String("dump", "", "dump final counters matching this prefix")
		evlogOut   = flag.String("evlog", "", "record the pipeline event-log ring and write it as JSONL (render with ptlstats -pipeline)")
		evlogSize  = flag.Int("evlog-size", evlog.DefaultSize, "event-log ring capacity (rounded up to a power of two)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context: the run loops stop at the
	// next instruction boundary and, where checkpointing is configured, a
	// final checkpoint is written before a clean exit. Once the context
	// is cancelled the handler is released, so a second signal kills the
	// process the ordinary way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() { <-ctx.Done(); stopSignals() }()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	cfg := pickScale(*scale)
	if *nfiles > 0 {
		cfg.Corpus.NFiles = *nfiles
	}
	if *filesize > 0 {
		cfg.Corpus.FileSize = *filesize
	}
	if *change >= 0 {
		cfg.Corpus.ChangeFraction = *change
	}
	if *timer > 0 {
		cfg.TimerPeriod = *timer
	}
	if *snapCycles > 0 {
		cfg.SnapshotCycles = *snapCycles
	}
	// -maxcycles always wins when given explicitly (including 0 for
	// unlimited); otherwise the default budget applies unless the
	// experiment scale configured its own.
	maxSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "maxcycles" {
			maxSet = true
		}
	})
	if maxSet || cfg.MaxCycles == 0 {
		cfg.MaxCycles = *maxCycles
	}

	if *experiment != "" {
		runExperiment(w, *experiment, cfg)
		return
	}

	if *fuzzF {
		runFuzz(ctx, w, fuzzFlags{
			seqs: *fuzzSeqs, seed: *fuzzSeed, maxInsns: *fuzzInsns,
			maxUnits: *fuzzUnits, timingSeeds: *fuzzTSeeds,
			promote: *fuzzOut, benchOut: *fuzzBench,
			journal: *journalOut, inject: *inject,
		})
		return
	}

	// Plain benchmark run (or checkpoint resume).
	mcfg := core.Config{Core: coreConfig(*coreKind), NativeCPI: 1,
		SnapshotCycles: cfg.SnapshotCycles, ThreadsPerCore: 1,
		WatchdogCycles: *watchdog,
		SelfCheck: selfcheck.Config{Oracle: *selfcheckF, Interval: *scInterval,
			Audit: *audit, AuditEvery: *auditEvery}}
	if err := mcfg.Validate(); err != nil {
		fatal(err)
	}
	var m *core.Machine
	tree := stats.NewTree()
	if *restoreIn != "" {
		ckimg, err := snapshot.ReadFile(*restoreIn)
		if err != nil {
			fatal(err)
		}
		if m, err = snapshot.Restore(ckimg, mcfg); err != nil {
			fatal(err)
		}
		tree = m.Tree
	} else {
		spec, err := guest.RsyncBenchmark(cfg.Corpus, cfg.TimerPeriod)
		if err != nil {
			fatal(err)
		}
		spec.Tree = tree
		img, err := kern.Build(spec)
		if err != nil {
			fatal(err)
		}
		m = core.NewMachine(img.Domain, tree, mcfg)
	}

	if *inject != "" {
		specs, err := faultinject.ParseList(*inject)
		if err != nil {
			fatal(err)
		}
		faultinject.New(specs...).Attach(m)
	}

	var elog *evlog.Log
	if *evlogOut != "" {
		elog = evlog.New(*evlogSize)
		m.SetEventLog(elog)
	}
	// writeEvlog lands the recorded ring as JSONL — on every exit path,
	// because the ring's whole point is to survive the failing runs.
	writeEvlog := func() {
		if elog == nil {
			return
		}
		f, ferr := os.Create(*evlogOut)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "ptlsim: evlog:", ferr)
			return
		}
		defer f.Close()
		if werr := evlog.WriteJSON(f, elog.Events()); werr != nil {
			fmt.Fprintln(os.Stderr, "ptlsim: evlog:", werr)
			return
		}
		fmt.Fprintf(os.Stderr, "ptlsim: evlog: %d event(s) written to %s\n", elog.Len(), *evlogOut)
	}

	var err error
	var sup *supervisor.Supervisor
	switch *mode {
	case "native", "sim":
		if *mode == "sim" {
			m.SwitchMode(core.ModeSim)
		}
		switch {
		case *supervise:
			interval := *ckptCycles
			if interval == 0 {
				interval = 10_000_000
			}
			var jw io.Writer
			if *journalOut != "" {
				jf, jerr := os.OpenFile(*journalOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if jerr != nil {
					fatal(jerr)
				}
				defer jf.Close()
				jw = jf
			}
			sup, err = supervisor.New(m, supervisor.Config{
				Interval: interval, MaxCycles: cfg.MaxCycles,
				Dir: *ckptDir, Keep: *keepCkpts,
				MaxRetries: *maxRetries, DegradeAfter: *degradeAft,
				Journal: jw, Triage: *triage,
			})
			if err != nil {
				fatal(err)
			}
			err = sup.Run(ctx)
			m = sup.M
		case *ckptCycles > 0:
			r := snapshot.NewRunner(m, *ckptCycles)
			if *ckptOut != "" {
				prefix := *ckptOut
				r.OnCheckpoint = func(k int, img *snapshot.Image, _ []byte) error {
					return img.WriteFile(fmt.Sprintf("%s.%d.ckpt", prefix, k))
				}
			}
			err = r.RunCtx(ctx, cfg.MaxCycles)
			m = r.M // the runner swaps machines at each checkpoint
		default:
			err = m.RunCtx(ctx, cfg.MaxCycles)
		}
	case "sampled":
		if *supervise {
			fatal(fmt.Errorf("-supervise supports -mode native|sim only"))
		}
		err = cosim.RunSampled(m, cosim.SampleConfig{SimInsns: *simInsns, NativeInsns: *natInsns}, cfg.MaxCycles)
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	if err != nil {
		writeEvlog()
		switch {
		case errors.Is(err, supervisor.ErrInterrupted):
			// The supervisor already wrote the final checkpoint.
			fmt.Fprintln(os.Stderr, "ptlsim:", err)
			os.Exit(0)
		case errors.Is(err, context.Canceled):
			exitInterrupted(m, *ckptOut, err)
		}
		if se, ok := simerr.As(err); ok {
			fmt.Fprintln(os.Stderr, "ptlsim:", se.Detail())
			os.Exit(1)
		}
		fatal(err)
	}
	writeEvlog()
	if sup != nil {
		res := sup.Result()
		fmt.Fprintf(os.Stderr, "ptlsim: supervised run complete: attempts=%d retries=%d degraded-windows=%d last-checkpoint=%s\n",
			res.Attempts, res.Retries, res.DegradedWindows, res.FinalSlot)
	}

	fmt.Fprintf(w, "console output:\n%s\n", m.Dom.Console())
	fmt.Fprintf(w, "cycles: %d  instructions: %d\n", m.Cycle, m.Insns())
	if *dumpStats != "" {
		final := tree.Snapshot(m.Cycle)
		if err := final.WriteTable(w, *dumpStats); err != nil {
			fatal(err)
		}
	}
	if *statsOut != "" {
		if err := writeStats(*statsOut, m, tree); err != nil {
			fatal(err)
		}
	}
}

type fuzzFlags struct {
	seqs        int
	seed        int64
	maxInsns    int64
	maxUnits    int
	timingSeeds int
	promote     string
	benchOut    string
	journal     string
	inject      string
}

// runFuzz drives a conformance fuzz campaign: generate sequences, run
// them through both engines under the commit oracle, shrink and
// promote findings. Exits nonzero when the campaign found anything.
func runFuzz(ctx context.Context, w *os.File, ff fuzzFlags) {
	run := conformance.Config{MaxInsns: ff.maxInsns}
	for k := 0; k < ff.timingSeeds; k++ {
		run.TimingSeeds = append(run.TimingSeeds, ff.seed*1_000_003+int64(k)+1)
	}
	if ff.inject != "" {
		specs, err := faultinject.ParseList(ff.inject)
		if err != nil {
			fatal(err)
		}
		run.Instrument = func(m *core.Machine) { faultinject.New(specs...).Attach(m) }
	}
	var j *supervisor.Journal
	if ff.journal != "" {
		jf, err := os.OpenFile(ff.journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer jf.Close()
		j = supervisor.NewJournal(jf)
	}
	// The shared seed corpus feeds the byte-level mutator; outside a
	// repo checkout (no go.mod to anchor on) the pool is just empty and
	// every sequence comes from the DSL templates.
	var pool [][]byte
	if dir, derr := corpus.SeedDir(); derr == nil {
		cases, lerr := corpus.Load(dir)
		if lerr != nil {
			fatal(lerr)
		}
		for _, cs := range cases {
			if code, cerr := cs.Code(); cerr == nil && len(code) > 0 {
				pool = append(pool, code)
			}
		}
	}
	res, err := conformance.RunCampaign(ctx, conformance.CampaignConfig{
		Run: run, Seqs: ff.seqs, Seed: ff.seed, MaxUnits: ff.maxUnits,
		SeedPool: pool, Journal: j, PromoteDir: ff.promote,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "fuzz: %d sequences in %.1fs (%.1f seqs/sec), %d findings, shrink %dms\n",
		res.Seqs, res.ElapsedSec, res.SeqsPerSec, len(res.Findings), res.ShrinkMs)
	for _, f := range res.Findings {
		fmt.Fprintf(w, "  [%s] %s: %s\n", f.Finding.Kind, f.Case.Name, f.Finding.Diag)
	}
	for _, p := range res.Promoted {
		fmt.Fprintf(w, "  promoted %s\n", p)
	}
	if ff.benchOut != "" {
		bench := map[string]any{
			"seqs": res.Seqs, "elapsed_sec": res.ElapsedSec,
			"seqs_per_sec": res.SeqsPerSec, "shrink_ms": res.ShrinkMs,
			"findings": len(res.Findings),
		}
		data, merr := json.MarshalIndent(bench, "", " ")
		if merr != nil {
			fatal(merr)
		}
		if werr := os.WriteFile(ff.benchOut, data, 0o644); werr != nil {
			fatal(werr)
		}
	}
	if res.Interrupted {
		fmt.Fprintln(os.Stderr, "ptlsim: fuzz campaign interrupted")
		os.Exit(130)
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

func pickScale(s string) experiments.Config {
	switch s {
	case "small":
		cfg := experiments.BenchScale()
		cfg.Corpus = guest.CorpusSpec{NFiles: 2, FileSize: 2048, Seed: 7, ChangeFraction: 0.3}
		return cfg
	case "paper":
		return experiments.PaperScale()
	default:
		return experiments.BenchScale()
	}
}

func coreConfig(kind string) ooo.Config {
	if kind == "default" {
		return ooo.DefaultConfig()
	}
	return ooo.K8Config()
}

func runExperiment(w *os.File, name string, cfg experiments.Config) {
	res, err := experiments.RunTable1(cfg)
	if err != nil {
		fatal(err)
	}
	switch name {
	case "table1":
		fmt.Fprintf(w, "Table 1: PTLsim vs reference K8 counter model\n")
		fmt.Fprintf(w, "(benchmark: %s)\n\n", res.SimConsole)
		res.WriteTable(w)
	case "figure2":
		fmt.Fprintf(w, "Figure 2: cycles per mode per snapshot interval\n")
		if err := res.Series.WriteSeries(w, experiments.Figure2Columns()...); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "\noverall: user %.1f%%  kernel %.1f%%  idle %.1f%%\n",
			res.UserPct, res.KernelPct, res.IdlePct)
	case "figure3":
		fmt.Fprintf(w, "Figure 3: microarchitectural rates per snapshot interval\n")
		if err := res.Series.WriteSeries(w, experiments.Figure3Columns()...); err != nil {
			fatal(err)
		}
	case "throughput":
		fmt.Fprintf(w, "simulated %d cycles in %v: %.0f cycles/second\n",
			res.SimCycles, res.SimWall, res.Throughput)
	default:
		fatal(fmt.Errorf("unknown experiment %q", name))
	}
}

// statsFile is the JSON schema consumed by cmd/ptlstats.
type statsFile struct {
	Cycles    uint64            `json:"cycles"`
	Final     map[string]int64  `json:"final"`
	Interval  uint64            `json:"interval"`
	Snapshots []statsSnapshot   `json:"snapshots"`
}

type statsSnapshot struct {
	Cycle  uint64           `json:"cycle"`
	Values map[string]int64 `json:"values"`
}

func writeStats(path string, m *core.Machine, tree *stats.Tree) error {
	series := m.Series()
	sf := statsFile{
		Cycles:   m.Cycle,
		Final:    tree.Snapshot(m.Cycle).Values,
		Interval: series.Interval,
	}
	for _, s := range series.Snapshots {
		sf.Snapshots = append(sf.Snapshots, statsSnapshot{Cycle: s.Cycle, Values: s.Values})
	}
	data, err := json.MarshalIndent(sf, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// exitInterrupted handles SIGINT/SIGTERM on unsupervised runs. The run
// loops guarantee the machine stopped at an instruction boundary, so
// when a checkpoint prefix is configured the state is captured to
// <prefix>.final.ckpt — resumable with -restore — and the exit is
// clean; without one the process exits with the conventional 130.
func exitInterrupted(m *core.Machine, ckptOut string, cause error) {
	fmt.Fprintln(os.Stderr, "ptlsim:", cause)
	if ckptOut != "" {
		path := ckptOut + ".final.ckpt"
		if err := snapshot.Capture(m).WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "ptlsim: final checkpoint failed:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ptlsim: final checkpoint written; resume with -restore %s\n", path)
		os.Exit(0)
	}
	os.Exit(130)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptlsim:", err)
	os.Exit(1)
}
