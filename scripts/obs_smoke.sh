#!/bin/sh
# Observability smoke: run a small simulation with the pipeline event
# log attached, render the captured ring through every exporter
# (Chrome trace JSON, Konata, text dump), then boot ptlserve, push one
# job through it, and scrape GET /metrics — asserting the Prometheus
# exposition carries live job-level series and that ptlmon renders the
# same numbers in its remote summary.
#
# SERVE_PORT picks the daemon listen port (default 17489).
set -eu

port="${SERVE_PORT:-17489}"
bin="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

echo "== building ptlsim/ptlstats/ptlserve/ptlmon"
go build -o "$bin/ptlsim" ./cmd/ptlsim
go build -o "$bin/ptlstats" ./cmd/ptlstats
go build -o "$bin/ptlserve" ./cmd/ptlserve
go build -o "$bin/ptlmon" ./cmd/ptlmon

echo "== simulating with -evlog"
"$bin/ptlsim" -scale bench -nfiles 1 -filesize 1024 -change 0.4 \
	-evlog "$bin/run.evlog.jsonl" >"$bin/report.txt"
grep -q '"evlog":1' "$bin/run.evlog.jsonl" || {
	echo "event log missing header"
	exit 1
}
events=$(($(wc -l <"$bin/run.evlog.jsonl") - 1))
if [ "$events" -lt 100 ]; then
	echo "event log suspiciously small: $events events"
	exit 1
fi
echo "   captured $events events"

echo "== rendering exporters"
"$bin/ptlstats" -pipeline "$bin/run.evlog.jsonl" -format chrome -o "$bin/trace.json"
head -c 1 "$bin/trace.json" | grep -q '\[' || {
	echo "chrome trace is not a JSON array"
	exit 1
}
grep -q '"ph":"X"' "$bin/trace.json" || {
	echo "chrome trace has no complete slices"
	exit 1
}
"$bin/ptlstats" -pipeline "$bin/run.evlog.jsonl" -format konata -o "$bin/trace.kanata"
head -1 "$bin/trace.kanata" | grep -q '^Kanata' || {
	echo "konata output missing header"
	exit 1
}
"$bin/ptlstats" -pipeline "$bin/run.evlog.jsonl" -format text -o "$bin/trace.txt"
grep -q 'commit' "$bin/trace.txt" || {
	echo "text dump records no commits"
	exit 1
}
echo "   chrome/konata/text exporters OK"

echo "== booting ptlserve"
"$bin/ptlserve" -addr "127.0.0.1:$port" -data "$bin/data" -workers 1 &
daemon_pid=$!
i=0
until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "daemon never came up"
		exit 1
	fi
	sleep 0.1
done

echo "== running one job"
curl -sf -d '{"scale":"bench","nfiles":1,"filesize":1024,"seed":5,"change":0.4,"timer":4000000000,"maxcycles":-1,"checkpoint_cycles":50000}' \
	"http://127.0.0.1:$port/jobs" >"$bin/submit.json"
id=$(sed -n 's/.*"id":"\([0-9]*\)".*/\1/p' "$bin/submit.json")
[ -n "$id" ] || {
	echo "no job id in submit response"
	exit 1
}
i=0
while :; do
	st=$(curl -sf "http://127.0.0.1:$port/jobs/$id")
	case "$st" in
	*'"state":"done"'*) break ;;
	*'"state":"failed"'*)
		echo "job failed: $st"
		exit 1
		;;
	esac
	i=$((i + 1))
	if [ "$i" -gt 600 ]; then
		echo "job did not finish: $st"
		exit 1
	fi
	sleep 0.5
done

echo "== scraping /metrics"
curl -sf "http://127.0.0.1:$port/metrics" >"$bin/metrics.txt"
for series in jobd_jobs_submitted jobd_jobs_done jobd_queue_depth jobd_breaker_open; do
	grep -q "^$series " "$bin/metrics.txt" || {
		echo "/metrics missing series $series:"
		cat "$bin/metrics.txt"
		exit 1
	}
done
grep -q '^jobd_jobs_done 1$' "$bin/metrics.txt" || {
	echo "jobd_jobs_done should be 1 after one job:"
	grep '^jobd_jobs' "$bin/metrics.txt"
	exit 1
}
sed 's/^/   /' "$bin/metrics.txt" | grep -E 'jobd_(jobs|queue|breaker)' | head -12

echo "== ptlmon remote summary"
"$bin/ptlmon" -addr "http://127.0.0.1:$port" >"$bin/mon.txt"
grep -q 'breaker open for' "$bin/mon.txt" || {
	echo "ptlmon summary missing metrics line:"
	cat "$bin/mon.txt"
	exit 1
}
sed 's/^/   /' "$bin/mon.txt"

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
echo "obs smoke: OK"
