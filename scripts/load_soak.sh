#!/bin/sh
# load_soak: the multi-tenant overload soak. Boot one ptlserve daemon
# with per-tenant quotas and weights, then fire a storm of concurrent
# submissions from four competing tenants:
#
#   greedy   — floods low-priority jobs far past its queued quota
#   latency  — fewer, high-priority jobs on a weight-8 fair share
#   chaos    — submits through a chaosnet proxy with a bandwidth cap
#   deadline — carries a client deadline too tight for the backlog
#
# The admission layer must hold the line: zero accepted jobs lost or
# duplicated, greedy throttled by its quota (429s with Retry-After),
# the latency tenant's fair share keeping its queue waits below the
# greedy tenant's (no priority inversion), deadline-overrun jobs shed
# at admission, and p99 admission latency bounded — all verified from
# the ptlload reports, the service journal, and the /metrics scrape.
#
# Knobs: LOAD_JOBS (total submissions across tenants, default 800; the
# acceptance run is LOAD_JOBS=10000), LOAD_PORT (base port, default
# 17520), LOAD_DATA (data dir; CI sets a workspace path so journals
# and reports survive failures).
set -eu

base_port="${LOAD_PORT:-17520}"
total="${LOAD_JOBS:-800}"
bin="$(mktemp -d)"
data="${LOAD_DATA:-$bin/data}"
pids=""
trap 'for p in $pids; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$bin"' EXIT

pserve=$base_port
pproxy=$((base_port + 1))
pctl=$((base_port + 2))

# Tenant shares of the total submission count.
n_greedy=$((total * 45 / 100))
n_latency=$((total * 25 / 100))
n_chaos=$((total * 15 / 100))
n_deadline=$((total - n_greedy - n_latency - n_chaos))

echo "== building ptlserve/ptlload/ptlmon/chaosnet"
go build -o "$bin/ptlserve" ./cmd/ptlserve
go build -o "$bin/ptlload" ./cmd/ptlload
go build -o "$bin/ptlmon" ./cmd/ptlmon
go build -o "$bin/chaosnet" ./cmd/chaosnet
mkdir -p "$data"

wait_http() { # wait_http <url>
	i=0
	until curl -sf "$1" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "no answer from $1 (logs in $data)"
			exit 1
		fi
		sleep 0.1
	done
}

echo "== starting ptlserve with per-tenant quotas + chaosnet (bandwidth-capped) in front"
"$bin/ptlserve" -addr "127.0.0.1:$pserve" -data "$data/serve" -workers 4 \
	-queue 256 \
	-tenant "greedy=48:0:1" \
	-tenant "latency=64:0:8" \
	-tenant "chaos=64:0:2" \
	-tenant "deadline=64:0:2" \
	>>"$data/serve.log" 2>&1 &
d=$!
"$bin/chaosnet" -listen "127.0.0.1:$pproxy" -target "127.0.0.1:$pserve" \
	-control "127.0.0.1:$pctl" -seed 7 >>"$data/chaosnet.log" 2>&1 &
cn=$!
pids="$d $cn"
wait_http "http://127.0.0.1:$pserve/healthz"
wait_http "http://127.0.0.1:$pctl/faults"
curl -sf -X POST -d '{"bandwidth_bps":65536}' "http://127.0.0.1:$pctl/faults" >/dev/null
echo "   chaos tenant link capped at 64 KiB/s"

echo "== storm: $total submissions (greedy $n_greedy, latency $n_latency, chaos $n_chaos, deadline $n_deadline)"
load() { # load <tenant> <n> <extra flags...>
	tenant=$1
	n=$2
	shift 2
	"$bin/ptlload" -addr "http://127.0.0.1:$pserve" -tenant "$tenant" -n "$n" \
		-scale bench -nfiles 1 -filesize 1024 \
		-out "$data/$tenant.json" "$@" >>"$data/$tenant.log" 2>&1
}
load greedy "$n_greedy" -concurrency 32 -priority 1 &
lg=$!
load latency "$n_latency" -concurrency 16 -priority 9 &
ll=$!
"$bin/ptlload" -addr "http://127.0.0.1:$pproxy" -tenant chaos -n "$n_chaos" \
	-scale bench -nfiles 1 -filesize 1024 \
	-concurrency 8 -timeout 30s -out "$data/chaos.json" >>"$data/chaos.log" 2>&1 &
lc=$!
# The deadline tenant is the late arrival: hold it until the daemon has
# completed a few jobs (so the drain-rate ring is warm — a cold ring
# fails open and admits everything) and the storm's backlog is real.
i=0
while :; do
	done_n=$(curl -sf "http://127.0.0.1:$pserve/statz" |
		sed -n 's/.*"jobd.jobs.done": \{0,1\}\([0-9][0-9]*\).*/\1/p')
	[ "${done_n:-0}" -ge 4 ] && break
	i=$((i + 1))
	if [ "$i" -gt 600 ]; then
		echo "daemon never completed a job; can't warm the drain-rate ring"
		exit 1
	fi
	sleep 0.1
done
# 1s is comfortably above one bench job's run time (so admitted jobs
# never blow the attempt deadline) but far below the storm's estimated
# queue wait now that the latency ring is warm — shedding must engage.
load deadline "$n_deadline" -concurrency 16 -deadline 1s &
ld=$!
pids="$pids $lg $ll $lc $ld"
fail=0
for p in $lg $ll $lc $ld; do
	wait "$p" || fail=1
done
if [ "$fail" != "0" ]; then
	echo "a ptlload tenant reported transport errors; logs:"
	tail -5 "$data"/greedy.log "$data"/latency.log "$data"/chaos.log "$data"/deadline.log
	exit 1
fi

field() { # field <file> <name> -> integer value
	sed -n "s/.*\"$2\": \{0,1\}\([0-9][0-9]*\).*/\1/p" "$data/$1.json" | head -1
}

echo "== waiting for the accepted backlog to drain"
i=0
while :; do
	depth=$(curl -sf "http://127.0.0.1:$pserve/metrics" |
		awk '/^jobd_queue_depth |^jobd_jobs_running /{s += $2} END{print s + 0}')
	[ "$depth" = "0" ] && break
	i=$((i + 1))
	if [ "$i" -gt 1200 ]; then
		echo "backlog never drained (depth $depth)"
		exit 1
	fi
	sleep 0.5
done

echo "== asserting: zero lost, zero duplicated"
for t in greedy latency chaos deadline; do
	grep -o '"[0-9][0-9]*"' "$data/$t.json" | tr -d '"'
done | sort >"$data/accepted.ids"
dups=$(uniq -d <"$data/accepted.ids")
if [ -n "$dups" ]; then
	echo "duplicated job IDs across tenant reports: $dups"
	exit 1
fi
curl -sf "http://127.0.0.1:$pserve/jobs" |
	grep -o '"id":"[0-9]*"' | sed 's/.*"id":"\([0-9]*\)".*/\1/' | sort >"$data/daemon.ids"
if ! cmp -s "$data/accepted.ids" "$data/daemon.ids"; then
	echo "accepted IDs and daemon jobs diverge:"
	diff "$data/accepted.ids" "$data/daemon.ids" | head -10
	exit 1
fi
accepted=$(wc -l <"$data/accepted.ids" | tr -d ' ')
failed=$(curl -sf "http://127.0.0.1:$pserve/statz" |
	sed -n 's/.*"jobd.jobs.failed": \{0,1\}\([0-9][0-9]*\).*/\1/p')
if [ "${failed:-0}" != "0" ]; then
	echo "jobd.jobs.failed = $failed, want 0"
	exit 1
fi

echo "== asserting: quota enforcement and deadline shedding"
quota=$(field greedy quota_rejected)
shed=$(field deadline shed)
if [ "${quota:-0}" -lt 1 ]; then
	echo "greedy quota_rejected=$quota — the quota never engaged?"
	exit 1
fi
if [ "${shed:-0}" -lt 1 ]; then
	echo "deadline shed=$shed — shedding never engaged?"
	exit 1
fi
if ! grep -q '"kind":"tenant-quota"' "$data/serve/service.jsonl"; then
	echo "journal has no tenant-quota reject entries"
	exit 1
fi
if ! grep -q '"kind":"deadline-shed"' "$data/serve/service.jsonl"; then
	echo "journal has no deadline-shed entries"
	exit 1
fi

echo "== asserting: no priority inversion (journal queue waits by tenant)"
# Mean queue wait per tenant from job-start journal entries; the
# weight-8 latency tenant must clear the queue faster than greedy.
waits=$(awk -F'"' '
	/"event":"job_start"/ {
		tenant = ""; wait = 0
		for (i = 1; i < NF; i++) {
			if ($i == "tenant") { tenant = $(i + 2) }
			if ($i == "queue_wait_ms") {
				split($(i + 1), a, /[:,}]/); wait = a[2] + 0
			}
		}
		if (tenant != "") { sum[tenant] += wait; n[tenant]++ }
	}
	END {
		g = (n["greedy"] ? sum["greedy"] / n["greedy"] : -1)
		l = (n["latency"] ? sum["latency"] / n["latency"] : -1)
		printf "%.0f %.0f\n", g, l
	}
' "$data/serve/service.jsonl")
g_wait=${waits% *}
l_wait=${waits#* }
if [ "$g_wait" = "-1" ] || [ "$l_wait" = "-1" ]; then
	echo "journal missing job-start entries for a tenant (greedy=$g_wait latency=$l_wait)"
	exit 1
fi
if [ "$l_wait" -gt "$g_wait" ]; then
	echo "priority inversion: latency mean wait ${l_wait}ms > greedy ${g_wait}ms"
	exit 1
fi
echo "   mean queue wait: latency ${l_wait}ms <= greedy ${g_wait}ms"

echo "== asserting: bounded p99 admission latency (/metrics histogram)"
curl -sf "http://127.0.0.1:$pserve/metrics" >"$data/metrics.txt"
p99=$(awk '
	/^jobd_admission_latency_ms_bucket/ {
		le = $0; sub(/.*le="/, "", le); sub(/".*/, "", le)
		bucket[++nb] = le; cum[nb] = $2
	}
	/^jobd_admission_latency_ms_count/ { count = $2 }
	END {
		if (count == 0) { print "none"; exit }
		want = count * 0.99
		for (i = 1; i <= nb; i++) if (cum[i] >= want) { print bucket[i]; exit }
		print "+Inf"
	}
' "$data/metrics.txt")
case "$p99" in
none | +Inf)
	echo "admission latency p99 bucket = $p99 ms — unbounded or unmeasured"
	exit 1
	;;
esac
echo "   admission p99 <= ${p99}ms"

echo "== asserting: the chaos tenant really was bandwidth-capped"
bw_waits=$(curl -sf "http://127.0.0.1:$pctl/stats" |
	sed -n 's/.*"bw_waits": \{0,1\}\([0-9][0-9]*\).*/\1/p')
if [ "${bw_waits:-0}" -lt 1 ]; then
	echo "chaosnet bw_waits=$bw_waits — the bandwidth cap never throttled"
	exit 1
fi
chaos_ok=$(field chaos accepted)
echo "   chaos tenant: $chaos_ok accepted through a capped link ($bw_waits token waits)"

echo "== per-tenant summary (ptlmon -addr)"
"$bin/ptlmon" -addr "http://127.0.0.1:$pserve" -limit 5 | sed 's/^/   /'

echo "== draining the daemon"
kill -TERM "$d" 2>/dev/null || true
wait "$d" 2>/dev/null || true
kill -TERM "$cn" 2>/dev/null || true
pids=""
echo "load soak: OK ($total submissions, 4 tenants, $accepted accepted, $quota quota 429s, $shed shed)"
