#!/bin/sh
# bench_snapshot: run the paper-replication benchmark suite and append
# a dated snapshot to BENCH_core.json, the core-simulator throughput
# trajectory (sibling of BENCH_conformance.json). Each benchmark's
# ns/op plus its custom ReportMetric columns (sim-cycles/s, mispredict
# rates, ablation deltas, ...) are captured verbatim, so regressions in
# simulator speed or model behavior show up as a diff in version
# control, not as a feeling.
#
# Knobs: BENCH_PATTERN (go test -bench regexp, default the full suite),
# BENCH_COUNT (repetitions, default 1), BENCH_OUT (default
# BENCH_core.json in the repo root).
set -eu

pattern="${BENCH_PATTERN:-.}"
count="${BENCH_COUNT:-1}"
out="${BENCH_OUT:-BENCH_core.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench '$pattern' -count $count (run log: stderr)"
go test -run '^$' -bench "$pattern" -benchtime 1x -count "$count" . | tee "$raw" >&2

date="$(date +%Y-%m-%d)"
entry=$(awk -v date="$date" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip -GOMAXPROCS suffix
		if (n > 0) printf ",\n"
		printf "   {\n    \"name\": \"%s\",\n    \"iters\": %s", name, $2
		for (i = 3; i + 1 <= NF; i += 2)
			printf ",\n    \"%s\": %s", $(i + 1), $i
		printf "\n   }"
		n++
	}
	END { if (n == 0) exit 1 }
' "$raw") || {
	echo "bench_snapshot: no benchmark lines in output" >&2
	exit 1
}

if [ ! -f "$out" ]; then
	cat >"$out" <<'EOF'
{
 "comment": "Core simulator benchmark trajectory. One entry per recorded run of `make bench-snapshot` (go test -bench over the paper-replication suite: Table 1 conformance deltas, Figure 2/3 phase and cache behavior, sim-cycle throughput, and the microarchitectural ablations). Units are embedded per metric exactly as the benchmarks report them.",
 "runs": [
 ]
}
EOF
fi

# Append this run inside the "runs" array: drop the closing " ]\n}" and
# re-emit it after the new entry.
tmp="$(mktemp)"
nruns=$(grep -c '"date":' "$out" || true)
head -n -2 "$out" >"$tmp"
if [ "${nruns:-0}" -gt 0 ]; then
	# terminate the previous entry's closing brace with a comma
	sed -i '$ s/}$/},/' "$tmp"
fi
{
	printf '  {\n   "date": "%s",\n   "benchmarks": [\n' "$date"
	printf '%s\n' "$entry"
	printf '   ]\n  }\n ]\n}\n'
} >>"$tmp"
mv "$tmp" "$out"
echo "bench snapshot: appended $(printf '%s\n' "$entry" | grep -c '"name"') benchmark(s) to $out"
