#!/bin/sh
# fleet_soak: the multi-node campaign dispatch chaos soak. Boot three
# ptlserve daemons — the third behind a chaosnet fault proxy — and run
# one ptlsweep campaign across them. Mid-sweep, one daemon is SIGKILLed
# (and never restarted: graceful degradation, not failover theater) and
# the proxied daemon is network-partitioned for longer than the lease
# TTL, then healed. The sweep must still complete: zero lost cells,
# zero duplicated verdicts (the fencing invariant), replica cells with
# bit-identical console FNV, and one merged campaign report rendered by
# ptlmon -journal.
#
# Knobs: FLEET_JOBS (campaign cells, even, default 48; the acceptance
# campaign is FLEET_JOBS=1000), FLEET_SEED (campaign seed base, default
# $$), FLEET_PORT (base port, default 17490), FLEET_DATA (data dir; CI
# sets a workspace path so journals/reports survive failures).
set -eu

base_port="${FLEET_PORT:-17490}"
njobs="${FLEET_JOBS:-48}"
seed="${FLEET_SEED:-$$}"
bin="$(mktemp -d)"
data="${FLEET_DATA:-$bin/data}"
nseeds=$((njobs / 2)) # repeats=2 → cells = 2 * seeds
pids=""
trap 'for p in $pids; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$bin"' EXIT

p1=$base_port
p2=$((base_port + 1))
p3=$((base_port + 2))
pproxy=$((base_port + 3))
pctl=$((base_port + 4))

echo "== building ptlserve/ptlsweep/ptlmon/chaosnet"
go build -o "$bin/ptlserve" ./cmd/ptlserve
go build -o "$bin/ptlsweep" ./cmd/ptlsweep
go build -o "$bin/ptlmon" ./cmd/ptlmon
go build -o "$bin/chaosnet" ./cmd/chaosnet
mkdir -p "$data"

wait_http() { # wait_http <url>
	i=0
	until curl -sf "$1" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "no answer from $1 (logs in $data)"
			exit 1
		fi
		sleep 0.1
	done
}

start_daemon() { # start_daemon <n> <port> -> pid on stdout
	"$bin/ptlserve" -addr "127.0.0.1:$2" -data "$data/node$1" -workers 2 \
		-queue 64 >>"$data/node$1.log" 2>&1 &
	echo $!
}

echo "== starting 3 daemons + chaosnet proxy in front of node3"
d1=$(start_daemon 1 "$p1")
d2=$(start_daemon 2 "$p2")
d3=$(start_daemon 3 "$p3")
"$bin/chaosnet" -listen "127.0.0.1:$pproxy" -target "127.0.0.1:$p3" \
	-control "127.0.0.1:$pctl" -seed "$seed" >>"$data/chaosnet.log" 2>&1 &
cn=$!
pids="$d1 $d2 $d3 $cn"
wait_http "http://127.0.0.1:$p1/healthz"
wait_http "http://127.0.0.1:$p2/healthz"
wait_http "http://127.0.0.1:$pproxy/healthz"
wait_http "http://127.0.0.1:$pctl/faults"

echo "== writing campaign spec: $njobs cells ($nseeds seeds x 2 replicas), seed base $seed"
awk -v n="$nseeds" -v s="$seed" 'BEGIN{
	printf "{\"name\":\"fleet-soak\",\"repeats\":2,\n"
	printf " \"base\":{\"scale\":\"bench\",\"nfiles\":1,\"filesize\":1024,\"change\":0.4,"
	printf "\"timer\":4000000000,\"maxcycles\":-1,\"checkpoint_cycles\":50000},\n"
	printf " \"seeds\":["
	for (i = 0; i < n; i++) printf "%s%d", (i ? "," : ""), s % 100000 + i
	printf "]}\n"
}' >"$data/campaign.json"

echo "== launching ptlsweep across the fleet"
"$bin/ptlsweep" -campaign "$data/campaign.json" \
	-nodes "http://127.0.0.1:$p1,http://127.0.0.1:$p2,http://127.0.0.1:$pproxy" \
	-journal "$data/sweep.jsonl" -out "$data/report.json" \
	-lease 5s -poll 300ms -inflight 8 >"$data/sweep.log" 2>&1 &
sweep=$!
pids="$pids $sweep"

sleep 6
echo "== chaos: SIGKILL node2 (pid $d2), never to return"
kill -9 "$d2" 2>/dev/null || true
wait "$d2" 2>/dev/null || true

echo "== chaos: partitioning node3 (blackhole via chaosnet) for 12s"
curl -sf -X POST -d '{"partition":true}' "http://127.0.0.1:$pctl/faults" >/dev/null
sleep 12
curl -sf -X POST -d '{}' "http://127.0.0.1:$pctl/faults" >/dev/null
echo "== chaos: partition healed"

echo "== waiting for the sweep to finish"
if ! wait "$sweep"; then
	echo "ptlsweep FAILED; tail of sweep log:"
	tail -30 "$data/sweep.log"
	exit 1
fi
sed 's/^/   /' "$data/sweep.log" | tail -6

echo "== verifying the merged report"
field() { # field <name> -> integer value from report.json
	sed -n "s/.*\"$1\": \{0,1\}\([0-9][0-9]*\).*/\1/p" "$data/report.json" | head -1
}
cells=$(field cells)
done_n=$(field done)
failed=$(field failed)
steals=$(field steals)
if [ "$cells" != "$njobs" ] || [ "$done_n" != "$njobs" ] || [ "$failed" != "0" ]; then
	echo "report: cells=$cells done=$done_n failed=$failed, want $njobs/$njobs/0"
	exit 1
fi
if [ "${steals:-0}" -lt 1 ]; then
	echo "report: steals=$steals — a SIGKILL plus a partition stole nothing?"
	exit 1
fi
if grep -q '"fnv_mismatches"' "$data/report.json"; then
	echo "DETERMINISM VIOLATION: replica cells disagreed on console FNV:"
	grep -A4 '"fnv_mismatches"' "$data/report.json"
	exit 1
fi

# Fencing invariant: every cell has exactly one verdict — no cell is
# lost, none is decided twice.
verdicts=$(grep -c '"cell":' "$data/report.json" | tr -d ' ')
dups=$(grep -o '"cell": "[0-9]*"' "$data/report.json" | sort | uniq -d)
if [ "$verdicts" != "$njobs" ] || [ -n "$dups" ]; then
	echo "verdicts=$verdicts (want $njobs), duplicated cells: ${dups:-none}"
	exit 1
fi

# Replica determinism, double-checked outside ptlsweep: replicas of
# one grid point (same config_key) must report the same console_fnv.
# console_fnv precedes config_key within each verdict object.
pairs=$(sed -n 's/.*"config_key": \([0-9]*\).*/\1/p' "$data/report.json" | sort -u | wc -l | tr -d ' ')
divergent=$(awk '
	/"console_fnv":/ { fnv = $2 + 0 }
	/"config_key":/ {
		key = $2 + 0
		if (key in seen && seen[key] != fnv) bad[key] = 1
		seen[key] = fnv
	}
	END { n = 0; for (k in bad) n++; print n }
' "$data/report.json")
if [ "$divergent" != "0" ]; then
	echo "$divergent config(s) with divergent replica FNVs"
	exit 1
fi
echo "   $done_n/$cells cells done, $steals steal(s), $pairs configs, replicas bit-identical"

echo "== merged campaign report (ptlmon -journal)"
"$bin/ptlmon" -journal "$data/sweep.jsonl" | sed 's/^/   /'

echo "== remote inspection of a surviving daemon (ptlmon -addr)"
"$bin/ptlmon" -addr "http://127.0.0.1:$p1" -version | sed 's/^/   /'
"$bin/ptlmon" -addr "http://127.0.0.1:$p1" -phase done -limit 3 | sed 's/^/   /'

echo "== draining surviving daemons"
kill -TERM "$d1" "$d3" 2>/dev/null || true
wait "$d1" 2>/dev/null || true
wait "$d3" 2>/dev/null || true
kill -TERM "$cn" 2>/dev/null || true
pids=""
echo "fleet soak: OK ($njobs cells, 3 nodes, 1 SIGKILL + 1 partition, seed $seed)"
