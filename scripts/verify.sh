#!/bin/sh
# Pre-merge verification gate: static analysis, a full build, and the
# test suite under the race detector. Run from the repository root
# (make verify does).
set -eu

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "verify: OK"
