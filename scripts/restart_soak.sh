#!/bin/sh
# restart_soak: the daemon crash-recovery chaos soak. Boot ptlserve,
# submit a batch of identical jobs, then repeatedly SIGKILL the daemon
# at randomized points mid-campaign and restart it on the same data
# directory. The durable job store must carry every job across every
# crash: at the end, zero jobs are lost, zero are duplicated, every job
# is done with bit-identical guest output, and idempotent resubmission
# across crashes keeps returning the original jobs.
#
# Knobs: SOAK_ROUNDS (daemon kills, default 4), SOAK_JOBS (batch size,
# default 4), SOAK_SEED (randomized kill-delay seed, default $$),
# SERVE_PORT (default 17484), SERVE_DATA (data dir; CI sets it to a
# workspace path so store/journal artifacts survive failures).
set -eu

port="${SERVE_PORT:-17484}"
rounds="${SOAK_ROUNDS:-4}"
njobs="${SOAK_JOBS:-4}"
seed="${SOAK_SEED:-$$}"
bin="$(mktemp -d)"
data="${SERVE_DATA:-$bin/data}"
base="http://127.0.0.1:$port"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

# A workload long enough that kills land mid-run, with a tight
# checkpoint cadence so every crash has rotation slots to resume from.
spec='{"scale":"bench","nfiles":2,"filesize":4096,"seed":9,"change":0.5,"timer":4000000000,"maxcycles":-1,"checkpoint_cycles":25000}'

rand_ms() { # rand_ms <round> -> 300..2300, deterministic per seed+round
	awk -v s="$seed" -v r="$1" 'BEGIN{srand(s + r); print 300 + int(rand() * 2000)}'
}

start_daemon() {
	"$bin/ptlserve" -addr "127.0.0.1:$port" -data "$data" -workers 2 \
		-compact-every 8 >>"$data/daemon.log" 2>&1 &
	daemon_pid=$!
	i=0
	until curl -sf "$base/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "daemon never came up (see $data/daemon.log)"
			exit 1
		fi
		sleep 0.1
	done
}

job_field() { # job_field <id> <field> -> first scalar value of that field
	curl -sf "$base/jobs/$1" | sed -n "s/.*\"$2\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p" | head -1
}

all_done() {
	for id in $job_ids; do
		case "$(job_field "$id" state)" in
		done) ;;
		failed)
			echo "job $id FAILED: $(curl -sf "$base/jobs/$id")"
			exit 1
			;;
		*) return 1 ;;
		esac
	done
	return 0
}

echo "== building ptlserve/ptlmon"
go build -o "$bin/ptlserve" ./cmd/ptlserve
go build -o "$bin/ptlmon" ./cmd/ptlmon

mkdir -p "$data"
start_daemon

echo "== submitting $njobs jobs"
job_ids=""
n=1
while [ "$n" -le "$njobs" ]; do
	out=$(curl -sf -H "Idempotency-Key: soak-$n" -d "$spec" "$base/jobs")
	id=$(printf '%s' "$out" | sed -n 's/.*"id":"\([0-9]*\)".*/\1/p')
	if [ -z "$id" ]; then
		echo "submit $n got no job id: $out"
		exit 1
	fi
	job_ids="$job_ids $id"
	n=$((n + 1))
done
echo "   jobs:$job_ids"

round=1
while [ "$round" -le "$rounds" ]; do
	if all_done; then
		echo "== all jobs done after $((round - 1)) crash(es); stopping the chaos early"
		break
	fi
	delay=$(rand_ms "$round")
	sleep "$(awk -v ms="$delay" 'BEGIN{printf "%.3f", ms / 1000}')"
	echo "== round $round: SIGKILL daemon (pid $daemon_pid) after ${delay}ms"
	kill -9 "$daemon_pid"
	wait "$daemon_pid" 2>/dev/null || true
	daemon_pid=""
	start_daemon

	# Idempotent resubmission across the crash: the original job comes
	# back (HTTP 200, same id), no duplicate is admitted.
	want=$(printf '%s' "$job_ids" | awk '{print $1}')
	code_body=$(curl -s -w '\n%{http_code}' -H "Idempotency-Key: soak-1" -d "$spec" "$base/jobs")
	code=$(printf '%s' "$code_body" | tail -1)
	got=$(printf '%s' "$code_body" | sed -n 's/.*"id":"\([0-9]*\)".*/\1/p' | head -1)
	if [ "$code" != "200" ] || [ "$got" != "$want" ]; then
		echo "idempotent resubmit after crash: code=$code id=$got want=200 id=$want"
		exit 1
	fi
	round=$((round + 1))
done

echo "== waiting for all jobs to finish"
i=0
until all_done; do
	i=$((i + 1))
	if [ "$i" -gt 1200 ]; then
		echo "jobs did not finish; states:"
		curl -sf "$base/jobs"
		exit 1
	fi
	sleep 0.5
done

echo "== verifying zero lost, zero duplicated, bit-identical output"
total=$(curl -sf "$base/jobs" | grep -o '"id":"' | wc -l | tr -d ' ')
if [ "$total" != "$njobs" ]; then
	echo "job count after $((round - 1)) crash(es): $total, want $njobs"
	exit 1
fi
ref_fnv=""
for id in $job_ids; do
	body=$(curl -sf "$base/jobs/$id")
	case "$body" in
	*'rsync ok'*) ;;
	*)
		echo "job $id guest output wrong: $body"
		exit 1
		;;
	esac
	fnv=$(printf '%s' "$body" | sed -n 's/.*"console_fnv":\([0-9]*\).*/\1/p')
	if [ -z "$ref_fnv" ]; then
		ref_fnv="$fnv"
	elif [ "$fnv" != "$ref_fnv" ]; then
		echo "job $id console FNV $fnv differs from $ref_fnv — not bit-identical"
		exit 1
	fi
done
echo "   $total/$njobs done, console_fnv=$ref_fnv for all"

echo "== recovered store state (ptlmon -inspect)"
"$bin/ptlmon" -inspect "$data" | sed 's/^/   /'

echo "== draining final daemon (SIGTERM)"
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "== service journal (survives torn writes from $((round - 1)) crashes)"
"$bin/ptlmon" -journal "$data/service.jsonl" | sed 's/^/   /'
echo "restart soak: OK ($((round - 1)) daemon crash(es), $njobs jobs, seed $seed)"
