#!/bin/sh
# Conformance fuzz soak: run a differential fuzz campaign through the
# `ptlsim -fuzz` entry point — generate instruction sequences, execute
# each under both engines with the lockstep commit oracle, shrink and
# promote anything that diverges — then render the journal with ptlmon
# and record campaign throughput. A healthy tree produces zero
# findings; any finding fails the soak and leaves its minimized
# reproducer (plus the journal) behind for triage.
#
# FUZZ_SEQS sets the sequence count (default 2000); FUZZ_SEED pins the
# campaign stream (default 1); FUZZ_DATA is the output directory for
# the journal, reproducers, and BENCH_conformance.json (default
# fuzz-soak-data).
set -eu

seqs="${FUZZ_SEQS:-2000}"
seed="${FUZZ_SEED:-1}"
data="${FUZZ_DATA:-fuzz-soak-data}"
bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT

mkdir -p "$data"

echo "== building ptlsim/ptlmon (fuzz seed $seed, $seqs sequences)"
go build -o "$bin/ptlsim" ./cmd/ptlsim
go build -o "$bin/ptlmon" ./cmd/ptlmon

status=0
"$bin/ptlsim" -fuzz -fuzz-seqs "$seqs" -fuzz-seed "$seed" \
	-fuzz-promote "$data/findings" -fuzz-bench-out "$data/BENCH_conformance.json" \
	-journal "$data/fuzz.jsonl" -o "$data/summary.txt" || status=$?

cat "$data/summary.txt"
"$bin/ptlmon" -journal "$data/fuzz.jsonl" | sed 's/^/   /'

if [ "$status" -ne 0 ]; then
	echo "fuzz-soak: FINDINGS (reproducers in $data/findings)"
	exit "$status"
fi
echo "fuzz-soak: OK"
