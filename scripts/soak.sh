#!/bin/sh
# Supervisor soak: run the rsync benchmark under `ptlsim -supervise`
# with a short randomized fault schedule (one ROB corruption per
# iteration at a random commit point) and check every run still
# completes with correct guest output and a journaled recovery.
#
# SOAK_ITERS sets the iteration count (default 3); SOAK_SEED pins the
# fault schedule for reproduction (default: current time).
set -eu

iters="${SOAK_ITERS:-3}"
seed="${SOAK_SEED:-$(date +%s)}"
bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT

echo "== building ptlsim/ptlmon (soak seed $seed, $iters iterations)"
go build -o "$bin/ptlsim" ./cmd/ptlsim
go build -o "$bin/ptlmon" ./cmd/ptlmon

i=1
while [ "$i" -le "$iters" ]; do
	# Per-iteration LCG step: deterministic trigger schedule per seed.
	seed=$(( (seed * 1103515245 + 12345) % 2147483648 ))
	insn=$(( 3000 + seed % 60000 ))
	work="$bin/run$i"
	mkdir -p "$work"
	echo "== soak $i/$iters: robcorrupt@$insn"
	"$bin/ptlsim" -scale small -nfiles 1 -filesize 1024 -timer 4000000000 \
		-maxcycles 0 -mode sim -supervise -checkpoint-cycles 50000 \
		-checkpoint-dir "$work/ckpt" -journal "$work/run.jsonl" \
		-inject "robcorrupt@$insn" -o "$work/out.txt"
	if ! grep -q "rsync ok" "$work/out.txt"; then
		echo "soak $i: benchmark output wrong"
		cat "$work/out.txt"
		exit 1
	fi
	"$bin/ptlmon" -journal "$work/run.jsonl" | sed 's/^/   /'
	i=$((i + 1))
done
echo "soak: OK"
