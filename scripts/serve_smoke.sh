#!/bin/sh
# ptlserve smoke: boot the job service, submit a small simulation job
# over HTTP, poll it to completion, check the guest output inside the
# result, exercise the health/stats endpoints, drain on SIGTERM, and
# render the service journal through ptlmon.
#
# SERVE_PORT picks the listen port (default 17483). SERVE_DATA pins the
# service data directory (default: inside the temp build dir) — CI sets
# it to a workspace path so journals and per-job checkpoint directories
# survive as artifacts when the smoke fails.
set -eu

port="${SERVE_PORT:-17483}"
bin="$(mktemp -d)"
data="${SERVE_DATA:-$bin/data}"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

echo "== building ptlserve/ptlmon"
go build -o "$bin/ptlserve" ./cmd/ptlserve
go build -o "$bin/ptlmon" ./cmd/ptlmon

"$bin/ptlserve" -addr "127.0.0.1:$port" -data "$data" -workers 1 &
daemon_pid=$!

i=0
until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "daemon never came up"
		exit 1
	fi
	sleep 0.1
done

echo "== submitting job"
curl -sf -d '{"scale":"bench","nfiles":1,"filesize":1024,"seed":5,"change":0.4,"timer":4000000000,"maxcycles":-1,"checkpoint_cycles":50000}' \
	"http://127.0.0.1:$port/jobs" >"$bin/submit.json"
cat "$bin/submit.json"
echo

id=$(sed -n 's/.*"id":"\([0-9]*\)".*/\1/p' "$bin/submit.json")
if [ -z "$id" ]; then
	echo "no job id in submit response"
	exit 1
fi

echo "== polling job $id"
i=0
while :; do
	st=$(curl -sf "http://127.0.0.1:$port/jobs/$id")
	case "$st" in
	*'"state":"done"'*) break ;;
	*'"state":"failed"'*)
		echo "job failed: $st"
		exit 1
		;;
	esac
	i=$((i + 1))
	if [ "$i" -gt 600 ]; then
		echo "job did not finish: $st"
		exit 1
	fi
	sleep 0.5
done

case "$st" in
*'rsync ok'*) echo "guest output OK" ;;
*)
	echo "guest output wrong: $st"
	exit 1
	;;
esac

echo "== service counters"
curl -sf "http://127.0.0.1:$port/statz"
echo

echo "== inspecting job checkpoints"
"$bin/ptlmon" -inspect "$data/jobs/$id/ckpt" | sed 's/^/   /'

echo "== draining (SIGTERM)"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

echo "== service journal"
"$bin/ptlmon" -journal "$data/service.jsonl" | sed 's/^/   /'
echo "serve smoke: OK"
