GO ?= go

.PHONY: build test race vet verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the full pre-merge gate: vet, build, and the test suite
# under the race detector.
verify:
	./scripts/verify.sh
