GO ?= go

.PHONY: build test race vet verify soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the full pre-merge gate: vet, build, and the test suite
# under the race detector.
verify:
	./scripts/verify.sh

# soak runs the supervisor end to end under a short randomized fault
# schedule (SOAK_ITERS/SOAK_SEED tune length and reproducibility).
soak:
	./scripts/soak.sh
