GO ?= go

.PHONY: build test race vet verify soak serve-smoke restart-soak fuzz-smoke fuzz-soak fleet-soak load-soak bench-snapshot obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the full pre-merge gate: vet, build, and the test suite
# under the race detector.
verify:
	./scripts/verify.sh

# soak runs the supervisor end to end under a short randomized fault
# schedule (SOAK_ITERS/SOAK_SEED tune length and reproducibility).
soak:
	./scripts/soak.sh

# serve-smoke boots the ptlserve job service, runs one job through the
# HTTP API end to end, and drains it (SERVE_PORT/SERVE_DATA tune the
# listen port and data directory).
serve-smoke:
	./scripts/serve_smoke.sh

# restart-soak SIGKILLs the ptlserve daemon at randomized points over a
# job batch and verifies the durable job store recovers every job with
# bit-identical output (SOAK_ROUNDS/SOAK_JOBS/SOAK_SEED tune length and
# reproducibility).
restart-soak:
	./scripts/restart_soak.sh

# fuzz-smoke runs each decoder fuzz target briefly (the -fuzz flag
# accepts one target per invocation) — a regression smoke over the
# seed corpus plus a short mutation budget, not a campaign. Longer
# runs: go test ./internal/decode/ -fuzz FuzzBuildBB -fuzztime 10m
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/decode/ -run '^$$' -fuzz '^FuzzBuildBB$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/decode/ -run '^$$' -fuzz '^FuzzBuildBBPaged$$' -fuzztime $(FUZZTIME)

# fleet-soak runs a ptlsweep campaign across three ptlserve daemons
# with a SIGKILL and a chaosnet network partition mid-sweep, verifying
# zero lost cells, zero duplicated verdicts, and bit-identical replica
# FNVs (FLEET_JOBS/FLEET_SEED/FLEET_DATA tune size, reproducibility,
# and the output directory; the acceptance campaign is FLEET_JOBS=1000).
fleet-soak:
	./scripts/fleet_soak.sh

# load-soak floods one ptlserve daemon from four competing tenants
# (greedy, latency-sensitive, bandwidth-capped, deadline-carrying) and
# asserts the admission layer's overload behavior: zero accepted jobs
# lost or duplicated, per-tenant quota 429s, deadline shedding, no
# priority inversion, bounded admission latency. LOAD_JOBS sizes the
# storm (default 800; CI acceptance runs 10000); LOAD_PORT and
# LOAD_DATA tune the port and artifact directory.
load-soak:
	./scripts/load_soak.sh

# obs-smoke runs a small workload with the pipeline event log attached,
# renders it through every exporter (Chrome trace / Konata / text),
# then pushes one job through a live ptlserve and asserts GET /metrics
# exposes the job-level Prometheus series (SERVE_PORT tunes the port).
obs-smoke:
	./scripts/obs_smoke.sh

# bench-snapshot runs the paper-replication benchmark suite and appends
# a dated entry to BENCH_core.json (BENCH_PATTERN/BENCH_COUNT/BENCH_OUT
# tune selection, repetitions, and the output file).
bench-snapshot:
	./scripts/bench_snapshot.sh

# fuzz-soak runs a differential conformance fuzz campaign: generated
# instruction sequences dual-executed (reference interpreter vs OoO
# core under the commit oracle), with divergences shrunk to minimal
# reproducers. FUZZ_SEQS/FUZZ_SEED/FUZZ_DATA tune length,
# reproducibility, and the output directory.
fuzz-soak:
	./scripts/fuzz_soak.sh
