// Package experiments reproduces the paper's evaluation (§5): the
// Table 1 accuracy comparison between the cycle accurate model and the
// K8 hardware-counter reference, the Figure 2 time-lapse of cycles
// spent in user/kernel/idle mode, the Figure 3 time-lapse of
// microarchitectural rates, the simulator-throughput measurement, and
// the §6.4 userspace-only-simulation pitfall quantification. The same
// harness backs bench_test.go, cmd/ptlsim and the examples.
package experiments

import (
	"fmt"
	"io"
	"time"

	"ptlsim/internal/core"
	"ptlsim/internal/guest"
	"ptlsim/internal/k8"
	"ptlsim/internal/kern"
	"ptlsim/internal/ooo"
	"ptlsim/internal/stats"
)

// Config sizes the rsync benchmark run.
type Config struct {
	Corpus guest.CorpusSpec
	// TimerPeriod in cycles (0 = kern.DefaultTimerPeriod, the paper's
	// 1 kHz at 2.2 GHz).
	TimerPeriod uint64
	// SnapshotCycles for the time-lapse figures (paper: 2.2M).
	SnapshotCycles uint64
	// MaxCycles aborts a wedged run.
	MaxCycles uint64
}

// BenchScale is the default bench-test scale (fast enough for go test
// -bench, large enough for stable rates).
func BenchScale() Config {
	return Config{
		Corpus:         guest.CorpusSpec{NFiles: 4, FileSize: 8192, Seed: 20070425, ChangeFraction: 0.25},
		TimerPeriod:    220_000, // scaled with the workload
		SnapshotCycles: 220_000,
		MaxCycles:      4_000_000_000,
	}
}

// PaperScale approaches the paper's full benchmark (tens of MB,
// billions of cycles) — use from cmd/ptlsim, not from tests.
func PaperScale() Config {
	return Config{
		Corpus:         guest.CorpusSpec{NFiles: 512, FileSize: 65536, Seed: 20070425, ChangeFraction: 0.3},
		TimerPeriod:    2_200_000,
		SnapshotCycles: 2_200_000,
		MaxCycles:      0,
	}
}

// Row is one Table 1 line.
type Row struct {
	Name    string
	Native  float64
	Sim     float64
	Percent bool // values are percentages (diff shown in points)
}

// Diff returns the sim-vs-native difference: relative percent for
// counts, absolute points for rates.
func (r Row) Diff() float64 {
	if r.Percent {
		return r.Sim - r.Native
	}
	if r.Native == 0 {
		return 0
	}
	return 100 * (r.Sim - r.Native) / r.Native
}

// Table1Result holds everything the §5 evaluation produces.
type Table1Result struct {
	Rows []Row

	NativeConsole, SimConsole string

	SimCycles   uint64
	SimInsns    int64
	Series      stats.Series
	SimTree     *stats.Tree
	NativeTree  *stats.Tree
	SimWall     time.Duration
	Throughput  float64 // simulated cycles per wall second

	// Mode fractions from the cycle accurate run (Figure 2 / §6.4).
	UserPct, KernelPct, IdlePct float64
}

// runNative executes the benchmark on the functional engine with the
// K8 hardware-counter model attached.
func runNative(cfg Config) (*k8.Model, *stats.Tree, string, error) {
	tree := stats.NewTree()
	spec, err := guest.RsyncBenchmark(cfg.Corpus, cfg.TimerPeriod)
	if err != nil {
		return nil, nil, "", err
	}
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		return nil, nil, "", err
	}
	m := core.NewMachine(img.Domain, tree, core.DefaultConfig())
	model := k8.New(tree, "k8native")
	model.FlushCaches() // the paper's -perfctr cold start
	m.SeqCores()[0].Obs = model
	if err := m.Run(cfg.MaxCycles); err != nil {
		return nil, nil, "", fmt.Errorf("native trial: %w", err)
	}
	// The silicon cycle counter also runs while halted.
	model.AddIdleCycles(uint64(tree.Lookup("external.cycles_in_mode.idle").Value()))
	return model, tree, img.Domain.Console(), nil
}

// runSim executes the benchmark on the cycle accurate K8-configured
// out-of-order core.
func runSim(cfg Config) (*core.Machine, string, time.Duration, error) {
	mcfg := core.Config{
		Core:           ooo.K8Config(),
		NativeCPI:      1.0,
		SnapshotCycles: cfg.SnapshotCycles,
		ThreadsPerCore: 1,
	}
	return RunSimWith(cfg, mcfg)
}

// RunSimWith runs the benchmark on the cycle accurate engine with an
// arbitrary machine configuration (the ablation benchmarks vary core
// parameters through this).
func RunSimWith(cfg Config, mcfg core.Config) (*core.Machine, string, time.Duration, error) {
	tree := stats.NewTree()
	spec, err := guest.RsyncBenchmark(cfg.Corpus, cfg.TimerPeriod)
	if err != nil {
		return nil, "", 0, err
	}
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		return nil, "", 0, err
	}
	if mcfg.SnapshotCycles == 0 {
		mcfg.SnapshotCycles = cfg.SnapshotCycles
	}
	m := core.NewMachine(img.Domain, tree, mcfg)
	m.SwitchMode(core.ModeSim)
	start := time.Now()
	if err := m.Run(cfg.MaxCycles); err != nil {
		return nil, "", 0, fmt.Errorf("sim trial: %w", err)
	}
	return m, img.Domain.Console(), time.Since(start), nil
}

// RunTable1 performs both trials and assembles the Table 1 rows.
func RunTable1(cfg Config) (*Table1Result, error) {
	native, ntree, nconsole, err := runNative(cfg)
	if err != nil {
		return nil, err
	}
	m, sconsole, wall, err := runSim(cfg)
	if err != nil {
		return nil, err
	}
	if nconsole != sconsole {
		return nil, fmt.Errorf("trials disagree: native %q vs sim %q", nconsole, sconsole)
	}
	st := m.Tree

	get := func(path string) float64 { return float64(st.Lookup(path).Value()) }
	simCycles := float64(m.Cycle)
	simInsns := get("core0.commit.insns")
	simUops := get("core0.commit.uops")
	simL1Miss := get("core0.cache.l1d.misses")
	simL1Acc := get("core0.cache.l1d.accesses")
	simBr := get("core0.branches")
	simMp := get("core0.mispredicts")
	simTLB := get("core0.dtlb.misses")
	simMem := get("core0.loads") + get("core0.stores")

	natCycles := float64(native.Cycles())
	natInsns := float64(native.Insns.Value())
	natUops := float64(native.Uops.Value())
	natL1Miss := float64(native.L1DMisses.Value())
	natL1Acc := float64(native.L1DAccesses.Value())
	natBr := float64(native.Branches.Value())
	natMp := float64(native.Mispredicts.Value())
	natTLB := float64(native.DTLBMisses.Value())
	natMem := float64(native.Loads.Value() + native.Stores.Value())

	pct := func(n, d float64) float64 {
		if d == 0 {
			return 0
		}
		return 100 * n / d
	}

	res := &Table1Result{
		Rows: []Row{
			{Name: "Cycles", Native: natCycles, Sim: simCycles},
			{Name: "x86 Insns Committed", Native: natInsns, Sim: simInsns},
			{Name: "uops", Native: natUops, Sim: simUops},
			{Name: "L1 D-cache Misses", Native: natL1Miss, Sim: simL1Miss},
			{Name: "L1 D-cache Accesses", Native: natL1Acc, Sim: simL1Acc},
			{Name: "L1 Misses as %", Native: pct(natL1Miss, natL1Acc), Sim: pct(simL1Miss, simL1Acc), Percent: true},
			{Name: "Total Branches", Native: natBr, Sim: simBr},
			{Name: "Mispredicted Branches", Native: natMp, Sim: simMp},
			{Name: "Mispredicted %", Native: pct(natMp, natBr), Sim: pct(simMp, simBr), Percent: true},
			{Name: "DTLB Misses", Native: natTLB, Sim: simTLB},
			{Name: "DTLB Miss Rate %", Native: pct(natTLB, natMem), Sim: pct(simTLB, simMem), Percent: true},
		},
		NativeConsole: nconsole,
		SimConsole:    sconsole,
		SimCycles:     m.Cycle,
		SimInsns:      int64(simInsns),
		Series:        m.Series(),
		SimTree:       st,
		NativeTree:    ntree,
		SimWall:       wall,
	}
	if wall > 0 {
		res.Throughput = simCycles / wall.Seconds()
	}
	total := get("external.cycles_in_mode.user") + get("external.cycles_in_mode.kernel") + get("external.cycles_in_mode.idle")
	if total > 0 {
		res.UserPct = pct(get("external.cycles_in_mode.user"), total)
		res.KernelPct = pct(get("external.cycles_in_mode.kernel"), total)
		res.IdlePct = pct(get("external.cycles_in_mode.idle"), total)
	}
	return res, nil
}

// WriteTable renders the Table 1 comparison.
func (r *Table1Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-24s %16s %16s %9s\n", "Trial", "Native K8", "PTLsim", "%Diff")
	for _, row := range r.Rows {
		unit := "%"
		if !row.Percent {
			unit = "%"
		}
		if row.Percent {
			fmt.Fprintf(w, "%-24s %15.2f%% %15.2f%% %+8.2f%s\n",
				row.Name, row.Native, row.Sim, row.Diff(), "pt")
		} else {
			fmt.Fprintf(w, "%-24s %16.0f %16.0f %+8.2f%s\n",
				row.Name, row.Native, row.Sim, row.Diff(), unit)
		}
	}
}

// Figure2Columns are the user/kernel/idle mode percentages per
// snapshot interval (the paper's Figure 2 series).
func Figure2Columns() []stats.Column {
	total := func(d stats.Snapshot) float64 {
		return float64(d.Get("external.cycles_in_mode.user") +
			d.Get("external.cycles_in_mode.kernel") +
			d.Get("external.cycles_in_mode.idle"))
	}
	mk := func(name, path string) stats.Column {
		return stats.Column{Name: name, Value: func(d stats.Snapshot) float64 {
			t := total(d)
			if t == 0 {
				return 0
			}
			return 100 * float64(d.Get(path)) / t
		}}
	}
	return []stats.Column{
		mk("user%", "external.cycles_in_mode.user"),
		mk("kernel%", "external.cycles_in_mode.kernel"),
		mk("idle%", "external.cycles_in_mode.idle"),
	}
}

// Figure3Columns are the per-interval microarchitectural rates: branch
// mispredict %, DTLB miss % of memory ops, L1D miss % of accesses.
func Figure3Columns() []stats.Column {
	memOps := func(d stats.Snapshot) float64 {
		return float64(d.Get("core0.loads") + d.Get("core0.stores"))
	}
	return []stats.Column{
		stats.Rate("mispred%", "core0.mispredicts", "core0.branches"),
		{Name: "dtlbmiss%", Value: func(d stats.Snapshot) float64 {
			m := memOps(d)
			if m == 0 {
				return 0
			}
			return 100 * float64(d.Get("core0.dtlb.misses")) / m
		}},
		stats.Rate("l1dmiss%", "core0.cache.l1d.misses", "core0.cache.l1d.accesses"),
	}
}
