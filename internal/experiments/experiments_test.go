package experiments

import (
	"strings"
	"sync"
	"testing"

	"ptlsim/internal/stats"
)

// testScale is smaller than BenchScale for unit-test latency.
func testScale() Config {
	return Config{
		Corpus:         BenchScale().Corpus,
		TimerPeriod:    220_000,
		SnapshotCycles: 220_000,
		MaxCycles:      4_000_000_000,
	}
}

var (
	sharedRes  *Table1Result
	sharedErr  error
	sharedOnce sync.Once
)

// mustTable1 runs the (expensive) paired trial once and shares the
// result across the test functions.
func mustTable1(t *testing.T) *Table1Result {
	t.Helper()
	sharedOnce.Do(func() { sharedRes, sharedErr = RunTable1(testScale()) })
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedRes
}

func TestTable1Shape(t *testing.T) {
	res := mustTable1(t)
	if !strings.Contains(res.SimConsole, "rsync ok") {
		t.Fatalf("benchmark failed: %q", res.SimConsole)
	}
	row := func(name string) Row {
		for _, r := range res.Rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing row %q", name)
		return Row{}
	}
	// The paper's shape claims (§5 / Table 1):
	// 1. Architecturally visible counts agree within ~2%.
	insns := row("x86 Insns Committed")
	if d := insns.Diff(); d < -2 || d > 2 {
		t.Errorf("insn count diff %.2f%% exceeds ±2%%", d)
	}
	br := row("Total Branches")
	if d := br.Diff(); d < -3 || d > 3 {
		t.Errorf("branch count diff %.2f%%", d)
	}
	// 2. PTLsim counts individual uops, K8 counts triads: sim >> native.
	uopsRow := row("uops")
	if uopsRow.Sim <= uopsRow.Native {
		t.Errorf("uop counting: sim %.0f should exceed native triads %.0f",
			uopsRow.Sim, uopsRow.Native)
	}
	// 3. The simpler 1-level 32-entry DTLB must miss substantially more
	// than the silicon's 2-level + PDE-cache hierarchy (paper: +144%).
	tlbRow := row("DTLB Misses")
	if tlbRow.Sim <= tlbRow.Native {
		t.Errorf("DTLB: sim %.0f should exceed native %.0f", tlbRow.Sim, tlbRow.Native)
	}
	// 4. Cycle counts within the same order (the paper got +4.3%; our
	// reference is a calibrated counter model, so allow a wide band
	// while still requiring same-magnitude agreement).
	cyc := row("Cycles")
	if d := cyc.Diff(); d < -60 || d > 120 {
		t.Errorf("cycle diff %.2f%% outside plausibility band", d)
	}
	// 5. Both runs executed the same code: consoles match (checked in
	// RunTable1) and L1 access counts are close.
	acc := row("L1 D-cache Accesses")
	if d := acc.Diff(); d < -10 || d > 10 {
		t.Errorf("L1 access diff %.2f%%", d)
	}
}

func TestFigure2ModesPresent(t *testing.T) {
	res := mustTable1(t)
	if res.KernelPct <= 0 || res.UserPct <= 0 {
		t.Fatalf("mode split user=%.1f kernel=%.1f idle=%.1f",
			res.UserPct, res.KernelPct, res.IdlePct)
	}
	sum := res.UserPct + res.KernelPct + res.IdlePct
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("mode percentages sum to %.2f", sum)
	}
	// A client/server pipe workload spends substantial time in the
	// kernel (the paper measured 15% kernel on rsync).
	if res.KernelPct < 5 {
		t.Errorf("kernel time %.1f%% implausibly low for this workload", res.KernelPct)
	}
	// Figure 2 series renders.
	var sb strings.Builder
	if err := res.Series.WriteSeries(&sb, Figure2Columns()...); err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Snapshots) < 3 {
		t.Fatalf("only %d snapshots collected", len(res.Series.Snapshots))
	}
}

func TestFigure3SeriesVaries(t *testing.T) {
	res := mustTable1(t)
	cols := Figure3Columns()
	deltas := res.Series.Deltas()
	// The benchmark phases should make at least one metric vary across
	// intervals (the point of the Figure 3 time-lapse).
	varies := false
	for _, col := range cols {
		first := col.Value(deltas[0])
		for _, d := range deltas[1:] {
			if v := col.Value(d); v != first && v != 0 {
				varies = true
			}
		}
	}
	if !varies {
		t.Fatal("microarchitectural rates flat across all snapshots")
	}
}

func TestWriteTableRenders(t *testing.T) {
	res := mustTable1(t)
	var sb strings.Builder
	res.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"Cycles", "DTLB Miss Rate %", "uops", "PTLsim"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestThroughputMeasured(t *testing.T) {
	res := mustTable1(t)
	if res.Throughput <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestSeriesSnapshotAlgebra(t *testing.T) {
	res := mustTable1(t)
	snaps := res.Series.Snapshots
	if len(snaps) < 3 {
		t.Skip("not enough snapshots")
	}
	// (s2-s1)+(s1-s0) == (s2-s0) for a core counter.
	k := "core0.commit.insns"
	lhs := stats.Sub(snaps[2], snaps[1]).Get(k) + stats.Sub(snaps[1], snaps[0]).Get(k)
	rhs := stats.Sub(snaps[2], snaps[0]).Get(k)
	if lhs != rhs {
		t.Fatalf("snapshot algebra: %d vs %d", lhs, rhs)
	}
}
