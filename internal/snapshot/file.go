// On-disk checkpoint format. A snapshot file is a fixed little-endian
// header followed by the gob-encoded Image payload:
//
//	offset  size  field
//	     0     8  magic "PTLSNAP\x01"
//	     8     4  format version (uint32)
//	    12     8  config-compatibility hash (uint64, 0 = unknown)
//	    20     8  payload length in bytes (uint64)
//	    28     4  CRC32 (IEEE) of the payload (uint32)
//	    32     —  payload (gob)
//
// Files are written atomically: the payload goes to a temp file in the
// destination directory, is fsynced, and is renamed into place, so a
// crash mid-write can never leave a half-written image under the final
// name — and if it somehow does (e.g. a torn sector), the CRC rejects
// it with a typed error the supervisor can treat as "slot unusable,
// fall back to the previous rotation".
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"

	"ptlsim/internal/core"
	"ptlsim/internal/selfcheck"
)

// Format constants.
const (
	// FormatVersion is bumped whenever the header layout or the gob
	// schema changes incompatibly.
	FormatVersion = 1
	headerSize    = 32
)

var magic = [8]byte{'P', 'T', 'L', 'S', 'N', 'A', 'P', 1}

// Typed sentinel errors for on-disk image validation. ReadFile and
// Restore wrap these so callers can classify failures with errors.Is —
// in particular the run supervisor, which treats ErrTruncated and
// ErrChecksum as "try the previous rotation slot" and ErrConfigMismatch
// as fatal operator error.
var (
	// ErrNotSnapshot: the file does not start with the snapshot magic.
	ErrNotSnapshot = errors.New("not a ptlsim snapshot file")
	// ErrVersion: the file uses an unsupported format version.
	ErrVersion = errors.New("unsupported snapshot format version")
	// ErrTruncated: the file is shorter than its header claims.
	ErrTruncated = errors.New("truncated snapshot file")
	// ErrChecksum: the payload CRC does not match the header.
	ErrChecksum = errors.New("snapshot payload checksum mismatch")
	// ErrConfigMismatch: the image was captured under a different
	// machine configuration than the one offered for restore.
	ErrConfigMismatch = errors.New("snapshot configuration mismatch")
)

// ConfigHash derives the compatibility hash of a machine configuration:
// restoring an image under a config with a different hash would build a
// machine whose geometry (core widths, cache shapes, thread mapping)
// silently disagrees with the one that captured it. The hash is FNV-64a
// over the config's printed form — stable across runs of the same
// build, and any field change (including nested core/cache/predictor
// parameters) changes it. Self-checking instrumentation is excluded:
// the oracle and auditor observe the machine without changing its
// geometry or timing, so a checkpoint captured with them off must
// restore with them on (and vice versa) — the triage path depends on
// restoring a failing run's slots under a stripped config. TimingSeed
// is excluded for the same reason: it perturbs only timing-state
// warm-up (predictors are not checkpointed; restored cores are cold),
// so it cannot change what a restored run computes.
func ConfigHash(cfg core.Config) uint64 {
	cfg.SelfCheck = selfcheck.Config{}
	cfg.TimingSeed = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}

// WriteFile encodes the image into path atomically: temp file in the
// same directory, fsync, rename. The header carries the image's config
// hash so readers can check compatibility before decoding the payload.
func (img *Image) WriteFile(path string) error {
	payload, err := img.Encode()
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[0:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], img.CfgHash)
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[28:32], crc32.ChecksumIEEE(payload))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(payload)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	// Persist the rename itself; failure here is not fatal to the data.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Info is what Inspect can tell about a checkpoint file without
// restoring a machine from it: the raw header fields, whether the
// payload survives its CRC, and — when it does decode — the captured
// machine's identity (cycle, mode, shape). Integrity problems land in
// Err instead of failing the inspection; triaging a rotated checkpoint
// directory after a killed worker means looking at broken files.
type Info struct {
	Path       string
	Size       int64
	Version    uint32
	CfgHash    uint64
	PayloadLen uint64
	CRC        uint32

	// Payload identity, valid when Err is empty.
	Cycle   uint64
	SimMode bool
	VCPUs   int
	Pages   int

	// Err is the first integrity problem hit (empty = intact).
	Err string
}

// Inspect reads a checkpoint file's header and validates as much as it
// can, stopping at the first problem: magic, version, claimed length,
// payload CRC, gob decode. The returned error is non-nil only when the
// file cannot be read at all; format problems are reported in Info.Err
// with every header field parsed so far still filled in.
func Inspect(path string) (Info, error) {
	info := Info{Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		return info, fmt.Errorf("snapshot: %w", err)
	}
	info.Size = int64(len(data))
	if len(data) < 8 || [8]byte(data[0:8]) != magic {
		info.Err = ErrNotSnapshot.Error()
		return info, nil
	}
	if len(data) < headerSize {
		info.Err = ErrTruncated.Error()
		return info, nil
	}
	info.Version = binary.LittleEndian.Uint32(data[8:12])
	info.CfgHash = binary.LittleEndian.Uint64(data[12:20])
	info.PayloadLen = binary.LittleEndian.Uint64(data[20:28])
	info.CRC = binary.LittleEndian.Uint32(data[28:32])
	if info.Version != FormatVersion {
		info.Err = ErrVersion.Error()
		return info, nil
	}
	if uint64(len(data)-headerSize) != info.PayloadLen {
		info.Err = fmt.Sprintf("%v: payload %d bytes, header claims %d",
			ErrTruncated, len(data)-headerSize, info.PayloadLen)
		return info, nil
	}
	payload := data[headerSize:]
	if crc32.ChecksumIEEE(payload) != info.CRC {
		info.Err = ErrChecksum.Error()
		return info, nil
	}
	img, err := Decode(payload)
	if err != nil {
		info.Err = err.Error()
		return info, nil
	}
	info.Cycle = img.Cycle
	info.SimMode = img.SimMode
	info.VCPUs = len(img.VCPUs)
	info.Pages = len(img.Pages)
	if info.CfgHash == 0 {
		info.CfgHash = img.CfgHash
	}
	return info, nil
}

// ReadFile decodes an image from path, validating magic, version,
// length and payload CRC before touching the gob decoder, so a
// truncated or bit-rotted file surfaces as a typed error instead of an
// opaque decode failure.
func ReadFile(path string) (*Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if len(data) < headerSize {
		if len(data) >= 8 && [8]byte(data[0:8]) != magic {
			return nil, fmt.Errorf("snapshot: %s: %w", path, ErrNotSnapshot)
		}
		return nil, fmt.Errorf("snapshot: %s: %d bytes: %w", path, len(data), ErrTruncated)
	}
	if [8]byte(data[0:8]) != magic {
		return nil, fmt.Errorf("snapshot: %s: %w", path, ErrNotSnapshot)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("snapshot: %s: version %d (want %d): %w", path, v, FormatVersion, ErrVersion)
	}
	plen := binary.LittleEndian.Uint64(data[20:28])
	if uint64(len(data)-headerSize) != plen {
		return nil, fmt.Errorf("snapshot: %s: payload %d bytes, header claims %d: %w",
			path, len(data)-headerSize, plen, ErrTruncated)
	}
	payload := data[headerSize:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[28:32]) {
		return nil, fmt.Errorf("snapshot: %s: %w", path, ErrChecksum)
	}
	img, err := Decode(payload)
	if err != nil {
		return nil, err
	}
	// Trust the payload's own hash over the header copy (they match for
	// files we wrote; the payload survives the CRC check either way).
	if h := binary.LittleEndian.Uint64(data[12:20]); img.CfgHash == 0 {
		img.CfgHash = h
	}
	return img, nil
}
