package snapshot

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/guest"
	"ptlsim/internal/kern"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
)

func benchConfig() core.Config {
	return core.Config{Core: core.DefaultConfig().Core, NativeCPI: 1, ThreadsPerCore: 1}
}

// buildBench boots the deterministic timer-free rsync benchmark.
func buildBench(t *testing.T) *core.Machine {
	t.Helper()
	cs := guest.CorpusSpec{NFiles: 1, FileSize: 1024, Seed: 5, ChangeFraction: 0.4}
	spec, err := guest.RsyncBenchmark(cs, 4_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tree := stats.NewTree()
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewMachine(img.Domain, tree, benchConfig())
}

func TestCaptureRestoreIdentity(t *testing.T) {
	m := buildBench(t)
	if err := m.RunUntilInsns(2000, 0); err != nil {
		t.Fatal(err)
	}
	data, err := Capture(m).Encode()
	if err != nil {
		t.Fatal(err)
	}
	img, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(img, m.Config())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycle != m.Cycle {
		t.Fatalf("cycle: %d vs %d", r.Cycle, m.Cycle)
	}
	if r.Insns() != m.Insns() {
		t.Fatalf("insns: %d vs %d", r.Insns(), m.Insns())
	}
	if !vm.ArchEqual(r.Dom.VCPUs[0], m.Dom.VCPUs[0]) {
		t.Fatalf("arch state: %s", vm.DiffArch(m.Dom.VCPUs[0], r.Dom.VCPUs[0]))
	}
	if r.Dom.M.PM.NumPages() != m.Dom.M.PM.NumPages() {
		t.Fatalf("pages: %d vs %d", r.Dom.M.PM.NumPages(), m.Dom.M.PM.NumPages())
	}
	if r.Dom.Console() != m.Dom.Console() {
		t.Fatal("console output differs after restore")
	}
	if !reflect.DeepEqual(r.Tree.Snapshot(r.Cycle).Values, m.Tree.Snapshot(m.Cycle).Values) {
		t.Fatal("statistics tree differs after restore")
	}
}

// TestRoundTripDeterminism is the paper-level guarantee: a run that
// checkpoints every interval and a run resumed from one of those
// images in a fresh machine finish with bit-identical architectural
// state, cycle counts, console output and statistics.
func TestRoundTripDeterminism(t *testing.T) {
	const interval = 50_000

	// Uninterrupted (but checkpointing) run, simulated engine.
	m1 := buildBench(t)
	m1.SwitchMode(core.ModeSim)
	r1 := NewRunner(m1, interval)
	var saved [][]byte
	r1.OnCheckpoint = func(_ int, _ *Image, data []byte) error {
		saved = append(saved, append([]byte(nil), data...))
		return nil
	}
	if err := r1.Run(0); err != nil {
		t.Fatal(err)
	}
	final1 := r1.M
	if !strings.Contains(final1.Dom.Console(), "rsync ok") {
		t.Fatalf("benchmark did not finish: %q", final1.Dom.Console())
	}
	if len(saved) < 2 {
		t.Fatalf("run crossed only %d checkpoints; shrink the interval", len(saved))
	}

	// Resume from a mid-run image, decoding from bytes as a fresh
	// process would, and run to completion.
	img, err := Decode(saved[len(saved)/2])
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Restore(img, benchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cycle >= final1.Cycle {
		t.Fatalf("mid-run image is not mid-run: cycle %d vs final %d", m2.Cycle, final1.Cycle)
	}
	r2 := NewRunner(m2, interval)
	if err := r2.Run(0); err != nil {
		t.Fatal(err)
	}
	final2 := r2.M

	if final1.Cycle != final2.Cycle {
		t.Fatalf("cycle count diverged: uninterrupted %d, resumed %d", final1.Cycle, final2.Cycle)
	}
	if final1.Insns() != final2.Insns() {
		t.Fatalf("instruction count diverged: %d vs %d", final1.Insns(), final2.Insns())
	}
	for i := range final1.Dom.VCPUs {
		if !vm.ArchEqual(final1.Dom.VCPUs[i], final2.Dom.VCPUs[i]) {
			t.Fatalf("vcpu %d arch state diverged: %s", i,
				vm.DiffArch(final1.Dom.VCPUs[i], final2.Dom.VCPUs[i]))
		}
	}
	if final1.Dom.Console() != final2.Dom.Console() {
		t.Fatal("console output diverged")
	}
	s1 := final1.Tree.Snapshot(final1.Cycle).Values
	s2 := final2.Tree.Snapshot(final2.Cycle).Values
	if !reflect.DeepEqual(s1, s2) {
		for k, v := range s1 {
			if s2[k] != v {
				t.Errorf("counter %s: %d vs %d", k, v, s2[k])
			}
		}
		t.Fatal("statistics diverged")
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	m := buildBench(t)
	if err := m.RunUntilInsns(500, 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := Capture(m).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	img, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if img.Cycle != m.Cycle || len(img.VCPUs) != len(m.Dom.VCPUs) {
		t.Fatalf("image header: cycle=%d vcpus=%d", img.Cycle, len(img.VCPUs))
	}
	if _, err := Restore(&Image{}, benchConfig()); err == nil {
		t.Fatal("restoring an empty image must fail")
	}
}

func TestRunnerRejectsZeroInterval(t *testing.T) {
	m := buildBench(t)
	if err := (&Runner{M: m}).Run(0); err == nil {
		t.Fatal("zero interval must be rejected")
	}
}
