// Package snapshot implements full-machine checkpoint and restore: a
// serializable Image of everything that determines a domain's future —
// physical memory pages, VCPU architectural contexts, hypervisor state
// (timers, pending events, in-flight DMA, disk, console), the cycle
// counter, pending ptlcall phases, and the statistics tree.
//
// Determinism is by construction rather than by exhaustive
// microarchitectural serialization: cache, TLB, branch predictor and
// basic-block-cache contents are simulator speed/timing state that the
// restore path deliberately rebuilds cold. The checkpoint Runner makes
// this sound by running the machine in interval segments and swapping
// in a freshly restored machine at every boundary, so an uninterrupted
// checkpointed run and a run resumed from any of its images pass
// through identical restore operations and finish with bit-identical
// architectural state and cycle counts.
package snapshot

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"ptlsim/internal/core"
	"ptlsim/internal/hv"
	"ptlsim/internal/mem"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// VCPUImage is the serialized architectural state of one VCPU.
type VCPUImage struct {
	Regs         [uops.NumArchRegs]uint64
	RIP          uint64
	Kernel       bool
	CR3          uint64
	CR2          uint64
	TrapEntry    uint64
	SyscallEntry uint64
	KernelRSP    uint64
	Running      bool
	TSCOffset    uint64
	FlushGen     uint64
}

// PageImage is one machine page with its frame number.
type PageImage struct {
	MFN  uint64
	Data []byte
}

// Image is a complete machine checkpoint.
type Image struct {
	Cycle   uint64
	SimMode bool

	// CfgHash is the compatibility hash (ConfigHash) of the machine
	// configuration the image was captured under; Restore refuses an
	// image whose hash disagrees with the offered config. Zero means
	// unknown (hand-built images) and skips the check.
	CfgHash uint64

	// Machine control state: queued ptlcall phases and the current
	// instruction-bounded phase progress.
	Phases    []core.PhaseSpec
	StopInsns int64
	BaseInsns int64

	Domain hv.DomainState
	VCPUs  []VCPUImage

	Pages       []PageImage
	AllocCursor uint64

	// Stats holds every counter in the tree; restoring them preserves
	// committed-instruction totals (Machine.Insns reads counters) and
	// all reported statistics across the checkpoint boundary.
	Stats map[string]int64
}

// Capture snapshots machine m into a self-contained Image. The machine
// must be at an instruction boundary (between Step calls); the run
// loops guarantee this.
func Capture(m *core.Machine) *Image {
	img := &Image{
		Cycle:       m.Cycle,
		SimMode:     m.Mode() == core.ModeSim,
		CfgHash:     ConfigHash(m.Config()),
		Domain:      m.Dom.SaveState(),
		AllocCursor: m.Dom.M.PM.AllocCursor(),
		Stats:       m.Tree.Snapshot(m.Cycle).Values,
	}
	img.Phases, img.StopInsns, img.BaseInsns = m.ControlState()
	for _, ctx := range m.Dom.VCPUs {
		img.VCPUs = append(img.VCPUs, VCPUImage{
			Regs: ctx.Regs, RIP: ctx.RIP, Kernel: ctx.Kernel,
			CR3: ctx.CR3, CR2: ctx.CR2,
			TrapEntry: ctx.TrapEntry, SyscallEntry: ctx.SyscallEntry,
			KernelRSP: ctx.KernelRSP, Running: ctx.Running,
			TSCOffset: ctx.TSCOffset, FlushGen: ctx.FlushGen,
		})
	}
	m.Dom.M.PM.ForEachPage(func(mfn uint64, page *mem.Page) {
		img.Pages = append(img.Pages, PageImage{MFN: mfn, Data: append([]byte(nil), page[:]...)})
	})
	return img
}

// Restore builds a fresh machine from a checkpoint image using the
// given configuration (which must match the capturing machine's).
// External attachments — trace Sink/Source, step hooks — are not part
// of the image; the caller reattaches them.
func Restore(img *Image, cfg core.Config) (*core.Machine, error) {
	if len(img.VCPUs) == 0 {
		return nil, fmt.Errorf("snapshot: image has no VCPUs")
	}
	if h := ConfigHash(cfg); img.CfgHash != 0 && img.CfgHash != h {
		return nil, fmt.Errorf(
			"snapshot: image captured under config hash %#x but restore offered %#x "+
				"(core geometry, cache shapes or thread mapping differ): %w",
			img.CfgHash, h, ErrConfigMismatch)
	}
	pm := mem.NewPhysMem()
	for _, p := range img.Pages {
		pm.InstallPage(p.MFN, p.Data)
	}
	pm.SetAllocCursor(img.AllocCursor)

	tree := stats.NewTree()
	dom := hv.NewDomain(&vm.Machine{PM: pm}, len(img.VCPUs), tree)
	dom.LoadState(img.Domain)
	for i, vi := range img.VCPUs {
		ctx := dom.VCPUs[i]
		ctx.Regs = vi.Regs
		ctx.RIP = vi.RIP
		ctx.Kernel = vi.Kernel
		ctx.CR3 = vi.CR3
		ctx.CR2 = vi.CR2
		ctx.TrapEntry = vi.TrapEntry
		ctx.SyscallEntry = vi.SyscallEntry
		ctx.KernelRSP = vi.KernelRSP
		ctx.Running = vi.Running
		ctx.TSCOffset = vi.TSCOffset
		ctx.FlushGen = vi.FlushGen
	}

	m := core.NewMachine(dom, tree, cfg)
	m.Cycle = img.Cycle
	if img.SimMode {
		m.RestoreMode(core.ModeSim)
	} else {
		m.RestoreMode(core.ModeNative)
	}
	m.SetControlState(img.Phases, img.StopInsns, img.BaseInsns)
	// Restore counters last: constructors have registered their handles
	// by now, and Counter returns the existing handle for a known path,
	// so Set reaches every live counter (including instruction totals).
	for path, v := range img.Stats {
		tree.Counter(path).Set(v)
	}
	return m, nil
}

// Encode serializes the image to bytes (gob).
func (img *Image) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes an image produced by Encode.
func Decode(data []byte) (*Image, error) {
	var img Image
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return &img, nil
}

// Runner drives a machine to completion while checkpointing every
// Interval cycles. At each boundary it captures an Image, round-trips
// it through encoded bytes, restores a fresh machine from it, and
// swaps that machine in — so the continued run is, by construction,
// exactly the run a later restore-from-image would produce.
type Runner struct {
	M        *core.Machine
	Interval uint64

	// OnCheckpoint, when set, receives each checkpoint as it is taken
	// (k counts from 1) — e.g. to persist the encoded bytes to disk.
	OnCheckpoint func(k int, img *Image, encoded []byte) error

	// Checkpoints is the number of boundaries crossed so far.
	Checkpoints int
}

// NewRunner checkpoints m every interval cycles (interval must be > 0).
func NewRunner(m *core.Machine, interval uint64) *Runner {
	return &Runner{M: m, Interval: interval}
}

// Run executes until domain shutdown or until the absolute cycle count
// reaches maxCycles (0 = unlimited), checkpointing at every Interval
// boundary. On return r.M is the machine instance that finished the
// run (earlier instances have been swapped out).
func (r *Runner) Run(maxCycles uint64) error {
	return r.RunCtx(context.Background(), maxCycles)
}

// RunCtx is Run with cooperative cancellation: when ctx is cancelled
// the segment in flight stops at the next instruction boundary and the
// wrapped ctx.Err() is returned — r.M is then still checkpointable, so
// the caller can capture a final image before exiting.
func (r *Runner) RunCtx(ctx context.Context, maxCycles uint64) error {
	if r.Interval == 0 {
		return fmt.Errorf("snapshot: Runner.Interval must be > 0")
	}
	for !r.M.Dom.ShutdownReq {
		if maxCycles > 0 && r.M.Cycle >= maxCycles {
			vctx := r.M.Dom.VCPUs[0]
			return &simerr.SimError{
				Kind: simerr.KindCycleBudget, Cycle: r.M.Cycle,
				VCPU: vctx.ID, RIP: vctx.RIP,
				Message: fmt.Sprintf("cycle budget %d exhausted", maxCycles),
			}
		}
		target := r.M.Cycle + r.Interval
		if maxCycles > 0 && target > maxCycles {
			target = maxCycles
		}
		if err := r.M.RunUntilCycleCtx(ctx, target); err != nil {
			return err
		}
		if r.M.Dom.ShutdownReq {
			break
		}
		if err := r.checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// checkpoint performs one capture → encode → decode → restore → swap
// round trip, carrying over the external attachments the image
// deliberately excludes.
func (r *Runner) checkpoint() error {
	img := Capture(r.M)
	data, err := img.Encode()
	if err != nil {
		return err
	}
	decoded, err := Decode(data)
	if err != nil {
		return err
	}
	fresh, err := Restore(decoded, r.M.Config())
	if err != nil {
		return err
	}
	fresh.Dom.Sink = r.M.Dom.Sink
	fresh.Dom.Source = r.M.Dom.Source
	fresh.SetStepHook(r.M.StepHook())
	fresh.SetEventLog(r.M.EventLog())
	r.M = fresh
	r.Checkpoints++
	if r.OnCheckpoint != nil {
		return r.OnCheckpoint(r.Checkpoints, img, data)
	}
	return nil
}
