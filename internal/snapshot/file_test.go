package snapshot

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestImage writes a minimal valid image and returns its path and
// bytes.
func writeTestImage(t *testing.T) (string, []byte) {
	t.Helper()
	img := &Image{Cycle: 42, CfgHash: 0xdeadbeef, VCPUs: []VCPUImage{{RIP: 0x1000}}}
	path := filepath.Join(t.TempDir(), "img.ckpt")
	if err := img.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestFileHeaderRoundTrip(t *testing.T) {
	path, _ := writeTestImage(t)
	img, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if img.Cycle != 42 || img.CfgHash != 0xdeadbeef || img.VCPUs[0].RIP != 0x1000 {
		t.Fatalf("round trip lost data: %+v", img)
	}
	// No temp files may be left behind by the atomic write.
	leftovers, _ := filepath.Glob(filepath.Join(filepath.Dir(path), ".ckpt-*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestReadFileRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(data []byte) []byte
		wantErr error
	}{
		{"not a snapshot", func(d []byte) []byte {
			d[0] = 'X'
			return d
		}, ErrNotSnapshot},
		{"future version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:12], FormatVersion+1)
			return d
		}, ErrVersion},
		{"truncated payload", func(d []byte) []byte {
			return d[:len(d)-7]
		}, ErrTruncated},
		{"shorter than header", func(d []byte) []byte {
			return d[:12]
		}, ErrTruncated},
		{"payload bit rot", func(d []byte) []byte {
			d[len(d)-3] ^= 0x40
			return d
		}, ErrChecksum},
		{"garbage file", func(d []byte) []byte {
			return []byte("definitely not a checkpoint")
		}, ErrNotSnapshot},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, data := writeTestImage(t)
			if err := os.WriteFile(path, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ReadFile(path)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestInspect: header triage of intact and damaged checkpoint files —
// Inspect must never need a restorable machine, and must keep reporting
// the parsed header fields past the first integrity problem.
func TestInspect(t *testing.T) {
	path, data := writeTestImage(t)

	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Err != "" {
		t.Fatalf("intact file reported %q", info.Err)
	}
	if info.Version != FormatVersion || info.CfgHash != 0xdeadbeef ||
		info.Cycle != 42 || info.VCPUs != 1 || info.Pages != 0 {
		t.Fatalf("inspect lost fields: %+v", info)
	}
	if info.PayloadLen == 0 || info.Size != int64(headerSize)+int64(info.PayloadLen) {
		t.Fatalf("size accounting wrong: %+v", info)
	}

	// Bit-rotted payload: header fields survive, Err says checksum.
	rot := append([]byte(nil), data...)
	rot[len(rot)-3] ^= 0x40
	if err := os.WriteFile(path, rot, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Err, "checksum") {
		t.Fatalf("Err = %q, want checksum", info.Err)
	}
	if info.Version != FormatVersion || info.CfgHash != 0xdeadbeef || info.Cycle != 0 {
		t.Fatalf("header fields should survive a bad payload (and no payload fields leak): %+v", info)
	}

	// Truncated below the header: only the magic is knowable.
	if err := os.WriteFile(path, data[:12], 0o644); err != nil {
		t.Fatal(err)
	}
	info, _ = Inspect(path)
	if !strings.Contains(info.Err, "truncated") {
		t.Fatalf("Err = %q, want truncated", info.Err)
	}

	// Not a snapshot at all.
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, _ = Inspect(path)
	if !strings.Contains(info.Err, "not a ptlsim snapshot") {
		t.Fatalf("Err = %q, want not-a-snapshot", info.Err)
	}

	// Missing file: the one case that is a real error.
	if _, err := Inspect(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestRestoreConfigMismatch: an image captured under one machine
// configuration must refuse to restore under another, with a typed,
// explanatory error — not build a machine with silently wrong geometry.
func TestRestoreConfigMismatch(t *testing.T) {
	m := buildBench(t)
	if err := m.RunUntilInsns(500, 0); err != nil {
		t.Fatal(err)
	}
	img := Capture(m)
	if img.CfgHash == 0 || img.CfgHash != ConfigHash(m.Config()) {
		t.Fatalf("capture should stamp the config hash: %#x", img.CfgHash)
	}

	other := benchConfig()
	other.Core.ROBSize *= 2
	if _, err := Restore(img, other); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("restore under changed config: err = %v, want ErrConfigMismatch", err)
	}
	if _, err := Restore(img, m.Config()); err != nil {
		t.Fatalf("restore under matching config: %v", err)
	}

	// The mismatch also surfaces through the file path (-restore).
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := img.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Restore(loaded, other)
	if !errors.Is(err, ErrConfigMismatch) || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("file restore under changed config: %v", err)
	}
}

func TestConfigHashStability(t *testing.T) {
	a, b := benchConfig(), benchConfig()
	if ConfigHash(a) != ConfigHash(b) {
		t.Fatal("identical configs must hash identically")
	}
	b.Core.FetchWidth++
	if ConfigHash(a) == ConfigHash(b) {
		t.Fatal("a nested core parameter change must change the hash")
	}
	c := benchConfig()
	c.WatchdogCycles = 12345
	if ConfigHash(a) == ConfigHash(c) {
		t.Fatal("a top-level field change must change the hash")
	}
}

// TestWriteFileOverwritesAtomically: rewriting an existing slot leaves
// either the old or the new image, never a blend — modeled here by the
// rename-over semantics reading back the new content intact.
func TestWriteFileOverwritesAtomically(t *testing.T) {
	path, _ := writeTestImage(t)
	img2 := &Image{Cycle: 1000, VCPUs: []VCPUImage{{RIP: 0x2000}}}
	if err := img2.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != 1000 || got.VCPUs[0].RIP != 0x2000 {
		t.Fatalf("overwrite lost data: %+v", got)
	}
}
