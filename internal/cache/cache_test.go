package cache

import (
	"math/rand"
	"testing"

	"ptlsim/internal/stats"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(Config{Size: 4096, Assoc: 2, LineSize: 64, Latency: 3})
	if _, ok := c.Touch(0x1000); ok {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x1000, Exclusive)
	if st, ok := c.Touch(0x1000); !ok || st != Exclusive {
		t.Fatalf("hit = %v %v", st, ok)
	}
	// Same line, different offset hits.
	if _, ok := c.Touch(0x103F); !ok {
		t.Fatal("same-line access should hit")
	}
	if _, ok := c.Touch(0x1040); ok {
		t.Fatal("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, line 64, size 128*2 = 2 sets... make one set: size=128, assoc=2.
	c := NewCache(Config{Size: 128, Assoc: 2, LineSize: 64, Latency: 1})
	c.Fill(0x0000, Exclusive)
	c.Fill(0x1000, Exclusive) // different tag, same (only) set? 128/64/2 = 1 set
	c.Touch(0x0000)           // make 0x1000 LRU
	ev := c.Fill(0x2000, Exclusive)
	if !ev.Valid || ev.LineAddr != 0x1000 {
		t.Fatalf("evicted = %+v, want line 0x1000", ev)
	}
	if _, ok := c.Probe(0x0000); !ok {
		t.Fatal("MRU line evicted")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := NewCache(Config{Size: 64, Assoc: 1, LineSize: 64, Latency: 1})
	c.Fill(0x0000, Modified)
	ev := c.Fill(0x4000, Exclusive)
	if !ev.Valid || ev.State != Modified {
		t.Fatalf("dirty victim = %+v", ev)
	}
}

func TestBankMapping(t *testing.T) {
	c := NewCache(Config{Size: 4096, Assoc: 2, LineSize: 64, Latency: 3, Banks: 8})
	if c.Bank(0x00) != 0 || c.Bank(0x08) != 1 || c.Bank(0x38) != 7 {
		t.Fatalf("banks: %d %d %d", c.Bank(0x00), c.Bank(0x08), c.Bank(0x38))
	}
	// 8-byte granularity: two addresses within one 8-byte word share.
	if c.Bank(0x09) != c.Bank(0x08) {
		t.Fatal("same word should share a bank")
	}
	un := NewCache(Config{Size: 4096, Assoc: 2, LineSize: 64})
	if un.Bank(0x38) != 0 {
		t.Fatal("unbanked cache should report bank 0")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	tree := stats.NewTree()
	h := NewHierarchy(K8Hierarchy(), tree, "c")
	// Cold: L1 miss, L2 miss -> memory.
	r := h.Load(0x10000, 100)
	if r.Level != LevelMem {
		t.Fatalf("cold load level = %v", r.Level)
	}
	wantReady := uint64(100) + 3 + 10 + 112
	if r.Ready != wantReady {
		t.Fatalf("cold load ready = %d, want %d", r.Ready, wantReady)
	}
	// Hot: L1 hit.
	r = h.Load(0x10000, 300)
	if r.Level != LevelL1 || r.Ready != 303 {
		t.Fatalf("hot load = %+v", r)
	}
	if tree.Lookup("c.l1d.accesses").Value() != 2 || tree.Lookup("c.l1d.misses").Value() != 1 {
		t.Fatalf("stats: acc=%d miss=%d",
			tree.Lookup("c.l1d.accesses").Value(), tree.Lookup("c.l1d.misses").Value())
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	tree := stats.NewTree()
	cfg := HierarchyConfig{
		L1D:        Config{Size: 128, Assoc: 1, LineSize: 64, Latency: 2}, // 2 sets
		L1I:        Config{Size: 128, Assoc: 1, LineSize: 64, Latency: 1},
		L2:         Config{Size: 4096, Assoc: 4, LineSize: 64, Latency: 9},
		MemLatency: 100,
		MSHRs:      4,
	}
	h := NewHierarchy(cfg, tree, "c")
	h.Load(0x0000, 0)
	h.Load(0x2000, 500) // evicts 0x0000 from the 1-way L1 set
	r := h.Load(0x0000, 1000)
	if r.Level != LevelL2 {
		t.Fatalf("expected L2 hit, got %v", r.Level)
	}
	if r.Ready != 1000+2+9 {
		t.Fatalf("L2 ready = %d", r.Ready)
	}
}

func TestMSHRMerging(t *testing.T) {
	tree := stats.NewTree()
	h := NewHierarchy(K8Hierarchy(), tree, "c")
	r1 := h.Load(0x40000, 10)
	r2 := h.Load(0x40008, 11) // same line, outstanding
	if !r2.MSHRMerged {
		t.Fatal("second miss to same line should merge")
	}
	if r2.Ready != r1.Ready {
		t.Fatalf("merged miss ready %d != %d", r2.Ready, r1.Ready)
	}
	if tree.Lookup("c.mshr.merges").Value() != 1 {
		t.Fatal("merge not counted")
	}
}

func TestMSHRStructuralStall(t *testing.T) {
	tree := stats.NewTree()
	cfg := K8Hierarchy()
	cfg.MSHRs = 2
	h := NewHierarchy(cfg, tree, "c")
	r1 := h.Load(0x100000, 0)
	h.Load(0x200000, 0)
	r3 := h.Load(0x300000, 0) // no free MSHR until r1/r2 complete
	if r3.Ready <= r1.Ready {
		t.Fatalf("structural stall not modeled: r3 ready %d vs r1 %d", r3.Ready, r1.Ready)
	}
}

func TestPrefetchNextLine(t *testing.T) {
	tree := stats.NewTree()
	cfg := K8Hierarchy()
	cfg.Prefetch = true
	h := NewHierarchy(cfg, tree, "c")
	h.Load(0x50000, 0)  // miss (trains)
	h.Load(0x50040, 200) // consecutive miss -> prefetch 0x50080
	r := h.Load(0x50080, 400)
	if r.Level != LevelL1 {
		t.Fatalf("prefetched line should hit L1, got %v", r.Level)
	}
	if tree.Lookup("c.prefetches").Value() != 1 {
		t.Fatal("prefetch not counted")
	}
}

func TestIFetchSeparateFromData(t *testing.T) {
	tree := stats.NewTree()
	h := NewHierarchy(K8Hierarchy(), tree, "c")
	h.Fetch(0x7000, 0)
	if tree.Lookup("c.l1i.accesses").Value() != 1 || tree.Lookup("c.l1d.accesses").Value() != 0 {
		t.Fatal("ifetch must hit the I-cache path")
	}
	// Data access to same address still misses L1D (separate arrays)
	// but hits L2 (unified).
	r := h.Load(0x7000, 500)
	if r.Level != LevelL2 {
		t.Fatalf("load after fetch: level %v, want L2", r.Level)
	}
}

func TestFlush(t *testing.T) {
	tree := stats.NewTree()
	h := NewHierarchy(K8Hierarchy(), tree, "c")
	h.Load(0x9000, 0)
	h.Flush()
	r := h.Load(0x9000, 1000)
	if r.Level != LevelMem {
		t.Fatalf("after flush load should go to memory, got %v", r.Level)
	}
}

func TestInstantCoherenceInvalidation(t *testing.T) {
	tree := stats.NewTree()
	cc := NewInstantCoherence(tree)
	h0 := NewHierarchy(K8Hierarchy(), tree, "c0")
	h1 := NewHierarchy(K8Hierarchy(), tree, "c1")
	h0.AttachCoherence(cc, 0)
	h1.AttachCoherence(cc, 1)

	h0.Load(0x8000, 0) // core 0 reads: Exclusive
	h1.Store(0x8000, 100)
	// Core 0's copy must be gone.
	if _, ok := h0.L1D().Probe(0x8000); ok {
		t.Fatal("writer must invalidate remote copy")
	}
	if tree.Lookup("coherence.line_moves").Value() == 0 {
		t.Fatal("line movement not counted")
	}
}

func TestInstantCoherenceSharedRead(t *testing.T) {
	tree := stats.NewTree()
	cc := NewInstantCoherence(tree)
	h0 := NewHierarchy(K8Hierarchy(), tree, "c0")
	h1 := NewHierarchy(K8Hierarchy(), tree, "c1")
	h0.AttachCoherence(cc, 0)
	h1.AttachCoherence(cc, 1)

	h0.Store(0x8000, 0) // core 0 dirty
	h1.Load(0x8000, 100)
	st, ok := h0.L1D().Probe(0x8000)
	if !ok || (st != Owned && st != Shared) {
		t.Fatalf("remote dirty copy should be downgraded, got %v %v", st, ok)
	}
}

func TestMOESILatency(t *testing.T) {
	tree := stats.NewTree()
	cc := NewMOESICoherence(tree, 20, 30)
	h0 := NewHierarchy(K8Hierarchy(), tree, "c0")
	h1 := NewHierarchy(K8Hierarchy(), tree, "c1")
	h0.AttachCoherence(cc, 0)
	h1.AttachCoherence(cc, 1)

	h0.Store(0x8000, 0)
	r := h1.Load(0x8000, 1000)
	// Cache-to-cache: L1 lat + L2 lat + bus + transfer, not memory.
	want := uint64(1000) + 3 + 10 + 20 + 30
	if r.Ready != want {
		t.Fatalf("c2c transfer ready = %d, want %d", r.Ready, want)
	}
	if tree.Lookup("coherence.line_moves").Value() != 1 {
		t.Fatal("line move not counted")
	}
}

// MOESI invariant: after any access sequence, at most one core holds a
// line in M or E state.
func TestMOESISingleOwnerProperty(t *testing.T) {
	tree := stats.NewTree()
	cc := NewMOESICoherence(tree, 5, 10)
	const ncores = 4
	hs := make([]*Hierarchy, ncores)
	for i := range hs {
		hs[i] = NewHierarchy(K8Hierarchy(), tree, "c")
		hs[i].AttachCoherence(cc, i)
	}
	r := rand.New(rand.NewSource(13))
	lines := []uint64{0x1000, 0x2000, 0x3000}
	for step := 0; step < 3000; step++ {
		core := r.Intn(ncores)
		line := lines[r.Intn(len(lines))]
		if r.Intn(2) == 0 {
			hs[core].Load(line, uint64(step)*10)
		} else {
			hs[core].Store(line, uint64(step)*10)
		}
		for _, l := range lines {
			owners := 0
			for _, h := range hs {
				if st, ok := h.L1D().Probe(l); ok && (st == Modified || st == Exclusive) {
					owners++
				}
			}
			if owners > 1 {
				t.Fatalf("step %d: line %#x has %d M/E owners", step, l, owners)
			}
		}
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	tree := stats.NewTree()
	cc := NewMOESICoherence(tree, 5, 10)
	h0 := NewHierarchy(K8Hierarchy(), tree, "c0")
	h1 := NewHierarchy(K8Hierarchy(), tree, "c1")
	h0.AttachCoherence(cc, 0)
	h1.AttachCoherence(cc, 1)
	h0.Load(0x8000, 0)
	h1.Load(0x8000, 10) // both Shared now
	h0.Store(0x8000, 100)
	if _, ok := h1.L1D().Probe(0x8000); ok {
		t.Fatal("upgrade must invalidate the other sharer")
	}
	if tree.Lookup("coherence.upgrades").Value() == 0 {
		t.Fatal("upgrade not counted")
	}
}

func TestResidentCount(t *testing.T) {
	c := NewCache(Config{Size: 4096, Assoc: 4, LineSize: 64, Latency: 1})
	for i := uint64(0); i < 10; i++ {
		c.Fill(i*64, Shared)
	}
	if c.Resident() != 10 {
		t.Fatalf("resident = %d", c.Resident())
	}
	c.Invalidate(0)
	if c.Resident() != 9 {
		t.Fatalf("after invalidate = %d", c.Resident())
	}
}
