// Package cache models the physically-tagged cache hierarchy: L1 I/D,
// unified L2 and optional L3, with configurable size, associativity,
// latency, line size, MSHR-style miss buffers, K8-style L1 banking, an
// optional next-line prefetcher, and pluggable multi-core coherence
// ("instant visibility" by default, MOESI as the detailed model —
// mirroring the paper's §4.4).
//
// The hierarchy is timing-only: data values always come from the
// physical memory image (the integrated-simulation design), so the
// caches track presence, state and latency rather than bytes.
package cache

import "fmt"

// MESI/MOESI line states.
type State uint8

// Line states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return "?"
}

// Config describes one cache level.
type Config struct {
	Size     int // bytes
	Assoc    int
	LineSize int // bytes (power of two)
	Latency  uint64
	Banks    int // 0 = unbanked
}

// Validate checks the geometry, naming the level in error messages so
// a bad CLI flag yields a usable diagnostic instead of a stack trace.
func (c Config) Validate(name string) error {
	if c.Size <= 0 {
		return fmt.Errorf("cache %s: size %d must be positive", name, c.Size)
	}
	line := c.LineSize
	if line == 0 {
		line = 64
	}
	if line&(line-1) != 0 {
		return fmt.Errorf("cache %s: line size %d must be a power of two", name, line)
	}
	assoc := c.Assoc
	if assoc <= 0 {
		assoc = 1
	}
	nsets := c.Size / (line * assoc)
	if nsets <= 0 {
		nsets = 1
	}
	if nsets&(nsets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d (size %d / line %d / assoc %d) must be a power of two",
			name, nsets, c.Size, line, assoc)
	}
	return nil
}

type line struct {
	tag   uint64
	state State
	lru   uint64
}

// Cache is one set-associative, physically tagged cache array.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	lineShift uint
	stamp     uint64
}

// NewCache builds a cache from cfg.
func NewCache(cfg Config) *Cache {
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.Assoc <= 0 {
		cfg.Assoc = 1
	}
	nsets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if nsets <= 0 {
		nsets = 1
	}
	// Ill-formed geometries (see Config.Validate) round up to the next
	// power-of-two set count; validated configs never trigger this.
	for nsets&(nsets-1) != 0 {
		nsets++
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nsets), setMask: uint64(nsets - 1), lineShift: shift}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address of pa.
func (c *Cache) LineAddr(pa uint64) uint64 { return pa >> c.lineShift << c.lineShift }

// Bank returns the bank index of pa (K8 banks on 8-byte boundaries
// within the line). Returns 0 when unbanked.
func (c *Cache) Bank(pa uint64) int {
	if c.cfg.Banks <= 1 {
		return 0
	}
	return int(pa>>3) % c.cfg.Banks
}

func (c *Cache) find(pa uint64) (set []line, idx int) {
	tag := pa >> c.lineShift
	set = c.sets[tag&c.setMask]
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return set, i
		}
	}
	return set, -1
}

// Probe reports whether pa is resident, without touching LRU state.
func (c *Cache) Probe(pa uint64) (State, bool) {
	_, i := c.find(pa)
	if i < 0 {
		return Invalid, false
	}
	return c.sets[(pa>>c.lineShift)&c.setMask][i].state, true
}

// Touch looks up pa and refreshes LRU on hit.
func (c *Cache) Touch(pa uint64) (State, bool) {
	set, i := c.find(pa)
	if i < 0 {
		return Invalid, false
	}
	c.stamp++
	set[i].lru = c.stamp
	return set[i].state, true
}

// Evicted describes a victim line pushed out by a fill.
type Evicted struct {
	LineAddr uint64
	State    State
	Valid    bool
}

// Fill installs pa's line in the given state, returning any victim
// (dirty victims must be written back by the caller's hierarchy).
func (c *Cache) Fill(pa uint64, st State) Evicted {
	tag := pa >> c.lineShift
	set := c.sets[tag&c.setMask]
	c.stamp++
	victim := 0
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			set[i].state = st
			set[i].lru = c.stamp
			return Evicted{}
		}
		if set[i].state == Invalid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	ev := Evicted{}
	if set[victim].state != Invalid {
		ev = Evicted{LineAddr: set[victim].tag << c.lineShift, State: set[victim].state, Valid: true}
	}
	set[victim] = line{tag: tag, state: st, lru: c.stamp}
	return ev
}

// SetState changes the state of a resident line (coherence actions);
// it reports whether the line was present.
func (c *Cache) SetState(pa uint64, st State) bool {
	set, i := c.find(pa)
	if i < 0 {
		return false
	}
	set[i].state = st
	return true
}

// Invalidate drops pa's line, returning its prior state.
func (c *Cache) Invalidate(pa uint64) State {
	set, i := c.find(pa)
	if i < 0 {
		return Invalid
	}
	prior := set[i].state
	set[i].state = Invalid
	return prior
}

// Flush invalidates the entire cache.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i].state = Invalid
		}
	}
}

// Audit checks the cache's structural invariants, naming the level in
// any violation report: every set's valid lines must carry distinct
// tags (a duplicate means a line was double-filled) and distinct LRU
// stamps no newer than the global stamp (Touch/Fill assign a freshly
// incremented stamp per access, so equality or a future stamp can only
// arise from corruption).
func (c *Cache) Audit(name string) error {
	for si, set := range c.sets {
		for i := range set {
			if set[i].state == Invalid {
				continue
			}
			if set[i].lru > c.stamp {
				return fmt.Errorf("cache %s set %d way %d: lru stamp %d newer than global stamp %d",
					name, si, i, set[i].lru, c.stamp)
			}
			for j := i + 1; j < len(set); j++ {
				if set[j].state == Invalid {
					continue
				}
				if set[i].tag == set[j].tag {
					return fmt.Errorf("cache %s set %d: duplicate tag %#x in ways %d and %d",
						name, si, set[i].tag, i, j)
				}
				if set[i].lru == set[j].lru {
					return fmt.Errorf("cache %s set %d: duplicate lru stamp %d in ways %d and %d",
						name, si, set[i].lru, i, j)
				}
			}
		}
	}
	return nil
}

// Resident counts valid lines (for tests and occupancy stats).
func (c *Cache) Resident() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].state != Invalid {
				n++
			}
		}
	}
	return n
}
