package cache

import (
	"fmt"

	"ptlsim/internal/stats"
)

// HierarchyConfig describes a per-core cache hierarchy. L3 may have
// Size 0 to disable it (the K8 configuration in Table 1 is L1+L2).
type HierarchyConfig struct {
	L1D, L1I, L2, L3 Config
	MemLatency       uint64
	MSHRs            int  // outstanding line misses per hierarchy
	Prefetch         bool // simple tagged next-line prefetcher on L1D misses
}

// Validate checks every configured level's geometry.
func (cfg HierarchyConfig) Validate() error {
	if err := cfg.L1D.Validate("l1d"); err != nil {
		return err
	}
	if err := cfg.L1I.Validate("l1i"); err != nil {
		return err
	}
	if err := cfg.L2.Validate("l2"); err != nil {
		return err
	}
	if cfg.L3.Size > 0 {
		if err := cfg.L3.Validate("l3"); err != nil {
			return err
		}
	}
	return nil
}

// DefaultHierarchy is a generic modern three-level configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1D:        Config{Size: 32 << 10, Assoc: 8, LineSize: 64, Latency: 4},
		L1I:        Config{Size: 32 << 10, Assoc: 8, LineSize: 64, Latency: 1},
		L2:         Config{Size: 512 << 10, Assoc: 8, LineSize: 64, Latency: 12},
		L3:         Config{Size: 8 << 20, Assoc: 16, LineSize: 64, Latency: 30},
		MemLatency: 180,
		MSHRs:      16,
	}
}

// K8Hierarchy matches the Table 1 configuration: 64 KB 2-way L1 D and
// I caches with 8 banks, a 1 MB 16-way L2 10 cycles away, no L3, and
// main memory 112 cycles away.
func K8Hierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1D:        Config{Size: 64 << 10, Assoc: 2, LineSize: 64, Latency: 3, Banks: 8},
		L1I:        Config{Size: 64 << 10, Assoc: 2, LineSize: 64, Latency: 1},
		L2:         Config{Size: 1 << 20, Assoc: 16, LineSize: 64, Latency: 10},
		MemLatency: 112,
		MSHRs:      8,
	}
}

// Level identifies where an access was satisfied.
type Level uint8

// Hit levels.
const (
	LevelL1 Level = 1
	LevelL2 Level = 2
	LevelL3 Level = 3
	LevelMem Level = 4
)

// Result describes the timing outcome of a cache access.
type Result struct {
	Ready uint64 // cycle at which data is available
	Level Level  // level that satisfied the access
	MSHRMerged bool // folded into an outstanding miss for the same line
}

// mshr tracks one outstanding line miss.
type mshr struct {
	line  uint64
	ready uint64
}

// Hierarchy is one core's cache hierarchy with miss buffers and an
// optional coherence controller shared between cores.
type Hierarchy struct {
	cfg HierarchyConfig
	l1d *Cache
	l1i *Cache
	l2  *Cache
	l3  *Cache

	mshrs []mshr

	coh    Controller // may be nil (single core, no coherence)
	coreID int

	prefetchLast uint64 // last line missed, for tagged next-line detection

	// respDelayUntil, when nonzero, stretches every access completing
	// earlier to that cycle — the fault-injection model of a hung or
	// slow memory device (see internal/faultinject).
	respDelayUntil uint64

	// Statistics.
	l1dAccess, l1dMiss   *stats.Counter
	l1iAccess, l1iMiss   *stats.Counter
	l2Access, l2Miss     *stats.Counter
	l3Access, l3Miss     *stats.Counter
	memAccess            *stats.Counter
	mshrMerges, wbCount  *stats.Counter
	prefetches           *stats.Counter
	bankConflictsCounter *stats.Counter
}

// NewHierarchy builds a hierarchy, registering statistics under
// prefix (e.g. "core0.cache") in tree.
func NewHierarchy(cfg HierarchyConfig, tree *stats.Tree, prefix string) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		l1d: NewCache(cfg.L1D),
		l1i: NewCache(cfg.L1I),
		l2:  NewCache(cfg.L2),
	}
	if cfg.L3.Size > 0 {
		h.l3 = NewCache(cfg.L3)
	}
	if cfg.MSHRs <= 0 {
		h.cfg.MSHRs = 8
	}
	h.l1dAccess = tree.Counter(prefix + ".l1d.accesses")
	h.l1dMiss = tree.Counter(prefix + ".l1d.misses")
	h.l1iAccess = tree.Counter(prefix + ".l1i.accesses")
	h.l1iMiss = tree.Counter(prefix + ".l1i.misses")
	h.l2Access = tree.Counter(prefix + ".l2.accesses")
	h.l2Miss = tree.Counter(prefix + ".l2.misses")
	h.l3Access = tree.Counter(prefix + ".l3.accesses")
	h.l3Miss = tree.Counter(prefix + ".l3.misses")
	h.memAccess = tree.Counter(prefix + ".mem.accesses")
	h.mshrMerges = tree.Counter(prefix + ".mshr.merges")
	h.wbCount = tree.Counter(prefix + ".writebacks")
	h.prefetches = tree.Counter(prefix + ".prefetches")
	h.bankConflictsCounter = tree.Counter(prefix + ".l1d.bank_conflicts")
	return h
}

// AttachCoherence links the hierarchy to a shared coherence controller
// as the given core.
func (h *Hierarchy) AttachCoherence(c Controller, coreID int) {
	h.coh = c
	h.coreID = coreID
	c.Register(coreID, h)
}

// L1D exposes the level-1 data cache (for bank queries and tests).
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L1I exposes the level-1 instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L2 exposes the unified level-2 cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// CountBankConflict records an L1D bank conflict replay (detected by
// the core's load/store units).
func (h *Hierarchy) CountBankConflict() { h.bankConflictsCounter.Inc() }

// Flush empties all levels (used by -perfctr style cold-start runs).
func (h *Hierarchy) Flush() {
	h.l1d.Flush()
	h.l1i.Flush()
	h.l2.Flush()
	if h.l3 != nil {
		h.l3.Flush()
	}
	h.mshrs = h.mshrs[:0]
}

// mshrLookup merges a miss into an outstanding one, or allocates a new
// MSHR. Returns the completion cycle and whether it was merged.
func (h *Hierarchy) mshrAlloc(lineAddr, now, fillLatency uint64) (uint64, bool) {
	// Retire completed MSHRs.
	live := h.mshrs[:0]
	for _, m := range h.mshrs {
		if m.ready > now {
			live = append(live, m)
		}
	}
	h.mshrs = live
	for _, m := range h.mshrs {
		if m.line == lineAddr {
			h.mshrMerges.Inc()
			return m.ready, true
		}
	}
	start := now
	if len(h.mshrs) >= h.cfg.MSHRs {
		// All miss buffers busy: the request waits for the earliest
		// free slot (structural hazard).
		earliest := h.mshrs[0].ready
		for _, m := range h.mshrs[1:] {
			if m.ready < earliest {
				earliest = m.ready
			}
		}
		start = earliest
	}
	ready := start + fillLatency
	h.mshrs = append(h.mshrs, mshr{line: lineAddr, ready: ready})
	return ready, false
}

// access is the shared lookup path for loads, stores and fetches,
// applying the injected response delay (if armed) on top of the
// modeled timing.
func (h *Hierarchy) access(pa uint64, now uint64, write, ifetch bool) Result {
	r := h.accessTimed(pa, now, write, ifetch)
	if r.Ready < h.respDelayUntil {
		r.Ready = h.respDelayUntil
	}
	return r
}

// accessTimed computes the un-injected timing outcome.
func (h *Hierarchy) accessTimed(pa uint64, now uint64, write, ifetch bool) Result {
	l1 := h.l1d
	acc, miss := h.l1dAccess, h.l1dMiss
	if ifetch {
		l1 = h.l1i
		acc, miss = h.l1iAccess, h.l1iMiss
	}
	acc.Inc()
	lineAddr := l1.LineAddr(pa)

	if st, ok := l1.Touch(pa); ok {
		ready := now + l1.cfg.Latency
		// A hit on a line whose fill is still in flight completes when
		// the outstanding MSHR does (miss merging).
		merged := false
		for _, m := range h.mshrs {
			if m.line == lineAddr && m.ready > ready {
				ready = m.ready
				merged = true
				h.mshrMerges.Inc()
				break
			}
		}
		if write && (st == Shared || st == Owned) && h.coh != nil {
			// Upgrade: invalidate other sharers.
			lat := h.coh.Upgrade(h.coreID, lineAddr, now)
			l1.SetState(pa, Modified)
			return Result{Ready: ready + lat, Level: LevelL1, MSHRMerged: merged}
		}
		if write {
			l1.SetState(pa, Modified)
		}
		return Result{Ready: ready, Level: LevelL1, MSHRMerged: merged}
	}
	miss.Inc()

	// Determine fill latency by probing deeper levels.
	var fillLat uint64
	var level Level
	h.l2Access.Inc()
	if _, ok := h.l2.Touch(pa); ok {
		fillLat = h.l2.cfg.Latency
		level = LevelL2
	} else {
		h.l2Miss.Inc()
		if h.l3 != nil {
			h.l3Access.Inc()
			if _, ok := h.l3.Touch(pa); ok {
				fillLat = h.l2.cfg.Latency + h.l3.cfg.Latency
				level = LevelL3
			} else {
				h.l3Miss.Inc()
				h.memAccess.Inc()
				fillLat = h.l2.cfg.Latency + h.l3.cfg.Latency + h.cfg.MemLatency
				level = LevelMem
			}
		} else {
			h.memAccess.Inc()
			fillLat = h.l2.cfg.Latency + h.cfg.MemLatency
			level = LevelMem
		}
	}

	// Coherence: fetching from another core's cache may be faster or
	// slower than memory and invalidates/downgrades remote copies.
	var cohLat uint64
	newState := Exclusive
	if h.coh != nil {
		var remote bool
		cohLat, remote = h.coh.Fetch(h.coreID, lineAddr, write, now)
		if remote && level == LevelMem {
			// Cache-to-cache transfer instead of memory access.
			fillLat = h.l2.cfg.Latency + cohLat
		}
		if write {
			newState = Modified
		} else if remote {
			newState = Shared
		}
	} else if write {
		newState = Modified
	}

	ready, merged := h.mshrAlloc(lineAddr, now+l1.cfg.Latency, fillLat)

	// Fill L1 (and L2/L3 inclusively).
	if ev := l1.Fill(pa, newState); ev.Valid && (ev.State == Modified || ev.State == Owned) {
		h.wbCount.Inc()
		h.l2.Fill(ev.LineAddr, Modified)
	}
	if level == LevelMem || level == LevelL3 {
		if ev := h.l2.Fill(pa, Shared); ev.Valid && (ev.State == Modified || ev.State == Owned) {
			h.wbCount.Inc()
		}
	}
	if h.l3 != nil && level == LevelMem {
		h.l3.Fill(pa, Shared)
	}

	// Tagged next-line prefetch: a second consecutive line miss
	// triggers a prefetch of the following line into L1.
	if h.cfg.Prefetch && !ifetch {
		if lineAddr == h.prefetchLast+uint64(l1.cfg.LineSize) {
			next := lineAddr + uint64(l1.cfg.LineSize)
			if _, ok := l1.Probe(next); !ok {
				l1.Fill(next, Exclusive)
				h.l2.Fill(next, Shared)
				h.prefetches.Inc()
			}
		}
		h.prefetchLast = lineAddr
	}

	return Result{Ready: ready, Level: level, MSHRMerged: merged}
}

// SetResponseDelay stretches every subsequent access so it completes
// no earlier than cycle until (0 restores normal behavior). This is
// the fault-injection hook modeling a stalled memory device: with a
// far-future cycle, in-flight loads never complete and the commit
// watchdog must trip.
func (h *Hierarchy) SetResponseDelay(until uint64) { h.respDelayUntil = until }

// Load performs a data read at physical address pa at cycle now.
func (h *Hierarchy) Load(pa, now uint64) Result { return h.access(pa, now, false, false) }

// Store performs a data write at physical address pa at cycle now
// (write-allocate, write-back).
func (h *Hierarchy) Store(pa, now uint64) Result { return h.access(pa, now, true, false) }

// Fetch performs an instruction fetch at physical address pa.
func (h *Hierarchy) Fetch(pa, now uint64) Result { return h.access(pa, now, false, true) }

// Audit checks the hierarchy's structural invariants: every level's
// LRU stacks and tag arrays (Cache.Audit), and the miss buffers — no
// two outstanding MSHRs may track the same line (the merge path must
// fold same-line misses) and completion times must be set. The raw
// MSHR list length is not bounded by cfg.MSHRs: over-occupancy
// requests queue behind the earliest free slot and dead entries retire
// lazily, so only the same-line exclusion is a true invariant.
func (h *Hierarchy) Audit() error {
	levels := []struct {
		name string
		c    *Cache
	}{{"l1d", h.l1d}, {"l1i", h.l1i}, {"l2", h.l2}, {"l3", h.l3}}
	for _, lv := range levels {
		if lv.c == nil {
			continue
		}
		if err := lv.c.Audit(lv.name); err != nil {
			return err
		}
	}
	for i := range h.mshrs {
		if h.mshrs[i].ready == 0 {
			return fmt.Errorf("mshr %d: zero completion time for line %#x", i, h.mshrs[i].line)
		}
		for j := i + 1; j < len(h.mshrs); j++ {
			if h.mshrs[i].line == h.mshrs[j].line {
				return fmt.Errorf("mshr: duplicate outstanding miss for line %#x (slots %d and %d)",
					h.mshrs[i].line, i, j)
			}
		}
	}
	return nil
}

// snoop handles a remote coherence request against this hierarchy:
// invalidate on write intent, downgrade to Shared/Owned on read.
// It reports whether any level held the line.
func (h *Hierarchy) snoop(lineAddr uint64, invalidate bool) bool {
	held := false
	for _, c := range []*Cache{h.l1d, h.l1i, h.l2, h.l3} {
		if c == nil {
			continue
		}
		st, ok := c.Probe(lineAddr)
		if !ok {
			continue
		}
		held = true
		if invalidate {
			c.Invalidate(lineAddr)
		} else if st == Modified || st == Exclusive {
			c.SetState(lineAddr, Owned)
		}
		_ = st
	}
	return held
}
