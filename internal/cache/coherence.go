package cache

import "ptlsim/internal/stats"

// Controller is the multi-core coherence interface (the paper's §4.4:
// PTLsim ships an "instant visibility" model by default, with the
// infrastructure for MOESI-compatible models to be plugged in).
type Controller interface {
	// Register attaches a core's hierarchy to the controller.
	Register(coreID int, h *Hierarchy)
	// Fetch handles core's demand miss for lineAddr. It returns the
	// extra latency and whether the line was supplied by a remote
	// cache (cache-to-cache transfer).
	Fetch(core int, lineAddr uint64, write bool, now uint64) (latency uint64, remote bool)
	// Upgrade handles a Shared->Modified upgrade (invalidate sharers).
	Upgrade(core int, lineAddr uint64, now uint64) uint64
}

// InstantCoherence is the zero-latency "instant visibility" model:
// remote copies are invalidated or downgraded immediately and line
// movement costs nothing beyond the local hierarchy's latencies.
type InstantCoherence struct {
	cores map[int]*Hierarchy
	moves *stats.Counter
}

// NewInstantCoherence builds the instant-visibility controller.
func NewInstantCoherence(tree *stats.Tree) *InstantCoherence {
	return &InstantCoherence{
		cores: make(map[int]*Hierarchy),
		moves: tree.Counter("coherence.line_moves"),
	}
}

// Register implements Controller.
func (ic *InstantCoherence) Register(coreID int, h *Hierarchy) { ic.cores[coreID] = h }

// Fetch implements Controller.
func (ic *InstantCoherence) Fetch(core int, lineAddr uint64, write bool, _ uint64) (uint64, bool) {
	remote := false
	for id, h := range ic.cores {
		if id == core {
			continue
		}
		if h.snoop(lineAddr, write) {
			remote = true
			ic.moves.Inc()
		}
	}
	return 0, remote
}

// Upgrade implements Controller.
func (ic *InstantCoherence) Upgrade(core int, lineAddr uint64, _ uint64) uint64 {
	for id, h := range ic.cores {
		if id != core {
			h.snoop(lineAddr, true)
		}
	}
	return 0
}

// MOESICoherence models a snooping bus with cache-to-cache transfer
// and invalidation latencies — the future-work interconnect model the
// paper describes, usable for the coherence ablation benchmarks.
type MOESICoherence struct {
	cores map[int]*Hierarchy

	// BusLatency is charged per remote transaction; TransferLatency is
	// the additional cost of moving a dirty line between caches.
	BusLatency      uint64
	TransferLatency uint64

	moves       *stats.Counter
	invalidates *stats.Counter
	upgrades    *stats.Counter
}

// NewMOESICoherence builds the detailed controller.
func NewMOESICoherence(tree *stats.Tree, busLat, xferLat uint64) *MOESICoherence {
	return &MOESICoherence{
		cores:           make(map[int]*Hierarchy),
		BusLatency:      busLat,
		TransferLatency: xferLat,
		moves:           tree.Counter("coherence.line_moves"),
		invalidates:     tree.Counter("coherence.invalidations"),
		upgrades:        tree.Counter("coherence.upgrades"),
	}
}

// Register implements Controller.
func (mc *MOESICoherence) Register(coreID int, h *Hierarchy) { mc.cores[coreID] = h }

// Fetch implements Controller.
func (mc *MOESICoherence) Fetch(core int, lineAddr uint64, write bool, _ uint64) (uint64, bool) {
	lat := mc.BusLatency
	remote := false
	for id, h := range mc.cores {
		if id == core {
			continue
		}
		if h.snoop(lineAddr, write) {
			remote = true
			lat += mc.TransferLatency
			mc.moves.Inc()
			if write {
				mc.invalidates.Inc()
			}
		}
	}
	return lat, remote
}

// Upgrade implements Controller.
func (mc *MOESICoherence) Upgrade(core int, lineAddr uint64, _ uint64) uint64 {
	mc.upgrades.Inc()
	lat := mc.BusLatency
	for id, h := range mc.cores {
		if id != core && h.snoop(lineAddr, true) {
			mc.invalidates.Inc()
		}
	}
	return lat
}
