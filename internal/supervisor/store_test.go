package supervisor

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ptlsim/internal/snapshot"
)

// tinyImage hand-builds a minimal valid image (one VCPU, no pages) —
// enough to exercise the store without booting a machine.
func tinyImage(cycle uint64) *snapshot.Image {
	return &snapshot.Image{Cycle: cycle, VCPUs: []snapshot.VCPUImage{{}}}
}

func TestStoreRotationPrunes(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 1; i <= 5; i++ {
		p, err := s.Save(tinyImage(uint64(i * 100)))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	slots := s.Slots()
	if len(slots) != 2 {
		t.Fatalf("keep=2 retained %d slots: %v", len(slots), slots)
	}
	if slots[0] != paths[4] || slots[1] != paths[3] {
		t.Fatalf("slots %v, want newest two of %v", slots, paths)
	}
	img, slot, err := s.LoadLatest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if slot != paths[4] || img.Cycle != 500 {
		t.Fatalf("latest = %s cycle %d, want %s cycle 500", slot, img.Cycle, paths[4])
	}
}

func TestStoreLoadLatestFallsBackAcrossBadSlots(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 1; i <= 3; i++ {
		p, err := s.Save(tinyImage(uint64(i * 100)))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// Newest slot: payload corruption. Second newest: truncation.
	data, err := os.ReadFile(paths[2])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(paths[2], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(paths[1], 40); err != nil {
		t.Fatal(err)
	}

	var discarded []string
	img, slot, err := s.LoadLatest(func(p string, err error) {
		discarded = append(discarded, filepath.Base(p)+": "+err.Error())
	})
	if err != nil {
		t.Fatal(err)
	}
	if slot != paths[0] || img.Cycle != 100 {
		t.Fatalf("fell back to %s (cycle %d), want %s", slot, img.Cycle, paths[0])
	}
	if len(discarded) != 2 {
		t.Fatalf("discards: %v", discarded)
	}
	if !strings.Contains(discarded[0], "checksum") {
		t.Fatalf("newest slot should fail its checksum: %s", discarded[0])
	}
	if !strings.Contains(discarded[1], "truncated") {
		t.Fatalf("second slot should be truncated: %s", discarded[1])
	}
	// Rejected slots are removed so the rotation cannot resurrect them.
	if got := s.Slots(); len(got) != 1 || got[0] != paths[0] {
		t.Fatalf("bad slots should be deleted, have %v", got)
	}
}

func TestStoreLoadLatestEmpty(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadLatest(nil); err == nil {
		t.Fatal("empty store must fail LoadLatest")
	}
}

func TestStoreSequenceResumesAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s1.Save(tinyImage(1))
	if err != nil {
		t.Fatal(err)
	}
	// A second process opening the same rotation must continue, not
	// restart, the numbering (restarting would make an old slot "newest").
	s2, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s2.Save(tinyImage(2))
	if err != nil {
		t.Fatal(err)
	}
	if p2 <= p1 {
		t.Fatalf("sequence did not resume: %s then %s", p1, p2)
	}
	img, slot, err := s2.LoadLatest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if slot != p2 || img.Cycle != 2 {
		t.Fatalf("latest = %s cycle %d, want %s cycle 2", slot, img.Cycle, p2)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.now = func() time.Time { return time.Unix(1754000000, 0) }
	in := []Entry{
		{Event: EventRunStart, Attempt: 1, Cycle: 10},
		{Event: EventFailure, Attempt: 1, Cycle: 99, Kind: "panic", Message: "boom", Retryable: true},
		{Event: EventRestore, Attempt: 1, Cycle: 50, Slot: "ckpt-00000002.ckpt", BackoffMs: 100},
		{Event: EventDegradeOff, Attempt: 2, FromCycle: 50, ToCycle: 150, Insns: 1234},
	}
	for _, e := range in {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d entries, wrote %d", len(out), len(in))
	}
	for i := range in {
		in[i].Time = out[i].Time       // stamped on append
		in[i].Started = out[i].Started // stamped on append
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
		if out[i].Time == "" {
			t.Fatalf("entry %d missing timestamp", i)
		}
		if out[i].Started == "" {
			t.Fatalf("entry %d missing run start time", i)
		}
	}
}

// TestJournalWallClock: Append stamps every entry with the run's start
// time and the elapsed milliseconds since it, writer-set values win,
// and both the report renderer and FormatEntry surface the latency.
func TestJournalWallClock(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	clock := time.Unix(1754000000, 0)
	j.now = func() time.Time {
		now := clock
		clock = clock.Add(150 * time.Millisecond)
		return now
	}
	j.Append(Entry{Event: EventRunStart, Attempt: 1})
	j.Append(Entry{Event: EventComplete, Attempt: 1, Cycle: 1000, Insns: 900})
	j.Append(Entry{Event: EventJobDone, Job: "0042", ElapsedMs: 77,
		Started: "2026-08-06T00:00:00Z"}) // daemon-stamped job latency wins

	out, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ElapsedMs != 0 || out[1].ElapsedMs != 150 {
		t.Fatalf("elapsed stamps wrong: %d, %d", out[0].ElapsedMs, out[1].ElapsedMs)
	}
	if out[0].Started == "" || out[0].Started != out[1].Started {
		t.Fatalf("run start not stamped consistently: %q vs %q", out[0].Started, out[1].Started)
	}
	if out[2].ElapsedMs != 77 || out[2].Started != "2026-08-06T00:00:00Z" {
		t.Fatalf("writer-set wall-clock fields overwritten: %+v", out[2])
	}

	if line := FormatEntry(out[1]); !strings.Contains(line, "t=+150ms") {
		t.Errorf("FormatEntry missing elapsed: %s", line)
	}
	var report strings.Builder
	WriteReport(&report, out, 0)
	for _, want := range []string{"wall clock: 150ms", "job 0042 done in 77ms"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}

// TestJournalTornTail: a crashed writer leaves a half line; everything
// before it must still parse.
func TestJournalTornTail(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Append(Entry{Event: EventRunStart, Attempt: 1})
	j.Append(Entry{Event: EventCheckpoint, Attempt: 1, Cycle: 100})
	buf.WriteString(`{"event":"fail`) // torn mid-record
	out, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Event != EventCheckpoint {
		t.Fatalf("torn tail should preserve prior history: %+v", out)
	}
}

// TestJournalTornMiddleLine: a torn line in the *middle* of the log —
// a writer crashed mid-append and a restarted daemon appended past the
// wreckage — must not truncate the report at the tear. The entries on
// both sides survive and the skip is counted.
func TestJournalTornMiddleLine(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Append(Entry{Event: EventRunStart, Attempt: 1})
	buf.WriteString(`{"event":"checkpo` + "\n") // torn, newline landed
	buf.WriteString("\x00\x00garbage\n")        // binary wreckage
	j.Append(Entry{Event: EventComplete, Attempt: 1, Cycle: 500, Insns: 400})

	out, skipped, err := ReadJournalSkipping(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if len(out) != 2 || out[0].Event != EventRunStart || out[1].Event != EventComplete {
		t.Fatalf("entries around the tear lost: %+v", out)
	}
	// The rendered report still reaches the outcome past the tear.
	var report strings.Builder
	WriteReport(&report, out, 0)
	if !strings.Contains(report.String(), "completed at cycle 500") {
		t.Fatalf("report truncated at torn line:\n%s", report.String())
	}
}

// TestJournalNilSafe: a supervisor without a journal writer must not
// crash on logging.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Append(Entry{Event: EventComplete}); err != nil {
		t.Fatal(err)
	}
	if err := NewJournal(nil).Append(Entry{Event: EventComplete}); err != nil {
		t.Fatal(err)
	}
}
