package supervisor

import (
	"bytes"
	"context"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"ptlsim/internal/core"
	"ptlsim/internal/faultinject"
	"ptlsim/internal/guest"
	"ptlsim/internal/kern"
	"ptlsim/internal/simerr"
	"ptlsim/internal/snapshot"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
)

// The calibration below relies on the deterministic profile of the
// small rsync benchmark in sim mode (timer period 4G cycles): the
// active region commits ~109k instructions across ~250k cycles
// starting near cycle 12.00G, so a 50k-cycle checkpoint interval
// crosses several boundaries inside it.
const testInterval = 50_000

func benchConfig() core.Config {
	return core.Config{Core: core.DefaultConfig().Core, NativeCPI: 1, ThreadsPerCore: 1}
}

// buildBench boots the deterministic timer-quiet rsync benchmark in
// cycle-accurate mode.
func buildBench(t *testing.T) *core.Machine {
	t.Helper()
	cs := guest.CorpusSpec{NFiles: 1, FileSize: 1024, Seed: 5, ChangeFraction: 0.4}
	spec, err := guest.RsyncBenchmark(cs, 4_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tree := stats.NewTree()
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(img.Domain, tree, benchConfig())
	m.SwitchMode(core.ModeSim)
	return m
}

// fastConfig is the supervision config used by the tests: real
// rotation and journal, negligible backoff.
func fastConfig(t *testing.T, journal *bytes.Buffer) Config {
	t.Helper()
	return Config{
		Interval:    testInterval,
		Dir:         t.TempDir(),
		Keep:        3,
		MaxRetries:  8,
		BackoffBase: time.Microsecond,
		BackoffMax:  10 * time.Microsecond,
		Journal:     journal,
	}
}

// runSupervised builds a supervisor over m and runs it to completion,
// failing the test on error.
func runSupervised(t *testing.T, m *core.Machine, cfg Config) *Supervisor {
	t.Helper()
	s, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.M.Dom.Console(), "rsync ok") {
		t.Fatalf("benchmark did not finish: %q", s.M.Dom.Console())
	}
	return s
}

// assertBitIdentical checks the acceptance property: identical cycle
// count, instruction count, per-VCPU architectural state, console
// output, and statistics tree.
func assertBitIdentical(t *testing.T, clean, recovered *core.Machine) {
	t.Helper()
	if clean.Cycle != recovered.Cycle {
		t.Errorf("cycle count diverged: clean %d, recovered %d", clean.Cycle, recovered.Cycle)
	}
	if clean.Insns() != recovered.Insns() {
		t.Errorf("instruction count diverged: clean %d, recovered %d", clean.Insns(), recovered.Insns())
	}
	for i := range clean.Dom.VCPUs {
		if !vm.ArchEqual(clean.Dom.VCPUs[i], recovered.Dom.VCPUs[i]) {
			t.Errorf("vcpu %d arch state diverged: %s", i,
				vm.DiffArch(clean.Dom.VCPUs[i], recovered.Dom.VCPUs[i]))
		}
	}
	if clean.Dom.Console() != recovered.Dom.Console() {
		t.Error("console output diverged")
	}
	s1 := clean.Tree.Snapshot(clean.Cycle).Values
	s2 := recovered.Tree.Snapshot(recovered.Cycle).Values
	if !reflect.DeepEqual(s1, s2) {
		for k, v := range s1 {
			if s2[k] != v {
				t.Errorf("counter %s: clean %d, recovered %d", k, v, s2[k])
			}
		}
		t.Error("statistics diverged")
	}
}

// journalEvents extracts the event-name sequence from a journal buffer.
func journalEvents(t *testing.T, buf *bytes.Buffer) []Entry {
	t.Helper()
	entries, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func countEvents(entries []Entry, event string) int {
	n := 0
	for _, e := range entries {
		if e.Event == event {
			n++
		}
	}
	return n
}

func TestCleanRunCompletes(t *testing.T) {
	var journal bytes.Buffer
	s := runSupervised(t, buildBench(t), fastConfig(t, &journal))
	res := s.Result()
	if res.Attempts != 1 || res.Retries != 0 || res.DegradedWindows != 0 {
		t.Fatalf("clean run result: %+v", res)
	}
	entries := journalEvents(t, &journal)
	if countEvents(entries, EventComplete) != 1 {
		t.Fatalf("journal missing complete event: %+v", entries)
	}
	if countEvents(entries, EventCheckpoint) < 3 {
		t.Fatalf("expected several checkpoint events, journal: %+v", entries)
	}
	if got := s.Result().FinalSlot; got == "" {
		t.Fatal("no final checkpoint slot recorded")
	}
}

// TestTransientFaultRecoversBitIdentical is the headline acceptance
// test: a run that panics once on an injected ROB corruption must,
// under supervision, restore the previous rotation slot, replay, and
// finish bit-identical to an uninjected run under the same cadence.
func TestTransientFaultRecoversBitIdentical(t *testing.T) {
	var cleanJournal bytes.Buffer
	clean := runSupervised(t, buildBench(t), fastConfig(t, &cleanJournal))

	var journal bytes.Buffer
	m := buildBench(t)
	// One-shot pipeline corruption mid-active-region: the injector's
	// fired latch makes the fault transient across restore attempts.
	faultinject.New(faultinject.Spec{Kind: faultinject.ROBCorrupt, Insn: 30_000}).Attach(m)
	s := runSupervised(t, m, fastConfig(t, &journal))

	res := s.Result()
	if res.Retries < 1 || res.Attempts < 2 {
		t.Fatalf("fault did not trigger a retry: %+v", res)
	}
	if res.DegradedWindows != 0 {
		t.Fatalf("transient fault must not degrade: %+v", res)
	}
	entries := journalEvents(t, &journal)
	if countEvents(entries, EventFailure) < 1 || countEvents(entries, EventRestore) < 1 {
		t.Fatalf("journal missing failure/restore: %+v", entries)
	}
	for _, e := range entries {
		if e.Event == EventFailure && e.Kind != string(simerr.KindPanic) {
			t.Fatalf("failure kind = %q, want panic: %+v", e.Kind, e)
		}
	}
	assertBitIdentical(t, clean.M, s.M)
}

// TestCorruptedNewestSlotFallsBack kills the newest checkpoint on disk
// right before the crash: recovery must discard it (CRC) and restore
// the previous rotation slot, still converging bit-identical.
func TestCorruptedNewestSlotFallsBack(t *testing.T) {
	var cleanJournal bytes.Buffer
	clean := runSupervised(t, buildBench(t), fastConfig(t, &cleanJournal))

	var journal bytes.Buffer
	cfg := fastConfig(t, &journal)
	m := buildBench(t)
	fired := false
	m.SetStepHook(func(m *core.Machine) {
		if fired || m.Insns() < 60_000 {
			return
		}
		fired = true
		// Flip a payload byte of the newest slot, then crash. The next
		// read of that slot must fail its checksum.
		slots := (&Store{Dir: cfg.Dir, Keep: cfg.Keep}).Slots()
		if len(slots) < 2 {
			t.Errorf("want ≥2 slots before the fault, have %v", slots)
		}
		data, err := os.ReadFile(slots[0])
		if err != nil {
			t.Error(err)
		}
		data[len(data)-10] ^= 0xff
		if err := os.WriteFile(slots[0], data, 0o644); err != nil {
			t.Error(err)
		}
		panic("injected crash with corrupted newest checkpoint")
	})
	s := runSupervised(t, m, cfg)

	entries := journalEvents(t, &journal)
	if countEvents(entries, EventDiscardSlot) != 1 {
		t.Fatalf("journal should record exactly one discarded slot: %+v", entries)
	}
	for _, e := range entries {
		if e.Event == EventDiscardSlot && !strings.Contains(e.Message, "checksum") {
			t.Fatalf("discard reason should be the checksum: %+v", e)
		}
	}
	if countEvents(entries, EventRestore) < 1 {
		t.Fatalf("journal missing restore: %+v", entries)
	}
	assertBitIdentical(t, clean.M, s.M)
}

// TestPersistentFaultDegradesToSequentialCore: a fault bound to an
// instruction window re-fires on every replay, so retry alone cannot
// pass it. After DegradeAfter consecutive failures at the same restore
// point the supervisor must re-execute the window on the sequential
// core, journal the degraded interval, and finish the run with the
// same architectural outcome (timing fidelity is forfeited for the
// window, so cycle counts are not compared).
func TestPersistentFaultDegradesToSequentialCore(t *testing.T) {
	var cleanJournal bytes.Buffer
	clean := runSupervised(t, buildBench(t), fastConfig(t, &cleanJournal))

	var journal bytes.Buffer
	cfg := fastConfig(t, &journal)
	cfg.DegradeAfter = 2
	m := buildBench(t)
	faultinject.New(faultinject.Spec{
		Kind: faultinject.ROBCorrupt, Insn: 30_000, Until: 60_000,
	}).Attach(m)
	s := runSupervised(t, m, cfg)

	res := s.Result()
	if res.DegradedWindows < 1 {
		t.Fatalf("persistent fault should degrade: %+v", res)
	}
	entries := journalEvents(t, &journal)
	if countEvents(entries, EventDegradeOn) != res.DegradedWindows ||
		countEvents(entries, EventDegradeOff) != res.DegradedWindows {
		t.Fatalf("degrade events inconsistent with result %+v: %+v", res, entries)
	}
	for _, e := range entries {
		if e.Event == EventDegradeOff && e.ToCycle <= e.FromCycle {
			t.Fatalf("degraded window made no progress: %+v", e)
		}
	}
	// The sequential core is architecturally exact: instruction totals,
	// guest-visible output and final register state all match the clean
	// run even though the window's timing was not modeled.
	if clean.M.Insns() != s.M.Insns() {
		t.Errorf("instruction count diverged: clean %d, degraded %d", clean.M.Insns(), s.M.Insns())
	}
	if clean.M.Dom.Console() != s.M.Dom.Console() {
		t.Error("console output diverged")
	}
	for i := range clean.M.Dom.VCPUs {
		if !vm.ArchEqual(clean.M.Dom.VCPUs[i], s.M.Dom.VCPUs[i]) {
			t.Errorf("vcpu %d arch state diverged: %s", i,
				vm.DiffArch(clean.M.Dom.VCPUs[i], s.M.Dom.VCPUs[i]))
		}
	}
}

// TestRetryBudgetExhausted: with degradation disabled, an incurable
// fault must consume the bounded retry budget — with capped
// exponential backoff between attempts — and then surface the
// underlying failure.
func TestRetryBudgetExhausted(t *testing.T) {
	var journal bytes.Buffer
	cfg := fastConfig(t, &journal)
	cfg.MaxRetries = 3
	cfg.DegradeAfter = -1 // degradation off: retries are all we have
	cfg.BackoffBase = time.Microsecond
	cfg.BackoffMax = 3 * time.Microsecond
	var sleeps []time.Duration
	cfg.Sleep = func(d time.Duration) { sleeps = append(sleeps, d) }

	m := buildBench(t)
	m.SetStepHook(func(m *core.Machine) {
		if m.Mode() == core.ModeSim && m.Insns() >= 30_000 {
			panic("persistent fault")
		}
	})
	s, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retry budget 3 exhausted") {
		t.Fatalf("want retry-budget error, got %v", err)
	}
	if se, ok := simerr.As(err); !ok || se.Kind != simerr.KindPanic {
		t.Fatalf("exhaustion error should wrap the underlying SimError: %v", err)
	}
	if got := s.Result().Retries; got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
	// Backoff: 1µs, then doubled to 2µs, then capped at 3µs.
	want := []time.Duration{time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond}
	if !reflect.DeepEqual(sleeps, want) {
		t.Fatalf("backoff schedule = %v, want %v", sleeps, want)
	}
	entries := journalEvents(t, &journal)
	if countEvents(entries, EventGiveUp) != 1 {
		t.Fatalf("journal missing give_up: %+v", entries)
	}
}

// TestNonRetryableFailureIsFatal: a cycle-budget error must not be
// retried — it would replay to the same exhaustion.
func TestNonRetryableFailureIsFatal(t *testing.T) {
	var journal bytes.Buffer
	cfg := fastConfig(t, &journal)
	cfg.MaxCycles = 1_000_000 // exhausted during the first idle jump
	var sleeps []time.Duration
	cfg.Sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	s, err := New(buildBench(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(context.Background())
	se, ok := simerr.As(err)
	if !ok || se.Kind != simerr.KindCycleBudget {
		t.Fatalf("want cycle-budget SimError, got %v", err)
	}
	if len(sleeps) != 0 || s.Result().Retries != 0 {
		t.Fatalf("non-retryable failure must not retry: sleeps=%v result=%+v", sleeps, s.Result())
	}
}

// TestInterruptCheckpointsAndResumes: cancellation mid-run writes a
// final checkpoint and reports ErrInterrupted; a new supervisor over
// the restored image finishes the run.
func TestInterruptCheckpointsAndResumes(t *testing.T) {
	var journal bytes.Buffer
	cfg := fastConfig(t, &journal)
	ctx, cancel := context.WithCancel(context.Background())
	m := buildBench(t)
	m.SetStepHook(func(m *core.Machine) {
		if m.Insns() >= 40_000 {
			cancel()
		}
	})
	s, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(ctx)
	if !errors.Is(err, ErrInterrupted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrInterrupted wrapping context.Canceled, got %v", err)
	}
	entries := journalEvents(t, &journal)
	if countEvents(entries, EventInterrupt) != 1 {
		t.Fatalf("journal missing interrupt: %+v", entries)
	}
	interruptCycle := s.M.Cycle

	// Resume in a "fresh process": reload the rotation, restore, run.
	store, err := OpenStore(cfg.Dir, cfg.Keep)
	if err != nil {
		t.Fatal(err)
	}
	img, slot, err := store.LoadLatest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.Cycle != interruptCycle {
		t.Fatalf("final checkpoint at cycle %d, interrupted at %d (slot %s)",
			img.Cycle, interruptCycle, slot)
	}
	m2, err := snapshot.Restore(img, benchConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := fastConfig(t, &bytes.Buffer{})
	cfg2.Dir = cfg.Dir
	s2, err := New(m2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s2.M.Dom.Console(), "rsync ok") {
		t.Fatalf("resumed run did not finish: %q", s2.M.Dom.Console())
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	m := buildBench(t)
	if _, err := New(m, Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("zero interval must be rejected")
	}
	if _, err := New(m, Config{Interval: 1000}); err == nil {
		t.Fatal("missing dir must be rejected")
	}
}

// TestJournalSelfCheckRoundTrip: the self-check fields (commit index,
// rip, register diff, triage localization) must survive the journal's
// JSONL encode/decode cycle and surface in both render paths.
func TestJournalSelfCheckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Append(Entry{Event: EventFailure, Kind: string(simerr.KindDivergence),
		Cycle: 12_000_006_778, Commit: 3073, RIP: 0xffff800000100728,
		Diff: "r13: expected 0x1, got 0x4000000000000001; flags: expected [], got [cf]",
		Message: "store count mismatch"})
	j.Append(Entry{Event: EventTriage, Slot: "ckpt-002", DivergedAt: 2503,
		Diff:    "r13: expected 0x1, got 0x4000000000000001",
		Message: "first diverging instruction 2503 (9 probes, replayed 1200 insns vs 5006 naive)"})

	entries, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	fail, triage := entries[0], entries[1]
	if fail.Commit != 3073 || fail.RIP != 0xffff800000100728 || fail.Diff == "" {
		t.Fatalf("failure entry lost self-check fields: %+v", fail)
	}
	if triage.DivergedAt != 2503 || triage.Diff == "" {
		t.Fatalf("triage entry lost fields: %+v", triage)
	}

	for _, want := range []string{"commit=3073", "rip=0xffff800000100728", "diverged_at=2503"} {
		line := FormatEntry(fail) + FormatEntry(triage)
		if !strings.Contains(line, want) {
			t.Errorf("FormatEntry output missing %q:\n%s", want, line)
		}
	}

	var report strings.Builder
	WriteReport(&report, entries, 0)
	out := report.String()
	for _, want := range []string{
		"self-check divergence", "commit 3073", "rip 0xffff800000100728",
		"first diverging instruction 2503",
		"r13: expected 0x1, got 0x4000000000000001",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// A journal from a conformance fuzz campaign renders a fuzz section:
// finding counts by kind, shrink/promote lines, and the campaign
// summary as the outcome.
func TestReportFuzzSection(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Append(Entry{Event: EventFuzzStart, Message: "seqs=100 seed=0x2a"})
	j.Append(Entry{Event: EventFuzzFinding, Kind: "divergence", Insns: 412,
		Message: "store 0 mismatch"})
	j.Append(Entry{Event: EventFuzzShrink, Message: "14 -> 2 units in 31 probes"})
	j.Append(Entry{Event: EventFuzzPromote, Slot: "dsl-0000000000000007.json"})
	j.Append(Entry{Event: EventFuzzDone,
		Message: "100 seqs, 1 findings, 1 promoted"})
	entries, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	WriteReport(&report, entries, 0)
	out := report.String()
	for _, want := range []string{
		"fuzz: 1 finding(s) (divergence: 1), 1 shrunk, 1 promoted",
		"finding [divergence] at insn 412: store 0 mismatch",
		"shrink: 14 -> 2 units in 31 probes",
		"promoted dsl-0000000000000007.json",
		"outcome: fuzz campaign done: 100 seqs, 1 findings, 1 promoted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
