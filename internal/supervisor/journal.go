// The run journal is an append-only JSONL stream of everything the
// supervisor did to keep a run alive: checkpoints taken, failures
// observed, slots discarded as corrupt, restores, degraded windows,
// interrupts and the final outcome. One JSON object per line makes it
// greppable mid-run (tail -f) and trivially machine-readable afterwards
// (cmd/ptlmon -journal renders the attempt history from it).
package supervisor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Journal event names.
const (
	EventRunStart    = "run_start"    // supervisor starting an attempt
	EventCheckpoint  = "checkpoint"   // rotation slot written
	EventFailure     = "failure"      // run attempt failed
	EventDiscardSlot = "discard_slot" // checkpoint slot rejected (corrupt/unreadable)
	EventRestore     = "restore"      // machine restored from a slot
	EventDegradeOn   = "degrade_start" // window re-executing on the sequential core
	EventDegradeOff  = "degrade_end"  // degraded window finished, back to the OoO core
	EventInterrupt   = "interrupt"    // cancellation: final checkpoint written
	EventGiveUp      = "give_up"      // retry budget exhausted or failure not retryable
	EventComplete    = "complete"     // run finished normally
	EventTriage      = "triage"       // divergence search result after a self-check failure
)

// Entry is one journal record. Fields are omitted when irrelevant to
// the event.
type Entry struct {
	Time      string `json:"time,omitempty"` // wall clock, RFC3339Nano
	Event     string `json:"event"`
	Attempt   int    `json:"attempt,omitempty"`
	Cycle     uint64 `json:"cycle,omitempty"`
	Insns     int64  `json:"insns,omitempty"`
	Kind      string `json:"kind,omitempty"` // simerr failure kind
	Message   string `json:"message,omitempty"`
	Slot      string `json:"slot,omitempty"`       // checkpoint file involved
	BackoffMs int64  `json:"backoff_ms,omitempty"` // delay before the retry
	FromCycle uint64 `json:"from_cycle,omitempty"` // degraded window start
	ToCycle   uint64 `json:"to_cycle,omitempty"`   // degraded window end
	Retryable bool   `json:"retryable,omitempty"`

	// Self-check failure detail (failure events with a divergence or
	// invariant kind) and triage results.
	Commit     int64  `json:"commit,omitempty"`      // committed-instruction index at detection
	RIP        uint64 `json:"rip,omitempty"`         // guest RIP at detection
	Diff       string `json:"diff,omitempty"`        // architectural register diff
	DivergedAt int64  `json:"diverged_at,omitempty"` // triage: first diverging instruction count
}

// Journal appends entries to a writer as JSONL. A nil Journal (or one
// over a nil writer) discards everything, so callers never guard their
// logging.
type Journal struct {
	w   io.Writer
	now func() time.Time
}

// NewJournal writes entries to w (nil w = discard). Timestamps come
// from time.Now.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, now: time.Now}
}

// Append writes one entry, stamping it with the current time. Journal
// write failures are reported but are deliberately non-fatal to the
// supervised run: losing history must not lose the run itself.
func (j *Journal) Append(e Entry) error {
	if j == nil || j.w == nil {
		return nil
	}
	e.Time = j.now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("supervisor: journal encode: %w", err)
	}
	_, err = j.w.Write(append(data, '\n'))
	if err != nil {
		return fmt.Errorf("supervisor: journal write: %w", err)
	}
	if f, ok := j.w.(*os.File); ok {
		f.Sync()
	}
	return nil
}

// ReadJournal parses a JSONL journal stream. Unparseable lines (e.g. a
// torn final line from a crashed process) terminate the scan without an
// error: everything before them is history worth reporting.
func ReadJournal(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			break
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
