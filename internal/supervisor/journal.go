// The run journal is an append-only JSONL stream of everything the
// supervisor did to keep a run alive: checkpoints taken, failures
// observed, slots discarded as corrupt, restores, degraded windows,
// interrupts and the final outcome. One JSON object per line makes it
// greppable mid-run (tail -f) and trivially machine-readable afterwards
// (cmd/ptlmon -journal renders the attempt history from it).
package supervisor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Journal event names.
const (
	EventRunStart    = "run_start"     // supervisor starting an attempt
	EventCheckpoint  = "checkpoint"    // rotation slot written
	EventFailure     = "failure"       // run attempt failed
	EventDiscardSlot = "discard_slot"  // checkpoint slot rejected (corrupt/unreadable)
	EventRestore     = "restore"       // machine restored from a slot
	EventDegradeOn   = "degrade_start" // window re-executing on the sequential core
	EventDegradeOff  = "degrade_end"   // degraded window finished, back to the OoO core
	EventInterrupt   = "interrupt"     // cancellation: final checkpoint written
	EventGiveUp      = "give_up"       // retry budget exhausted or failure not retryable
	EventComplete    = "complete"      // run finished normally
	EventTriage      = "triage"        // divergence search result after a self-check failure
)

// Service journal event names: the job daemon (internal/jobd) appends
// these to the same JSONL stream format, so ptlmon -journal renders a
// ptlserve run journal with the same machinery as a single supervised
// run. Job-scoped events carry the job ID in Entry.Job.
const (
	EventJobSubmit   = "job_submit"   // job admitted into the queue
	EventJobStart    = "job_start"    // worker process spawned for a job attempt
	EventWorkerExit  = "worker_exit"  // worker died abnormally (kind = classification)
	EventJobRetry    = "job_retry"    // job re-admitted from its rotated checkpoint dir
	EventJobAdopt    = "job_adopt"    // restarted daemon re-attached a live orphan worker
	EventRecover     = "recover"      // daemon start replayed the durable job store
	EventJobDone     = "job_done"     // job completed (elapsed_ms = end-to-end latency)
	EventJobFail     = "job_fail"     // job failed terminally
	EventReject      = "reject"       // submission rejected (kind = queue-full|draining|breaker)
	EventBreakerOpen = "breaker_open" // circuit breaker opened for a workload config
	EventDrain       = "drain"        // daemon drain began / completed
)

// Fleet campaign event names: the multi-node dispatcher
// (internal/fleet) journals a whole campaign — grid expansion, lease
// grants, work stealing, fencing rejections, node health transitions
// and per-cell verdicts — into the same stream, so `ptlmon -journal`
// renders a 1,000-job sweep with the same machinery as a single run.
// Cell-scoped events carry the cell ID in Entry.Job and the lease
// epoch in Entry.Attempt; node-scoped events name the node in
// Entry.Message.
const (
	EventCampaignStart = "campaign_start" // dispatch began (message = grid summary)
	EventLeaseGrant    = "lease_grant"    // cell leased to a node (attempt = epoch)
	EventLeaseSteal    = "lease_steal"    // lease expired/node died; cell reassigned
	EventFenceReject   = "fence_reject"   // stale epoch's verdict rejected at collection
	EventNodeDown      = "node_down"      // node health-checked out of the fleet
	EventNodeUp        = "node_up"        // node re-admitted after recovery
	EventCellDone      = "cell_done"      // cell verdict recorded (cycle/insns/fnv)
	EventCellFail      = "cell_fail"      // cell terminally failed (kind + message)
	EventCampaignDone  = "campaign_done"  // dispatch finished (message = summary)
)

// Conformance-fuzzing event names: campaigns (internal/conformance)
// journal their lifecycle into the same stream, so a fuzz run — local,
// or dispatched as a ptlserve job — is triaged with the same tooling.
const (
	EventFuzzStart   = "fuzz_start"   // campaign began (message = parameters)
	EventFuzzFinding = "fuzz_finding" // engines disagreed on a sequence
	EventFuzzShrink  = "fuzz_shrink"  // finding delta-minimized
	EventFuzzPromote = "fuzz_promote" // reproducer written to the corpus (slot = path)
	EventFuzzDone    = "fuzz_done"    // campaign finished (message = summary)
)

// Entry is one journal record. Fields are omitted when irrelevant to
// the event.
type Entry struct {
	Time string `json:"time,omitempty"` // wall clock, RFC3339Nano
	// Started is the wall-clock time the surrounding run (or, for
	// service entries, the job attempt) started; ElapsedMs is the
	// wall-clock milliseconds since then. Append stamps both from the
	// journal's own start when the writer leaves them zero, so every
	// journal carries enough to compute per-run and per-job latency.
	Started   string `json:"started,omitempty"`
	ElapsedMs int64  `json:"elapsed_ms,omitempty"`
	Event     string `json:"event"`
	Attempt   int    `json:"attempt,omitempty"`
	Job       string `json:"job,omitempty"` // service: job ID the entry belongs to
	PID       int    `json:"pid,omitempty"` // service: worker process ID
	// Service multi-tenant admission detail: the job's tenant account
	// and how long it waited in the admission queue before its first
	// worker attempt started.
	Tenant      string `json:"tenant,omitempty"`
	QueueWaitMs int64  `json:"queue_wait_ms,omitempty"`
	Cycle       uint64 `json:"cycle,omitempty"`
	Insns       int64  `json:"insns,omitempty"`
	Kind        string `json:"kind,omitempty"` // simerr failure kind
	Message     string `json:"message,omitempty"`
	Slot        string `json:"slot,omitempty"`       // checkpoint file involved
	BackoffMs   int64  `json:"backoff_ms,omitempty"` // delay before the retry
	FromCycle   uint64 `json:"from_cycle,omitempty"` // degraded window start
	ToCycle     uint64 `json:"to_cycle,omitempty"`   // degraded window end
	Retryable   bool   `json:"retryable,omitempty"`

	// Self-check failure detail (failure events with a divergence or
	// invariant kind) and triage results.
	Commit     int64  `json:"commit,omitempty"`      // committed-instruction index at detection
	RIP        uint64 `json:"rip,omitempty"`         // guest RIP at detection
	Diff       string `json:"diff,omitempty"`        // architectural register diff
	DivergedAt int64  `json:"diverged_at,omitempty"` // triage: first diverging instruction count
	// EventTail is the rendered pipeline event log tail captured with
	// the failure (present only when a run had -evlog enabled).
	EventTail string `json:"event_tail,omitempty"`
}

// Journal appends entries to a writer as JSONL. A nil Journal (or one
// over a nil writer) discards everything, so callers never guard their
// logging. Appends are serialized: the job daemon journals from many
// goroutines into one stream.
type Journal struct {
	w     io.Writer
	now   func() time.Time
	mu    sync.Mutex
	start time.Time // wall clock of the first Append (run start)
}

// NewJournal writes entries to w (nil w = discard). Timestamps come
// from time.Now.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, now: time.Now}
}

// Append writes one entry, stamping it with the current time plus the
// run-relative wall-clock fields (Started = first-append time,
// ElapsedMs = milliseconds since then) unless the writer set them
// itself — the job daemon stamps job-relative values. Journal write
// failures are reported but are deliberately non-fatal to the
// supervised run: losing history must not lose the run itself.
func (j *Journal) Append(e Entry) error {
	if j == nil || j.w == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	now := j.now()
	if j.start.IsZero() {
		j.start = now
	}
	e.Time = now.UTC().Format(time.RFC3339Nano)
	if e.Started == "" {
		e.Started = j.start.UTC().Format(time.RFC3339Nano)
	}
	if e.ElapsedMs == 0 {
		e.ElapsedMs = now.Sub(j.start).Milliseconds()
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("supervisor: journal encode: %w", err)
	}
	_, err = j.w.Write(append(data, '\n'))
	if err != nil {
		return fmt.Errorf("supervisor: journal write: %w", err)
	}
	if f, ok := j.w.(*os.File); ok {
		f.Sync()
	}
	return nil
}

// ReadJournal parses a JSONL journal stream, silently tolerating
// unparseable lines. Callers that want to surface how many lines were
// skipped (ptlmon/ptlstats print a warning) use ReadJournalSkipping.
func ReadJournal(r io.Reader) ([]Entry, error) {
	out, _, err := ReadJournalSkipping(r)
	return out, err
}

// ReadJournalSkipping parses a JSONL journal stream. Unparseable lines
// are exactly what crashes leave behind — a torn final line from a
// process killed mid-Append, or a torn middle line when a restarted
// daemon appends past it — so they are skipped (and counted in the
// second return) instead of failing or truncating the whole report:
// everything else is history worth reporting.
func ReadJournalSkipping(r io.Reader) ([]Entry, int, error) {
	var out []Entry
	skipped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			skipped++
			continue
		}
		out = append(out, e)
	}
	return out, skipped, sc.Err()
}
