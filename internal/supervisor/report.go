// Human-readable rendering of the run journal, shared by cmd/ptlmon
// -journal and cmd/ptlstats -journal so both tools print the same
// summary of a supervised run: attempt history, failures by kind,
// restore and rotation-discard counts, degraded windows, self-check
// verdicts (divergence/invariant failures with the commit index, RIP
// and register diff that pinpoint them), triage results, and the run
// outcome.
package supervisor

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteReport summarizes parsed journal entries to w. tail > 0
// additionally prints the last tail raw events.
func WriteReport(w io.Writer, entries []Entry, tail int) {
	if len(entries) == 0 {
		fmt.Fprintln(w, "run journal: empty")
		return
	}
	var (
		attempts, checkpoints, retryable int
		restores, discards, degraded     int
		degradedCycles                   uint64
		lastCkpt                         Entry
		failures                         = map[string]int{}
		selfChecks                       []Entry
		triages                          []Entry
		outcome                          = "in progress (or writer crashed hard)"

		// Service (job daemon) accounting.
		jobsSubmitted, jobsDone, jobsFailed int
		jobRetries, workerExits, rejects    int
		breakerOpens, adoptions, recoveries int
		jobLines                            []string
		elapsedMs                           int64

		// Fleet campaign accounting. Per-cell done events are counted,
		// not echoed — a 1,000-job sweep must render as a summary, so
		// only failures and robustness events (steals, fences, node
		// transitions) get their own lines.
		campaignName                     string
		cellsDone, cellsFailed           int
		leaseGrants, leaseSteals, fences int
		nodesDown, nodesUp               int
		fleetLines                       []string

		// Conformance fuzzing accounting.
		fuzzStarted                bool
		fuzzFindings, fuzzPromoted int
		fuzzShrinks                int
		fuzzFindingKinds           = map[string]int{}
		fuzzLines                  []string
	)
	for _, e := range entries {
		if e.Attempt > attempts {
			attempts = e.Attempt
		}
		if e.ElapsedMs > elapsedMs {
			elapsedMs = e.ElapsedMs
		}
		switch e.Event {
		case EventCheckpoint:
			checkpoints++
			lastCkpt = e
		case EventFailure:
			kind := e.Kind
			if kind == "" {
				kind = "error"
			}
			failures[kind]++
			if e.Retryable {
				retryable++
			}
			if kind == "divergence" || kind == "invariant" {
				selfChecks = append(selfChecks, e)
			}
		case EventRestore:
			restores++
		case EventDiscardSlot:
			discards++
		case EventDegradeOff:
			degraded++
			degradedCycles += e.ToCycle - e.FromCycle
		case EventTriage:
			triages = append(triages, e)
		case EventComplete:
			outcome = fmt.Sprintf("completed at cycle %d (%d instructions)", e.Cycle, e.Insns)
		case EventInterrupt:
			outcome = fmt.Sprintf("interrupted at cycle %d; final checkpoint %s", e.Cycle, e.Slot)
		case EventGiveUp:
			outcome = "gave up: " + e.Message

		case EventJobSubmit:
			jobsSubmitted++
		case EventWorkerExit:
			workerExits++
			kind := e.Kind
			if kind == "" {
				kind = "error"
			}
			failures[kind]++
			if e.Retryable {
				retryable++
			}
		case EventJobRetry:
			jobRetries++
		case EventJobAdopt:
			adoptions++
		case EventRecover:
			recoveries++
		case EventJobDone:
			jobsDone++
			jobLines = append(jobLines, fmt.Sprintf("job %s%s done in %dms%s (cycle %d, %d instructions)",
				e.Job, tenantTag(e.Tenant), e.ElapsedMs, queueWaitTag(e.QueueWaitMs), e.Cycle, e.Insns))
		case EventJobFail:
			jobsFailed++
			jobLines = append(jobLines, fmt.Sprintf("job %s%s failed after %dms%s (%s): %s",
				e.Job, tenantTag(e.Tenant), e.ElapsedMs, queueWaitTag(e.QueueWaitMs), e.Kind, e.Message))
		case EventReject:
			rejects++
		case EventBreakerOpen:
			breakerOpens++
		case EventDrain:
			if e.Message == "complete" {
				outcome = "service drained cleanly"
			}

		case EventCampaignStart:
			campaignName = e.Message
		case EventLeaseGrant:
			leaseGrants++
		case EventLeaseSteal:
			leaseSteals++
			fleetLines = append(fleetLines, fmt.Sprintf("steal: cell %s epoch %d: %s", e.Job, e.Attempt, e.Message))
		case EventFenceReject:
			fences++
			fleetLines = append(fleetLines, fmt.Sprintf("fenced: cell %s stale epoch %d: %s", e.Job, e.Attempt, e.Message))
		case EventNodeDown:
			nodesDown++
			fleetLines = append(fleetLines, "node down: "+e.Message)
		case EventNodeUp:
			nodesUp++
			fleetLines = append(fleetLines, "node up: "+e.Message)
		case EventCellDone:
			cellsDone++
		case EventCellFail:
			cellsFailed++
			kind := e.Kind
			if kind == "" {
				kind = "error"
			}
			failures[kind]++
			fleetLines = append(fleetLines, fmt.Sprintf("cell %s failed (%s): %s", e.Job, kind, e.Message))
		case EventCampaignDone:
			outcome = "campaign done: " + e.Message

		case EventFuzzStart:
			fuzzStarted = true
		case EventFuzzFinding:
			fuzzFindings++
			kind := e.Kind
			if kind == "" {
				kind = "error"
			}
			fuzzFindingKinds[kind]++
			fuzzLines = append(fuzzLines, fmt.Sprintf("finding [%s] at insn %d: %s", kind, e.Insns, e.Message))
		case EventFuzzShrink:
			fuzzShrinks++
			fuzzLines = append(fuzzLines, "shrink: "+e.Message)
		case EventFuzzPromote:
			fuzzPromoted++
			fuzzLines = append(fuzzLines, "promoted "+e.Slot)
		case EventFuzzDone:
			outcome = "fuzz campaign done: " + e.Message
		}
	}

	fmt.Fprintf(w, "run journal: %d events, %d attempt(s)\n", len(entries), attempts)
	fmt.Fprintf(w, "  checkpoints: %d", checkpoints)
	if checkpoints > 0 {
		fmt.Fprintf(w, " (last %s at cycle %d)", lastCkpt.Slot, lastCkpt.Cycle)
	}
	fmt.Fprintln(w)
	if len(failures) > 0 {
		kinds := make([]string, 0, len(failures))
		for k := range failures {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		total := 0
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s: %d", k, failures[k]))
			total += failures[k]
		}
		fmt.Fprintf(w, "  failures: %d (%s), %d retryable\n", total, strings.Join(parts, ", "), retryable)
	}
	if restores > 0 || discards > 0 {
		fmt.Fprintf(w, "  restores: %d, discarded slots: %d\n", restores, discards)
	}
	if degraded > 0 {
		fmt.Fprintf(w, "  degraded windows: %d (%d cycles on the sequential core)\n", degraded, degradedCycles)
	}
	if jobsSubmitted > 0 || jobsDone > 0 || jobsFailed > 0 || rejects > 0 {
		fmt.Fprintf(w, "  service: %d submitted, %d done, %d failed, %d worker retries, %d rejected",
			jobsSubmitted, jobsDone, jobsFailed, jobRetries, rejects)
		if workerExits > 0 {
			fmt.Fprintf(w, ", %d abnormal worker exits", workerExits)
		}
		if breakerOpens > 0 {
			fmt.Fprintf(w, ", breaker opened %d time(s)", breakerOpens)
		}
		if recoveries > 0 {
			fmt.Fprintf(w, ", %d store recovery(ies)", recoveries)
		}
		if adoptions > 0 {
			fmt.Fprintf(w, ", %d orphan worker(s) adopted", adoptions)
		}
		fmt.Fprintln(w)
		for _, line := range jobLines {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
	if campaignName != "" || cellsDone > 0 || cellsFailed > 0 {
		fmt.Fprintf(w, "  fleet: %s: %d cell(s) done, %d failed; %d lease(s), %d stolen, %d fenced",
			orUnnamed(campaignName), cellsDone, cellsFailed, leaseGrants, leaseSteals, fences)
		if nodesDown > 0 || nodesUp > 0 {
			fmt.Fprintf(w, "; nodes: %d down, %d recovered", nodesDown, nodesUp)
		}
		fmt.Fprintln(w)
		// Cap the detail lines: the summary above is the report; the
		// lines exist to triage a handful of robustness events, not to
		// replay a thousand-cell campaign.
		const maxFleetLines = 40
		shown := fleetLines
		if len(shown) > maxFleetLines {
			fmt.Fprintf(w, "    (%d fleet event(s), showing last %d)\n", len(shown), maxFleetLines)
			shown = shown[len(shown)-maxFleetLines:]
		}
		for _, line := range shown {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
	if fuzzStarted {
		fmt.Fprintf(w, "  fuzz: %d finding(s)", fuzzFindings)
		if len(fuzzFindingKinds) > 0 {
			kinds := make([]string, 0, len(fuzzFindingKinds))
			for k := range fuzzFindingKinds {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			parts := make([]string, 0, len(kinds))
			for _, k := range kinds {
				parts = append(parts, fmt.Sprintf("%s: %d", k, fuzzFindingKinds[k]))
			}
			fmt.Fprintf(w, " (%s)", strings.Join(parts, ", "))
		}
		fmt.Fprintf(w, ", %d shrunk, %d promoted\n", fuzzShrinks, fuzzPromoted)
		for _, line := range fuzzLines {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
	for _, e := range selfChecks {
		fmt.Fprintf(w, "  self-check %s: commit %d, rip %#x, cycle %d\n", e.Kind, e.Commit, e.RIP, e.Cycle)
		writeDetail(w, "message", e.Message)
		writeDetail(w, "arch diff", e.Diff)
	}
	for _, e := range triages {
		if e.DivergedAt > 0 {
			fmt.Fprintf(w, "  triage: first diverging instruction %d (seeded from %s)\n", e.DivergedAt, e.Slot)
		} else {
			fmt.Fprintf(w, "  triage:\n")
		}
		writeDetail(w, "message", e.Message)
		writeDetail(w, "arch diff", e.Diff)
	}
	if elapsedMs > 0 {
		fmt.Fprintf(w, "  wall clock: %dms\n", elapsedMs)
	}
	fmt.Fprintf(w, "  outcome: %s\n", outcome)

	if tail > 0 {
		start := len(entries) - tail
		if start < 0 {
			start = 0
		}
		fmt.Fprintf(w, "last %d event(s):\n", len(entries)-start)
		for _, e := range entries[start:] {
			fmt.Fprintf(w, "  %s\n", FormatEntry(e))
		}
	}
}

// tenantTag renders a job line's tenant suffix (empty for entries
// predating multi-tenant admission or for the implicit default).
func tenantTag(tenant string) string {
	if tenant == "" || tenant == "default" {
		return ""
	}
	return " [" + tenant + "]"
}

// queueWaitTag renders how long a job sat in the admission queue.
func queueWaitTag(ms int64) string {
	if ms <= 0 {
		return ""
	}
	return fmt.Sprintf(" (queued %dms)", ms)
}

// orUnnamed substitutes a placeholder for an empty campaign name.
func orUnnamed(name string) string {
	if name == "" {
		return "campaign"
	}
	return name
}

// writeDetail prints a labelled, possibly multi-line value indented
// under its parent report line; "; "-joined diffs get one line each.
func writeDetail(w io.Writer, label, val string) {
	if val == "" {
		return
	}
	fmt.Fprintf(w, "    %s:\n", label)
	for _, part := range strings.Split(val, "; ") {
		fmt.Fprintf(w, "      %s\n", part)
	}
}

// FormatEntry renders one journal entry as a single line for tails and
// tests.
func FormatEntry(e Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s attempt=%d", e.Event, e.Attempt)
	if e.Job != "" {
		fmt.Fprintf(&b, " job=%s", e.Job)
	}
	if e.PID > 0 {
		fmt.Fprintf(&b, " pid=%d", e.PID)
	}
	if e.Cycle > 0 {
		fmt.Fprintf(&b, " cycle=%d", e.Cycle)
	}
	if e.Insns > 0 {
		fmt.Fprintf(&b, " insns=%d", e.Insns)
	}
	if e.Commit > 0 {
		fmt.Fprintf(&b, " commit=%d", e.Commit)
	}
	if e.RIP > 0 {
		fmt.Fprintf(&b, " rip=%#x", e.RIP)
	}
	if e.DivergedAt > 0 {
		fmt.Fprintf(&b, " diverged_at=%d", e.DivergedAt)
	}
	if e.Slot != "" {
		fmt.Fprintf(&b, " slot=%s", e.Slot)
	}
	if e.Kind != "" {
		fmt.Fprintf(&b, " kind=%s", e.Kind)
	}
	if e.Tenant != "" {
		fmt.Fprintf(&b, " tenant=%s", e.Tenant)
	}
	if e.QueueWaitMs > 0 {
		fmt.Fprintf(&b, " queue_wait=%dms", e.QueueWaitMs)
	}
	if e.BackoffMs > 0 {
		fmt.Fprintf(&b, " backoff=%dms", e.BackoffMs)
	}
	if e.ToCycle > 0 {
		fmt.Fprintf(&b, " window=[%d,%d)", e.FromCycle, e.ToCycle)
	}
	if e.ElapsedMs > 0 {
		fmt.Fprintf(&b, " t=+%dms", e.ElapsedMs)
	}
	if e.Message != "" {
		fmt.Fprintf(&b, " msg=%q", e.Message)
	}
	return b.String()
}
