package supervisor

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ptlsim/internal/snapshot"
)

// Store is the keep-N checkpoint rotation on disk. Slots are named
// ckpt-<seq>.ckpt with a monotonically increasing sequence number;
// Save writes the next slot (atomically, via snapshot.Image.WriteFile)
// and prunes the oldest beyond the retention depth. Recovery walks the
// slots newest-first and takes the first image that passes the on-disk
// integrity checks, so a corrupted or truncated newest slot degrades to
// the previous one instead of ending the run.
type Store struct {
	Dir string
	// Keep is the number of slots retained (minimum 1).
	Keep int

	seq int // last sequence number written or found on disk
}

const (
	slotPrefix = "ckpt-"
	slotSuffix = ".ckpt"
)

// OpenStore creates (if needed) the checkpoint directory and resumes
// the sequence numbering from any slots already present — a restarted
// supervisor process keeps rotating where the dead one stopped.
func OpenStore(dir string, keep int) (*Store, error) {
	if keep < 1 {
		keep = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("supervisor: checkpoint dir: %w", err)
	}
	s := &Store{Dir: dir, Keep: keep}
	for _, slot := range s.Slots() {
		if n, ok := slotSeq(slot); ok && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

// slotSeq extracts the sequence number from a slot path.
func slotSeq(path string) (int, bool) {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, slotPrefix) || !strings.HasSuffix(name, slotSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, slotPrefix), slotSuffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Slots returns the rotation's slot paths, newest (highest sequence)
// first.
func (s *Store) Slots() []string {
	matches, _ := filepath.Glob(filepath.Join(s.Dir, slotPrefix+"*"+slotSuffix))
	var out []string
	for _, m := range matches {
		if _, ok := slotSeq(m); ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := slotSeq(out[i])
		b, _ := slotSeq(out[j])
		return a > b
	})
	return out
}

// Save writes img into the next rotation slot and prunes slots beyond
// the retention depth, returning the new slot's path.
func (s *Store) Save(img *snapshot.Image) (string, error) {
	s.seq++
	path := filepath.Join(s.Dir, fmt.Sprintf("%s%08d%s", slotPrefix, s.seq, slotSuffix))
	if err := img.WriteFile(path); err != nil {
		s.seq--
		return "", err
	}
	for i, slot := range s.Slots() {
		if i >= s.Keep {
			os.Remove(slot)
		}
	}
	return path, nil
}

// LoadLatest returns the newest image that reads back intact, walking
// older slots when newer ones are corrupt, truncated, or unreadable.
// Each rejected slot is reported through discard (if non-nil) and then
// removed so the rotation never resurrects it. The error return is
// non-nil only when no slot at all yields a usable image.
func (s *Store) LoadLatest(discard func(slot string, err error)) (*snapshot.Image, string, error) {
	slots := s.Slots()
	if len(slots) == 0 {
		return nil, "", fmt.Errorf("supervisor: no checkpoints in %s", s.Dir)
	}
	var firstErr error
	for _, slot := range slots {
		img, err := snapshot.ReadFile(slot)
		if err == nil {
			return img, slot, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if discard != nil {
			discard(slot, err)
		}
		os.Remove(slot)
	}
	return nil, "", fmt.Errorf("supervisor: no usable checkpoint in %s (newest: %w)", s.Dir, firstErr)
}
