// Package supervisor is the resilient run manager: it wraps
// core.Machine execution in an attempt loop built from PR 1's
// guardrail primitives so a multi-billion-cycle run survives the
// failures that would otherwise kill it.
//
// The loop drives the machine through the checkpointing Runner,
// persisting every boundary image into a keep-N rotation of
// integrity-checked files (internal/snapshot's atomic, CRC-verified
// format). When an attempt dies with a retryable SimError — a commit
// livelock or a recovered pipeline panic — the supervisor backs off
// exponentially, restores the newest intact rotation slot (falling
// back across corrupted ones), and retries within a bounded budget.
// When the out-of-order core keeps faulting inside the same window,
// the supervisor degrades gracefully: it re-executes just that window
// on the sequential reference core to make forward progress, records
// the degraded interval in the run journal, and switches back to the
// cycle-accurate core at the next boundary. Context cancellation
// (SIGINT/SIGTERM in cmd/ptlsim) lands as a final checkpoint plus a
// clean exit instead of lost work.
//
// Because a transient fault is cured by replaying from the previous
// boundary image — the exact image the uninterrupted run swapped in at
// that boundary — a recovered run finishes with bit-identical
// architectural state, cycle count, console output and statistics to a
// clean run under the same supervision cadence (the determinism-by-
// construction property of snapshot.Runner, extended across failures).
package supervisor

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"ptlsim/internal/core"
	"ptlsim/internal/cosim"
	"ptlsim/internal/selfcheck"
	"ptlsim/internal/simerr"
	"ptlsim/internal/snapshot"
)

// Config configures a Supervisor.
type Config struct {
	// Interval is the checkpoint cadence in cycles (required). It is
	// also the width of a degraded window.
	Interval uint64
	// MaxCycles bounds the whole run (0 = unlimited); exhausting it is
	// a fatal cycle-budget SimError, never retried.
	MaxCycles uint64
	// Dir is the checkpoint rotation directory (required).
	Dir string
	// Keep is the rotation depth (default 3).
	Keep int
	// MaxRetries is the total restore-and-retry budget for the run
	// (default 5). Degraded windows do not consume it.
	MaxRetries int
	// DegradeAfter is how many consecutive failed attempts from the
	// same restore point trigger sequential-core degradation for that
	// window (default 2; negative disables degradation entirely).
	DegradeAfter int
	// BackoffBase is the delay before the first retry at a restore
	// point; it doubles per consecutive failure there, capped at
	// BackoffMax. Defaults: 100ms base, 10s cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Journal receives the JSONL run journal (nil = no journal).
	Journal io.Writer
	// Triage enables the automatic divergence search when an attempt
	// dies with a self-check failure (a divergence or invariant
	// SimError): the newest intact rotation slot seeds a checkpointed
	// binary search (cosim.FirstDivergenceFromImage) that isolates the
	// first committed instruction at which the cycle-accurate core's
	// architectural state departs from the reference engine, and the
	// result lands in the journal as a triage entry. The search runs
	// with self-checking instrumentation stripped — re-raising the
	// oracle's own error inside a probe would abort the search that is
	// trying to localize it.
	Triage bool
	// TriageInterval is the checkpoint spacing (in committed
	// instructions) of the triage search (default 64).
	TriageInterval int64
	// Sleep is the backoff sleep (test seam; default time.Sleep).
	Sleep func(time.Duration)
}

func (cfg *Config) applyDefaults() {
	if cfg.Keep <= 0 {
		cfg.Keep = 3
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.DegradeAfter < 0 {
		cfg.DegradeAfter = 0
	} else if cfg.DegradeAfter == 0 {
		cfg.DegradeAfter = 2
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 10 * time.Second
	}
	if cfg.TriageInterval <= 0 {
		cfg.TriageInterval = 64
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
}

// Result summarizes a supervised run.
type Result struct {
	// Attempts is the number of run attempts started (≥ 1).
	Attempts int
	// Retries is how much of the retry budget was consumed.
	Retries int
	// DegradedWindows counts windows re-executed on the sequential
	// reference core.
	DegradedWindows int
	// FinalSlot is the last checkpoint slot written.
	FinalSlot string
}

// ErrInterrupted wraps context cancellation after the final checkpoint
// was written; errors.Is(err, ErrInterrupted) distinguishes a clean
// checkpoint-and-exit from a real failure.
var ErrInterrupted = errors.New("supervisor: run interrupted")

// Supervisor manages one machine's run.
type Supervisor struct {
	// M is the current machine instance; after Run returns it is the
	// instance that finished (or was last checkpointed).
	M *core.Machine

	cfg     Config
	store   *Store
	journal *Journal
	res     Result

	// lastRestore/failsAtPoint track consecutive failures from the
	// same restore point — the degradation trigger. Crossing any new
	// checkpoint boundary resets the streak (forward progress).
	lastRestore  uint64
	failsAtPoint int
}

// New builds a supervisor around a configured machine (mode switched,
// instrumentation attached). The checkpoint directory is created
// immediately so setup errors surface before any cycles are spent.
func New(m *core.Machine, cfg Config) (*Supervisor, error) {
	if cfg.Interval == 0 {
		return nil, fmt.Errorf("supervisor: Interval must be > 0")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("supervisor: Dir must be set")
	}
	cfg.applyDefaults()
	store, err := OpenStore(cfg.Dir, cfg.Keep)
	if err != nil {
		return nil, err
	}
	return &Supervisor{
		M:       m,
		cfg:     cfg,
		store:   store,
		journal: NewJournal(cfg.Journal),
	}, nil
}

// Result returns the run summary (valid after Run).
func (s *Supervisor) Result() Result { return s.res }

// Run executes the machine to completion under supervision. It returns
// nil when the domain shuts down normally, an error wrapping
// ErrInterrupted (and the ctx cause) after a cancellation checkpoint,
// and the underlying failure when the run is beyond saving — a
// non-retryable SimError, an exhausted retry budget, or a failure on
// the degraded path.
func (s *Supervisor) Run(ctx context.Context) error {
	// Genesis checkpoint: a failure inside the very first window needs
	// a restore point too. The run then continues on a machine rebuilt
	// from that image — the same round trip every Runner boundary
	// performs — so the first window is executed exactly as a later
	// resume from the genesis slot (a worker killed before the second
	// boundary, say) would replay it. Running it on the live machine
	// instead leaks pre-capture state the image deliberately excludes
	// (a pending mode-switch refill, for one) into the cycle count and
	// breaks bit-identical recovery for first-window failures.
	if _, err := s.saveAndSwap(); err != nil {
		return err
	}

	for {
		s.res.Attempts++
		s.journal.Append(Entry{Event: EventRunStart, Attempt: s.res.Attempts,
			Cycle: s.M.Cycle, Insns: s.M.Insns()})

		r := snapshot.NewRunner(s.M, s.cfg.Interval)
		r.OnCheckpoint = func(_ int, img *snapshot.Image, _ []byte) error {
			slot, err := s.store.Save(img)
			if err != nil {
				return err
			}
			s.res.FinalSlot = slot
			s.journal.Append(Entry{Event: EventCheckpoint, Attempt: s.res.Attempts,
				Cycle: img.Cycle, Slot: slot})
			// Crossing a boundary is forward progress: the failure
			// streak (and with it the backoff ladder) starts over.
			s.failsAtPoint = 0
			return nil
		}
		err := r.RunCtx(ctx, s.cfg.MaxCycles)
		s.M = r.M

		switch {
		case err == nil:
			s.journal.Append(Entry{Event: EventComplete, Attempt: s.res.Attempts,
				Cycle: s.M.Cycle, Insns: s.M.Insns()})
			return nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return s.interrupt(err)
		}

		se, _ := simerr.As(err)
		fe := Entry{Event: EventFailure, Attempt: s.res.Attempts,
			Cycle: s.M.Cycle, Message: err.Error(),
			Retryable: simerr.Retryable(err)}
		if se != nil {
			fe.Kind = string(se.Kind)
			fe.RIP = se.RIP
			fe.Commit = se.Commit
			fe.Diff = se.Diff
			fe.EventTail = se.EventTail
		}
		s.journal.Append(fe)
		if !simerr.Retryable(err) {
			// Self-check failures are evidence of wrong execution, not a
			// transient fault: before giving up, localize the bug.
			if s.cfg.Triage && se != nil &&
				(se.Kind == simerr.KindDivergence || se.Kind == simerr.KindInvariant) {
				s.triage()
			}
			s.journal.Append(Entry{Event: EventGiveUp, Attempt: s.res.Attempts,
				Cycle: s.M.Cycle, Message: "failure is not retryable"})
			return err
		}

		if s.res.Retries >= s.cfg.MaxRetries {
			s.journal.Append(Entry{Event: EventGiveUp, Attempt: s.res.Attempts,
				Cycle: s.M.Cycle, Message: fmt.Sprintf("retry budget %d exhausted", s.cfg.MaxRetries)})
			return fmt.Errorf("supervisor: retry budget %d exhausted: %w", s.cfg.MaxRetries, err)
		}
		s.res.Retries++

		if err := s.restore(ctx); err != nil {
			return err
		}
		if s.cfg.DegradeAfter > 0 && s.failsAtPoint >= s.cfg.DegradeAfter {
			if err := s.degradeWindow(ctx); err != nil {
				return err
			}
			s.failsAtPoint = 0
		}
	}
}

// restore backs off, then swaps in a machine rebuilt from the newest
// intact rotation slot, carrying over the external attachments (trace
// sink/source, step hook) the image deliberately excludes.
func (s *Supervisor) restore(ctx context.Context) error {
	// A cancellation racing the failure wins: checkpoint and exit
	// instead of sleeping into a retry nobody wants.
	if cerr := ctx.Err(); cerr != nil {
		return s.interrupt(cerr)
	}
	// Exponential backoff on the consecutive-failure streak; the first
	// failure at a point waits BackoffBase.
	d := s.cfg.BackoffBase << uint(s.failsAtPoint)
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	s.cfg.Sleep(d)

	img, slot, err := s.store.LoadLatest(func(bad string, lerr error) {
		s.journal.Append(Entry{Event: EventDiscardSlot, Attempt: s.res.Attempts,
			Slot: bad, Message: lerr.Error()})
	})
	if err != nil {
		return err
	}
	fresh, err := snapshot.Restore(img, s.M.Config())
	if err != nil {
		return fmt.Errorf("supervisor: restoring %s: %w", slot, err)
	}
	fresh.Dom.Sink = s.M.Dom.Sink
	fresh.Dom.Source = s.M.Dom.Source
	fresh.SetStepHook(s.M.StepHook())
	fresh.SetEventLog(s.M.EventLog())
	s.M = fresh

	if img.Cycle == s.lastRestore {
		s.failsAtPoint++
	} else {
		s.lastRestore = img.Cycle
		s.failsAtPoint = 1
	}
	s.journal.Append(Entry{Event: EventRestore, Attempt: s.res.Attempts,
		Cycle: img.Cycle, Slot: slot, BackoffMs: d.Milliseconds()})
	return nil
}

// degradeWindow makes forward progress through a window the
// out-of-order core cannot survive: it re-executes exactly one
// checkpoint interval on the sequential reference core (native mode —
// functionally identical, no timing model), journals the degraded
// interval, switches back, and checkpoints the boundary so later
// failures restore past the poisoned window. Timing fidelity is lost
// for the window (cycle counts advance at NativeCPI); architectural
// correctness is not.
func (s *Supervisor) degradeWindow(ctx context.Context) error {
	m := s.M
	wasSim := m.Mode() == core.ModeSim
	from := m.Cycle
	target := from + s.cfg.Interval
	s.journal.Append(Entry{Event: EventDegradeOn, Attempt: s.res.Attempts,
		FromCycle: from, ToCycle: target})
	if wasSim {
		m.SwitchMode(core.ModeNative)
	}
	err := m.RunUntilCycleCtx(ctx, target)
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return s.interrupt(err)
	case err != nil:
		// The reference core is the fallback of last resort; when even
		// it cannot get through the window, the run is beyond saving.
		s.journal.Append(Entry{Event: EventFailure, Attempt: s.res.Attempts,
			Cycle: m.Cycle, Message: "degraded window failed: " + err.Error()})
		return fmt.Errorf("supervisor: degraded window [%d,%d) failed on sequential core: %w",
			from, target, err)
	}
	if wasSim && !m.Dom.ShutdownReq {
		m.SwitchMode(core.ModeSim)
	}
	s.res.DegradedWindows++
	s.journal.Append(Entry{Event: EventDegradeOff, Attempt: s.res.Attempts,
		FromCycle: from, ToCycle: m.Cycle, Insns: m.Insns()})
	if m.Dom.ShutdownReq {
		return nil
	}
	// Boundary checkpoint + swap, mirroring Runner.checkpoint: the
	// continued run passes through the same restore operation a later
	// resume from this slot would.
	_, err = s.saveAndSwap()
	return err
}

// saveAndSwap writes a rotation slot for the current machine, then
// swaps in a machine rebuilt from that very image (external
// attachments carried over) — the capture → restore round trip every
// Runner boundary performs, applied at the boundaries the supervisor
// writes itself. Anything the image deliberately excludes is thereby
// excluded from the continued run too, which is what keeps a resume
// from the slot bit-identical.
func (s *Supervisor) saveAndSwap() (string, error) {
	slot, err := s.saveCheckpoint()
	if err != nil {
		return "", err
	}
	img, err := snapshot.ReadFile(slot)
	if err != nil {
		return "", err
	}
	fresh, err := snapshot.Restore(img, s.M.Config())
	if err != nil {
		return "", err
	}
	fresh.Dom.Sink = s.M.Dom.Sink
	fresh.Dom.Source = s.M.Dom.Source
	fresh.SetStepHook(s.M.StepHook())
	fresh.SetEventLog(s.M.EventLog())
	s.M = fresh
	return slot, nil
}

// triage runs the checkpoint-seeded divergence search after a
// self-check failure: restore the newest intact rotation slot, strip
// the self-checking instrumentation from the machine configuration
// (the stripped config restores the slot thanks to ConfigHash's
// exclusion), and binary search the window between the slot and the
// failure point for the first committed instruction where the
// cycle-accurate and reference engines disagree. The result — or the
// search's own failure, which is itself diagnostic — is journaled;
// triage never changes Run's outcome.
func (s *Supervisor) triage() {
	img, slot, err := s.store.LoadLatest(func(bad string, lerr error) {
		s.journal.Append(Entry{Event: EventDiscardSlot, Attempt: s.res.Attempts,
			Slot: bad, Message: lerr.Error()})
	})
	if err != nil {
		s.journal.Append(Entry{Event: EventTriage, Attempt: s.res.Attempts,
			Message: "divergence search aborted: no usable checkpoint: " + err.Error()})
		return
	}
	cfg := s.M.Config()
	cfg.SelfCheck = selfcheck.Config{}
	max := s.M.Insns()
	var instrument func(*core.Machine)
	if hook := s.M.StepHook(); hook != nil {
		instrument = func(m *core.Machine) { m.SetStepHook(hook) }
	}
	n, diag, st, err := cosim.FirstDivergenceFromImage(img, cfg, max, s.cfg.TriageInterval, instrument)
	switch {
	case err != nil:
		s.journal.Append(Entry{Event: EventTriage, Attempt: s.res.Attempts,
			Slot: slot, Message: "divergence search failed: " + err.Error()})
	case n < 0:
		s.journal.Append(Entry{Event: EventTriage, Attempt: s.res.Attempts,
			Slot: slot, Insns: max,
			Message: fmt.Sprintf("engines agree up to instruction %d: failure not reproducible from %s", max, slot)})
	default:
		s.journal.Append(Entry{Event: EventTriage, Attempt: s.res.Attempts,
			Slot: slot, DivergedAt: n, Diff: diag,
			Message: fmt.Sprintf("first diverging instruction %d (%d probes, replayed %d insns vs %d naive)",
				n, st.Probes, st.ScanInsns+st.ProbeInsns, st.NaiveInsns)})
	}
}

// saveCheckpoint captures the current machine (at an instruction
// boundary) into the next rotation slot.
func (s *Supervisor) saveCheckpoint() (string, error) {
	slot, err := s.store.Save(snapshot.Capture(s.M))
	if err != nil {
		return "", err
	}
	s.res.FinalSlot = slot
	s.journal.Append(Entry{Event: EventCheckpoint, Attempt: s.res.Attempts,
		Cycle: s.M.Cycle, Slot: slot})
	return slot, nil
}

// interrupt handles cancellation: write a final checkpoint so no
// progress is lost, journal it, and return ErrInterrupted wrapping the
// context cause.
func (s *Supervisor) interrupt(cause error) error {
	slot, err := s.saveCheckpoint()
	if err != nil {
		return fmt.Errorf("supervisor: interrupted and final checkpoint failed: %w", err)
	}
	s.journal.Append(Entry{Event: EventInterrupt, Attempt: s.res.Attempts,
		Cycle: s.M.Cycle, Insns: s.M.Insns(), Slot: slot})
	return fmt.Errorf("%w at cycle %d (final checkpoint %s): %w",
		ErrInterrupted, s.M.Cycle, slot, cause)
}
