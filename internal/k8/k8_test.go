package k8

import (
	"testing"

	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
)

func TestTriadCounting(t *testing.T) {
	tree := stats.NewTree()
	m := New(tree, "k8")
	m.OnInsn(0x1000, false, 1) // 1 uop -> 1 triad
	m.OnInsn(0x1001, false, 3) // 3 uops -> 1 triad
	m.OnInsn(0x1002, false, 4) // 4 uops -> 2 triads
	m.OnInsn(0x1003, true, 7)  // 7 uops -> 3 triads
	if m.Insns.Value() != 4 || m.Uops.Value() != 7 {
		t.Fatalf("insns=%d uops=%d", m.Insns.Value(), m.Uops.Value())
	}
	if m.KernelInsns.Value() != 1 || m.UserInsns.Value() != 3 {
		t.Fatal("mode attribution wrong")
	}
}

func TestTwoLevelTLBAbsorbsMisses(t *testing.T) {
	tree := stats.NewTree()
	m := New(tree, "k8")
	// Touch 200 pages (beyond the 32-entry L1 TLB, within the 1024 L2).
	for pass := 0; pass < 3; pass++ {
		for p := uint64(0); p < 200; p++ {
			m.OnLoad(p<<12, p<<12, 8)
		}
	}
	// First pass misses cold; later passes hit L2 and refill silently,
	// so total misses should stay near the cold 200 (L2 hits are not
	// "TLB misses" on K8's counters... they are L1 misses; the paper's
	// counter counts walks. Here DTLBMisses counts hierarchy misses.)
	if m.DTLBMisses.Value() != 200 {
		t.Fatalf("two-level TLB misses = %d, want 200 (cold only)", m.DTLBMisses.Value())
	}
}

func TestPDECacheShortensWalks(t *testing.T) {
	tree := stats.NewTree()
	m := New(tree, "k8")
	// Sequential pages share PDEs: most walks after the first in each
	// 2MB region should be shortened.
	for p := uint64(0); p < 64; p++ {
		m.OnLoad(p<<12, p<<12, 8)
	}
	if m.DTLBPDEShort.Value() == 0 {
		t.Fatal("PDE cache never shortened a walk")
	}
	if m.DTLBPDEShort.Value() >= m.DTLBMisses.Value() {
		t.Fatal("every walk shortened, including cold PDEs")
	}
}

func TestBranchCounters(t *testing.T) {
	tree := stats.NewTree()
	m := New(tree, "k8")
	// A biased branch becomes predictable.
	for i := 0; i < 100; i++ {
		m.OnBranch(0x4004, true, 0x5000, uops.BranchCond)
	}
	if m.CondBranches.Value() != 100 {
		t.Fatalf("cond branches = %d", m.CondBranches.Value())
	}
	// gshare warms up one counter per distinct history value; with a
	// 12-bit history the warmup tail is bounded by ~historyBits.
	if m.Mispredicts.Value() > 20 {
		t.Fatalf("mispredicts on biased branch = %d", m.Mispredicts.Value())
	}
}

func TestCycleModelMonotone(t *testing.T) {
	tree := stats.NewTree()
	m := New(tree, "k8")
	m.OnInsn(0, false, 1)
	c1 := m.Cycles()
	m.OnLoad(0x999000, 0x999000, 8) // cold miss chain
	if m.Cycles() <= c1 {
		t.Fatal("misses must add cycles")
	}
	m.AddIdleCycles(1000)
	if m.Cycles() < c1+1000 {
		t.Fatal("idle cycles not accounted")
	}
}
