// Package k8 implements the "reference silicon" side of the paper's
// Table 1 experiment. The paper compared PTLsim's statistics against a
// real Athlon 64's hardware performance counters; with no silicon
// available, this package emulates what those counters would report by
// replaying the functional core's architectural event stream through
// silicon-grade structures the simulated PTLsim core deliberately lacks
// (or models more simply):
//
//   - a two-level TLB (32-entry L1, 1024-entry 4-way L2) with a
//     24-entry PDE cache — the reason the paper's DTLB miss counts are
//     2.4x lower on silicon than in PTLsim (Table 1's 144% row);
//   - an L1 data cache with the K8's more aggressive prefetcher
//     (slightly lower miss rate, Table 1's +7% row);
//   - the K8 branch predictor with its larger effective history;
//   - macro-op ("uop triad") retirement counting, which undercounts
//     relative to PTLsim's individual uops (Table 1's +31% row);
//   - a calibrated event-cost cycle model (K8-like 3-wide retire with
//     standard miss penalties) standing in for the cycle counter.
package k8

import (
	"ptlsim/internal/bpred"
	"ptlsim/internal/cache"
	"ptlsim/internal/seqcore"
	"ptlsim/internal/stats"
	"ptlsim/internal/tlb"
	"ptlsim/internal/uops"
)

// CostModel holds the cycle-estimate coefficients: a base CPI for the
// 3-wide K8 pipeline plus standard penalties per event. The defaults
// are derived from the K8 documentation latencies used elsewhere in the
// simulator (L2 10 cycles, memory 112, redirect 11).
type CostModel struct {
	BaseCPI        float64
	L1MissPenalty  float64 // L2 hit cost
	L2MissPenalty  float64 // memory cost
	MispredPenalty float64
	TLBMissPenalty float64 // full four-level walk
	TLBPDEPenalty  float64 // walk shortened by the PDE cache
}

// DefaultCostModel uses the measured K8 latencies.
func DefaultCostModel() CostModel {
	return CostModel{
		// The K8 sustains roughly 0.9 IPC on integer server code
		// (Table 1's native run measured CPI 1.50 including stalls);
		// the base covers issue-width and dependence stalls the event
		// costs below do not.
		BaseCPI:        1.10,
		L1MissPenalty:  10,
		L2MissPenalty:  112,
		MispredPenalty: 11,
		TLBMissPenalty: 20,
		TLBPDEPenalty:  5,
	}
}

// Model is the hardware-counter emulation. It implements
// seqcore.Observer; attach it to the functional core with
// core.Obs = model.
type Model struct {
	cost CostModel

	dtlb *tlb.Hierarchy
	itlb *tlb.Hierarchy
	hier *cache.Hierarchy
	pred *bpred.Predictor

	// Counters (the four-at-a-time rdpmc counters of the paper, all
	// available at once here).
	Insns, Uops              *stats.Counter
	Loads, Stores            *stats.Counter
	L1DAccesses, L1DMisses   *stats.Counter
	Branches, CondBranches   *stats.Counter
	Mispredicts              *stats.Counter
	DTLBMisses, DTLBPDEShort *stats.Counter
	ITLBMisses               *stats.Counter
	ContextSwitches          *stats.Counter
	KernelInsns, UserInsns   *stats.Counter

	cycleAccum float64
}

// New builds the reference model, registering counters under prefix.
func New(tree *stats.Tree, prefix string) *Model {
	cfg := cache.K8Hierarchy()
	cfg.Prefetch = true // the silicon's prefetch unit (paper §5)
	m := &Model{
		cost: DefaultCostModel(),
		// K8: 32-entry fully associative L1 TLB, 1024-entry 4-way L2,
		// 24-entry PDE cache (paper §5 discussion of Table 1).
		dtlb: tlb.NewHierarchy(32, 32, 1024, 4, 24),
		itlb: tlb.NewHierarchy(32, 32, 512, 4, 24),
		hier: cache.NewHierarchy(cfg, tree, prefix+".cache"),
		pred: bpred.New(bpred.K8Config()),

		Insns:           tree.Counter(prefix + ".insns"),
		Uops:            tree.Counter(prefix + ".uops"),
		Loads:           tree.Counter(prefix + ".loads"),
		Stores:          tree.Counter(prefix + ".stores"),
		L1DAccesses:     tree.Counter(prefix + ".l1d.accesses"),
		L1DMisses:       tree.Counter(prefix + ".l1d.misses"),
		Branches:        tree.Counter(prefix + ".branches"),
		CondBranches:    tree.Counter(prefix + ".cond_branches"),
		Mispredicts:     tree.Counter(prefix + ".mispredicts"),
		DTLBMisses:      tree.Counter(prefix + ".dtlb.misses"),
		DTLBPDEShort:    tree.Counter(prefix + ".dtlb.pde_short_walks"),
		ITLBMisses:      tree.Counter(prefix + ".itlb.misses"),
		ContextSwitches: tree.Counter(prefix + ".context_switches"),
		KernelInsns:     tree.Counter(prefix + ".kernel_insns"),
		UserInsns:       tree.Counter(prefix + ".user_insns"),
	}
	return m
}

var _ seqcore.Observer = (*Model)(nil)

// Cycles returns the emulated cycle counter reading.
func (m *Model) Cycles() uint64 { return uint64(m.cycleAccum) }

// AddIdleCycles accounts halted time (the cycle counter keeps running
// while the CPU idles).
func (m *Model) AddIdleCycles(n uint64) { m.cycleAccum += float64(n) }

// OnInsn implements seqcore.Observer: macro-op (triad) counting.
func (m *Model) OnInsn(rip uint64, kernel bool, uopCount int) {
	m.Insns.Inc()
	if kernel {
		m.KernelInsns.Inc()
	} else {
		m.UserInsns.Inc()
	}
	// The K8 decodes most instructions into one macro-op and counts
	// triads rather than individual operations: one macro-op per three
	// uops of work, minimum one.
	triads := (uopCount + 2) / 3
	m.Uops.Add(int64(triads))
	m.cycleAccum += m.cost.BaseCPI
}

// access runs the D-side TLB and cache for one data reference.
func (m *Model) access(va, pa uint64, write bool) {
	vpn := va >> 12
	if _, res := m.dtlb.Lookup(vpn); res == tlb.Miss {
		m.DTLBMisses.Inc()
		if m.dtlb.PDEHit(vpn) {
			m.DTLBPDEShort.Inc()
			m.cycleAccum += m.cost.TLBPDEPenalty
		} else {
			m.cycleAccum += m.cost.TLBMissPenalty
		}
		m.dtlb.Insert(tlb.Entry{VPN: vpn, MFN: pa >> 12})
	}
	m.L1DAccesses.Inc()
	var r cache.Result
	if write {
		r = m.hier.Store(pa, uint64(m.cycleAccum))
	} else {
		r = m.hier.Load(pa, uint64(m.cycleAccum))
	}
	if r.Level != cache.LevelL1 {
		m.L1DMisses.Inc()
		m.cycleAccum += m.cost.L1MissPenalty
		if r.Level == cache.LevelMem {
			m.cycleAccum += m.cost.L2MissPenalty
		}
	}
}

// OnLoad implements seqcore.Observer.
func (m *Model) OnLoad(va, pa uint64, size uint8) {
	m.Loads.Inc()
	m.access(va, pa, false)
}

// OnStore implements seqcore.Observer.
func (m *Model) OnStore(va, pa uint64, size uint8) {
	m.Stores.Inc()
	m.access(va, pa, true)
}

// OnBranch implements seqcore.Observer.
func (m *Model) OnBranch(rip uint64, taken bool, target uint64, kind uops.BranchKind) {
	m.Branches.Inc()
	switch kind {
	case uops.BranchCond:
		m.CondBranches.Inc()
		pred, snap := m.pred.PredictDirection(rip)
		if pred != taken {
			m.Mispredicts.Inc()
			m.cycleAccum += m.cost.MispredPenalty
			m.pred.Recover(snap, taken)
		}
		m.pred.Update(rip, taken, snap)
	case uops.BranchCall:
		m.pred.RAS().Push(rip + 5)
		m.pred.BTBUpdate(rip, target)
	case uops.BranchRet:
		if m.pred.RAS().Pop() != target {
			m.Mispredicts.Inc()
			m.cycleAccum += m.cost.MispredPenalty
		}
	case uops.BranchIndirect:
		if t, ok := m.pred.BTBLookup(rip); !ok || t != target {
			m.Mispredicts.Inc()
			m.cycleAccum += m.cost.MispredPenalty
		}
		m.pred.BTBUpdate(rip, target)
	}
}

// OnAddressSpaceSwitch implements seqcore.Observer: CR3 reloads flush
// the untagged TLB hierarchy (and the PDE cache) exactly as the K8
// does — its DTLB advantage over the simulated 32-entry single-level
// TLB comes from the PDE cache shortening refill walks and the larger
// within-timeslice reach, not from surviving context switches.
func (m *Model) OnAddressSpaceSwitch(cr3 uint64) {
	m.dtlb.Flush()
	m.itlb.Flush()
	m.ContextSwitches.Inc()
}

// OnFetchBlock implements seqcore.Observer: I-side TLB and cache.
func (m *Model) OnFetchBlock(rip, pa uint64) {
	vpn := rip >> 12
	if _, res := m.itlb.Lookup(vpn); res == tlb.Miss {
		m.ITLBMisses.Inc()
		m.cycleAccum += m.cost.TLBMissPenalty
		m.itlb.Insert(tlb.Entry{VPN: vpn, MFN: pa >> 12})
	}
	m.hier.Fetch(pa, uint64(m.cycleAccum))
}

// FlushCaches models the -perfctr cold-start (the paper flushed all
// CPU caches before switching to native counting).
func (m *Model) FlushCaches() {
	m.hier.Flush()
	m.dtlb.Flush()
	m.itlb.Flush()
}
