package decode

import (
	"testing"

	"ptlsim/internal/conformance/corpus"
	"ptlsim/internal/uops"
	"ptlsim/internal/x86"
)

// fuzzFetch builds a FetchFunc serving code at base, returning at most
// chunk bytes per call (chunk <= 0 means as many as fit in buf). Small
// chunks emulate instructions straddling page boundaries, the path
// where BuildBB re-fetches at the next page.
func fuzzFetch(code []byte, base uint64, chunk int) FetchFunc {
	return func(va uint64, buf []byte) (int, uops.Fault) {
		off := va - base // wraparound-safe: off >= len(code) covers va < base too
		if off >= uint64(len(code)) {
			return 0, uops.FaultPageExec
		}
		n := copy(buf, code[off:])
		if chunk > 0 && n > chunk {
			n = chunk
		}
		return n, uops.FaultNone
	}
}

// checkBB asserts the structural invariants every successfully built
// basic block must satisfy, whatever bytes produced it.
func checkBB(t *testing.T, bb *BasicBlock, fault uops.Fault) {
	t.Helper()
	if fault != uops.FaultNone {
		if bb != nil {
			t.Fatalf("fault %v with non-nil block", fault)
		}
		return
	}
	if bb == nil {
		t.Fatal("no fault and no block")
	}
	if bb.NumX86 < 1 || bb.NumX86 > MaxBBX86Insns {
		t.Fatalf("NumX86 = %d outside [1, %d]", bb.NumX86, MaxBBX86Insns)
	}
	if len(bb.Uops) == 0 {
		t.Fatal("block with zero uops")
	}
	if bb.X86Len == 0 {
		t.Fatal("block with zero X86Len")
	}
	if bb.X86Len > uint64(bb.NumX86)*uint64(x86.MaxInstLen) {
		t.Fatalf("X86Len %d exceeds %d instructions * max length", bb.X86Len, bb.NumX86)
	}
	// SOM/EOM must partition the uops into complete instruction groups:
	// every group starts with SOM, ends with EOM, and the block ends at
	// a group boundary (the builder only truncates between
	// instructions).
	groups := 0
	expectSOM := true
	for i, u := range bb.Uops {
		if u.SOM != expectSOM {
			t.Fatalf("uop %d: SOM=%v, want %v", i, u.SOM, expectSOM)
		}
		if u.SOM {
			groups++
		}
		expectSOM = u.EOM
		// Every uop belongs to an instruction inside the block's byte
		// range (modular compare tolerates blocks near the top of the
		// address space).
		if u.RIP-bb.RIP >= bb.X86Len {
			t.Fatalf("uop %d: rip %#x outside block [%#x, +%d)", i, u.RIP, bb.RIP, bb.X86Len)
		}
	}
	if !expectSOM {
		t.Fatal("block ends mid-instruction (last uop lacks EOM)")
	}
	// REP pseudo-groups (NoCount) may add groups beyond the counted
	// instructions, never remove them.
	if groups < bb.NumX86 {
		t.Fatalf("%d uop groups < %d x86 instructions", groups, bb.NumX86)
	}
}

// seedCorpus is shared by both targets. The seeds live in the shared
// conformance corpus (testdata/conformance/seed) so decode fuzzing and
// the execution fuzzer in internal/conformance mutate the same byte
// sequences: representative encodings plus known edge cases (UD,
// truncation, REP pseudo-groups, branches, VA wraparound).
func seedCorpus(f *testing.F) {
	dir, err := corpus.SeedDir()
	if err != nil {
		f.Fatalf("locating seed corpus: %v", err)
	}
	cases, err := corpus.Load(dir)
	if err != nil {
		f.Fatalf("loading seed corpus: %v", err)
	}
	if len(cases) == 0 {
		f.Fatalf("seed corpus %s is empty", dir)
	}
	for _, c := range cases {
		code, err := c.Code()
		if err != nil {
			f.Fatal(err)
		}
		rip := c.RIP
		if rip == 0 {
			rip = 0x40_1000
		}
		f.Add(code, rip)
	}
}

// FuzzBuildBB feeds arbitrary bytes at an arbitrary RIP through the
// decoder and translator: whatever the input, BuildBB must not panic,
// and any block it returns must satisfy the structural invariants the
// pipeline relies on (group well-formedness, length bounds).
func FuzzBuildBB(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, code []byte, rip uint64) {
		bb, fault := BuildBB(fuzzFetch(code, rip, 0), rip)
		checkBB(t, bb, fault)
	})
}

// FuzzBuildBBPaged is FuzzBuildBB with the fetch callback returning a
// few bytes at a time, driving the page-crossing re-fetch path on every
// instruction.
func FuzzBuildBBPaged(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, code []byte, rip uint64) {
		for _, chunk := range []int{1, 3, 7} {
			bb, fault := BuildBB(fuzzFetch(code, rip, chunk), rip)
			checkBB(t, bb, fault)
		}
	})
}
