// Package decode translates decoded x86-64 instructions into PTLsim's
// internal uop sequences, including the microcode expansions for
// complex instructions (REP string ops, CMPXCHG, wide multiply/divide,
// pushes/pops, interlocked read-modify-writes), and builds basic blocks
// for the basic block cache.
package decode

import (
	"fmt"

	"ptlsim/internal/uops"
	"ptlsim/internal/x86"
)

// tx is the translation context for one x86 instruction.
type tx struct {
	out  []uops.Uop
	inst *x86.Inst
	rip  uint64 // address of this instruction
	next uint64 // address of the following instruction
	size uint8
}

func (t *tx) emit(u uops.Uop) {
	u.RIP = t.rip
	u.X86Len = uint8(t.next - t.rip)
	// Ops with no register destination must name RegZero explicitly
	// (the zero value of ArchReg is RAX).
	switch u.Op {
	case uops.OpNop, uops.OpFence, uops.OpBr, uops.OpBrcc, uops.OpBrInd,
		uops.OpBrZ, uops.OpBrNZ, uops.OpSt, uops.OpStRel:
		u.Rd = uops.RegZero
	case uops.OpAssist:
		if u.Assist != uops.AssistMovFromCR {
			u.Rd = uops.RegZero
		}
	}
	t.out = append(t.out, u)
}

// memParts decomposes an x86 memory operand into uop addressing fields.
func (t *tx) memParts(m x86.MemRef) (base, index uops.ArchReg, scale uint8, disp int64) {
	base, index = uops.RegZero, uops.RegZero
	disp = int64(m.Disp)
	if m.Base == x86.RIP {
		disp += int64(t.next)
	} else if m.Base != x86.RegNone {
		base = uops.GPR(m.Base)
	}
	if m.Index != x86.RegNone {
		index = uops.GPR(m.Index)
		switch m.Scale {
		case 2:
			scale = 1
		case 4:
			scale = 2
		case 8:
			scale = 3
		}
	}
	return base, index, scale, disp
}

// load emits a load of size bytes from mem into rd (zero-extended).
func (t *tx) load(mem x86.MemRef, size uint8, rd uops.ArchReg, acquire bool) {
	base, index, scale, disp := t.memParts(mem)
	op := uops.OpLd
	if acquire {
		op = uops.OpLdAcq
	}
	t.emit(uops.Uop{Op: op, Size: 8, Rd: rd, Ra: base, Rb: index,
		Scale: scale, Imm: disp, MemSize: size})
}

// store emits a store of size bytes of data to mem.
func (t *tx) store(mem x86.MemRef, size uint8, data uops.ArchReg, release bool) {
	base, index, scale, disp := t.memParts(mem)
	op := uops.OpSt
	if release {
		op = uops.OpStRel
	}
	t.emit(uops.Uop{Op: op, Size: 8, Rd: uops.RegZero, Ra: base, Rb: index,
		Rc: data, Scale: scale, Imm: disp, MemSize: size})
}

// movImm emits rd = imm.
func (t *tx) movImm(rd uops.ArchReg, imm int64) {
	t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: rd, Ra: uops.RegZero, Imm: imm})
}

// writeGPR moves a computed value (in src) into the x86 destination
// register with correct width semantics: 8 and 4 byte writes replace
// the register (32-bit writes zero the upper half), 1 and 2 byte
// writes merge into the low bits.
func (t *tx) writeGPR(dst uops.ArchReg, src uops.ArchReg, size uint8) {
	if size >= 4 {
		t.emit(uops.Uop{Op: uops.OpMov, Size: size, Rd: dst, Ra: src})
		return
	}
	t.emit(uops.Uop{Op: uops.OpIns, Size: 8, Rd: dst, Ra: dst, Rb: src, MemSize: size})
}

// srcVal materializes an operand value for reading: registers are used
// directly, memory is loaded into tmp, immediates return (RegZero,
// imm, true). Returns the register holding the value.
func (t *tx) srcVal(op x86.Operand, size uint8, tmp uops.ArchReg) (reg uops.ArchReg, imm int64, isImm bool) {
	switch op.Kind {
	case x86.KindReg:
		return uops.GPR(op.Reg), 0, false
	case x86.KindMem:
		t.load(op.Mem, size, tmp, false)
		return tmp, 0, false
	case x86.KindImm:
		return uops.RegZero, op.Imm, true
	}
	return uops.RegZero, 0, false
}

// aluOpFor maps x86 group-1 ALU operations to uops.
func aluOpFor(op x86.Op) (uops.Op, uint8) {
	switch op {
	case x86.OpAdd:
		return uops.OpAdd, uops.SetAll
	case x86.OpOr:
		return uops.OpOr, uops.SetAll
	case x86.OpAdc:
		return uops.OpAdc, uops.SetAll
	case x86.OpSbb:
		return uops.OpSbb, uops.SetAll
	case x86.OpAnd:
		return uops.OpAnd, uops.SetAll
	case x86.OpSub, x86.OpCmp:
		return uops.OpSub, uops.SetAll
	case x86.OpXor:
		return uops.OpXor, uops.SetAll
	case x86.OpTest:
		return uops.OpAnd, uops.SetAll
	}
	return uops.OpNop, 0
}

func shiftOpFor(op x86.Op) uops.Op {
	switch op {
	case x86.OpShl:
		return uops.OpShl
	case x86.OpShr:
		return uops.OpShr
	case x86.OpSar:
		return uops.OpSar
	case x86.OpRol:
		return uops.OpRol
	case x86.OpRor:
		return uops.OpRor
	}
	return uops.OpNop
}

// assist emits the single-uop microcode escape.
func (t *tx) assist(id uops.AssistID) {
	t.emit(uops.Uop{Op: uops.OpAssist, Size: 8, Assist: id})
}

// Translate converts one decoded x86 instruction located at rip into
// its uop sequence. The first uop is marked SOM and the last EOM; the
// commit unit retires them atomically.
func Translate(inst *x86.Inst, rip uint64) ([]uops.Uop, error) {
	t := &tx{inst: inst, rip: rip, next: rip + uint64(inst.Len), size: inst.OpSize}
	if t.size == 0 {
		t.size = 8
	}
	if err := t.translate(); err != nil {
		return nil, err
	}
	if len(t.out) == 0 {
		return nil, fmt.Errorf("decode: empty translation for %s", inst)
	}
	t.out[0].SOM = true
	t.out[len(t.out)-1].EOM = true
	return t.out, nil
}

func (t *tx) translate() error {
	inst := t.inst
	size := t.size
	flagsReg := uops.RegFlags

	switch inst.Op {
	case x86.OpNop, x86.OpPause:
		t.emit(uops.Uop{Op: uops.OpNop})
		return nil

	case x86.OpMfence:
		t.emit(uops.Uop{Op: uops.OpFence})
		return nil

	case x86.OpAdd, x86.OpOr, x86.OpAdc, x86.OpSbb, x86.OpAnd,
		x86.OpSub, x86.OpXor, x86.OpCmp, x86.OpTest:
		return t.translateALU()

	case x86.OpMov:
		return t.translateMov()

	case x86.OpMovzx, x86.OpMovsx:
		srcW := uint8(inst.Src2.Imm)
		op := uops.OpZext
		if inst.Op == x86.OpMovsx {
			op = uops.OpSext
		}
		src, _, _ := t.srcVal(inst.Src, srcW, uops.RegT0)
		t.emit(uops.Uop{Op: op, Size: size, Rd: uops.GPR(inst.Dst.Reg), Ra: src, MemSize: srcW})
		return nil

	case x86.OpMovsxd:
		src, _, _ := t.srcVal(inst.Src, 4, uops.RegT0)
		t.emit(uops.Uop{Op: uops.OpSext, Size: 8, Rd: uops.GPR(inst.Dst.Reg), Ra: src, MemSize: 4})
		return nil

	case x86.OpLea:
		base, index, scale, disp := t.memParts(inst.Src.Mem)
		t.emit(uops.Uop{Op: uops.OpAdda, Size: size, Rd: uops.GPR(inst.Dst.Reg),
			Ra: base, Rb: index, Scale: scale, Imm: disp})
		return nil

	case x86.OpPush:
		data := uops.RegT0
		switch inst.Dst.Kind {
		case x86.KindReg:
			data = uops.GPR(inst.Dst.Reg)
		case x86.KindImm:
			t.movImm(uops.RegT0, inst.Dst.Imm)
		case x86.KindMem:
			t.load(inst.Dst.Mem, 8, uops.RegT0, false)
		}
		t.store(x86.MemRef{Base: x86.RSP, Index: x86.RegNone, Disp: -8}, 8, data, false)
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRSP, Ra: uops.RegRSP,
			Rb: uops.RegZero, Imm: -8})
		return nil

	case x86.OpPop:
		t.load(x86.MemRef{Base: x86.RSP, Index: x86.RegNone}, 8, uops.RegT0, false)
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRSP, Ra: uops.RegRSP,
			Rb: uops.RegZero, Imm: 8})
		if inst.Dst.Kind == x86.KindReg {
			t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: uops.GPR(inst.Dst.Reg), Ra: uops.RegT0})
		} else {
			t.store(inst.Dst.Mem, 8, uops.RegT0, false)
		}
		return nil

	case x86.OpShl, x86.OpShr, x86.OpSar, x86.OpRol, x86.OpRor:
		return t.translateShift()

	case x86.OpNot:
		return t.translateUnary(func(src, dst uops.ArchReg) {
			t.emit(uops.Uop{Op: uops.OpXor, Size: size, Rd: dst, Ra: src,
				Rb: uops.RegZero, BImm: true, Imm: -1})
		})

	case x86.OpNeg:
		return t.translateUnary(func(src, dst uops.ArchReg) {
			// 0 - src: exec's sub gives x86 NEG flags (CF = src != 0).
			t.movImm(uops.RegT3, 0)
			t.emit(uops.Uop{Op: uops.OpSub, Size: size, Rd: dst, Ra: uops.RegT3,
				Rb: src, Rc: flagsReg, SetFlags: uops.SetAll})
		})

	case x86.OpInc, x86.OpDec:
		op := uops.OpAdd
		if inst.Op == x86.OpDec {
			op = uops.OpSub
		}
		return t.translateUnary(func(src, dst uops.ArchReg) {
			t.emit(uops.Uop{Op: op, Size: size, Rd: dst, Ra: src,
				Rb: uops.RegZero, BImm: true, Imm: 1,
				Rc: flagsReg, SetFlags: uops.SetZAPS | uops.SetOF})
		})

	case x86.OpImul:
		return t.translateImul()
	case x86.OpMul:
		return t.translateMulDiv(uops.OpMulhu, uops.OpMull)
	case x86.OpDiv:
		return t.translateMulDiv(uops.OpDiv, uops.OpRem)
	case x86.OpIdiv:
		return t.translateMulDiv(uops.OpDivs, uops.OpRems)

	case x86.OpJmp:
		return t.translateJmp()
	case x86.OpJcc:
		target := t.next + uint64(inst.Dst.Imm)
		t.emit(uops.Uop{Op: uops.OpBrcc, Cond: inst.Cond, Rc: flagsReg,
			RIPTaken: target, RIPNot: t.next, Branch: uops.BranchCond})
		return nil
	case x86.OpCall:
		return t.translateCall()
	case x86.OpRet:
		t.load(x86.MemRef{Base: x86.RSP, Index: x86.RegNone}, 8, uops.RegT0, false)
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRSP, Ra: uops.RegRSP,
			Rb: uops.RegZero, Imm: 8})
		t.emit(uops.Uop{Op: uops.OpBrInd, Ra: uops.RegT0, Branch: uops.BranchRet,
			RIPNot: t.next})
		return nil

	case x86.OpSetcc:
		t.emit(uops.Uop{Op: uops.OpSetcc, Size: 1, Rd: uops.RegT4, Rc: flagsReg, Cond: inst.Cond})
		if inst.Dst.Kind == x86.KindReg {
			t.writeGPR(uops.GPR(inst.Dst.Reg), uops.RegT4, 1)
		} else {
			t.store(inst.Dst.Mem, 1, uops.RegT4, false)
		}
		return nil

	case x86.OpCmovcc:
		dst := uops.GPR(inst.Dst.Reg)
		src, _, _ := t.srcVal(inst.Src, size, uops.RegT0)
		t.emit(uops.Uop{Op: uops.OpSel, Size: size, Rd: dst, Ra: dst, Rb: src,
			Rc: flagsReg, Cond: inst.Cond})
		return nil

	case x86.OpXchg:
		return t.translateXchg()
	case x86.OpCmpxchg:
		return t.translateCmpxchg()
	case x86.OpXadd:
		return t.translateXadd()

	case x86.OpCdqe:
		srcW := size / 2
		t.emit(uops.Uop{Op: uops.OpSext, Size: size, Rd: uops.RegRAX, Ra: uops.RegRAX, MemSize: srcW})
		return nil
	case x86.OpCqo:
		t.emit(uops.Uop{Op: uops.OpSar, Size: size, Rd: uops.RegRDX, Ra: uops.RegRAX,
			Rb: uops.RegZero, BImm: true, Imm: int64(size)*8 - 1})
		return nil

	case x86.OpMovs, x86.OpStos, x86.OpLods:
		return t.translateString()

	case x86.OpHlt:
		t.assist(uops.AssistHlt)
		return nil
	case x86.OpSyscall:
		t.assist(uops.AssistSyscall)
		return nil
	case x86.OpSysret:
		t.assist(uops.AssistSysret)
		return nil
	case x86.OpIretq:
		t.assist(uops.AssistIretq)
		return nil
	case x86.OpRdtsc:
		t.assist(uops.AssistRdtsc)
		return nil
	case x86.OpCpuid:
		t.assist(uops.AssistCpuid)
		return nil
	case x86.OpPtlcall:
		t.assist(uops.AssistPtlcall)
		return nil
	case x86.OpHypercall:
		t.assist(uops.AssistHypercall)
		return nil
	case x86.OpMovToCR:
		u := uops.Uop{Op: uops.OpAssist, Size: 8, Assist: uops.AssistMovToCR,
			Ra: uops.GPR(inst.Src.Reg), Imm: inst.Dst.Imm}
		t.emit(u)
		return nil
	case x86.OpMovFromCR:
		u := uops.Uop{Op: uops.OpAssist, Size: 8, Assist: uops.AssistMovFromCR,
			Rd: uops.GPR(inst.Dst.Reg), Imm: inst.Src.Imm}
		t.emit(u)
		return nil
	case x86.OpInvlpg:
		base, index, scale, disp := t.memParts(inst.Dst.Mem)
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegT0, Ra: base, Rb: index,
			Scale: scale, Imm: disp})
		t.emit(uops.Uop{Op: uops.OpAssist, Size: 8, Assist: uops.AssistInvlpg, Ra: uops.RegT0})
		return nil

	case x86.OpMovsdLoad, x86.OpMovsdStore, x86.OpAddsd, x86.OpSubsd,
		x86.OpMulsd, x86.OpDivsd, x86.OpCvtsi2sd, x86.OpCvttsd2si,
		x86.OpUcomisd, x86.OpMovqXR, x86.OpMovqRX:
		return t.translateFP()
	}
	return fmt.Errorf("decode: no translation for %s", t.inst)
}

// xmmOrLoad returns the uop register holding an FP source operand.
func (t *tx) xmmOrLoad(op x86.Operand, tmp uops.ArchReg) uops.ArchReg {
	switch op.Kind {
	case x86.KindReg:
		if op.Reg.IsXMM() {
			return uops.XMM(op.Reg)
		}
		return uops.GPR(op.Reg)
	case x86.KindMem:
		t.load(op.Mem, 8, tmp, false)
		return tmp
	}
	return uops.RegZero
}

func (t *tx) translateFP() error {
	inst := t.inst
	switch inst.Op {
	case x86.OpMovsdLoad, x86.OpMovqXR:
		src := t.xmmOrLoad(inst.Src, uops.RegT0)
		t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: uops.XMM(inst.Dst.Reg), Ra: src})
	case x86.OpMovsdStore, x86.OpMovqRX:
		src := uops.XMM(inst.Src.Reg)
		if inst.Dst.Kind == x86.KindMem {
			t.store(inst.Dst.Mem, 8, src, false)
		} else if inst.Dst.Reg.IsXMM() {
			t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: uops.XMM(inst.Dst.Reg), Ra: src})
		} else {
			t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: uops.GPR(inst.Dst.Reg), Ra: src})
		}
	case x86.OpAddsd, x86.OpSubsd, x86.OpMulsd, x86.OpDivsd:
		var op uops.Op
		switch inst.Op {
		case x86.OpAddsd:
			op = uops.OpFAdd
		case x86.OpSubsd:
			op = uops.OpFSub
		case x86.OpMulsd:
			op = uops.OpFMul
		default:
			op = uops.OpFDiv
		}
		dst := uops.XMM(inst.Dst.Reg)
		src := t.xmmOrLoad(inst.Src, uops.RegT0)
		t.emit(uops.Uop{Op: op, Size: 8, Rd: dst, Ra: dst, Rb: src})
	case x86.OpCvtsi2sd:
		src := t.xmmOrLoad(inst.Src, uops.RegT0)
		t.emit(uops.Uop{Op: uops.OpFCvtID, Size: 8, Rd: uops.XMM(inst.Dst.Reg), Ra: src})
	case x86.OpCvttsd2si:
		src := t.xmmOrLoad(inst.Src, uops.RegT0)
		t.emit(uops.Uop{Op: uops.OpFCvtDI, Size: 8, Rd: uops.GPR(inst.Dst.Reg), Ra: src})
	case x86.OpUcomisd:
		src := t.xmmOrLoad(inst.Src, uops.RegT0)
		t.emit(uops.Uop{Op: uops.OpFCmp, Size: 8, Rd: uops.RegZero,
			Ra: uops.XMM(inst.Dst.Reg), Rb: src, Rc: uops.RegFlags, SetFlags: uops.SetAll})
	}
	return nil
}

func (t *tx) translateALU() error {
	inst := t.inst
	size := t.size
	op, setf := aluOpFor(inst.Op)
	discard := inst.Op == x86.OpCmp || inst.Op == x86.OpTest

	// Flags-consuming forms (ADC/SBB) read the flags register; every
	// flag-writing uop also carries Rc=flags so partial merges work.
	mk := func(dst, a, b uops.ArchReg, bImm bool, imm int64) uops.Uop {
		return uops.Uop{Op: op, Size: size, Rd: dst, Ra: a, Rb: b, BImm: bImm,
			Imm: imm, Rc: uops.RegFlags, SetFlags: setf}
	}

	switch {
	case inst.Dst.Kind == x86.KindReg:
		a := uops.GPR(inst.Dst.Reg)
		b, imm, isImm := t.srcVal(inst.Src, size, uops.RegT0)
		dst := a
		if discard {
			dst = uops.RegT5
		} else if size < 4 {
			dst = uops.RegT4
		}
		t.emit(mk(dst, a, b, isImm, imm))
		if !discard && size < 4 {
			t.writeGPR(a, uops.RegT4, size)
		}
	case inst.Dst.Kind == x86.KindMem:
		// Load-compute-store; interlocked when LOCK prefixed.
		t.load(inst.Dst.Mem, size, uops.RegT1, inst.Lock)
		b, imm, isImm := t.srcVal(inst.Src, size, uops.RegT0)
		dst := uops.RegT2
		if discard {
			dst = uops.RegT5
		}
		t.emit(mk(dst, uops.RegT1, b, isImm, imm))
		if !discard {
			t.store(inst.Dst.Mem, size, uops.RegT2, inst.Lock)
		}
	default:
		return fmt.Errorf("decode: bad ALU dst in %s", inst)
	}
	return nil
}

func (t *tx) translateMov() error {
	inst := t.inst
	size := t.size
	switch {
	case inst.Dst.Kind == x86.KindReg && inst.Src.Kind == x86.KindImm:
		if size >= 4 {
			t.emit(uops.Uop{Op: uops.OpMov, Size: size, Rd: uops.GPR(inst.Dst.Reg),
				Ra: uops.RegZero, Imm: inst.Src.Imm})
		} else {
			t.movImm(uops.RegT4, inst.Src.Imm)
			t.writeGPR(uops.GPR(inst.Dst.Reg), uops.RegT4, size)
		}
	case inst.Dst.Kind == x86.KindReg && inst.Src.Kind == x86.KindReg:
		if size >= 4 {
			t.emit(uops.Uop{Op: uops.OpMov, Size: size, Rd: uops.GPR(inst.Dst.Reg),
				Ra: uops.GPR(inst.Src.Reg)})
		} else {
			t.writeGPR(uops.GPR(inst.Dst.Reg), uops.GPR(inst.Src.Reg), size)
		}
	case inst.Dst.Kind == x86.KindReg && inst.Src.Kind == x86.KindMem:
		if size >= 4 {
			t.load(inst.Src.Mem, size, uops.GPR(inst.Dst.Reg), false)
		} else {
			t.load(inst.Src.Mem, size, uops.RegT4, false)
			t.writeGPR(uops.GPR(inst.Dst.Reg), uops.RegT4, size)
		}
	case inst.Dst.Kind == x86.KindMem && inst.Src.Kind == x86.KindReg:
		t.store(inst.Dst.Mem, size, uops.GPR(inst.Src.Reg), false)
	case inst.Dst.Kind == x86.KindMem && inst.Src.Kind == x86.KindImm:
		t.movImm(uops.RegT0, inst.Src.Imm)
		t.store(inst.Dst.Mem, size, uops.RegT0, false)
	default:
		return fmt.Errorf("decode: bad mov %s", inst)
	}
	return nil
}

func (t *tx) translateShift() error {
	inst := t.inst
	size := t.size
	op := shiftOpFor(inst.Op)
	var countReg uops.ArchReg
	var countImm int64
	var bImm bool
	if inst.Src.Kind == x86.KindImm {
		bImm = true
		countImm = inst.Src.Imm
		countReg = uops.RegZero
	} else {
		countReg = uops.RegRCX
	}
	mk := func(dst, a uops.ArchReg) uops.Uop {
		return uops.Uop{Op: op, Size: size, Rd: dst, Ra: a, Rb: countReg,
			BImm: bImm, Imm: countImm, Rc: uops.RegFlags, SetFlags: uops.SetAll}
	}
	if inst.Dst.Kind == x86.KindReg {
		a := uops.GPR(inst.Dst.Reg)
		if size < 4 {
			t.emit(mk(uops.RegT4, a))
			t.writeGPR(a, uops.RegT4, size)
		} else {
			t.emit(mk(a, a))
		}
		return nil
	}
	t.load(inst.Dst.Mem, size, uops.RegT1, inst.Lock)
	t.emit(mk(uops.RegT2, uops.RegT1))
	t.store(inst.Dst.Mem, size, uops.RegT2, inst.Lock)
	return nil
}

// translateUnary handles single-operand read-modify-write forms
// (NOT/NEG/INC/DEC); compute receives (src, dst) uop registers.
func (t *tx) translateUnary(compute func(src, dst uops.ArchReg)) error {
	inst := t.inst
	size := t.size
	if inst.Dst.Kind == x86.KindReg {
		r := uops.GPR(inst.Dst.Reg)
		if size < 4 {
			compute(r, uops.RegT4)
			t.writeGPR(r, uops.RegT4, size)
		} else {
			compute(r, r)
		}
		return nil
	}
	t.load(inst.Dst.Mem, size, uops.RegT1, inst.Lock)
	compute(uops.RegT1, uops.RegT2)
	t.store(inst.Dst.Mem, size, uops.RegT2, inst.Lock)
	return nil
}

func (t *tx) translateImul() error {
	inst := t.inst
	size := t.size
	switch {
	case inst.Src2.Kind == x86.KindImm: // 3-operand: dst = src * imm
		src, _, _ := t.srcVal(inst.Src, size, uops.RegT0)
		t.movImm(uops.RegT1, inst.Src2.Imm)
		t.emit(uops.Uop{Op: uops.OpMull, Size: size, Rd: uops.GPR(inst.Dst.Reg),
			Ra: src, Rb: uops.RegT1, Rc: uops.RegFlags, SetFlags: uops.SetAll})
	case inst.Src.Kind != x86.KindNone: // 2-operand: dst *= src
		src, _, _ := t.srcVal(inst.Src, size, uops.RegT0)
		dst := uops.GPR(inst.Dst.Reg)
		t.emit(uops.Uop{Op: uops.OpMull, Size: size, Rd: dst, Ra: dst, Rb: src,
			Rc: uops.RegFlags, SetFlags: uops.SetAll})
	default: // 1-operand widening: RDX:RAX = RAX * r/m
		return t.translateMulDiv(uops.OpMulh, uops.OpMull)
	}
	return nil
}

// translateMulDiv implements the widening multiply and divide idioms
// that write the RDX:RAX pair. hiOp computes the RDX result, loOp the
// RAX result.
func (t *tx) translateMulDiv(hiOp, loOp uops.Op) error {
	inst := t.inst
	size := t.size
	if size == 1 {
		// 8-bit divide/multiply uses AH, which this model does not
		// implement; no guest code generated by the toolchain uses it.
		t.assist(uops.AssistUD)
		return nil
	}
	src, _, _ := t.srcVal(inst.Dst, size, uops.RegT0)
	isDiv := hiOp == uops.OpDiv || hiOp == uops.OpDivs
	if isDiv {
		// quotient/remainder: Ra=RAX (low), Rb=divisor, Rc=RDX (high).
		t.emit(uops.Uop{Op: hiOp, Size: size, Rd: uops.RegT1, Ra: uops.RegRAX,
			Rb: src, Rc: uops.RegRDX})
		rem := uops.OpRem
		if hiOp == uops.OpDivs {
			rem = uops.OpRems
		}
		t.emit(uops.Uop{Op: rem, Size: size, Rd: uops.RegT2, Ra: uops.RegRAX,
			Rb: src, Rc: uops.RegRDX})
		t.emit(uops.Uop{Op: uops.OpMov, Size: size, Rd: uops.RegRAX, Ra: uops.RegT1})
		t.emit(uops.Uop{Op: uops.OpMov, Size: size, Rd: uops.RegRDX, Ra: uops.RegT2})
		return nil
	}
	_ = loOp
	t.emit(uops.Uop{Op: hiOp, Size: size, Rd: uops.RegT1, Ra: uops.RegRAX, Rb: src,
		Rc: uops.RegFlags, SetFlags: uops.SetAll})
	t.emit(uops.Uop{Op: uops.OpMull, Size: size, Rd: uops.RegT2, Ra: uops.RegRAX, Rb: src})
	t.emit(uops.Uop{Op: uops.OpMov, Size: size, Rd: uops.RegRDX, Ra: uops.RegT1})
	t.emit(uops.Uop{Op: uops.OpMov, Size: size, Rd: uops.RegRAX, Ra: uops.RegT2})
	return nil
}

func (t *tx) translateJmp() error {
	inst := t.inst
	switch inst.Dst.Kind {
	case x86.KindImm:
		target := t.next + uint64(inst.Dst.Imm)
		t.emit(uops.Uop{Op: uops.OpBr, RIPTaken: target, RIPNot: t.next,
			Branch: uops.BranchUncond})
	case x86.KindReg:
		t.emit(uops.Uop{Op: uops.OpBrInd, Ra: uops.GPR(inst.Dst.Reg),
			Branch: uops.BranchIndirect, RIPNot: t.next})
	case x86.KindMem:
		t.load(inst.Dst.Mem, 8, uops.RegT0, false)
		t.emit(uops.Uop{Op: uops.OpBrInd, Ra: uops.RegT0,
			Branch: uops.BranchIndirect, RIPNot: t.next})
	}
	return nil
}

func (t *tx) translateCall() error {
	inst := t.inst
	// Resolve the target before touching RSP (the target may be RSP-
	// or stack-relative).
	indirect := inst.Dst.Kind != x86.KindImm
	if inst.Dst.Kind == x86.KindReg {
		t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: uops.RegT1, Ra: uops.GPR(inst.Dst.Reg)})
	} else if inst.Dst.Kind == x86.KindMem {
		t.load(inst.Dst.Mem, 8, uops.RegT1, false)
	}
	t.movImm(uops.RegT2, int64(t.next))
	t.store(x86.MemRef{Base: x86.RSP, Index: x86.RegNone, Disp: -8}, 8, uops.RegT2, false)
	t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRSP, Ra: uops.RegRSP,
		Rb: uops.RegZero, Imm: -8})
	if indirect {
		t.emit(uops.Uop{Op: uops.OpBrInd, Ra: uops.RegT1, Branch: uops.BranchCall,
			RIPNot: t.next})
	} else {
		target := t.next + uint64(inst.Dst.Imm)
		t.emit(uops.Uop{Op: uops.OpBr, RIPTaken: target, RIPNot: t.next,
			Branch: uops.BranchCall})
	}
	return nil
}

func (t *tx) translateXchg() error {
	inst := t.inst
	size := t.size
	if inst.Dst.Kind == x86.KindMem {
		// Always interlocked on x86 when a memory operand is involved.
		src := uops.GPR(inst.Src.Reg)
		t.load(inst.Dst.Mem, size, uops.RegT0, true)
		t.store(inst.Dst.Mem, size, src, true)
		t.writeGPR(src, uops.RegT0, size)
		return nil
	}
	d, s := uops.GPR(inst.Dst.Reg), uops.GPR(inst.Src.Reg)
	t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: uops.RegT0, Ra: d})
	t.writeGPR(d, s, size)
	t.writeGPR(s, uops.RegT0, size)
	return nil
}

func (t *tx) translateCmpxchg() error {
	inst := t.inst
	size := t.size
	src := uops.GPR(inst.Src.Reg)
	old := uops.RegT0
	if inst.Dst.Kind == x86.KindMem {
		t.load(inst.Dst.Mem, size, old, inst.Lock)
	} else {
		t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: old, Ra: uops.GPR(inst.Dst.Reg)})
	}
	// Compare RAX with the old value; sets ZF on match.
	t.emit(uops.Uop{Op: uops.OpSub, Size: size, Rd: uops.RegT5, Ra: uops.RegRAX,
		Rb: old, Rc: uops.RegFlags, SetFlags: uops.SetAll})
	// New value for the destination: src when equal, old otherwise.
	t.emit(uops.Uop{Op: uops.OpSel, Size: size, Rd: uops.RegT1, Ra: old, Rb: src,
		Rc: uops.RegFlags, Cond: x86.CondE})
	if inst.Dst.Kind == x86.KindMem {
		t.store(inst.Dst.Mem, size, uops.RegT1, inst.Lock)
	} else {
		t.writeGPR(uops.GPR(inst.Dst.Reg), uops.RegT1, size)
	}
	// RAX receives the old value when the exchange failed.
	t.emit(uops.Uop{Op: uops.OpSel, Size: size, Rd: uops.RegT2, Ra: old, Rb: uops.RegRAX,
		Rc: uops.RegFlags, Cond: x86.CondE})
	t.writeGPR(uops.RegRAX, uops.RegT2, size)
	return nil
}

func (t *tx) translateXadd() error {
	inst := t.inst
	size := t.size
	src := uops.GPR(inst.Src.Reg)
	if inst.Dst.Kind == x86.KindMem {
		t.load(inst.Dst.Mem, size, uops.RegT0, inst.Lock)
		t.emit(uops.Uop{Op: uops.OpAdd, Size: size, Rd: uops.RegT1, Ra: uops.RegT0,
			Rb: src, Rc: uops.RegFlags, SetFlags: uops.SetAll})
		t.store(inst.Dst.Mem, size, uops.RegT1, inst.Lock)
		t.writeGPR(src, uops.RegT0, size)
		return nil
	}
	d := uops.GPR(inst.Dst.Reg)
	t.emit(uops.Uop{Op: uops.OpMov, Size: 8, Rd: uops.RegT0, Ra: d})
	t.emit(uops.Uop{Op: uops.OpAdd, Size: size, Rd: uops.RegT1, Ra: uops.RegT0,
		Rb: src, Rc: uops.RegFlags, SetFlags: uops.SetAll})
	t.writeGPR(d, uops.RegT1, size)
	t.writeGPR(src, uops.RegT0, size)
	return nil
}

// translateString expands MOVS/STOS/LODS with optional REP. A REP form
// becomes two pseudo-instructions at the same RIP: an entry check
// (branch to the next instruction when RCX is zero, not counted as a
// committed x86 instruction) followed by one iteration ending in a
// loop-back branch. Each committed iteration counts as one x86
// instruction; the direction flag is assumed clear (forward), the
// convention all generated guest code follows.
func (t *tx) translateString() error {
	inst := t.inst
	size := t.size
	step := int64(size)

	if inst.Rep {
		t.emit(uops.Uop{Op: uops.OpBrZ, Ra: uops.RegRCX,
			RIPTaken: t.next, RIPNot: t.rip, Branch: uops.BranchCond,
			SOM: true, EOM: true, NoCount: true})
	}

	bodyStart := len(t.out)
	switch inst.Op {
	case x86.OpMovs:
		t.emit(uops.Uop{Op: uops.OpLd, Size: 8, Rd: uops.RegT0, Ra: uops.RegRSI,
			Rb: uops.RegZero, MemSize: size})
		t.emit(uops.Uop{Op: uops.OpSt, Size: 8, Rd: uops.RegZero, Ra: uops.RegRDI,
			Rb: uops.RegZero, Rc: uops.RegT0, MemSize: size})
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRSI, Ra: uops.RegRSI,
			Rb: uops.RegZero, Imm: step})
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRDI, Ra: uops.RegRDI,
			Rb: uops.RegZero, Imm: step})
	case x86.OpStos:
		t.emit(uops.Uop{Op: uops.OpSt, Size: 8, Rd: uops.RegZero, Ra: uops.RegRDI,
			Rb: uops.RegZero, Rc: uops.RegRAX, MemSize: size})
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRDI, Ra: uops.RegRDI,
			Rb: uops.RegZero, Imm: step})
	case x86.OpLods:
		if size < 4 {
			t.emit(uops.Uop{Op: uops.OpLd, Size: 8, Rd: uops.RegT4, Ra: uops.RegRSI,
				Rb: uops.RegZero, MemSize: size})
			t.writeGPR(uops.RegRAX, uops.RegT4, size)
		} else {
			t.emit(uops.Uop{Op: uops.OpLd, Size: size, Rd: uops.RegRAX, Ra: uops.RegRSI,
				Rb: uops.RegZero, MemSize: size})
		}
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRSI, Ra: uops.RegRSI,
			Rb: uops.RegZero, Imm: step})
	}

	if inst.Rep {
		t.emit(uops.Uop{Op: uops.OpAdda, Size: 8, Rd: uops.RegRCX, Ra: uops.RegRCX,
			Rb: uops.RegZero, Imm: -1})
		t.emit(uops.Uop{Op: uops.OpBrNZ, Ra: uops.RegRCX,
			RIPTaken: t.rip, RIPNot: t.next, Branch: uops.BranchCond})
		// Mark the iteration body as its own instruction.
		t.out[bodyStart].SOM = true
		t.out[len(t.out)-1].EOM = true
	}
	return nil
}
