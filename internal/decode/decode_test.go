package decode

import (
	"math/rand"
	"testing"

	"ptlsim/internal/uops"
	"ptlsim/internal/x86"
)

func mustTranslate(t *testing.T, inst x86.Inst, rip uint64) []uops.Uop {
	t.Helper()
	code, err := x86.Encode(&inst)
	if err != nil {
		t.Fatalf("encode %s: %v", &inst, err)
	}
	dec, err := x86.Decode(code)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	us, err := Translate(&dec, rip)
	if err != nil {
		t.Fatalf("translate %s: %v", &dec, err)
	}
	return us
}

// checkWellFormed asserts the SOM/EOM structure invariants every core
// depends on.
func checkWellFormed(t *testing.T, us []uops.Uop) {
	t.Helper()
	if len(us) == 0 {
		t.Fatal("empty uop sequence")
	}
	if !us[0].SOM {
		t.Fatal("first uop must be SOM")
	}
	if !us[len(us)-1].EOM {
		t.Fatal("last uop must be EOM")
	}
	open := false
	for i := range us {
		u := &us[i]
		if u.SOM {
			if open {
				t.Fatalf("uop %d: SOM inside open instruction", i)
			}
			open = true
		}
		if !open {
			t.Fatalf("uop %d: not inside an instruction", i)
		}
		if u.IsBranch() && !u.EOM {
			t.Fatalf("uop %d: branch not at EOM", i)
		}
		if u.EOM {
			open = false
		}
	}
	if open {
		t.Fatal("unterminated instruction")
	}
}

func TestTranslateSimpleForms(t *testing.T) {
	cases := []x86.Inst{
		{Op: x86.OpAdd, OpSize: 8, Dst: x86.R(x86.RAX), Src: x86.R(x86.RBX)},
		{Op: x86.OpAdd, OpSize: 8, Dst: x86.M(x86.RDI, 8), Src: x86.I(5)},
		{Op: x86.OpMov, OpSize: 4, Dst: x86.R(x86.RCX), Src: x86.M(x86.RSI, -4)},
		{Op: x86.OpCmp, OpSize: 8, Dst: x86.R(x86.RAX), Src: x86.I(0)},
		{Op: x86.OpPush, OpSize: 8, Dst: x86.R(x86.RBP)},
		{Op: x86.OpPop, OpSize: 8, Dst: x86.R(x86.RBP)},
		{Op: x86.OpJcc, Cond: x86.CondNE, OpSize: 8, Dst: x86.I(-20)},
		{Op: x86.OpCall, OpSize: 8, Dst: x86.I(100)},
		{Op: x86.OpRet, OpSize: 8},
		{Op: x86.OpLea, OpSize: 8, Dst: x86.R(x86.RAX), Src: x86.MIdx(x86.RBX, x86.RCX, 4, 16)},
		{Op: x86.OpXchg, OpSize: 8, Dst: x86.M(x86.RDI, 0), Src: x86.R(x86.RAX)},
		{Op: x86.OpCmpxchg, OpSize: 8, Lock: true, Dst: x86.M(x86.RDI, 0), Src: x86.R(x86.RBX)},
		{Op: x86.OpMovs, OpSize: 1, Rep: true},
		{Op: x86.OpSyscall, OpSize: 8},
		{Op: x86.OpHlt, OpSize: 8},
	}
	for _, inst := range cases {
		us := mustTranslate(t, inst, 0x1000)
		checkWellFormed(t, us)
	}
}

func TestCmpDoesNotWriteDest(t *testing.T) {
	us := mustTranslate(t, x86.Inst{Op: x86.OpCmp, OpSize: 8,
		Dst: x86.R(x86.RAX), Src: x86.R(x86.RBX)}, 0)
	for _, u := range us {
		if u.Rd == uops.RegRAX {
			t.Fatal("cmp must not write its destination register")
		}
	}
}

func TestCmpMemDoesNotStore(t *testing.T) {
	us := mustTranslate(t, x86.Inst{Op: x86.OpCmp, OpSize: 8,
		Dst: x86.M(x86.RDI, 0), Src: x86.I(3)}, 0)
	for _, u := range us {
		if u.IsStore() {
			t.Fatal("cmp with memory operand must not store")
		}
	}
}

func TestLockedRMWUsesAcqRel(t *testing.T) {
	us := mustTranslate(t, x86.Inst{Op: x86.OpAdd, OpSize: 8, Lock: true,
		Dst: x86.M(x86.RDI, 0), Src: x86.I(1)}, 0)
	var acq, rel bool
	for _, u := range us {
		if u.Op == uops.OpLdAcq {
			acq = true
		}
		if u.Op == uops.OpStRel {
			rel = true
		}
	}
	if !acq || !rel {
		t.Fatalf("locked RMW must use ld.acq/st.rel (acq=%v rel=%v)", acq, rel)
	}
	// Unlocked version must not.
	us = mustTranslate(t, x86.Inst{Op: x86.OpAdd, OpSize: 8,
		Dst: x86.M(x86.RDI, 0), Src: x86.I(1)}, 0)
	for _, u := range us {
		if u.Op == uops.OpLdAcq || u.Op == uops.OpStRel {
			t.Fatal("unlocked RMW must use plain ld/st")
		}
	}
}

func TestBranchTargets(t *testing.T) {
	rip := uint64(0x2000)
	inst := x86.Inst{Op: x86.OpJcc, Cond: x86.CondE, OpSize: 8, Dst: x86.I(0x30)}
	us := mustTranslate(t, inst, rip)
	br := us[len(us)-1]
	// Encoded length of jcc rel32 is 6 bytes.
	if br.RIPNot != rip+6 {
		t.Fatalf("fallthrough = %#x, want %#x", br.RIPNot, rip+6)
	}
	if br.RIPTaken != rip+6+0x30 {
		t.Fatalf("target = %#x", br.RIPTaken)
	}
}

func TestRepStructure(t *testing.T) {
	us := mustTranslate(t, x86.Inst{Op: x86.OpMovs, OpSize: 8, Rep: true}, 0x3000)
	checkWellFormed(t, us)
	if us[0].Op != uops.OpBrZ || !us[0].NoCount {
		t.Fatalf("first uop should be uncounted entry check, got %s", &us[0])
	}
	last := us[len(us)-1]
	if last.Op != uops.OpBrNZ || last.RIPTaken != 0x3000 {
		t.Fatalf("last uop should loop back to the instruction, got %s", &last)
	}
	// RIP-relative: check targets next instruction (movsq with rep = 3 bytes).
	if us[0].RIPTaken != 0x3003 {
		t.Fatalf("entry check target = %#x", us[0].RIPTaken)
	}
}

func TestRIPRelativeAddressing(t *testing.T) {
	inst := x86.Inst{Op: x86.OpMov, OpSize: 8, Dst: x86.R(x86.RAX),
		Src: x86.MemOp(x86.MemRef{Base: x86.RIP, Index: x86.RegNone, Scale: 1, Disp: 0x100})}
	us := mustTranslate(t, inst, 0x5000)
	ld := us[0]
	if !ld.IsLoad() {
		t.Fatal("expected load")
	}
	// Instruction is 7 bytes; address = 0x5007 + 0x100 absolute.
	if ld.Ra != uops.RegZero || ld.Imm != 0x5107 {
		t.Fatalf("rip-relative address = ra:%s imm:%#x", ld.Ra, ld.Imm)
	}
}

func TestFlagConsumersReadFlags(t *testing.T) {
	for _, inst := range []x86.Inst{
		{Op: x86.OpAdc, OpSize: 8, Dst: x86.R(x86.RAX), Src: x86.R(x86.RBX)},
		{Op: x86.OpJcc, Cond: x86.CondB, OpSize: 8, Dst: x86.I(4)},
		{Op: x86.OpCmovcc, Cond: x86.CondE, OpSize: 8, Dst: x86.R(x86.RAX), Src: x86.R(x86.RBX)},
		{Op: x86.OpSetcc, Cond: x86.CondG, OpSize: 1, Dst: x86.R(x86.RAX)},
	} {
		us := mustTranslate(t, inst, 0)
		found := false
		for _, u := range us {
			if u.Rc == uops.RegFlags {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: no uop reads flags", &inst)
		}
	}
}

func TestIncPreservesCarryMask(t *testing.T) {
	us := mustTranslate(t, x86.Inst{Op: x86.OpInc, OpSize: 8, Dst: x86.R(x86.RAX)}, 0)
	for _, u := range us {
		if u.SetFlags&uops.SetCF != 0 {
			t.Fatal("inc must not write CF")
		}
	}
}

// Every decodable instruction must translate into a well-formed uop
// sequence (or a #UD assist) — the front end can never be wedged by
// bytes it decoded successfully.
func TestTranslateTotalityFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	buf := make([]byte, 18)
	translated := 0
	for i := 0; i < 30000; i++ {
		r.Read(buf)
		inst, err := x86.Decode(buf)
		if err != nil {
			continue
		}
		us, terr := Translate(&inst, 0x400000)
		if terr != nil {
			// Acceptable only if it becomes a UD in BuildBB; Translate
			// itself should handle everything decodable.
			t.Fatalf("decodable %s did not translate: %v", &inst, terr)
		}
		checkWellFormed(t, us)
		translated++
	}
	if translated < 1000 {
		t.Fatalf("fuzz generated too few valid instructions: %d", translated)
	}
}

// --- basic block builder ---

// memFetcher serves code bytes from a flat map of pages.
type memFetcher map[uint64][]byte // page base -> 4096 bytes

func (m memFetcher) fetch(va uint64, buf []byte) (int, uops.Fault) {
	total := 0
	for total < len(buf) {
		page, ok := m[(va+uint64(total))&^uint64(4095)]
		if !ok {
			if total == 0 {
				return 0, uops.FaultPageExec
			}
			return total, uops.FaultNone
		}
		off := (va + uint64(total)) & 4095
		n := copy(buf[total:], page[off:])
		total += n
	}
	return total, uops.FaultNone
}

func pageWith(code []byte, base uint64) memFetcher {
	m := memFetcher{}
	for i := 0; i < len(code); i += 4096 {
		pg := make([]byte, 4096)
		copy(pg, code[i:])
		m[base+uint64(i)] = pg
	}
	return m
}

func TestBuildBBEndsAtBranch(t *testing.T) {
	a := x86.NewAssembler(0x1000)
	a.Mov(x86.R(x86.RAX), x86.I(1))
	a.Add(x86.R(x86.RAX), x86.I(2))
	l := a.NewLabel()
	a.Jmp(l)
	a.Bind(l)
	a.Nop() // should not be included
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	bb, fault := BuildBB(pageWith(code, 0x1000).fetch, 0x1000)
	if fault != uops.FaultNone {
		t.Fatal(fault)
	}
	if !bb.EndsInBranch || bb.NumX86 != 3 {
		t.Fatalf("bb: branch=%v insns=%d", bb.EndsInBranch, bb.NumX86)
	}
	checkWellFormed(t, bb.Uops)
}

func TestBuildBBCapsLength(t *testing.T) {
	a := x86.NewAssembler(0x1000)
	for i := 0; i < 100; i++ {
		a.Add(x86.R(x86.RAX), x86.I(1))
	}
	code, _ := a.Bytes()
	bb, fault := BuildBB(pageWith(code, 0x1000).fetch, 0x1000)
	if fault != uops.FaultNone {
		t.Fatal(fault)
	}
	if bb.EndsInBranch {
		t.Fatal("capped block should not claim a branch ending")
	}
	if bb.NumX86 != MaxBBX86Insns {
		t.Fatalf("insns = %d, want cap %d", bb.NumX86, MaxBBX86Insns)
	}
	// Fall-through address continues exactly after the included insns.
	if bb.FallThrough() != 0x1000+bb.X86Len {
		t.Fatal("fallthrough mismatch")
	}
}

func TestBuildBBFetchFault(t *testing.T) {
	if _, fault := BuildBB(memFetcher{}.fetch, 0x9999000); fault == uops.FaultNone {
		t.Fatal("fetch from unmapped page must fault")
	}
}

func TestBuildBBPartialPage(t *testing.T) {
	// Code runs to the end of a mapped page, next page unmapped; the
	// block must end before the instruction that crosses.
	a := x86.NewAssembler(0x1000)
	for a.Len() < 4093 {
		a.Nop()
	}
	a.Mov(x86.R(x86.RAX), x86.I(1)) // crosses into unmapped page
	code, _ := a.Bytes()
	m := memFetcher{0x1000: append(make([]byte, 0, 4096), code[:4096]...)}
	// pad to 4096
	for len(m[0x1000]) < 4096 {
		m[0x1000] = append(m[0x1000], 0)
	}
	bb, fault := BuildBB(m.fetch, 0x1000)
	if fault != uops.FaultNone {
		t.Fatal(fault)
	}
	if bb.NumX86 > MaxBBX86Insns || bb.X86Len > 4093 {
		t.Fatalf("block should stop at page edge: len=%d", bb.X86Len)
	}
}

func TestBuildBBUndefinedBecomesUD(t *testing.T) {
	code := []byte{0x90, 0x0F, 0xFF, 0x90} // nop, undefined, nop
	bb, fault := BuildBB(pageWith(code, 0x1000).fetch, 0x1000)
	if fault != uops.FaultNone {
		t.Fatal(fault)
	}
	last := bb.Uops[len(bb.Uops)-1]
	if last.Op != uops.OpAssist || last.Assist != uops.AssistUD {
		t.Fatalf("undefined opcode should end block with UD assist, got %s", &last)
	}
}
