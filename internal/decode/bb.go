package decode

import (
	"errors"

	"ptlsim/internal/uops"
	"ptlsim/internal/x86"
)

// Basic block construction limits (PTLsim caps block length so the
// frontend can rename a block per cycle group).
const (
	MaxBBX86Insns = 24
	MaxBBUops     = 96
)

// BasicBlock is a decoded, translated run of x86 instructions ending at
// a branch (or at the block size cap). It is what the basic block cache
// stores: the simulator fetches pre-decoded uops from here instead of
// re-decoding x86 bytes every cycle, without affecting the modeled
// timing (I-cache accesses are still simulated).
type BasicBlock struct {
	RIP    uint64
	Uops   []uops.Uop
	X86Len uint64 // total bytes of x86 code covered
	NumX86 int    // instructions in the block (REP check not counted)

	// EndsInBranch reports whether the final uop redirects fetch; if
	// false the block fell off the cap and fetch falls through to
	// RIP+X86Len.
	EndsInBranch bool
}

// FallThrough returns the next fetch RIP when the block does not end
// in a taken branch.
func (bb *BasicBlock) FallThrough() uint64 { return bb.RIP + bb.X86Len }

// FetchFunc reads guest code bytes at a virtual address into buf,
// returning how many contiguous bytes were readable and a fault if the
// very first byte cannot be fetched. Page-crossing instructions are
// handled by the builder calling again at the next page.
type FetchFunc func(va uint64, buf []byte) (int, uops.Fault)

// BuildBB decodes and translates a basic block starting at rip. A
// fetch fault on the first instruction is returned to the caller (the
// core delivers a page fault); an undefined instruction becomes a #UD
// assist uop so the fault is raised precisely when it executes.
func BuildBB(fetch FetchFunc, rip uint64) (*BasicBlock, uops.Fault) {
	bb := &BasicBlock{RIP: rip}
	var window [x86.MaxInstLen]byte
	cur := rip
	for bb.NumX86 < MaxBBX86Insns && len(bb.Uops) < MaxBBUops {
		n, fault := fetch(cur, window[:])
		if n == 0 {
			if bb.NumX86 == 0 {
				if fault == uops.FaultNone {
					fault = uops.FaultPageExec
				}
				return nil, fault
			}
			// Fault will be taken when fetch reaches this RIP.
			break
		}
		inst, err := x86.Decode(window[:n])
		if err != nil {
			if errors.Is(err, x86.ErrTruncated) && n < len(window) {
				// Instruction runs into an unfetchable page: fault on
				// reaching it, not now.
				if bb.NumX86 == 0 {
					return nil, uops.FaultPageExec
				}
				break
			}
			// Undefined opcode: raise #UD when executed.
			ud := uops.Uop{Op: uops.OpAssist, Assist: uops.AssistUD,
				RIP: cur, X86Len: 1, SOM: true, EOM: true}
			bb.Uops = append(bb.Uops, ud)
			bb.NumX86++
			bb.X86Len = cur + 1 - rip
			bb.EndsInBranch = true // treat as block end
			return bb, uops.FaultNone
		}
		us, terr := Translate(&inst, cur)
		if terr != nil {
			ud := uops.Uop{Op: uops.OpAssist, Assist: uops.AssistUD,
				RIP: cur, X86Len: inst.Len, SOM: true, EOM: true}
			us = []uops.Uop{ud}
		}
		bb.Uops = append(bb.Uops, us...)
		bb.NumX86++
		cur += uint64(inst.Len)
		bb.X86Len = cur - rip
		if inst.IsBranch() {
			bb.EndsInBranch = true
			break
		}
	}
	if len(bb.Uops) == 0 {
		return nil, uops.FaultPageExec
	}
	return bb, uops.FaultNone
}
