package tlb

import (
	"math/rand"
	"testing"
)

func TestLookupMissThenHit(t *testing.T) {
	tl := New(32, 4)
	if _, ok := tl.Lookup(5); ok {
		t.Fatal("empty TLB should miss")
	}
	tl.Insert(Entry{VPN: 5, MFN: 0x42, Flags: 3})
	e, ok := tl.Lookup(5)
	if !ok || e.MFN != 0x42 || e.Flags != 3 {
		t.Fatalf("hit = %v %+v", ok, e)
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	tl := New(8, 2)
	tl.Insert(Entry{VPN: 1, MFN: 10})
	tl.Insert(Entry{VPN: 1, MFN: 20})
	e, ok := tl.Lookup(1)
	if !ok || e.MFN != 20 {
		t.Fatalf("refresh failed: %v %+v", ok, e)
	}
	// Must not occupy two ways: fill the rest of the set and confirm
	// capacity behaves as 2-way.
	tl.Insert(Entry{VPN: 9, MFN: 30}) // same set as 1 (8/2 = 4 sets)
	if _, ok := tl.Lookup(1); !ok {
		t.Fatal("vpn 1 evicted too early")
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := New(4, 4) // one set, 4 ways
	for vpn := uint64(0); vpn < 4; vpn++ {
		tl.Insert(Entry{VPN: vpn * 4}) // all map to set 0
	}
	// Touch 0, 4, 8 so 12 is LRU.
	tl.Lookup(0)
	tl.Lookup(4)
	tl.Lookup(8)
	tl.Insert(Entry{VPN: 100})
	if _, ok := tl.Lookup(12); ok {
		t.Fatal("LRU entry 12 should have been evicted")
	}
	for _, vpn := range []uint64{0, 4, 8, 100} {
		if _, ok := tl.Lookup(vpn); !ok {
			t.Fatalf("vpn %d should still be resident", vpn)
		}
	}
}

// Property: LRU stack property — with a single set, after any access
// sequence the resident entries are exactly the assoc most recently
// used distinct VPNs.
func TestLRUStackProperty(t *testing.T) {
	const assoc = 4
	tl := New(assoc, assoc)
	r := rand.New(rand.NewSource(11))
	var trace []uint64
	for i := 0; i < 5000; i++ {
		vpn := uint64(r.Intn(12))
		trace = append(trace, vpn)
		if _, ok := tl.Lookup(vpn); !ok {
			tl.Insert(Entry{VPN: vpn})
		}
		// Compute the expected resident set from the trace suffix.
		seen := map[uint64]bool{}
		var mru []uint64
		for j := len(trace) - 1; j >= 0 && len(mru) < assoc; j-- {
			if !seen[trace[j]] {
				seen[trace[j]] = true
				mru = append(mru, trace[j])
			}
		}
		for _, want := range mru {
			probe := New(1, 1) // do not disturb LRU in tl; peek manually
			_ = probe
			found := false
			for _, w := range tl.sets[0] {
				if w.valid && w.entry.VPN == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("step %d: vpn %d should be resident (MRU set %v)", i, want, mru)
			}
		}
	}
}

func TestFlush(t *testing.T) {
	tl := New(16, 4)
	for vpn := uint64(0); vpn < 16; vpn++ {
		tl.Insert(Entry{VPN: vpn})
	}
	tl.Flush()
	for vpn := uint64(0); vpn < 16; vpn++ {
		if _, ok := tl.Lookup(vpn); ok {
			t.Fatalf("vpn %d survived flush", vpn)
		}
	}
}

func TestFlushPage(t *testing.T) {
	tl := New(16, 4)
	tl.Insert(Entry{VPN: 3})
	tl.Insert(Entry{VPN: 7})
	tl.FlushPage(3)
	if _, ok := tl.Lookup(3); ok {
		t.Fatal("vpn 3 should be flushed")
	}
	if _, ok := tl.Lookup(7); !ok {
		t.Fatal("vpn 7 should survive")
	}
}

func TestHierarchyPromotion(t *testing.T) {
	h := NewHierarchy(4, 4, 64, 4, 24)
	h.Insert(Entry{VPN: 1, MFN: 11})
	// Evict vpn 1 from tiny L1 by filling it.
	for vpn := uint64(100); vpn < 104; vpn++ {
		h.Insert(Entry{VPN: vpn})
	}
	e, res := h.Lookup(1)
	if res != HitL2 || e.MFN != 11 {
		t.Fatalf("expected L2 hit, got %v %+v", res, e)
	}
	// Promoted: next lookup hits L1.
	if _, res = h.Lookup(1); res != HitL1 {
		t.Fatalf("expected L1 hit after promotion, got %v", res)
	}
}

func TestHierarchyMiss(t *testing.T) {
	h := NewHierarchy(4, 4, 64, 4, 24)
	if _, res := h.Lookup(42); res != Miss {
		t.Fatalf("expected miss, got %v", res)
	}
}

func TestPDECache(t *testing.T) {
	h := NewHierarchy(4, 4, 64, 4, 24)
	h.Insert(Entry{VPN: 0x1000})
	if !h.PDEHit(0x1000) {
		t.Fatal("PDE of inserted page should be cached")
	}
	// Neighboring page under the same PDE (same vpn>>9) also hits.
	if !h.PDEHit(0x1001) {
		t.Fatal("sibling page under same PDE should hit")
	}
	if h.PDEHit(0x2000000) {
		t.Fatal("unrelated PDE should miss")
	}
	// Single-level hierarchy: PDE always misses.
	solo := NewHierarchy(32, 32, 0, 0, 0)
	solo.Insert(Entry{VPN: 5})
	if solo.PDEHit(5) {
		t.Fatal("no PDE cache configured")
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(4, 4, 64, 4, 24)
	h.Insert(Entry{VPN: 9})
	h.Flush()
	if _, res := h.Lookup(9); res != Miss {
		t.Fatal("flush must clear both levels")
	}
	h.Insert(Entry{VPN: 9})
	h.FlushPage(9)
	if _, res := h.Lookup(9); res != Miss {
		t.Fatal("page flush must clear both levels")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	if err := CheckGeometry(12, 4); err == nil { // 3 sets
		t.Fatal("non-power-of-two set count must fail validation")
	}
	if err := CheckGeometry(0, 1); err == nil {
		t.Fatal("zero entries must fail validation")
	}
	if err := CheckGeometry(13, 4); err == nil {
		t.Fatal("entries not a multiple of assoc must fail validation")
	}
	if err := CheckGeometry(32, 4); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	// The constructor itself no longer panics: ill-formed geometries
	// round up so a sick config cannot take down a batch process.
	tl := New(12, 4)
	if tl.Size() != 16 { // 4 sets x 4 ways after rounding
		t.Fatalf("rounded size = %d, want 16", tl.Size())
	}
}
