// Package tlb models translation lookaside buffers: the single-level
// TLBs used by the simulated core (the paper's PTLsim models a 32-entry
// L1 DTLB/ITLB), and the richer two-level hierarchy with a PDE cache
// found in real K8 silicon (32 L1 entries, 1024 L2 entries 4-way, and a
// 24-entry page directory entry cache) — the difference behind the
// DTLB-miss gap in Table 1.
package tlb

import "fmt"

// CheckGeometry validates a TLB geometry (total entries and
// associativity) without constructing it. Core configurations call
// this from their Validate methods so a bad CLI flag produces a usable
// error message instead of a stack trace.
func CheckGeometry(entries, assoc int) error {
	if entries <= 0 {
		return fmt.Errorf("tlb: entry count %d must be positive", entries)
	}
	if assoc <= 0 {
		return fmt.Errorf("tlb: associativity %d must be positive", assoc)
	}
	if entries%assoc != 0 {
		return fmt.Errorf("tlb: %d entries not a multiple of associativity %d", entries, assoc)
	}
	nsets := entries / assoc
	if nsets&(nsets-1) != 0 {
		return fmt.Errorf("tlb: set count %d (entries %d / assoc %d) must be a power of two",
			nsets, entries, assoc)
	}
	return nil
}

// ceilPow2 rounds n up to the next power of two (n >= 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Entry is one TLB entry: a virtual page number mapped to a machine
// frame number with its leaf PTE permission bits.
type Entry struct {
	VPN   uint64
	MFN   uint64
	Flags uint64 // leaf PTE flag bits (present/writable/user/NX/dirty)
}

type way struct {
	entry Entry
	valid bool
	lru   uint64 // last-use stamp
}

// TLB is a set-associative TLB with true-LRU replacement.
type TLB struct {
	sets    [][]way
	setMask uint64
	stamp   uint64
}

// New creates a TLB with the given total entry count and associativity.
// Ill-formed geometries (see CheckGeometry) are rounded up to the next
// power-of-two set count rather than rejected here; configurations
// that pass Validate never trigger the rounding.
func New(entries, assoc int) *TLB {
	if assoc <= 0 {
		assoc = 1
	}
	nsets := entries / assoc
	if nsets <= 0 {
		nsets = 1
	}
	nsets = ceilPow2(nsets)
	t := &TLB{sets: make([][]way, nsets), setMask: uint64(nsets - 1)}
	for i := range t.sets {
		t.sets[i] = make([]way, assoc)
	}
	return t
}

// Lookup probes the TLB for vpn, updating LRU state on a hit.
func (t *TLB) Lookup(vpn uint64) (Entry, bool) {
	set := t.sets[vpn&t.setMask]
	for i := range set {
		if set[i].valid && set[i].entry.VPN == vpn {
			t.stamp++
			set[i].lru = t.stamp
			return set[i].entry, true
		}
	}
	return Entry{}, false
}

// Insert fills the TLB with e, evicting the LRU way of its set. If the
// VPN is already present its entry is refreshed in place.
func (t *TLB) Insert(e Entry) {
	set := t.sets[e.VPN&t.setMask]
	t.stamp++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].entry.VPN == e.VPN {
			set[i].entry = e
			set[i].lru = t.stamp
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = way{entry: e, valid: true, lru: t.stamp}
}

// Flush invalidates every entry (CR3 reload semantics; no global pages
// or ASIDs are modeled, matching the paper's configuration).
func (t *TLB) Flush() {
	for _, set := range t.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// FlushPage invalidates the entry for vpn if present (invlpg).
func (t *TLB) FlushPage(vpn uint64) {
	set := t.sets[vpn&t.setMask]
	for i := range set {
		if set[i].valid && set[i].entry.VPN == vpn {
			set[i].valid = false
		}
	}
}

// Size returns the total number of entries.
func (t *TLB) Size() int { return len(t.sets) * len(t.sets[0]) }

// HierarchyResult reports which level of a two-level TLB hierarchy
// satisfied a lookup.
type HierarchyResult uint8

// Hierarchy lookup outcomes.
const (
	HitL1 HierarchyResult = iota
	HitL2
	Miss
)

// Hierarchy is a two-level TLB with an optional PDE cache, modeling the
// K8's translation machinery. A PDE-cache hit shortens the page walk
// from four loads to one (only the final PT level must be read).
type Hierarchy struct {
	L1  *TLB
	L2  *TLB // may be nil for a single-level configuration
	PDE *TLB // page-directory-entry cache keyed by vpn>>9; may be nil
}

// NewHierarchy builds a two-level hierarchy. l2Entries or pdeEntries of
// zero disable that structure.
func NewHierarchy(l1Entries, l1Assoc, l2Entries, l2Assoc, pdeEntries int) *Hierarchy {
	h := &Hierarchy{L1: New(l1Entries, l1Assoc)}
	if l2Entries > 0 {
		h.L2 = New(l2Entries, l2Assoc)
	}
	if pdeEntries > 0 {
		h.PDE = New(pdeEntries, pdeEntries) // fully associative
	}
	return h
}

// Lookup probes L1 then L2; an L2 hit is promoted into L1.
func (h *Hierarchy) Lookup(vpn uint64) (Entry, HierarchyResult) {
	if e, ok := h.L1.Lookup(vpn); ok {
		return e, HitL1
	}
	if h.L2 != nil {
		if e, ok := h.L2.Lookup(vpn); ok {
			h.L1.Insert(e)
			return e, HitL2
		}
	}
	return Entry{}, Miss
}

// Insert fills both levels after a walk, and records the PDE covering
// the page in the PDE cache.
func (h *Hierarchy) Insert(e Entry) {
	h.L1.Insert(e)
	if h.L2 != nil {
		h.L2.Insert(e)
	}
	if h.PDE != nil {
		h.PDE.Insert(Entry{VPN: e.VPN >> 9})
	}
}

// PDEHit reports whether a walk for vpn could be shortened by the PDE
// cache (the page's directory entry is cached).
func (h *Hierarchy) PDEHit(vpn uint64) bool {
	if h.PDE == nil {
		return false
	}
	_, ok := h.PDE.Lookup(vpn >> 9)
	return ok
}

// Flush invalidates all levels.
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	if h.L2 != nil {
		h.L2.Flush()
	}
	if h.PDE != nil {
		h.PDE.Flush()
	}
}

// FlushPage invalidates one page in all levels.
func (h *Hierarchy) FlushPage(vpn uint64) {
	h.L1.FlushPage(vpn)
	if h.L2 != nil {
		h.L2.FlushPage(vpn)
	}
}
