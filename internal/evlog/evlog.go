// Package evlog is the pipeline event log: a fixed-size, allocation-free
// ring buffer of packed per-uop events, recording every uop's journey
// through the out-of-order pipeline (fetch, rename, dispatch, issue,
// replay, complete, commit) plus the machine-level carrier events that
// punctuate it (branch redirects, full flushes, interrupts, assists,
// SMC invalidations). This is the paper's signature debugging aid (§11):
// when a run dies — divergence, invariant failure, watchdog — the tail
// of the ring is dumped alongside the SimError so the last few thousand
// cycles of pipeline activity are inspectable uop by uop.
//
// Recording is designed to disappear from the hot loop when disabled:
// cores hold a *Log that is nil unless the user asked for an event log,
// and every hook site is gated on a single `ev != nil` check that the
// branch predictor eats. When enabled, Record is one indexed store and
// an increment — no allocation, no locking (each core owns its Log or
// shares one only from the single simulation goroutine).
package evlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ptlsim/internal/uops"
)

// Stage identifies which pipeline stage (or machine-level carrier
// event) an Event records.
type Stage uint8

const (
	StageFetch    Stage = iota // uop entered the fetch queue
	StageRename                // uop allocated ROB/phys-reg resources
	StageDispatch              // uop entered an issue-cluster queue
	StageIssue                 // uop began execution on a cluster
	StageReplay                // uop bounced back to its issue queue
	StageComplete              // uop's result wrote back
	StageCommit                // uop retired architecturally
	// Carrier events: machine-level occurrences that are not a single
	// uop's stage transition. Seq names the triggering uop where there
	// is one; Arg carries the event-specific payload (redirect target,
	// interrupt vector, ...).
	StageRedirect  // branch mispredict/load-hoist redirect (Arg = new RIP)
	StageFlush     // full pipeline flush (Arg = restart RIP)
	StageInterrupt // external interrupt delivered at commit (Arg = vector)
	StageAssist    // microcode assist dispatched (Arg = assist RIP)
	StageSMC       // self-modifying-code invalidation flush
	numStages
)

var stageNames = [numStages]string{
	"fetch", "rename", "dispatch", "issue", "replay", "complete",
	"commit", "redirect", "flush", "interrupt", "assist", "smc",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage%d", uint8(s))
}

// Event flags.
const (
	FlagAnnulled   uint8 = 1 << iota // uop was squashed by a later flush/redirect
	FlagMispredict                   // branch uop that resolved mispredicted
	FlagReplayed                     // uop issued at least once before this event
	FlagSeqCore                      // recorded by the sequential core, not the OoO pipeline
)

// Event is one packed pipeline event. The struct is pointer-free and
// 48 bytes so a ring of them is a single flat allocation the GC never
// scans. Seq is the core-local uop sequence number (monotonic per
// core); carrier events reuse the Seq of the uop that triggered them.
type Event struct {
	Cycle  uint64
	Seq    uint64
	RIP    uint64
	Arg    uint64 // stage-specific: redirect target, store address, vector...
	Op     uint16 // uops.Op of the uop (0xffff for carriers with no uop)
	Stage  Stage
	Core   uint8
	Thread uint8
	Flags  uint8
	_      [2]byte
}

// NoOp marks a carrier event with no associated uop opcode.
const NoOp uint16 = 0xffff

// OpName renders an Event.Op for humans.
func OpName(op uint16) string {
	if op == NoOp {
		return "-"
	}
	return uops.Op(op).String()
}

// Log is the ring buffer. Capacity is rounded up to a power of two so
// indexing is a mask, not a modulo. The zero Log is unusable; use New.
// A Log is not safe for concurrent Record — it belongs to the single
// simulation goroutine, exactly like the cores that feed it.
type Log struct {
	buf  []Event
	mask uint64
	next uint64 // monotonic count of events ever recorded
}

// DefaultSize is the default ring capacity (events). At ~5 events per
// uop this holds the last few thousand committed instructions — enough
// context to see the flush storm or stall that preceded a failure.
const DefaultSize = 1 << 14

// New creates a ring holding at least size events (rounded up to a
// power of two, minimum 64). size <= 0 selects DefaultSize.
func New(size int) *Log {
	if size <= 0 {
		size = DefaultSize
	}
	n := 64
	for n < size {
		n <<= 1
	}
	return &Log{buf: make([]Event, n), mask: uint64(n - 1)}
}

// Record appends one event, overwriting the oldest when full.
func (l *Log) Record(e Event) {
	l.buf[l.next&l.mask] = e
	l.next++
}

// Len reports how many events are currently held (≤ capacity).
func (l *Log) Len() int {
	if l.next < uint64(len(l.buf)) {
		return int(l.next)
	}
	return len(l.buf)
}

// Cap reports the ring capacity.
func (l *Log) Cap() int { return len(l.buf) }

// Recorded reports the total number of events ever recorded, including
// those already overwritten.
func (l *Log) Recorded() uint64 { return l.next }

// Annul backpatches the ring after a pipeline flush: every uop event
// recorded for (core, thread) with Seq > afterSeq is flagged annulled,
// so exporters render squashed work distinctly instead of presenting
// wrong-path uops as if they retired. Carrier events are left alone —
// the flush itself is history worth keeping. The walk covers the whole
// ring: events are recorded in pipeline-activity order, not seq order,
// so no earlier stopping point is sound. Flushes are rare and the ring
// is small; this only runs when the event log is enabled at all.
func (l *Log) Annul(core, thread uint8, afterSeq uint64) {
	n := uint64(l.Len())
	for i := uint64(1); i <= n; i++ {
		e := &l.buf[(l.next-i)&l.mask]
		if e.Core == core && e.Thread == thread && e.Seq > afterSeq && e.Stage < StageRedirect {
			e.Flags |= FlagAnnulled
		}
	}
}

// Events returns the held events oldest-first, copied out of the ring.
func (l *Log) Events() []Event {
	n := uint64(l.Len())
	out := make([]Event, n)
	for i := uint64(0); i < n; i++ {
		out[i] = l.buf[(l.next-n+i)&l.mask]
	}
	return out
}

// Tail returns at most the newest n events, oldest-first.
func (l *Log) Tail(n int) []Event {
	if held := l.Len(); n > held {
		n = held
	}
	if n <= 0 {
		return nil
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = l.buf[(l.next-uint64(n-i))&l.mask]
	}
	return out
}

// jsonEvent is the on-disk form: named fields so the file is greppable
// and stable across struct layout changes.
type jsonEvent struct {
	Cycle  uint64 `json:"cycle"`
	Seq    uint64 `json:"seq"`
	RIP    uint64 `json:"rip"`
	Arg    uint64 `json:"arg,omitempty"`
	Op     uint16 `json:"op"`
	Stage  string `json:"stage"`
	Core   uint8  `json:"core"`
	Thread uint8  `json:"thread"`
	Flags  uint8  `json:"flags,omitempty"`
}

// WriteJSON writes events as JSONL (one event per line) prefixed by a
// header line, the interchange format between `ptlsim -evlog` and
// `ptlstats -pipeline`.
func WriteJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"evlog\":1,\"events\":%d}\n", len(events)); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i := range events {
		e := &events[i]
		je := jsonEvent{
			Cycle: e.Cycle, Seq: e.Seq, RIP: e.RIP, Arg: e.Arg,
			Op: e.Op, Stage: e.Stage.String(), Core: e.Core,
			Thread: e.Thread, Flags: e.Flags,
		}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON parses a stream written by WriteJSON.
func ReadJSON(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("evlog: empty stream")
	}
	var hdr struct {
		Evlog int `json:"evlog"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Evlog != 1 {
		return nil, fmt.Errorf("evlog: not an event log stream")
	}
	stageByName := map[string]Stage{}
	for s := Stage(0); s < numStages; s++ {
		stageByName[s.String()] = s
	}
	var out []Event
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			return nil, fmt.Errorf("evlog: line %d: %w", len(out)+2, err)
		}
		st, ok := stageByName[je.Stage]
		if !ok {
			return nil, fmt.Errorf("evlog: line %d: unknown stage %q", len(out)+2, je.Stage)
		}
		out = append(out, Event{
			Cycle: je.Cycle, Seq: je.Seq, RIP: je.RIP, Arg: je.Arg,
			Op: je.Op, Stage: st, Core: je.Core, Thread: je.Thread,
			Flags: je.Flags,
		})
	}
	return out, sc.Err()
}
