// Exporters: three views of the same event stream.
//
//   - WriteText: the per-uop pipeline dump attached to SimError payloads
//     and triage journals — a fixed-width table a human greps.
//   - WriteChromeTrace: Chrome trace_event JSON (chrome://tracing /
//     about:tracing / Perfetto) — one track per hardware thread, one
//     slice per pipeline stage occupancy, instant markers for flushes.
//   - WriteKonata: the Kanata text format the Konata pipeline viewer
//     renders as the classic cycle-by-cycle pipeline diagram.
package evlog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

func flagString(f uint8) string {
	s := ""
	if f&FlagAnnulled != 0 {
		s += "A"
	}
	if f&FlagMispredict != 0 {
		s += "M"
	}
	if f&FlagReplayed != 0 {
		s += "R"
	}
	if f&FlagSeqCore != 0 {
		s += "S"
	}
	if s == "" {
		return "-"
	}
	return s
}

// WriteText renders events oldest-first as a fixed-width table.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%10s %8s c/t %-9s %-10s %-16s %5s %s\n",
		"CYCLE", "SEQ", "STAGE", "OP", "RIP", "FLAGS", "ARG")
	for i := range events {
		e := &events[i]
		arg := ""
		if e.Arg != 0 {
			arg = fmt.Sprintf("%#x", e.Arg)
		}
		fmt.Fprintf(bw, "%10d %8d %d/%d %-9s %-10s %016x %5s %s\n",
			e.Cycle, e.Seq, e.Core, e.Thread, e.Stage.String(),
			OpName(e.Op), e.RIP, flagString(e.Flags), arg)
	}
	return bw.Flush()
}

// Text renders events as a string (convenience for SimError payloads).
func Text(events []Event) string {
	var b writerBuilder
	WriteText(&b, events)
	return b.String()
}

type writerBuilder struct{ buf []byte }

func (b *writerBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *writerBuilder) String() string { return string(b.buf) }

// uopKey identifies one dynamic uop across its events.
type uopKey struct {
	core, thread uint8
	seq          uint64
}

// uopLife is a uop's reconstructed lifetime: the cycle each stage was
// observed, plus identity carried from the first event.
type uopLife struct {
	key    uopKey
	rip    uint64
	op     uint16
	flags  uint8
	stages [numStages]uint64 // cycle+1 per stage (0 = not observed)
	order  int               // first-appearance order for stable output
}

func (u *uopLife) at(s Stage) (uint64, bool) {
	v := u.stages[s]
	return v - 1, v != 0
}

// collect groups uop-stage events into lifetimes and returns carriers
// separately. Lifetimes come back in first-appearance order.
func collect(events []Event) ([]*uopLife, []Event) {
	lives := map[uopKey]*uopLife{}
	var order []*uopLife
	var carriers []Event
	for i := range events {
		e := &events[i]
		if e.Stage >= StageRedirect {
			carriers = append(carriers, *e)
			continue
		}
		k := uopKey{e.Core, e.Thread, e.Seq}
		u := lives[k]
		if u == nil {
			u = &uopLife{key: k, rip: e.RIP, op: e.Op, order: len(order)}
			lives[k] = u
			order = append(order, u)
		}
		u.flags |= e.Flags
		// Keep the first observation of each stage (replays re-issue:
		// the replay event itself records the bounce).
		if u.stages[e.Stage] == 0 {
			u.stages[e.Stage] = e.Cycle + 1
		}
		if e.Op != NoOp {
			u.op = e.Op
		}
	}
	return order, carriers
}

// WriteChromeTrace writes Chrome trace_event JSON (JSON Array Format).
// Cycles map to microseconds, cores to processes, hardware threads to
// thread tracks. Each uop contributes one complete ("X") slice per
// stage it occupied, named by its opcode; carrier events become
// instant ("i") markers. Load the output in about:tracing or Perfetto.
func WriteChromeTrace(w io.Writer, events []Event) error {
	lives, carriers := collect(events)
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: name processes (cores) and threads.
	seen := map[[2]uint8]bool{}
	for _, u := range lives {
		ct := [2]uint8{u.key.core, u.key.thread}
		if seen[ct] {
			continue
		}
		seen[ct] = true
		emit(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"core%d"}}`,
			u.key.core, u.key.core)
		emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"thread%d"}}`,
			u.key.core, u.key.thread, u.key.thread)
	}

	// One slice per occupied stage span: a stage's slice runs from its
	// observation to the next observed stage (minimum 1 cycle).
	spanStages := []Stage{StageFetch, StageRename, StageDispatch, StageIssue, StageComplete, StageCommit}
	for _, u := range lives {
		name := OpName(u.op)
		cat := "uop"
		if u.flags&FlagAnnulled != 0 {
			cat = "annulled"
		}
		for si, s := range spanStages {
			start, ok := u.at(s)
			if !ok {
				continue
			}
			end := start + 1
			for _, ns := range spanStages[si+1:] {
				if v, ok2 := u.at(ns); ok2 && v > start {
					end = v
					break
				}
			}
			emit(`{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%d,"dur":%d,"args":{"seq":%d,"rip":"%#x","stage":%q}}`,
				name, cat, u.key.core, u.key.thread, start, end-start,
				u.key.seq, u.rip, s.String())
		}
	}
	for i := range carriers {
		e := &carriers[i]
		emit(`{"ph":"i","name":%q,"s":"t","pid":%d,"tid":%d,"ts":%d,"args":{"seq":%d,"rip":"%#x","arg":"%#x"}}`,
			e.Stage.String(), e.Core, e.Thread, e.Cycle, e.Seq, e.RIP, e.Arg)
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// Konata stage lane labels, indexed by Stage.
var konataLane = [numStages]string{
	"F", "Rn", "Ds", "Is", "Rp", "Cm", "Rt",
	"", "", "", "", "",
}

// WriteKonata writes the Kanata log format (version 0004) rendered by
// the Konata pipeline viewer: per-uop lanes with stage begin/end
// records and a retire/flush record closing each uop.
func WriteKonata(w io.Writer, events []Event) error {
	lives, _ := collect(events)
	if len(lives) == 0 {
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "Kanata\t0004\n")
		return bw.Flush()
	}

	// Konata is cycle-driven: build a timeline of stage transitions.
	type edge struct {
		cycle uint64
		id    int
		lane  string
		begin bool // S vs E
	}
	type retireRec struct {
		cycle   uint64
		id      int
		flushed bool
	}
	var edges []edge
	var retires []retireRec
	minCycle := ^uint64(0)
	spanStages := []Stage{StageFetch, StageRename, StageDispatch, StageIssue, StageComplete, StageCommit}
	for id, u := range lives {
		var last Stage
		haveLast := false
		endCycle := uint64(0)
		for _, s := range spanStages {
			c, ok := u.at(s)
			if !ok {
				continue
			}
			if c < minCycle {
				minCycle = c
			}
			if haveLast {
				edges = append(edges, edge{c, id, konataLane[last], false})
			}
			edges = append(edges, edge{c, id, konataLane[s], true})
			last, haveLast = s, true
			endCycle = c
		}
		if !haveLast {
			continue
		}
		edges = append(edges, edge{endCycle + 1, id, konataLane[last], false})
		retires = append(retires, retireRec{endCycle + 1, id, u.flags&FlagAnnulled != 0})
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].cycle < edges[j].cycle })
	sort.SliceStable(retires, func(i, j int) bool { return retires[i].cycle < retires[j].cycle })

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Kanata\t0004\n")
	fmt.Fprintf(bw, "C=\t%d\n", minCycle)
	cur := minCycle
	advance := func(to uint64) {
		if to > cur {
			fmt.Fprintf(bw, "C\t%d\n", to-cur)
			cur = to
		}
	}
	// Declare every uop lane up front at its first cycle via I/L lines,
	// interleaved with stage records in cycle order.
	declared := make([]bool, len(lives))
	ri := 0
	for ei := 0; ei < len(edges); ei++ {
		e := edges[ei]
		for ri < len(retires) && retires[ri].cycle <= e.cycle {
			r := retires[ri]
			advance(r.cycle)
			typ := 0
			if r.flushed {
				typ = 1
			}
			fmt.Fprintf(bw, "R\t%d\t%d\t%d\n", r.id, r.id, typ)
			ri++
		}
		advance(e.cycle)
		if !declared[e.id] {
			u := lives[e.id]
			fmt.Fprintf(bw, "I\t%d\t%d\t%d\n", e.id, u.key.seq, u.key.thread)
			fmt.Fprintf(bw, "L\t%d\t0\t%x: %s\n", e.id, u.rip, OpName(u.op))
			declared[e.id] = true
		}
		if e.begin {
			fmt.Fprintf(bw, "S\t%d\t0\t%s\n", e.id, e.lane)
		} else {
			fmt.Fprintf(bw, "E\t%d\t0\t%s\n", e.id, e.lane)
		}
	}
	for ; ri < len(retires); ri++ {
		r := retires[ri]
		advance(r.cycle)
		typ := 0
		if r.flushed {
			typ = 1
		}
		fmt.Fprintf(bw, "R\t%d\t%d\t%d\n", r.id, r.id, typ)
	}
	return bw.Flush()
}
