package evlog

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite exporter golden files")

// goldenEvents is a small deterministic pipeline history: two uops that
// retire cleanly, one wrong-path uop annulled by a redirect, and the
// redirect carrier itself.
func goldenEvents() []Event {
	l := New(64)
	// uop 1: full life, commits.
	l.Record(Event{Cycle: 100, Seq: 1, RIP: 0x401000, Op: 3, Stage: StageFetch})
	l.Record(Event{Cycle: 102, Seq: 1, RIP: 0x401000, Op: 3, Stage: StageRename})
	l.Record(Event{Cycle: 102, Seq: 1, RIP: 0x401000, Op: 3, Stage: StageDispatch, Arg: 2})
	l.Record(Event{Cycle: 104, Seq: 1, RIP: 0x401000, Op: 3, Stage: StageIssue})
	l.Record(Event{Cycle: 106, Seq: 1, RIP: 0x401000, Op: 3, Stage: StageComplete, Arg: 0xbeef})
	// uop 2: a mispredicted branch that still commits.
	l.Record(Event{Cycle: 101, Seq: 2, RIP: 0x401004, Op: 7, Stage: StageFetch})
	l.Record(Event{Cycle: 103, Seq: 2, RIP: 0x401004, Op: 7, Stage: StageRename})
	l.Record(Event{Cycle: 105, Seq: 2, RIP: 0x401004, Op: 7, Stage: StageIssue, Flags: FlagMispredict})
	l.Record(Event{Cycle: 107, Seq: 2, RIP: 0x401004, Op: 7, Stage: StageComplete})
	// uop 3: wrong path, annulled by the redirect below.
	l.Record(Event{Cycle: 104, Seq: 3, RIP: 0x401010, Op: 5, Stage: StageFetch})
	l.Record(Event{Cycle: 106, Seq: 3, RIP: 0x401010, Op: 5, Stage: StageRename})
	// redirect carrier (branch seq 2 resolved mispredicted).
	l.Record(Event{Cycle: 107, Seq: 2, RIP: 0x401004, Arg: 0x402000, Op: NoOp, Stage: StageRedirect})
	l.Annul(0, 0, 2)
	// commits after recovery.
	l.Record(Event{Cycle: 108, Seq: 1, RIP: 0x401000, Op: 3, Stage: StageCommit})
	l.Record(Event{Cycle: 109, Seq: 2, RIP: 0x401004, Op: 7, Stage: StageCommit, Flags: FlagMispredict})
	return l.Events()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run %s -update)", err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	// The output must be a valid JSON array of trace events before it is
	// anything else — chrome://tracing rejects torn JSON outright.
	var objs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &objs); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, o := range objs {
		ph, _ := o["ph"].(string)
		phases[ph]++
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["i"] == 0 {
		t.Fatalf("trace missing event phases: %v", phases)
	}
	checkGolden(t, "pipeline.chrome.json", buf.Bytes())
}

func TestKonataGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKonata(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Kanata\t0004\n") {
		t.Fatalf("missing Kanata header:\n%s", out)
	}
	// The annulled wrong-path uop must retire as a flush (R type 1).
	if !strings.Contains(out, "\t1\n") {
		t.Fatalf("no flushed-retire record in output:\n%s", out)
	}
	checkGolden(t, "pipeline.kanata", buf.Bytes())
}

func TestKonataEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKonata(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "Kanata\t0004\n" {
		t.Fatalf("empty stream rendered %q", buf.String())
	}
}

func TestTextDump(t *testing.T) {
	out := Text(goldenEvents())
	for _, want := range []string{"CYCLE", "redirect", "commit", "A", "M"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "pipeline.txt", []byte(out))
}
