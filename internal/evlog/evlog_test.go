package evlog

import (
	"bytes"
	"testing"
)

// ev builds a uop event with the fields the ring logic cares about.
func ev(cycle, seq uint64, stage Stage, core, thread uint8) Event {
	return Event{Cycle: cycle, Seq: seq, RIP: 0xffff800000100000 + seq*4,
		Op: uint16(seq % 40), Stage: stage, Core: core, Thread: thread}
}

func TestNewRounding(t *testing.T) {
	cases := []struct{ ask, want int }{
		{0, DefaultSize}, {-5, DefaultSize}, {1, 64}, {64, 64},
		{65, 128}, {100, 128}, {1 << 12, 1 << 12}, {(1 << 12) + 1, 1 << 13},
	}
	for _, c := range cases {
		if got := New(c.ask).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	l := New(64)
	const total = 100
	for i := uint64(0); i < total; i++ {
		l.Record(ev(i, i, StageIssue, 0, 0))
	}
	if l.Len() != 64 {
		t.Fatalf("Len = %d, want 64", l.Len())
	}
	if l.Recorded() != total {
		t.Fatalf("Recorded = %d, want %d", l.Recorded(), total)
	}
	got := l.Events()
	if len(got) != 64 {
		t.Fatalf("Events len = %d, want 64", len(got))
	}
	// Oldest survivor is event total-64 = 36; newest is 99. Oldest-first.
	for i, e := range got {
		want := uint64(total - 64 + i)
		if e.Seq != want || e.Cycle != want {
			t.Fatalf("Events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestTail(t *testing.T) {
	l := New(64)
	for i := uint64(0); i < 10; i++ {
		l.Record(ev(i, i, StageCommit, 0, 0))
	}
	tail := l.Tail(3)
	if len(tail) != 3 {
		t.Fatalf("Tail(3) len = %d", len(tail))
	}
	for i, want := range []uint64{7, 8, 9} {
		if tail[i].Seq != want {
			t.Fatalf("Tail[%d].Seq = %d, want %d", i, tail[i].Seq, want)
		}
	}
	if got := l.Tail(100); len(got) != 10 {
		t.Fatalf("Tail(100) len = %d, want 10 (clamped to held)", len(got))
	}
	if got := l.Tail(0); got != nil {
		t.Fatalf("Tail(0) = %v, want nil", got)
	}
	if got := New(64).Tail(5); got != nil {
		t.Fatalf("empty Tail(5) = %v, want nil", got)
	}
}

// TestAnnulBackpatch covers the flush-recovery backpatching: events are
// recorded in pipeline-activity order (not seq order), so a younger
// uop's rename can land in the ring before an older uop's issue —
// Annul must still catch every flagged event across the whole ring.
func TestAnnulBackpatch(t *testing.T) {
	l := New(64)
	// Interleaved activity order: seq 7 renames before seq 5 issues.
	l.Record(ev(10, 5, StageRename, 0, 0))
	l.Record(ev(11, 7, StageRename, 0, 0))
	l.Record(ev(12, 5, StageIssue, 0, 0))
	l.Record(ev(12, 7, StageIssue, 0, 0))
	l.Record(ev(13, 8, StageRename, 0, 1))        // other thread: untouched
	l.Record(ev(13, 9, StageRename, 1, 0))        // other core: untouched
	l.Record(Event{Cycle: 14, Seq: 7, Stage: StageRedirect, Op: NoOp}) // carrier: untouched

	l.Annul(0, 0, 5) // squash everything younger than seq 5 on core0/thread0

	for _, e := range l.Events() {
		annulled := e.Flags&FlagAnnulled != 0
		wantAnnulled := e.Core == 0 && e.Thread == 0 && e.Seq > 5 && e.Stage < StageRedirect
		if annulled != wantAnnulled {
			t.Errorf("event seq=%d core=%d thread=%d stage=%v: annulled=%v, want %v",
				e.Seq, e.Core, e.Thread, e.Stage, annulled, wantAnnulled)
		}
	}
}

func TestAnnulAfterWrap(t *testing.T) {
	l := New(64)
	for i := uint64(0); i < 150; i++ {
		l.Record(ev(i, i, StageDispatch, 0, 0))
	}
	l.Annul(0, 0, 120)
	annulled := 0
	for _, e := range l.Events() {
		if e.Flags&FlagAnnulled != 0 {
			if e.Seq <= 120 {
				t.Fatalf("seq %d annulled but <= afterSeq", e.Seq)
			}
			annulled++
		}
	}
	if annulled != 29 { // seqs 121..149
		t.Fatalf("annulled %d events, want 29", annulled)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	events := []Event{
		ev(1, 1, StageFetch, 0, 0),
		ev(2, 1, StageRename, 0, 0),
		{Cycle: 3, Seq: 1, RIP: 0x40, Arg: 0x80, Op: NoOp,
			Stage: StageFlush, Core: 1, Thread: 1, Flags: FlagMispredict},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString("{\"cycles\": 9}\n")); err == nil {
		t.Fatal("non-evlog header accepted")
	}
	bad := "{\"evlog\":1,\"events\":1}\n{\"stage\":\"nonsense\"}\n"
	if _, err := ReadJSON(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("unknown stage accepted")
	}
}

func TestStageStrings(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		if s.String() == "" {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(200).String() != "stage200" {
		t.Fatalf("out-of-range stage renders %q", Stage(200).String())
	}
}

// BenchmarkRecord measures the enabled hot path: one indexed store and
// an increment.
func BenchmarkRecord(b *testing.B) {
	l := New(DefaultSize)
	e := ev(1, 1, StageIssue, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Cycle = uint64(i)
		l.Record(e)
	}
}

// BenchmarkRecordGated measures the disabled path as the cores see it:
// a nil check and nothing else.
func BenchmarkRecordGated(b *testing.B) {
	var l *Log
	e := ev(1, 1, StageIssue, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l != nil {
			l.Record(e)
		}
	}
	_ = e
}
