// Package kern provides the guest operating system used by the full
// system benchmarks: a small paravirtualized kernel written in x86-64
// assembly (generated through the x86 DSL), plus the domain builder
// that loads it — the role PTLmon plays for Xen domains in the paper.
//
// The kernel implements the facilities the rsync benchmark exercises:
// a round-robin preemptive scheduler over a fixed process table,
// syscall entry/exit with full register save, blocking pipes, loopback
// "socket" pipes that run a per-segment checksum pass to mimic TCP/IP
// stack cost, timer-event handling, an idle loop (hlt), and console
// output — all running as simulated guest instructions so that kernel
// time, user time and idle time are all visible to the core models
// (the property Figure 2 of the paper depends on).
package kern

// Virtual memory layout. The kernel lives in the canonical upper half
// (supervisor-only), mapped into every process address space through a
// shared PML4 slot, exactly like a real x86-64 OS under Xen.
const (
	KernelTextVA  = 0xFFFF800000100000
	KernelDataVA  = 0xFFFF800000400000
	KernelStackVA = 0xFFFF800000600000 // per-process kernel stacks
	PipeBufVA     = 0xFFFF800000800000 // pipe ring buffers

	UserTextVA  = 0x400000
	UserDataVA  = 0x1000000  // workload data (file corpus etc.)
	UserStackVA = 0x7FFF0000 // top of user stack

	KernelTextPages  = 8
	KernelDataPages  = 8
	KernelStackSize  = 0x4000 // 16 KiB per process
	UserStackPages   = 4
)

// Process table geometry.
const (
	NProc   = 8
	PCBSize = 128
)

// PCB field offsets (within the proc table at KernelDataVA+ProcTableOff).
const (
	PCBState     = 0  // 0 unused, 1 new, 2 ready, 3 running, 4 blocked, 5 zombie
	PCBCr3       = 8  // address space root (machine physical)
	PCBKsp       = 16 // saved kernel stack pointer
	PCBKstackTop = 24
	PCBWaitCh    = 32 // blocked-on channel (address), 0 if none
	PCBPid       = 40
	PCBEntry     = 48 // user entry RIP (for first run)
	PCBUstack    = 56 // initial user RSP
	PCBArg0      = 64
	PCBArg1      = 72
	PCBArg2      = 80
	PCBWakeTick  = 88 // sleep-until tick for SysSleep
)

// Process states.
const (
	StateUnused  = 0
	StateNew     = 1
	StateReady   = 2
	StateRunning = 3
	StateBlocked = 4
	StateZombie  = 5
)

// Kernel global variable offsets within KernelDataVA.
const (
	GCurrent     = 0  // current pid
	GNeedResched = 8
	GLiveProcs   = 16 // count of non-zombie processes
	GTickCount   = 24 // timer ticks observed
	GProcTable   = 64 // NProc * PCBSize bytes
	GPipeTable   = GProcTable + NProc*PCBSize
)

// Pipe table geometry. Each pipe has a 64-byte header here and a
// 4 KiB ring buffer at PipeBufVA + idx*PipeBufSize.
const (
	NPipes      = 16
	PipeHdrSize = 64
	PipeBufSize = 4096

	PipeRPos   = 0  // absolute read counter
	PipeWPos   = 8  // absolute write counter
	PipeMode   = 16 // bit 0: socket (checksummed segments); bit 1: closed
	PipeBufPtr = 24 // VA of the ring buffer
)

// Pipe mode bits.
const (
	PipeModeSocket = 1
	PipeModeClosed = 2
)

// SegmentSize is the payload quantum for socket-mode pipes (the TCP
// MSS the loopback path mimics); each segment gets a checksum pass.
const SegmentSize = 1460

// Syscall numbers (RAX; args RDI/RSI/RDX; result RAX).
const (
	SysExit      = 0
	SysWrite     = 1 // write(pipe, buf, n) -> n written (may be partial)
	SysRead      = 2 // read(pipe, buf, n) -> n read (may be partial, 0 = EOF)
	SysYield     = 3
	SysGetTSC    = 4
	SysGetPid    = 5
	SysConsWrite = 6 // conswrite(buf, n)
	SysClose     = 7 // close(pipe): mark writer-closed
	SysTicks     = 8 // timer ticks since boot
	SysSleep     = 9 // sleep(ticks): block until the tick counter advances
)

// Timer configuration: the builder programs this periodic interval
// (cycles) into the hypervisor; at 2.2 GHz a 2.2M-cycle period is the
// 1 kHz tick SuSE's kernel used in the paper's setup.
const DefaultTimerPeriod = 2_200_000
