package kern

import (
	"fmt"

	"ptlsim/internal/hv"
	"ptlsim/internal/vm"
	"ptlsim/internal/x86"
)

// KernelImage is the assembled kernel plus the entry points the domain
// builder must know.
type KernelImage struct {
	Code        []byte
	BootEntry   uint64
	TrapEntry   uint64
	SysEntry    uint64
	FirstRun    uint64
	TimerPeriod uint64
}

// immU wraps a 64-bit unsigned value (e.g. an upper-half kernel
// address) as an immediate operand.
func immU(v uint64) x86.Operand { return x86.ImmOp(int64(v)) }

// kasm carries kernel-assembly helpers over the DSL assembler.
type kasm struct {
	*x86.Assembler
}

// Registers with fixed roles inside kernel entry paths (after the
// user's registers have been saved): R12 holds the kernel data base.
const (
	regKD = x86.R12
)

var allGPRs = []x86.Reg{
	x86.RAX, x86.RCX, x86.RDX, x86.RBX, x86.RBP, x86.RSI, x86.RDI,
	x86.R8, x86.R9, x86.R10, x86.R11, x86.R12, x86.R13, x86.R14, x86.R15,
}

// savedOff is the stack offset of a saved register after pushAll.
func savedOff(r x86.Reg) int32 {
	for i, g := range allGPRs {
		if g == r {
			return int32(len(allGPRs)-1-i) * 8
		}
	}
	panic("kern: not a saved register")
}

func (k kasm) pushAll() {
	for _, r := range allGPRs {
		k.Push(x86.R(r))
	}
}

func (k kasm) popAll() {
	for i := len(allGPRs) - 1; i >= 0; i-- {
		k.Pop(x86.R(allGPRs[i]))
	}
}

// loadKD materializes the kernel data base in regKD.
func (k kasm) loadKD() {
	k.Mov(x86.R(regKD), immU(KernelDataVA))
}

// hcall2 issues hypercall op with up to two arguments already in
// RDI/RSI; result lands in RAX.
func (k kasm) hcall(op int64) {
	k.Mov(x86.R(x86.RAX), x86.I(op))
	k.Hypercall()
}

// pcbFromPid computes dst = &proctable[pidReg]; clobbers dst only.
func (k kasm) pcbFromPid(dst, pid x86.Reg) {
	k.Mov(x86.R(dst), x86.R(pid))
	k.Shl(x86.R(dst), x86.I(7)) // PCBSize = 128
	k.Lea(dst, x86.MIdx(regKD, dst, 1, GProcTable))
}

// curPCB loads the current process's PCB address into dst (clobbers
// dst and tmp).
func (k kasm) curPCB(dst, tmp x86.Reg) {
	k.Mov(x86.R(tmp), x86.M(regKD, GCurrent))
	k.Mov(x86.R(dst), x86.R(tmp))
	k.Shl(x86.R(dst), x86.I(7))
	k.Lea(dst, x86.MIdx(regKD, dst, 1, GProcTable))
}

// AssembleKernel builds the guest kernel at KernelTextVA.
func AssembleKernel(timerPeriod uint64) (*KernelImage, error) {
	if timerPeriod == 0 {
		timerPeriod = DefaultTimerPeriod
	}
	a := x86.NewAssembler(KernelTextVA)
	k := kasm{a}

	lBoot := a.NewLabel()
	lTrap := a.NewLabel()
	lSyscall := a.NewLabel()
	lSchedule := a.NewLabel()
	lSwitchTo := a.NewLabel() // rdi = next pid
	lFirstRun := a.NewLabel()
	lWake := a.NewLabel()     // rdi = wait channel
	lChecksum := a.NewLabel() // rdi = buf, rsi = len -> rax
	lPipeRead := a.NewLabel() // rdi = pipe, rsi = buf, rdx = n -> rax
	lPipeWrite := a.NewLabel()
	lExitProc := a.NewLabel()

	// ----- boot entry (VCPU 0, kernel mode, boot CR3) -----
	a.Bind(lBoot)
	k.loadKD()
	// Register paravirt entry points.
	a.LeaLabel(x86.RDI, lTrap)
	k.hcall(hv.HcSetTrapEntry)
	a.LeaLabel(x86.RDI, lSyscall)
	k.hcall(hv.HcSetSyscall)
	// Periodic timer.
	a.Mov(x86.R(x86.RDI), immU(timerPeriod))
	k.hcall(hv.HcSetPeriodic)
	// Enter the scheduler; it will start process 0. GCurrent begins at
	// -1 (no current), written by the builder as NProc meaning "none".
	a.Call(lSchedule)
	// Unreachable: if the scheduler ever returns with nothing to do it
	// idles internally. Shut down defensively.
	a.Mov(x86.R(x86.RDI), x86.I(0xDEAD))
	k.hcall(hv.HcShutdown)
	a.Hlt()

	// ----- syscall entry -----
	// Frame: [RIP][mode][RFLAGS][RSP] on the kernel stack. User regs
	// live; nr in RAX, args in RDI/RSI/RDX.
	a.Bind(lSyscall)
	k.pushAll()
	k.loadKD()
	// Dispatch.
	sysDone := a.NewLabel()
	sysBad := a.NewLabel()
	var sysLabels [10]x86.Label
	for i := range sysLabels {
		sysLabels[i] = a.NewLabel()
	}
	for i := range sysLabels {
		a.Cmp(x86.R(x86.RAX), x86.I(int64(i)))
		a.Jcc(x86.CondE, sysLabels[i])
	}
	a.Jmp(sysBad)

	// SysExit.
	a.Bind(sysLabels[SysExit])
	a.Call(lExitProc) // does not return

	// SysWrite(pipe, buf, n).
	a.Bind(sysLabels[SysWrite])
	a.Call(lPipeWrite)
	a.Jmp(sysDone)

	// SysRead(pipe, buf, n).
	a.Bind(sysLabels[SysRead])
	a.Call(lPipeRead)
	a.Jmp(sysDone)

	// SysYield.
	a.Bind(sysLabels[SysYield])
	k.curPCB(x86.RBX, x86.RCX)
	a.Mov(x86.M(x86.RBX, PCBState), x86.I(StateReady))
	a.Call(lSchedule)
	a.Mov(x86.R(x86.RAX), x86.I(0))
	a.Jmp(sysDone)

	// SysGetTSC.
	a.Bind(sysLabels[SysGetTSC])
	a.Rdtsc()
	a.Shl(x86.R(x86.RDX), x86.I(32))
	a.Or(x86.R(x86.RAX), x86.R(x86.RDX))
	a.Jmp(sysDone)

	// SysGetPid.
	a.Bind(sysLabels[SysGetPid])
	a.Mov(x86.R(x86.RAX), x86.M(regKD, GCurrent))
	a.Jmp(sysDone)

	// SysConsWrite(buf, n).
	a.Bind(sysLabels[SysConsWrite])
	k.hcall(hv.HcConsoleWrite)
	a.Jmp(sysDone)

	// SysClose(pipe): set writer-closed; wake readers.
	a.Bind(sysLabels[SysClose])
	k.pipeHdr(x86.RBX, x86.RDI)
	a.Or(x86.M(x86.RBX, PipeMode), x86.I(PipeModeClosed))
	a.Mov(x86.R(x86.RDI), x86.R(x86.RBX))
	a.Call(lWake)
	a.Mov(x86.R(x86.RAX), x86.I(0))
	a.Jmp(sysDone)

	// SysTicks.
	a.Bind(sysLabels[SysTicks])
	a.Mov(x86.R(x86.RAX), x86.M(regKD, GTickCount))
	a.Jmp(sysDone)

	// SysSleep(ticks): block on the tick counter until it reaches
	// target; timer processing wakes all sleepers, who re-check.
	a.Bind(sysLabels[SysSleep])
	a.Mov(x86.R(x86.RBX), x86.M(regKD, GTickCount))
	a.Add(x86.R(x86.RBX), x86.R(x86.RDI)) // target tick
	slTop := a.Mark()
	slDone := a.NewLabel()
	a.Cmp(x86.M(regKD, GTickCount), x86.R(x86.RBX))
	a.Jcc(x86.CondGE, slDone)
	a.Lea(x86.RDX, x86.M(regKD, GTickCount))
	k.block(x86.RDX, lSchedule)
	a.Jmp(slTop)
	a.Bind(slDone)
	a.Mov(x86.R(x86.RAX), x86.I(0))
	a.Jmp(sysDone)

	a.Bind(sysBad)
	a.Mov(x86.R(x86.RAX), x86.I(-1))

	a.Bind(sysDone)
	// Store the result into the saved RAX slot so popAll restores it.
	a.Mov(x86.M(x86.RSP, savedOff(x86.RAX)), x86.R(x86.RAX))
	// Preemption point on the way out.
	a.Cmp(x86.M(regKD, GNeedResched), x86.I(0))
	noResched := a.NewLabel()
	a.Jcc(x86.CondE, noResched)
	a.Mov(x86.M(regKD, GNeedResched), x86.I(0))
	k.curPCB(x86.RBX, x86.RCX)
	a.Mov(x86.M(x86.RBX, PCBState), x86.I(StateReady))
	a.Call(lSchedule)
	a.Bind(noResched)
	k.popAll()
	a.Iretq()

	// ----- trap entry (exceptions and event upcalls) -----
	// Frame: [vector][err][RIP][mode][RFLAGS][RSP].
	a.Bind(lTrap)
	k.pushAll()
	k.loadKD()
	// vector at rsp+15*8, err at rsp+16*8.
	a.Mov(x86.R(x86.RBX), x86.M(x86.RSP, int32(len(allGPRs))*8))
	a.Cmp(x86.R(x86.RBX), x86.I(vm.VecEvent))
	notEvent := a.NewLabel()
	trapDone := a.NewLabel()
	a.Jcc(x86.CondNE, notEvent)
	// Event upcall: ack all channels, process the bits.
	k.hcall(hv.HcEventAck)
	a.Test(x86.R(x86.RAX), x86.I(1<<hv.ChanTimer))
	noTimer := a.NewLabel()
	a.Jcc(x86.CondE, noTimer)
	a.Inc(x86.M(regKD, GTickCount))
	a.Mov(x86.M(regKD, GNeedResched), x86.I(1))
	a.Lea(x86.RDI, x86.M(regKD, GTickCount))
	a.Call(lWake) // wake SysSleep waiters (they re-check their target)
	a.Bind(noTimer)
	// Block-device completions wake whoever waits on the pipe/global
	// DMA channel (channel address = kernel data base + GPipeTable-8,
	// an otherwise unused slot used as the disk wait channel).
	a.Test(x86.R(x86.RAX), x86.I(1<<hv.ChanBlock))
	noBlk := a.NewLabel()
	a.Jcc(x86.CondE, noBlk)
	a.Lea(x86.RDI, x86.M(regKD, GPipeTable-8))
	a.Call(lWake)
	a.Bind(noBlk)
	a.Jmp(trapDone)

	a.Bind(notEvent)
	// Fatal exception in guest code: report and kill the process.
	// (The benchmark workloads are not expected to fault.)
	a.Call(lExitProc)

	a.Bind(trapDone)
	a.Cmp(x86.M(regKD, GNeedResched), x86.I(0))
	noResched2 := a.NewLabel()
	a.Jcc(x86.CondE, noResched2)
	// Only reschedule when returning to user mode (mode slot != 0):
	// the kernel itself is non-preemptive.
	a.Mov(x86.R(x86.RCX), x86.M(x86.RSP, int32(len(allGPRs)+3)*8))
	a.Cmp(x86.R(x86.RCX), x86.I(0))
	a.Jcc(x86.CondE, noResched2)
	a.Mov(x86.M(regKD, GNeedResched), x86.I(0))
	k.curPCB(x86.RBX, x86.RCX)
	a.Mov(x86.M(x86.RBX, PCBState), x86.I(StateReady))
	a.Call(lSchedule)
	a.Bind(noResched2)
	k.popAll()
	a.Add(x86.R(x86.RSP), x86.I(16)) // drop vector/err
	a.Iretq()

	// ----- exit: current process becomes a zombie -----
	a.Bind(lExitProc)
	k.curPCB(x86.RBX, x86.RCX)
	a.Mov(x86.M(x86.RBX, PCBState), x86.I(StateZombie))
	a.Dec(x86.M(regKD, GLiveProcs))
	// Wake anything blocked on pipes this process fed: simplest safe
	// policy is waking everything (they re-check their conditions).
	a.Mov(x86.R(x86.RDI), x86.I(-1))
	a.Call(lWake)
	a.Cmp(x86.M(regKD, GLiveProcs), x86.I(0))
	someLeft := a.NewLabel()
	a.Jcc(x86.CondNE, someLeft)
	a.Mov(x86.R(x86.RDI), x86.I(0))
	k.hcall(hv.HcShutdown)
	a.Hlt()
	a.Bind(someLeft)
	a.Call(lSchedule) // never returns here (zombie is never picked)
	a.Hlt()

	// ----- wake(rdi = channel; -1 wakes every blocked process) -----
	a.Bind(lWake)
	a.Push(x86.R(x86.RBX))
	a.Push(x86.R(x86.RCX))
	a.Mov(x86.R(x86.RCX), x86.I(0))
	wkTop := a.Mark()
	wkNext := a.NewLabel()
	wkDone := a.NewLabel()
	a.Cmp(x86.R(x86.RCX), x86.I(NProc))
	a.Jcc(x86.CondGE, wkDone)
	k.pcbFromPid(x86.RBX, x86.RCX)
	a.Cmp(x86.M(x86.RBX, PCBState), x86.I(StateBlocked))
	a.Jcc(x86.CondNE, wkNext)
	a.Cmp(x86.R(x86.RDI), x86.I(-1))
	wkHit := a.NewLabel()
	a.Jcc(x86.CondE, wkHit)
	a.Cmp(x86.M(x86.RBX, PCBWaitCh), x86.R(x86.RDI))
	a.Jcc(x86.CondNE, wkNext)
	a.Bind(wkHit)
	a.Mov(x86.M(x86.RBX, PCBState), x86.I(StateReady))
	a.Mov(x86.M(x86.RBX, PCBWaitCh), x86.I(0))
	a.Bind(wkNext)
	a.Inc(x86.R(x86.RCX))
	a.Jmp(wkTop)
	a.Bind(wkDone)
	a.Pop(x86.R(x86.RCX))
	a.Pop(x86.R(x86.RBX))
	a.Ret()

	// ----- schedule: pick the next runnable process -----
	// Caller has already moved the current process out of Running
	// state if it should stop running (Ready/Blocked/Zombie).
	a.Bind(lSchedule)
	a.Push(x86.R(x86.RBX))
	a.Push(x86.R(x86.RCX))
	a.Push(x86.R(x86.RDX))
	schedRescan := a.Mark()
	// Scan pids (current+1 .. current+NProc) mod NProc.
	a.Mov(x86.R(x86.RCX), x86.M(regKD, GCurrent))
	a.Mov(x86.R(x86.RDX), x86.I(1))
	scanTop := a.Mark()
	scanNext := a.NewLabel()
	schedIdle := a.NewLabel()
	schedFound := a.NewLabel()
	a.Cmp(x86.R(x86.RDX), x86.I(NProc+1))
	a.Jcc(x86.CondG, schedIdle)
	a.Mov(x86.R(x86.RBX), x86.R(x86.RCX))
	a.Add(x86.R(x86.RBX), x86.R(x86.RDX))
	// rbx %= NProc (NProc is a power of two).
	a.And(x86.R(x86.RBX), x86.I(NProc-1))
	k.pcbFromPid(x86.RAX, x86.RBX)
	a.Cmp(x86.M(x86.RAX, PCBState), x86.I(StateReady))
	a.Jcc(x86.CondE, schedFound)
	a.Cmp(x86.M(x86.RAX, PCBState), x86.I(StateNew))
	a.Jcc(x86.CondE, schedFound)
	a.Bind(scanNext)
	a.Inc(x86.R(x86.RDX))
	a.Jmp(scanTop)

	// Nothing runnable: if the current process is still Running it
	// simply continues; otherwise idle until an event changes things.
	a.Bind(schedIdle)
	idleLoop := a.NewLabel()
	schedOut := a.NewLabel()
	// At boot GCurrent is NProc ("none"): go straight to idle.
	a.Mov(x86.R(x86.RCX), x86.M(regKD, GCurrent))
	a.Cmp(x86.R(x86.RCX), x86.I(NProc))
	a.Jcc(x86.CondGE, idleLoop)
	k.curPCB(x86.RBX, x86.RCX)
	a.Cmp(x86.M(x86.RBX, PCBState), x86.I(StateRunning))
	a.Jcc(x86.CondE, schedOut)
	a.Bind(idleLoop)
	// Idle: halt until any event, acknowledge it, then rescan.
	a.Hlt()
	k.hcall(hv.HcEventAck)
	a.Test(x86.R(x86.RAX), x86.I(1<<hv.ChanTimer))
	idleNoTimer := a.NewLabel()
	a.Jcc(x86.CondE, idleNoTimer)
	a.Inc(x86.M(regKD, GTickCount))
	a.Lea(x86.RDI, x86.M(regKD, GTickCount))
	a.Call(lWake)
	a.Bind(idleNoTimer)
	a.Test(x86.R(x86.RAX), x86.I(1<<hv.ChanBlock))
	idleNoBlk := a.NewLabel()
	a.Jcc(x86.CondE, idleNoBlk)
	a.Lea(x86.RDI, x86.M(regKD, GPipeTable-8))
	a.Call(lWake)
	a.Bind(idleNoBlk)
	a.Jmp(schedRescan)

	// Found pid in RBX: switch to it.
	a.Bind(schedFound)
	a.Mov(x86.R(x86.RDI), x86.R(x86.RBX))
	a.Call(lSwitchTo)
	a.Bind(schedOut)
	a.Pop(x86.R(x86.RDX))
	a.Pop(x86.R(x86.RCX))
	a.Pop(x86.R(x86.RBX))
	a.Ret()

	// ----- switchTo(rdi = next pid) -----
	a.Bind(lSwitchTo)
	// Save callee state of the outgoing context.
	a.Push(x86.R(x86.RBP))
	a.Push(x86.R(x86.RBX))
	a.Push(x86.R(x86.R12))
	a.Push(x86.R(x86.R13))
	a.Push(x86.R(x86.R14))
	a.Push(x86.R(x86.R15))
	k.pcbFromPid(x86.RBX, x86.RDI) // next PCB
	// Save outgoing ksp (GCurrent may be NProc at boot: skip save).
	a.Mov(x86.R(x86.RCX), x86.M(regKD, GCurrent))
	a.Cmp(x86.R(x86.RCX), x86.I(NProc))
	noSave := a.NewLabel()
	a.Jcc(x86.CondGE, noSave)
	k.curPCB(x86.RDX, x86.RCX)
	a.Mov(x86.M(x86.RDX, PCBKsp), x86.R(x86.RSP))
	a.Bind(noSave)
	// current = next; state bookkeeping.
	a.Mov(x86.R(x86.RCX), x86.M(x86.RBX, PCBPid))
	a.Mov(x86.M(regKD, GCurrent), x86.R(x86.RCX))
	// Tell the hypervisor about the new kernel stack (Xen
	// stack_switch) and address space (MMUEXT_NEW_BASEPTR).
	a.Push(x86.R(x86.RBX))
	a.Mov(x86.R(x86.RDI), x86.M(x86.RBX, PCBKstackTop))
	k.hcall(hv.HcStackSwitch)
	a.Pop(x86.R(x86.RBX))
	a.Push(x86.R(x86.RBX))
	a.Mov(x86.R(x86.RDI), x86.M(x86.RBX, PCBCr3))
	k.hcall(hv.HcNewBasePtr)
	a.Pop(x86.R(x86.RBX))
	// First run? (state New -> jump to firstRun on the new stack).
	a.Cmp(x86.M(x86.RBX, PCBState), x86.I(StateNew))
	notNew := a.NewLabel()
	a.Jcc(x86.CondNE, notNew)
	a.Mov(x86.M(x86.RBX, PCBState), x86.I(StateRunning))
	a.Mov(x86.R(x86.RSP), x86.M(x86.RBX, PCBKstackTop))
	a.Jmp(lFirstRun)
	a.Bind(notNew)
	a.Mov(x86.M(x86.RBX, PCBState), x86.I(StateRunning))
	a.Mov(x86.R(x86.RSP), x86.M(x86.RBX, PCBKsp))
	a.Pop(x86.R(x86.R15))
	a.Pop(x86.R(x86.R14))
	a.Pop(x86.R(x86.R13))
	a.Pop(x86.R(x86.R12))
	a.Pop(x86.R(x86.RBX))
	a.Pop(x86.R(x86.RBP))
	a.Ret()

	// ----- firstRun: enter user mode for the first time -----
	// RBX = PCB, RSP = fresh kernel stack top.
	a.Bind(lFirstRun)
	// Build the iretq frame: [RIP][mode][RFLAGS][RSP].
	a.Push(x86.M(x86.RBX, PCBUstack))
	a.Mov(x86.R(x86.RCX), x86.I(int64(x86.FlagIF)))
	a.Push(x86.R(x86.RCX)) // user RFLAGS: interrupts on
	a.Mov(x86.R(x86.RCX), x86.I(3))
	a.Push(x86.R(x86.RCX)) // user mode
	a.Push(x86.M(x86.RBX, PCBEntry))
	// Argument registers, clean state.
	a.Mov(x86.R(x86.RDI), x86.M(x86.RBX, PCBArg0))
	a.Mov(x86.R(x86.RSI), x86.M(x86.RBX, PCBArg1))
	a.Mov(x86.R(x86.RDX), x86.M(x86.RBX, PCBArg2))
	a.Mov(x86.R(x86.RAX), x86.I(0))
	a.Mov(x86.R(x86.RBX), x86.I(0))
	a.Mov(x86.R(x86.RCX), x86.I(0))
	a.Mov(x86.R(x86.RBP), x86.I(0))
	a.Iretq()

	// ----- checksum(rdi = buf, rsi = len) -> rax -----
	// 64-bit folded ones-complement-style sum over 8-byte words, the
	// per-segment cost of the loopback TCP path.
	a.Bind(lChecksum)
	a.Mov(x86.R(x86.RAX), x86.I(0))
	ckWords := a.NewLabel()
	ckBytes := a.NewLabel()
	ckDone := a.NewLabel()
	a.Bind(ckWords)
	a.Cmp(x86.R(x86.RSI), x86.I(8))
	a.Jcc(x86.CondL, ckBytes)
	a.Add(x86.R(x86.RAX), x86.M(x86.RDI, 0))
	a.Adc(x86.R(x86.RAX), x86.I(0))
	a.Add(x86.R(x86.RDI), x86.I(8))
	a.Sub(x86.R(x86.RSI), x86.I(8))
	a.Jmp(ckWords)
	a.Bind(ckBytes)
	a.Cmp(x86.R(x86.RSI), x86.I(0))
	a.Jcc(x86.CondE, ckDone)
	a.Movzx(x86.RCX, x86.M(x86.RDI, 0), 1)
	a.Add(x86.R(x86.RAX), x86.R(x86.RCX))
	a.Inc(x86.R(x86.RDI))
	a.Dec(x86.R(x86.RSI))
	a.Jmp(ckBytes)
	a.Bind(ckDone)
	a.Ret()

	// ----- pipeRead(rdi = pipe idx, rsi = user buf, rdx = n) -> rax -----
	emitPipeRead(k, lPipeRead, lSchedule, lWake, lChecksum)

	// ----- pipeWrite(rdi = pipe idx, rsi = user buf, rdx = n) -> rax -----
	emitPipeWrite(k, lPipeWrite, lSchedule, lWake, lChecksum)

	code, err := a.Bytes()
	if err != nil {
		return nil, fmt.Errorf("kern: assembling kernel: %w", err)
	}
	if len(code) > KernelTextPages*4096 {
		return nil, fmt.Errorf("kern: kernel text %d bytes exceeds %d pages", len(code), KernelTextPages)
	}
	return &KernelImage{
		Code:        code,
		BootEntry:   a.Addr(lBoot),
		TrapEntry:   a.Addr(lTrap),
		SysEntry:    a.Addr(lSyscall),
		FirstRun:    a.Addr(lFirstRun),
		TimerPeriod: timerPeriod,
	}, nil
}

// pipeHdr computes dst = &pipeTable[idxReg]; clobbers dst.
func (k kasm) pipeHdr(dst, idx x86.Reg) {
	k.Mov(x86.R(dst), x86.R(idx))
	k.Shl(x86.R(dst), x86.I(6)) // PipeHdrSize = 64
	k.Lea(dst, x86.MIdx(regKD, dst, 1, GPipeTable))
}

// block marks the current process blocked on the channel in chReg and
// schedules away; on return the process has been woken. chReg must not
// be RAX or RCX (scratch).
func (k kasm) block(chReg x86.Reg, lSchedule x86.Label) {
	if chReg == x86.RAX || chReg == x86.RCX {
		panic("kern: block channel register clobbered by scratch")
	}
	k.curPCB(x86.RAX, x86.RCX)
	k.Mov(x86.M(x86.RAX, PCBState), x86.I(StateBlocked))
	k.Mov(x86.M(x86.RAX, PCBWaitCh), x86.R(chReg))
	k.Call(lSchedule)
}

// emitPipeRead generates the blocking pipe/socket read.
//
// Register plan inside: RBX = pipe header, RBP = user buf, R13 = n,
// R14 = bytes available/chunk, R15 = ring offset.
func emitPipeRead(k kasm, entry, lSchedule, lWake, lChecksum x86.Label) {
	a := k.Assembler
	a.Bind(entry)
	a.Push(x86.R(x86.RBX))
	a.Push(x86.R(x86.RBP))
	a.Push(x86.R(x86.R13))
	a.Push(x86.R(x86.R14))
	a.Push(x86.R(x86.R15))
	k.pipeHdr(x86.RBX, x86.RDI)
	a.Mov(x86.R(x86.RBP), x86.R(x86.RSI))
	a.Mov(x86.R(x86.R13), x86.R(x86.RDX))

	waitLoop := a.Mark()
	haveData := a.NewLabel()
	retEOF := a.NewLabel()
	out := a.NewLabel()
	// avail = wpos - rpos
	a.Mov(x86.R(x86.R14), x86.M(x86.RBX, PipeWPos))
	a.Sub(x86.R(x86.R14), x86.M(x86.RBX, PipeRPos))
	a.Cmp(x86.R(x86.R14), x86.I(0))
	a.Jcc(x86.CondNE, haveData)
	// Empty: EOF if closed, else block.
	a.Test(x86.M(x86.RBX, PipeMode), x86.I(PipeModeClosed))
	a.Jcc(x86.CondNE, retEOF)
	k.block(x86.RBX, lSchedule)
	a.Jmp(waitLoop)

	a.Bind(haveData)
	// chunk = min(n, avail, contiguous to ring end)
	a.Cmp(x86.R(x86.R14), x86.R(x86.R13))
	capN := a.NewLabel()
	a.Jcc(x86.CondBE, capN)
	a.Mov(x86.R(x86.R14), x86.R(x86.R13))
	a.Bind(capN)
	// ring offset = rpos & (PipeBufSize-1)
	a.Mov(x86.R(x86.R15), x86.M(x86.RBX, PipeRPos))
	a.And(x86.R(x86.R15), x86.I(PipeBufSize-1))
	// contiguous = PipeBufSize - offset
	a.Mov(x86.R(x86.RCX), x86.I(PipeBufSize))
	a.Sub(x86.R(x86.RCX), x86.R(x86.R15))
	a.Cmp(x86.R(x86.R14), x86.R(x86.RCX))
	capC := a.NewLabel()
	a.Jcc(x86.CondBE, capC)
	a.Mov(x86.R(x86.R14), x86.R(x86.RCX))
	a.Bind(capC)
	// copy: rsi = buf base + offset, rdi = user buf, rcx = chunk.
	a.Mov(x86.R(x86.RSI), x86.M(x86.RBX, PipeBufPtr))
	a.Add(x86.R(x86.RSI), x86.R(x86.R15))
	a.Mov(x86.R(x86.RDI), x86.R(x86.RBP))
	a.Mov(x86.R(x86.RCX), x86.R(x86.R14))
	a.RepMovs(1)
	// Socket mode: checksum the received segment (RX verify pass).
	a.Test(x86.M(x86.RBX, PipeMode), x86.I(PipeModeSocket))
	noCk := a.NewLabel()
	a.Jcc(x86.CondE, noCk)
	a.Mov(x86.R(x86.RDI), x86.R(x86.RBP))
	a.Mov(x86.R(x86.RSI), x86.R(x86.R14))
	a.Call(lChecksum)
	a.Bind(noCk)
	// rpos += chunk; wake writers.
	a.Mov(x86.R(x86.RCX), x86.M(x86.RBX, PipeRPos))
	a.Add(x86.R(x86.RCX), x86.R(x86.R14))
	a.Mov(x86.M(x86.RBX, PipeRPos), x86.R(x86.RCX))
	a.Mov(x86.R(x86.RDI), x86.R(x86.RBX))
	a.Call(lWake)
	a.Mov(x86.R(x86.RAX), x86.R(x86.R14))
	a.Jmp(out)

	a.Bind(retEOF)
	a.Mov(x86.R(x86.RAX), x86.I(0))
	a.Bind(out)
	a.Pop(x86.R(x86.R15))
	a.Pop(x86.R(x86.R14))
	a.Pop(x86.R(x86.R13))
	a.Pop(x86.R(x86.RBP))
	a.Pop(x86.R(x86.RBX))
	a.Ret()
}

// emitPipeWrite generates the blocking pipe/socket write.
func emitPipeWrite(k kasm, entry, lSchedule, lWake, lChecksum x86.Label) {
	a := k.Assembler
	a.Bind(entry)
	a.Push(x86.R(x86.RBX))
	a.Push(x86.R(x86.RBP))
	a.Push(x86.R(x86.R13))
	a.Push(x86.R(x86.R14))
	a.Push(x86.R(x86.R15))
	k.pipeHdr(x86.RBX, x86.RDI)
	a.Mov(x86.R(x86.RBP), x86.R(x86.RSI))
	a.Mov(x86.R(x86.R13), x86.R(x86.RDX))

	waitLoop := a.Mark()
	haveSpace := a.NewLabel()
	out := a.NewLabel()
	// free = PipeBufSize - (wpos - rpos)
	a.Mov(x86.R(x86.R14), x86.M(x86.RBX, PipeWPos))
	a.Sub(x86.R(x86.R14), x86.M(x86.RBX, PipeRPos))
	a.Mov(x86.R(x86.RCX), x86.I(PipeBufSize))
	a.Sub(x86.R(x86.RCX), x86.R(x86.R14))
	a.Mov(x86.R(x86.R14), x86.R(x86.RCX))
	a.Cmp(x86.R(x86.R14), x86.I(0))
	a.Jcc(x86.CondNE, haveSpace)
	k.block(x86.RBX, lSchedule)
	a.Jmp(waitLoop)

	a.Bind(haveSpace)
	// chunk = min(n, free, segment cap in socket mode, contiguous)
	a.Cmp(x86.R(x86.R14), x86.R(x86.R13))
	capN := a.NewLabel()
	a.Jcc(x86.CondBE, capN)
	a.Mov(x86.R(x86.R14), x86.R(x86.R13))
	a.Bind(capN)
	a.Test(x86.M(x86.RBX, PipeMode), x86.I(PipeModeSocket))
	noSeg := a.NewLabel()
	a.Jcc(x86.CondE, noSeg)
	a.Cmp(x86.R(x86.R14), x86.I(SegmentSize))
	a.Jcc(x86.CondBE, noSeg)
	a.Mov(x86.R(x86.R14), x86.I(SegmentSize))
	a.Bind(noSeg)
	a.Mov(x86.R(x86.R15), x86.M(x86.RBX, PipeWPos))
	a.And(x86.R(x86.R15), x86.I(PipeBufSize-1))
	a.Mov(x86.R(x86.RCX), x86.I(PipeBufSize))
	a.Sub(x86.R(x86.RCX), x86.R(x86.R15))
	a.Cmp(x86.R(x86.R14), x86.R(x86.RCX))
	capC := a.NewLabel()
	a.Jcc(x86.CondBE, capC)
	a.Mov(x86.R(x86.R14), x86.R(x86.RCX))
	a.Bind(capC)
	// Socket mode: checksum the outgoing segment first (TX pass).
	a.Test(x86.M(x86.RBX, PipeMode), x86.I(PipeModeSocket))
	noCk := a.NewLabel()
	a.Jcc(x86.CondE, noCk)
	a.Mov(x86.R(x86.RDI), x86.R(x86.RBP))
	a.Mov(x86.R(x86.RSI), x86.R(x86.R14))
	a.Call(lChecksum)
	a.Bind(noCk)
	// copy user -> ring
	a.Mov(x86.R(x86.RSI), x86.R(x86.RBP))
	a.Mov(x86.R(x86.RDI), x86.M(x86.RBX, PipeBufPtr))
	a.Add(x86.R(x86.RDI), x86.R(x86.R15))
	a.Mov(x86.R(x86.RCX), x86.R(x86.R14))
	a.RepMovs(1)
	a.Mov(x86.R(x86.RCX), x86.M(x86.RBX, PipeWPos))
	a.Add(x86.R(x86.RCX), x86.R(x86.R14))
	a.Mov(x86.M(x86.RBX, PipeWPos), x86.R(x86.RCX))
	a.Mov(x86.R(x86.RDI), x86.R(x86.RBX))
	a.Call(lWake)
	a.Mov(x86.R(x86.RAX), x86.R(x86.R14))
	a.Bind(out)
	a.Pop(x86.R(x86.R15))
	a.Pop(x86.R(x86.R14))
	a.Pop(x86.R(x86.R13))
	a.Pop(x86.R(x86.RBP))
	a.Pop(x86.R(x86.RBX))
	a.Ret()
}
