package kern

import (
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/stats"
	"ptlsim/internal/x86"
)

// emitString stores a string at [RDI] using immediate bytes; clobbers
// RAX. Returns the length.
func emitString(a *x86.Assembler, s string) {
	for i := 0; i < len(s); i++ {
		a.Movb(x86.M(x86.RDI, int32(i)), x86.I(int64(s[i])))
	}
}

// helloProg writes a string to the console and exits.
func helloProg(msg string) []byte {
	a := x86.NewAssembler(UserTextVA)
	buf := int64(UserDataVA)
	a.Mov(x86.R(x86.RDI), x86.I(buf))
	emitString(a, msg)
	a.Mov(x86.R(x86.RDI), x86.I(buf))
	a.Mov(x86.R(x86.RSI), x86.I(int64(len(msg))))
	a.Mov(x86.R(x86.RAX), x86.I(SysConsWrite))
	a.Syscall()
	a.Mov(x86.R(x86.RAX), x86.I(SysExit))
	a.Syscall()
	code, err := a.Bytes()
	if err != nil {
		panic(err)
	}
	return code
}

// runMachine boots the image and runs it to shutdown in the given mode.
func runMachine(t *testing.T, img *Image, tree *stats.Tree, mode core.Mode, maxCycles uint64) *core.Machine {
	t.Helper()
	m := core.NewMachine(img.Domain, tree, core.DefaultConfig())
	m.SwitchMode(mode)
	if err := m.Run(maxCycles); err != nil {
		t.Fatalf("run: %v (cycle %d, console %q)", err, m.Cycle, img.Domain.Console())
	}
	return m
}

func TestBootHelloNative(t *testing.T) {
	tree := stats.NewTree()
	img, err := Build(BuildSpec{
		Procs: []ProcSpec{{Name: "hello", Code: helloProg("hello from guest\n"), DataPages: 1}},
		Tree:  tree,
	})
	if err != nil {
		t.Fatal(err)
	}
	runMachine(t, img, tree, core.ModeNative, 500_000_000)
	if got := img.Domain.Console(); got != "hello from guest\n" {
		t.Fatalf("console = %q", got)
	}
}

func TestBootHelloSim(t *testing.T) {
	tree := stats.NewTree()
	img, err := Build(BuildSpec{
		Procs: []ProcSpec{{Name: "hello", Code: helloProg("sim mode\n"), DataPages: 1}},
		Tree:  tree,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := runMachine(t, img, tree, core.ModeSim, 50_000_000)
	if got := img.Domain.Console(); got != "sim mode\n" {
		t.Fatalf("console = %q", got)
	}
	if tree.Lookup("core0.commit.kernel_insns").Value() == 0 {
		t.Fatal("no kernel instructions committed in sim mode")
	}
	if tree.Lookup("core0.commit.user_insns").Value() == 0 {
		t.Fatal("no user instructions committed in sim mode")
	}
	_ = m
}

// producerConsumer builds a two-process pipeline: proc0 writes a
// deterministic pattern into pipe 0, proc1 reads and checksums it,
// reporting the sum over the console.
func producerConsumer(total int64, socket bool) BuildSpec {
	producer := func(a *x86.Assembler) {
		// r14 = remaining, r15 = value counter.
		a.Mov(x86.R(x86.R14), x86.I(total))
		a.Mov(x86.R(x86.R15), x86.I(0))
		outer := a.Mark()
		done := a.NewLabel()
		a.Cmp(x86.R(x86.R14), x86.I(0))
		a.Jcc(x86.CondE, done)
		// Fill a 512-byte chunk at UserDataVA with counter bytes.
		a.Mov(x86.R(x86.RDI), x86.I(UserDataVA))
		a.Mov(x86.R(x86.RCX), x86.I(512))
		fill := a.Mark()
		a.Movb(x86.M(x86.RDI, 0), x86.R(x86.R15))
		a.Inc(x86.R(x86.RDI))
		a.Inc(x86.R(x86.R15))
		a.Dec(x86.R(x86.RCX))
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		a.Jcc(x86.CondNE, fill)
		// write-all 512 bytes to pipe 0.
		a.Mov(x86.R(x86.RDI), x86.I(0))
		a.Mov(x86.R(x86.RSI), x86.I(UserDataVA))
		a.Mov(x86.R(x86.RDX), x86.I(512))
		wtop := a.Mark()
		wdone := a.NewLabel()
		a.Cmp(x86.R(x86.RDX), x86.I(0))
		a.Jcc(x86.CondE, wdone)
		a.Push(x86.R(x86.RDI))
		a.Mov(x86.R(x86.RAX), x86.I(SysWrite))
		a.Syscall()
		a.Pop(x86.R(x86.RDI))
		a.Add(x86.R(x86.RSI), x86.R(x86.RAX))
		a.Sub(x86.R(x86.RDX), x86.R(x86.RAX))
		a.Jmp(wtop)
		a.Bind(wdone)
		a.Sub(x86.R(x86.R14), x86.I(512))
		a.Jmp(outer)
		a.Bind(done)
		a.Mov(x86.R(x86.RDI), x86.I(0))
		a.Mov(x86.R(x86.RAX), x86.I(SysClose))
		a.Syscall()
		a.Mov(x86.R(x86.RAX), x86.I(SysExit))
		a.Syscall()
	}
	consumer := func(a *x86.Assembler) {
		// r14 = byte sum, loops reading 512-byte chunks until EOF.
		a.Mov(x86.R(x86.R14), x86.I(0))
		rtop := a.Mark()
		eof := a.NewLabel()
		a.Mov(x86.R(x86.RDI), x86.I(0))
		a.Mov(x86.R(x86.RSI), x86.I(UserDataVA))
		a.Mov(x86.R(x86.RDX), x86.I(512))
		a.Mov(x86.R(x86.RAX), x86.I(SysRead))
		a.Syscall()
		a.Cmp(x86.R(x86.RAX), x86.I(0))
		a.Jcc(x86.CondE, eof)
		// sum bytes
		a.Mov(x86.R(x86.RSI), x86.I(UserDataVA))
		a.Mov(x86.R(x86.RCX), x86.R(x86.RAX))
		stop := a.Mark()
		a.Movzx(x86.RDX, x86.M(x86.RSI, 0), 1)
		a.Add(x86.R(x86.R14), x86.R(x86.RDX))
		a.Inc(x86.R(x86.RSI))
		a.Dec(x86.R(x86.RCX))
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		a.Jcc(x86.CondNE, stop)
		a.Jmp(rtop)
		a.Bind(eof)
		// Render the sum as 16 hex digits + newline on the console.
		a.Mov(x86.R(x86.RDI), x86.I(UserDataVA + 0x800))
		a.Mov(x86.R(x86.RCX), x86.I(16))
		hexloop := a.Mark()
		a.Mov(x86.R(x86.RDX), x86.R(x86.R14))
		// nibble = (sum >> ((rcx-1)*4)) & 15
		a.Mov(x86.R(x86.RBX), x86.R(x86.RCX))
		a.Dec(x86.R(x86.RBX))
		a.Shl(x86.R(x86.RBX), x86.I(2))
		// rdx >>= rbx  (shift by CL)
		a.Push(x86.R(x86.RCX))
		a.Mov(x86.R(x86.RCX), x86.R(x86.RBX))
		a.Shr(x86.R(x86.RDX), x86.R(x86.RCX))
		a.Pop(x86.R(x86.RCX))
		a.And(x86.R(x86.RDX), x86.I(15))
		a.Cmp(x86.R(x86.RDX), x86.I(10))
		useAlpha := a.NewLabel()
		digitOut := a.NewLabel()
		a.Jcc(x86.CondGE, useAlpha)
		a.Add(x86.R(x86.RDX), x86.I('0'))
		a.Jmp(digitOut)
		a.Bind(useAlpha)
		a.Add(x86.R(x86.RDX), x86.I('a'-10))
		a.Bind(digitOut)
		a.Movb(x86.M(x86.RDI, 0), x86.R(x86.RDX))
		a.Inc(x86.R(x86.RDI))
		a.Dec(x86.R(x86.RCX))
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		a.Jcc(x86.CondNE, hexloop)
		a.Movb(x86.M(x86.RDI, 0), x86.I('\n'))
		a.Mov(x86.R(x86.RDI), x86.I(UserDataVA+0x800))
		a.Mov(x86.R(x86.RSI), x86.I(17))
		a.Mov(x86.R(x86.RAX), x86.I(SysConsWrite))
		a.Syscall()
		a.Mov(x86.R(x86.RAX), x86.I(SysExit))
		a.Syscall()
	}
	build := func(f func(*x86.Assembler)) []byte {
		a := x86.NewAssembler(UserTextVA)
		f(a)
		code, err := a.Bytes()
		if err != nil {
			panic(err)
		}
		return code
	}
	return BuildSpec{
		Procs: []ProcSpec{
			{Name: "producer", Code: build(producer), DataPages: 2},
			{Name: "consumer", Code: build(consumer), DataPages: 2},
		},
		Pipes: []PipeSpec{{Socket: socket}},
	}
}

// expectedSum computes the reference checksum for producerConsumer.
func expectedSum(total int64) uint64 {
	var sum uint64
	var ctr byte
	for i := int64(0); i < total; i++ {
		sum += uint64(ctr)
		ctr++
	}
	return sum
}

func checkSumOutput(t *testing.T, consoleOut string, total int64) {
	t.Helper()
	want := expectedSum(total)
	out := strings.TrimSpace(consoleOut)
	var got uint64
	for _, c := range out {
		got <<= 4
		switch {
		case c >= '0' && c <= '9':
			got |= uint64(c - '0')
		case c >= 'a' && c <= 'f':
			got |= uint64(c-'a') + 10
		default:
			t.Fatalf("bad console output %q", consoleOut)
		}
	}
	if got != want {
		t.Fatalf("checksum = %#x, want %#x (console %q)", got, want, consoleOut)
	}
}

func TestPipeProducerConsumerNative(t *testing.T) {
	tree := stats.NewTree()
	spec := producerConsumer(16384, false)
	spec.Tree = tree
	img, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	runMachine(t, img, tree, core.ModeNative, 2_000_000_000)
	checkSumOutput(t, img.Domain.Console(), 16384)
}

func TestPipeProducerConsumerSim(t *testing.T) {
	tree := stats.NewTree()
	spec := producerConsumer(4096, false)
	spec.Tree = tree
	img, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	runMachine(t, img, tree, core.ModeSim, 200_000_000)
	checkSumOutput(t, img.Domain.Console(), 4096)
}

func TestSocketPipeChecksumPath(t *testing.T) {
	tree := stats.NewTree()
	spec := producerConsumer(8192, true)
	spec.Tree = tree
	img, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	runMachine(t, img, tree, core.ModeNative, 2_000_000_000)
	checkSumOutput(t, img.Domain.Console(), 8192)
}

// Native and sim mode must produce identical guest-visible results —
// the co-simulation correctness property at full system scope.
func TestNativeSimConsistency(t *testing.T) {
	run := func(mode core.Mode) string {
		tree := stats.NewTree()
		spec := producerConsumer(4096, true)
		spec.Tree = tree
		img, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		runMachine(t, img, tree, mode, 2_000_000_000)
		return img.Domain.Console()
	}
	if n, s := run(core.ModeNative), run(core.ModeSim); n != s {
		t.Fatalf("native %q != sim %q", n, s)
	}
}

// The timer must preempt a CPU-bound process so a second process makes
// progress (round-robin scheduling via timer ticks).
func TestTimerPreemption(t *testing.T) {
	spin := func(a *x86.Assembler) {
		// Spin until the flag at UserDataVA (set by proc 1 via its own
		// exit) ... simply spin a bounded loop then exit.
		a.Mov(x86.R(x86.RCX), x86.I(2_000_000))
		top := a.Mark()
		a.Dec(x86.R(x86.RCX))
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		a.Jcc(x86.CondNE, top)
		a.Mov(x86.R(x86.RAX), x86.I(SysExit))
		a.Syscall()
	}
	hello := func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RDI), x86.I(UserDataVA))
		emitString(a, "B ran\n")
		a.Mov(x86.R(x86.RDI), x86.I(UserDataVA))
		a.Mov(x86.R(x86.RSI), x86.I(6))
		a.Mov(x86.R(x86.RAX), x86.I(SysConsWrite))
		a.Syscall()
		a.Mov(x86.R(x86.RAX), x86.I(SysExit))
		a.Syscall()
	}
	build := func(f func(*x86.Assembler)) []byte {
		a := x86.NewAssembler(UserTextVA)
		f(a)
		code, err := a.Bytes()
		if err != nil {
			panic(err)
		}
		return code
	}
	tree := stats.NewTree()
	img, err := Build(BuildSpec{
		Procs: []ProcSpec{
			{Name: "spin", Code: build(spin), DataPages: 1},
			{Name: "hello", Code: build(hello), DataPages: 1},
		},
		TimerPeriod: 50_000,
		Tree:        tree,
	})
	if err != nil {
		t.Fatal(err)
	}
	runMachine(t, img, tree, core.ModeNative, 4_000_000_000)
	if img.Domain.Console() != "B ran\n" {
		t.Fatalf("console = %q", img.Domain.Console())
	}
	if ticks, _ := img.ReadKernelData(GTickCount); ticks == 0 {
		t.Fatal("no timer ticks observed")
	}
}

// Determinism: two identical sim runs produce bit-identical statistics
// (the paper's -maskints guarantee).
func TestSimDeterminism(t *testing.T) {
	run := func() (uint64, int64, int64) {
		tree := stats.NewTree()
		spec := producerConsumer(2048, false)
		spec.Tree = tree
		img, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		m := runMachine(t, img, tree, core.ModeSim, 200_000_000)
		return m.Cycle, tree.Lookup("core0.commit.insns").Value(),
			tree.Lookup("core0.cache.l1d.misses").Value()
	}
	c1, i1, m1 := run()
	c2, i2, m2 := run()
	if c1 != c2 || i1 != i2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, i1, m1, c2, i2, m2)
	}
}
