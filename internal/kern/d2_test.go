package kern

import (
	"testing"

	"ptlsim/internal/x86"
)

func TestDebugDisasm2(t *testing.T) {
	img, err := AssembleKernel(0)
	if err != nil {
		t.Fatal(err)
	}
	pos := uint64(0x2a0)
	for pos < 0x330 {
		inst, err := x86.Decode(img.Code[pos:])
		if err != nil {
			pos++
			continue
		}
		t.Logf("%#x: %s", KernelTextVA+pos, &inst)
		pos += uint64(inst.Len)
	}
}
