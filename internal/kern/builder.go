package kern

import (
	"encoding/binary"
	"fmt"

	"ptlsim/internal/hv"
	"ptlsim/internal/mem"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// ProcSpec describes one guest process to preload (the equivalent of
// the init script starting sshd/rsync processes in the paper's
// benchmark image).
type ProcSpec struct {
	Name      string
	Code      []byte // user text, assembled at UserTextVA
	Args      [3]uint64
	Data      []byte // preloaded at UserDataVA
	DataPages int    // total writable pages at UserDataVA (>= len(Data) pages)
}

// PipeSpec configures one kernel pipe.
type PipeSpec struct {
	Socket bool // loopback-TCP mode: segmented + checksummed
}

// BuildSpec describes a complete domain.
type BuildSpec struct {
	Procs       []ProcSpec
	Pipes       []PipeSpec
	TimerPeriod uint64
	VCPUs       int
	Tree        *stats.Tree
}

// Image is a built, bootable domain.
type Image struct {
	Domain  *hv.Domain
	Kernel  *KernelImage
	BootCR3 uint64
	// KernCtx is a kernel-privileged context for inspection from tests
	// and tools (reading guest memory after a run).
	KernCtx *vm.Context
}

const pml4KernelSlot = 256 // 0xFFFF800000000000 >> 39

// Build constructs the domain: assembles the kernel, lays out physical
// memory, builds the shared kernel mappings and per-process address
// spaces, initializes the kernel data structures (process table, pipe
// headers), and prepares VCPU 0 to boot at the kernel entry.
func Build(spec BuildSpec) (*Image, error) {
	if len(spec.Procs) == 0 || len(spec.Procs) > NProc {
		return nil, fmt.Errorf("kern: %d processes (max %d)", len(spec.Procs), NProc)
	}
	if len(spec.Pipes) > NPipes {
		return nil, fmt.Errorf("kern: %d pipes (max %d)", len(spec.Pipes), NPipes)
	}
	if spec.Tree == nil {
		spec.Tree = stats.NewTree()
	}
	if spec.VCPUs <= 0 {
		spec.VCPUs = 1
	}

	kimg, err := AssembleKernel(spec.TimerPeriod)
	if err != nil {
		return nil, err
	}

	pm := mem.NewPhysMem()
	m := &vm.Machine{PM: pm}
	dom := hv.NewDomain(m, spec.VCPUs, spec.Tree)

	// Kernel address space (boot CR3). All kernel mappings live under
	// PML4 slot 256 and are shared into every process space.
	kas := mem.NewAddressSpace(pm)
	kflags := mem.PTEWritable // supervisor-only
	mapRange := func(as *mem.AddressSpace, va uint64, pages int, flags uint64) error {
		return as.MapRange(va, pm.AllocPages(pages), flags)
	}
	if err := mapRange(kas, KernelTextVA, KernelTextPages, kflags); err != nil {
		return nil, err
	}
	if err := mapRange(kas, KernelDataVA, KernelDataPages, kflags); err != nil {
		return nil, err
	}
	stackPages := NProc * KernelStackSize / mem.PageSize
	// One extra stack for the boot path (before any process runs).
	if err := mapRange(kas, KernelStackVA, stackPages+4, kflags); err != nil {
		return nil, err
	}
	if err := mapRange(kas, PipeBufVA, NPipes, kflags); err != nil {
		return nil, err
	}

	// Kernel-privileged context over the boot space for loading.
	kctx := vm.NewContext(m, 0)
	kctx.Kernel = true
	kctx.CR3 = kas.CR3()
	if f := kctx.WriteVirtBytes(KernelTextVA, kimg.Code); f != uops.FaultNone {
		return nil, fmt.Errorf("kern: loading kernel text: %v", f)
	}

	// Kernel globals and tables.
	kdata := make([]byte, GPipeTable+NPipes*PipeHdrSize)
	put := func(off int, v uint64) { binary.LittleEndian.PutUint64(kdata[off:], v) }
	put(GCurrent, NProc) // none
	put(GNeedResched, 0)
	put(GLiveProcs, uint64(len(spec.Procs)))
	put(GTickCount, 0)

	// Per-process address spaces and PCBs.
	for pid, ps := range spec.Procs {
		as := mem.NewAddressSpace(pm)
		if err := as.ShareTopLevel(kas, pml4KernelSlot); err != nil {
			return nil, err
		}
		uflags := mem.PTEWritable | mem.PTEUser
		textPages := (len(ps.Code) + mem.PageSize - 1) / mem.PageSize
		if textPages == 0 {
			textPages = 1
		}
		if err := mapRange(as, UserTextVA, textPages, uflags); err != nil {
			return nil, err
		}
		dataPages := ps.DataPages
		if min := (len(ps.Data) + mem.PageSize - 1) / mem.PageSize; dataPages < min {
			dataPages = min
		}
		if dataPages > 0 {
			if err := mapRange(as, UserDataVA, dataPages, uflags); err != nil {
				return nil, err
			}
		}
		if err := mapRange(as, UserStackVA-UserStackPages*mem.PageSize, UserStackPages, uflags); err != nil {
			return nil, err
		}

		// Load user text and data through a context on this space.
		uctx := vm.NewContext(m, 0)
		uctx.Kernel = true
		uctx.CR3 = as.CR3()
		if f := uctx.WriteVirtBytes(UserTextVA, ps.Code); f != uops.FaultNone {
			return nil, fmt.Errorf("kern: loading %s text: %v", ps.Name, f)
		}
		if len(ps.Data) > 0 {
			if f := uctx.WriteVirtBytes(UserDataVA, ps.Data); f != uops.FaultNone {
				return nil, fmt.Errorf("kern: loading %s data: %v", ps.Name, f)
			}
		}

		off := GProcTable + pid*PCBSize
		put(off+PCBState, StateNew)
		put(off+PCBCr3, as.CR3())
		put(off+PCBKstackTop, KernelStackVA+uint64(pid+1)*KernelStackSize)
		put(off+PCBWaitCh, 0)
		put(off+PCBPid, uint64(pid))
		put(off+PCBEntry, UserTextVA)
		put(off+PCBUstack, UserStackVA)
		put(off+PCBArg0, ps.Args[0])
		put(off+PCBArg1, ps.Args[1])
		put(off+PCBArg2, ps.Args[2])
	}

	// Pipe headers.
	for i, p := range spec.Pipes {
		off := GPipeTable + i*PipeHdrSize
		mode := uint64(0)
		if p.Socket {
			mode = PipeModeSocket
		}
		put(off+PipeMode, mode)
		put(off+PipeBufPtr, PipeBufVA+uint64(i)*PipeBufSize)
	}
	// Pipes beyond the spec still get valid buffer pointers.
	for i := len(spec.Pipes); i < NPipes; i++ {
		off := GPipeTable + i*PipeHdrSize
		put(off+PipeBufPtr, PipeBufVA+uint64(i)*PipeBufSize)
	}

	if f := kctx.WriteVirtBytes(KernelDataVA, kdata); f != uops.FaultNone {
		return nil, fmt.Errorf("kern: writing kernel data: %v", f)
	}

	// VCPU 0 boots the kernel on a dedicated boot stack above the
	// process stacks.
	boot := dom.VCPUs[0]
	boot.Kernel = true
	boot.CR3 = kas.CR3()
	boot.RIP = kimg.BootEntry
	boot.Regs[uops.RegRSP] = KernelStackVA + uint64(stackPages+4)*mem.PageSize
	boot.KernelRSP = boot.Regs[uops.RegRSP]

	return &Image{Domain: dom, Kernel: kimg, BootCR3: kas.CR3(), KernCtx: kctx}, nil
}

// ReadKernelData reads a kernel global (tests and tools).
func (img *Image) ReadKernelData(off int) (uint64, error) {
	v, f := img.KernCtx.ReadVirt(KernelDataVA+uint64(off), 8)
	if f != uops.FaultNone {
		return 0, fmt.Errorf("kern: reading kdata+%#x: %v", off, f)
	}
	return v, nil
}
