package ooo

// Interlock is the interlock controller shared by all SMT threads in a
// core and (via the memory hierarchy) all cores in a machine: x86
// LOCK-prefixed instructions acquire a lock on the physical cache line
// at their ld.acq uop and release it when the owning instruction
// commits (or is squashed). Competing accesses replay until they can
// acquire the lock — the paper's §4.4 semantics, matching Pentium 4
// hyperthreading behavior.
type Interlock struct {
	owners map[uint64]lockOwner // line address -> owner
}

type lockOwner struct {
	core, thread int
	seq          uint64 // owning instruction's sequence number
}

// NewInterlock creates an empty controller.
func NewInterlock() *Interlock {
	return &Interlock{owners: make(map[uint64]lockOwner)}
}

// Acquire attempts to lock line for (core, thread, seq). It succeeds if
// the line is free or already held by the same instruction. Deadlock
// freedom: a younger instruction can never block an older one of the
// same thread because each thread holds at most one interlock at a
// time and locks are acquired at a single uop.
func (il *Interlock) Acquire(line uint64, core, thread int, seq uint64) bool {
	if o, held := il.owners[line]; held {
		return o.core == core && o.thread == thread && o.seq == seq
	}
	il.owners[line] = lockOwner{core: core, thread: thread, seq: seq}
	return true
}

// Release unlocks line if (core, thread, seq) owns it.
func (il *Interlock) Release(line uint64, core, thread int, seq uint64) {
	if o, held := il.owners[line]; held && o.core == core && o.thread == thread && o.seq == seq {
		delete(il.owners, line)
	}
}

// ReleaseAllFor releases every lock held by instructions of (core,
// thread) with sequence >= minSeq — used when squashing.
func (il *Interlock) ReleaseAllFor(core, thread int, minSeq uint64) {
	for line, o := range il.owners {
		if o.core == core && o.thread == thread && o.seq >= minSeq {
			delete(il.owners, line)
		}
	}
}

// Held reports whether line is locked (for tests).
func (il *Interlock) Held(line uint64) bool {
	_, ok := il.owners[line]
	return ok
}
