package ooo

import (
	"testing"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
	"ptlsim/internal/x86"
)

// Regression: a page-aligned store must not be misclassified as
// page-crossing (a uint8 truncation of the page remainder once sent
// store data to physical page zero, corrupting the PML4).
func TestPageAlignedStoreRegression(t *testing.T) {
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RDI), x86.I(dataVA)) // page-aligned
		a.Mov(x86.M(x86.RDI, 0), x86.I(100))
		a.Mov(x86.R(x86.RBX), x86.I(1))
		a.LockXadd(x86.M(x86.RDI, 0), x86.R(x86.RBX))
		a.Mov(x86.R(x86.R8), x86.M(x86.RDI, 0))
		a.Ptlcall()
	})
	got, _, _ := runOOO(t, code, DefaultConfig(), 100000)
	if got.Regs[uops.RegR8] != 101 {
		t.Fatalf("r8 = %d, want 101", got.Regs[uops.RegR8])
	}
}

// Regression: repeated full flushes (an interrupt storm) must neither
// leak nor double-free physical registers. A double free once let two
// renames share one register, wedging the pipeline after delivery.
func TestInterruptStormPhysRegBalance(t *testing.T) {
	const handlerVA = codeVA + 0x800
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RBX), x86.I(0))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.R15), x86.I(40)) // handler increments R15
			return x86.CondL
		}, func() {
			a.Inc(x86.R(x86.RBX))
		})
		a.Ptlcall()
	})
	h := x86.NewAssembler(handlerVA)
	h.Pop(x86.R(x86.R10))
	h.Pop(x86.R(x86.R11))
	h.Inc(x86.R(x86.R15))
	h.Iretq()
	handler, err := h.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g := buildGuest(t, code, 1)
	ctx := g.newCtx(0)
	if f := ctx.WriteVirtBytes(handlerVA, handler); f != uops.FaultNone {
		t.Fatal(f)
	}
	ctx.TrapEntry = handlerVA
	ctx.KernelRSP = stackTop - 0x800
	ctx.SetFlags(ctx.Flags() | x86.FlagIF)
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := New(0, DefaultConfig(), []*vm.Context{ctx}, g.sys, bbc, tree, "ooo")
	for cyc := uint64(0); cyc < 1_000_000 && !g.sys.stopped[0]; cyc++ {
		// Fire an event every 500 cycles while in user mode.
		if cyc%500 == 0 && !ctx.Kernel {
			g.sys.events[0] = true
		}
		if err := core.Cycle(cyc); err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
		if g.sys.events[0] && ctx.Kernel {
			g.sys.events[0] = false
		}
	}
	if !g.sys.stopped[0] {
		t.Fatalf("wedged: rip=%#x r15=%d flushes=%d", ctx.RIP,
			ctx.Regs[uops.RegR15], tree.Lookup("ooo.pipeline_flushes").Value())
	}
	if got := tree.Lookup("ooo.interrupts").Value(); got < 40 {
		t.Fatalf("interrupts delivered = %d, want >= 40", got)
	}
	// Physical register accounting: everything in flight was flushed
	// at the final assist, so free + RAT-resident must equal the total.
	inRAT := int(uops.NumArchRegs)
	if len(core.free)+inRAT != core.cfg.PhysRegs {
		t.Fatalf("phys reg leak: free=%d + rat=%d != %d",
			len(core.free), inRAT, core.cfg.PhysRegs)
	}
}
