// Package ooo implements the default PTLsim core model: a modern
// superscalar out-of-order x86-64 core fetching pre-decoded uops from
// the basic block cache, with physical-register renaming, clustered
// collapsing issue queues with broadcast wakeup, configurable
// functional units and latencies, load/store queues with store→load
// forwarding and replay, TLBs backed by a cycle-level page walker,
// atomic x86 commit with precise exceptions, SMT with per-thread
// frontend/ROB/LDQ/STQ and shared execution resources, and interlocked
// instruction support via an interlock controller (paper §2.2, §4.4).
package ooo

import (
	"fmt"

	"ptlsim/internal/bpred"
	"ptlsim/internal/cache"
	"ptlsim/internal/tlb"
	"ptlsim/internal/uops"
)

// OpClass buckets uops for issue-queue and functional-unit routing.
type OpClass uint8

// Operation classes.
const (
	ClassALU OpClass = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassFP
	ClassFDiv
	NumClasses
)

// ClassMask selects a set of op classes.
type ClassMask uint16

// Has reports whether the mask contains class c.
func (m ClassMask) Has(c OpClass) bool { return m&(1<<c) != 0 }

// MaskOf builds a ClassMask.
func MaskOf(cs ...OpClass) ClassMask {
	var m ClassMask
	for _, c := range cs {
		m |= 1 << c
	}
	return m
}

// IntClasses covers everything but FP.
func IntClasses() ClassMask {
	return MaskOf(ClassALU, ClassMul, ClassDiv, ClassLoad, ClassStore, ClassBranch)
}

// ClusterConfig describes one issue queue / execution cluster. PTLsim
// models clustered microarchitectures with configurable inter-cluster
// latencies; ExtraLatency is the distance of this cluster from the
// integer core (the K8 FP scheduler sits two cycles away).
type ClusterConfig struct {
	Name         string
	IQSize       int
	IssueWidth   int
	Classes      ClassMask
	ExtraLatency uint64
}

// Config is the full core configuration.
type Config struct {
	FetchWidth  int // uops fetched per cycle
	RenameWidth int
	CommitWidth int

	FetchQSize int
	ROBSize    int
	LDQSize    int
	STQSize    int
	PhysRegs   int

	Clusters []ClusterConfig

	// Latencies by op class (cycles). Loads take the cache latency on
	// top of address generation.
	Latency [NumClasses]uint64

	// LoadHoisting allows loads to issue speculatively past unresolved
	// older stores (replay/flush on mis-speculation). The K8 does not
	// hoist loads this way, so the Table 1 configuration disables it.
	LoadHoisting bool

	// EnforceBanking models K8-style L1 bank conflicts: two same-cycle
	// accesses to the same bank of different lines replay the younger.
	EnforceBanking bool

	// FrontendLatency is the redirect penalty in cycles after a
	// mispredicted branch (pipeline refill depth).
	FrontendLatency uint64

	Caches cache.HierarchyConfig
	Bpred  bpred.Config

	DTLBEntries, DTLBAssoc int
	ITLBEntries, ITLBAssoc int

	// SMT thread limit for this core (hardware contexts).
	MaxThreads int
}

// Validate checks the core configuration for the invariants the
// constructors rely on, returning a usable error message for bad CLI
// flags instead of a panic deep inside construction. A config that
// passes Validate builds a core without hitting any defensive
// rounding or panics.
func (cfg Config) Validate() error {
	if cfg.FetchWidth <= 0 || cfg.RenameWidth <= 0 || cfg.CommitWidth <= 0 {
		return fmt.Errorf("ooo: pipeline widths must be positive (fetch=%d rename=%d commit=%d)",
			cfg.FetchWidth, cfg.RenameWidth, cfg.CommitWidth)
	}
	if cfg.FetchQSize <= 0 || cfg.ROBSize <= 0 || cfg.LDQSize <= 0 || cfg.STQSize <= 0 {
		return fmt.Errorf("ooo: queue sizes must be positive (fetchq=%d rob=%d ldq=%d stq=%d)",
			cfg.FetchQSize, cfg.ROBSize, cfg.LDQSize, cfg.STQSize)
	}
	if cfg.MaxThreads <= 0 {
		return fmt.Errorf("ooo: MaxThreads %d must be positive", cfg.MaxThreads)
	}
	// Every thread's RAT pins NumArchRegs physical registers; rename
	// needs headroom beyond that or the core wedges at startup.
	minRegs := cfg.MaxThreads*int(uops.NumArchRegs) + cfg.RenameWidth
	if cfg.PhysRegs < minRegs {
		return fmt.Errorf("ooo: %d physical registers insufficient for %d threads (need >= %d)",
			cfg.PhysRegs, cfg.MaxThreads, minRegs)
	}
	if len(cfg.Clusters) == 0 {
		return fmt.Errorf("ooo: at least one issue cluster required")
	}
	var covered ClassMask
	for i, cl := range cfg.Clusters {
		if cl.IQSize <= 0 || cl.IssueWidth <= 0 {
			return fmt.Errorf("ooo: cluster %d (%s): IQSize and IssueWidth must be positive", i, cl.Name)
		}
		covered |= cl.Classes
	}
	for op := OpClass(0); op < NumClasses; op++ {
		if !covered.Has(op) {
			return fmt.Errorf("ooo: no issue cluster accepts op class %d", op)
		}
	}
	if err := tlb.CheckGeometry(cfg.DTLBEntries, cfg.DTLBAssoc); err != nil {
		return fmt.Errorf("ooo: dtlb: %w", err)
	}
	if err := tlb.CheckGeometry(cfg.ITLBEntries, cfg.ITLBAssoc); err != nil {
		return fmt.Errorf("ooo: itlb: %w", err)
	}
	if err := cfg.Caches.Validate(); err != nil {
		return fmt.Errorf("ooo: %w", err)
	}
	if err := cfg.Bpred.Validate(); err != nil {
		return fmt.Errorf("ooo: %w", err)
	}
	return nil
}

// DefaultConfig is a generic modern 4-wide core.
func DefaultConfig() Config {
	cfg := Config{
		FetchWidth:  4,
		RenameWidth: 4,
		CommitWidth: 4,
		FetchQSize:  32,
		ROBSize:     128,
		LDQSize:     32,
		STQSize:     24,
		PhysRegs:    256,
		Clusters: []ClusterConfig{
			{Name: "int", IQSize: 32, IssueWidth: 4, Classes: IntClasses()},
			{Name: "fp", IQSize: 24, IssueWidth: 2, Classes: MaskOf(ClassFP, ClassFDiv), ExtraLatency: 1},
		},
		LoadHoisting:    true,
		FrontendLatency: 10,
		Caches:          cache.DefaultHierarchy(),
		Bpred:           bpred.DefaultConfig(),
		DTLBEntries:     64, DTLBAssoc: 4,
		ITLBEntries: 64, ITLBAssoc: 4,
		MaxThreads: 1,
	}
	cfg.Latency = defaultLatencies()
	return cfg
}

// K8Config reproduces the Table 1 experiment configuration: 72-entry
// ROB, 44-entry load/store queue, three 8-entry integer issue queues
// (the K8's three lanes), a 36-entry FP queue two cycles away, 128-entry
// register files sized so the ROB is the bottleneck, no load hoisting,
// enforced L1 banking, a 16K gshare-like predictor, 32-entry TLBs, and
// the measured K8 memory latencies.
func K8Config() Config {
	cfg := Config{
		FetchWidth:  3,
		RenameWidth: 3,
		CommitWidth: 3,
		FetchQSize:  24,
		ROBSize:     72,
		LDQSize:     22,
		STQSize:     22,
		PhysRegs:    256, // 2 x 128-entry files; ROB is the bottleneck
		Clusters: []ClusterConfig{
			{Name: "int0", IQSize: 8, IssueWidth: 1, Classes: IntClasses()},
			{Name: "int1", IQSize: 8, IssueWidth: 1, Classes: IntClasses()},
			{Name: "int2", IQSize: 8, IssueWidth: 1, Classes: IntClasses()},
			{Name: "fp", IQSize: 36, IssueWidth: 3, Classes: MaskOf(ClassFP, ClassFDiv), ExtraLatency: 2},
		},
		LoadHoisting:    false,
		EnforceBanking:  true,
		FrontendLatency: 11,
		Caches:          cache.K8Hierarchy(),
		Bpred:           bpred.K8Config(),
		DTLBEntries:     32, DTLBAssoc: 32, // fully associative 32-entry
		ITLBEntries: 32, ITLBAssoc: 32,
		MaxThreads: 1,
	}
	cfg.Latency = defaultLatencies()
	cfg.Latency[ClassMul] = 3
	cfg.Latency[ClassDiv] = 23
	return cfg
}

// SMTConfig is the default core with n hardware threads.
func SMTConfig(n int) Config {
	cfg := DefaultConfig()
	if n > 16 {
		n = 16 // paper: up to 16 threads per core
	}
	cfg.MaxThreads = n
	return cfg
}

func defaultLatencies() [NumClasses]uint64 {
	var l [NumClasses]uint64
	l[ClassALU] = 1
	l[ClassMul] = 3
	l[ClassDiv] = 20
	l[ClassLoad] = 0 // cache adds its own latency
	l[ClassStore] = 1
	l[ClassBranch] = 1
	l[ClassFP] = 4
	l[ClassFDiv] = 16
	return l
}
