package ooo

import (
	"testing"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/evlog"
	"ptlsim/internal/seqcore"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
)

// runOOOEvlog is runOOO with a pipeline event log attached.
func runOOOEvlog(t *testing.T, code []byte, cfg Config, maxCycles uint64) (*vm.Context, *Core, *evlog.Log) {
	t.Helper()
	g := buildGuest(t, code, 1)
	ctx := g.newCtx(0)
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := New(0, cfg, []*vm.Context{ctx}, g.sys, bbc, tree, "ooo")
	l := evlog.New(1 << 14)
	core.SetEventLog(l)
	for cyc := uint64(0); cyc < maxCycles && !g.sys.stopped[0]; cyc++ {
		if err := core.Cycle(cyc); err != nil {
			t.Fatalf("ooo cycle %d: %v (rip %#x)", cyc, err, ctx.RIP)
		}
	}
	if !g.sys.stopped[0] {
		t.Fatalf("ooo run did not finish (rip %#x, insns %d)", ctx.RIP, core.Insns())
	}
	return ctx, core, l
}

// TestEvlogRecordsPipeline runs a real program with the event log
// attached and checks the recorded stream is a coherent pipeline
// history: every uop stage appears, commits are never annulled, and
// recording does not perturb architectural execution.
func TestEvlogRecordsPipeline(t *testing.T) {
	code := progSum(t)
	want, wantInsns := runSeq(t, code)
	got, core, l := runOOOEvlog(t, code, DefaultConfig(), 3_000_000)
	if !vm.ArchEqual(want, got) {
		t.Fatalf("event logging perturbed execution: %s", vm.DiffArch(want, got))
	}
	if core.Insns() != wantInsns {
		t.Fatalf("insn count: ooo %d vs seq %d", core.Insns(), wantInsns)
	}
	if l.Len() == 0 {
		t.Fatal("no events recorded")
	}

	stageSeen := map[evlog.Stage]int{}
	for _, e := range l.Events() {
		stageSeen[e.Stage]++
		if e.Stage == evlog.StageCommit && e.Flags&evlog.FlagAnnulled != 0 {
			t.Fatalf("committed uop seq %d flagged annulled", e.Seq)
		}
		if e.Stage < evlog.StageRedirect && e.Op == evlog.NoOp {
			t.Fatalf("uop event seq %d stage %v has no opcode", e.Seq, e.Stage)
		}
	}
	for _, s := range []evlog.Stage{evlog.StageFetch, evlog.StageRename,
		evlog.StageDispatch, evlog.StageIssue, evlog.StageComplete, evlog.StageCommit} {
		if stageSeen[s] == 0 {
			t.Fatalf("stage %v never recorded (seen: %v)", s, stageSeen)
		}
	}
	// The sum loop's exit branch mispredicts at least once, so recovery
	// must have annulled some wrong-path work and logged the redirect
	// (or flush) carrier that caused it.
	annulled := 0
	for _, e := range l.Events() {
		if e.Flags&evlog.FlagAnnulled != 0 {
			annulled++
		}
	}
	if annulled == 0 {
		t.Fatal("loop-exit mispredict should annul wrong-path events")
	}
	if stageSeen[evlog.StageRedirect]+stageSeen[evlog.StageFlush] == 0 {
		t.Fatalf("no redirect/flush carrier recorded (seen: %v)", stageSeen)
	}
}

// TestEvlogSeqCoreCommits: the sequential core logs commit-only events
// flagged FlagSeqCore, with the committed-instruction count standing in
// for the (nonexistent) cycle clock.
func TestEvlogSeqCoreCommits(t *testing.T) {
	code := progSum(t)
	g := buildGuest(t, code, 1)
	ctx := g.newCtx(0)
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := seqcore.New(ctx, g.sys, bbc, tree, "seq")
	l := evlog.New(1 << 12)
	core.SetEventLog(l, 0)
	for i := 0; i < 2_000_000 && !g.sys.stopped[0]; i++ {
		if _, err := core.Step(); err != nil {
			t.Fatalf("seq step: %v", err)
		}
	}
	if !g.sys.stopped[0] {
		t.Fatal("seq run did not finish")
	}
	if l.Len() == 0 {
		t.Fatal("no events recorded")
	}
	var lastCycle, lastSeq uint64
	for _, e := range l.Events() {
		if e.Stage != evlog.StageCommit {
			t.Fatalf("seq core recorded stage %v", e.Stage)
		}
		if e.Flags&evlog.FlagSeqCore == 0 {
			t.Fatalf("seq core event missing FlagSeqCore: %+v", e)
		}
		if e.Cycle < lastCycle || e.Seq <= lastSeq {
			t.Fatalf("non-monotonic seq core stream: %+v", e)
		}
		lastCycle, lastSeq = e.Cycle, e.Seq
	}
	if core.Insns() < int64(l.Len()) {
		t.Fatalf("more commit events (%d) than committed insns (%d)", l.Len(), core.Insns())
	}
}
