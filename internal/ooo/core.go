package ooo

import (
	"fmt"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/bpred"
	"ptlsim/internal/cache"
	"ptlsim/internal/decode"
	"ptlsim/internal/evlog"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
	"ptlsim/internal/tlb"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// robState tracks a uop's progress through the backend.
type robState uint8

const (
	stateWaiting robState = iota // in an issue queue
	stateIssued                  // executing, completes at readyCycle
	stateDone                    // result available / ready to commit
)

// physReg is one physical register file entry.
type physReg struct {
	value uint64
	ready bool
}

// robEntry is one reorder buffer slot (one uop).
type robEntry struct {
	valid bool
	uop   uops.Uop
	seq   uint64

	rdPhys, rdOld int // -1 when no destination
	flPhys, flOld int // -1 when no flag write
	src           [3]int

	state      robState
	readyCycle uint64
	earliest   uint64 // replay backoff: do not issue before this cycle
	cluster    int

	result uint64
	fault  uops.Fault

	// Memory state.
	ea, pa, pa2 uint64
	storeData   uint64
	addrValid   bool
	lockLine    uint64
	lockHeld    bool

	// Branch state.
	predTarget   uint64
	predSnapshot uint64
	rasSnap      bpred.RASSnapshot
	hasRASSnap   bool
	mispredicted bool
}

func (e *robEntry) isMem() bool   { return e.uop.IsLoad() || e.uop.IsStore() }
func (e *robEntry) isAssist() bool { return e.uop.Op == uops.OpAssist }

// fetched is a predicted uop waiting in the fetch queue for rename.
type fetched struct {
	uop          uops.Uop
	predTarget   uint64
	predSnapshot uint64
	rasSnap      bpred.RASSnapshot
	hasRASSnap   bool
	// fetchCycle is set only when the event log is enabled: the fetch
	// event itself is emitted retroactively at rename, once the uop has
	// a sequence number to be identified by.
	fetchCycle uint64
}

// thread is one SMT hardware context: private frontend, ROB, LDQ and
// STQ; shared issue queues, physical registers, FUs and caches.
type thread struct {
	id  int
	ctx *vm.Context

	rat [uops.NumArchRegs]int

	rob      []robEntry
	robHead  int
	robCount int

	ldq []int // rob indices of loads, program order
	stq []int // rob indices of stores, program order

	fetchRIP        uint64
	fetchQ          []fetched
	curBB           *decode.BasicBlock
	bbIdx           int
	fetchStallUntil uint64
	fetchFault      uops.Fault
	flushGen        uint64

	pred *bpred.Predictor

	// Per-thread TLBs (tagged-by-thread model: SMT threads may run in
	// different address spaces).
	dtlb *tlb.TLB
	itlb *tlb.TLB
}

// iqEntry is an issue queue slot referring back to a ROB entry.
type iqEntry struct {
	thread, rob int
	seq         uint64
}

// CommittedStore describes one store applied to memory by a committing
// instruction group (PA2 is nonzero only for page-crossing stores).
type CommittedStore struct {
	EA, PA, PA2 uint64
	Data        uint64
	Size        uint8
}

// CommitChecker observes architectural commit boundaries — the hook the
// lockstep commit oracle (internal/selfcheck) attaches through. All
// three methods fire synchronously inside the commit stage.
type CommitChecker interface {
	// PreCommit fires before a clean instruction group starting at rip
	// commits on thread t, before any of its register or memory effects
	// are applied. noCount marks a pseudo-group that does not count as
	// a committed x86 instruction (a REP iteration check): such a group
	// can commit several times in a row at the same rip — its not-taken
	// successor is a group at its own address, so a misprediction
	// redirect re-decodes and re-commits it — and the checker needs the
	// flag to tell those re-commits apart from the counted group that
	// shares the rip. A returned error aborts the cycle and surfaces
	// from Cycle (decorated with the core's pipeline dump).
	PreCommit(t int, ctx *vm.Context, rip uint64, noCount bool) error
	// PostCommit fires after the group has fully committed: ctx holds
	// the post-group architectural state, insns the total committed x86
	// instruction count, and stores the group's store traffic.
	PostCommit(t int, ctx *vm.Context, insns int64, stores []CommittedStore) error
	// Resync fires after any full pipeline flush that re-architects
	// state outside the clean-commit path (exception and interrupt
	// delivery, microcode assists, SMC restarts): the checker must
	// re-adopt ctx wholesale.
	Resync(t int, ctx *vm.Context)
}

// Core is one out-of-order core instance.
type Core struct {
	ID  int
	cfg Config

	threads []*thread
	prf     []physReg
	free    []int
	iqs     [][]iqEntry

	hier *cache.Hierarchy

	bbc       *bbcache.Cache
	sys       vm.System
	interlock *Interlock

	now uint64
	seq uint64

	// Per-cycle L1D bank usage: bank -> line address.
	bankUse map[int]uint64

	// Deferred branch/load-speculation recoveries, applied once per
	// cycle after the issue stage.
	redirects []redirect

	// commitLimit, when positive, stops the commit stage once that
	// many x86 instructions have committed (used by co-simulation to
	// pause at an exact instruction boundary).
	commitLimit int64

	// Commit-progress watchdog: when watchdogCycles > 0 and no thread
	// has committed a uop (or taken an interrupt/assist) for that many
	// cycles while work is in flight, Cycle returns a structured
	// livelock SimError instead of spinning forever.
	watchdogCycles uint64
	lastProgress   uint64
	progressInit   bool

	// recentRIPs is a ring of the most recently committed instruction
	// addresses, attached to SimErrors for post-mortem context.
	recentRIPs [16]uint64
	recentN    int

	// checker, when non-nil, observes every commit boundary (the
	// lockstep oracle); storeBuf collects the committing group's store
	// traffic for it.
	checker  CommitChecker
	storeBuf []CommittedStore

	// auditEvery, when positive, runs the pipeline invariant auditor at
	// the top of every auditEvery-th cycle; auditScratch is its reused
	// physical-register marking buffer.
	auditEvery   uint64
	auditScratch []uint8

	// ev, when non-nil, receives packed pipeline events from every
	// stage. Every hook site is gated on this single nil check, so the
	// hot loop pays one predicted-not-taken branch when disabled.
	ev *evlog.Log

	// Statistics.
	cInsns, cUops, cCycles                  *stats.Counter
	cBranches, cMispredicts, cTaken        *stats.Counter
	cLoads, cStores                        *stats.Counter
	cDTLBMiss, cITLBMiss, cWalks           *stats.Counter
	cReplays, cBankReplays, cForwards      *stats.Counter
	cFlushes, cAssists, cInterrupts        *stats.Counter
	cLockReplays, cSMC, cLoadSpecFlush     *stats.Counter
	cFetchStallIQ, cFetchStallROB          *stats.Counter
	cKernelInsns, cUserInsns               *stats.Counter
}

// New creates a core with the given contexts as its SMT threads.
func New(id int, cfg Config, ctxs []*vm.Context, sys vm.System, bbc *bbcache.Cache,
	tree *stats.Tree, prefix string) *Core {
	if len(ctxs) == 0 || len(ctxs) > cfg.MaxThreads {
		panic(fmt.Sprintf("ooo: core %d: %d contexts with MaxThreads=%d", id, len(ctxs), cfg.MaxThreads))
	}
	c := &Core{
		ID:        id,
		cfg:       cfg,
		prf:       make([]physReg, cfg.PhysRegs),
		iqs:       make([][]iqEntry, len(cfg.Clusters)),
		hier:      cache.NewHierarchy(cfg.Caches, tree, prefix+".cache"),
		bbc:       bbc,
		sys:       sys,
		interlock: NewInterlock(),
		bankUse:   make(map[int]uint64),

		cInsns:        tree.Counter(prefix + ".commit.insns"),
		cUops:         tree.Counter(prefix + ".commit.uops"),
		cCycles:       tree.Counter(prefix + ".cycles"),
		cBranches:     tree.Counter(prefix + ".branches"),
		cMispredicts:  tree.Counter(prefix + ".mispredicts"),
		cTaken:        tree.Counter(prefix + ".taken_branches"),
		cLoads:        tree.Counter(prefix + ".loads"),
		cStores:       tree.Counter(prefix + ".stores"),
		cDTLBMiss:     tree.Counter(prefix + ".dtlb.misses"),
		cITLBMiss:     tree.Counter(prefix + ".itlb.misses"),
		cWalks:        tree.Counter(prefix + ".pagewalks"),
		cReplays:      tree.Counter(prefix + ".replays"),
		cBankReplays:  tree.Counter(prefix + ".bank_replays"),
		cForwards:     tree.Counter(prefix + ".store_forwards"),
		cFlushes:      tree.Counter(prefix + ".pipeline_flushes"),
		cAssists:      tree.Counter(prefix + ".assists"),
		cInterrupts:   tree.Counter(prefix + ".interrupts"),
		cLockReplays:  tree.Counter(prefix + ".lock_replays"),
		cSMC:          tree.Counter(prefix + ".smc_flushes"),
		cLoadSpecFlush: tree.Counter(prefix + ".load_spec_flushes"),
		cFetchStallIQ: tree.Counter(prefix + ".stall.iq_full"),
		cFetchStallROB: tree.Counter(prefix + ".stall.rob_full"),
		cKernelInsns:  tree.Counter(prefix + ".commit.kernel_insns"),
		cUserInsns:    tree.Counter(prefix + ".commit.user_insns"),
	}
	for i := range c.prf {
		c.free = append(c.free, len(c.prf)-1-i)
	}
	for i, ctx := range ctxs {
		th := &thread{id: i, ctx: ctx, fetchRIP: ctx.RIP,
			rob:  make([]robEntry, cfg.ROBSize),
			pred: bpred.New(cfg.Bpred),
			dtlb: tlb.New(cfg.DTLBEntries, cfg.DTLBAssoc),
			itlb: tlb.New(cfg.ITLBEntries, cfg.ITLBAssoc),
		}
		c.threads = append(c.threads, th)
		c.initRAT(th)
	}
	return c
}

// Hierarchy exposes the core's cache hierarchy (for coherence wiring).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// SetInterlock shares an interlock controller across cores.
func (c *Core) SetInterlock(il *Interlock) { c.interlock = il }

// Interlock returns the core's interlock controller.
func (c *Core) Interlock() *Interlock { return c.interlock }

// Threads returns the number of hardware threads.
func (c *Core) Threads() int { return len(c.threads) }

// Ctx returns thread t's VCPU context.
func (c *Core) Ctx(t int) *vm.Context { return c.threads[t].ctx }

// Insns returns total committed x86 instructions.
func (c *Core) Insns() int64 { return c.cInsns.Value() }

// SetCommitLimit pauses commit after n total committed instructions
// (0 disables). Used by co-simulation to stop at an exact boundary.
func (c *Core) SetCommitLimit(n int64) { c.commitLimit = n }

// SetWatchdog arms the commit-progress watchdog: if no thread makes
// forward progress for n consecutive cycles while the core has work in
// flight, Cycle returns a livelock SimError (0 disables).
func (c *Core) SetWatchdog(n uint64) { c.watchdogCycles = n }

// SetChecker attaches a commit-boundary checker (nil detaches). The
// checker immediately observes a Resync for each thread so it adopts
// the current architectural state as its baseline.
func (c *Core) SetChecker(ck CommitChecker) {
	c.checker = ck
	if ck != nil {
		for _, th := range c.threads {
			ck.Resync(th.id, th.ctx)
		}
	}
}

// SetAudit arms the pipeline invariant auditor to run every n cycles
// (0 disables). On a violation Cycle returns a KindInvariant SimError.
func (c *Core) SetAudit(n uint64) { c.auditEvery = n }

// SetEventLog attaches a pipeline event log (nil detaches). While
// attached, every stage transition of every uop is recorded.
func (c *Core) SetEventLog(l *evlog.Log) { c.ev = l }

// EventLog returns the attached event log (nil when disabled).
func (c *Core) EventLog() *evlog.Log { return c.ev }

// evTailSize is how many trailing events a failure report carries.
const evTailSize = 64

// eventTail renders the newest events for attachment to a SimError.
func (c *Core) eventTail() string {
	if c.ev == nil || c.ev.Len() == 0 {
		return ""
	}
	return evlog.Text(c.ev.Tail(evTailSize))
}

// SeedTimingState deterministically perturbs timing-only
// microarchitectural state (per-thread branch predictor tables) from
// seed. Architectural results must be invariant under any seed — the
// conformance fuzzer runs the same program under several seeds to
// check exactly that — so only state whose influence is confined to
// speculation and recovery may ever be touched here.
func (c *Core) SeedTimingState(seed int64) {
	for i, th := range c.threads {
		th.pred.Scramble(seed + int64(i)*0x10001)
	}
}

// decorate fills microarchitectural context (cycle, pipeline dump,
// recent commits) into a SimError raised by a checker or auditor that
// lacks access to the core's internals.
func (c *Core) decorate(err error) error {
	if se, ok := simerr.As(err); ok {
		if se.Cycle == 0 {
			se.Cycle = c.now
		}
		if se.Dump == "" {
			se.Dump = c.DumpState()
		}
		if len(se.LastRIPs) == 0 {
			se.LastRIPs = c.RecentCommits()
		}
		if se.EventTail == "" {
			se.EventTail = c.eventTail()
		}
	}
	return err
}

// NoteIdleSkip rebases the commit-progress watchdog after the machine
// fast-forwards the clock over a fully idle period. The skipped span is
// legitimate sleep, not a stuck pipeline; without the rebase the first
// wake after a multi-billion-cycle timer gap would be misreported as a
// livelock.
func (c *Core) NoteIdleSkip(now uint64) {
	c.progressInit = true
	c.lastProgress = now
}

// RecentCommits returns the most recently committed instruction
// addresses, oldest first.
func (c *Core) RecentCommits() []uint64 {
	n := c.recentN
	if n > len(c.recentRIPs) {
		n = len(c.recentRIPs)
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.recentRIPs[(c.recentN-n+i)%len(c.recentRIPs)])
	}
	return out
}

// CorruptROBHead flips the SOM marker of the oldest in-flight uop —
// the fault-injection hook for provoking the commit stage's internal
// invariant check (ROB head must be an instruction start). Returns
// false when the ROB is empty and nothing could be corrupted.
func (c *Core) CorruptROBHead() bool {
	for _, th := range c.threads {
		if th.robCount > 0 {
			th.robAt(0).uop.SOM = false
			return true
		}
	}
	return false
}

// allocPhys takes a physical register off the free list (-2 when
// exhausted; callers treat that as a rename stall).
func (c *Core) allocPhys(value uint64, ready bool) int {
	if len(c.free) == 0 {
		return -2
	}
	p := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.prf[p] = physReg{value: value, ready: ready}
	return p
}

func (c *Core) freePhys(p int) {
	if p >= 0 {
		c.free = append(c.free, p)
	}
}

// initRAT builds a fresh rename table from the thread's architectural
// state (used at startup and on full pipeline flushes).
func (c *Core) initRAT(th *thread) {
	for r := uops.ArchReg(0); r < uops.NumArchRegs; r++ {
		v := uint64(0)
		if r != uops.RegZero {
			v = th.ctx.Regs[r]
		}
		p := c.allocPhys(v, true)
		if p < 0 {
			panic("ooo: out of physical registers during RAT init")
		}
		th.rat[r] = p
	}
}

// releaseRAT returns all RAT-mapped physical registers to the free
// list (precedes initRAT during a full flush).
func (c *Core) releaseRAT(th *thread) {
	for r := uops.ArchReg(0); r < uops.NumArchRegs; r++ {
		c.freePhys(th.rat[r])
	}
}

// robIndex converts a logical offset from head to a physical slot.
func (th *thread) robAt(offset int) *robEntry {
	return &th.rob[(th.robHead+offset)%len(th.rob)]
}

// FullFlush squashes everything in flight for thread t and restarts
// fetch at the context's RIP (used for exceptions, assists, interrupts
// and SMC). The RAT is rebuilt from architectural state.
func (c *Core) FullFlush(t int) {
	th := c.threads[t]
	if c.ev != nil {
		// Annul everything in flight (all events younger than the last
		// committed uop), then record the flush itself as a carrier.
		if th.robCount > 0 {
			c.ev.Annul(uint8(c.ID), uint8(t), th.robAt(0).seq-1)
		}
		c.ev.Record(evlog.Event{Cycle: c.now, Seq: c.seq, RIP: th.ctx.RIP,
			Arg: th.ctx.RIP, Op: evlog.NoOp, Stage: evlog.StageFlush,
			Core: uint8(c.ID), Thread: uint8(t)})
	}
	// Roll back renames youngest-first so each physical register is
	// freed exactly once (the RAT must not still point at a freed
	// in-flight destination when releaseRAT runs).
	for i := th.robCount - 1; i >= 0; i-- {
		e := th.robAt(i)
		if e.uop.Rd != uops.RegZero && e.rdPhys >= 0 {
			th.rat[e.uop.Rd] = e.rdOld
			c.freePhys(e.rdPhys)
		}
		if e.flPhys >= 0 {
			th.rat[uops.RegFlags] = e.flOld
			c.freePhys(e.flPhys)
		}
		e.valid = false
	}
	th.robCount = 0
	th.robHead = 0
	th.ldq = th.ldq[:0]
	th.stq = th.stq[:0]
	th.fetchQ = th.fetchQ[:0]
	th.curBB = nil
	th.fetchFault = uops.FaultNone
	th.fetchRIP = th.ctx.RIP
	th.fetchStallUntil = c.now + c.cfg.FrontendLatency
	c.interlock.ReleaseAllFor(c.ID, t, 0)
	// Remove this thread's entries from all issue queues.
	for q := range c.iqs {
		keep := c.iqs[q][:0]
		for _, ent := range c.iqs[q] {
			if ent.thread != t {
				keep = append(keep, ent)
			}
		}
		c.iqs[q] = keep
	}
	c.releaseRAT(th)
	c.initRAT(th)
	c.cFlushes.Inc()
	// Every path that re-architects state outside the clean-commit
	// sequence (exceptions, interrupts, assists, SMC, mode switches)
	// ends in a full flush, so this is the single resync point for the
	// commit oracle's shadow.
	if c.checker != nil {
		c.checker.Resync(t, th.ctx)
	}
}

// squashAfter removes all ROB entries of thread t strictly younger
// than seq (branch misprediction / load mis-speculation recovery),
// rolling the RAT back and restarting fetch at newRIP.
func (c *Core) squashAfter(t int, seq uint64, newRIP uint64) {
	th := c.threads[t]
	if c.ev != nil {
		c.ev.Annul(uint8(c.ID), uint8(t), seq)
		c.ev.Record(evlog.Event{Cycle: c.now, Seq: seq, RIP: newRIP,
			Arg: newRIP, Op: evlog.NoOp, Stage: evlog.StageRedirect,
			Core: uint8(c.ID), Thread: uint8(t)})
	}
	// Walk from tail (youngest) toward head, undoing renames.
	for th.robCount > 0 {
		e := th.robAt(th.robCount - 1)
		if e.seq <= seq {
			break
		}
		if e.uop.Rd != uops.RegZero && e.rdPhys >= 0 {
			th.rat[e.uop.Rd] = e.rdOld
			c.freePhys(e.rdPhys)
		}
		if e.flPhys >= 0 {
			th.rat[uops.RegFlags] = e.flOld
			c.freePhys(e.flPhys)
		}
		if e.lockHeld {
			c.interlock.Release(e.lockLine, c.ID, t, insnSeqOf(e))
		}
		e.valid = false
		th.robCount--
	}
	// Trim LDQ/STQ.
	trim := func(q []int) []int {
		for len(q) > 0 {
			idx := q[len(q)-1]
			if th.rob[idx].valid && th.rob[idx].seq <= seq {
				break
			}
			q = q[:len(q)-1]
		}
		return q
	}
	th.ldq = trim(th.ldq)
	th.stq = trim(th.stq)
	// Remove squashed entries from issue queues.
	for q := range c.iqs {
		keep := c.iqs[q][:0]
		for _, ent := range c.iqs[q] {
			if ent.thread == t && ent.seq > seq {
				continue
			}
			keep = append(keep, ent)
		}
		c.iqs[q] = keep
	}
	th.fetchQ = th.fetchQ[:0]
	th.curBB = nil
	th.fetchFault = uops.FaultNone
	th.fetchRIP = newRIP
	th.fetchStallUntil = c.now + c.cfg.FrontendLatency
}

// insnSeqOf returns the sequence number identifying the x86 instruction
// owning e for interlock purposes (the SOM uop's seq is unknown here,
// so the RIP-stamped seq of the entry itself is used consistently at
// acquire and release time via the ld.acq entry).
func insnSeqOf(e *robEntry) uint64 { return e.seq }

// FlushTLB implements vm.CoreHooks: a serializing TLB flush clears
// every hardware thread's TLBs (conservative for shared-core SMT).
func (c *Core) FlushTLB() {
	for _, th := range c.threads {
		th.dtlb.Flush()
		th.itlb.Flush()
	}
}

// FlushTLBPage implements vm.CoreHooks.
func (c *Core) FlushTLBPage(va uint64) {
	for _, th := range c.threads {
		th.dtlb.FlushPage(va >> 12)
		th.itlb.FlushPage(va >> 12)
	}
}

// Idle reports whether every thread is halted with nothing in flight.
func (c *Core) Idle() bool {
	for _, th := range c.threads {
		if th.ctx.Running || th.robCount > 0 {
			return false
		}
	}
	return true
}

// Cycle advances the core by one clock (the machine scheduler calls
// each core in round-robin order, paper §2.2). Stage order is reversed
// (commit first) so same-cycle structural hazards resolve like
// latched hardware.
func (c *Core) Cycle(now uint64) error {
	c.now = now
	// The invariant audit runs before commit so corrupted pipeline state
	// surfaces as a structured KindInvariant report instead of tripping
	// the commit stage's internal panics.
	if c.auditEvery > 0 && now%c.auditEvery == 0 {
		if err := c.Audit(); err != nil {
			return err
		}
	}
	c.cCycles.Inc()
	for b := range c.bankUse {
		delete(c.bankUse, b)
	}
	progressBefore := c.cUops.Value() + c.cInterrupts.Value() + c.cAssists.Value()
	if err := c.commit(); err != nil {
		return err
	}
	c.writeback()
	c.issue()
	c.applyRedirects()
	c.rename()
	c.fetch()
	return c.checkWatchdog(progressBefore)
}

// checkWatchdog updates the commit-progress watchdog after a cycle and
// reports livelock once the threshold of progress-free cycles passes.
// Cycles where commit is legitimately paused (idle threads, a
// co-simulation commit limit) count as progress.
func (c *Core) checkWatchdog(progressBefore int64) error {
	if !c.progressInit {
		c.progressInit = true
		c.lastProgress = c.now
	}
	progressed := c.cUops.Value()+c.cInterrupts.Value()+c.cAssists.Value() != progressBefore
	if progressed || c.Idle() || (c.commitLimit > 0 && c.cInsns.Value() >= c.commitLimit) {
		c.lastProgress = c.now
		return nil
	}
	if c.watchdogCycles == 0 || c.now-c.lastProgress < c.watchdogCycles {
		return nil
	}
	ctx := c.threads[0].ctx
	return &simerr.SimError{
		Kind:  simerr.KindLivelock,
		Cycle: c.now,
		VCPU:  ctx.ID,
		RIP:   ctx.RIP,
		Message: fmt.Sprintf("core %d: no commit progress for %d cycles (watchdog %d)",
			c.ID, c.now-c.lastProgress, c.watchdogCycles),
		Dump:      c.DumpState(),
		LastRIPs:  c.RecentCommits(),
		EventTail: c.eventTail(),
	}
}

// redirect is a deferred pipeline recovery: squash everything with
// seq > afterSeq on thread and refetch from rip.
type redirect struct {
	thread   int
	afterSeq uint64
	rip      uint64
}
