package ooo

import (
	"testing"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/mem"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
	"ptlsim/internal/x86"
)

// crSwitchSys switches CR3 between two equivalent address spaces on
// each hypercall.
type crSwitchSys struct {
	testSys
	cr3s []uint64
	n    int
}

func (s *crSwitchSys) Hypercall(c *vm.Context) uops.Fault {
	s.n++
	c.CR3 = s.cr3s[s.n%2]
	c.FlushGen++
	return uops.FaultNone
}

// Regression: stack traffic straddling a CR3-switching hypercall must
// survive the serializing flush (stale-TLB / stale-RAT hazards).
func TestHypercallPushPopAcrossCR3Switch(t *testing.T) {
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RBX), x86.I(42))
		a.Mov(x86.R(x86.RCX), x86.I(50))
		top := a.Mark()
		a.Push(x86.R(x86.RBX))
		a.Hypercall()
		a.Pop(x86.R(x86.RBX))
		a.Cmp(x86.R(x86.RBX), x86.I(42))
		bad := a.NewLabel()
		a.Jcc(x86.CondNE, bad)
		a.Dec(x86.R(x86.RCX))
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		a.Jcc(x86.CondNE, top)
		a.Mov(x86.R(x86.R9), x86.I(1)) // success
		a.Ptlcall()
		a.Bind(bad)
		a.Mov(x86.R(x86.R9), x86.I(2)) // corrupted
		a.Ptlcall()
	})
	g := buildGuest(t, code, 1)
	ctx := g.newCtx(0)
	ctx.Kernel = true
	// Second address space mapping the same pages.
	as2 := mem.NewAddressSpace(g.pm)
	// Map same VAs to same MFNs by walking the original space.
	for _, va := range []uint64{codeVA, codeVA + 0x1000, dataVA, stackVA} {
		w := mem.Walk(g.pm, ctx.CR3, va, mem.Access{})
		if w.Fault != uops.FaultNone {
			continue
		}
		if err := as2.Map(va, w.MFN, mem.PTEWritable|mem.PTEUser); err != nil {
			t.Fatal(err)
		}
	}
	sys := &crSwitchSys{cr3s: []uint64{ctx.CR3, as2.CR3()}}
	sys.testSys = *newTestSys(1)
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := New(0, K8Config(), []*vm.Context{ctx}, sys, bbc, tree, "ooo")
	for cyc := uint64(0); cyc < 500_000 && !sys.stopped[0]; cyc++ {
		if err := core.Cycle(cyc); err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
	}
	if !sys.stopped[0] {
		t.Fatalf("did not finish rip=%#x", ctx.RIP)
	}
	if ctx.Regs[uops.RegR9] != 1 {
		t.Fatalf("push/pop across hypercall corrupted rbx (r9=%d rbx=%#x)", ctx.Regs[uops.RegR9], ctx.Regs[uops.RegRBX])
	}
}
