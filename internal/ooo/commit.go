package ooo

import (
	"fmt"

	"ptlsim/internal/evlog"
	"ptlsim/internal/mem"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// commit retires completed instructions in program order with x86
// atomic-commit semantics: either every uop of an instruction commits
// or (on a fault) none do and the exception is delivered precisely.
// Event upcalls are delivered only at instruction boundaries.
func (c *Core) commit() error {
	budget := c.cfg.CommitWidth
	for i := 0; i < len(c.threads) && budget > 0; i++ {
		th := c.threads[(int(c.now)+i)%len(c.threads)]
		var err error
		budget, err = c.commitThread(th, budget)
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *Core) commitThread(th *thread, budget int) (int, error) {
	ctx := th.ctx
	for budget > 0 {
		if c.commitLimit > 0 && c.cInsns.Value() >= c.commitLimit {
			return budget, nil
		}
		// Wake halted threads and deliver pending events precisely at
		// instruction boundaries (ROB head is a SOM or the ROB is
		// empty).
		atBoundary := th.robCount == 0 || th.robAt(0).uop.SOM
		if atBoundary && ctx.IF() && c.sys.EventPending(ctx) {
			if !ctx.Running {
				ctx.Running = true
			}
			// ctx.RIP currently points at the next uncommitted
			// instruction; flush everything and enter the handler.
			if th.robCount > 0 {
				ctx.RIP = th.robAt(0).uop.RIP
			} else if th.fetchFault != uops.FaultNone || th.curBB != nil || len(th.fetchQ) > 0 {
				// keep ctx.RIP (committed boundary)
			}
			// Deliver first (it rewrites RSP/RFLAGS/RIP), then flush so
			// the fresh rename table snapshots the post-delivery state.
			if err := ctx.DeliverEvent(); err != nil {
				return budget, err
			}
			if c.ev != nil {
				c.ev.Record(evlog.Event{Cycle: c.now, Seq: c.seq, RIP: ctx.RIP,
					Arg: ctx.RIP, Op: evlog.NoOp, Stage: evlog.StageInterrupt,
					Core: uint8(c.ID), Thread: uint8(th.id)})
			}
			c.FullFlush(th.id)
			th.fetchRIP = ctx.RIP
			c.cInterrupts.Inc()
			return budget, nil
		}

		if th.robCount == 0 {
			// Nothing in flight: a pending fetch fault becomes an
			// exception now (its RIP is the fetch RIP).
			if th.fetchFault != uops.FaultNone && len(th.fetchQ) == 0 {
				fault := th.fetchFault
				dbgf("fetch fault %v at rip %#x", fault, th.fetchRIP)
				ctx.RIP = th.fetchRIP
				ctx.CR2 = th.fetchRIP
				vec, errInfo := vm.FaultVector(ctx, fault)
				if err := ctx.DeliverException(vec, errInfo, ctx.RIP); err != nil {
					return budget, err
				}
				c.FullFlush(th.id)
				th.fetchRIP = ctx.RIP
			}
			return budget, nil
		}

		// Find the instruction group SOM..EOM at the head.
		n, complete, faultAt := c.groupStatus(th)
		if !complete {
			return budget, nil
		}

		head := th.robAt(0)
		if faultAt >= 0 {
			// Precise exception: restore to instruction start.
			fe := th.robAt(faultAt)
			fault := fe.fault
			dbgf("commit fault %v at rip %#x uop %s ea %#x", fault, fe.uop.RIP, &fe.uop, fe.ea)
			ctx.RIP = head.uop.RIP
			if fe.uop.IsLoad() || fe.uop.IsStore() {
				ctx.CR2 = fe.ea
			}
			vec, errInfo := vm.FaultVector(ctx, fault)
			if err := ctx.DeliverException(vec, errInfo, ctx.RIP); err != nil {
				return budget, err
			}
			c.FullFlush(th.id)
			th.fetchRIP = ctx.RIP
			return budget, nil
		}

		if head.isAssist() {
			// Serializing microcode assist: executes against the
			// architectural state, then the pipeline restarts.
			c.cAssists.Inc()
			if c.ev != nil {
				c.ev.Record(evlog.Event{Cycle: c.now, Seq: head.seq, RIP: head.uop.RIP,
					Arg: uint64(head.uop.Imm), Op: uint16(head.uop.Op),
					Stage: evlog.StageAssist, Core: uint8(c.ID), Thread: uint8(th.id)})
			}
			fault := vm.ExecAssist(ctx, &head.uop, c.sys, c)
			if fault != uops.FaultNone {
				ctx.RIP = head.uop.RIP
				vec, errInfo := vm.FaultVector(ctx, fault)
				if err := ctx.DeliverException(vec, errInfo, ctx.RIP); err != nil {
					return budget, err
				}
				c.FullFlush(th.id)
				th.fetchRIP = ctx.RIP
				return budget, nil
			}
			c.cUops.Inc()
			if !head.uop.NoCount {
				c.countInsn(ctx, head.uop.RIP)
			}
			// Hypercalls may have switched address spaces (Xen
			// MMUEXT_NEW_BASEPTR / mmu_update): honor the shootdown
			// generation by flushing this core's TLBs.
			if th.flushGen != ctx.FlushGen {
				th.flushGen = ctx.FlushGen
				c.FlushTLB()
			}
			c.FullFlush(th.id)
			th.fetchRIP = ctx.RIP
			return budget, nil
		}

		// Commit the whole group atomically this cycle. The oracle's
		// PreCommit runs first so its shadow executes this instruction
		// against pre-group memory (an RMW group's own stores must not
		// be visible to the shadow's loads).
		if c.checker != nil {
			if err := c.checker.PreCommit(th.id, ctx, head.uop.RIP, head.uop.NoCount); err != nil {
				return budget, c.decorate(err)
			}
			c.storeBuf = c.storeBuf[:0]
		}
		smcPage := uint64(0)
		smcHit := false
		var mispredictRedirect bool
		for k := 0; k < n; k++ {
			e := th.robAt(0)
			u := &e.uop
			if u.Rd != uops.RegZero && e.rdPhys >= 0 {
				ctx.Regs[u.Rd] = c.prf[e.rdPhys].value
			}
			if e.flPhys >= 0 {
				ctx.Regs[uops.RegFlags] = uops.MergeFlags(ctx.Regs[uops.RegFlags],
					c.prf[e.flPhys].value, u.SetFlags)
			}
			if u.IsStore() {
				if c.checker != nil {
					c.storeBuf = append(c.storeBuf, CommittedStore{
						EA: e.ea, PA: e.pa, PA2: e.pa2, Data: e.storeData, Size: u.MemSize})
				}
				if page, hit := c.applyStore(th, e); hit {
					smcPage, smcHit = page, true
				}
			}
			if u.IsBranch() {
				c.cBranches.Inc()
				if u.Branch == uops.BranchCond {
					th.pred.Update(u.RIP, e.result == u.RIPTaken, e.predSnapshot)
				}
				if e.result != u.RIPNot {
					c.cTaken.Inc()
					th.pred.BTBUpdate(u.RIP, e.result)
				}
				if e.mispredicted {
					c.cMispredicts.Inc()
				}
			}
			if e.lockHeld {
				c.interlock.Release(e.lockLine, c.ID, th.id, e.seq)
				e.lockHeld = false
			}
			if c.ev != nil {
				var fl uint8
				if e.mispredicted {
					fl |= evlog.FlagMispredict
				}
				c.ev.Record(evlog.Event{Cycle: c.now, Seq: e.seq, RIP: u.RIP,
					Arg: e.ea, Op: uint16(u.Op), Stage: evlog.StageCommit,
					Flags: fl, Core: uint8(c.ID), Thread: uint8(th.id)})
			}
			if u.EOM {
				ctx.RIP = e.result // branches store next RIP in result
				if !u.IsBranch() {
					ctx.RIP = u.RIP + uint64(u.X86Len)
				}
				if !u.NoCount {
					c.countInsn(ctx, u.RIP)
				}
			}
			c.cUops.Inc()
			// Free the previous mappings and pop the entry.
			c.freePhys(e.rdOld)
			c.freePhys(e.flOld)
			c.popLSQ(th, e)
			e.valid = false
			th.robHead = (th.robHead + 1) % len(th.rob)
			th.robCount--
		}
		budget -= n
		if budget < 0 {
			budget = 0
		}
		if c.checker != nil {
			if err := c.checker.PostCommit(th.id, ctx, c.cInsns.Value(), c.storeBuf); err != nil {
				return budget, c.decorate(err)
			}
		}

		if smcHit {
			// Self-modifying code: flush everything decoded from the
			// written page and restart the pipeline after this insn.
			c.bbc.InvalidatePage(smcPage)
			c.cSMC.Inc()
			if c.ev != nil {
				c.ev.Record(evlog.Event{Cycle: c.now, Seq: c.seq, RIP: ctx.RIP,
					Arg: smcPage << mem.PageShift, Op: evlog.NoOp,
					Stage: evlog.StageSMC, Core: uint8(c.ID), Thread: uint8(th.id)})
			}
			c.FullFlush(th.id)
			th.fetchRIP = ctx.RIP
			return budget, nil
		}
		_ = mispredictRedirect
	}
	return budget, nil
}

// countInsn counts a committed x86 instruction with mode attribution
// and records it in the recent-commit ring for failure reports.
func (c *Core) countInsn(ctx *vm.Context, rip uint64) {
	c.cInsns.Inc()
	if ctx.Kernel {
		c.cKernelInsns.Inc()
	} else {
		c.cUserInsns.Inc()
	}
	c.recentRIPs[c.recentN%len(c.recentRIPs)] = rip
	c.recentN++
}

// groupStatus inspects the instruction group at the ROB head: its
// length in uops, whether every uop is complete, and the index of the
// first faulting uop (-1 if clean). An incomplete group (EOM not yet
// renamed) reports complete=false.
func (c *Core) groupStatus(th *thread) (n int, complete bool, faultAt int) {
	faultAt = -1
	for i := 0; i < th.robCount; i++ {
		e := th.robAt(i)
		if i == 0 && !e.uop.SOM {
			// Should not happen: commit always leaves SOM at head.
			panic(fmt.Sprintf("ooo: ROB head not SOM at rip %#x", e.uop.RIP))
		}
		if e.state != stateDone {
			return 0, false, -1
		}
		if e.fault != uops.FaultNone && faultAt < 0 {
			faultAt = i
		}
		if e.uop.EOM {
			return i + 1, true, faultAt
		}
	}
	return 0, false, -1
}

// applyStore writes a committed store to physical memory through the
// cache hierarchy and reports whether it hit a code page (SMC).
func (c *Core) applyStore(th *thread, e *robEntry) (uint64, bool) {
	size := e.uop.MemSize
	first := mem.PageSize - e.ea&mem.PageMask
	if first >= uint64(size) {
		_ = th.ctx.M.PM.Write(e.pa, e.storeData, size)
	} else {
		f := uint8(first)
		_ = th.ctx.M.PM.Write(e.pa, e.storeData&uops.Mask(f), f)
		_ = th.ctx.M.PM.Write(e.pa2, e.storeData>>(8*f), size-f)
	}
	c.hier.Store(e.pa, c.now)
	mfn := e.pa >> mem.PageShift
	if c.bbc.IsCodePage(mfn) {
		return mfn, true
	}
	if uint64(first) < uint64(size) {
		mfn2 := e.pa2 >> mem.PageShift
		if c.bbc.IsCodePage(mfn2) {
			return mfn2, true
		}
	}
	return 0, false
}

// popLSQ removes a committed entry from the head of its LDQ/STQ.
func (c *Core) popLSQ(th *thread, e *robEntry) {
	if e.uop.IsLoad() && len(th.ldq) > 0 {
		th.ldq = th.ldq[1:]
	}
	if e.uop.IsStore() && len(th.stq) > 0 {
		th.stq = th.stq[1:]
	}
}
