package ooo

// debugHook, when set via SetDebugHook, receives internal diagnostic
// trace lines (fault deliveries, fetch faults). Used by tests.
var debugHook func(format string, args ...interface{})

// SetDebugHook installs (or clears, with nil) the diagnostic trace sink.
func SetDebugHook(f func(format string, args ...interface{})) { debugHook = f }

func dbgf(format string, args ...interface{}) {
	if debugHook != nil {
		debugHook(format, args...)
	}
}
