package ooo

import (
	"fmt"
	"strings"
)

// maxDumpEntries bounds the per-thread ROB listing in DumpState so a
// failure report stays readable even with a 128-entry ROB.
const maxDumpEntries = 24

// DumpState renders the core's in-flight state — per-thread ROB
// contents, load/store queues and fetch state, per-cluster issue queue
// occupancy, and physical register availability — for the structured
// failure reports attached to watchdog and deadlock SimErrors.
func (c *Core) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d @ cycle %d: %d free physregs\n", c.ID, c.now, len(c.free))
	for q, iq := range c.iqs {
		fmt.Fprintf(&b, "  iq %s: %d/%d entries\n",
			c.cfg.Clusters[q].Name, len(iq), c.cfg.Clusters[q].IQSize)
	}
	for _, th := range c.threads {
		fmt.Fprintf(&b, "  thread %d (vcpu %d): rip=%#x kernel=%v running=%v fetchrip=%#x rob=%d/%d ldq=%d stq=%d fetchq=%d\n",
			th.id, th.ctx.ID, th.ctx.RIP, th.ctx.Kernel, th.ctx.Running,
			th.fetchRIP, th.robCount, len(th.rob), len(th.ldq), len(th.stq), len(th.fetchQ))
		n := th.robCount
		if n > maxDumpEntries {
			n = maxDumpEntries
		}
		for i := 0; i < n; i++ {
			e := th.robAt(i)
			state := "wait"
			switch e.state {
			case stateIssued:
				state = fmt.Sprintf("issued(ready@%d)", e.readyCycle)
			case stateDone:
				state = "done"
			}
			mem := ""
			if e.isMem() {
				mem = fmt.Sprintf(" ea=%#x", e.ea)
			}
			fmt.Fprintf(&b, "    rob[%2d] seq=%d rip=%#x %s %s%s\n",
				i, e.seq, e.uop.RIP, &e.uop, state, mem)
		}
		if th.robCount > n {
			fmt.Fprintf(&b, "    ... %d more entries\n", th.robCount-n)
		}
	}
	return b.String()
}
