package ooo

import (
	"fmt"

	"ptlsim/internal/simerr"
)

// Audit runs the pipeline invariant auditor: structural checks over the
// ROB, LSQ, physical register freelist, cache hierarchy and RAS that
// hold between cycles in a healthy core. A violation returns a
// KindInvariant SimError carrying the pipeline dump. The checks are
// O(ROB + LSQ + PhysRegs + cache arrays) with no allocation beyond a
// reused scratch buffer, cheap enough to run on a sampling cadence
// during long runs (SetAudit).
func (c *Core) Audit() error {
	for _, th := range c.threads {
		if err := c.auditROB(th); err != nil {
			return err
		}
		if err := c.auditLSQ(th); err != nil {
			return err
		}
		if err := th.pred.RAS().Audit(); err != nil {
			return c.invariantErr("thread %d: %v", th.id, err)
		}
	}
	if err := c.auditFreelist(); err != nil {
		return err
	}
	if err := c.hier.Audit(); err != nil {
		return c.invariantErr("core %d: %v", c.ID, err)
	}
	return nil
}

// auditROB checks reorder buffer ordering: the head of a non-empty ROB
// must be an instruction start (SOM), every occupied slot must be
// valid, sequence numbers must strictly increase head to tail, and
// state fields must be within the enum.
func (c *Core) auditROB(th *thread) error {
	if th.robCount < 0 || th.robCount > len(th.rob) {
		return c.invariantErr("thread %d: ROB count %d out of bounds [0,%d]", th.id, th.robCount, len(th.rob))
	}
	var prevSeq uint64
	for i := 0; i < th.robCount; i++ {
		e := th.robAt(i)
		if !e.valid {
			return c.invariantErr("thread %d: ROB slot %d (of %d occupied) invalid", th.id, i, th.robCount)
		}
		if i == 0 && !e.uop.SOM {
			return c.invariantErr("thread %d: ROB head not at instruction start (rip %#x, seq %d)",
				th.id, e.uop.RIP, e.seq)
		}
		if i > 0 && e.seq <= prevSeq {
			return c.invariantErr("thread %d: ROB age order broken at slot %d: seq %d after %d",
				th.id, i, e.seq, prevSeq)
		}
		prevSeq = e.seq
		if e.state > stateDone {
			return c.invariantErr("thread %d: ROB slot %d has undefined state %d (rip %#x)",
				th.id, i, e.state, e.uop.RIP)
		}
	}
	return nil
}

// auditLSQ checks load/store queue consistency: every LDQ/STQ slot
// must reference a valid in-flight ROB entry of the right kind, in
// program order, and every in-flight memory uop must appear in its
// queue exactly once (the forwarding search depends on both).
func (c *Core) auditLSQ(th *thread) error {
	check := func(q []int, name string, want func(e *robEntry) bool) error {
		var prevSeq uint64
		for i, idx := range q {
			if idx < 0 || idx >= len(th.rob) {
				return c.invariantErr("thread %d: %s slot %d: rob index %d out of bounds", th.id, name, i, idx)
			}
			e := &th.rob[idx]
			if !e.valid {
				return c.invariantErr("thread %d: %s slot %d references squashed rob entry %d", th.id, name, i, idx)
			}
			if !want(e) {
				return c.invariantErr("thread %d: %s slot %d: rob entry %d is not a %s uop (op %v, rip %#x)",
					th.id, name, i, idx, name, e.uop.Op, e.uop.RIP)
			}
			if i > 0 && e.seq <= prevSeq {
				return c.invariantErr("thread %d: %s program order broken at slot %d: seq %d after %d",
					th.id, name, i, e.seq, prevSeq)
			}
			prevSeq = e.seq
		}
		return nil
	}
	if err := check(th.ldq, "ldq", func(e *robEntry) bool { return e.uop.IsLoad() }); err != nil {
		return err
	}
	if err := check(th.stq, "stq", func(e *robEntry) bool { return e.uop.IsStore() }); err != nil {
		return err
	}
	loads, stores := 0, 0
	for i := 0; i < th.robCount; i++ {
		e := th.robAt(i)
		if e.uop.IsLoad() {
			loads++
		}
		if e.uop.IsStore() {
			stores++
		}
	}
	if loads != len(th.ldq) {
		return c.invariantErr("thread %d: %d in-flight loads but %d LDQ entries", th.id, loads, len(th.ldq))
	}
	if stores != len(th.stq) {
		return c.invariantErr("thread %d: %d in-flight stores but %d STQ entries", th.id, stores, len(th.stq))
	}
	return nil
}

// auditFreelist checks physical register accounting: between cycles
// every physical register is either on the free list or reachable from
// a RAT mapping or an in-flight ROB entry (current or previous
// mapping), never both and never neither — catching both double-frees
// and leaks.
func (c *Core) auditFreelist() error {
	const (
		unseen = iota
		free
		allocated
	)
	if cap(c.auditScratch) < len(c.prf) {
		c.auditScratch = make([]uint8, len(c.prf))
	}
	seen := c.auditScratch[:len(c.prf)]
	for i := range seen {
		seen[i] = unseen
	}
	for _, p := range c.free {
		if p < 0 || p >= len(c.prf) {
			return c.invariantErr("freelist entry %d out of bounds [0,%d)", p, len(c.prf))
		}
		if seen[p] != unseen {
			return c.invariantErr("physical register %d on the free list twice", p)
		}
		seen[p] = free
	}
	mark := func(p int, what string) error {
		if p < 0 {
			return nil
		}
		if p >= len(c.prf) {
			return c.invariantErr("%s references physical register %d out of bounds [0,%d)", what, p, len(c.prf))
		}
		if seen[p] == free {
			return c.invariantErr("physical register %d is both free and referenced by %s (use after free)", p, what)
		}
		seen[p] = allocated
		return nil
	}
	for _, th := range c.threads {
		for r, p := range th.rat {
			if err := mark(p, fmt.Sprintf("thread %d RAT[%d]", th.id, r)); err != nil {
				return err
			}
		}
		for i := 0; i < th.robCount; i++ {
			e := th.robAt(i)
			what := fmt.Sprintf("thread %d rob seq %d", th.id, e.seq)
			for _, p := range []int{e.rdPhys, e.rdOld, e.flPhys, e.flOld} {
				if err := mark(p, what); err != nil {
					return err
				}
			}
		}
	}
	for p := range seen {
		if seen[p] == unseen {
			return c.invariantErr("physical register %d leaked: neither free nor referenced", p)
		}
	}
	return nil
}

// invariantErr builds a structured KindInvariant SimError with the
// core's current microarchitectural context attached.
func (c *Core) invariantErr(format string, args ...interface{}) error {
	ctx := c.threads[0].ctx
	return &simerr.SimError{
		Kind:     simerr.KindInvariant,
		Cycle:    c.now,
		VCPU:     ctx.ID,
		RIP:      ctx.RIP,
		Commit:   c.cInsns.Value(),
		Message:  fmt.Sprintf(format, args...),
		Dump:     c.DumpState(),
		LastRIPs: c.RecentCommits(),
	}
}
