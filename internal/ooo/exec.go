package ooo

import (
	"ptlsim/internal/evlog"
	"ptlsim/internal/mem"
	"ptlsim/internal/tlb"
	"ptlsim/internal/uops"
)

// writeback completes executing uops whose latency has elapsed: their
// physical registers become ready, waking dependent uops in the issue
// queues (broadcast wakeup).
func (c *Core) writeback() {
	for _, th := range c.threads {
		for i := 0; i < th.robCount; i++ {
			e := th.robAt(i)
			if e.state == stateIssued && e.readyCycle <= c.now {
				e.state = stateDone
				if e.rdPhys >= 0 {
					c.prf[e.rdPhys].ready = true
				}
				if e.flPhys >= 0 {
					c.prf[e.flPhys].ready = true
				}
				if c.ev != nil {
					c.ev.Record(evlog.Event{Cycle: c.now, Seq: e.seq, RIP: e.uop.RIP,
						Arg: e.result, Op: uint16(e.uop.Op), Stage: evlog.StageComplete,
						Core: uint8(c.ID), Thread: uint8(th.id)})
				}
			}
		}
	}
}

// srcReady reports whether physical register p holds a valid value.
func (c *Core) srcReady(p int) bool { return p < 0 || c.prf[p].ready }

// srcValue reads a source operand value.
func (c *Core) srcValue(p int) uint64 {
	if p < 0 {
		return 0
	}
	return c.prf[p].value
}

// issue selects ready uops from each cluster's issue queue (oldest
// first, collapsing on issue) and executes them.
func (c *Core) issue() {
	for q := range c.iqs {
		width := c.cfg.Clusters[q].IssueWidth
		iq := c.iqs[q]
		kept := iq[:0]
		issued := 0
		for n, ent := range iq {
			if issued >= width {
				kept = append(kept, iq[n:]...)
				break
			}
			th := c.threads[ent.thread]
			e := &th.rob[ent.rob]
			if !e.valid || e.seq != ent.seq {
				continue // squashed
			}
			if e.earliest > c.now || !c.srcReady(e.src[0]) || !c.srcReady(e.src[1]) || !c.srcReady(e.src[2]) {
				kept = append(kept, ent)
				continue
			}
			if !c.execute(th, e, q) {
				// Replay: stays in the queue with a backoff.
				if c.ev != nil {
					c.ev.Record(evlog.Event{Cycle: c.now, Seq: e.seq, RIP: e.uop.RIP,
						Arg: e.ea, Op: uint16(e.uop.Op), Stage: evlog.StageReplay,
						Flags: evlog.FlagReplayed, Core: uint8(c.ID), Thread: uint8(th.id)})
				}
				kept = append(kept, ent)
				continue
			}
			if c.ev != nil {
				var fl uint8
				if e.mispredicted {
					fl |= evlog.FlagMispredict
				}
				if e.earliest > 0 {
					fl |= evlog.FlagReplayed
				}
				c.ev.Record(evlog.Event{Cycle: c.now, Seq: e.seq, RIP: e.uop.RIP,
					Arg: e.ea, Op: uint16(e.uop.Op), Stage: evlog.StageIssue,
					Flags: fl, Core: uint8(c.ID), Thread: uint8(th.id)})
			}
			issued++
		}
		c.iqs[q] = kept
	}
}

// execute runs one uop's computation and schedules its completion. It
// returns false when the uop must replay (bank conflict, interlock,
// unresolved older store).
func (c *Core) execute(th *thread, e *robEntry, cluster int) bool {
	u := &e.uop
	a := c.srcValue(e.src[0])
	var b uint64
	if u.BImm {
		b = uint64(u.Imm)
	} else {
		b = c.srcValue(e.src[1])
	}
	cv := c.srcValue(e.src[2])

	res, flagsOut, fault := uops.Exec(u, a, b, cv)
	lat := c.cfg.Latency[classOf(u)] + c.cfg.Clusters[cluster].ExtraLatency
	if lat == 0 {
		lat = 1
	}
	ready := c.now + lat

	switch {
	case u.IsLoad():
		ok, loadReady := c.executeLoad(th, e, res)
		if !ok {
			return false
		}
		ready = loadReady
		res = e.result // value loaded (or forwarded)
	case u.IsStore():
		if !c.executeStore(th, e, res, cv) {
			return false
		}
	case u.IsBranch():
		e.result = res
		c.resolveBranch(th, e, res)
	}

	if !u.IsLoad() {
		e.result = res
	}
	if e.fault == uops.FaultNone {
		e.fault = fault
	}
	e.state = stateIssued
	e.readyCycle = ready
	if e.rdPhys >= 0 {
		c.prf[e.rdPhys].value = e.result
	}
	if e.flPhys >= 0 {
		c.prf[e.flPhys].value = flagsOut
	}
	return true
}

// dtlbTranslate translates a data access through the DTLB with a
// cycle-modeled page walk on miss. It returns (pa, readyCycle, fault).
func (c *Core) dtlbTranslate(th *thread, va uint64, write bool) (uint64, uint64, uops.Fault) {
	vpn := va >> mem.PageShift
	if ent, ok := th.dtlb.Lookup(vpn); ok {
		// Write permission must still be honored on a TLB hit.
		if !write || ent.Flags&mem.PTEWritable != 0 {
			if !th.ctx.Kernel && ent.Flags&mem.PTEUser == 0 {
				th.ctx.CR2 = va
				return 0, c.now, uops.FaultPageRead
			}
			if write && ent.Flags&mem.PTEDirty == 0 {
				// First write to a clean page: walk to set the D bit.
				w, _ := c.pageWalk(th, va, mem.Access{Write: true, User: !th.ctx.Kernel, SetAD: true})
				if w.Fault == uops.FaultNone {
					th.dtlb.Insert(tlb.Entry{VPN: vpn, MFN: w.MFN, Flags: w.PTE})
				}
			}
			return ent.MFN<<mem.PageShift | va&mem.PageMask, c.now, uops.FaultNone
		}
	}
	c.cDTLBMiss.Inc()
	acc := mem.Access{Write: write, User: !th.ctx.Kernel, SetAD: true}
	w, ready := c.pageWalk(th, va, acc)
	if w.Fault != uops.FaultNone {
		th.ctx.CR2 = va
		return 0, ready, w.Fault
	}
	th.dtlb.Insert(tlb.Entry{VPN: vpn, MFN: w.MFN, Flags: w.PTE})
	return w.PhysAddr(va), ready, uops.FaultNone
}

// bankConflict models the K8's pseudo dual-ported banked L1: two
// same-cycle accesses to the same bank in different lines collide and
// the younger replays one cycle later.
func (c *Core) bankConflict(pa uint64) bool {
	if !c.cfg.EnforceBanking {
		return false
	}
	bank := c.hier.L1D().Bank(pa)
	line := c.hier.L1D().LineAddr(pa)
	if prev, used := c.bankUse[bank]; used && prev != line {
		return true
	}
	c.bankUse[bank] = line
	return false
}

// executeLoad handles address translation, the STQ search (store to
// load forwarding and hoisting policy), interlock acquisition for
// ld.acq, bank conflicts and the cache access. Returns (issued, ready).
func (c *Core) executeLoad(th *thread, e *robEntry, ea uint64) (bool, uint64) {
	u := &e.uop
	e.ea = ea

	// Search older stores in the STQ.
	forward := false
	var fwdVal uint64
	for i := len(th.stq) - 1; i >= 0; i-- {
		s := &th.rob[th.stq[i]]
		if !s.valid || s.seq >= e.seq {
			continue
		}
		if !s.addrValid {
			// Unresolved older store address.
			locked := u.Op == uops.OpLdAcq
			if !c.cfg.LoadHoisting || locked {
				e.earliest = c.now + 1
				c.cReplays.Inc()
				return false, 0
			}
			// Hoist speculatively past it; mis-speculation is caught
			// when the store resolves.
			continue
		}
		if rangesOverlap(s.ea, uint64(s.uop.MemSize), ea, uint64(u.MemSize)) {
			if s.ea == ea && s.uop.MemSize >= u.MemSize {
				forward = true
				fwdVal = s.storeData & uops.Mask(u.MemSize)
				break
			}
			// Partial overlap: wait until the store commits.
			e.earliest = c.now + 1
			c.cReplays.Inc()
			return false, 0
		}
	}

	if !e.addrValid {
		pa, ready, fault := c.dtlbTranslate(th, ea, false)
		if fault != uops.FaultNone {
			e.fault = fault
			e.addrValid = true
			e.state = stateIssued
			e.readyCycle = c.now + 1
			c.cLoads.Inc()
			e.result = 0
			return true, c.now + 1
		}
		e.pa = pa
		e.addrValid = true
		if ready > c.now {
			// Walk latency: replay the load when the walk completes.
			e.earliest = ready
			e.addrValid = true
			return false, 0
		}
	}

	// Interlocked load: acquire the line lock or replay. Acquisition
	// is forced into program order per thread: a younger ld.acq that
	// issued first could otherwise take a line an older ld.acq needs
	// and then be unable to release it (release happens at commit,
	// which the blocked older instruction gates) — two locked RMWs to
	// the same line deadlock the thread. With in-order acquisition any
	// held lock's owner has every older same-thread locked instruction
	// already holding its own lock, so the owner can always drain to
	// commit and release.
	if u.Op == uops.OpLdAcq {
		for _, idx := range th.ldq {
			o := &th.rob[idx]
			if o.valid && o.seq < e.seq && o.uop.Op == uops.OpLdAcq && !o.lockHeld {
				e.earliest = c.now + 1
				c.cLockReplays.Inc()
				return false, 0
			}
		}
		line := c.hier.L1D().LineAddr(e.pa)
		if !c.interlock.Acquire(line, c.ID, th.id, e.seq) {
			e.earliest = c.now + 1
			c.cLockReplays.Inc()
			return false, 0
		}
		e.lockLine = line
		e.lockHeld = true
	}

	if c.bankConflict(e.pa) {
		e.earliest = c.now + 1
		c.cBankReplays.Inc()
		c.hier.CountBankConflict()
		return false, 0
	}

	c.cLoads.Inc()
	var ready uint64
	if forward {
		c.cForwards.Inc()
		e.result = fwdVal
		ready = c.now + 1
	} else {
		// Read the architectural memory value; page-crossing loads
		// access both pages (second translation for the tail bytes).
		val, fault := c.loadMemValue(th, e, u.MemSize)
		if fault != uops.FaultNone {
			e.fault = fault
			e.state = stateIssued
			e.readyCycle = c.now + 1
			return true, c.now + 1
		}
		e.result = val
		r := c.hier.Load(e.pa, c.now)
		ready = r.Ready
	}
	return true, ready
}

// loadMemValue fetches the value for a load, handling page crossing.
func (c *Core) loadMemValue(th *thread, e *robEntry, size uint8) (uint64, uops.Fault) {
	first := mem.PageSize - e.ea&mem.PageMask
	if first >= uint64(size) {
		v, err := th.ctx.M.PM.Read(e.pa, size)
		if err != nil {
			return 0, uops.FaultPageRead
		}
		return v, uops.FaultNone
	}
	f1 := uint8(first)
	lo, err := th.ctx.M.PM.Read(e.pa, f1)
	if err != nil {
		return 0, uops.FaultPageRead
	}
	pa2, _, fault := c.dtlbTranslate(th, e.ea+first, false)
	if fault != uops.FaultNone {
		return 0, fault
	}
	hi, err := th.ctx.M.PM.Read(pa2, size-f1)
	if err != nil {
		return 0, uops.FaultPageRead
	}
	return lo | hi<<(8*f1), uops.FaultNone
}

// executeStore resolves a store's address and data into the STQ; the
// actual memory update happens at commit. Detects load hoisting
// mis-speculation against younger already-executed loads.
func (c *Core) executeStore(th *thread, e *robEntry, ea, data uint64) bool {
	u := &e.uop
	e.ea = ea
	pa, ready, fault := c.dtlbTranslate(th, ea, true)
	if fault != uops.FaultNone {
		e.fault = fault
		e.addrValid = true
		c.cStores.Inc()
		return true
	}
	if ready > c.now {
		e.earliest = ready
		return false
	}
	// Translate the second page of a crossing store now so the fault
	// is precise at this uop.
	if first := mem.PageSize - ea&mem.PageMask; first < uint64(u.MemSize) {
		pa2, _, fault := c.dtlbTranslate(th, ea+first, true)
		if fault != uops.FaultNone {
			e.fault = fault
			e.addrValid = true
			c.cStores.Inc()
			return true
		}
		e.pa2 = pa2
	}
	if c.bankConflict(pa) {
		e.earliest = c.now + 1
		c.cBankReplays.Inc()
		c.hier.CountBankConflict()
		return false
	}
	e.pa = pa
	e.addrValid = true
	e.storeData = data & uops.Mask(u.MemSize)
	c.cStores.Inc()

	// Load hoisting check: a younger load that already executed and
	// overlaps this store consumed a stale value — squash its whole
	// instruction and everything younger (replay trap). Applied at end
	// of cycle via the redirect list.
	if c.cfg.LoadHoisting {
		for _, li := range th.ldq {
			l := &th.rob[li]
			if !l.valid || l.seq <= e.seq || l.state == stateWaiting || !l.addrValid {
				continue
			}
			if rangesOverlap(ea, uint64(u.MemSize), l.ea, uint64(l.uop.MemSize)) {
				c.cLoadSpecFlush.Inc()
				somSeq := c.insnStartSeq(th, l.seq)
				c.redirects = append(c.redirects, redirect{
					thread: th.id, afterSeq: somSeq - 1, rip: l.uop.RIP})
				break
			}
		}
	}
	return true
}

// insnStartSeq finds the sequence number of the SOM uop of the
// instruction containing the entry with sequence seq.
func (c *Core) insnStartSeq(th *thread, seq uint64) uint64 {
	som := seq
	for i := 0; i < th.robCount; i++ {
		e := th.robAt(i)
		if e.seq > seq {
			break
		}
		if e.uop.SOM {
			som = e.seq
		}
	}
	return som
}

func rangesOverlap(a uint64, an uint64, b uint64, bn uint64) bool {
	return a < b+bn && b < a+an
}

// resolveBranch compares the computed target with the fetch-time
// prediction and triggers recovery on a mispredict.
func (c *Core) resolveBranch(th *thread, e *robEntry, actual uint64) {
	if actual == e.predTarget {
		return
	}
	e.mispredicted = true
	// Restore predictor history to the pre-branch state, then re-apply
	// the actual outcome.
	if e.uop.Branch == uops.BranchCond {
		th.pred.Recover(e.predSnapshot, actual == e.uop.RIPTaken)
	}
	if e.hasRASSnap {
		th.pred.RAS().Restore(e.rasSnap)
		if e.uop.Branch == uops.BranchCall {
			th.pred.RAS().Push(e.uop.RIP + uint64(e.uop.X86Len))
		} else if e.uop.Branch == uops.BranchRet {
			th.pred.RAS().Pop()
		}
	}
	// Recovery (ROB/IQ squash and fetch redirect) is applied at end of
	// cycle so the issue loop never mutates queues it is scanning.
	c.redirects = append(c.redirects, redirect{thread: th.id, afterSeq: e.seq, rip: actual})
}

// applyRedirects performs at most one recovery per thread per cycle:
// the oldest redirect wins, which necessarily squashes the causes of
// any younger ones.
func (c *Core) applyRedirects() {
	if len(c.redirects) == 0 {
		return
	}
	best := make(map[int]redirect)
	for _, r := range c.redirects {
		if cur, ok := best[r.thread]; !ok || r.afterSeq < cur.afterSeq {
			best[r.thread] = r
		}
	}
	c.redirects = c.redirects[:0]
	for t, r := range best {
		c.squashAfter(t, r.afterSeq, r.rip)
	}
}
