package ooo

import (
	"math/rand"
	"testing"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/mem"
	"ptlsim/internal/seqcore"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
	"ptlsim/internal/x86"
)

type testSys struct {
	stopped []bool
	events  []bool
	tsc     uint64
}

func newTestSys(n int) *testSys {
	return &testSys{stopped: make([]bool, n), events: make([]bool, n)}
}

func (s *testSys) Hypercall(c *vm.Context) uops.Fault {
	c.Regs[uops.RegRAX] = 0x77
	return uops.FaultNone
}
func (s *testSys) Ptlcall(c *vm.Context) {
	s.stopped[c.ID] = true
	c.Running = false // domain shutdown halts the VCPU
}
func (s *testSys) ReadTSC(c *vm.Context) uint64    { s.tsc += 7; return s.tsc }
func (s *testSys) Cpuid(c *vm.Context)             { c.Regs[uops.RegRAX] = 0xC0DE }
func (s *testSys) EventPending(c *vm.Context) bool { return s.events[c.ID] }

const (
	codeVA   = 0x400000
	dataVA   = 0x600000
	stackVA  = 0x7F0000
	stackTop = stackVA + 0x1000
)

type guest struct {
	pm  *mem.PhysMem
	as  *mem.AddressSpace
	m   *vm.Machine
	sys *testSys
}

// buildGuest maps code/data/stacks for n VCPUs sharing one address
// space (threads get stacks at stackTop - 0x4000*id).
func buildGuest(t *testing.T, code []byte, n int) *guest {
	t.Helper()
	pm := mem.NewPhysMem()
	as := mem.NewAddressSpace(pm)
	flags := mem.PTEWritable | mem.PTEUser
	for off := uint64(0); off < uint64(len(code))+mem.PageSize; off += mem.PageSize {
		if err := as.Map(codeVA+off, pm.AllocPage(), flags); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := as.Map(dataVA+uint64(i)*mem.PageSize, pm.AllocPage(), flags); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		base := uint64(stackVA) - uint64(i)*0x4000
		if err := as.Map(base, pm.AllocPage(), flags); err != nil {
			t.Fatal(err)
		}
	}
	m := &vm.Machine{PM: pm}
	ctx := vm.NewContext(m, 0)
	ctx.CR3 = as.CR3()
	if f := ctx.WriteVirtBytes(codeVA, code); f != uops.FaultNone {
		t.Fatalf("load code: %v", f)
	}
	return &guest{pm: pm, as: as, m: m, sys: newTestSys(n)}
}

func (g *guest) newCtx(id int) *vm.Context {
	ctx := vm.NewContext(g.m, id)
	ctx.CR3 = g.as.CR3()
	ctx.RIP = codeVA
	ctx.Regs[uops.RegRSP] = uint64(stackTop) - uint64(id)*0x4000
	return ctx
}

func asmProg(t *testing.T, build func(a *x86.Assembler)) []byte {
	t.Helper()
	a := x86.NewAssembler(codeVA)
	build(a)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// runSeq executes the program functionally and returns the final ctx.
func runSeq(t *testing.T, code []byte) (*vm.Context, int64) {
	t.Helper()
	g := buildGuest(t, code, 1)
	ctx := g.newCtx(0)
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := seqcore.New(ctx, g.sys, bbc, tree, "seq")
	for i := 0; i < 2_000_000 && !g.sys.stopped[0]; i++ {
		if _, err := core.Step(); err != nil {
			t.Fatalf("seq step: %v (rip %#x)", err, ctx.RIP)
		}
	}
	if !g.sys.stopped[0] {
		t.Fatal("seq run did not finish")
	}
	return ctx, core.Insns()
}

// runOOO executes the program on the out-of-order core.
func runOOO(t *testing.T, code []byte, cfg Config, maxCycles uint64) (*vm.Context, *Core, *stats.Tree) {
	t.Helper()
	g := buildGuest(t, code, 1)
	ctx := g.newCtx(0)
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := New(0, cfg, []*vm.Context{ctx}, g.sys, bbc, tree, "ooo")
	for cyc := uint64(0); cyc < maxCycles && !g.sys.stopped[0]; cyc++ {
		if err := core.Cycle(cyc); err != nil {
			t.Fatalf("ooo cycle %d: %v (rip %#x)", cyc, err, ctx.RIP)
		}
	}
	if !g.sys.stopped[0] {
		t.Fatalf("ooo run did not finish (rip %#x, insns %d)", ctx.RIP, core.Insns())
	}
	return ctx, core, tree
}

// lockstep asserts the OOO core commits exactly the architectural
// state the functional core produces — the paper's integrated
// simulation correctness property.
func lockstep(t *testing.T, code []byte, cfg Config) (*Core, *stats.Tree) {
	t.Helper()
	want, wantInsns := runSeq(t, code)
	got, core, tree := runOOO(t, code, cfg, 3_000_000)
	if !vm.ArchEqual(want, got) {
		t.Fatalf("architectural divergence: %s", vm.DiffArch(want, got))
	}
	if core.Insns() != wantInsns {
		t.Fatalf("insn count: ooo %d vs seq %d", core.Insns(), wantInsns)
	}
	return core, tree
}

func progSum(t *testing.T) []byte {
	return asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(0))
		a.Mov(x86.R(x86.RCX), x86.I(500))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			a.Add(x86.R(x86.RAX), x86.R(x86.RCX))
			a.Dec(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
}

func TestLockstepSumLoop(t *testing.T) {
	core, _ := lockstep(t, progSum(t), DefaultConfig())
	if core.Ctx(0).Regs[uops.RegRAX] != 125250 {
		t.Fatalf("sum = %d", core.Ctx(0).Regs[uops.RegRAX])
	}
}

func TestLockstepSumLoopK8(t *testing.T) {
	lockstep(t, progSum(t), K8Config())
}

func TestLockstepFib(t *testing.T) {
	code := asmProg(t, func(a *x86.Assembler) {
		fib := a.NewLabel()
		start := a.NewLabel()
		a.Jmp(start)
		a.Bind(fib)
		base := a.NewLabel()
		a.Cmp(x86.R(x86.RDI), x86.I(2))
		a.Jcc(x86.CondL, base)
		a.Push(x86.R(x86.RDI))
		a.Sub(x86.R(x86.RDI), x86.I(1))
		a.Call(fib)
		a.Pop(x86.R(x86.RDI))
		a.Push(x86.R(x86.RAX))
		a.Sub(x86.R(x86.RDI), x86.I(2))
		a.Call(fib)
		a.Pop(x86.R(x86.RBX))
		a.Add(x86.R(x86.RAX), x86.R(x86.RBX))
		a.Ret()
		a.Bind(base)
		a.Mov(x86.R(x86.RAX), x86.R(x86.RDI))
		a.Ret()
		a.Bind(start)
		a.Mov(x86.R(x86.RDI), x86.I(14))
		a.Call(fib)
		a.Ptlcall()
	})
	core, _ := lockstep(t, code, DefaultConfig())
	if core.Ctx(0).Regs[uops.RegRAX] != 377 {
		t.Fatalf("fib(14) = %d", core.Ctx(0).Regs[uops.RegRAX])
	}
}

func TestLockstepMemoryAndString(t *testing.T) {
	code := asmProg(t, func(a *x86.Assembler) {
		// Fill a buffer, copy it, checksum it.
		a.Mov(x86.R(x86.RDI), x86.I(dataVA))
		a.Mov(x86.R(x86.RAX), x86.I(0x0102030405060708))
		a.Mov(x86.R(x86.RCX), x86.I(64))
		a.RepStos(8)
		a.Mov(x86.R(x86.RSI), x86.I(dataVA))
		a.Mov(x86.R(x86.RDI), x86.I(dataVA+0x1000))
		a.Mov(x86.R(x86.RCX), x86.I(512))
		a.RepMovs(1)
		// Checksum.
		a.Mov(x86.R(x86.RBX), x86.I(0))
		a.Mov(x86.R(x86.RSI), x86.I(dataVA+0x1000))
		a.Mov(x86.R(x86.RCX), x86.I(512))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			a.Movzx(x86.RDX, x86.M(x86.RSI, 0), 1)
			a.Add(x86.R(x86.RBX), x86.R(x86.RDX))
			a.Inc(x86.R(x86.RSI))
			a.Dec(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
	core, _ := lockstep(t, code, K8Config())
	// 512 bytes of repeating 8..1 pattern: 64 * 36 = 2304.
	if core.Ctx(0).Regs[uops.RegRBX] != 2304 {
		t.Fatalf("checksum = %d", core.Ctx(0).Regs[uops.RegRBX])
	}
}

func TestLockstepAtomics(t *testing.T) {
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RDI), x86.I(dataVA))
		a.Mov(x86.M(x86.RDI, 0), x86.I(100))
		a.Mov(x86.R(x86.RCX), x86.I(50))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			a.Mov(x86.R(x86.RBX), x86.I(1))
			a.LockXadd(x86.M(x86.RDI, 0), x86.R(x86.RBX))
			a.LockInc(x86.M(x86.RDI, 8))
			a.Dec(x86.R(x86.RCX))
		})
		a.Mov(x86.R(x86.R8), x86.M(x86.RDI, 0))
		a.Mov(x86.R(x86.R9), x86.M(x86.RDI, 8))
		a.Ptlcall()
	})
	core, _ := lockstep(t, code, DefaultConfig())
	if core.Ctx(0).Regs[uops.RegR8] != 150 || core.Ctx(0).Regs[uops.RegR9] != 50 {
		t.Fatalf("atomics: %d %d", core.Ctx(0).Regs[uops.RegR8], core.Ctx(0).Regs[uops.RegR9])
	}
}

func TestLockstepUnpredictableBranches(t *testing.T) {
	// Branch direction depends on an LCG — mispredictions guaranteed.
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RSI), x86.I(12345)) // seed
		a.Mov(x86.R(x86.RBX), x86.I(0))
		a.Mov(x86.R(x86.RCX), x86.I(400))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			// rsi = rsi*6364136223846793005 + 1442695040888963407 (mod 2^64)
			a.Mov(x86.R(x86.RAX), x86.I(0x5851F42D4C957F2D))
			a.Imul(x86.RSI, x86.R(x86.RAX))
			a.Mov(x86.R(x86.RAX), x86.I(0x14057B7EF767814F))
			a.Add(x86.R(x86.RSI), x86.R(x86.RAX))
			a.Test(x86.R(x86.RSI), x86.I(0x10000))
			a.IfElse(x86.CondNE, func() {
				a.Add(x86.R(x86.RBX), x86.I(3))
			}, func() {
				a.Sub(x86.R(x86.RBX), x86.I(1))
			})
			a.Dec(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
	core, tree := lockstep(t, code, K8Config())
	_ = core
	if tree.Lookup("ooo.mispredicts").Value() == 0 {
		t.Fatal("expected some mispredictions on random branches")
	}
}

func TestLockstepDivAndFlags(t *testing.T) {
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RBX), x86.I(0))
		a.Mov(x86.R(x86.RCX), x86.I(1))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(60))
			return x86.CondLE
		}, func() {
			a.Mov(x86.R(x86.RAX), x86.I(1000000007))
			a.Cqo()
			a.Idiv(x86.R(x86.RCX))
			a.Add(x86.R(x86.RBX), x86.R(x86.RDX)) // accumulate remainders
			a.Inc(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
	lockstep(t, code, DefaultConfig())
}

func TestLockstepFP(t *testing.T) {
	code := asmProg(t, func(a *x86.Assembler) {
		// Numerically integrate sum 1/k for k=1..50 and truncate *1e6.
		a.Mov(x86.R(x86.RAX), x86.I(0))
		a.Cvtsi2sd(x86.XMM0, x86.R(x86.RAX)) // acc = 0
		a.Mov(x86.R(x86.RCX), x86.I(1))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(50))
			return x86.CondLE
		}, func() {
			a.Mov(x86.R(x86.RAX), x86.I(1))
			a.Cvtsi2sd(x86.XMM1, x86.R(x86.RAX))
			a.Cvtsi2sd(x86.XMM2, x86.R(x86.RCX))
			a.Divsd(x86.XMM1, x86.R(x86.XMM2))
			a.Addsd(x86.XMM0, x86.R(x86.XMM1))
			a.Inc(x86.R(x86.RCX))
		})
		a.Mov(x86.R(x86.RAX), x86.I(1000000))
		a.Cvtsi2sd(x86.XMM3, x86.R(x86.RAX))
		a.Mulsd(x86.XMM0, x86.R(x86.XMM3))
		a.Cvttsd2si(x86.RBX, x86.R(x86.XMM0))
		a.Ptlcall()
	})
	core, _ := lockstep(t, code, DefaultConfig())
	// H(50) = 4.4992... -> 4499205
	if got := core.Ctx(0).Regs[uops.RegRBX]; got != 4499205 {
		t.Fatalf("harmonic sum = %d", got)
	}
}

// Random straight-line programs with data-dependent cmov/setcc: the
// strongest co-simulation property test.
func TestLockstepRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	regs := []x86.Reg{x86.RAX, x86.RBX, x86.RCX, x86.RDX, x86.RSI, x86.RDI,
		x86.R8, x86.R9, x86.R10, x86.R11}
	for trial := 0; trial < 25; trial++ {
		code := asmProg(t, func(a *x86.Assembler) {
			// Seed registers.
			for _, reg := range regs {
				a.Mov(x86.R(reg), x86.I(r.Int63()-r.Int63()))
			}
			a.Mov(x86.R(x86.RBP), x86.I(dataVA))
			for i := 0; i < 120; i++ {
				d := regs[r.Intn(len(regs))]
				s := regs[r.Intn(len(regs))]
				switch r.Intn(12) {
				case 0:
					a.Add(x86.R(d), x86.R(s))
				case 1:
					a.Sub(x86.R(d), x86.R(s))
				case 2:
					a.Xor(x86.R(d), x86.R(s))
				case 3:
					a.And(x86.R(d), x86.I(int64(int32(r.Int63()))))
				case 4:
					a.Or(x86.R(d), x86.R(s))
				case 5:
					a.Imul(d, x86.R(s))
				case 6:
					a.Shl(x86.R(d), x86.I(int64(r.Intn(63)+1)))
				case 7:
					a.Cmp(x86.R(d), x86.R(s))
					a.Cmovcc(x86.Cond(r.Intn(16)), d, x86.R(s))
				case 8:
					a.Test(x86.R(d), x86.R(s))
					a.Setcc(x86.Cond(r.Intn(16)), x86.R(d))
				case 9:
					a.Mov(x86.M(x86.RBP, int32(r.Intn(256)*8)), x86.R(s))
				case 10:
					a.Mov(x86.R(d), x86.M(x86.RBP, int32(r.Intn(256)*8)))
				case 11:
					a.Adc(x86.R(d), x86.R(s))
				}
			}
			a.Ptlcall()
		})
		want, _ := runSeq(t, code)
		got, _, _ := runOOO(t, code, DefaultConfig(), 1_000_000)
		if !vm.ArchEqual(want, got) {
			t.Fatalf("trial %d diverged: %s", trial, vm.DiffArch(want, got))
		}
	}
}

func TestSMTLockedSharedCounter(t *testing.T) {
	// Two SMT threads each lock-xadd a shared counter 200 times; no
	// update may be lost.
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RDI), x86.I(dataVA))
		a.Mov(x86.R(x86.RCX), x86.I(200))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			a.Mov(x86.R(x86.RBX), x86.I(1))
			a.LockXadd(x86.M(x86.RDI, 0), x86.R(x86.RBX))
			a.Dec(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
	g := buildGuest(t, code, 2)
	g.sys = newTestSys(2)
	ctx0, ctx1 := g.newCtx(0), g.newCtx(1)
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := New(0, SMTConfig(2), []*vm.Context{ctx0, ctx1}, g.sys, bbc, tree, "smt")
	for cyc := uint64(0); cyc < 2_000_000; cyc++ {
		if g.sys.stopped[0] && g.sys.stopped[1] {
			break
		}
		if err := core.Cycle(cyc); err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
	}
	if !g.sys.stopped[0] || !g.sys.stopped[1] {
		t.Fatalf("threads did not finish: %v (rips %#x %#x)", g.sys.stopped, ctx0.RIP, ctx1.RIP)
	}
	val, f := ctx0.ReadVirt(dataVA, 8)
	if f != uops.FaultNone {
		t.Fatal(f)
	}
	if val != 400 {
		t.Fatalf("shared counter = %d, want 400 (lost updates)", val)
	}
}

func TestBankConflictsCounted(t *testing.T) {
	// Strided loads hitting the same bank across lines.
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RSI), x86.I(dataVA))
		a.Mov(x86.R(x86.RCX), x86.I(200))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			// Two loads in the same cycle window, same bank (offset 64
			// apart = same bank, different lines).
			a.Mov(x86.R(x86.RAX), x86.M(x86.RSI, 0))
			a.Mov(x86.R(x86.RBX), x86.M(x86.RSI, 64))
			a.Dec(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
	cfg := K8Config()
	_, _, tree := runOOO(t, code, cfg, 1_000_000)
	if tree.Lookup("ooo.bank_replays").Value() == 0 {
		t.Fatal("expected bank conflict replays with banking enforced")
	}
}

func TestEventDeliveryInterruptsOOO(t *testing.T) {
	// The guest spins; an event arrives and must be delivered precisely
	// (handler records, then iretq resumes the spin, which then exits).
	const handlerVA = codeVA + 0x800
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RBX), x86.I(0))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.R15), x86.I(0)) // set by handler
			return x86.CondE
		}, func() {
			a.Inc(x86.R(x86.RBX))
		})
		a.Ptlcall()
	})
	h := x86.NewAssembler(handlerVA)
	h.Pop(x86.R(x86.R10)) // vector
	h.Pop(x86.R(x86.R11))
	h.Mov(x86.R(x86.R15), x86.I(1))
	h.Iretq()
	handler, err := h.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g := buildGuest(t, code, 1)
	ctx := g.newCtx(0)
	if f := ctx.WriteVirtBytes(handlerVA, handler); f != uops.FaultNone {
		t.Fatal(f)
	}
	ctx.TrapEntry = handlerVA
	ctx.KernelRSP = stackTop - 0x800
	ctx.SetFlags(ctx.Flags() | x86.FlagIF)
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := New(0, DefaultConfig(), []*vm.Context{ctx}, g.sys, bbc, tree, "ooo")
	for cyc := uint64(0); cyc < 500_000 && !g.sys.stopped[0]; cyc++ {
		if cyc == 2000 {
			g.sys.events[0] = true
		}
		if err := core.Cycle(cyc); err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
		if g.sys.events[0] && ctx.Kernel {
			g.sys.events[0] = false // auto-ack on entry
		}
	}
	if !g.sys.stopped[0] {
		t.Fatalf("did not finish; rip=%#x r15=%d", ctx.RIP, ctx.Regs[uops.RegR15])
	}
	if ctx.Regs[uops.RegR10] != vm.VecEvent {
		t.Fatalf("vector = %d", ctx.Regs[uops.RegR10])
	}
	if tree.Lookup("ooo.interrupts").Value() == 0 {
		t.Fatal("interrupt not counted")
	}
}

func TestOOOPageFaultPrecision(t *testing.T) {
	const handlerVA = codeVA + 0x800
	code := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RBX), x86.I(0x11))
		a.Mov(x86.R(x86.R13), x86.I(0xDEAD0000))
		a.Mov(x86.R(x86.RCX), x86.M(x86.R13, 0)) // faults (3 bytes: 49 8B 0D + disp?)
		a.Mov(x86.R(x86.R9), x86.I(0x22))
		a.Ptlcall()
	})
	// Determine the faulting instruction length by decoding.
	h := x86.NewAssembler(handlerVA)
	h.Pop(x86.R(x86.R10))
	h.Pop(x86.R(x86.R11))
	h.Add(x86.M(x86.RSP, 0), x86.I(3)) // mov rcx,[r13+0] encodes as 3 bytes + disp8 = 4? adjusted below
	h.Iretq()
	// mov rcx, [r13] requires disp8=0 (base R13): 49 8B 4D 00 = 4 bytes.
	h2 := x86.NewAssembler(handlerVA)
	h2.Pop(x86.R(x86.R10))
	h2.Pop(x86.R(x86.R11))
	h2.Add(x86.M(x86.RSP, 0), x86.I(4))
	h2.Iretq()
	handler, err := h2.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	_ = h
	g := buildGuest(t, code, 1)
	ctx := g.newCtx(0)
	ctx.WriteVirtBytes(handlerVA, handler)
	ctx.TrapEntry = handlerVA
	ctx.KernelRSP = stackTop - 0x800
	tree := stats.NewTree()
	bbc := bbcache.New(4096, tree, "bb")
	core := New(0, DefaultConfig(), []*vm.Context{ctx}, g.sys, bbc, tree, "ooo")
	for cyc := uint64(0); cyc < 500_000 && !g.sys.stopped[0]; cyc++ {
		if err := core.Cycle(cyc); err != nil {
			t.Fatalf("cycle: %v", err)
		}
	}
	if !g.sys.stopped[0] {
		t.Fatalf("did not finish (rip %#x)", ctx.RIP)
	}
	if ctx.Regs[uops.RegR10] != vm.VecPF || ctx.Regs[uops.RegR11] != 0xDEAD0000 {
		t.Fatalf("fault info: vec=%d addr=%#x", ctx.Regs[uops.RegR10], ctx.Regs[uops.RegR11])
	}
	if ctx.Regs[uops.RegR9] != 0x22 {
		t.Fatal("did not resume after fault")
	}
}

func TestIPCReasonable(t *testing.T) {
	// A dependent-chain program should have IPC well below a wide
	// independent one.
	chain := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(1))
		a.Mov(x86.R(x86.RCX), x86.I(2000))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			a.Imul(x86.RAX, x86.R(x86.RAX)) // serial dependency, 3-cycle latency
			a.Dec(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
	wide := asmProg(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RCX), x86.I(2000))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			a.Add(x86.R(x86.RAX), x86.I(1))
			a.Add(x86.R(x86.RBX), x86.I(1))
			a.Add(x86.R(x86.RSI), x86.I(1))
			a.Add(x86.R(x86.RDI), x86.I(1))
			a.Dec(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
	_, c1, t1 := runOOO(t, chain, DefaultConfig(), 2_000_000)
	_, c2, t2 := runOOO(t, wide, DefaultConfig(), 2_000_000)
	ipc1 := float64(c1.Insns()) / float64(t1.Lookup("ooo.cycles").Value())
	ipc2 := float64(c2.Insns()) / float64(t2.Lookup("ooo.cycles").Value())
	if ipc2 <= ipc1 {
		t.Fatalf("wide IPC %.2f should exceed chain IPC %.2f", ipc2, ipc1)
	}
	if ipc1 > 1.2 {
		t.Fatalf("serial imul chain IPC %.2f implausibly high", ipc1)
	}
}
