package ooo

import (
	"ptlsim/internal/bbcache"
	"ptlsim/internal/bpred"
	"ptlsim/internal/decode"
	"ptlsim/internal/evlog"
	"ptlsim/internal/mem"
	"ptlsim/internal/tlb"
	"ptlsim/internal/uops"
)

// itlbTranslate translates a fetch address through the ITLB, running
// the page walker on a miss. It returns the physical address and the
// cycle at which the translation is available.
func (c *Core) itlbTranslate(th *thread, va uint64) (pa uint64, ready uint64, fault uops.Fault) {
	vpn := va >> mem.PageShift
	if e, ok := th.itlb.Lookup(vpn); ok {
		return e.MFN<<mem.PageShift | va&mem.PageMask, c.now, uops.FaultNone
	}
	c.cITLBMiss.Inc()
	w, ready := c.pageWalk(th, va, mem.Access{Exec: true, User: !th.ctx.Kernel, SetAD: true})
	if w.Fault != uops.FaultNone {
		th.ctx.CR2 = va
		return 0, ready, w.Fault
	}
	th.itlb.Insert(tlb.Entry{VPN: vpn, MFN: w.MFN, Flags: w.PTE})
	return w.PhysAddr(va), ready, uops.FaultNone
}

// pageWalk performs the hardware page table walk, modeling each PTE
// read as a dependent load through the data cache hierarchy — page
// tables compete with user data for cache lines, which is why TLB miss
// latency is not a constant (paper §4.3).
func (c *Core) pageWalk(th *thread, va uint64, acc mem.Access) (mem.WalkResult, uint64) {
	c.cWalks.Inc()
	w := mem.Walk(th.ctx.M.PM, th.ctx.CR3, va, acc)
	ready := c.now
	for i := 0; i < w.Depth; i++ {
		r := c.hier.Load(w.PTEAddrs[i], ready)
		ready = r.Ready
	}
	return w, ready
}

// fetch brings predicted uops from the basic block cache into each
// thread's fetch queue, up to FetchWidth per cycle shared round-robin
// across SMT threads.
func (c *Core) fetch() {
	budget := c.cfg.FetchWidth
	for i := 0; i < len(c.threads) && budget > 0; i++ {
		th := c.threads[(int(c.now)+i)%len(c.threads)]
		budget = c.fetchThread(th, budget)
	}
}

func (c *Core) fetchThread(th *thread, budget int) int {
	if !th.ctx.Running || th.fetchFault != uops.FaultNone {
		return budget
	}
	if c.now < th.fetchStallUntil {
		return budget
	}
	for budget > 0 {
		if len(th.fetchQ) >= c.cfg.FetchQSize {
			return budget
		}
		if th.curBB == nil {
			if !c.openBB(th) {
				return budget
			}
			if c.now < th.fetchStallUntil {
				return budget
			}
		}
		bb := th.curBB
		u := bb.Uops[th.bbIdx]
		f := fetched{uop: u}
		if c.ev != nil {
			f.fetchCycle = c.now
		}

		if u.IsBranch() {
			f.predTarget, f.predSnapshot, f.rasSnap, f.hasRASSnap = c.predictBranch(th, &u)
			th.fetchQ = append(th.fetchQ, f)
			budget--
			// A REP entry check predicted not-taken falls through to
			// the iteration body within the same basic block.
			if th.bbIdx+1 < len(bb.Uops) && f.predTarget == bb.Uops[th.bbIdx+1].RIP {
				th.bbIdx++
				continue
			}
			th.curBB = nil
			th.fetchRIP = f.predTarget
			// Redirecting fetch to a taken target costs a bubble.
			if f.predTarget != u.RIPNot {
				th.fetchStallUntil = c.now + 1
			}
			continue
		}

		th.fetchQ = append(th.fetchQ, f)
		budget--
		th.bbIdx++
		if th.bbIdx >= len(bb.Uops) {
			th.curBB = nil
			th.fetchRIP = bb.FallThrough()
		}
	}
	return budget
}

// predictBranch consults the branch predictors at fetch time.
func (c *Core) predictBranch(th *thread, u *uops.Uop) (target, snapshot uint64, ras bpred.RASSnapshot, hasRAS bool) {
	next := u.RIP + uint64(u.X86Len)
	switch u.Branch {
	case uops.BranchCond:
		taken, snap := th.pred.PredictDirection(u.RIP)
		if taken {
			return u.RIPTaken, snap, bpred.RASSnapshot{}, false
		}
		return u.RIPNot, snap, bpred.RASSnapshot{}, false
	case uops.BranchUncond:
		return u.RIPTaken, 0, bpred.RASSnapshot{}, false
	case uops.BranchCall:
		snap := th.pred.RAS().Snapshot()
		th.pred.RAS().Push(next)
		if u.Op == uops.OpBrInd {
			if t, ok := th.pred.BTBLookup(u.RIP); ok {
				return t, 0, snap, true
			}
			return next, 0, snap, true // no target known: predict poorly
		}
		return u.RIPTaken, 0, snap, true
	case uops.BranchRet:
		snap := th.pred.RAS().Snapshot()
		return th.pred.RAS().Pop(), 0, snap, true
	case uops.BranchIndirect:
		if t, ok := th.pred.BTBLookup(u.RIP); ok {
			return t, 0, bpred.RASSnapshot{}, false
		}
		return next, 0, bpred.RASSnapshot{}, false
	}
	return next, 0, bpred.RASSnapshot{}, false
}

// openBB locates (or builds) the basic block at the thread's fetch RIP
// and charges the I-cache access.
func (c *Core) openBB(th *thread) bool {
	// TLB shootdown check: a CR3 reload performed outside this core
	// (a hypercall executed in native mode, or another engine) must
	// invalidate this thread's TLBs before any new translation is used.
	if th.flushGen != th.ctx.FlushGen {
		th.flushGen = th.ctx.FlushGen
		th.dtlb.Flush()
		th.itlb.Flush()
	}
	pa, ready, fault := c.itlbTranslate(th, th.fetchRIP)
	if fault != uops.FaultNone {
		dbgf("openBB itlb fault %v at %#x (cycle %d, kernel=%v cr3=%#x)", fault, th.fetchRIP, c.now, th.ctx.Kernel, th.ctx.CR3)
		th.fetchFault = fault
		return false
	}
	if ready > c.now {
		th.fetchStallUntil = ready
		return false
	}
	r := c.hier.Fetch(pa, c.now)
	if r.Ready > c.now {
		th.fetchStallUntil = r.Ready
	}
	key := bbcache.Key{RIP: th.fetchRIP, MFN: pa >> mem.PageShift, Kernel: th.ctx.Kernel}
	bb, ok := c.bbc.Lookup(key)
	if !ok {
		var f uops.Fault
		bb, f = decode.BuildBB(th.ctx.FetchCode, th.fetchRIP)
		if f != uops.FaultNone {
			w := mem.Walk(th.ctx.M.PM, th.ctx.CR3, th.fetchRIP, mem.Access{Exec: true, User: !th.ctx.Kernel})
			var ptes [4]uint64
			for i := 0; i < w.Depth; i++ {
				ptes[i], _ = th.ctx.M.PM.Read(w.PTEAddrs[i], 8)
			}
			dbgf("openBB build fault %v at %#x (cycle %d kernel=%v cr3=%#x walk depth=%d fault=%v addrs=%x ptes=%x)",
				f, th.fetchRIP, c.now, th.ctx.Kernel, th.ctx.CR3, w.Depth, w.Fault, w.PTEAddrs, ptes)
			th.fetchFault = f
			return false
		}
		if endPA, ef := th.ctx.Translate(th.fetchRIP+bb.X86Len-1, false, true); ef == uops.FaultNone {
			if endMFN := endPA >> mem.PageShift; endMFN != key.MFN {
				key.MFN2 = endMFN
			}
		}
		c.bbc.Insert(key, bb)
	}
	th.curBB = bb
	th.bbIdx = 0
	return true
}

// rename moves uops from fetch queues into the backend: ROB slot,
// physical registers, an issue queue slot, and LDQ/STQ slots for
// memory operations. In-order; stalls on any structural shortage.
func (c *Core) rename() {
	budget := c.cfg.RenameWidth
	for i := 0; i < len(c.threads) && budget > 0; i++ {
		th := c.threads[(int(c.now)+i)%len(c.threads)]
		budget = c.renameThread(th, budget)
	}
}

func (c *Core) renameThread(th *thread, budget int) int {
	for budget > 0 && len(th.fetchQ) > 0 {
		if th.robCount >= len(th.rob) {
			c.cFetchStallROB.Inc()
			return budget
		}
		f := th.fetchQ[0]
		u := &f.uop

		cl := c.pickCluster(u)
		if cl < 0 {
			c.cFetchStallIQ.Inc()
			return budget
		}
		if u.IsLoad() && len(th.ldq) >= c.cfg.LDQSize {
			return budget
		}
		if u.IsStore() && len(th.stq) >= c.cfg.STQSize {
			return budget
		}

		// Allocate rename resources; roll back on shortage.
		rd, fl := -1, -1
		if u.Rd != uops.RegZero {
			rd = c.allocPhys(0, false)
			if rd == -2 {
				return budget
			}
		}
		if u.SetFlags != 0 {
			fl = c.allocPhys(0, false)
			if fl == -2 {
				c.freePhys(rd)
				return budget
			}
		}

		th.fetchQ = th.fetchQ[1:]
		c.seq++
		slot := (th.robHead + th.robCount) % len(th.rob)
		th.robCount++
		e := &th.rob[slot]
		*e = robEntry{
			valid: true, uop: *u, seq: c.seq,
			rdPhys: rd, rdOld: -1, flPhys: fl, flOld: -1,
			src:          [3]int{c.srcPhys(th, u.Ra), c.srcPhysB(th, u), c.srcPhys(th, u.Rc)},
			state:        stateWaiting,
			cluster:      cl,
			predTarget:   f.predTarget,
			predSnapshot: f.predSnapshot,
			rasSnap:      f.rasSnap,
			hasRASSnap:   f.hasRASSnap,
		}
		if rd >= 0 {
			e.rdOld = th.rat[u.Rd]
			th.rat[u.Rd] = rd
		}
		if fl >= 0 {
			e.flOld = th.rat[uops.RegFlags]
			th.rat[uops.RegFlags] = fl
		}
		if u.IsLoad() {
			th.ldq = append(th.ldq, slot)
		}
		if u.IsStore() {
			th.stq = append(th.stq, slot)
		}
		if e.isAssist() {
			// Assists execute at commit; mark complete immediately.
			e.state = stateDone
		} else {
			c.iqs[cl] = append(c.iqs[cl], iqEntry{thread: th.id, rob: slot, seq: e.seq})
		}
		if c.ev != nil {
			// The fetch event is emitted retroactively now that the uop
			// has its sequence number; its cycle is the true fetch cycle.
			op := uint16(u.Op)
			c.ev.Record(evlog.Event{Cycle: f.fetchCycle, Seq: e.seq, RIP: u.RIP,
				Op: op, Stage: evlog.StageFetch, Core: uint8(c.ID), Thread: uint8(th.id)})
			c.ev.Record(evlog.Event{Cycle: c.now, Seq: e.seq, RIP: u.RIP,
				Op: op, Stage: evlog.StageRename, Core: uint8(c.ID), Thread: uint8(th.id)})
			if !e.isAssist() {
				c.ev.Record(evlog.Event{Cycle: c.now, Seq: e.seq, RIP: u.RIP,
					Arg: uint64(cl), Op: op, Stage: evlog.StageDispatch,
					Core: uint8(c.ID), Thread: uint8(th.id)})
			}
		}
		budget--
	}
	return budget
}

// srcPhys resolves an architectural source to its physical register
// (-1 for the zero register, which is always ready).
func (c *Core) srcPhys(th *thread, r uops.ArchReg) int {
	if r == uops.RegZero {
		return -1
	}
	return th.rat[r]
}

func (c *Core) srcPhysB(th *thread, u *uops.Uop) int {
	if u.BImm {
		return -1
	}
	return c.srcPhys(th, u.Rb)
}

// pickCluster selects the issue queue for a uop: among clusters that
// can execute its class, the one with the most free entries (PTLsim's
// load-balancing cluster selection). Returns -1 if all are full.
func (c *Core) pickCluster(u *uops.Uop) int {
	cl := classOf(u)
	best, bestFree := -1, 0
	for i, cc := range c.cfg.Clusters {
		if !cc.Classes.Has(cl) {
			continue
		}
		free := cc.IQSize - len(c.iqs[i])
		if free > bestFree {
			best, bestFree = i, free
		}
	}
	return best
}

// classOf buckets a uop into an op class.
func classOf(u *uops.Uop) OpClass {
	switch {
	case u.IsLoad():
		return ClassLoad
	case u.IsStore():
		return ClassStore
	case u.IsBranch():
		return ClassBranch
	}
	switch u.Op {
	case uops.OpMull, uops.OpMulh, uops.OpMulhu:
		return ClassMul
	case uops.OpDiv, uops.OpRem, uops.OpDivs, uops.OpRems:
		return ClassDiv
	case uops.OpFAdd, uops.OpFSub, uops.OpFMul, uops.OpFCmp,
		uops.OpFCvtID, uops.OpFCvtDI:
		return ClassFP
	case uops.OpFDiv:
		return ClassFDiv
	default:
		return ClassALU
	}
}
