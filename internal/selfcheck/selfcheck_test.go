package selfcheck_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"ptlsim/internal/core"
	"ptlsim/internal/faultinject"
	"ptlsim/internal/guest"
	"ptlsim/internal/hv"
	"ptlsim/internal/kern"
	"ptlsim/internal/mem"
	"ptlsim/internal/selfcheck"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
	"ptlsim/internal/supervisor"
	"ptlsim/internal/vm"
)

// buildBench boots the deterministic rsync benchmark. The corpus is
// deliberately small: the oracle suite runs several full-workload
// machines at compare-every-commit intensity, and the whole package
// must stay comfortably inside the race-detector test budget.
func buildBench(t *testing.T) (*hv.Domain, *stats.Tree) {
	t.Helper()
	cs := guest.CorpusSpec{NFiles: 1, FileSize: 512, Seed: 5, ChangeFraction: 0.4}
	spec, err := guest.RsyncBenchmark(cs, 4_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tree := stats.NewTree()
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return img.Domain, tree
}

func checkedConfig(sc selfcheck.Config) core.Config {
	cfg := core.DefaultConfig()
	cfg.SelfCheck = sc
	return cfg
}

// TestCleanRunNoFalsePositives: a healthy machine under full
// instrumentation (oracle comparing at every commit, auditor every
// cycle) must run the benchmark to completion without a report.
func TestCleanRunNoFalsePositives(t *testing.T) {
	dom, _ := buildBench(t)
	m := core.NewMachine(dom, stats.NewTree(),
		checkedConfig(selfcheck.Config{Oracle: true, Interval: 1, Audit: true, AuditEvery: 8}))
	m.SwitchMode(core.ModeSim)
	if err := m.Run(0); err != nil {
		t.Fatalf("self-checked run failed: %v", err)
	}
	if !strings.Contains(dom.Console(), "rsync ok") {
		t.Fatalf("console: %q", dom.Console())
	}
}

// TestSelfCheckBitIdentical: the instrumentation must be invisible — a
// fault-free run with the oracle and auditor attached finishes with
// bit-identical architectural state, cycle count, console output and
// statistics to the same run without them.
func TestSelfCheckBitIdentical(t *testing.T) {
	run := func(sc selfcheck.Config) (*hv.Domain, *core.Machine, *stats.Tree) {
		dom, tree := buildBench(t)
		m := core.NewMachine(dom, tree, checkedConfig(sc))
		m.SwitchMode(core.ModeSim)
		if err := m.Run(0); err != nil {
			t.Fatalf("run (selfcheck=%+v): %v", sc, err)
		}
		return dom, m, tree
	}
	domOff, mOff, treeOff := run(selfcheck.Config{})
	domOn, mOn, treeOn := run(selfcheck.Config{Oracle: true, Interval: 1, Audit: true, AuditEvery: 8})

	if mOff.Cycle != mOn.Cycle || mOff.Insns() != mOn.Insns() {
		t.Fatalf("timing changed: off %d cycles/%d insns, on %d cycles/%d insns",
			mOff.Cycle, mOff.Insns(), mOn.Cycle, mOn.Insns())
	}
	if !vm.ArchEqual(domOff.VCPUs[0], domOn.VCPUs[0]) {
		t.Fatalf("final state changed: %s", vm.DiffArch(domOff.VCPUs[0], domOn.VCPUs[0]))
	}
	if domOff.Console() != domOn.Console() {
		t.Fatal("console output changed under self-checking")
	}
	off := treeOff.Snapshot(mOff.Cycle).Values
	on := treeOn.Snapshot(mOn.Cycle).Values
	if !reflect.DeepEqual(off, on) {
		for k, v := range on {
			if off[k] != v {
				t.Errorf("counter %s: off %d, on %d", k, off[k], v)
			}
		}
		for k, v := range off {
			if _, ok := on[k]; !ok {
				t.Errorf("counter %s: off %d, missing with self-check on", k, v)
			}
		}
		t.Fatal("statistics changed under self-checking")
	}
}

// TestInjectedFaultsDetected: every regflip/robcorrupt spec must be
// detected within one sampling window of its trigger, with the right
// report kind.
func TestInjectedFaultsDetected(t *testing.T) {
	const interval = 64
	// robcorrupt needs the auditor at full cadence: the invariant sweep
	// must classify the corruption before the commit stage's own
	// panic-check stumbles over it. The register flips are caught by the
	// oracle, so those cases run the auditor at the default-ish cadence
	// to prove it stays quiet on a diverging-but-structurally-sound
	// pipeline.
	cases := []struct {
		spec       string
		kind       simerr.Kind
		auditEvery uint64
	}{
		{"regflip@1500:reg=r13,bit=62", simerr.KindDivergence, 8},
		{"regflip@2000:reg=rbp,bit=61", simerr.KindDivergence, 8},
		{"regflip@1000:reg=rax,bit=63", simerr.KindDivergence, 8},
		{"robcorrupt@1500", simerr.KindInvariant, 1},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			specs, err := faultinject.ParseList(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			dom, tree := buildBench(t)
			m := core.NewMachine(dom, tree, checkedConfig(
				selfcheck.Config{Oracle: true, Interval: interval, Audit: true, AuditEvery: tc.auditEvery}))
			m.SwitchMode(core.ModeSim)
			faultinject.New(specs...).Attach(m)
			err = m.Run(0)
			if err == nil {
				t.Fatalf("injected fault %s not detected (run completed)", tc.spec)
			}
			se, ok := simerr.As(err)
			if !ok {
				t.Fatalf("unstructured error: %v", err)
			}
			if se.Kind != tc.kind {
				t.Fatalf("kind = %s, want %s: %v", se.Kind, tc.kind, err)
			}
			// Detection within one sampling window of the trigger. The
			// slack covers step-boundary granularity (the injector fires
			// between cycles, after up to a commit-width of instructions).
			trigger := specs[0].Insn
			if se.Commit < trigger-int64(interval) || se.Commit > trigger+2*int64(interval) {
				t.Fatalf("detected at commit %d, trigger %d, window %d", se.Commit, trigger, interval)
			}
			if se.Kind == simerr.KindDivergence && se.Expected == "" {
				t.Fatal("divergence report missing reference register file")
			}
			if se.Detail() == "" || !strings.Contains(se.Detail(), "commit index") {
				t.Fatalf("detail missing commit index:\n%s", se.Detail())
			}
		})
	}
}

// TestMemFlipOutsideTouchedPagesNotFlagged: corrupting a mapped page
// the guest never references must not trip the oracle — the shadow
// only checks state the primary actually commits.
func TestMemFlipOutsideTouchedPagesNotFlagged(t *testing.T) {
	dom, tree := buildBench(t)
	// A freshly allocated page is mapped in the machine's physical
	// memory but referenced by no guest page table entry.
	mfn := dom.M.PM.AllocPage()
	pa := mfn<<mem.PageShift + 123
	m := core.NewMachine(dom, tree, checkedConfig(
		selfcheck.Config{Oracle: true, Interval: 1, Audit: true, AuditEvery: 8}))
	m.SwitchMode(core.ModeSim)
	inj := faultinject.New(faultinject.Spec{Kind: faultinject.MemFlip, Insn: 1000, PA: pa, Bit: 3})
	inj.Attach(m)
	if err := m.Run(0); err != nil {
		t.Fatalf("memflip outside touched pages falsely flagged: %v", err)
	}
	if len(inj.Events) != 1 || !strings.Contains(inj.Events[0].Desc, "flipped") {
		t.Fatalf("fault did not fire: %+v", inj.Events)
	}
	if !strings.Contains(dom.Console(), "rsync ok") {
		t.Fatalf("console: %q", dom.Console())
	}
}

// TestSupervisedTriage: under the supervisor, an oracle-detected
// divergence must be classified non-retryable and trigger the
// checkpoint-seeded divergence search, leaving a triage record in the
// journal that pinpoints the first diverging commit.
func TestSupervisedTriage(t *testing.T) {
	const trigger = 2500
	dom, tree := buildBench(t)
	m := core.NewMachine(dom, tree, checkedConfig(
		selfcheck.Config{Oracle: true, Interval: 1}))
	m.SwitchMode(core.ModeSim)
	specs, err := faultinject.ParseList("regflip@2500:reg=r13,bit=62")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.New(specs...).Attach(m)

	// One checkpoint per guest timer period: the injected flip fires in
	// the work burst after the third timer tick, so the latest rotated
	// slot precedes it and seeds the divergence search.
	var journal bytes.Buffer
	sup, err := supervisor.New(m, supervisor.Config{
		Interval: 4_000_000_000, Dir: t.TempDir(),
		Journal: &journal, Triage: true, TriageInterval: 64,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sup.Run(context.Background())
	if err == nil {
		t.Fatal("supervised run with injected divergence completed")
	}
	se, ok := simerr.As(err)
	if !ok || se.Kind != simerr.KindDivergence {
		t.Fatalf("want divergence error, got %v", err)
	}
	if simerr.Retryable(err) {
		t.Fatal("divergence classified retryable")
	}

	entries, err := supervisor.ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var fail, triage *supervisor.Entry
	for i := range entries {
		e := &entries[i]
		switch {
		case e.Event == supervisor.EventFailure && e.Kind == string(simerr.KindDivergence):
			fail = e
		case e.Event == supervisor.EventTriage:
			triage = e
		}
	}
	if fail == nil {
		t.Fatalf("no divergence failure entry in journal:\n%s", journal.String())
	}
	if fail.Retryable {
		t.Fatal("journal marks divergence retryable")
	}
	if fail.Commit == 0 || fail.RIP == 0 {
		t.Fatalf("failure entry missing commit/rip: %+v", fail)
	}
	if triage == nil {
		t.Fatalf("no triage entry in journal:\n%s", journal.String())
	}
	if triage.DivergedAt == 0 {
		t.Fatalf("triage did not localize the divergence: %+v", triage)
	}
	// The sticky flip lands at the first step boundary at or after the
	// trigger; the search must localize the first diverging commit near
	// it (never before).
	if triage.DivergedAt < trigger || triage.DivergedAt > trigger+256 {
		t.Fatalf("triage localized commit %d, trigger %d", triage.DivergedAt, trigger)
	}
	if triage.Diff == "" {
		t.Fatalf("triage entry missing register diff: %+v", triage)
	}

	// The report renderer must surface both records.
	var report strings.Builder
	supervisor.WriteReport(&report, entries, 0)
	out := report.String()
	for _, want := range []string{"self-check divergence", "triage", "first diverging instruction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
