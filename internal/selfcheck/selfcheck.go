// Package selfcheck provides online self-checking for the out-of-order
// core: a lockstep commit oracle that shadows every committed x86
// instruction on a phantom sequential core and compares architectural
// state at commit boundaries, and the configuration for the pipeline
// invariant auditor (ooo.Audit). Where co-simulation
// (internal/cosim) detects wrong execution only at end-of-run
// comparison points, the oracle catches it at the first diverging
// commit, while the full pipeline state that produced it is still in
// hand.
package selfcheck

import (
	"fmt"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/ooo"
	"ptlsim/internal/seqcore"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// Config selects the self-checking instrumentation for a machine. The
// zero value disables everything; snapshot.ConfigHash excludes this
// struct from checkpoint compatibility hashes so instrumentation can be
// toggled across a restore.
type Config struct {
	// Oracle attaches the lockstep commit oracle to every OoO core.
	Oracle bool
	// Interval samples the oracle's architectural register compare
	// every N committed instructions (<=1 compares at every commit).
	// The shadow still executes every committed instruction — the
	// continuity is what makes sticky in-place state corruption
	// detectable — so the interval bounds detection latency, not the
	// shadow-execution cost. Store traffic is compared at every commit
	// regardless (the lists are already in hand).
	Interval int64
	// Audit arms the pipeline invariant auditor (ooo.Audit).
	Audit bool
	// AuditEvery runs the auditor every N cycles (<=0 with Audit set
	// defaults to every 64 cycles).
	AuditEvery uint64
}

// Enabled reports whether any instrumentation is selected.
func (c Config) Enabled() bool { return c.Oracle || c.Audit }

// EffectiveInterval is the compare interval with the default applied.
func (c Config) EffectiveInterval() int64 {
	if c.Interval < 1 {
		return 1
	}
	return c.Interval
}

// EffectiveAuditEvery is the audit cadence with the default applied.
func (c Config) EffectiveAuditEvery() uint64 {
	if c.AuditEvery < 1 {
		return 64
	}
	return c.AuditEvery
}

// shadowThread is one hardware thread's phantom reference core plus
// the in-flight state between a PreCommit and its PostCommit.
type shadowThread struct {
	ctx  *vm.Context
	core *seqcore.Core

	// Results of the PreCommit shadow step, consumed at PostCommit.
	stores []seqcore.ShadowStore
	fault  uops.Fault

	// lastCompared/lastInsns track the sampled-compare schedule and the
	// commit index attributed to PreCommit-time failures.
	lastCompared int64
	lastInsns    int64
}

// Oracle implements ooo.CommitChecker: one phantom seqcore per
// hardware thread, advanced one instruction group per OoO commit. Its
// statistics tree and basic block cache are private so the machine's
// own stats stay bit-identical whether or not the oracle is attached.
type Oracle struct {
	sys      vm.System
	interval int64
	shadows  map[int]*shadowThread
	bbc      *bbcache.Cache
}

// NewOracle creates a commit oracle for one core's threads. Shadows
// are created when the core announces each thread via Resync (which
// ooo.SetChecker fires at attach time).
func NewOracle(sys vm.System, interval int64) *Oracle {
	if interval < 1 {
		interval = 1
	}
	tree := stats.NewTree()
	return &Oracle{
		sys:      sys,
		interval: interval,
		shadows:  make(map[int]*shadowThread),
		bbc:      bbcache.New(4096, tree, "selfcheck.bbcache"),
	}
}

// Resync adopts the primary's architectural state wholesale: called at
// attach time and after every full pipeline flush (exceptions,
// interrupts, assists, SMC restarts re-architect state outside the
// clean-commit path the shadow mirrors).
func (o *Oracle) Resync(t int, ctx *vm.Context) {
	sh := o.shadows[t]
	if sh == nil {
		shadowCtx := ctx.Clone()
		sh = &shadowThread{
			ctx:  shadowCtx,
			core: seqcore.NewShadow(shadowCtx, o.sys, o.bbc, stats.NewTree(), "shadow"),
		}
		o.shadows[t] = sh
	} else {
		*sh.ctx = *ctx
	}
	sh.core.ResetShadow()
	sh.stores = nil
	sh.fault = uops.FaultNone
}

// PreCommit advances the shadow by the instruction group about to
// commit, against pre-group memory (the primary applies the group's
// stores only afterwards, so an RMW group's loads see the same values
// on both sides).
func (o *Oracle) PreCommit(t int, ctx *vm.Context, rip uint64, noCount bool) error {
	sh := o.shadows[t]
	if sh == nil {
		o.Resync(t, ctx)
		sh = o.shadows[t]
	}
	if sh.ctx.RIP != rip {
		return o.divergeErr(sh, ctx, sh.lastInsns,
			fmt.Sprintf("thread %d: control flow diverged: primary committing rip %#x, shadow at %#x",
				t, rip, sh.ctx.RIP))
	}
	stores, fault, err := sh.core.StepShadow(noCount)
	if err != nil {
		return o.divergeErr(sh, ctx, sh.lastInsns,
			fmt.Sprintf("thread %d: shadow execution failed at rip %#x: %v", t, rip, err))
	}
	if fault != uops.FaultNone {
		return o.divergeErr(sh, ctx, sh.lastInsns,
			fmt.Sprintf("thread %d: shadow faulted (%v) at rip %#x where primary commits cleanly",
				t, fault, rip))
	}
	sh.stores = stores
	sh.fault = fault
	return nil
}

// PostCommit compares the shadow against the primary's post-group
// state: store traffic at every commit, the architectural register
// file on the sampling schedule.
func (o *Oracle) PostCommit(t int, ctx *vm.Context, insns int64, stores []ooo.CommittedStore) error {
	sh := o.shadows[t]
	if sh == nil {
		return nil
	}
	sh.lastInsns = insns
	if len(stores) != len(sh.stores) {
		return o.divergeErr(sh, ctx, insns,
			fmt.Sprintf("thread %d: store count mismatch at rip %#x: primary %d, shadow %d",
				t, ctx.RIP, len(stores), len(sh.stores)))
	}
	for i := range stores {
		p, s := stores[i], sh.stores[i]
		if p.EA != s.VA || p.Size != s.Size || p.Data != s.Val {
			return o.divergeErr(sh, ctx, insns,
				fmt.Sprintf("thread %d: store %d mismatch: primary [va %#x size %d val %#x], shadow [va %#x size %d val %#x]",
					t, i, p.EA, p.Size, p.Data, s.VA, s.Size, s.Val))
		}
	}
	if insns-sh.lastCompared >= o.interval {
		sh.lastCompared = insns
		if !vm.ArchEqual(sh.ctx, ctx) {
			return o.divergeErr(sh, ctx, insns,
				fmt.Sprintf("thread %d: architectural state diverged: %s", t, vm.DiffArch(sh.ctx, ctx)))
		}
	}
	return nil
}

// divergeErr builds a structured divergence report; the owning core
// decorates it with the cycle, pipeline dump and recent commit trail.
func (o *Oracle) divergeErr(sh *shadowThread, ctx *vm.Context, insns int64, msg string) error {
	return &simerr.SimError{
		Kind:     simerr.KindDivergence,
		VCPU:     ctx.ID,
		RIP:      ctx.RIP,
		Commit:   insns,
		Message:  msg,
		Diff:     vm.DiffArch(sh.ctx, ctx),
		Expected: sh.ctx.DumpArch(),
		Actual:   ctx.DumpArch(),
	}
}
