package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ptlsim/internal/guest"
	"ptlsim/internal/hv"
	"ptlsim/internal/kern"
	"ptlsim/internal/mem"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
)

// haltedDomain builds a minimal one-VCPU domain whose VCPU is halted,
// the precondition for the deadlock detection paths.
func haltedDomain(t *testing.T) (*hv.Domain, *stats.Tree) {
	t.Helper()
	tree := stats.NewTree()
	dom := hv.NewDomain(&vm.Machine{PM: mem.NewPhysMem()}, 1, tree)
	dom.VCPUs[0].Running = false
	return dom, tree
}

func TestDeadlockAllHaltedNoTimersNative(t *testing.T) {
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	err := m.Run(0)
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("want *simerr.SimError, got %T: %v", err, err)
	}
	if se.Kind != simerr.KindDeadlock {
		t.Fatalf("kind = %v, want %v", se.Kind, simerr.KindDeadlock)
	}
	if se.Cycle != m.Cycle {
		t.Fatalf("error cycle %d, machine cycle %d", se.Cycle, m.Cycle)
	}
	if se.VCPU != 0 || se.RIP != dom.VCPUs[0].RIP {
		t.Fatalf("context fields: vcpu=%d rip=%#x", se.VCPU, se.RIP)
	}
	if !strings.Contains(se.Error(), "deadlock") {
		t.Fatalf("message: %q", se.Error())
	}
}

func TestDeadlockAllHaltedNoTimersSim(t *testing.T) {
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	m.SwitchMode(ModeSim)
	err := m.Step()
	se, ok := simerr.As(err)
	if !ok || se.Kind != simerr.KindDeadlock {
		t.Fatalf("want sim-mode deadlock SimError, got %v", err)
	}
	// Sim-mode deadlocks carry the pipeline dump for postmortems.
	if !strings.Contains(se.Dump, "core 0") {
		t.Fatalf("dump missing core state: %q", se.Dump)
	}
}

func TestNoDeadlockWithPendingTimer(t *testing.T) {
	dom, tree := haltedDomain(t)
	// Arm a one-shot timer through the serialized-state interface (the
	// same path a checkpoint restore takes).
	st := dom.SaveState()
	st.Oneshot[0] = 123
	dom.LoadState(st)
	m := NewMachine(dom, tree, DefaultConfig())
	if err := m.Step(); err != nil {
		t.Fatalf("pending timer must not deadlock: %v", err)
	}
	if m.Cycle < 123 {
		t.Fatalf("idle skip stopped at cycle %d, want >= 123", m.Cycle)
	}
	if !dom.VCPUs[0].Running {
		t.Fatal("timer fire should wake the halted VCPU")
	}
}

func TestCycleBudgetStructuredError(t *testing.T) {
	dom, tree := haltedDomain(t)
	st := dom.SaveState()
	st.Oneshot[0] = 500
	dom.LoadState(st)
	m := NewMachine(dom, tree, DefaultConfig())
	err := m.Run(100) // idle skip jumps straight past the budget
	se, ok := simerr.As(err)
	if !ok || se.Kind != simerr.KindCycleBudget {
		t.Fatalf("want cycle-budget SimError, got %v", err)
	}
	if se.Cycle < 100 {
		t.Fatalf("budget error at cycle %d", se.Cycle)
	}
}

func TestGuardConvertsPanicToSimError(t *testing.T) {
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	m.SetStepHook(func(*Machine) { panic("synthetic invariant violation") })
	// Arm a timer so the step itself succeeds and reaches the hook.
	st := dom.SaveState()
	st.Oneshot[0] = 50
	dom.LoadState(st)
	err := m.Run(0)
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("panic escaped the guard: %v", err)
	}
	if se.Kind != simerr.KindPanic {
		t.Fatalf("kind = %v, want %v", se.Kind, simerr.KindPanic)
	}
	if !strings.Contains(se.Message, "synthetic invariant violation") {
		t.Fatalf("message: %q", se.Message)
	}
	if se.Dump == "" {
		t.Fatal("panic SimError should carry a stack trace")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	bad := cfg
	bad.Core.ROBSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ROB must fail validation")
	}
	neg := cfg
	neg.NativeCPI = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative NativeCPI must fail validation")
	}
}

func TestControlStateRoundTrip(t *testing.T) {
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	in := []PhaseSpec{{Sim: true, StopInsns: 1000}, {Kill: true}}
	m.SetControlState(in, 1000, 42)
	phases, stop, base := m.ControlState()
	if len(phases) != 2 || phases[0] != in[0] || phases[1] != in[1] {
		t.Fatalf("phases round trip: %+v", phases)
	}
	if stop != 1000 || base != 42 {
		t.Fatalf("stop=%d base=%d", stop, base)
	}
}

// TestWatchdogSurvivesIdleSkip: fast-forwarding the clock over a fully
// idle period must rebase the commit-progress watchdog — the skipped
// span is sleep, not a stall. Regression: the first timer wake after a
// multi-billion-cycle idle gap used to be misreported as a livelock on
// any machine that lived through the gap (checkpoint-restored machines
// hid the bug because their cores were rebuilt cold at each boundary).
func TestWatchdogSurvivesIdleSkip(t *testing.T) {
	cs := guest.CorpusSpec{NFiles: 1, FileSize: 1024, Seed: 5, ChangeFraction: 0.4}
	spec, err := guest.RsyncBenchmark(cs, 4_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tree := stats.NewTree()
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 20_000
	m := NewMachine(img.Domain, tree, cfg)
	m.SwitchMode(ModeSim)
	// The 4G-cycle timer period forces several idle skips far beyond the
	// watchdog threshold before the workload completes.
	if err := m.Run(0); err != nil {
		t.Fatalf("clean run with armed watchdog across idle skips: %v", err)
	}
	if !strings.Contains(m.Dom.Console(), "rsync ok") {
		t.Fatalf("benchmark did not complete:\n%s", m.Dom.Console())
	}
}

// TestRunCtxCancellation: a cancelled context stops the run loops at
// an instruction boundary with an error wrapping context.Canceled —
// never a SimError, so the supervisor and CLI classify it as a clean
// interrupt rather than a simulation failure.
func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	for name, run := range map[string]func() error{
		"RunCtx":           func() error { return m.RunCtx(ctx, 0) },
		"RunUntilCycleCtx": func() error { return m.RunUntilCycleCtx(ctx, 1_000_000) },
		"RunUntilInsnsCtx": func() error { return m.RunUntilInsnsCtx(ctx, 1_000_000, 0) },
	} {
		err := run()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want wrapped context.Canceled", name, err)
		}
		if _, ok := simerr.As(err); ok {
			t.Fatalf("%s: cancellation must not be a SimError: %v", name, err)
		}
		if !strings.Contains(err.Error(), "interrupted") {
			t.Fatalf("%s: message should say interrupted: %v", name, err)
		}
	}
}
