package core

import (
	"strings"
	"testing"

	"ptlsim/internal/hv"
	"ptlsim/internal/mem"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
)

// haltedDomain builds a minimal one-VCPU domain whose VCPU is halted,
// the precondition for the deadlock detection paths.
func haltedDomain(t *testing.T) (*hv.Domain, *stats.Tree) {
	t.Helper()
	tree := stats.NewTree()
	dom := hv.NewDomain(&vm.Machine{PM: mem.NewPhysMem()}, 1, tree)
	dom.VCPUs[0].Running = false
	return dom, tree
}

func TestDeadlockAllHaltedNoTimersNative(t *testing.T) {
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	err := m.Run(0)
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("want *simerr.SimError, got %T: %v", err, err)
	}
	if se.Kind != simerr.KindDeadlock {
		t.Fatalf("kind = %v, want %v", se.Kind, simerr.KindDeadlock)
	}
	if se.Cycle != m.Cycle {
		t.Fatalf("error cycle %d, machine cycle %d", se.Cycle, m.Cycle)
	}
	if se.VCPU != 0 || se.RIP != dom.VCPUs[0].RIP {
		t.Fatalf("context fields: vcpu=%d rip=%#x", se.VCPU, se.RIP)
	}
	if !strings.Contains(se.Error(), "deadlock") {
		t.Fatalf("message: %q", se.Error())
	}
}

func TestDeadlockAllHaltedNoTimersSim(t *testing.T) {
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	m.SwitchMode(ModeSim)
	err := m.Step()
	se, ok := simerr.As(err)
	if !ok || se.Kind != simerr.KindDeadlock {
		t.Fatalf("want sim-mode deadlock SimError, got %v", err)
	}
	// Sim-mode deadlocks carry the pipeline dump for postmortems.
	if !strings.Contains(se.Dump, "core 0") {
		t.Fatalf("dump missing core state: %q", se.Dump)
	}
}

func TestNoDeadlockWithPendingTimer(t *testing.T) {
	dom, tree := haltedDomain(t)
	// Arm a one-shot timer through the serialized-state interface (the
	// same path a checkpoint restore takes).
	st := dom.SaveState()
	st.Oneshot[0] = 123
	dom.LoadState(st)
	m := NewMachine(dom, tree, DefaultConfig())
	if err := m.Step(); err != nil {
		t.Fatalf("pending timer must not deadlock: %v", err)
	}
	if m.Cycle < 123 {
		t.Fatalf("idle skip stopped at cycle %d, want >= 123", m.Cycle)
	}
	if !dom.VCPUs[0].Running {
		t.Fatal("timer fire should wake the halted VCPU")
	}
}

func TestCycleBudgetStructuredError(t *testing.T) {
	dom, tree := haltedDomain(t)
	st := dom.SaveState()
	st.Oneshot[0] = 500
	dom.LoadState(st)
	m := NewMachine(dom, tree, DefaultConfig())
	err := m.Run(100) // idle skip jumps straight past the budget
	se, ok := simerr.As(err)
	if !ok || se.Kind != simerr.KindCycleBudget {
		t.Fatalf("want cycle-budget SimError, got %v", err)
	}
	if se.Cycle < 100 {
		t.Fatalf("budget error at cycle %d", se.Cycle)
	}
}

func TestGuardConvertsPanicToSimError(t *testing.T) {
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	m.SetStepHook(func(*Machine) { panic("synthetic invariant violation") })
	// Arm a timer so the step itself succeeds and reaches the hook.
	st := dom.SaveState()
	st.Oneshot[0] = 50
	dom.LoadState(st)
	err := m.Run(0)
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("panic escaped the guard: %v", err)
	}
	if se.Kind != simerr.KindPanic {
		t.Fatalf("kind = %v, want %v", se.Kind, simerr.KindPanic)
	}
	if !strings.Contains(se.Message, "synthetic invariant violation") {
		t.Fatalf("message: %q", se.Message)
	}
	if se.Dump == "" {
		t.Fatal("panic SimError should carry a stack trace")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	bad := cfg
	bad.Core.ROBSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ROB must fail validation")
	}
	neg := cfg
	neg.NativeCPI = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative NativeCPI must fail validation")
	}
}

func TestControlStateRoundTrip(t *testing.T) {
	dom, tree := haltedDomain(t)
	m := NewMachine(dom, tree, DefaultConfig())
	in := []PhaseSpec{{Sim: true, StopInsns: 1000}, {Kill: true}}
	m.SetControlState(in, 1000, 42)
	phases, stop, base := m.ControlState()
	if len(phases) != 2 || phases[0] != in[0] || phases[1] != in[1] {
		t.Fatalf("phases round trip: %+v", phases)
	}
	if stop != 1000 || base != 42 {
		t.Fatalf("stop=%d base=%d", stop, base)
	}
}
