// Package core is the public facade of the simulator: a Machine binds
// a paravirtualized domain to PTLsim's core models and provides the
// simulation control the paper describes — native-mode execution (the
// fast functional engine standing in for host silicon), cycle accurate
// simulation on the out-of-order core, seamless switching between the
// two driven by ptlcall command lists, statistics snapshots, and the
// per-cycle user/kernel/idle accounting behind Figure 2.
package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/cache"
	"ptlsim/internal/evlog"
	"ptlsim/internal/hv"
	"ptlsim/internal/ooo"
	"ptlsim/internal/selfcheck"
	"ptlsim/internal/seqcore"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
)

// Mode selects the execution engine.
type Mode int

// Execution modes.
const (
	ModeNative Mode = iota // fast functional execution
	ModeSim                // cycle accurate out-of-order model
)

// Config configures a Machine.
type Config struct {
	Core ooo.Config
	// NativeCPI is how many virtual cycles each instruction advances
	// the clock in native mode (time virtualization for timers).
	NativeCPI float64
	// SnapshotCycles takes a statistics snapshot every N cycles
	// (0 disables); the paper used one per 2.2M cycles.
	SnapshotCycles uint64
	// ThreadsPerCore assigns this many VCPUs to each core (SMT); the
	// remainder get their own cores.
	ThreadsPerCore int
	// Coherence selects the multi-core cache coherence model: nil
	// means per-core hierarchies with instant visibility.
	UseMOESI bool
	// BBCacheCapacity bounds the basic block cache (0 = default 16384).
	// Setting 1 effectively disables translation caching (the ablation
	// for the paper's §2.1 claim that the BB cache is a simulator
	// speed optimization with no architectural effect).
	BBCacheCapacity int
	// WatchdogCycles arms the per-core commit-progress watchdog: a
	// core that makes no forward progress for this many cycles while
	// work is in flight fails with a structured livelock SimError
	// carrying a pipeline dump (0 disables).
	WatchdogCycles uint64
	// SelfCheck selects the online self-checking instrumentation (the
	// lockstep commit oracle and the pipeline invariant auditor).
	// Excluded from checkpoint compatibility hashes so instrumentation
	// can be toggled across a restore.
	SelfCheck selfcheck.Config
	// TimingSeed, when non-zero, deterministically scrambles
	// timing-only microarchitectural state (branch predictor tables)
	// at construction. Architectural results must be invariant under
	// any seed — conformance fuzzing runs each case under several
	// seeds to check that. Excluded from checkpoint compatibility
	// hashes like SelfCheck: varying it must never change what a
	// restored run computes.
	TimingSeed int64
}

// Validate checks the machine configuration, surfacing the core
// model's geometry constraints as a usable error instead of a panic
// during construction.
func (cfg Config) Validate() error {
	if err := cfg.Core.Validate(); err != nil {
		return err
	}
	if cfg.NativeCPI < 0 {
		return fmt.Errorf("core: NativeCPI %g must be non-negative", cfg.NativeCPI)
	}
	if cfg.ThreadsPerCore > cfg.Core.MaxThreads {
		// NewMachine widens MaxThreads automatically; only a widened
		// config that then fails core validation is a real error.
		widened := cfg.Core
		widened.MaxThreads = cfg.ThreadsPerCore
		return widened.Validate()
	}
	return nil
}

// DefaultConfig runs the default out-of-order core.
func DefaultConfig() Config {
	return Config{Core: ooo.DefaultConfig(), NativeCPI: 1.0, ThreadsPerCore: 1}
}

// Machine drives one domain through the simulator.
type Machine struct {
	Dom  *hv.Domain
	Tree *stats.Tree

	cfg  Config
	mode Mode

	bbc      *bbcache.Cache
	seqCores []*seqcore.Core
	oooCores []*ooo.Core

	// Cycle is the domain's virtual cycle counter (shared with the
	// hypervisor clock).
	Cycle uint64

	collector *stats.Collector

	// Pending ptlcall command phases.
	phases []phase

	// Stop conditions for the current phase.
	stopInsns  int64 // committed-instruction budget (-1 = unlimited)
	baseInsns  int64

	// stepHook runs after every successful Step (fault injection and
	// other instrumentation).
	stepHook func(*Machine)

	// ev is the attached pipeline event log (nil when disabled); the
	// same ring is shared by every core, so events interleave in global
	// pipeline-activity order.
	ev *evlog.Log

	cyclesNative, cyclesSim              *stats.Counter
	cyclesUser, cyclesKernel, cyclesIdle *stats.Counter
	modeSwitches                         *stats.Counter
}

type phase struct {
	mode      Mode
	stopInsns int64
	kill      bool
}

// NewMachine wires a domain to the simulator.
func NewMachine(dom *hv.Domain, tree *stats.Tree, cfg Config) *Machine {
	m := &Machine{
		Dom:  dom,
		Tree: tree,
		cfg:  cfg,
		mode: ModeNative,

		cyclesNative: tree.Counter("external.cycles_in_mode.native"),
		cyclesSim:    tree.Counter("external.cycles_in_mode.sim"),
		cyclesUser:   tree.Counter("external.cycles_in_mode.user"),
		cyclesKernel: tree.Counter("external.cycles_in_mode.kernel"),
		cyclesIdle:   tree.Counter("external.cycles_in_mode.idle"),
		modeSwitches: tree.Counter("external.mode_switches"),
	}
	if cfg.NativeCPI <= 0 {
		m.cfg.NativeCPI = 1.0
	}
	cap := cfg.BBCacheCapacity
	if cap <= 0 {
		cap = 16384
	}
	m.bbc = bbcache.New(cap, tree, "bbcache")
	m.stopInsns = -1
	if cfg.SnapshotCycles > 0 {
		m.collector = stats.NewCollector(tree, cfg.SnapshotCycles)
	}
	// Sequential cores: one per VCPU.
	for i, ctx := range dom.VCPUs {
		sc := seqcore.New(ctx, dom, m.bbc, tree, fmt.Sprintf("seq%d", i))
		m.seqCores = append(m.seqCores, sc)
	}
	// Out-of-order cores: ThreadsPerCore VCPUs each.
	tpc := cfg.ThreadsPerCore
	if tpc <= 0 {
		tpc = 1
	}
	coreCfg := cfg.Core
	if tpc > coreCfg.MaxThreads {
		coreCfg.MaxThreads = tpc
	}
	var coh cache.Controller
	ncores := (len(dom.VCPUs) + tpc - 1) / tpc
	if ncores > 1 {
		if cfg.UseMOESI {
			coh = cache.NewMOESICoherence(tree, 20, 30)
		} else {
			coh = cache.NewInstantCoherence(tree)
		}
	}
	il := ooo.NewInterlock()
	for c := 0; c < ncores; c++ {
		lo := c * tpc
		hi := lo + tpc
		if hi > len(dom.VCPUs) {
			hi = len(dom.VCPUs)
		}
		oc := ooo.New(c, coreCfg, dom.VCPUs[lo:hi], dom, m.bbc, tree, fmt.Sprintf("core%d", c))
		oc.SetInterlock(il)
		if cfg.WatchdogCycles > 0 {
			oc.SetWatchdog(cfg.WatchdogCycles)
		}
		if cfg.SelfCheck.Oracle {
			oc.SetChecker(selfcheck.NewOracle(dom, cfg.SelfCheck.EffectiveInterval()))
		}
		if cfg.SelfCheck.Audit {
			oc.SetAudit(cfg.SelfCheck.EffectiveAuditEvery())
		}
		if cfg.TimingSeed != 0 {
			oc.SeedTimingState(cfg.TimingSeed + int64(c))
		}
		if coh != nil {
			oc.Hierarchy().AttachCoherence(coh, c)
		}
		m.oooCores = append(m.oooCores, oc)
	}
	return m
}

// Mode returns the current execution mode.
func (m *Machine) Mode() Mode { return m.mode }

// Config returns the machine configuration; checkpoint restore builds
// an identical machine from it.
func (m *Machine) Config() Config { return m.cfg }

// SetStepHook installs fn to run after every successful Step (fault
// injection instrumentation; nil clears it).
func (m *Machine) SetStepHook(fn func(*Machine)) { m.stepHook = fn }

// StepHook returns the installed step hook so checkpointing can carry
// instrumentation over to a restored machine.
func (m *Machine) StepHook() func(*Machine) { return m.stepHook }

// SetEventLog attaches a pipeline event log to every core of the
// machine (nil detaches). The supervisor carries the log across
// checkpoint restores exactly like the step hook.
func (m *Machine) SetEventLog(l *evlog.Log) {
	m.ev = l
	for _, c := range m.oooCores {
		c.SetEventLog(l)
	}
	for i, c := range m.seqCores {
		c.SetEventLog(l, uint8(i))
	}
}

// EventLog returns the attached event log (nil when disabled).
func (m *Machine) EventLog() *evlog.Log { return m.ev }

// eventTail renders the newest events for SimError attachment.
func (m *Machine) eventTail() string {
	if m.ev == nil || m.ev.Len() == 0 {
		return ""
	}
	return evlog.Text(m.ev.Tail(64))
}

// OOOCores exposes the cycle-accurate cores (stats, tests).
func (m *Machine) OOOCores() []*ooo.Core { return m.oooCores }

// SeqCores exposes the functional cores.
func (m *Machine) SeqCores() []*seqcore.Core { return m.seqCores }

// Insns returns total committed x86 instructions in the current mode's
// engines (native + simulated are tracked separately and summed).
func (m *Machine) Insns() int64 {
	var n int64
	for _, c := range m.seqCores {
		n += c.Insns()
	}
	for _, c := range m.oooCores {
		n += c.Insns()
	}
	return n
}

// SwitchMode changes execution engine at an instruction boundary,
// preserving virtual time (the TSC and all timers run on the shared
// domain clock, so the guest cannot observe the transition).
func (m *Machine) SwitchMode(mode Mode) {
	if mode == m.mode {
		return
	}
	// Flush the out-of-order pipelines on every transition: leaving
	// sim mode discards uncommitted work (each context stays at its
	// last committed boundary); entering sim mode resynchronizes the
	// fetch units with the architectural RIP the native engine
	// advanced to.
	for _, c := range m.oooCores {
		for t := 0; t < c.Threads(); t++ {
			c.FullFlush(t)
		}
	}
	m.mode = mode
	m.modeSwitches.Inc()
}

// accountCycle attributes n cycles to user/kernel/idle based on VCPU0
// (the paper's Figure 2 classification).
func (m *Machine) accountCycle(n uint64) {
	ctx := m.Dom.VCPUs[0]
	switch {
	case !ctx.Running:
		m.cyclesIdle.Add(int64(n))
	case ctx.Kernel:
		m.cyclesKernel.Add(int64(n))
	default:
		m.cyclesUser.Add(int64(n))
	}
}

// advance moves the shared clock forward n cycles with bookkeeping.
func (m *Machine) advance(n uint64) {
	if n == 0 {
		return
	}
	m.accountCycle(n)
	if m.mode == ModeNative {
		m.cyclesNative.Add(int64(n))
	} else {
		m.cyclesSim.Add(int64(n))
	}
	m.Cycle += n
	m.Dom.Tick(m.Cycle)
	if m.collector != nil {
		m.collector.Tick(m.Cycle)
	}
}

// allIdle reports whether every VCPU is halted.
func (m *Machine) allIdle() bool {
	for _, ctx := range m.Dom.VCPUs {
		if ctx.Running {
			return false
		}
	}
	if m.mode == ModeSim {
		for _, c := range m.oooCores {
			if !c.Idle() {
				return false
			}
		}
	}
	return true
}

// skipIdle fast-forwards the clock to the next timer/DMA deadline when
// the whole domain is halted. Returns false on true deadlock.
func (m *Machine) skipIdle() bool {
	ddl := m.Dom.NextTimerDeadline()
	if ddl == 0 {
		return false
	}
	if ddl <= m.Cycle {
		ddl = m.Cycle + 1
	}
	m.advance(ddl - m.Cycle)
	// The skipped span is sleep, not a stall: rebase each core's
	// commit-progress watchdog so the wake-up is not misread as a
	// multi-billion-cycle livelock.
	for _, c := range m.oooCores {
		c.NoteIdleSkip(m.Cycle)
	}
	return true
}

// stepNative advances native mode by one scheduling quantum (one basic
// block per VCPU), advancing virtual time by NativeCPI per instruction.
func (m *Machine) stepNative() error {
	before := int64(0)
	for _, c := range m.seqCores {
		before += c.Insns()
	}
	ran := false
	for _, c := range m.seqCores {
		kind, err := c.Step()
		if err != nil {
			return err
		}
		if kind == seqcore.StepRan {
			ran = true
		}
	}
	after := int64(0)
	for _, c := range m.seqCores {
		after += c.Insns()
	}
	if ran {
		n := uint64(float64(after-before) * m.cfg.NativeCPI)
		if n == 0 {
			n = 1
		}
		m.advance(n)
		return nil
	}
	if !m.skipIdle() {
		return m.deadlockErr()
	}
	return nil
}

// deadlockErr builds the structured error for a fully halted domain
// with no timer or DMA deadline that could ever wake it.
func (m *Machine) deadlockErr() error {
	ctx := m.Dom.VCPUs[0]
	se := &simerr.SimError{
		Kind:    simerr.KindDeadlock,
		Cycle:   m.Cycle,
		VCPU:    int(ctx.ID),
		RIP:     ctx.RIP,
		Message: "domain deadlocked: all VCPUs halted, no pending timers",
	}
	if m.mode == ModeSim {
		var dump strings.Builder
		for _, c := range m.oooCores {
			dump.WriteString(c.DumpState())
			se.LastRIPs = append(se.LastRIPs, c.RecentCommits()...)
		}
		se.Dump = dump.String()
	}
	se.EventTail = m.eventTail()
	return se
}

// stepSim advances the cycle accurate model by one cycle (all cores in
// round-robin order, as §2.2 describes).
func (m *Machine) stepSim() error {
	if m.allIdle() {
		if !m.skipIdle() {
			return m.deadlockErr()
		}
		return nil
	}
	for _, c := range m.oooCores {
		if err := c.Cycle(m.Cycle); err != nil {
			return err
		}
	}
	m.advance(1)
	return nil
}

// Step advances the machine by one unit in the current mode.
func (m *Machine) Step() error {
	var err error
	if m.mode == ModeNative {
		err = m.stepNative()
	} else {
		err = m.stepSim()
	}
	if err == nil && m.stepHook != nil {
		m.stepHook(m)
	}
	return err
}

// guard converts an internal invariant panic into a structured
// SimError annotated with the execution context (cycle, RIP, recently
// committed instructions) so a sick run produces a failure report
// instead of taking down the process. It must be the first defer in
// each Run* entry point so cleanup defers registered later still run
// during the unwind.
func (m *Machine) guard(err *error) {
	r := recover()
	if r == nil {
		return
	}
	ctx := m.Dom.VCPUs[0]
	se := &simerr.SimError{
		Kind:    simerr.KindPanic,
		Cycle:   m.Cycle,
		VCPU:    int(ctx.ID),
		RIP:     ctx.RIP,
		Message: fmt.Sprintf("internal invariant violated: %v", r),
		Dump:    string(debug.Stack()),
	}
	for _, c := range m.oooCores {
		se.LastRIPs = append(se.LastRIPs, c.RecentCommits()...)
	}
	se.EventTail = m.eventTail()
	*err = se
}

// ctxCheckInterval bounds how many steps may pass between context
// cancellation checks in the run loops: small enough that a SIGINT
// interrupts within microseconds of wall time, large enough to keep
// Err() polling off the per-cycle hot path.
const ctxCheckInterval = 4096

// interruptErr wraps a context cancellation with the machine position
// so callers can both classify it (errors.Is(err, context.Canceled))
// and report where the run stopped. The machine is at an instruction
// boundary, so capturing a final checkpoint is legal.
func (m *Machine) interruptErr(cause error) error {
	return fmt.Errorf("core: run interrupted at cycle %d (%d insns): %w", m.Cycle, m.Insns(), cause)
}

// RunUntilInsns advances the machine until exactly target instructions
// have committed in total (or the domain shuts down). In native mode
// the functional core single-steps near the boundary; in simulation
// mode the commit stage is gated, so both engines pause at a precise
// instruction boundary — the property native↔sim switching and the
// divergence search rely on.
func (m *Machine) RunUntilInsns(target int64, maxCycles uint64) (err error) {
	return m.RunUntilInsnsCtx(context.Background(), target, maxCycles)
}

// RunUntilInsnsCtx is RunUntilInsns with cooperative cancellation: when
// ctx is cancelled the loop returns a wrapped ctx.Err() at the next
// instruction boundary.
func (m *Machine) RunUntilInsnsCtx(ctx context.Context, target int64, maxCycles uint64) (err error) {
	defer m.guard(&err)
	if m.mode == ModeSim {
		// The commit gate compares against each core's own committed
		// count, which on a checkpoint-restored machine is smaller than
		// the machine total (earlier commits may live in the other
		// engine's counters) — so express the limit per core.
		delta := target - m.Insns()
		for _, c := range m.oooCores {
			c.SetCommitLimit(c.Insns() + delta)
		}
		defer func() {
			for _, c := range m.oooCores {
				c.SetCommitLimit(0)
			}
		}()
	} else {
		for _, c := range m.seqCores {
			c.MaxInsnsPerStep = 1
		}
		defer func() {
			for _, c := range m.seqCores {
				c.MaxInsnsPerStep = 0
			}
		}()
	}
	start := m.Cycle
	check := 0
	for m.Insns() < target && !m.Dom.ShutdownReq {
		if check--; check <= 0 {
			check = ctxCheckInterval
			if cerr := ctx.Err(); cerr != nil {
				return m.interruptErr(cerr)
			}
		}
		if maxCycles > 0 && m.Cycle-start >= maxCycles {
			return m.budgetErr(fmt.Sprintf(
				"RunUntilInsns(%d): cycle budget %d exhausted at %d insns", target, maxCycles, m.Insns()))
		}
		if err := m.Step(); err != nil {
			return err
		}
		m.processCommands()
	}
	return nil
}

// RunUntilRIP runs in native mode, single stepping, until VCPU 0
// reaches the trigger RIP (the paper's RIP trigger points, §2.3).
func (m *Machine) RunUntilRIP(rip uint64, maxInsns int64) (err error) {
	defer m.guard(&err)
	if m.mode != ModeNative {
		return fmt.Errorf("core: RIP triggers require native mode")
	}
	m.seqCores[0].MaxInsnsPerStep = 1
	defer func() { m.seqCores[0].MaxInsnsPerStep = 0 }()
	start := m.Insns()
	for m.Dom.VCPUs[0].RIP != rip && !m.Dom.ShutdownReq {
		if maxInsns > 0 && m.Insns()-start >= maxInsns {
			return fmt.Errorf("core: trigger rip %#x not reached within %d insns", rip, maxInsns)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes until the domain shuts down or maxCycles elapses
// (0 = unlimited), honoring ptlcall command lists submitted from
// inside the guest. Internal invariant panics are converted into
// structured SimErrors by the guard boundary.
func (m *Machine) Run(maxCycles uint64) (err error) {
	return m.RunCtx(context.Background(), maxCycles)
}

// RunCtx is Run with cooperative cancellation: when ctx is cancelled
// the loop stops at the next instruction boundary and returns a
// wrapped ctx.Err(), leaving the machine checkpointable — the hook
// SIGINT/SIGTERM handling uses to turn a kill into a final checkpoint
// and clean exit.
func (m *Machine) RunCtx(ctx context.Context, maxCycles uint64) (err error) {
	defer m.guard(&err)
	check := 0
	for !m.Dom.ShutdownReq {
		if check--; check <= 0 {
			check = ctxCheckInterval
			if cerr := ctx.Err(); cerr != nil {
				return m.interruptErr(cerr)
			}
		}
		if maxCycles > 0 && m.Cycle >= maxCycles {
			return m.budgetErr(fmt.Sprintf("cycle budget %d exhausted", maxCycles))
		}
		if err := m.Step(); err != nil {
			return err
		}
		m.postStep()
	}
	if m.collector != nil {
		m.collector.Tick(m.Cycle)
	}
	return nil
}

// RunUntilCycle advances until the shared clock reaches target or the
// domain shuts down — checkpoint interval boundaries land on exact
// cycles regardless of mode.
func (m *Machine) RunUntilCycle(target uint64) (err error) {
	return m.RunUntilCycleCtx(context.Background(), target)
}

// RunUntilCycleCtx is RunUntilCycle with cooperative cancellation.
func (m *Machine) RunUntilCycleCtx(ctx context.Context, target uint64) (err error) {
	defer m.guard(&err)
	check := 0
	for m.Cycle < target && !m.Dom.ShutdownReq {
		if check--; check <= 0 {
			check = ctxCheckInterval
			if cerr := ctx.Err(); cerr != nil {
				return m.interruptErr(cerr)
			}
		}
		if err := m.Step(); err != nil {
			return err
		}
		m.postStep()
	}
	return nil
}

// postStep drains guest commands and applies phase boundaries after a
// successful Step.
func (m *Machine) postStep() {
	m.processCommands()
	if m.stopInsns >= 0 && m.Insns()-m.baseInsns >= m.stopInsns {
		m.stopInsns = -1
		m.nextPhase()
	}
}

// budgetErr builds the structured error for an exhausted cycle budget.
func (m *Machine) budgetErr(msg string) error {
	ctx := m.Dom.VCPUs[0]
	return &simerr.SimError{
		Kind:    simerr.KindCycleBudget,
		Cycle:   m.Cycle,
		VCPU:    int(ctx.ID),
		RIP:     ctx.RIP,
		Message: msg,
	}
}

// Series returns the collected time-lapse statistics series.
func (m *Machine) Series() stats.Series {
	if m.collector == nil {
		return stats.Series{}
	}
	return m.collector.Finish(m.Cycle)
}

// processCommands drains ptlcall command lists into phases.
func (m *Machine) processCommands() {
	for _, cmd := range m.Dom.TakeCommands() {
		m.phases = append(m.phases, parseCommandList(cmd)...)
		// Not currently in a bounded phase: act on the new command now.
		if m.stopInsns < 0 {
			m.nextPhase()
		}
	}
}

// nextPhase applies the next queued phase.
func (m *Machine) nextPhase() {
	if len(m.phases) == 0 {
		return
	}
	ph := m.phases[0]
	m.phases = m.phases[1:]
	if ph.kill {
		m.Dom.ShutdownReq = true
		return
	}
	m.SwitchMode(ph.mode)
	if ph.stopInsns > 0 {
		m.stopInsns = ph.stopInsns
		m.baseInsns = m.Insns()
	} else {
		m.stopInsns = -1
	}
}

// PhaseSpec is the exported form of a queued ptlcall phase, letting a
// checkpoint carry pending command-list state across a restore.
type PhaseSpec struct {
	Sim       bool
	StopInsns int64
	Kill      bool
}

// ControlState exports command/phase progress for checkpointing.
func (m *Machine) ControlState() (phases []PhaseSpec, stopInsns, baseInsns int64) {
	for _, ph := range m.phases {
		phases = append(phases, PhaseSpec{Sim: ph.mode == ModeSim, StopInsns: ph.stopInsns, Kill: ph.kill})
	}
	return phases, m.stopInsns, m.baseInsns
}

// SetControlState restores command/phase progress captured by
// ControlState.
func (m *Machine) SetControlState(phases []PhaseSpec, stopInsns, baseInsns int64) {
	m.phases = nil
	for _, ps := range phases {
		ph := phase{mode: ModeNative, stopInsns: ps.StopInsns, kill: ps.Kill}
		if ps.Sim {
			ph.mode = ModeSim
		}
		m.phases = append(m.phases, ph)
	}
	m.stopInsns = stopInsns
	m.baseInsns = baseInsns
}

// RestoreMode sets the execution mode without counting a mode switch
// or flushing pipelines. Checkpoint restore only: the freshly built
// cores are already cold, and the mode-switch counter is restored
// separately with the rest of the stats tree.
func (m *Machine) RestoreMode(mode Mode) { m.mode = mode }

// parseCommandList parses a PTLsim command list like
// "-run -stopinsns 10m : -native" into phases (paper §4.1).
func parseCommandList(s string) []phase {
	var out []phase
	for _, part := range strings.Split(s, ":") {
		fields := strings.Fields(part)
		if len(fields) == 0 {
			continue
		}
		ph := phase{mode: ModeSim, stopInsns: -1}
		for i := 0; i < len(fields); i++ {
			switch fields[i] {
			case "-run", "-switch":
				ph.mode = ModeSim
			case "-native":
				ph.mode = ModeNative
			case "-kill":
				ph.kill = true
			case "-stopinsns":
				if i+1 < len(fields) {
					i++
					ph.stopInsns = parseCount(fields[i])
				}
			}
		}
		out = append(out, ph)
	}
	return out
}

// parseCount parses "10m", "1k", "2g" style counts.
func parseCount(s string) int64 {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1_000, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mult, s = 1_000_000, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mult, s = 1_000_000_000, strings.TrimSuffix(s, "g")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return -1
	}
	return n * mult
}
