// Package core is the public facade of the simulator: a Machine binds
// a paravirtualized domain to PTLsim's core models and provides the
// simulation control the paper describes — native-mode execution (the
// fast functional engine standing in for host silicon), cycle accurate
// simulation on the out-of-order core, seamless switching between the
// two driven by ptlcall command lists, statistics snapshots, and the
// per-cycle user/kernel/idle accounting behind Figure 2.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/cache"
	"ptlsim/internal/hv"
	"ptlsim/internal/ooo"
	"ptlsim/internal/seqcore"
	"ptlsim/internal/stats"
)

// Mode selects the execution engine.
type Mode int

// Execution modes.
const (
	ModeNative Mode = iota // fast functional execution
	ModeSim                // cycle accurate out-of-order model
)

// Config configures a Machine.
type Config struct {
	Core ooo.Config
	// NativeCPI is how many virtual cycles each instruction advances
	// the clock in native mode (time virtualization for timers).
	NativeCPI float64
	// SnapshotCycles takes a statistics snapshot every N cycles
	// (0 disables); the paper used one per 2.2M cycles.
	SnapshotCycles uint64
	// ThreadsPerCore assigns this many VCPUs to each core (SMT); the
	// remainder get their own cores.
	ThreadsPerCore int
	// Coherence selects the multi-core cache coherence model: nil
	// means per-core hierarchies with instant visibility.
	UseMOESI bool
	// BBCacheCapacity bounds the basic block cache (0 = default 16384).
	// Setting 1 effectively disables translation caching (the ablation
	// for the paper's §2.1 claim that the BB cache is a simulator
	// speed optimization with no architectural effect).
	BBCacheCapacity int
}

// DefaultConfig runs the default out-of-order core.
func DefaultConfig() Config {
	return Config{Core: ooo.DefaultConfig(), NativeCPI: 1.0, ThreadsPerCore: 1}
}

// Machine drives one domain through the simulator.
type Machine struct {
	Dom  *hv.Domain
	Tree *stats.Tree

	cfg  Config
	mode Mode

	bbc      *bbcache.Cache
	seqCores []*seqcore.Core
	oooCores []*ooo.Core

	// Cycle is the domain's virtual cycle counter (shared with the
	// hypervisor clock).
	Cycle uint64

	collector *stats.Collector

	// Pending ptlcall command phases.
	phases []phase

	// Stop conditions for the current phase.
	stopInsns  int64 // committed-instruction budget (-1 = unlimited)
	baseInsns  int64

	cyclesNative, cyclesSim              *stats.Counter
	cyclesUser, cyclesKernel, cyclesIdle *stats.Counter
	modeSwitches                         *stats.Counter
}

type phase struct {
	mode      Mode
	stopInsns int64
	kill      bool
}

// NewMachine wires a domain to the simulator.
func NewMachine(dom *hv.Domain, tree *stats.Tree, cfg Config) *Machine {
	m := &Machine{
		Dom:  dom,
		Tree: tree,
		cfg:  cfg,
		mode: ModeNative,

		cyclesNative: tree.Counter("external.cycles_in_mode.native"),
		cyclesSim:    tree.Counter("external.cycles_in_mode.sim"),
		cyclesUser:   tree.Counter("external.cycles_in_mode.user"),
		cyclesKernel: tree.Counter("external.cycles_in_mode.kernel"),
		cyclesIdle:   tree.Counter("external.cycles_in_mode.idle"),
		modeSwitches: tree.Counter("external.mode_switches"),
	}
	if cfg.NativeCPI <= 0 {
		m.cfg.NativeCPI = 1.0
	}
	cap := cfg.BBCacheCapacity
	if cap <= 0 {
		cap = 16384
	}
	m.bbc = bbcache.New(cap, tree, "bbcache")
	m.stopInsns = -1
	if cfg.SnapshotCycles > 0 {
		m.collector = stats.NewCollector(tree, cfg.SnapshotCycles)
	}
	// Sequential cores: one per VCPU.
	for i, ctx := range dom.VCPUs {
		sc := seqcore.New(ctx, dom, m.bbc, tree, fmt.Sprintf("seq%d", i))
		m.seqCores = append(m.seqCores, sc)
	}
	// Out-of-order cores: ThreadsPerCore VCPUs each.
	tpc := cfg.ThreadsPerCore
	if tpc <= 0 {
		tpc = 1
	}
	coreCfg := cfg.Core
	if tpc > coreCfg.MaxThreads {
		coreCfg.MaxThreads = tpc
	}
	var coh cache.Controller
	ncores := (len(dom.VCPUs) + tpc - 1) / tpc
	if ncores > 1 {
		if cfg.UseMOESI {
			coh = cache.NewMOESICoherence(tree, 20, 30)
		} else {
			coh = cache.NewInstantCoherence(tree)
		}
	}
	il := ooo.NewInterlock()
	for c := 0; c < ncores; c++ {
		lo := c * tpc
		hi := lo + tpc
		if hi > len(dom.VCPUs) {
			hi = len(dom.VCPUs)
		}
		oc := ooo.New(c, coreCfg, dom.VCPUs[lo:hi], dom, m.bbc, tree, fmt.Sprintf("core%d", c))
		oc.SetInterlock(il)
		if coh != nil {
			oc.Hierarchy().AttachCoherence(coh, c)
		}
		m.oooCores = append(m.oooCores, oc)
	}
	return m
}

// Mode returns the current execution mode.
func (m *Machine) Mode() Mode { return m.mode }

// OOOCores exposes the cycle-accurate cores (stats, tests).
func (m *Machine) OOOCores() []*ooo.Core { return m.oooCores }

// SeqCores exposes the functional cores.
func (m *Machine) SeqCores() []*seqcore.Core { return m.seqCores }

// Insns returns total committed x86 instructions in the current mode's
// engines (native + simulated are tracked separately and summed).
func (m *Machine) Insns() int64 {
	var n int64
	for _, c := range m.seqCores {
		n += c.Insns()
	}
	for _, c := range m.oooCores {
		n += c.Insns()
	}
	return n
}

// SwitchMode changes execution engine at an instruction boundary,
// preserving virtual time (the TSC and all timers run on the shared
// domain clock, so the guest cannot observe the transition).
func (m *Machine) SwitchMode(mode Mode) {
	if mode == m.mode {
		return
	}
	// Flush the out-of-order pipelines on every transition: leaving
	// sim mode discards uncommitted work (each context stays at its
	// last committed boundary); entering sim mode resynchronizes the
	// fetch units with the architectural RIP the native engine
	// advanced to.
	for _, c := range m.oooCores {
		for t := 0; t < c.Threads(); t++ {
			c.FullFlush(t)
		}
	}
	m.mode = mode
	m.modeSwitches.Inc()
}

// accountCycle attributes n cycles to user/kernel/idle based on VCPU0
// (the paper's Figure 2 classification).
func (m *Machine) accountCycle(n uint64) {
	ctx := m.Dom.VCPUs[0]
	switch {
	case !ctx.Running:
		m.cyclesIdle.Add(int64(n))
	case ctx.Kernel:
		m.cyclesKernel.Add(int64(n))
	default:
		m.cyclesUser.Add(int64(n))
	}
}

// advance moves the shared clock forward n cycles with bookkeeping.
func (m *Machine) advance(n uint64) {
	if n == 0 {
		return
	}
	m.accountCycle(n)
	if m.mode == ModeNative {
		m.cyclesNative.Add(int64(n))
	} else {
		m.cyclesSim.Add(int64(n))
	}
	m.Cycle += n
	m.Dom.Tick(m.Cycle)
	if m.collector != nil {
		m.collector.Tick(m.Cycle)
	}
}

// allIdle reports whether every VCPU is halted.
func (m *Machine) allIdle() bool {
	for _, ctx := range m.Dom.VCPUs {
		if ctx.Running {
			return false
		}
	}
	if m.mode == ModeSim {
		for _, c := range m.oooCores {
			if !c.Idle() {
				return false
			}
		}
	}
	return true
}

// skipIdle fast-forwards the clock to the next timer/DMA deadline when
// the whole domain is halted. Returns false on true deadlock.
func (m *Machine) skipIdle() bool {
	ddl := m.Dom.NextTimerDeadline()
	if ddl == 0 {
		return false
	}
	if ddl <= m.Cycle {
		ddl = m.Cycle + 1
	}
	m.advance(ddl - m.Cycle)
	return true
}

// stepNative advances native mode by one scheduling quantum (one basic
// block per VCPU), advancing virtual time by NativeCPI per instruction.
func (m *Machine) stepNative() error {
	before := int64(0)
	for _, c := range m.seqCores {
		before += c.Insns()
	}
	ran := false
	for _, c := range m.seqCores {
		kind, err := c.Step()
		if err != nil {
			return err
		}
		if kind == seqcore.StepRan {
			ran = true
		}
	}
	after := int64(0)
	for _, c := range m.seqCores {
		after += c.Insns()
	}
	if ran {
		n := uint64(float64(after-before) * m.cfg.NativeCPI)
		if n == 0 {
			n = 1
		}
		m.advance(n)
		return nil
	}
	if !m.skipIdle() {
		return fmt.Errorf("core: domain deadlocked at cycle %d (all VCPUs halted, no timers)", m.Cycle)
	}
	return nil
}

// stepSim advances the cycle accurate model by one cycle (all cores in
// round-robin order, as §2.2 describes).
func (m *Machine) stepSim() error {
	if m.allIdle() {
		if !m.skipIdle() {
			return fmt.Errorf("core: domain deadlocked at cycle %d", m.Cycle)
		}
		return nil
	}
	for _, c := range m.oooCores {
		if err := c.Cycle(m.Cycle); err != nil {
			return err
		}
	}
	m.advance(1)
	return nil
}

// Step advances the machine by one unit in the current mode.
func (m *Machine) Step() error {
	if m.mode == ModeNative {
		return m.stepNative()
	}
	return m.stepSim()
}

// RunUntilInsns advances the machine until exactly target instructions
// have committed in total (or the domain shuts down). In native mode
// the functional core single-steps near the boundary; in simulation
// mode the commit stage is gated, so both engines pause at a precise
// instruction boundary — the property native↔sim switching and the
// divergence search rely on.
func (m *Machine) RunUntilInsns(target int64, maxCycles uint64) error {
	if m.mode == ModeSim {
		for _, c := range m.oooCores {
			c.SetCommitLimit(target)
		}
		defer func() {
			for _, c := range m.oooCores {
				c.SetCommitLimit(0)
			}
		}()
	} else {
		for _, c := range m.seqCores {
			c.MaxInsnsPerStep = 1
		}
		defer func() {
			for _, c := range m.seqCores {
				c.MaxInsnsPerStep = 0
			}
		}()
	}
	start := m.Cycle
	for m.Insns() < target && !m.Dom.ShutdownReq {
		if maxCycles > 0 && m.Cycle-start >= maxCycles {
			return fmt.Errorf("core: RunUntilInsns(%d): cycle budget exhausted at %d insns", target, m.Insns())
		}
		if err := m.Step(); err != nil {
			return err
		}
		m.processCommands()
	}
	return nil
}

// RunUntilRIP runs in native mode, single stepping, until VCPU 0
// reaches the trigger RIP (the paper's RIP trigger points, §2.3).
func (m *Machine) RunUntilRIP(rip uint64, maxInsns int64) error {
	if m.mode != ModeNative {
		return fmt.Errorf("core: RIP triggers require native mode")
	}
	m.seqCores[0].MaxInsnsPerStep = 1
	defer func() { m.seqCores[0].MaxInsnsPerStep = 0 }()
	start := m.Insns()
	for m.Dom.VCPUs[0].RIP != rip && !m.Dom.ShutdownReq {
		if maxInsns > 0 && m.Insns()-start >= maxInsns {
			return fmt.Errorf("core: trigger rip %#x not reached within %d insns", rip, maxInsns)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes until the domain shuts down or maxCycles elapses
// (0 = unlimited), honoring ptlcall command lists submitted from
// inside the guest.
func (m *Machine) Run(maxCycles uint64) error {
	for !m.Dom.ShutdownReq {
		if maxCycles > 0 && m.Cycle >= maxCycles {
			return fmt.Errorf("core: cycle budget %d exhausted (cycle %d)", maxCycles, m.Cycle)
		}
		if err := m.Step(); err != nil {
			return err
		}
		m.processCommands()
		if m.stopInsns >= 0 && m.Insns()-m.baseInsns >= m.stopInsns {
			m.stopInsns = -1
			m.nextPhase()
		}
	}
	if m.collector != nil {
		m.collector.Tick(m.Cycle)
	}
	return nil
}

// Series returns the collected time-lapse statistics series.
func (m *Machine) Series() stats.Series {
	if m.collector == nil {
		return stats.Series{}
	}
	return m.collector.Finish(m.Cycle)
}

// processCommands drains ptlcall command lists into phases.
func (m *Machine) processCommands() {
	for _, cmd := range m.Dom.TakeCommands() {
		m.phases = append(m.phases, parseCommandList(cmd)...)
		// Not currently in a bounded phase: act on the new command now.
		if m.stopInsns < 0 {
			m.nextPhase()
		}
	}
}

// nextPhase applies the next queued phase.
func (m *Machine) nextPhase() {
	if len(m.phases) == 0 {
		return
	}
	ph := m.phases[0]
	m.phases = m.phases[1:]
	if ph.kill {
		m.Dom.ShutdownReq = true
		return
	}
	m.SwitchMode(ph.mode)
	if ph.stopInsns > 0 {
		m.stopInsns = ph.stopInsns
		m.baseInsns = m.Insns()
	} else {
		m.stopInsns = -1
	}
}

// parseCommandList parses a PTLsim command list like
// "-run -stopinsns 10m : -native" into phases (paper §4.1).
func parseCommandList(s string) []phase {
	var out []phase
	for _, part := range strings.Split(s, ":") {
		fields := strings.Fields(part)
		if len(fields) == 0 {
			continue
		}
		ph := phase{mode: ModeSim, stopInsns: -1}
		for i := 0; i < len(fields); i++ {
			switch fields[i] {
			case "-run", "-switch":
				ph.mode = ModeSim
			case "-native":
				ph.mode = ModeNative
			case "-kill":
				ph.kill = true
			case "-stopinsns":
				if i+1 < len(fields) {
					i++
					ph.stopInsns = parseCount(fields[i])
				}
			}
		}
		out = append(out, ph)
	}
	return out
}

// parseCount parses "10m", "1k", "2g" style counts.
func parseCount(s string) int64 {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1_000, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mult, s = 1_000_000, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mult, s = 1_000_000_000, strings.TrimSuffix(s, "g")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return -1
	}
	return n * mult
}
