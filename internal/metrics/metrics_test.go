package metrics

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Inc()
	r.Counter("a.b").Add(4)
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-2)
	r.GaugeFunc("f", func() float64 { return 2.6 })

	ints := r.Ints()
	if ints["a.b"] != 5 {
		t.Fatalf("counter = %d, want 5", ints["a.b"])
	}
	if ints["g"] != 5 {
		t.Fatalf("gauge = %d, want 5", ints["g"])
	}
	if ints["f"] != 3 { // callback gauges round to nearest
		t.Fatalf("func gauge = %d, want 3", ints["f"])
	}
}

// TestSameMetricAcrossGets is the no-drift property the daemon relies
// on: the same name always resolves to the same underlying metric.
func TestSameMetricAcrossGets(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same counter name returned distinct counters")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("same gauge name returned distinct gauges")
	}
	if r.Histogram("h", []float64{1}) != r.Histogram("h", []float64{2, 3}) {
		t.Fatal("same histogram name returned distinct histograms")
	}
}

func TestConcurrentCounting(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", got)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"jobd.jobs.submitted": "jobd_jobs_submitted",
		"a-b/c d":             "a_b_c_d",
		"9lives":              "_9lives",
		"ok_name:x":           "ok_name:x",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobd.jobs.submitted").Add(3)
	r.Gauge("jobd.queue.depth").Set(2)
	r.GaugeFunc("jobd.retry_after_ms", func() float64 { return 1500 })
	h := r.Histogram("cell.latency_ms", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jobd_jobs_submitted counter\njobd_jobs_submitted 3\n",
		"# TYPE jobd_queue_depth gauge\njobd_queue_depth 2\n",
		"jobd_retry_after_ms 1500\n",
		"cell_latency_ms_bucket{le=\"10\"} 1\n",
		"cell_latency_ms_bucket{le=\"100\"} 2\n",
		"cell_latency_ms_bucket{le=\"+Inf\"} 3\n",
		"cell_latency_ms_sum 555\n",
		"cell_latency_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 20})
	h.Observe(10) // on the boundary: belongs in le="10"
	h.Observe(11)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "h_bucket{le=\"10\"} 1\n") {
		t.Fatalf("boundary sample not in its bucket:\n%s", out)
	}
	if !strings.Contains(out, "h_bucket{le=\"20\"} 2\n") {
		t.Fatalf("cumulative bucket wrong:\n%s", out)
	}
}

func TestHandlerAndParseText(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobd.jobs.done").Add(9)
	r.Gauge("jobd.queue.depth").Set(4)
	r.Histogram("lat", []float64{1}).Observe(0.5)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	vals, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if vals["jobd_jobs_done"] != 9 || vals["jobd_queue_depth"] != 4 {
		t.Fatalf("parsed %v", vals)
	}
	if _, ok := vals["lat_bucket"]; ok {
		t.Fatal("labeled bucket series leaked into ParseText output")
	}
	if vals["lat_sum"] != 0.5 || vals["lat_count"] != 1 {
		t.Fatalf("histogram scalars: %v", vals)
	}
}
