// Package metrics is a dependency-free service-metrics registry:
// atomic counters, gauges, callback gauges and fixed-bucket histograms
// with Prometheus text exposition. It exists alongside internal/stats
// deliberately — the stats tree is the simulator's single-goroutine
// PTLstats hierarchy and stays lock-free in the hot loop, while this
// package is thread-safe and serves the daemons (ptlserve, ptlsweep),
// where many goroutines count concurrently and scrapers read live.
//
// Metric names are dotted ("jobd.jobs.submitted") to match the stats
// tree and the historical /statz JSON keys; dots become underscores
// only at Prometheus exposition time, so both views come from one
// registry and can never drift.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

func (c *Counter) Inc()         { c.v.Add(1) }
func (c *Counter) Add(n int64)  { c.v.Add(n) }
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []uint64  // len(bounds)+1
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot returns copies under the lock.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.count
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use; Counter/Gauge/
// Histogram return the existing metric when the name is registered.
type Registry struct {
	mu     sync.RWMutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]func() float64
	hists  map[string]*Histogram
}

func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		funcs:  map[string]func() float64{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.ctrs[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.ctrs[name]; c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge evaluated at exposition time —
// for values the owner already maintains (queue depth, open breakers).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Histogram returns (registering on first use) the named histogram
// with the given ascending upper bounds. Bounds are fixed at first
// registration; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Ints snapshots every counter, gauge and callback gauge as int64
// under its dotted name — the /statz JSON view. Callback gauges are
// rounded to the nearest integer.
func (r *Registry) Ints() map[string]int64 {
	r.mu.RLock()
	out := make(map[string]int64, len(r.ctrs)+len(r.gauges)+len(r.funcs))
	for name, c := range r.ctrs {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	fns := make(map[string]func() float64, len(r.funcs))
	for name, fn := range r.funcs {
		fns[name] = fn
	}
	r.mu.RUnlock()
	// Callbacks run outside the registry lock: they may take the
	// owner's own locks (the job daemon's, the dispatcher's).
	for name, fn := range fns {
		out[name] = int64(math.Round(fn()))
	}
	return out
}

// SanitizeName maps a dotted metric name to the Prometheus grammar:
// every character outside [a-zA-Z0-9_:] becomes '_'.
func SanitizeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the text exposition format (version 0.0.4):
// every metric sorted by name, with # TYPE lines, histogram buckets as
// cumulative counts with le labels plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	type fnGauge struct {
		name string
		fn   func() float64
	}
	ctrNames := make([]string, 0, len(r.ctrs))
	for n := range r.ctrs {
		ctrNames = append(ctrNames, n)
	}
	gaugeNames := make([]string, 0, len(r.gauges)+len(r.funcs))
	for n := range r.gauges {
		gaugeNames = append(gaugeNames, n)
	}
	var fns []fnGauge
	for n, fn := range r.funcs {
		gaugeNames = append(gaugeNames, n)
		fns = append(fns, fnGauge{n, fn})
	}
	histNames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	ctrs, gauges, hists := r.ctrs, r.gauges, r.hists
	r.mu.RUnlock()

	fnVals := map[string]float64{}
	for _, f := range fns {
		fnVals[f.name] = f.fn()
	}
	sort.Strings(ctrNames)
	sort.Strings(gaugeNames)
	sort.Strings(histNames)

	bw := bufio.NewWriter(w)
	for _, n := range ctrNames {
		pn := SanitizeName(n)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, ctrs[n].Value())
	}
	for _, n := range gaugeNames {
		pn := SanitizeName(n)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		if v, ok := fnVals[n]; ok {
			fmt.Fprintf(bw, "%s %s\n", pn, formatFloat(v))
		} else {
			fmt.Fprintf(bw, "%s %d\n", pn, gauges[n].Value())
		}
	}
	for _, n := range histNames {
		h := hists[n]
		counts, sum, count := h.snapshot()
		pn := SanitizeName(n)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, formatFloat(b), cum)
		}
		cum += counts[len(h.bounds)]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, formatFloat(sum))
		fmt.Fprintf(bw, "%s_count %d\n", pn, count)
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ParseText parses Prometheus text exposition into name → value,
// skipping comments and labeled series (histogram buckets) — the
// client side for ptlmon's remote metrics summary. Names come back
// exactly as exposed (underscored).
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, val := line[:sp], line[sp+1:]
		if strings.ContainsAny(name, "{}") {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, sc.Err()
}
