package conformance

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ptlsim/internal/conformance/corpus"
	"ptlsim/internal/core"
	"ptlsim/internal/faultinject"
	"ptlsim/internal/simerr"
	"ptlsim/internal/supervisor"
)

// seedPool loads the shared seed corpus as raw byte programs for the
// byte-level mutator.
func seedPool(t *testing.T) [][]byte {
	t.Helper()
	dir, err := corpus.SeedDir()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := corpus.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("empty seed corpus")
	}
	pool := make([][]byte, 0, len(cases))
	for i := range cases {
		code, err := cases[i].Code()
		if err != nil {
			t.Fatalf("seed case %s: %v", cases[i].Name, err)
		}
		pool = append(pool, code)
	}
	return pool
}

// emptyCaseInsns measures the committed-instruction count of a case
// with no units (kernel boot + prologue + epilogue), so fault triggers
// can be placed inside the generated body.
func emptyCaseInsns(t *testing.T) int64 {
	t.Helper()
	cfg := Config{}.withDefaults()
	code, err := BuildProgram(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := cfg.runEngine(code, core.ModeNative, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.class != classExit {
		t.Fatalf("empty case did not exit cleanly: %s", o.class)
	}
	return o.insns
}

// TestGeneratorDeterminism: the same seed must regenerate the same
// units and the same program bytes — corpus cases replay forever.
func TestGeneratorDeterminism(t *testing.T) {
	u1, err := GenDSL(77, 12)
	if err != nil {
		t.Fatal(err)
	}
	u2, _ := GenDSL(77, 12)
	if len(u1) != len(u2) {
		t.Fatalf("unit counts differ: %d vs %d", len(u1), len(u2))
	}
	for i := range u1 {
		if !bytes.Equal(u1[i], u2[i]) {
			t.Fatalf("unit %d differs", i)
		}
	}
	p1, err := BuildProgram(u1, 77)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := BuildProgram(u2, 77)
	if !bytes.Equal(p1, p2) {
		t.Fatal("program bytes differ across rebuilds")
	}

	pool := seedPool(t)
	b1 := MutateBytes(99, pool, 16)
	b2 := MutateBytes(99, pool, 16)
	if len(b1) != len(b2) {
		t.Fatalf("mutator unit counts differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if !bytes.Equal(b1[i], b2[i]) {
			t.Fatalf("mutated unit %d differs", i)
		}
	}
}

// TestSplitUnitsRoundTrip: splitting re-concatenates to the original
// bytes, including an undecodable tail.
func TestSplitUnitsRoundTrip(t *testing.T) {
	code := []byte{0x90, 0x48, 0x01, 0xd8, 0x0f} // nop; add rax,rbx; truncated 0f
	units := SplitUnits(code)
	var cat []byte
	for _, u := range units {
		cat = append(cat, u...)
	}
	if !bytes.Equal(cat, code) {
		t.Fatalf("units do not reassemble: %x vs %x", cat, code)
	}
	if len(units) != 3 {
		t.Fatalf("want 3 units (nop, add, opaque tail), got %d: %x", len(units), units)
	}
}

// TestSeededRegflipEndToEnd is the whole loop on a seeded fault:
// a persistent register flip injected into the simulated engine is
// found by the campaign, delta-minimized to a handful of units,
// promoted into a corpus directory, and the promoted case replays —
// reproducing under the fault and running clean without it.
func TestSeededRegflipEndToEnd(t *testing.T) {
	base := emptyCaseInsns(t)
	// Fire inside the generated body and keep re-firing long enough
	// that an oracle compare boundary lands inside the window.
	spec, err := faultinject.ParseSpec(
		"regflip@" + strconv.FormatInt(base+20, 10) +
			":reg=r13,bit=62,until=" + strconv.FormatInt(base+2000, 10))
	if err != nil {
		t.Fatal(err)
	}
	attach := func(m *core.Machine) { faultinject.New(spec).Attach(m) }

	promoteDir := t.TempDir()
	var journalBuf bytes.Buffer
	j := supervisor.NewJournal(&journalBuf)
	res, err := RunCampaign(context.Background(), CampaignConfig{
		Run:          Config{Instrument: attach},
		Seqs:         30,
		Seed:         4242,
		MaxUnits:     20,
		ShrinkProbes: 150,
		MaxFindings:  1,
		Journal:      j,
		PromoteDir:   promoteDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("seeded regflip produced no finding in 30 sequences")
	}
	cf := res.Findings[0]
	if cf.Finding.Kind != string(simerr.KindDivergence) {
		t.Fatalf("finding kind %s, want divergence (diag: %s)", cf.Finding.Kind, cf.Finding.Diag)
	}
	if got := len(cf.Case.Insns); got > 8 {
		t.Fatalf("minimized case has %d units, want <= 8 (shrink %d -> %d in %d probes)",
			got, cf.Shrink.From, cf.Shrink.To, cf.Shrink.Probes)
	}
	if cf.Shrink.Probes == 0 {
		t.Fatal("shrinker issued no probes")
	}

	// Promotion landed on disk and the journal narrates the pipeline.
	if len(res.Promoted) != 1 {
		t.Fatalf("promoted %d cases, want 1", len(res.Promoted))
	}
	if _, err := os.Stat(res.Promoted[0]); err != nil {
		t.Fatal(err)
	}
	jtxt := journalBuf.String()
	for _, ev := range []string{supervisor.EventFuzzStart, supervisor.EventFuzzFinding,
		supervisor.EventFuzzShrink, supervisor.EventFuzzPromote, supervisor.EventFuzzDone} {
		if !strings.Contains(jtxt, ev) {
			t.Fatalf("journal missing %s event:\n%s", ev, jtxt)
		}
	}

	// The promoted case replays: the fault reproduces the finding, and
	// without the fault the case runs clean (the engines are correct).
	loaded, err := corpus.Load(promoteDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d promoted cases, want 1", len(loaded))
	}
	f, err := Config{Instrument: attach}.Replay(loaded[0])
	if err != nil {
		t.Fatal(err)
	}
	if f == nil || f.Kind != string(simerr.KindDivergence) {
		t.Fatalf("promoted case does not reproduce under the fault: %v", f)
	}
	clean, err := Config{}.Replay(loaded[0])
	if err != nil {
		t.Fatal(err)
	}
	if clean != nil {
		t.Fatalf("promoted case fails without the fault: %s", clean)
	}
}

// TestRobCorruptInvariantCaught drives the pipeline invariant auditor
// through the conformance runner: ROB corruption injected into the
// simulated engine must surface as an invariant finding, survive
// shrinking, and stay attributed to the auditor (not misfiled as a
// divergence or crash).
func TestRobCorruptInvariantCaught(t *testing.T) {
	base := emptyCaseInsns(t)
	spec, err := faultinject.ParseSpec(
		"robcorrupt@" + strconv.FormatInt(base+15, 10) +
			":until=" + strconv.FormatInt(base+2000, 10))
	if err != nil {
		t.Fatal(err)
	}
	attach := func(m *core.Machine) { faultinject.New(spec).Attach(m) }
	cfg := Config{Instrument: attach}

	units, err := GenDSL(5150, 14)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cfg.RunCase(units, 5150)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("ROB corruption went unnoticed")
	}
	if f.Kind != string(simerr.KindInvariant) && f.Kind != string(simerr.KindPanic) {
		t.Fatalf("finding kind %s, want invariant (or panic), diag: %s", f.Kind, f.Diag)
	}

	minU, st, err := cfg.Shrink(units, 5150, f.Kind, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.To > st.From {
		t.Fatalf("shrink grew the case: %d -> %d", st.From, st.To)
	}
	fm, err := cfg.RunCase(minU, 5150)
	if err != nil {
		t.Fatal(err)
	}
	if fm == nil || fm.Kind != f.Kind {
		t.Fatalf("minimized case lost the finding: %v", fm)
	}
}

// TestCleanSoak: generated sequences (both generators, plus a scrambled
// predictor pass) must agree between the engines. FUZZ_SEQS scales the
// soak (CI uses a larger count; the default keeps go test quick).
func TestCleanSoak(t *testing.T) {
	seqs := 300
	if s := os.Getenv("FUZZ_SEQS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("FUZZ_SEQS: %v", err)
		}
		seqs = v
	}
	if testing.Short() {
		seqs = min(seqs, 60)
	}
	res, err := RunCampaign(context.Background(), CampaignConfig{
		Run:      Config{TimingSeeds: []int64{0x7ead}},
		Seqs:     seqs,
		Seed:     20260807,
		SeedPool: seedPool(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		f := res.Findings[0]
		t.Fatalf("%d findings in a %d-sequence soak; first: seed=%#x kind=%s diag=%s units=%v",
			len(res.Findings), res.Seqs, f.Case.Seed, f.Finding.Kind, f.Finding.Diag, f.Case.Insns)
	}
	if res.Seqs != seqs {
		t.Fatalf("campaign ran %d/%d sequences", res.Seqs, seqs)
	}
	t.Logf("%d sequences clean, %.1f seqs/sec", res.Seqs, res.SeqsPerSec)
}

// TestRegressionReplay replays every promoted case in
// testdata/conformance/regressions: each must run clean (the bugs they
// captured are fixed; a reappearance fails here first).
func TestRegressionReplay(t *testing.T) {
	dir, err := corpus.RegressionsDir()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := corpus.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Skip("no promoted regressions yet")
	}
	for _, cs := range cases {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			f, err := Config{TimingSeeds: []int64{0x7ead}}.Replay(cs)
			if err != nil {
				t.Fatal(err)
			}
			if f != nil {
				t.Fatalf("regression reappeared (%s): %s\noriginal: %s", f.Kind, f.Diag, cs.Diag)
			}
		})
	}
}

// TestTimingSeedInvariance: a nontrivial case must produce the same
// architectural trajectory under wildly different predictor warm-ups.
func TestTimingSeedInvariance(t *testing.T) {
	units, err := GenDSL(31337, 16)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Config{TimingSeeds: []int64{1, -9, 0x123456789}}.RunCase(units, 31337)
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("architectural trajectory varies with timing seed %d: %s: %s",
			f.TimingSeed, f.Kind, f.Diag)
	}
}

// TestCorpusRoundTrip: promoted cases survive Write/Load bit-exactly.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	units, err := GenDSL(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := corpus.Case{Name: "round-trip", Source: "dsl", Seed: 8,
		Kind: "divergence", Diag: "demo", DivergedAt: 123}
	c.SetUnits(units)
	path, err := corpus.Write(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "round-trip.json" {
		t.Fatalf("unexpected path %s", path)
	}
	loaded, err := corpus.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d cases", len(loaded))
	}
	got, err := loaded[0].Units()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(units) {
		t.Fatalf("unit count %d, want %d", len(got), len(units))
	}
	for i := range got {
		if !bytes.Equal(got[i], units[i]) {
			t.Fatalf("unit %d differs after round trip", i)
		}
	}
	if loaded[0].DivergedAt != 123 || loaded[0].Kind != "divergence" {
		t.Fatalf("metadata lost: %+v", loaded[0])
	}
}

// TestInterlockOrderRegression pins the first bug this fuzzer found:
// two locked RMW instructions to the same cache line (xchg + lock dec)
// deadlocked the OoO core when the younger acquired the line interlock
// first. Kept inline in addition to the corpus case so the scenario is
// readable next to the fuzzer that found it.
func TestInterlockOrderRegression(t *testing.T) {
	xchg := []byte{0x48, 0x87, 0x5f, 0x0d}          // xchg [rdi+0xd], rbx
	lockDec := []byte{0xf0, 0x48, 0xff, 0x4f, 0x03} // lock dec qword [rdi+0x3]
	f, err := Config{}.RunCase([][]byte{xchg, lockDec}, 0x5aa74a9382b93308)
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("same-line locked RMW pair diverges again: %s: %s", f.Kind, f.Diag)
	}
}
