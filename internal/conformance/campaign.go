// Campaign orchestration: generate sequences, run each through the
// dual-engine harness, and for every finding shrink → localize →
// promote into the regression corpus, journaling each step so ptlmon
// renders a fuzz run the same way it renders a supervised simulation.
package conformance

import (
	"context"
	"fmt"
	"time"

	"ptlsim/internal/conformance/corpus"
	"ptlsim/internal/simerr"
	"ptlsim/internal/supervisor"
)

// CampaignConfig parameterizes one fuzz campaign.
type CampaignConfig struct {
	// Run is the per-case harness configuration.
	Run Config
	// Seqs is how many sequences to generate and check.
	Seqs int
	// Seed derives every per-case seed; the same campaign seed
	// regenerates the same sequence stream.
	Seed int64
	// MaxUnits bounds the units per generated sequence (default 16).
	MaxUnits int
	// BytesShare is the percentage of sequences drawn from the
	// byte-level mutator instead of the DSL templates (default 34;
	// ignored when SeedPool is empty).
	BytesShare int
	// SeedPool holds raw programs for the byte-level mutator —
	// typically the decoded bytes of the shared seed corpus.
	SeedPool [][]byte
	// ShrinkProbes bounds harness re-runs per finding during
	// delta-minimization (default 200).
	ShrinkProbes int
	// MaxFindings stops the campaign early once this many findings
	// were processed (default 10) — a systematically broken engine
	// should not grind through a full soak one finding at a time.
	MaxFindings int
	// Journal receives fuzz lifecycle events (nil discards).
	Journal *supervisor.Journal
	// PromoteDir, when non-empty, receives minimized reproducers as
	// corpus cases.
	PromoteDir string
}

func (cc CampaignConfig) withDefaults() CampaignConfig {
	if cc.MaxUnits <= 0 {
		cc.MaxUnits = 16
	}
	if cc.BytesShare <= 0 {
		cc.BytesShare = 34
	}
	if cc.ShrinkProbes <= 0 {
		cc.ShrinkProbes = 200
	}
	if cc.MaxFindings <= 0 {
		cc.MaxFindings = 10
	}
	return cc
}

// CampaignFinding is one fully processed finding: the minimized
// reproducer (as a corpus case) plus the finding it produces.
type CampaignFinding struct {
	Case    corpus.Case
	Finding Finding
	Shrink  ShrinkStats
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Seqs        int     // sequences actually executed
	Interrupted bool    // context cancelled before Seqs completed
	ElapsedSec  float64 // wall-clock campaign duration
	SeqsPerSec  float64 // generation+dual-execution throughput
	ShrinkMs    int64   // wall-clock spent minimizing findings
	Findings    []CampaignFinding
	Promoted    []string // corpus paths written
}

// RunCampaign executes a fuzz campaign. Infrastructure errors (the
// harness itself failing) abort the campaign; findings do not — they
// are shrunk, localized, optionally promoted, and the campaign moves
// on until Seqs or MaxFindings is reached.
func RunCampaign(ctx context.Context, cc CampaignConfig) (*CampaignResult, error) {
	cc = cc.withDefaults()
	j := cc.Journal
	j.Append(supervisor.Entry{Event: supervisor.EventFuzzStart,
		Message: fmt.Sprintf("seqs=%d seed=%#x max-units=%d timing-seeds=%d",
			cc.Seqs, cc.Seed, cc.MaxUnits, len(cc.Run.TimingSeeds))})
	r := newRNG(cc.Seed)
	res := &CampaignResult{}
	start := time.Now()
	for i := 0; i < cc.Seqs; i++ {
		select {
		case <-ctx.Done():
			res.Interrupted = true
			i = cc.Seqs
			continue
		default:
		}
		caseSeed := int64(r.next() >> 1)
		var units [][]byte
		var source string
		var err error
		if len(cc.SeedPool) > 0 && r.chance(cc.BytesShare) {
			units = MutateBytes(caseSeed, cc.SeedPool, cc.MaxUnits)
			source = "bytes"
		} else {
			units, err = GenDSL(caseSeed, 1+r.n(cc.MaxUnits))
			source = "dsl"
			if err != nil {
				return res, fmt.Errorf("conformance: generate (seed %#x): %w", caseSeed, err)
			}
		}
		res.Seqs++
		f, err := cc.Run.RunCase(units, caseSeed)
		if err != nil {
			return res, err
		}
		if f == nil {
			continue
		}
		cf, err := cc.process(units, caseSeed, source, f, res)
		if err != nil {
			return res, err
		}
		res.Findings = append(res.Findings, *cf)
		if len(res.Findings) >= cc.MaxFindings {
			break
		}
	}
	res.ElapsedSec = time.Since(start).Seconds()
	if res.ElapsedSec > 0 {
		res.SeqsPerSec = float64(res.Seqs) / res.ElapsedSec
	}
	j.Append(supervisor.Entry{Event: supervisor.EventFuzzDone,
		Insns: int64(res.Seqs),
		Message: fmt.Sprintf("%d seqs, %d findings, %d promoted, %.1f seqs/sec",
			res.Seqs, len(res.Findings), len(res.Promoted), res.SeqsPerSec)})
	return res, nil
}

// process shrinks, localizes, and promotes one finding.
func (cc CampaignConfig) process(units [][]byte, caseSeed int64, source string,
	f *Finding, res *CampaignResult) (*CampaignFinding, error) {
	j := cc.Journal
	j.Append(supervisor.Entry{Event: supervisor.EventFuzzFinding,
		Kind: f.Kind, Commit: f.Commit, Insns: f.NativeInsns,
		Message: clip(f.Diag, 300)})

	t0 := time.Now()
	minU, st, err := cc.Run.Shrink(units, caseSeed, f.Kind, cc.ShrinkProbes)
	if err != nil {
		return nil, err
	}
	// The minimized case's own finding carries the final diagnosis.
	fm, err := cc.Run.RunCase(minU, caseSeed)
	if err != nil || fm == nil || fm.Kind != f.Kind {
		// Flaky reduction (should not happen with deterministic seeds):
		// fall back to the original.
		minU, fm = units, f
	}
	if fm.Kind == string(simerr.KindDivergence) {
		if n, diag, lerr := cc.Run.Localize(minU, caseSeed, fm.TimingSeed); lerr == nil && n >= 0 {
			fm.DivergedAt = n
			if diag != "" {
				fm.Diag = diag
			}
		}
	}
	shrinkMs := time.Since(t0).Milliseconds()
	res.ShrinkMs += shrinkMs
	j.Append(supervisor.Entry{Event: supervisor.EventFuzzShrink,
		Kind: fm.Kind, DivergedAt: fm.DivergedAt, ElapsedMs: shrinkMs,
		Message: fmt.Sprintf("%d -> %d units in %d probes", st.From, st.To, st.Probes)})

	cs := corpus.Case{
		Name:       fmt.Sprintf("%s-%016x", source, uint64(caseSeed)),
		Source:     source,
		Seed:       caseSeed,
		Kind:       fm.Kind,
		Diag:       clip(fm.Diag, 500),
		DivergedAt: max(fm.DivergedAt, 0),
	}
	cs.SetUnits(minU)
	if cc.PromoteDir != "" {
		path, err := corpus.Write(cc.PromoteDir, cs)
		if err != nil {
			return nil, fmt.Errorf("conformance: promote %s: %w", cs.Name, err)
		}
		res.Promoted = append(res.Promoted, path)
		j.Append(supervisor.Entry{Event: supervisor.EventFuzzPromote,
			Kind: fm.Kind, Slot: path, Message: cs.Name})
	}
	return &CampaignFinding{Case: cs, Finding: *fm, Shrink: st}, nil
}

// clip bounds a diagnosis string for journal lines and corpus files.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
