// Sequence generators for the conformance fuzzer. A generated case is
// a list of *units*: self-contained instruction groups that can be
// removed independently during delta-minimization without breaking the
// rest of the program (labels never cross a unit boundary). Two
// generators feed the campaign:
//
//   - the DSL generator assembles units from templates chosen to stress
//     the spots where the two engines historically disagree — flag
//     chains, REP string ops, branchy control flow, page-crossing
//     loads/stores, locked RMW, call/ret pairs, and self-modifying
//     code;
//   - the byte-level generator mutates raw machine code drawn from the
//     shared decode seed corpus and re-splits it at decoded instruction
//     boundaries, reaching encodings no template would emit (including
//     deliberately undecodable tails, which must fault identically in
//     both engines).
package conformance

import (
	"ptlsim/internal/kern"
	"ptlsim/internal/x86"
)

// rng is splitmix64: deterministic across Go releases (unlike
// math/rand's default source semantics), so a corpus case's seed
// reproduces the same program forever.
type rng struct{ x uint64 }

func newRNG(seed int64) *rng { return &rng{x: uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (r *rng) next() uint64 {
	r.x += 0x9E3779B97F4A7C15
	z := r.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// n returns a value in [0, bound).
func (r *rng) n(bound int) int {
	if bound <= 0 {
		return 0
	}
	return int(r.next() % uint64(bound))
}

// chance reports true pct% of the time.
func (r *rng) chance(pct int) bool { return r.n(100) < pct }

// Register pools. RSP stays untouched (the kernel-provided user stack
// must survive call/ret units); RSI and RDI are reserved as scratch
// data pointers — the prologue points them into the data area and only
// the REP template rewrites them (to fresh in-bounds addresses), so
// memory templates can address off them without escaping the mapping.
var destRegs = []x86.Reg{
	x86.RAX, x86.RBX, x86.RCX, x86.RDX, x86.RBP,
	x86.R8, x86.R9, x86.R10, x86.R11, x86.R12, x86.R13, x86.R14, x86.R15,
}

var srcRegs = append([]x86.Reg{x86.RSI, x86.RDI}, destRegs...)

var fuzzConds = []x86.Cond{
	x86.CondO, x86.CondNO, x86.CondB, x86.CondAE, x86.CondE, x86.CondNE,
	x86.CondBE, x86.CondA, x86.CondS, x86.CondNS,
}

func (r *rng) dest() x86.Reg  { return destRegs[r.n(len(destRegs))] }
func (r *rng) src() x86.Reg   { return srcRegs[r.n(len(srcRegs))] }
func (r *rng) cond() x86.Cond { return fuzzConds[r.n(len(fuzzConds))] }

// aluSrc is a random ALU source operand: a register or an imm32.
func (r *rng) aluSrc() x86.Operand {
	if r.chance(40) {
		return x86.I(int64(int32(r.next())))
	}
	return x86.R(r.src())
}

// scratchOff picks a byte offset into the data area landing just
// before a page boundary (pages 1..5 of the 8-page scratch mapping),
// so fixed-size accesses and short REP runs straddle the page.
func (r *rng) scratchOff() int64 {
	page := int64(1 + r.n(5))
	return page*4096 - int64(r.n(32)) - 8
}

// dslTemplates are the unit emitters, weighted equally. Each must be
// self-contained: any labels are bound inside the unit, and any
// implicit-register instruction (DIV, REP) sets up its own inputs.
var dslTemplates = []struct {
	name string
	emit func(a *x86.Assembler, r *rng)
}{
	{"alu", emitALU},
	{"shift", emitShift},
	{"muldiv", emitMulDiv},
	{"flags", emitFlagsChain},
	{"load", emitLoad},
	{"store", emitStore},
	{"rep", emitRepString},
	{"branch", emitBranch},
	{"loop", emitBoundedLoop},
	{"callret", emitCallRet},
	{"lock", emitLockRMW},
	{"smc", emitSMC},
}

// GenDSL produces nUnits template-generated units from seed.
func GenDSL(seed int64, nUnits int) ([][]byte, error) {
	r := newRNG(seed)
	units := make([][]byte, 0, nUnits)
	for i := 0; i < nUnits; i++ {
		a := x86.NewAssembler(0)
		dslTemplates[r.n(len(dslTemplates))].emit(a, r)
		b, err := a.Bytes()
		if err != nil {
			return nil, err
		}
		units = append(units, b)
	}
	return units, nil
}

func emitALU(a *x86.Assembler, r *rng) {
	d := x86.R(r.dest())
	s := r.aluSrc()
	switch r.n(12) {
	case 0:
		a.Add(d, s)
	case 1:
		a.Sub(d, s)
	case 2:
		a.And(d, s)
	case 3:
		a.Or(d, s)
	case 4:
		a.Xor(d, s)
	case 5:
		a.Adc(d, s)
	case 6:
		a.Sbb(d, s)
	case 7:
		a.Addl(d, s) // 32-bit forms zero-extend: different writeback path
	case 8:
		a.Xorl(d, s)
	case 9:
		a.Neg(d)
	case 10:
		a.Not(d)
	case 11:
		if r.chance(50) {
			a.Inc(d)
		} else {
			a.Dec(d)
		}
	}
}

func emitShift(a *x86.Assembler, r *rng) {
	d := x86.R(r.dest())
	count := x86.I(int64(r.n(64)))
	switch r.n(4) {
	case 0:
		a.Shl(d, count)
	case 1:
		a.Shr(d, count)
	case 2:
		a.Sar(d, count)
	case 3:
		a.Rol(d, count)
	}
}

func emitMulDiv(a *x86.Assembler, r *rng) {
	switch r.n(4) {
	case 0:
		a.Imul(r.dest(), x86.R(r.src()))
	case 1:
		a.Imul3(r.dest(), x86.R(r.src()), int64(int32(r.next())))
	case 2:
		// Unsigned divide with RDX cleared: quotient always fits, so
		// no #DE regardless of what RAX holds.
		dv := r.dest()
		a.Mov(x86.R(dv), x86.I(int64(2+r.n(1000))))
		a.Xor(x86.R(x86.RDX), x86.R(x86.RDX))
		a.Div(x86.R(dv))
	case 3:
		// Signed divide: CQO sign-extends RAX and the divisor is a
		// positive immediate, so the INT64_MIN/-1 overflow can't fire.
		dv := r.dest()
		if dv == x86.RDX {
			dv = x86.RBX
		}
		a.Mov(x86.R(dv), x86.I(int64(3+r.n(1000))))
		a.Cqo()
		a.Idiv(x86.R(dv))
	}
}

func emitFlagsChain(a *x86.Assembler, r *rng) {
	a.Cmp(x86.R(r.src()), r.aluSrc())
	c := r.cond()
	switch r.n(3) {
	case 0:
		a.Setcc(c, x86.R(r.dest()))
	case 1:
		a.Cmovcc(c, r.dest(), x86.R(r.src()))
	case 2:
		// Consume CF/ZF arithmetically instead.
		a.Adc(x86.R(r.dest()), x86.I(int64(r.n(256))))
	}
}

func emitLoad(a *x86.Assembler, r *rng) {
	base := x86.RSI
	if r.chance(50) {
		base = x86.RDI
	}
	m := x86.M(base, int32(r.n(48)-16))
	d := r.dest()
	switch r.n(5) {
	case 0:
		a.Mov(x86.R(d), m)
	case 1:
		a.Movl(x86.R(d), m)
	case 2:
		a.Movzx(d, m, 1)
	case 3:
		a.Movzx(d, m, 2)
	case 4:
		a.Movsx(d, m, 1)
	}
}

func emitStore(a *x86.Assembler, r *rng) {
	base := x86.RSI
	if r.chance(50) {
		base = x86.RDI
	}
	m := x86.M(base, int32(r.n(48)-16))
	switch r.n(5) {
	case 0:
		a.Mov(m, x86.R(r.src()))
	case 1:
		a.Movl(m, x86.R(r.src()))
	case 2:
		a.Movb(m, x86.R(r.src()))
	case 3:
		a.Movl(m, x86.I(int64(int32(r.next()))))
	case 4:
		// Load-op-store read/modify/write through memory.
		a.Add(m, x86.R(r.src()))
	}
}

func emitRepString(a *x86.Assembler, r *rng) {
	// Re-point RSI/RDI at fresh near-page-boundary addresses so the
	// copy straddles a page and drift from earlier REP units never
	// escapes the scratch mapping.
	a.Mov(x86.R(x86.RSI), x86.I(int64(kern.UserDataVA)+r.scratchOff()))
	a.Mov(x86.R(x86.RDI), x86.I(int64(kern.UserDataVA)+r.scratchOff()))
	a.Mov(x86.R(x86.RCX), x86.I(int64(1+r.n(48))))
	size := uint8(1)
	if r.chance(40) {
		size = 8
	}
	if r.chance(50) {
		a.RepMovs(size)
	} else {
		a.RepStos(size)
	}
}

func emitBranch(a *x86.Assembler, r *rng) {
	a.Cmp(x86.R(r.src()), r.aluSrc())
	skip := a.NewLabel()
	a.Jcc(r.cond(), skip)
	for i, n := 0, 1+r.n(3); i < n; i++ {
		emitALU(a, r)
	}
	a.Bind(skip)
}

func emitBoundedLoop(a *x86.Assembler, r *rng) {
	ctr := r.dest()
	acc := r.dest()
	if acc == ctr {
		acc = destRegs[(r.n(len(destRegs))+1)%len(destRegs)]
		if acc == ctr {
			acc = x86.RBX
		}
	}
	a.Mov(x86.R(ctr), x86.I(int64(1+r.n(6))))
	top := a.Mark()
	a.Imul3(acc, x86.R(acc), 3)
	a.Add(x86.R(acc), x86.I(int64(r.n(97)+1)))
	a.Dec(x86.R(ctr))
	a.Jcc(x86.CondNE, top)
}

func emitCallRet(a *x86.Assembler, r *rng) {
	fn := a.NewLabel()
	done := a.NewLabel()
	a.Call(fn)
	a.Jmp(done)
	a.Bind(fn)
	emitALU(a, r)
	a.Ret()
	a.Bind(done)
}

func emitLockRMW(a *x86.Assembler, r *rng) {
	m := x86.M(x86.RDI, int32(r.n(32)))
	switch r.n(5) {
	case 0:
		a.LockAdd(m, x86.R(r.src()))
	case 1:
		a.LockInc(m)
	case 2:
		a.LockDec(m)
	case 3:
		a.LockXadd(m, x86.R(r.dest()))
	case 4:
		a.Xchg(m, x86.R(r.dest()))
	}
}

// emitSMC patches an upcoming two-byte NOP pad into INC EAX (FF C0)
// through the writable text mapping, then executes it: both engines
// must observe the freshly written bytes, which on the OoO side forces
// a basic-block-cache invalidation and pipeline refetch.
func emitSMC(a *x86.Assembler, r *rng) {
	site := a.NewLabel()
	a.LeaLabel(x86.R11, site)
	a.Movw(x86.M(x86.R11, 0), x86.I(0xC0FF))
	a.Bind(site)
	a.Nop()
	a.Nop()
}

// SplitUnits re-derives unit boundaries from raw machine code by
// decoding sequentially. An undecodable tail is kept as one opaque
// unit — executing it must fault identically in both engines, which is
// itself worth checking.
func SplitUnits(code []byte) [][]byte {
	var units [][]byte
	for len(code) > 0 {
		inst, err := x86.Decode(code)
		n := int(inst.Len)
		if err != nil || n <= 0 || n > len(code) {
			units = append(units, append([]byte(nil), code...))
			break
		}
		units = append(units, append([]byte(nil), code[:n]...))
		code = code[n:]
	}
	return units
}

// MutateBytes derives a byte-level case from a pool of raw seed
// programs: pick one, apply a few byte/bit mutations, and re-split at
// decoded boundaries. The result reaches encodings (prefixes, odd
// ModRM forms, truncated instructions) the DSL never emits.
func MutateBytes(seed int64, pool [][]byte, maxUnits int) [][]byte {
	r := newRNG(seed)
	if len(pool) == 0 {
		return nil
	}
	src := pool[r.n(len(pool))]
	code := append([]byte(nil), src...)
	for i, n := 0, 1+r.n(4); i < n && len(code) > 0; i++ {
		switch r.n(4) {
		case 0: // flip one bit
			code[r.n(len(code))] ^= 1 << r.n(8)
		case 1: // overwrite one byte
			code[r.n(len(code))] = byte(r.next())
		case 2: // duplicate a short run
			if len(code) >= 2 {
				at := r.n(len(code) - 1)
				ln := 1 + r.n(min(8, len(code)-at))
				dup := append([]byte(nil), code[at:at+ln]...)
				code = append(code[:at], append(dup, code[at:]...)...)
			}
		case 3: // drop a short run
			if len(code) >= 2 {
				at := r.n(len(code) - 1)
				ln := 1 + r.n(min(4, len(code)-at-1))
				code = append(code[:at], code[at+ln:]...)
			}
		}
	}
	units := SplitUnits(code)
	if len(units) > maxUnits {
		units = units[:maxUnits]
	}
	return units
}
