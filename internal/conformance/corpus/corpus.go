// Package corpus is the on-disk format of the shared conformance
// corpus under testdata/conformance/. Decode fuzzing (internal/decode)
// and execution fuzzing (internal/conformance) read the same seed set,
// and minimized reproducers from fuzz campaigns are promoted into the
// regressions directory, where go test replays them forever after.
//
// The package deliberately depends on the standard library only: it is
// imported both by internal test packages (package decode) and by the
// fuzzing subsystem, so it must sit below everything in the import
// graph.
package corpus

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Case is one corpus entry: a byte sequence plus enough metadata to
// replay and attribute it. Instruction bytes are hex-encoded so cases
// diff readably in review.
type Case struct {
	// Name is the case's identity and its file stem (kebab-case).
	Name string `json:"name"`
	// Source records how the case came to be: "seed" (hand-written),
	// "dsl" (template generator), "bytes" (byte-level mutator).
	Source string `json:"source,omitempty"`
	// Seed is the generator PRNG seed that produced the case.
	Seed int64 `json:"seed,omitempty"`
	// RIP is the virtual address the bytes are decoded at (decode
	// fuzzing); execution fuzzing places cases at the fixed user text
	// base and ignores it.
	RIP uint64 `json:"rip,omitempty"`
	// Insns is the sequence as hex-encoded instruction units, the
	// granularity the delta-minimizer works at. Code() is their
	// concatenation when Raw is empty.
	Insns []string `json:"insns,omitempty"`
	// Raw is hex-encoded bytes with no unit structure (decode seeds,
	// byte-level inputs before splitting).
	Raw string `json:"raw,omitempty"`

	// Finding metadata, set when the case was promoted from a fuzz
	// campaign: the simerr kind observed ("divergence", "invariant",
	// "panic", ...), the human-readable diagnosis, and — for
	// divergences localized by the checkpointed search — the first
	// diverging committed-instruction index.
	Kind       string `json:"kind,omitempty"`
	Diag       string `json:"diag,omitempty"`
	DivergedAt int64  `json:"diverged_at,omitempty"`
	// Note is free-form context (what the case exercises, fix commit).
	Note string `json:"note,omitempty"`
}

// Code returns the case's byte sequence: Raw when set, otherwise the
// concatenated instruction units.
func (c *Case) Code() ([]byte, error) {
	if c.Raw != "" {
		b, err := hex.DecodeString(c.Raw)
		if err != nil {
			return nil, fmt.Errorf("corpus: case %s: raw: %w", c.Name, err)
		}
		return b, nil
	}
	var out []byte
	for i, u := range c.Insns {
		b, err := hex.DecodeString(u)
		if err != nil {
			return nil, fmt.Errorf("corpus: case %s: insn %d: %w", c.Name, i, err)
		}
		out = append(out, b...)
	}
	return out, nil
}

// Units returns the decoded instruction units.
func (c *Case) Units() ([][]byte, error) {
	units := make([][]byte, len(c.Insns))
	for i, u := range c.Insns {
		b, err := hex.DecodeString(u)
		if err != nil {
			return nil, fmt.Errorf("corpus: case %s: insn %d: %w", c.Name, i, err)
		}
		units[i] = b
	}
	return units, nil
}

// SetUnits stores units as the case's hex-encoded instruction list.
func (c *Case) SetUnits(units [][]byte) {
	c.Insns = make([]string, len(units))
	for i, u := range units {
		c.Insns[i] = hex.EncodeToString(u)
	}
	c.Raw = ""
}

// Root locates <repo>/testdata/conformance by walking up from the
// current directory to the module root (the directory holding go.mod).
// Tests run with their package directory as cwd, so this works from
// any package depth.
func Root() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "testdata", "conformance"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("corpus: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// SeedDir returns the shared seed corpus directory.
func SeedDir() (string, error) {
	root, err := Root()
	if err != nil {
		return "", err
	}
	return filepath.Join(root, "seed"), nil
}

// RegressionsDir returns the promoted-reproducer directory.
func RegressionsDir() (string, error) {
	root, err := Root()
	if err != nil {
		return "", err
	}
	return filepath.Join(root, "regressions"), nil
}

// Load reads every *.json case in dir, sorted by file name so replay
// order is stable. A missing directory is an empty corpus, not an
// error (regressions/ starts empty on a fresh checkout of a branch
// that predates any finding).
func Load(dir string) ([]Case, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	cases := make([]Case, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var c Case
		if err := json.Unmarshal(data, &c); err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		if c.Name == "" {
			c.Name = strings.TrimSuffix(name, ".json")
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// Write stores c as dir/<name>.json atomically (temp file + rename),
// creating dir if needed, and returns the final path. Promotion must
// never leave a torn case behind for go test to choke on.
func Write(dir string, c Case) (string, error) {
	if c.Name == "" {
		return "", fmt.Errorf("corpus: case without a name")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, c.Name+".json")
	tmp, err := os.CreateTemp(dir, ".case-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}
