// The dual-engine harness: place a generated sequence in a minimal
// timerless guest, run it natively (sequential interpreter) and
// simulated (out-of-order core under the lockstep commit oracle and
// the pipeline invariant auditor), and compare everything observable —
// failure class, committed-instruction count, console bytes, and, when
// both engines stop at an instruction-count boundary, the full
// architectural register file. Any disagreement is a Finding.
package conformance

import (
	"fmt"

	"ptlsim/internal/conformance/corpus"
	"ptlsim/internal/core"
	"ptlsim/internal/cosim"
	"ptlsim/internal/hv"
	"ptlsim/internal/kern"
	"ptlsim/internal/selfcheck"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
	"ptlsim/internal/x86"
)

// scratchPages is the writable data mapping every fuzz guest gets; the
// generators keep their addressing inside it (see rng.scratchOff).
const scratchPages = 8

// Config parameterizes case execution.
type Config struct {
	// Sim is the simulated-engine configuration. A zero value gets
	// core.DefaultConfig(); self-checking (oracle + auditor) and a
	// commit-progress watchdog are armed unless already configured —
	// the oracle is the primary mid-run divergence detector.
	Sim core.Config
	// MaxInsns is the per-engine committed-instruction budget
	// (default 4000). Sequences that run away (byte-level mutants with
	// backward jumps) are stopped at this boundary in both engines and
	// compared there, which keeps them useful instead of discarding
	// them.
	MaxInsns int64
	// TimingSeeds runs extra simulated passes with the branch
	// predictor state scrambled per seed; the architectural trajectory
	// must be invariant.
	TimingSeeds []int64
	// Instrument is attached to simulated machines before the run
	// (tests inject faults here to prove the pipeline finds them).
	Instrument func(*core.Machine)
}

func (c Config) withDefaults() Config {
	if c.Sim.NativeCPI == 0 && c.Sim.ThreadsPerCore == 0 {
		c.Sim = core.DefaultConfig()
	}
	if !c.Sim.SelfCheck.Enabled() {
		c.Sim.SelfCheck = selfcheck.Config{Oracle: true, Interval: 32, Audit: true, AuditEvery: 256}
	}
	if c.Sim.WatchdogCycles == 0 {
		// A simulated sequence that stops committing (bad speculation
		// loop, stalled queue) should fail fast as a livelock finding
		// instead of grinding to the cycle budget.
		c.Sim.WatchdogCycles = 20000
	}
	if c.MaxInsns <= 0 {
		c.MaxInsns = 4000
	}
	return c
}

// Finding is one observed disagreement between the engines (or a
// self-check failure inside the simulated engine).
type Finding struct {
	// Kind is the simerr kind when the simulated engine failed
	// structurally ("divergence", "invariant", "panic", ...), or
	// "mismatch" when both engines completed but disagreed on
	// outcome, console output, or final architectural state.
	Kind string
	// Diag is the human-readable diagnosis.
	Diag string
	// Commit is the committed-instruction index at detection when the
	// failure carried one (oracle and auditor failures do).
	Commit int64
	// TimingSeed is the predictor scramble under which the finding
	// appeared (0 = the baseline pass).
	TimingSeed int64
	// NativeInsns is the reference engine's committed-instruction
	// count for the case — the localization search bound.
	NativeInsns int64
	// DivergedAt is the first diverging instruction found by the
	// checkpointed search (-1 = not localized).
	DivergedAt int64
}

func (f *Finding) String() string {
	return fmt.Sprintf("%s: %s", f.Kind, f.Diag)
}

// KindMismatch labels findings where both engines ran to completion
// but disagreed (as opposed to a structured simerr kind).
const KindMismatch = "mismatch"

// BuildProgram assembles the guest user program for a case: a prologue
// seeding every general register (and the flags) from the case seed —
// RSI/RDI point into the scratch data area near page boundaries, RCX
// stays small so stray REP prefixes in byte-level units terminate —
// then the unit bytes, then an exit epilogue. The same (units, seed)
// pair reproduces the same program forever.
func BuildProgram(units [][]byte, seed int64) ([]byte, error) {
	r := newRNG(seed ^ 0x5EED)
	a := x86.NewAssembler(kern.UserTextVA)
	for _, reg := range destRegs {
		v := r.next()
		if reg == x86.RCX {
			v &= 31
		}
		a.Mov(x86.R(reg), x86.I(int64(v)))
	}
	a.Mov(x86.R(x86.RSI), x86.I(int64(kern.UserDataVA)+r.scratchOff()))
	a.Mov(x86.R(x86.RDI), x86.I(int64(kern.UserDataVA)+r.scratchOff()))
	a.Cmp(x86.R(x86.RBX), x86.I(int64(int32(r.next()))))
	for _, u := range units {
		a.Raw(u...)
	}
	a.Xor(x86.R(x86.RAX), x86.R(x86.RAX)) // SysExit
	a.Syscall()
	return a.Bytes()
}

// DomainBuilder wraps a program into the minimal fuzz guest: one
// process, scratch data pages, no timer — timer interrupts would
// deliver at different instruction boundaries in the two engines and
// legitimately fork the trajectories.
func DomainBuilder(code []byte) cosim.DomainBuilder {
	return func() (*hv.Domain, error) {
		img, err := kern.Build(kern.BuildSpec{
			Procs: []kern.ProcSpec{{Name: "fuzz", Code: code, DataPages: scratchPages}},
			Tree:  stats.NewTree(),
		})
		if err != nil {
			return nil, err
		}
		return img.Domain, nil
	}
}

// outcome is everything observable about one engine's run of a case.
type outcome struct {
	class   string // "exit", "boundary", or a simerr kind
	insns   int64
	console string
	ctx     *vm.Context // final VCPU state, set for boundary stops
	simErr  *simerr.SimError
}

const (
	classExit     = "exit"     // guest shut down on its own
	classBoundary = "boundary" // stopped at the instruction budget
)

// runEngine executes code under one engine and classifies the result.
// Only non-simerr errors (infrastructure problems) are returned as
// errors; structured failures become outcome classes.
func (c Config) runEngine(code []byte, mode core.Mode, timingSeed int64) (outcome, error) {
	dom, err := DomainBuilder(code)()
	if err != nil {
		return outcome{}, err
	}
	mcfg := c.Sim
	var budget uint64
	if mode == core.ModeNative {
		// The reference interpreter needs no self-checking and runs at
		// NativeCPI, so its budget is tight.
		mcfg.SelfCheck = selfcheck.Config{}
		mcfg.TimingSeed = 0
		mcfg.WatchdogCycles = 0
		budget = uint64(c.MaxInsns)*4 + 100_000
	} else {
		mcfg.TimingSeed = timingSeed
		budget = uint64(c.MaxInsns)*256 + 1_000_000
	}
	m := core.NewMachine(dom, stats.NewTree(), mcfg)
	m.SwitchMode(mode)
	if mode == core.ModeSim && c.Instrument != nil {
		c.Instrument(m)
	}
	rerr := m.RunUntilInsns(c.MaxInsns, budget)
	o := outcome{insns: m.Insns(), console: m.Dom.Console()}
	switch {
	case rerr == nil && m.Dom.ShutdownReq:
		o.class = classExit
	case rerr == nil:
		o.class = classBoundary
		o.ctx = m.Dom.VCPUs[0]
	default:
		se, ok := simerr.As(rerr)
		if !ok {
			return outcome{}, rerr
		}
		o.class = string(se.Kind)
		o.simErr = se
	}
	return o, nil
}

// selfCheckKinds are simulated-engine failures that are findings in
// themselves, regardless of what the reference engine did.
func selfCheckFinding(k simerr.Kind) bool {
	return k == simerr.KindDivergence || k == simerr.KindInvariant || k == simerr.KindPanic
}

// compare turns a (reference, simulated) outcome pair into a Finding,
// or nil when the engines agree.
func compare(nat, sim outcome, timingSeed int64) *Finding {
	mk := func(kind, diag string) *Finding {
		f := &Finding{Kind: kind, Diag: diag, TimingSeed: timingSeed,
			NativeInsns: nat.insns, DivergedAt: -1}
		if sim.simErr != nil {
			f.Commit = sim.simErr.Commit
		}
		return f
	}
	if sim.simErr != nil && selfCheckFinding(sim.simErr.Kind) {
		return mk(string(sim.simErr.Kind), sim.simErr.Detail())
	}
	if nat.class != sim.class {
		return mk(KindMismatch, fmt.Sprintf(
			"outcome class differs: native %s at %d insns, sim %s at %d insns",
			nat.class, nat.insns, sim.class, sim.insns))
	}
	switch nat.class {
	case classExit, string(simerr.KindDeadlock):
		if nat.insns != sim.insns {
			return mk(KindMismatch, fmt.Sprintf(
				"%s at different instruction counts: native %d, sim %d",
				nat.class, nat.insns, sim.insns))
		}
		if nat.console != sim.console {
			return mk(KindMismatch, fmt.Sprintf(
				"console output differs: native %d bytes, sim %d bytes",
				len(nat.console), len(sim.console)))
		}
	case classBoundary:
		if nat.console != sim.console {
			return mk(KindMismatch, fmt.Sprintf(
				"console output differs at insn boundary %d: native %d bytes, sim %d bytes",
				nat.insns, len(nat.console), len(sim.console)))
		}
		if nat.ctx != nil && sim.ctx != nil && !vm.ArchEqual(nat.ctx, sim.ctx) {
			return mk(KindMismatch, fmt.Sprintf(
				"architectural state differs at insn boundary %d: %s",
				nat.insns, vm.DiffArch(nat.ctx, sim.ctx)))
		}
	default:
		// Same structured failure in both engines (e.g. both hit the
		// cycle budget): cycle budgets are engine-relative, so counts
		// are not comparable — agreement on the class is the check.
	}
	return nil
}

// RunCase executes one case through both engines (plus one simulated
// pass per timing seed) and returns the first Finding, or nil when
// every pass agrees with the reference.
func (c Config) RunCase(units [][]byte, seed int64) (*Finding, error) {
	cfg := c.withDefaults()
	code, err := BuildProgram(units, seed)
	if err != nil {
		return nil, fmt.Errorf("conformance: assemble: %w", err)
	}
	nat, err := cfg.runEngine(code, core.ModeNative, 0)
	if err != nil {
		return nil, fmt.Errorf("conformance: reference run: %w", err)
	}
	seeds := append([]int64{0}, cfg.TimingSeeds...)
	for _, ts := range seeds {
		sim, err := cfg.runEngine(code, core.ModeSim, ts)
		if err != nil {
			return nil, fmt.Errorf("conformance: sim run (timing seed %d): %w", ts, err)
		}
		if f := compare(nat, sim, ts); f != nil {
			return f, nil
		}
	}
	return nil, nil
}

// Replay re-executes a promoted corpus case and returns its finding
// (nil once the underlying bug is fixed — the regression test asserts
// exactly that).
func (c Config) Replay(cs corpus.Case) (*Finding, error) {
	units, err := cs.Units()
	if err != nil {
		return nil, err
	}
	if len(units) == 0 {
		code, err := cs.Code()
		if err != nil {
			return nil, err
		}
		units = SplitUnits(code)
	}
	return c.RunCase(units, cs.Seed)
}
