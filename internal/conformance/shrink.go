// Delta-minimization and localization of findings. Shrink is ddmin
// over the case's unit list: units are self-contained by construction,
// so any subset still assembles, and the minimizer just re-runs the
// harness asking "does the same failure kind still appear?". Divergence
// findings are then localized to the first diverging committed
// instruction with the checkpoint-accelerated cosimulation search.
package conformance

import (
	"ptlsim/internal/core"
	"ptlsim/internal/cosim"
	"ptlsim/internal/selfcheck"
)

// ShrinkStats reports what the minimizer did.
type ShrinkStats struct {
	From, To int // unit counts before/after
	Probes   int // harness re-runs spent
}

// Shrink reduces units to a 1-minimal (modulo probe budget) subset
// that still produces a finding of kind want under the case seed.
// Removing units can only shorten the program, so an injected fault
// that triggers at a fixed instruction count naturally pins the units
// it needs to stay reachable.
func (c Config) Shrink(units [][]byte, seed int64, want string, maxProbes int) ([][]byte, ShrinkStats, error) {
	st := ShrinkStats{From: len(units)}
	if maxProbes <= 0 {
		maxProbes = 200
	}
	reproduces := func(sub [][]byte) bool {
		f, err := c.RunCase(sub, seed)
		return err == nil && f != nil && f.Kind == want
	}
	cur := units
	n := 2
	for len(cur) >= 1 && n <= len(cur) && st.Probes < maxProbes {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur) && st.Probes < maxProbes; start += chunk {
			end := min(start+chunk, len(cur))
			sub := make([][]byte, 0, len(cur)-(end-start))
			sub = append(sub, cur[:start]...)
			sub = append(sub, cur[end:]...)
			st.Probes++
			if reproduces(sub) {
				cur = sub
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(n*2, len(cur))
		}
	}
	st.To = len(cur)
	return cur, st, nil
}

// Localize runs the checkpointed first-divergence search over the
// (typically already shrunk) case and returns the first diverging
// committed-instruction index with its diagnosis, or -1 when the
// search sees a clean run (e.g. the finding reproduces only under a
// sampling cadence the search does not use).
func (c Config) Localize(units [][]byte, seed int64, timingSeed int64) (int64, string, error) {
	cfg := c.withDefaults()
	code, err := BuildProgram(units, seed)
	if err != nil {
		return -1, "", err
	}
	// Bound the search by the reference engine's run length.
	nat, err := cfg.runEngine(code, core.ModeNative, 0)
	if err != nil {
		return -1, "", err
	}
	maxN := nat.insns + 50
	interval := maxN/8 + 1
	simCfg := cfg.Sim
	// The search replays and compares engines itself; the oracle would
	// abort the scan runs before the bisection could attribute.
	simCfg.SelfCheck = selfcheck.Config{}
	simCfg.TimingSeed = timingSeed
	n, diag, _, err := cosim.FirstDivergenceCheckpointed(
		DomainBuilder(code), simCfg, maxN, interval, cfg.Instrument)
	if err != nil {
		return -1, "", err
	}
	return n, diag, nil
}
