// Package bbcache implements the basic block cache: decoded uop
// sequences keyed by far more than the RIP, as full system simulation
// requires — the virtual address, the machine frame the code starts on
// (and ends on, for page-crossing blocks), and privilege context. It
// tracks which machine pages contain cached code so self-modifying code
// (SMC) can invalidate precisely the affected translations, and the
// core can flush in-flight instructions from overwritten pages.
//
// The cache is a simulator speed optimization only: it never changes
// architecturally visible behavior (the paper's §2.1).
package bbcache

import (
	"ptlsim/internal/decode"
	"ptlsim/internal/stats"
)

// Key identifies a cached translation. Two contexts with the same RIP
// but different page mappings or privilege must not share decoded code.
type Key struct {
	RIP    uint64
	MFN    uint64 // machine frame of the first code byte
	MFN2   uint64 // machine frame of the last byte (0 if same/absent)
	Kernel bool   // CPL 0 vs CPL 3 context
}

// Cache is the basic block cache.
type Cache struct {
	blocks map[Key]*decode.BasicBlock
	byPage map[uint64]map[Key]struct{} // MFN -> keys with code on it

	capacity int

	hits, misses, invalidations, smcFlushes *stats.Counter
}

// New builds a basic block cache holding up to capacity blocks
// (evicting everything when full, like PTLsim's periodic flush).
func New(capacity int, tree *stats.Tree, prefix string) *Cache {
	return &Cache{
		blocks:        make(map[Key]*decode.BasicBlock),
		byPage:        make(map[uint64]map[Key]struct{}),
		capacity:      capacity,
		hits:          tree.Counter(prefix + ".hits"),
		misses:        tree.Counter(prefix + ".misses"),
		invalidations: tree.Counter(prefix + ".invalidations"),
		smcFlushes:    tree.Counter(prefix + ".smc_flushes"),
	}
}

// Lookup returns the cached block for key, if present.
func (c *Cache) Lookup(key Key) (*decode.BasicBlock, bool) {
	bb, ok := c.blocks[key]
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return bb, ok
}

// Insert caches bb under key, registering its code pages for SMC
// tracking.
func (c *Cache) Insert(key Key, bb *decode.BasicBlock) {
	if len(c.blocks) >= c.capacity {
		// Full flush: simple and safe (decode cost is a simulator
		// overhead, not a modeled latency).
		c.blocks = make(map[Key]*decode.BasicBlock)
		c.byPage = make(map[uint64]map[Key]struct{})
	}
	c.blocks[key] = bb
	c.track(key.MFN, key)
	if key.MFN2 != 0 && key.MFN2 != key.MFN {
		c.track(key.MFN2, key)
	}
}

func (c *Cache) track(mfn uint64, key Key) {
	set := c.byPage[mfn]
	if set == nil {
		set = make(map[Key]struct{})
		c.byPage[mfn] = set
	}
	set[key] = struct{}{}
}

// IsCodePage reports whether any cached block has code bytes on mfn —
// the SMC store-side check every committed store performs.
func (c *Cache) IsCodePage(mfn uint64) bool {
	_, ok := c.byPage[mfn]
	return ok
}

// InvalidatePage drops every cached block with code on mfn (a store
// hit a code page). Returns the number of blocks invalidated.
func (c *Cache) InvalidatePage(mfn uint64) int {
	set, ok := c.byPage[mfn]
	if !ok {
		return 0
	}
	c.smcFlushes.Inc()
	n := 0
	for key := range set {
		if _, present := c.blocks[key]; present {
			delete(c.blocks, key)
			n++
			c.invalidations.Inc()
		}
		// Remove from the other page's tracking set too.
		other := key.MFN
		if other == mfn {
			other = key.MFN2
		}
		if other != 0 && other != mfn {
			if oset := c.byPage[other]; oset != nil {
				delete(oset, key)
				if len(oset) == 0 {
					delete(c.byPage, other)
				}
			}
		}
	}
	delete(c.byPage, mfn)
	return n
}

// Flush empties the cache (mode switches that change decode context,
// e.g. paging reconfiguration).
func (c *Cache) Flush() {
	c.blocks = make(map[Key]*decode.BasicBlock)
	c.byPage = make(map[uint64]map[Key]struct{})
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return len(c.blocks) }
