package bbcache

import (
	"testing"

	"ptlsim/internal/decode"
	"ptlsim/internal/stats"
)

func mkbb(rip uint64) *decode.BasicBlock {
	return &decode.BasicBlock{RIP: rip}
}

func TestLookupInsert(t *testing.T) {
	tree := stats.NewTree()
	c := New(16, tree, "bb")
	k := Key{RIP: 0x1000, MFN: 5}
	if _, ok := c.Lookup(k); ok {
		t.Fatal("empty cache should miss")
	}
	c.Insert(k, mkbb(0x1000))
	bb, ok := c.Lookup(k)
	if !ok || bb.RIP != 0x1000 {
		t.Fatal("lookup after insert failed")
	}
	if tree.Lookup("bb.hits").Value() != 1 || tree.Lookup("bb.misses").Value() != 1 {
		t.Fatal("hit/miss stats wrong")
	}
}

func TestKeyContextSeparation(t *testing.T) {
	tree := stats.NewTree()
	c := New(16, tree, "bb")
	user := Key{RIP: 0x1000, MFN: 5, Kernel: false}
	kern := Key{RIP: 0x1000, MFN: 5, Kernel: true}
	otherPage := Key{RIP: 0x1000, MFN: 6}
	c.Insert(user, mkbb(0x1000))
	if _, ok := c.Lookup(kern); ok {
		t.Fatal("kernel context must not hit user translation")
	}
	if _, ok := c.Lookup(otherPage); ok {
		t.Fatal("different MFN must not hit")
	}
}

func TestSMCInvalidation(t *testing.T) {
	tree := stats.NewTree()
	c := New(16, tree, "bb")
	c.Insert(Key{RIP: 0x1000, MFN: 5}, mkbb(0x1000))
	c.Insert(Key{RIP: 0x2000, MFN: 5}, mkbb(0x2000))
	c.Insert(Key{RIP: 0x3000, MFN: 7}, mkbb(0x3000))
	if !c.IsCodePage(5) || !c.IsCodePage(7) || c.IsCodePage(9) {
		t.Fatal("code page tracking wrong")
	}
	n := c.InvalidatePage(5)
	if n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if _, ok := c.Lookup(Key{RIP: 0x1000, MFN: 5}); ok {
		t.Fatal("block survived SMC invalidation")
	}
	if _, ok := c.Lookup(Key{RIP: 0x3000, MFN: 7}); !ok {
		t.Fatal("unrelated block was dropped")
	}
	if c.IsCodePage(5) {
		t.Fatal("page still tracked after invalidation")
	}
}

func TestPageCrossingBlockTracksBothPages(t *testing.T) {
	tree := stats.NewTree()
	c := New(16, tree, "bb")
	k := Key{RIP: 0x1FFA, MFN: 5, MFN2: 6}
	c.Insert(k, mkbb(0x1FFA))
	if !c.IsCodePage(5) || !c.IsCodePage(6) {
		t.Fatal("both pages must be tracked")
	}
	// Invalidating the second page kills the block.
	if n := c.InvalidatePage(6); n != 1 {
		t.Fatalf("invalidated %d", n)
	}
	if _, ok := c.Lookup(k); ok {
		t.Fatal("block survived invalidation of its second page")
	}
	if c.IsCodePage(5) {
		t.Fatal("stale tracking on first page")
	}
}

func TestCapacityFlush(t *testing.T) {
	tree := stats.NewTree()
	c := New(4, tree, "bb")
	for i := uint64(0); i < 5; i++ {
		c.Insert(Key{RIP: 0x1000 * i, MFN: i}, mkbb(0x1000*i))
	}
	if c.Len() > 4 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

func TestFlush(t *testing.T) {
	tree := stats.NewTree()
	c := New(16, tree, "bb")
	c.Insert(Key{RIP: 1, MFN: 1}, mkbb(1))
	c.Flush()
	if c.Len() != 0 || c.IsCodePage(1) {
		t.Fatal("flush incomplete")
	}
}
