package vm

import (
	"fmt"

	"ptlsim/internal/uops"
	"ptlsim/internal/x86"
)

// Hooks is the system layer the assist microcode calls out to: the
// hypervisor substrate implements it (hypercalls, event channels,
// virtual time), and the simulator harness implements ptlcall.
type Hooks interface {
	// Hypercall services the paravirt hypercall in ctx's registers
	// (RAX = op, args in RDI/RSI/RDX); the result goes to RAX.
	Hypercall(c *Context) uops.Fault
	// Ptlcall handles the PTLsim breakout opcode (simulator control:
	// switch core models, queue command lists).
	Ptlcall(c *Context)
	// ReadTSC returns the guest-visible timestamp counter (simulated
	// cycles plus the context's virtualization offset).
	ReadTSC(c *Context) uint64
	// Cpuid fills RAX..RDX for the CPUID leaf in RAX.
	Cpuid(c *Context)
}

// CoreHooks lets assists act on the executing core's microarchitectural
// state (TLBs). The sequential core's implementations are no-ops.
type CoreHooks interface {
	FlushTLB()
	FlushTLBPage(va uint64)
}

// NopCoreHooks is a CoreHooks for cores without TLBs.
type NopCoreHooks struct{}

// FlushTLB implements CoreHooks.
func (NopCoreHooks) FlushTLB() {}

// FlushTLBPage implements CoreHooks.
func (NopCoreHooks) FlushTLBPage(uint64) {}

// Bounce frame layout (qwords relative to RSP after delivery):
//
//	+0  vector      (trap entry only)
//	+8  error info  (trap entry only; faulting VA for #PF)
//	+16 saved RIP
//	+24 saved mode (0 kernel / 3 user)
//	+32 saved RFLAGS
//	+40 saved RSP
//
// The syscall path pushes only the upper four fields. IRETQ pops the
// four-field frame at RSP, so trap handlers discard the first two
// qwords before returning.
const (
	frameSize     = 32 // RIP, mode, RFLAGS, RSP
	trapFrameSize = 48
)

// pushFrame writes the 4-field return frame at base-32..base-8 and
// returns the new stack top. The caller captures the outgoing mode,
// flags and stack pointer *before* raising the privilege level, then
// calls this with c.Kernel already true (the hardware microcode pushes
// the frame at CPL 0, so supervisor-only kernel stacks work).
func (c *Context) pushFrame(base, retRIP, mode, flags, rsp uint64) (uint64, uops.Fault) {
	sp := base - frameSize
	vals := [4]uint64{retRIP, mode, flags, rsp}
	for i, v := range vals {
		if f := c.WriteVirt(sp+uint64(i)*8, v, 8); f != uops.FaultNone {
			return 0, f
		}
	}
	return sp, uops.FaultNone
}

// enterKernel switches to kernel mode at entry with events masked.
func (c *Context) enterKernel(entry, sp uint64) {
	c.Regs[uops.RegRSP] = sp
	c.SetFlags(c.Flags() &^ x86.FlagIF)
	c.Kernel = true
	c.RIP = entry
	c.Running = true
}

// trapBase picks the stack on which to deliver a trap: the registered
// kernel stack when coming from user mode, the current stack when
// already in the kernel (nested trap).
func (c *Context) trapBase() uint64 {
	if c.Kernel {
		return c.Regs[uops.RegRSP]
	}
	return c.KernelRSP
}

// DeliverException performs the microcoded exception entry: build the
// bounce frame on the kernel stack and redirect to the registered trap
// entry. retRIP is the faulting instruction's address (exceptions
// restart the instruction). A fault during delivery is a double fault,
// which the simulator treats as fatal.
func (c *Context) DeliverException(vector, errInfo, retRIP uint64) error {
	if c.TrapEntry == 0 {
		return fmt.Errorf("vm: vcpu%d exception %d at %#x with no trap entry", c.ID, vector, retRIP)
	}
	base := c.trapBase()
	mode, flags, rsp := c.Mode(), c.Flags(), c.Regs[uops.RegRSP]
	dbgf("deliver vec=%d err=%#x rip=%#x mode=%d rsp=%#x base=%#x kernelRSP=%#x", vector, errInfo, retRIP, mode, rsp, base, c.KernelRSP)
	c.Kernel = true // microcode pushes the frame at supervisor level
	sp, f := c.pushFrame(base, retRIP, mode, flags, rsp)
	if f != uops.FaultNone {
		return fmt.Errorf("vm: double fault delivering vector %d at %#x (err=%#x kernel=%v kernelRSP=%#x frame fault %v at cr2=%#x)",
			vector, retRIP, errInfo, c.Kernel, c.KernelRSP, f, c.CR2)
	}
	sp -= 16
	if f := c.WriteVirt(sp, vector, 8); f != uops.FaultNone {
		return fmt.Errorf("vm: double fault (vector push)")
	}
	if f := c.WriteVirt(sp+8, errInfo, 8); f != uops.FaultNone {
		return fmt.Errorf("vm: double fault (error push)")
	}
	c.enterKernel(c.TrapEntry, sp)
	return nil
}

// DeliverEvent injects the paravirtual event upcall (vector 32) before
// the instruction at c.RIP. The caller checks IF and pending state.
func (c *Context) DeliverEvent() error {
	return c.DeliverException(VecEvent, 0, c.RIP)
}

// FaultVector maps a uop fault to its exception vector and error info.
func FaultVector(c *Context, f uops.Fault) (vector, errInfo uint64) {
	switch f {
	case uops.FaultDivide:
		return VecDivide, 0
	case uops.FaultUD:
		return VecUD, 0
	case uops.FaultGP:
		return VecGP, 0
	case uops.FaultPageRead, uops.FaultPageWrite, uops.FaultPageExec:
		return VecPF, c.CR2
	default:
		return VecGP, 0
	}
}

// ExecAssist runs the microcode assist for u against ctx. The uop's
// RIP/X86Len locate the instruction; nextRIP is where execution
// continues if the assist completes. It returns a fault to be delivered
// (with RIP left at the faulting instruction) or FaultNone with ctx.RIP
// updated.
func ExecAssist(c *Context, u *uops.Uop, hooks System, core CoreHooks) uops.Fault {
	next := u.RIP + uint64(u.X86Len)
	switch u.Assist {
	case uops.AssistSyscall:
		if c.Kernel {
			// Kernel-mode syscall is this platform's hypercall alias;
			// keep strict and fault instead.
			return uops.FaultGP
		}
		if c.SyscallEntry == 0 {
			return uops.FaultGP
		}
		// x86 syscall semantics: RCX = return RIP, R11 = RFLAGS; the
		// Xen-style bounce frame additionally switches stacks.
		c.Regs[uops.RegRCX] = next
		c.Regs[uops.RegR11] = c.Flags()
		mode, flags, rsp := c.Mode(), c.Flags(), c.Regs[uops.RegRSP]
		c.Kernel = true
		sp, f := c.pushFrame(c.KernelRSP, next, mode, flags, rsp)
		if f != uops.FaultNone {
			c.Kernel = false // undo for precise fault semantics
			return f
		}
		c.enterKernel(c.SyscallEntry, sp)
		return uops.FaultNone

	case uops.AssistSysret:
		if !c.Kernel {
			return uops.FaultGP
		}
		// Fast return: RIP from RCX, RFLAGS from R11; the kernel has
		// already restored the user RSP.
		c.RIP = c.Regs[uops.RegRCX]
		c.SetFlags(c.Regs[uops.RegR11])
		c.Kernel = false
		return uops.FaultNone

	case uops.AssistIretq:
		if !c.Kernel {
			return uops.FaultGP
		}
		sp := c.Regs[uops.RegRSP]
		var vals [4]uint64
		for i := range vals {
			v, f := c.ReadVirt(sp+uint64(i)*8, 8)
			if f != uops.FaultNone {
				return f
			}
			vals[i] = v
		}
		c.RIP = vals[0]
		c.Kernel = vals[1] == 0
		c.SetFlags(vals[2])
		c.Regs[uops.RegRSP] = vals[3]
		return uops.FaultNone

	case uops.AssistHypercall:
		if !c.Kernel {
			return uops.FaultGP
		}
		if f := hooks.Hypercall(c); f != uops.FaultNone {
			return f
		}
		c.RIP = next
		return uops.FaultNone

	case uops.AssistPtlcall:
		hooks.Ptlcall(c)
		c.RIP = next
		return uops.FaultNone

	case uops.AssistRdtsc:
		tsc := hooks.ReadTSC(c)
		c.Regs[uops.RegRAX] = tsc & 0xFFFFFFFF
		c.Regs[uops.RegRDX] = tsc >> 32
		c.RIP = next
		return uops.FaultNone

	case uops.AssistCpuid:
		hooks.Cpuid(c)
		c.RIP = next
		return uops.FaultNone

	case uops.AssistHlt:
		if !c.Kernel {
			return uops.FaultGP
		}
		// With an event already pending, hlt completes immediately
		// (matching hardware hlt with a pending interrupt).
		if !hooks.EventPending(c) {
			c.Running = false
		}
		c.RIP = next
		return uops.FaultNone

	case uops.AssistMovToCR:
		if !c.Kernel {
			return uops.FaultGP
		}
		switch u.Imm {
		case 3:
			c.CR3 = c.Regs[u.Ra]
			c.FlushGen++
			core.FlushTLB()
		default:
			return uops.FaultGP
		}
		c.RIP = next
		return uops.FaultNone

	case uops.AssistMovFromCR:
		if !c.Kernel {
			return uops.FaultGP
		}
		switch u.Imm {
		case 2:
			c.Regs[u.Rd] = c.CR2
		case 3:
			c.Regs[u.Rd] = c.CR3
		default:
			return uops.FaultGP
		}
		c.RIP = next
		return uops.FaultNone

	case uops.AssistInvlpg:
		if !c.Kernel {
			return uops.FaultGP
		}
		core.FlushTLBPage(c.Regs[u.Ra])
		c.RIP = next
		return uops.FaultNone

	case uops.AssistUD:
		return uops.FaultUD
	}
	return uops.FaultUD
}
