package vm

// EventSource tells cores whether an event-channel upcall is pending
// for a VCPU; the hypervisor substrate implements it.
type EventSource interface {
	EventPending(c *Context) bool
}

// System bundles everything a core model needs from the system layer.
type System interface {
	Hooks
	EventSource
}
