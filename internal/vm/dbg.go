package vm

// debugHook, when set via SetDebugHook, traces exception/event
// deliveries. Used by tests to diagnose guest-visible control flow.
var debugHook func(format string, args ...interface{})

// SetDebugHook installs (or clears, with nil) the trace sink.
func SetDebugHook(f func(format string, args ...interface{})) { debugHook = f }

func dbgf(format string, args ...interface{}) {
	if debugHook != nil {
		debugHook(format, args...)
	}
}
