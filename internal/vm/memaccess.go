package vm

import (
	"ptlsim/internal/mem"
	"ptlsim/internal/uops"
)

// Translate walks the page tables for va under this context's CR3 and
// privilege. The A/D tracking bits are updated as the microcoded walker
// does on real hardware.
func (c *Context) Translate(va uint64, write, exec bool) (uint64, uops.Fault) {
	acc := mem.Access{Write: write, Exec: exec, User: !c.Kernel, SetAD: true}
	w := mem.Walk(c.M.PM, c.CR3, va, acc)
	if w.Fault != uops.FaultNone {
		c.CR2 = va
		return 0, w.Fault
	}
	return w.PhysAddr(va), uops.FaultNone
}

// splitAt returns how many bytes of an access at va fit on its page.
func splitAt(va uint64, size uint8) uint8 {
	left := mem.PageSize - va&mem.PageMask
	if uint64(size) <= left {
		return size
	}
	return uint8(left)
}

// ReadVirt reads size bytes (1/2/4/8) at guest virtual address va,
// handling page-crossing accesses with two translations, exactly as
// the unaligned-capable load unit does.
func (c *Context) ReadVirt(va uint64, size uint8) (uint64, uops.Fault) {
	first := splitAt(va, size)
	pa, fault := c.Translate(va, false, false)
	if fault != uops.FaultNone {
		return 0, fault
	}
	if first == size {
		v, err := c.M.PM.Read(pa, size)
		if err != nil {
			c.CR2 = va
			return 0, uops.FaultPageRead
		}
		return v, uops.FaultNone
	}
	lo, err := c.M.PM.Read(pa, first)
	if err != nil {
		return 0, uops.FaultPageRead
	}
	pa2, fault := c.Translate(va+uint64(first), false, false)
	if fault != uops.FaultNone {
		return 0, fault
	}
	hi, err := c.M.PM.Read(pa2, size-first)
	if err != nil {
		return 0, uops.FaultPageRead
	}
	return lo | hi<<(8*first), uops.FaultNone
}

// WriteVirt writes the low size bytes of v at guest virtual va.
func (c *Context) WriteVirt(va, v uint64, size uint8) uops.Fault {
	first := splitAt(va, size)
	pa, fault := c.Translate(va, true, false)
	if fault != uops.FaultNone {
		return fault
	}
	if first == size {
		if err := c.M.PM.Write(pa, v, size); err != nil {
			return uops.FaultPageWrite
		}
		return uops.FaultNone
	}
	if err := c.M.PM.Write(pa, v&uops.Mask(first), first); err != nil {
		return uops.FaultPageWrite
	}
	pa2, fault := c.Translate(va+uint64(first), true, false)
	if fault != uops.FaultNone {
		return fault
	}
	if err := c.M.PM.Write(pa2, v>>(8*first), size-first); err != nil {
		return uops.FaultPageWrite
	}
	return uops.FaultNone
}

// FetchCode reads up to len(buf) instruction bytes at va, stopping at
// an unmapped or non-executable page. It returns the contiguous byte
// count readable from va's page onward (at least enough for the basic
// block builder to decode page-crossing instructions when the next
// page is mapped).
func (c *Context) FetchCode(va uint64, buf []byte) (int, uops.Fault) {
	total := 0
	for total < len(buf) {
		pa, fault := c.Translate(va+uint64(total), false, true)
		if fault != uops.FaultNone {
			if total == 0 {
				return 0, fault
			}
			return total, uops.FaultNone
		}
		n := int(mem.PageSize - pa&mem.PageMask)
		if n > len(buf)-total {
			n = len(buf) - total
		}
		if err := c.M.PM.ReadBytes(pa, buf[total:total+n]); err != nil {
			if total == 0 {
				return 0, uops.FaultPageExec
			}
			return total, uops.FaultNone
		}
		total += n
	}
	return total, uops.FaultNone
}

// ReadVirtBytes copies a byte range from guest virtual memory (used by
// the hypervisor for console I/O and device DMA emulation).
func (c *Context) ReadVirtBytes(va uint64, buf []byte) uops.Fault {
	for i := 0; i < len(buf); {
		pa, fault := c.Translate(va+uint64(i), false, false)
		if fault != uops.FaultNone {
			return fault
		}
		n := int(mem.PageSize - pa&mem.PageMask)
		if n > len(buf)-i {
			n = len(buf) - i
		}
		if err := c.M.PM.ReadBytes(pa, buf[i:i+n]); err != nil {
			return uops.FaultPageRead
		}
		i += n
	}
	return uops.FaultNone
}

// WriteVirtBytes copies a byte range into guest virtual memory.
func (c *Context) WriteVirtBytes(va uint64, buf []byte) uops.Fault {
	for i := 0; i < len(buf); {
		pa, fault := c.Translate(va+uint64(i), true, false)
		if fault != uops.FaultNone {
			return fault
		}
		n := int(mem.PageSize - pa&mem.PageMask)
		if n > len(buf)-i {
			n = len(buf) - i
		}
		if err := c.M.PM.WriteBytes(pa, buf[i:i+n]); err != nil {
			return uops.FaultPageWrite
		}
		i += n
	}
	return uops.FaultNone
}
