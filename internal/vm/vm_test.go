package vm

import (
	"testing"

	"ptlsim/internal/mem"
	"ptlsim/internal/uops"
	"ptlsim/internal/x86"
)

type nullSys struct{ tsc uint64 }

func (s *nullSys) Hypercall(c *Context) uops.Fault { c.Regs[uops.RegRAX] = 7; return uops.FaultNone }
func (s *nullSys) Ptlcall(c *Context)              {}
func (s *nullSys) ReadTSC(c *Context) uint64       { return s.tsc }
func (s *nullSys) Cpuid(c *Context)                {}
func (s *nullSys) EventPending(c *Context) bool    { return false }

// env maps a user page at 0x1000 and a kernel-only stack page below
// 0x3000.
func env(t *testing.T) *Context {
	t.Helper()
	pm := mem.NewPhysMem()
	as := mem.NewAddressSpace(pm)
	if err := as.Map(0x1000, pm.AllocPage(), mem.PTEWritable|mem.PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x2000, pm.AllocPage(), mem.PTEWritable); err != nil {
		t.Fatal(err)
	}
	c := NewContext(&Machine{PM: pm}, 0)
	c.CR3 = as.CR3()
	c.TrapEntry = 0x111000
	c.SyscallEntry = 0x222000
	c.KernelRSP = 0x3000
	return c
}

func syscallUop() *uops.Uop {
	return &uops.Uop{Op: uops.OpAssist, Assist: uops.AssistSyscall, RIP: 0x1040, X86Len: 2}
}

func TestSyscallEntrySemantics(t *testing.T) {
	c := env(t)
	c.Kernel = false
	c.RIP = 0x1040
	c.Regs[uops.RegRSP] = 0x1800
	c.SetFlags(x86.FlagIF | x86.FlagZF)
	if f := ExecAssist(c, syscallUop(), &nullSys{}, NopCoreHooks{}); f != uops.FaultNone {
		t.Fatal(f)
	}
	if !c.Kernel || c.RIP != 0x222000 {
		t.Fatalf("entry state: kernel=%v rip=%#x", c.Kernel, c.RIP)
	}
	if c.IF() {
		t.Fatal("events must be masked on entry")
	}
	// x86 syscall register effects.
	if c.Regs[uops.RegRCX] != 0x1042 || c.Regs[uops.RegR11]&x86.FlagZF == 0 {
		t.Fatalf("rcx=%#x r11=%#x", c.Regs[uops.RegRCX], c.Regs[uops.RegR11])
	}
	// Frame on the kernel stack: [RIP][mode][RFLAGS][RSP].
	sp := c.Regs[uops.RegRSP]
	if sp != 0x3000-32 {
		t.Fatalf("sp=%#x", sp)
	}
	rip, _ := c.ReadVirt(sp, 8)
	mode, _ := c.ReadVirt(sp+8, 8)
	rsp, _ := c.ReadVirt(sp+24, 8)
	if rip != 0x1042 || mode != 3 || rsp != 0x1800 {
		t.Fatalf("frame: rip=%#x mode=%d rsp=%#x", rip, mode, rsp)
	}
}

func TestIretqRoundTrip(t *testing.T) {
	c := env(t)
	c.Kernel = false
	c.RIP = 0x1040
	c.Regs[uops.RegRSP] = 0x1800
	c.SetFlags(x86.FlagIF | x86.FlagCF)
	if f := ExecAssist(c, syscallUop(), &nullSys{}, NopCoreHooks{}); f != uops.FaultNone {
		t.Fatal(f)
	}
	// iretq pops the frame the syscall pushed.
	iret := &uops.Uop{Op: uops.OpAssist, Assist: uops.AssistIretq, RIP: 0x222010, X86Len: 2}
	if f := ExecAssist(c, iret, &nullSys{}, NopCoreHooks{}); f != uops.FaultNone {
		t.Fatal(f)
	}
	if c.Kernel || c.RIP != 0x1042 || c.Regs[uops.RegRSP] != 0x1800 {
		t.Fatalf("return state: kernel=%v rip=%#x rsp=%#x", c.Kernel, c.RIP, c.Regs[uops.RegRSP])
	}
	if !c.IF() || c.Flags()&x86.FlagCF == 0 {
		t.Fatalf("flags not restored: %#x", c.Flags())
	}
}

func TestPrivilegeChecks(t *testing.T) {
	c := env(t)
	c.Kernel = false
	for _, id := range []uops.AssistID{uops.AssistHypercall, uops.AssistHlt,
		uops.AssistIretq, uops.AssistSysret, uops.AssistMovToCR, uops.AssistInvlpg} {
		u := &uops.Uop{Op: uops.OpAssist, Assist: id, RIP: 0x1000, X86Len: 3}
		if f := ExecAssist(c, u, &nullSys{}, NopCoreHooks{}); f != uops.FaultGP {
			t.Fatalf("assist %d from user mode: %v, want #GP", id, f)
		}
	}
	// Kernel-mode syscall is also rejected (hypercall is separate).
	c.Kernel = true
	if f := ExecAssist(c, syscallUop(), &nullSys{}, NopCoreHooks{}); f != uops.FaultGP {
		t.Fatal("kernel syscall should #GP")
	}
}

func TestDeliverExceptionFrame(t *testing.T) {
	c := env(t)
	c.Kernel = false
	c.RIP = 0x1040
	c.Regs[uops.RegRSP] = 0x1800
	c.SetFlags(x86.FlagIF)
	if err := c.DeliverException(VecPF, 0xDEAD, 0x1040); err != nil {
		t.Fatal(err)
	}
	if !c.Kernel || c.RIP != c.TrapEntry || c.IF() {
		t.Fatalf("entry: kernel=%v rip=%#x if=%v", c.Kernel, c.RIP, c.IF())
	}
	sp := c.Regs[uops.RegRSP]
	vec, _ := c.ReadVirt(sp, 8)
	errv, _ := c.ReadVirt(sp+8, 8)
	rip, _ := c.ReadVirt(sp+16, 8)
	if vec != VecPF || errv != 0xDEAD || rip != 0x1040 {
		t.Fatalf("frame: vec=%d err=%#x rip=%#x", vec, errv, rip)
	}
}

func TestDeliverWithoutTrapEntryFails(t *testing.T) {
	c := env(t)
	c.TrapEntry = 0
	if err := c.DeliverException(VecUD, 0, 0x1000); err == nil {
		t.Fatal("delivery with no trap entry must error")
	}
}

func TestRdtscSplitsEdxEax(t *testing.T) {
	c := env(t)
	sys := &nullSys{tsc: 0x1122334455667788}
	u := &uops.Uop{Op: uops.OpAssist, Assist: uops.AssistRdtsc, RIP: 0x1000, X86Len: 2}
	if f := ExecAssist(c, u, sys, NopCoreHooks{}); f != uops.FaultNone {
		t.Fatal(f)
	}
	if c.Regs[uops.RegRAX] != 0x55667788 || c.Regs[uops.RegRDX] != 0x11223344 {
		t.Fatalf("rdtsc: eax=%#x edx=%#x", c.Regs[uops.RegRAX], c.Regs[uops.RegRDX])
	}
}

func TestCRAccess(t *testing.T) {
	c := env(t)
	c.Kernel = true
	oldCR3 := c.CR3
	gen := c.FlushGen
	c.Regs[uops.RegRBX] = oldCR3 // same root, different path
	mov := &uops.Uop{Op: uops.OpAssist, Assist: uops.AssistMovToCR,
		Ra: uops.RegRBX, Imm: 3, RIP: 0x2000, X86Len: 3}
	if f := ExecAssist(c, mov, &nullSys{}, NopCoreHooks{}); f != uops.FaultNone {
		t.Fatal(f)
	}
	if c.FlushGen == gen {
		t.Fatal("CR3 write must bump the shootdown generation")
	}
	c.CR2 = 0x4242
	rd := &uops.Uop{Op: uops.OpAssist, Assist: uops.AssistMovFromCR,
		Rd: uops.RegRCX, Imm: 2, RIP: 0x2003, X86Len: 3}
	if f := ExecAssist(c, rd, &nullSys{}, NopCoreHooks{}); f != uops.FaultNone {
		t.Fatal(f)
	}
	if c.Regs[uops.RegRCX] != 0x4242 {
		t.Fatal("mov from cr2 wrong")
	}
	// Unsupported CR number is #GP.
	bad := &uops.Uop{Op: uops.OpAssist, Assist: uops.AssistMovToCR,
		Ra: uops.RegRBX, Imm: 4, RIP: 0x2006, X86Len: 3}
	if f := ExecAssist(c, bad, &nullSys{}, NopCoreHooks{}); f != uops.FaultGP {
		t.Fatal("cr4 write should #GP")
	}
}

func TestArchEqualIgnoresTemporaries(t *testing.T) {
	a, b := env(t), env(t)
	a.RIP, b.RIP = 5, 5
	a.Regs[uops.RegT0] = 99 // microcode temp: not architectural
	if !ArchEqual(a, b) {
		t.Fatal("temporaries must not affect equality")
	}
	b.Regs[uops.RegRAX] = 1
	if ArchEqual(a, b) {
		t.Fatal("GPR difference missed")
	}
	if DiffArch(a, b) == "" {
		t.Fatal("DiffArch should describe the difference")
	}
}

func TestPageCrossingVirtAccess(t *testing.T) {
	c := env(t)
	c.Kernel = true
	// 0x1000..0x2000 user page, 0x2000..0x3000 kernel page: both
	// mapped, physically discontiguous.
	if f := c.WriteVirt(0x1FFC, 0xAABBCCDDEEFF0011, 8); f != uops.FaultNone {
		t.Fatal(f)
	}
	v, f := c.ReadVirt(0x1FFC, 8)
	if f != uops.FaultNone || v != 0xAABBCCDDEEFF0011 {
		t.Fatalf("cross-page: %#x %v", v, f)
	}
	// User access to the second (kernel) page faults.
	c.Kernel = false
	if f := c.WriteVirt(0x1FFC, 1, 8); f == uops.FaultNone {
		t.Fatal("user write crossing into kernel page must fault")
	}
}
