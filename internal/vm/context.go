// Package vm defines the per-VCPU Context structure (the center of
// PTLsim's multi-processor support, §4.4), guest virtual memory access
// through page table walks, precise exception and interrupt delivery,
// and the microcode assist routines shared by every core model
// (syscall/sysret/iretq, hypercalls, control register access). The
// paravirtual architecture follows Xen: the guest kernel runs at CPL 0
// but performs privileged MMU operations through hypercalls, and
// exceptions/events enter the kernel through registered entry points
// with a Xen-style bounce frame on the kernel stack.
package vm

import (
	"fmt"
	"strings"

	"ptlsim/internal/mem"
	"ptlsim/internal/uops"
	"ptlsim/internal/x86"
)

// Exception vectors (x86 numbering).
const (
	VecDivide = 0
	VecDebug  = 1
	VecUD     = 6
	VecGP     = 13
	VecPF     = 14
	// VecEvent is the vector used for paravirtual event-channel
	// upcalls (the "Xen APIC" interrupt).
	VecEvent = 32
)

// Machine is the shared physical substrate all VCPUs of a domain see.
type Machine struct {
	PM *mem.PhysMem
}

// Context encapsulates all architectural and paravirtual state of one
// VCPU. Core models update it at commit; microcode assists and the
// hypervisor manipulate it directly.
type Context struct {
	M *Machine

	// Architectural register file at uop granularity (GPRs, XMM,
	// FLAGS, microcode temporaries, zero register).
	Regs [uops.NumArchRegs]uint64
	RIP  uint64

	// Privilege and paging state.
	Kernel bool
	CR3    uint64
	CR2    uint64 // faulting address of the last page fault

	// Paravirtual entry points and kernel stack, registered by the
	// guest kernel through hypercalls (Xen set_trap_table /
	// set_callbacks / stack_switch equivalents).
	TrapEntry    uint64 // exceptions and event upcalls
	SyscallEntry uint64
	KernelRSP    uint64

	// VCPU run state.
	ID      int
	Running bool // false while halted waiting for an event

	// TSC virtualization: guest TSC = cycle counter + TSCOffset. The
	// offset is adjusted when switching between native and simulation
	// mode so the guest never observes a discontinuity.
	TSCOffset uint64

	// TLB shootdown generation: incremented by CR3 writes and full
	// flushes; cores with TLBs compare against their local copy.
	FlushGen uint64
}

// NewContext creates a VCPU context on machine m.
func NewContext(m *Machine, id int) *Context {
	return &Context{M: m, ID: id, Running: true}
}

// Flags returns the current RFLAGS value.
func (c *Context) Flags() uint64 { return c.Regs[uops.RegFlags] }

// SetFlags stores RFLAGS.
func (c *Context) SetFlags(v uint64) { c.Regs[uops.RegFlags] = v }

// IF reports whether interrupts (event upcalls) are enabled.
func (c *Context) IF() bool { return c.Flags()&x86.FlagIF != 0 }

// GPR reads a general-purpose register.
func (c *Context) GPR(r x86.Reg) uint64 { return c.Regs[uops.GPR(r)] }

// SetGPR writes a general-purpose register.
func (c *Context) SetGPR(r x86.Reg, v uint64) { c.Regs[uops.GPR(r)] = v }

// Mode returns 0 in kernel mode and 3 in user mode (the privilege
// value saved in bounce frames).
func (c *Context) Mode() uint64 {
	if c.Kernel {
		return 0
	}
	return 3
}

// String summarizes the context for traces.
func (c *Context) String() string {
	return fmt.Sprintf("vcpu%d rip=%#x kernel=%v rax=%#x rsp=%#x",
		c.ID, c.RIP, c.Kernel, c.Regs[uops.RegRAX], c.Regs[uops.RegRSP])
}

// Clone returns a deep copy of the architectural state (used by
// checkpointing and co-simulation comparison).
func (c *Context) Clone() *Context {
	cp := *c
	return &cp
}

// ArchEqual compares the architecturally visible state of two contexts
// (registers below the temporaries, RIP, privilege, CR3), ignoring
// microcode temporaries. Used by the co-simulation divergence search.
func ArchEqual(a, b *Context) bool {
	if a.RIP != b.RIP || a.Kernel != b.Kernel || a.CR3 != b.CR3 {
		return false
	}
	for r := uops.ArchReg(0); r < uops.RegT0; r++ {
		if r == uops.RegFlags {
			if a.Regs[r]&x86.FlagsMask != b.Regs[r]&x86.FlagsMask {
				return false
			}
			continue
		}
		if a.Regs[r] != b.Regs[r] {
			return false
		}
	}
	return true
}

// DiffArch reports every architectural difference between two
// contexts, for divergence diagnostics. The flag register is always
// rendered with its arithmetic bits decoded, so flag-only bugs (a
// wrong CF out of a shifted-by-zero, a stale ZF) are directly
// triageable from the diag string alone.
func DiffArch(a, b *Context) string {
	var diffs []string
	if a.RIP != b.RIP {
		diffs = append(diffs, fmt.Sprintf("rip: %#x vs %#x", a.RIP, b.RIP))
	}
	if a.Kernel != b.Kernel {
		diffs = append(diffs, fmt.Sprintf("mode: kernel=%v vs %v", a.Kernel, b.Kernel))
	}
	if a.CR3 != b.CR3 {
		diffs = append(diffs, fmt.Sprintf("cr3: %#x vs %#x", a.CR3, b.CR3))
	}
	for r := uops.ArchReg(0); r < uops.RegT0; r++ {
		av, bv := a.Regs[r], b.Regs[r]
		if r == uops.RegFlags {
			av &= x86.FlagsMask
			bv &= x86.FlagsMask
			if av != bv {
				diffs = append(diffs, fmt.Sprintf("flags: %#x [%s] vs %#x [%s]",
					av, FlagNames(av), bv, FlagNames(bv)))
			}
			continue
		}
		if av != bv {
			diffs = append(diffs, fmt.Sprintf("%s: %#x vs %#x", r, av, bv))
		}
	}
	return strings.Join(diffs, "; ")
}

// FlagNames decodes the arithmetic flag bits of an RFLAGS value into
// their x86 mnemonics (e.g. "CF|ZF"), "-" when none are set.
func FlagNames(v uint64) string {
	bits := []struct {
		bit  uint64
		name string
	}{
		{x86.FlagCF, "CF"}, {x86.FlagPF, "PF"}, {x86.FlagAF, "AF"},
		{x86.FlagZF, "ZF"}, {x86.FlagSF, "SF"}, {x86.FlagOF, "OF"},
	}
	var names []string
	for _, f := range bits {
		if v&f.bit != 0 {
			names = append(names, f.name)
		}
	}
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, "|")
}

// DumpArch renders the architecturally visible register file of c
// (registers below the microcode temporaries, plus RIP/mode/CR3), one
// line per register, for divergence reports.
func (c *Context) DumpArch() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  rip=%#x kernel=%v cr3=%#x\n", c.RIP, c.Kernel, c.CR3)
	for r := uops.ArchReg(0); r < uops.RegT0; r++ {
		if r == uops.RegFlags {
			fmt.Fprintf(&b, "  %-8s %#018x [%s]\n", r.String(), c.Regs[r], FlagNames(c.Regs[r]))
			continue
		}
		fmt.Fprintf(&b, "  %-8s %#018x\n", r.String(), c.Regs[r])
	}
	return b.String()
}
