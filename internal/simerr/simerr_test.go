package simerr

import (
	"context"
	"fmt"
	"testing"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		kind Kind
		want bool
	}{
		{KindLivelock, true},
		{KindPanic, true},
		{KindTimeout, true},
		{KindDeadlock, false},
		{KindCycleBudget, false},
		{KindDivergence, false},
		{KindInvariant, false},
		{KindResource, false},
		{Kind("unknown"), false},
	}
	for _, tc := range cases {
		if got := tc.kind.Retryable(); got != tc.want {
			t.Errorf("Kind(%s).Retryable() = %v, want %v", tc.kind, got, tc.want)
		}
		se := &SimError{Kind: tc.kind, Cycle: 100, Message: "x"}
		if got := se.Retryable(); got != tc.want {
			t.Errorf("SimError{%s}.Retryable() = %v, want %v", tc.kind, got, tc.want)
		}
		// Classification must survive error wrapping.
		wrapped := fmt.Errorf("attempt 3: %w", se)
		if got := Retryable(wrapped); got != tc.want {
			t.Errorf("Retryable(wrapped %s) = %v, want %v", tc.kind, got, tc.want)
		}
	}
}

func TestRetryableRejectsPlainErrors(t *testing.T) {
	for _, err := range []error{
		nil,
		fmt.Errorf("disk full"),
		context.Canceled,
		fmt.Errorf("run interrupted: %w", context.Canceled),
	} {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}
