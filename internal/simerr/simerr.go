// Package simerr defines the structured simulation error type shared
// by the machine loop and the core models. A sick simulation — a
// deadlocked domain, a livelocked pipeline, an exhausted cycle budget,
// or an internal invariant panic — surfaces as a *SimError carrying
// enough microarchitectural context (cycle, RIP, pipeline dump, the
// last committed instructions) to diagnose the failure offline instead
// of killing the whole batch run.
package simerr

import (
	"errors"
	"fmt"
	"strings"
)

// Kind classifies a simulation failure.
type Kind string

// Failure kinds.
const (
	// KindDeadlock: every VCPU is halted and no timer, DMA completion
	// or replayed trace event can ever wake the domain again.
	KindDeadlock Kind = "deadlock"
	// KindLivelock: the machine is cycling but no core has committed an
	// instruction (or delivered an event) for the watchdog threshold.
	KindLivelock Kind = "livelock"
	// KindPanic: an internal invariant violation (Go panic) was caught
	// at the Machine.Run recovery boundary.
	KindPanic Kind = "panic"
	// KindCycleBudget: the run exceeded its configured cycle budget.
	KindCycleBudget Kind = "cycle-budget"
	// KindDivergence: the lockstep commit oracle observed the OoO core
	// committing architectural state that disagrees with the sequential
	// reference shadow (wrong registers, flags, RIP or store traffic).
	KindDivergence Kind = "divergence"
	// KindInvariant: the pipeline invariant auditor found corrupted
	// microarchitectural state (ROB ordering, LSQ consistency, physical
	// register freelist accounting, cache LRU/MSHR bounds, RAS depth).
	KindInvariant Kind = "invariant"
	// KindTimeout: the run (or its worker process) exceeded a
	// wall-clock deadline or stopped heartbeating — wedged from the
	// outside even if the simulated machine looks healthy. Assigned by
	// the serving layer (internal/jobd), not the machine loop.
	KindTimeout Kind = "timeout"
	// KindResource: the run exhausted a host resource budget — the
	// worker's memory limit, typically. Assigned by the serving layer.
	KindResource Kind = "resource"
)

// Retryable reports whether a failure of this kind can plausibly be
// cured by restoring a checkpoint and re-executing. Livelocks and
// recovered panics are microarchitectural: they arise from simulator
// pipeline state that a restore rebuilds cold, so a retry (and, when
// the fault is persistent, re-executing the window on the sequential
// reference core) can make forward progress. Deadlocks are
// architectural — every VCPU halted with no wakeup source — and replay
// deterministically to the same state, and an exhausted cycle budget
// is a policy limit, not a fault: retrying either spends the same
// cycles again or needs a bigger budget, so both are classified fatal.
// Divergence and invariant violations are evidence of wrong execution —
// a model bug or injected corruption — and a retry would either replay
// the same wrong result deterministically or, worse, silently mask it;
// they are triage material, never retried. Timeouts are retryable: a
// killed-for-wall-clock worker resumes from its last rotated checkpoint
// with the budget refreshed, so each retry makes forward progress.
// Resource exhaustion is non-retryable by default — the same workload
// under the same budget allocates its way to the same kill — though the
// serving layer lets a job opt in to retrying those explicitly.
func (k Kind) Retryable() bool {
	switch k {
	case KindLivelock, KindPanic, KindTimeout:
		return true
	}
	return false
}

// SimError is a structured simulation failure report.
type SimError struct {
	Kind  Kind
	Cycle uint64 // simulated cycle at which the failure was detected
	VCPU  int    // VCPU the context below belongs to
	RIP   uint64 // architectural RIP of that VCPU at failure time
	// Message is the one-line human description.
	Message string
	// Dump carries the detailed context: a ROB/issue-queue/LSQ dump for
	// watchdog trips, the Go stack trace for recovered panics.
	Dump string
	// LastRIPs are the most recently committed instruction addresses
	// (oldest first), when the failing engine tracks them.
	LastRIPs []uint64
	// Commit is the committed-instruction index at which a divergence
	// or invariant violation was detected (0 when not applicable).
	Commit int64
	// Expected/Actual carry the rendered reference and observed
	// architectural register files for divergence reports.
	Expected, Actual string
	// Diff is the field-by-field architectural difference summary.
	Diff string
	// EventTail is the rendered tail of the pipeline event log (when a
	// log was attached): the last few dozen per-uop pipeline events
	// leading up to the failure.
	EventTail string
}

// Error implements error with a compact single-line summary; the Dump
// is deliberately excluded (callers print it on demand).
func (e *SimError) Error() string {
	return fmt.Sprintf("sim %s at cycle %d (vcpu %d, rip %#x): %s",
		e.Kind, e.Cycle, e.VCPU, e.RIP, e.Message)
}

// Detail renders the full report including the dump and the recent
// commit trail.
func (e *SimError) Detail() string {
	var b strings.Builder
	b.WriteString(e.Error())
	if e.Commit > 0 {
		fmt.Fprintf(&b, "\ncommit index: %d", e.Commit)
	}
	if e.Diff != "" {
		b.WriteString("\narch diff:\n")
		b.WriteString(e.Diff)
	}
	if e.Expected != "" {
		b.WriteString("\nexpected (reference):\n")
		b.WriteString(e.Expected)
	}
	if e.Actual != "" {
		b.WriteString("\nactual (observed):\n")
		b.WriteString(e.Actual)
	}
	if len(e.LastRIPs) > 0 {
		b.WriteString("\nlast committed rips:")
		for _, r := range e.LastRIPs {
			fmt.Fprintf(&b, " %#x", r)
		}
	}
	if e.Dump != "" {
		b.WriteString("\n")
		b.WriteString(e.Dump)
	}
	if e.EventTail != "" {
		b.WriteString("\npipeline event tail:\n")
		b.WriteString(e.EventTail)
	}
	return b.String()
}

// Retryable reports whether this failure is worth a restore-and-retry
// attempt (see Kind.Retryable).
func (e *SimError) Retryable() bool { return e.Kind.Retryable() }

// As extracts a *SimError from an error chain.
func As(err error) (*SimError, bool) {
	var se *SimError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// Retryable classifies an arbitrary error from a run loop: true only
// for structured SimErrors of a retryable kind. Plain errors (I/O
// failures, context cancellation, misconfiguration) are never worth an
// automatic retry.
func Retryable(err error) bool {
	se, ok := As(err)
	return ok && se.Retryable()
}
