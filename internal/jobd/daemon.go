package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"ptlsim/internal/metrics"
	"ptlsim/internal/simerr"
	"ptlsim/internal/supervisor"
)

// Config configures a Daemon.
type Config struct {
	// Dir is the service data directory; each job lives in
	// Dir/jobs/<id>/ and the durable job store in Dir/store.jsonl +
	// Dir/store-snap.json (required).
	Dir string
	// WorkerCommand builds the worker subprocess for a job directory —
	// cmd/ptlserve re-execs itself in the hidden worker mode; tests
	// re-exec the test binary. Required.
	WorkerCommand func(jobDir string) *exec.Cmd

	// QueueDepth bounds the number of admitted-but-not-finished jobs
	// beyond the running ones (default 8). Workers is the number of
	// concurrent worker subprocesses (default 2).
	QueueDepth int
	Workers    int

	// Deadline is the default per-attempt wall-clock budget (default
	// 10m); jobs override with DeadlineMs. HeartbeatTimeout kills a
	// worker whose heartbeat file goes stale — wedged beyond even the
	// in-process watchdog (default 1m; 0 disables). PollInterval is
	// the monitor cadence (default 200ms).
	Deadline         time.Duration
	HeartbeatTimeout time.Duration
	PollInterval     time.Duration

	// MemLimitMB is the default per-worker memory budget: exported as
	// GOMEMLIMIT (soft, in-runtime) and enforced by RSS polling (hard,
	// SIGKILL + resource classification). 0 = unlimited.
	MemLimitMB int64
	// ReadRSS reads a process's resident set in bytes (test seam;
	// default reads /proc/<pid>/statm, and RSS enforcement is skipped
	// where that fails, e.g. non-Linux hosts).
	ReadRSS func(pid int) (int64, error)

	// Restarts is the default daemon-level worker-respawn budget per
	// job (default 2). The budget is per daemon incarnation: a job
	// carried across a daemon restart gets a fresh budget, because the
	// daemon failing is not evidence against the job. BreakerThreshold
	// consecutive non-retryable job failures of one workload config
	// open its circuit breaker for BreakerCooldown (defaults 3, 1m).
	Restarts         int
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// RetryAfter is the backpressure floor returned with HTTP 429 when
	// no job latency has been measured yet (default 2s). Once jobs
	// complete, Retry-After reflects the measured queue drain rate
	// (p50 job latency × queue position).
	RetryAfter time.Duration

	// Per-tenant admission defaults. TenantMaxQueued caps how much of
	// the bounded queue one tenant may hold (0 = no per-tenant cap —
	// the global QueueDepth still bounds); TenantMaxRunning caps a
	// tenant's concurrent workers (0 = no cap). TenantPolicies carries
	// per-tenant overrides keyed by tenant name; zero-valued policy
	// fields inherit these defaults, -1 means explicitly unlimited.
	TenantMaxQueued  int
	TenantMaxRunning int
	TenantPolicies   map[string]TenantPolicy

	// CompactEvery bounds the job-store WAL between snapshot
	// compactions (default 256 records), which bounds startup replay.
	CompactEvery int

	// Journal receives the service's JSONL job journal (nil = none),
	// in the supervisor entry format ptlmon -journal renders.
	Journal io.Writer

	// HeartbeatMs is the worker's heartbeat cadence (default 250).
	HeartbeatMs int64
}

func (cfg *Config) applyDefaults() {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 10 * time.Minute
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = time.Minute
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.ReadRSS == nil {
		cfg.ReadRSS = procRSS
	}
	if cfg.Restarts == 0 {
		cfg.Restarts = 2
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Minute
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 256
	}
	if cfg.HeartbeatMs <= 0 {
		cfg.HeartbeatMs = 250
	}
}

// Admission errors (the HTTP layer maps these to status codes).
var (
	// ErrQueueFull: backpressure — the bounded queue is at depth.
	ErrQueueFull = errors.New("jobd: queue full")
	// ErrDraining: the daemon is shutting down and admits nothing new.
	ErrDraining = errors.New("jobd: draining")
	// ErrStaleEpoch: a campaign submission carried a lease epoch below
	// the highest this daemon has accepted for the same grid cell — a
	// superseded lease trying to re-admit its job (fencing).
	ErrStaleEpoch = errors.New("jobd: stale lease epoch for campaign cell")
	// ErrTenantQuota: the submitting tenant is at its queued-job quota
	// (tenant-scoped backpressure; other tenants are unaffected).
	ErrTenantQuota = errors.New("jobd: tenant queued-job quota exceeded")
	// ErrDeadlineShed: the job's client deadline is shorter than its
	// estimated queue wait — admitted it could only time out, so it is
	// shed at admission instead of after consuming a worker.
	ErrDeadlineShed = errors.New("jobd: estimated queue wait exceeds client deadline")
)

// job is the daemon-side job record; mu guards the mutable status.
type job struct {
	mu   sync.Mutex
	st   Status
	spec Spec // resolved spec (daemon defaults applied), what the worker sees

	key       uint64 // breaker config key
	probe     bool   // admitted as the breaker's half-open probe
	seq       uint64 // admission order within the admit queue (FIFO tiebreak)
	submitted time.Time
	started   time.Time
	deadline  time.Duration
	memLimit  int64 // bytes, 0 = unlimited
	restarts  int

	cancel chan struct{} // closed to force-stop the job's workers
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

// orphan identifies a worker process a previous daemon incarnation
// spawned: the recovery adoption candidate.
type orphan struct {
	pid      int
	pidStart uint64
	started  time.Time // attempt start (deadline base)
	attempt  int
}

// resumeInfo is one recovered running job awaiting adoption or reaping
// once Start launches the pool.
type resumeInfo struct {
	j *job
	o orphan
}

// RecoverySummary describes what New replayed out of the job store.
type RecoverySummary struct {
	Jobs     int // jobs in the store
	Terminal int // already done/failed (kept for status + idempotency)
	Requeued int // queued jobs re-admitted to the queue
	Resumed  int // running jobs handed to adopt-or-reap
	Skipped  int // unparseable WAL lines tolerated (torn writes)
}

// Daemon is the job service: a bounded queue feeding a fixed pool of
// worker-runner goroutines, each of which spawns and babysits one
// isolated worker subprocess at a time. Every job state transition is
// write-ahead logged to the durable job store, so a daemon crash loses
// no accepted job: on restart the store is replayed, queued jobs are
// re-admitted, and running jobs are adopted (their orphan worker is
// still alive) or reaped and respawned from rotated checkpoints.
type Daemon struct {
	cfg     Config
	journal *supervisor.Journal
	breaker *Breaker
	store   *JobStore

	// metrics is the ONE registry behind both /statz (integer snapshot
	// via Counters) and /metrics (Prometheus text): every daemon counter
	// and derived gauge lives here, so the two endpoints can never
	// drift apart.
	metrics  *metrics.Registry
	admitLat *metrics.Histogram // admission decision latency (ms)

	// latMu guards the completed-job latency ring (Retry-After's
	// drain-rate estimate).
	latMu sync.Mutex
	lats  []int64

	// queue is the multi-tenant admission layer: per-tenant priority
	// heaps with weighted fair dequeue and quota enforcement. It has
	// its own lock; pushes are additionally serialized under mu.
	queue *admitQueue

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string
	resume    []resumeInfo // recovered running jobs, launched by Start
	draining  bool
	nextID    int
	cellEpoch map[string]int64 // campaign cell → highest accepted lease epoch

	recovery RecoverySummary

	wg sync.WaitGroup // worker-runner goroutines
}

// New builds a daemon, replaying the durable job store in cfg.Dir if a
// previous incarnation left one. Start launches its worker pool and
// the recovered jobs.
func New(cfg Config) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobd: Dir must be set")
	}
	if cfg.WorkerCommand == nil {
		return nil, fmt.Errorf("jobd: WorkerCommand must be set")
	}
	cfg.applyDefaults()
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("jobd: data dir: %w", err)
	}
	store, err := OpenJobStore(cfg.Dir, cfg.CompactEvery)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:       cfg,
		metrics:   metrics.NewRegistry(),
		journal:   supervisor.NewJournal(cfg.Journal),
		breaker:   NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		store:     store,
		jobs:      map[string]*job{},
		cellEpoch: map[string]int64{},
	}
	d.queue = newAdmitQueue(
		TenantPolicy{MaxQueued: cfg.TenantMaxQueued, MaxRunning: cfg.TenantMaxRunning},
		cfg.TenantPolicies, d.metrics)
	d.registerGauges()
	if err := d.recoverFromStore(); err != nil {
		return nil, err
	}
	return d, nil
}

// registerGauges installs the derived (callback) gauges on the
// registry: values computed from live daemon state rather than
// monotonic counts. The callbacks run outside the registry lock and
// take the daemon's own locks, so scrapes see consistent state.
func (d *Daemon) registerGauges() {
	d.metrics.GaugeFunc("jobd.latency.p50_ms", func() float64 {
		return float64(d.latencyP50())
	})
	d.metrics.GaugeFunc("jobd.retry_after_ms", func() float64 {
		return float64(d.RetryAfter().Milliseconds())
	})
	d.metrics.GaugeFunc("jobd.queue.depth", func() float64 {
		return float64(d.queue.Len())
	})
	d.admitLat = d.metrics.Histogram("jobd.admission.latency_ms",
		[]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000})
	d.metrics.GaugeFunc("jobd.jobs.queued", func() float64 {
		return float64(d.stateCount(StateQueued))
	})
	d.metrics.GaugeFunc("jobd.jobs.running", func() float64 {
		return float64(d.stateCount(StateRunning))
	})
	d.metrics.GaugeFunc("jobd.breaker.open", func() float64 {
		return float64(d.breaker.OpenCount())
	})
	d.metrics.GaugeFunc("jobd.store.compactions", func() float64 {
		return float64(d.store.Compactions())
	})
}

// stateCount counts tracked jobs currently in one lifecycle state.
func (d *Daemon) stateCount(st State) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, j := range d.jobs {
		j.mu.Lock()
		if j.st.State == st {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Metrics exposes the daemon's registry so the HTTP layer can serve
// the Prometheus exposition from the same source as /statz.
func (d *Daemon) Metrics() *metrics.Registry { return d.metrics }

// Store exposes the durable job store (event streams, inspection).
func (d *Daemon) Store() *JobStore { return d.store }

// Recovery reports what New replayed from the job store.
func (d *Daemon) Recovery() RecoverySummary { return d.recovery }

// Start launches the worker pool and the adopt-or-reap goroutines for
// recovered running jobs.
func (d *Daemon) Start() {
	for i := 0; i < d.cfg.Workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				j, ok := d.queue.pop()
				if !ok {
					return
				}
				d.runJob(j)
			}
		}()
	}
	d.mu.Lock()
	resume := d.resume
	d.resume = nil
	d.mu.Unlock()
	for _, ri := range resume {
		d.wg.Add(1)
		go func(ri resumeInfo) {
			defer d.wg.Done()
			d.resumeJob(ri.j, ri.o)
		}(ri)
	}
}

// Counters snapshots the daemon's statistics counters (jobs admitted,
// rejected, retried, workers killed by reason, …) plus the derived
// gauges (queue depth, breaker state, p50 latency, Retry-After). The
// snapshot comes from the same registry /metrics serves, so the two
// views cannot drift.
func (d *Daemon) Counters() map[string]int64 {
	return d.metrics.Ints()
}

// noteLatency records one completed job's submit→finish latency for
// the drain-rate estimate (a bounded ring of recent samples).
func (d *Daemon) noteLatency(ms int64) {
	if ms <= 0 {
		return
	}
	d.latMu.Lock()
	defer d.latMu.Unlock()
	const ringCap = 256
	if len(d.lats) >= ringCap {
		d.lats = d.lats[1:]
	}
	d.lats = append(d.lats, ms)
}

// latencyP50 is the median completed-job latency in ms (0 = no
// samples yet).
func (d *Daemon) latencyP50() int64 {
	d.latMu.Lock()
	samples := append([]int64(nil), d.lats...)
	d.latMu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// RetryAfter is the backpressure hint for queue-full rejections:
// measured queue drain rate — the p50 completed-job latency times the
// rejected client's expected queue position — so clients back off
// realistically during recovery storms instead of hammering a constant
// cadence. Before any job completes it falls back to the configured
// constant.
func (d *Daemon) RetryAfter() time.Duration {
	p50 := d.latencyP50()
	if p50 <= 0 {
		return d.cfg.RetryAfter
	}
	// The pool drains Workers jobs per p50 on average; a queue-full
	// client needs at least one full drain cycle plus its share of the
	// backlog.
	return clampRetry(time.Duration(int64(d.queue.Len())/int64(d.cfg.Workers)+1) *
		time.Duration(p50) * time.Millisecond)
}

// RetryAfterTenant is the tenant-scoped backpressure hint for quota and
// shed rejections: it reflects the *tenant's own* backlog (queued plus
// running) rather than the global queue, so a throttled greedy tenant
// backs off on its own drain rate while other tenants keep submitting.
func (d *Daemon) RetryAfterTenant(tenant string) time.Duration {
	p50 := d.latencyP50()
	if p50 <= 0 {
		return d.cfg.RetryAfter
	}
	tq, tr := d.queue.tenantLoad(tenant)
	return clampRetry(time.Duration(int64(tq+tr)/int64(d.cfg.Workers)+1) *
		time.Duration(p50) * time.Millisecond)
}

func clampRetry(est time.Duration) time.Duration {
	if est < time.Second {
		est = time.Second
	}
	if max := 5 * time.Minute; est > max {
		est = max
	}
	return est
}

// estimatedWaitMs is the expected queue wait for a job admitted now:
// the measured p50 job latency times the job's expected queue position
// in worker-drain cycles. 0 when the latency ring is cold — shedding
// fails open until the daemon has evidence.
func (d *Daemon) estimatedWaitMs() int64 {
	p50 := d.latencyP50()
	if p50 <= 0 {
		return 0
	}
	return (int64(d.queue.Len())/int64(d.cfg.Workers) + 1) * p50
}

// Accepting reports whether new jobs are admitted (false once draining).
func (d *Daemon) Accepting() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.draining
}

// resolveJob applies daemon defaults to a validated spec, producing
// the runtime job record. Shared by admission and store recovery so a
// recovered job runs under exactly the knobs it was admitted with.
func (d *Daemon) resolveJob(spec Spec) *job {
	j := &job{
		spec:     spec,
		key:      spec.ConfigKey(),
		deadline: d.cfg.Deadline,
		memLimit: d.cfg.MemLimitMB << 20,
		restarts: d.cfg.Restarts,
		cancel:   make(chan struct{}),
	}
	if spec.DeadlineMs > 0 {
		j.deadline = time.Duration(spec.DeadlineMs) * time.Millisecond
	}
	// The client's end-to-end budget caps the per-attempt deadline: an
	// attempt outliving the client's interest is pure waste.
	if cd := time.Duration(spec.ClientDeadlineMs) * time.Millisecond; cd > 0 && cd < j.deadline {
		j.deadline = cd
	}
	switch {
	case spec.MemLimitMB > 0:
		j.memLimit = spec.MemLimitMB << 20
	case spec.MemLimitMB < 0:
		j.memLimit = 0
	}
	switch {
	case spec.Restarts > 0:
		j.restarts = spec.Restarts
	case spec.Restarts < 0:
		j.restarts = 0
	}
	j.spec.HeartbeatMs = d.cfg.HeartbeatMs
	return j
}

// Submit validates and admits a job (no idempotency key).
func (d *Daemon) Submit(spec Spec) (Status, error) {
	st, _, err := d.SubmitKey(spec, "")
	return st, err
}

// SubmitKey validates and admits a job. A non-empty idemKey dedupes
// resubmissions: if a job was already accepted under the key — in this
// daemon incarnation or any previous one, the mapping is durable in
// the job store — the original job's status is returned with
// duplicate=true and nothing new is admitted. This closes the crash
// window between acceptance and the HTTP response: the accept record
// is fsync'd before SubmitKey returns, so a client that saw the
// connection die can safely resubmit.
//
// It returns ErrQueueFull when the bounded queue is at depth
// (backpressure — the HTTP layer answers 429 + Retry-After),
// ErrTenantQuota when the submitting tenant is at its queued-job quota,
// ErrDeadlineShed when the job's client deadline is already shorter
// than its estimated queue wait (both 429 with a tenant-scoped
// Retry-After), ErrDraining during shutdown, a breaker error for a
// tripped workload config, and the spec's own error when invalid.
func (d *Daemon) SubmitKey(spec Spec, idemKey string) (Status, bool, error) {
	admitStart := time.Now()
	defer func() {
		d.admitLat.Observe(float64(time.Since(admitStart).Nanoseconds()) / 1e6)
	}()
	if err := spec.Validate(); err != nil {
		return Status{}, false, err
	}
	key := spec.ConfigKey()

	d.mu.Lock()
	if idemKey != "" {
		if id, ok := d.store.IdemLookup(idemKey); ok {
			if dup := d.jobs[id]; dup != nil {
				d.mu.Unlock()
				d.count("jobd.jobs.deduped")
				return dup.status(), true, nil
			}
		}
	}
	if d.draining {
		d.mu.Unlock()
		d.count("jobd.rejected.draining")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "draining"})
		return Status{}, false, ErrDraining
	}
	// Campaign fencing: a lease epoch below the highest accepted for
	// the same grid cell identifies a superseded lease — the dispatcher
	// already reassigned the cell, so admitting this copy could only
	// produce a duplicate (and, raced right, a clobbered) verdict. The
	// map is rebuilt from the durable store on boot, so the fence
	// survives daemon crashes. Idempotent replays of the *same* epoch
	// were already answered above.
	if ck := spec.CellKey(); ck != "" {
		if max, ok := d.cellEpoch[ck]; ok && spec.Epoch < max {
			d.mu.Unlock()
			d.count("jobd.rejected.stale_epoch")
			d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "stale-epoch",
				Message: fmt.Sprintf("cell %s epoch %d < fenced %d", ck, spec.Epoch, max)})
			return Status{}, false, fmt.Errorf("%w: cell %s epoch %d < %d",
				ErrStaleEpoch, ck, spec.Epoch, max)
		}
	}
	probe, err := d.breaker.AllowProbe(key)
	if err != nil {
		d.mu.Unlock()
		d.count("jobd.rejected.breaker")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "breaker",
			Message: err.Error()})
		return Status{}, false, err
	}
	// All queue pushes happen under d.mu (admission here, recovery in
	// New before Start), so the depth and quota checks here stay valid
	// through the push below (pops only shrink the queue) — and the
	// WAL accept record can be written before the push without risking
	// a full-queue rollback.
	tenant := tenantName(spec.Tenant)
	if d.queue.Len() >= d.cfg.QueueDepth {
		d.mu.Unlock()
		d.count("jobd.rejected.queue_full")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "queue-full",
			Tenant: tenant})
		return Status{}, false, ErrQueueFull
	}
	if quota, full := d.queue.quotaExceeded(tenant); full {
		d.mu.Unlock()
		d.count("jobd.rejected.tenant_quota")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "tenant-quota",
			Tenant: tenant, Message: fmt.Sprintf("tenant %s at queued quota %d", tenant, quota)})
		return Status{}, false, fmt.Errorf("%w: tenant %s at %d queued", ErrTenantQuota, tenant, quota)
	}
	// Deadline-aware shedding: if the client's end-to-end budget is
	// already shorter than the estimated queue wait, admitting the job
	// could only burn a worker on a result nobody is waiting for.
	// Fail fast instead, while the client can still retry elsewhere.
	if spec.ClientDeadlineMs > 0 {
		if est := d.estimatedWaitMs(); est > spec.ClientDeadlineMs {
			d.mu.Unlock()
			d.count("jobd.jobs.shed")
			d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "deadline-shed",
				Tenant: tenant, Message: fmt.Sprintf("estimated wait %dms > client deadline %dms",
					est, spec.ClientDeadlineMs)})
			return Status{}, false, fmt.Errorf("%w: estimated wait %dms > deadline %dms",
				ErrDeadlineShed, est, spec.ClientDeadlineMs)
		}
	}

	d.nextID++
	id := fmt.Sprintf("%04d", d.nextID)
	now := time.Now()
	j := d.resolveJob(spec)
	j.probe = probe
	j.submitted = now
	j.st = Status{ID: id, State: StateQueued, Spec: j.spec,
		SubmittedAt: rfc3339(now), Dir: filepath.Join(d.cfg.Dir, "jobs", id)}

	// WAL discipline: the accept record is durable before the job is
	// visible anywhere — a crash after this line recovers the job, a
	// crash before it never admitted the job.
	if _, err := d.store.Append(Record{Op: opAccept, Job: id,
		IdemKey: idemKey, Spec: &j.spec}); err != nil {
		d.nextID--
		d.mu.Unlock()
		d.count("jobd.rejected.store_error")
		return Status{}, false, fmt.Errorf("jobd: persisting accept: %w", err)
	}
	d.queue.push(j)
	d.jobs[id] = j
	d.order = append(d.order, id)
	if ck := spec.CellKey(); ck != "" && spec.Epoch > d.cellEpoch[ck] {
		d.cellEpoch[ck] = spec.Epoch
	}
	d.mu.Unlock()

	d.count("jobd.jobs.submitted")
	d.journal.Append(supervisor.Entry{Event: supervisor.EventJobSubmit, Job: id,
		Tenant: tenant, Started: rfc3339(now), Message: fmt.Sprintf("config %#x", key)})
	return j.status(), false, nil
}

// Job returns one job's status.
func (d *Daemon) Job(id string) (Status, bool) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Jobs returns every job's status in submission order.
func (d *Daemon) Jobs() []Status {
	return d.JobsFiltered("", 0)
}

// JobsFiltered returns job statuses in submission order, optionally
// restricted to one phase and capped at limit entries (limit <= 0 =
// unbounded). This is what a campaign dispatcher polls per node: with
// phase+limit the response is O(limit), not O(every job the daemon has
// ever run).
func (d *Daemon) JobsFiltered(phase State, limit int) []Status {
	d.mu.Lock()
	ids := append([]string(nil), d.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, d.jobs[id])
	}
	d.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		st := j.status()
		if phase != "" && st.State != phase {
			continue
		}
		out = append(out, st)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Drain gracefully shuts the daemon down: new submissions are rejected
// immediately (readyz goes unready), queued and running jobs are given
// until ctx expires to finish, and past that workers receive SIGTERM —
// which lands as a supervisor interrupt, i.e. a final checkpoint — and
// then SIGKILL. Drain returns nil when everything finished cleanly and
// ctx's error when it had to force the stop.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return fmt.Errorf("jobd: already draining")
	}
	d.draining = true
	d.queue.close()
	d.mu.Unlock()
	d.journal.Append(supervisor.Entry{Event: supervisor.EventDrain, Message: "begin"})

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		d.signalWorkers(syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(5 * d.cfg.PollInterval):
			d.signalWorkers(syscall.SIGKILL)
			<-done
		}
	}
	if forced == nil {
		d.journal.Append(supervisor.Entry{Event: supervisor.EventDrain, Message: "complete"})
		return nil
	}
	d.journal.Append(supervisor.Entry{Event: supervisor.EventDrain,
		Message: "forced: " + forced.Error()})
	return forced
}

// signalWorkers delivers sig to every live worker process and marks
// the jobs cancelled so runJob stops respawning.
func (d *Daemon) signalWorkers(sig syscall.Signal) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, j := range d.jobs {
		j.mu.Lock()
		select {
		case <-j.cancel:
		default:
			close(j.cancel)
		}
		if j.st.PID > 0 {
			syscall.Kill(j.st.PID, sig)
		}
		j.mu.Unlock()
	}
}

func (d *Daemon) count(path string) {
	d.metrics.Counter(path).Inc()
}

// runJob owns one freshly queued job end to end: spawn a worker,
// monitor it, classify its death, and respawn from the rotated
// checkpoint directory while the classification is retryable and the
// respawn budget lasts.
func (d *Daemon) runJob(j *job) {
	jobDir := filepath.Join(d.cfg.Dir, "jobs", j.st.ID)
	if !d.prepareJobDir(j, jobDir) {
		return
	}
	j.mu.Lock()
	j.started = time.Now()
	j.st.State = StateRunning
	j.st.StartedAt = rfc3339(j.started)
	j.st.QueueWaitMs = j.started.Sub(j.submitted).Milliseconds()
	j.mu.Unlock()
	d.count("jobd.jobs.started")
	d.runAttempts(j, jobDir, 1, nil)
}

// resumeJob owns one recovered running job: adopt its still-alive
// orphan worker, or classify the dead one and respawn from the rotated
// checkpoints.
func (d *Daemon) resumeJob(j *job, o orphan) {
	jobDir := filepath.Join(d.cfg.Dir, "jobs", j.st.ID)
	if !d.prepareJobDir(j, jobDir) {
		return
	}
	d.runAttempts(j, jobDir, o.attempt, &o)
}

// prepareJobDir makes the job directory and (re)writes the spec file;
// a false return means the job was failed terminally.
func (d *Daemon) prepareJobDir(j *job, jobDir string) bool {
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		d.failJob(j, "error", fmt.Sprintf("job dir: %v", err), false)
		return false
	}
	if err := writeJSON(filepath.Join(jobDir, specFile), &j.spec); err != nil {
		d.failJob(j, "error", fmt.Sprintf("spec: %v", err), false)
		return false
	}
	return true
}

// runAttempts is the shared attempt loop. first is the attempt number
// to begin at; orph, when non-nil, makes the first iteration supervise
// the recovered orphan worker instead of spawning a fresh one.
func (d *Daemon) runAttempts(j *job, jobDir string, first int, orph *orphan) {
	id := j.st.ID
	for attempt := first; ; attempt++ {
		j.mu.Lock()
		j.st.Attempts = attempt
		cancelled := isClosed(j.cancel)
		j.mu.Unlock()
		if cancelled {
			d.failJob(j, "interrupted", "daemon stopping", false)
			return
		}

		var fail Failure
		var err error
		if orph != nil {
			err = d.superviseOrphan(j, jobDir, *orph)
			orph = nil
		} else {
			err = d.superviseWorker(j, jobDir, attempt)
		}
		switch {
		case err == nil:
			res, rerr := readResult(filepath.Join(jobDir, resultFile))
			if rerr == nil {
				d.completeJob(j, res)
				return
			}
			fail = Failure{Kind: string(simerr.KindPanic), Retryable: true,
				Message: fmt.Sprintf("worker exited 0 but result unreadable: %v", rerr)}
		default:
			var ok bool
			if fail, ok = errFailure(err); !ok {
				d.failJob(j, "error", err.Error(), false)
				return
			}
		}

		d.count("jobd.workers.exit." + fail.Kind)
		d.journal.Append(supervisor.Entry{Event: supervisor.EventWorkerExit, Job: id,
			Attempt: attempt, Kind: fail.Kind, Message: fail.Message,
			Retryable: fail.Retryable, Cycle: fail.Cycle, RIP: fail.RIP})
		d.store.Append(Record{Op: opExit, Job: id, Attempt: attempt,
			Kind: fail.Kind, Message: fail.Message})

		j.mu.Lock()
		j.st.Kind = fail.Kind
		j.st.Error = fail.Message
		retry := fail.Retryable && attempt <= j.restarts && !isClosed(j.cancel)
		j.mu.Unlock()
		if !retry {
			// Interrupted jobs (daemon drain) say nothing about the
			// workload's health — they never count toward the breaker.
			d.failJob(j, fail.Kind, fail.Message,
				!fail.Retryable && fail.Kind != "interrupted")
			return
		}
		d.count("jobd.jobs.retried")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventJobRetry, Job: id,
			Attempt: attempt, Message: "respawning from rotated checkpoints"})
	}
}

// killReason is set by the monitor before it SIGKILLs a worker, so the
// exit can be classified by cause rather than by signal.
type killReason struct {
	kind    simerr.Kind
	message string
}

// errFailureWrap carries a Failure through the error return of
// superviseWorker.
type errFailureWrap struct{ f Failure }

func (e *errFailureWrap) Error() string { return e.f.Kind + ": " + e.f.Message }

func errFailure(err error) (Failure, bool) {
	var w *errFailureWrap
	if errors.As(err, &w) {
		return w.f, true
	}
	return Failure{}, false
}

// superviseWorker spawns one worker subprocess for the job and watches
// it until exit: waitpid for death, the heartbeat file for wedging,
// the wall clock for the deadline, and RSS for the memory budget. A
// nil return means the worker exited 0; otherwise the error wraps the
// classified Failure (errFailure extracts it).
func (d *Daemon) superviseWorker(j *job, jobDir string, attempt int) error {
	// Stale verdicts from the previous attempt must not be re-read.
	os.Remove(filepath.Join(jobDir, resultFile))
	os.Remove(filepath.Join(jobDir, failureFile))

	cmd := d.cfg.WorkerCommand(jobDir)
	if cmd == nil {
		return fmt.Errorf("jobd: WorkerCommand returned nil")
	}
	cmd.Env = append(os.Environ(), cmd.Env...)
	if j.memLimit > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("GOMEMLIMIT=%d", j.memLimit))
	}
	if cmd.Stdout == nil || cmd.Stderr == nil {
		if lf, err := os.OpenFile(filepath.Join(jobDir, logFile),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
			defer lf.Close()
			if cmd.Stdout == nil {
				cmd.Stdout = lf
			}
			if cmd.Stderr == nil {
				cmd.Stderr = lf
			}
		}
	}
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("jobd: spawning worker: %w", err)
	}
	pid := cmd.Process.Pid
	// The worker's start time makes the (pid, start) pair a pid-reuse
	// guard: a future daemon incarnation adopts the orphan only when
	// both still match.
	pidStart, _ := procStartTime(pid)
	j.mu.Lock()
	j.st.PID = pid
	j.mu.Unlock()
	j.mu.Lock()
	queueWait := j.st.QueueWaitMs
	j.mu.Unlock()
	d.journal.Append(supervisor.Entry{Event: supervisor.EventJobStart, Job: j.st.ID,
		Attempt: attempt, PID: pid, Started: rfc3339(start),
		Tenant: tenantName(j.spec.Tenant), QueueWaitMs: queueWait})
	d.store.Append(Record{Op: opStart, Job: j.st.ID, Attempt: attempt,
		PID: pid, PIDStart: pidStart})

	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd.Wait() }()

	var reason *killReason
	kill := func(r killReason) {
		if reason != nil {
			return
		}
		reason = &r
		syscall.Kill(pid, syscall.SIGKILL)
	}
	ticker := time.NewTicker(d.cfg.PollInterval)
	defer ticker.Stop()
	var waitErr error
	cancel := j.cancel
monitor:
	for {
		select {
		case waitErr = <-waitDone:
			break monitor
		case <-cancel:
			kill(killReason{kind: "interrupted", message: "daemon stopping"})
			cancel = nil // fired once; a nil channel never selects again
		case <-ticker.C:
			if r := d.checkWorkerBudgets(j, jobDir, pid, start); r != nil {
				kill(*r)
			}
		}
	}
	j.mu.Lock()
	j.st.PID = 0
	j.mu.Unlock()

	return d.classifyExit(j, jobDir, waitErr, reason)
}

// checkWorkerBudgets evaluates one monitor tick's deadline, heartbeat
// and RSS budgets for a live worker, returning a kill reason when one
// is exceeded. Shared by the spawn and adoption monitors.
func (d *Daemon) checkWorkerBudgets(j *job, jobDir string, pid int, start time.Time) *killReason {
	now := time.Now()
	if j.deadline > 0 && now.Sub(start) > j.deadline {
		return &killReason{kind: simerr.KindTimeout,
			message: fmt.Sprintf("wall-clock deadline %v exceeded", j.deadline)}
	}
	if d.cfg.HeartbeatTimeout > 0 {
		hbPath := filepath.Join(jobDir, heartbeatFile)
		if st, err := os.Stat(hbPath); err == nil &&
			now.Sub(latest(st.ModTime(), start)) > d.cfg.HeartbeatTimeout {
			return &killReason{kind: simerr.KindTimeout,
				message: fmt.Sprintf("worker heartbeat stale for %v (wedged)", d.cfg.HeartbeatTimeout)}
		}
	}
	if j.memLimit > 0 {
		if rss, err := d.cfg.ReadRSS(pid); err == nil && rss > j.memLimit {
			return &killReason{kind: simerr.KindResource,
				message: fmt.Sprintf("worker RSS %dMB over budget %dMB", rss>>20, j.memLimit>>20)}
		}
	}
	return nil
}

// superviseOrphan re-attaches to (or buries) a worker spawned by a
// previous daemon incarnation. The adopt-vs-reap decision table:
//
//   - pid alive and /proc start time matches the recorded one: the
//     same process incarnation — ADOPT. The monitors (heartbeat file,
//     deadline from the recorded attempt start, RSS) re-attach and the
//     job continues without a respawn.
//   - pid alive but start time differs: the pid was reused by an
//     unrelated process, which means our worker is dead. Never signal
//     the impostor; treat the worker as dead.
//   - pid dead, or start time unreadable (no procfs): treat the
//     worker as dead.
//
// A dead worker is classified by what it left in the job directory —
// result.json (success), failure.json (its own classification), or
// nothing (panic, retryable) — and the caller respawns from the
// rotated checkpoints when retryable.
func (d *Daemon) superviseOrphan(j *job, jobDir string, o orphan) error {
	if sameProcess(o.pid, o.pidStart) {
		j.mu.Lock()
		j.st.PID = o.pid
		j.st.Adopted = true
		j.mu.Unlock()
		d.count("jobd.jobs.adopted")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventJobAdopt, Job: j.st.ID,
			Attempt: o.attempt, PID: o.pid,
			Message: "orphan worker adopted after daemon restart"})
		d.store.Append(Record{Op: opAdopt, Job: j.st.ID, Attempt: o.attempt,
			PID: o.pid, PIDStart: o.pidStart})

		start := o.started
		if start.IsZero() {
			start = time.Now()
		}
		var reason *killReason
		kill := func(r killReason) {
			if reason != nil {
				return
			}
			reason = &r
			syscall.Kill(o.pid, syscall.SIGKILL)
		}
		ticker := time.NewTicker(d.cfg.PollInterval)
		defer ticker.Stop()
		cancel := j.cancel
	monitor:
		for {
			select {
			case <-cancel:
				kill(killReason{kind: "interrupted", message: "daemon stopping"})
				cancel = nil
			case <-ticker.C:
				// Not our child: waitpid is unavailable, so death is the
				// (pid, start time) pair no longer matching. The zombie
				// is init's problem — orphans are reparented.
				if !sameProcess(o.pid, o.pidStart) {
					break monitor
				}
				if r := d.checkWorkerBudgets(j, jobDir, o.pid, start); r != nil {
					kill(*r)
				}
			}
		}
		j.mu.Lock()
		j.st.PID = 0
		j.mu.Unlock()
		if reason != nil {
			return d.classifyExit(j, jobDir, errors.New("killed by monitor"), reason)
		}
	} else {
		d.count("jobd.jobs.reaped")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventJobRetry, Job: j.st.ID,
			Attempt: o.attempt, PID: o.pid,
			Message: "recorded worker dead or pid reused; resuming from rotated checkpoints"})
	}

	// The worker is gone (or never survived the daemon): classify by
	// its verdict files.
	if _, err := os.Stat(filepath.Join(jobDir, resultFile)); err == nil {
		return nil // finished while the daemon was down
	}
	if f, err := readFailure(filepath.Join(jobDir, failureFile)); err == nil {
		return &errFailureWrap{*f}
	}
	return &errFailureWrap{Failure{Kind: string(simerr.KindPanic), Retryable: true,
		Message: "worker died while the daemon was down"}}
}

// classifyExit turns a worker's death into the simerr taxonomy:
//
//   - exit 0: success (the caller reads result.json)
//   - killed by the monitor: the monitor's reason (timeout/resource)
//   - structured exit (failure.json): the worker's own classification
//   - any other death — external SIGKILL, OOM kill, panic without a
//     report, unknown exit code: KindPanic, retryable, because the
//     rotated checkpoints make a resume both safe and cheap.
func (d *Daemon) classifyExit(j *job, jobDir string, waitErr error, reason *killReason) error {
	if waitErr == nil {
		// Exited 0 — even if a kill raced the exit, the worker finished
		// its work and wrote its result.
		return nil
	}
	if reason != nil {
		retryable := reason.kind.Retryable()
		if reason.kind == simerr.KindResource && j.spec.RetryResource {
			retryable = true
		}
		return &errFailureWrap{Failure{Kind: string(reason.kind),
			Message: reason.message, Retryable: retryable}}
	}
	if f, err := readFailure(filepath.Join(jobDir, failureFile)); err == nil {
		return &errFailureWrap{*f}
	}
	var ee *exec.ExitError
	if errors.As(waitErr, &ee) && ee.ExitCode() == ExitSetup {
		return &errFailureWrap{Failure{Kind: "error",
			Message: "worker setup failed (see worker.log)", Retryable: false}}
	}
	return &errFailureWrap{Failure{Kind: string(simerr.KindPanic),
		Message: fmt.Sprintf("worker died: %v", waitErr), Retryable: true}}
}

func (d *Daemon) completeJob(j *job, res *Result) {
	now := time.Now()
	j.mu.Lock()
	j.st.State = StateDone
	j.st.Result = res
	j.st.Kind = ""
	j.st.Error = ""
	j.st.FinishedAt = rfc3339(now)
	j.st.ElapsedMs = now.Sub(j.submitted).Milliseconds()
	id, elapsed, queueWait := j.st.ID, j.st.ElapsedMs, j.st.QueueWaitMs
	started := j.submitted
	j.mu.Unlock()
	d.queue.done(j.spec.Tenant)
	d.breaker.Success(j.key)
	d.noteLatency(elapsed)
	d.count("jobd.jobs.done")
	d.store.Append(Record{Op: opDone, Job: id, Result: res, Phase: StateDone})
	d.journal.Append(supervisor.Entry{Event: supervisor.EventJobDone, Job: id,
		Cycle: res.Cycles, Insns: res.Insns, Tenant: tenantName(j.spec.Tenant),
		QueueWaitMs: queueWait, Started: rfc3339(started), ElapsedMs: elapsed})
}

func (d *Daemon) failJob(j *job, kind, message string, breaker bool) {
	now := time.Now()
	j.mu.Lock()
	j.st.State = StateFailed
	j.st.Kind = kind
	j.st.Error = message
	j.st.FinishedAt = rfc3339(now)
	j.st.ElapsedMs = now.Sub(j.submitted).Milliseconds()
	id, elapsed, queueWait := j.st.ID, j.st.ElapsedMs, j.st.QueueWaitMs
	started := j.submitted
	probe := j.probe
	j.mu.Unlock()
	d.queue.done(j.spec.Tenant)
	d.count("jobd.jobs.failed")
	d.store.Append(Record{Op: opFail, Job: id, Kind: kind, Message: message,
		Phase: StateFailed})
	d.journal.Append(supervisor.Entry{Event: supervisor.EventJobFail, Job: id,
		Kind: kind, Message: message, Tenant: tenantName(j.spec.Tenant),
		QueueWaitMs: queueWait, Started: rfc3339(started), ElapsedMs: elapsed})
	switch {
	case breaker:
		if d.breaker.Failure(j.key) {
			d.count("jobd.breaker.opened")
			d.journal.Append(supervisor.Entry{Event: supervisor.EventBreakerOpen,
				Job: id, Message: fmt.Sprintf("config %#x admission stopped", j.key)})
		}
	case probe:
		// The half-open probe ended without a breaker verdict (e.g.
		// interrupted): release the probe slot so the next submission
		// probes again.
		d.breaker.ProbeSettled(j.key)
	}
}

func readResult(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

func readFailure(path string) (*Failure, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f Failure
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func latest(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// procRSS reads a process's resident set size from /proc/<pid>/statm
// (Linux). On hosts without procfs the error disables RSS enforcement
// for that poll; GOMEMLIMIT still applies inside the worker.
func procRSS(pid int) (int64, error) {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/statm", pid))
	if err != nil {
		return 0, err
	}
	var size, resident int64
	if _, err := fmt.Sscanf(string(data), "%d %d", &size, &resident); err != nil {
		return 0, err
	}
	return resident * int64(os.Getpagesize()), nil
}
