package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
	"ptlsim/internal/supervisor"
)

// Config configures a Daemon.
type Config struct {
	// Dir is the service data directory; each job lives in
	// Dir/jobs/<id>/ (required).
	Dir string
	// WorkerCommand builds the worker subprocess for a job directory —
	// cmd/ptlserve re-execs itself in the hidden worker mode; tests
	// re-exec the test binary. Required.
	WorkerCommand func(jobDir string) *exec.Cmd

	// QueueDepth bounds the number of admitted-but-not-finished jobs
	// beyond the running ones (default 8). Workers is the number of
	// concurrent worker subprocesses (default 2).
	QueueDepth int
	Workers    int

	// Deadline is the default per-attempt wall-clock budget (default
	// 10m); jobs override with DeadlineMs. HeartbeatTimeout kills a
	// worker whose heartbeat file goes stale — wedged beyond even the
	// in-process watchdog (default 1m; 0 disables). PollInterval is
	// the monitor cadence (default 200ms).
	Deadline         time.Duration
	HeartbeatTimeout time.Duration
	PollInterval     time.Duration

	// MemLimitMB is the default per-worker memory budget: exported as
	// GOMEMLIMIT (soft, in-runtime) and enforced by RSS polling (hard,
	// SIGKILL + resource classification). 0 = unlimited.
	MemLimitMB int64
	// ReadRSS reads a process's resident set in bytes (test seam;
	// default reads /proc/<pid>/statm, and RSS enforcement is skipped
	// where that fails, e.g. non-Linux hosts).
	ReadRSS func(pid int) (int64, error)

	// Restarts is the default daemon-level worker-respawn budget per
	// job (default 2). BreakerThreshold consecutive non-retryable job
	// failures of one workload config open its circuit breaker for
	// BreakerCooldown (defaults 3, 1m).
	Restarts         int
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// RetryAfter is the backpressure hint returned with HTTP 429
	// (default 2s).
	RetryAfter time.Duration

	// Journal receives the service's JSONL job journal (nil = none),
	// in the supervisor entry format ptlmon -journal renders.
	Journal io.Writer

	// HeartbeatMs is the worker's heartbeat cadence (default 250).
	HeartbeatMs int64
}

func (cfg *Config) applyDefaults() {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 10 * time.Minute
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = time.Minute
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.ReadRSS == nil {
		cfg.ReadRSS = procRSS
	}
	if cfg.Restarts == 0 {
		cfg.Restarts = 2
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Minute
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.HeartbeatMs <= 0 {
		cfg.HeartbeatMs = 250
	}
}

// Admission errors (the HTTP layer maps these to status codes).
var (
	// ErrQueueFull: backpressure — the bounded queue is at depth.
	ErrQueueFull = errors.New("jobd: queue full")
	// ErrDraining: the daemon is shutting down and admits nothing new.
	ErrDraining = errors.New("jobd: draining")
)

// job is the daemon-side job record; mu guards the mutable status.
type job struct {
	mu   sync.Mutex
	st   Status
	spec Spec // resolved spec (daemon defaults applied), what the worker sees

	key       uint64 // breaker config key
	submitted time.Time
	started   time.Time
	deadline  time.Duration
	memLimit  int64 // bytes, 0 = unlimited
	restarts  int

	cancel chan struct{} // closed to force-stop the job's workers
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

// Daemon is the job service: a bounded queue feeding a fixed pool of
// worker-runner goroutines, each of which spawns and babysits one
// isolated worker subprocess at a time.
type Daemon struct {
	cfg     Config
	journal *supervisor.Journal
	breaker *Breaker

	// treeMu guards tree: stats counters are wait-free inside the
	// simulator's single-threaded hot loop, but the daemon counts from
	// many goroutines.
	treeMu sync.Mutex
	tree   *stats.Tree

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	queue    chan *job
	draining bool
	nextID   int

	wg sync.WaitGroup // worker-runner goroutines
}

// New builds a daemon. Start launches its worker pool.
func New(cfg Config) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobd: Dir must be set")
	}
	if cfg.WorkerCommand == nil {
		return nil, fmt.Errorf("jobd: WorkerCommand must be set")
	}
	cfg.applyDefaults()
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("jobd: data dir: %w", err)
	}
	return &Daemon{
		cfg:     cfg,
		tree:    stats.NewTree(),
		journal: supervisor.NewJournal(cfg.Journal),
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		jobs:    map[string]*job{},
		queue:   make(chan *job, cfg.QueueDepth),
	}, nil
}

// Start launches the worker pool.
func (d *Daemon) Start() {
	for i := 0; i < d.cfg.Workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for j := range d.queue {
				d.runJob(j)
			}
		}()
	}
}

// Counters snapshots the daemon's statistics counters (jobs admitted,
// rejected, retried, workers killed by reason, …).
func (d *Daemon) Counters() map[string]int64 {
	d.treeMu.Lock()
	defer d.treeMu.Unlock()
	return d.tree.Snapshot(0).Values
}

// RetryAfter is the backpressure hint for queue-full rejections.
func (d *Daemon) RetryAfter() time.Duration { return d.cfg.RetryAfter }

// Accepting reports whether new jobs are admitted (false once draining).
func (d *Daemon) Accepting() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.draining
}

// Submit validates and admits a job. It returns ErrQueueFull when the
// bounded queue is at depth (backpressure — the HTTP layer answers
// 429 + Retry-After), ErrDraining during shutdown, a breaker error for
// a tripped workload config, and the spec's own error when invalid.
func (d *Daemon) Submit(spec Spec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	key := spec.ConfigKey()

	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		d.count("jobd.rejected.draining")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "draining"})
		return Status{}, ErrDraining
	}
	if err := d.breaker.Allow(key); err != nil {
		d.mu.Unlock()
		d.count("jobd.rejected.breaker")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "breaker",
			Message: err.Error()})
		return Status{}, err
	}

	d.nextID++
	id := fmt.Sprintf("%04d", d.nextID)
	now := time.Now()
	j := &job{
		spec:      spec,
		key:       key,
		submitted: now,
		deadline:  d.cfg.Deadline,
		memLimit:  d.cfg.MemLimitMB << 20,
		restarts:  d.cfg.Restarts,
		cancel:    make(chan struct{}),
	}
	if spec.DeadlineMs > 0 {
		j.deadline = time.Duration(spec.DeadlineMs) * time.Millisecond
	}
	switch {
	case spec.MemLimitMB > 0:
		j.memLimit = spec.MemLimitMB << 20
	case spec.MemLimitMB < 0:
		j.memLimit = 0
	}
	switch {
	case spec.Restarts > 0:
		j.restarts = spec.Restarts
	case spec.Restarts < 0:
		j.restarts = 0
	}
	j.spec.HeartbeatMs = d.cfg.HeartbeatMs
	j.st = Status{ID: id, State: StateQueued, Spec: j.spec,
		SubmittedAt: rfc3339(now), Dir: filepath.Join(d.cfg.Dir, "jobs", id)}

	select {
	case d.queue <- j:
	default:
		d.nextID--
		d.mu.Unlock()
		d.count("jobd.rejected.queue_full")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventReject, Kind: "queue-full"})
		return Status{}, ErrQueueFull
	}
	d.jobs[id] = j
	d.order = append(d.order, id)
	d.mu.Unlock()

	d.count("jobd.jobs.submitted")
	d.journal.Append(supervisor.Entry{Event: supervisor.EventJobSubmit, Job: id,
		Started: rfc3339(now), Message: fmt.Sprintf("config %#x", key)})
	return j.status(), nil
}

// Job returns one job's status.
func (d *Daemon) Job(id string) (Status, bool) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Jobs returns every job's status in submission order.
func (d *Daemon) Jobs() []Status {
	d.mu.Lock()
	ids := append([]string(nil), d.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, d.jobs[id])
	}
	d.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	return out
}

// Drain gracefully shuts the daemon down: new submissions are rejected
// immediately (readyz goes unready), queued and running jobs are given
// until ctx expires to finish, and past that workers receive SIGTERM —
// which lands as a supervisor interrupt, i.e. a final checkpoint — and
// then SIGKILL. Drain returns nil when everything finished cleanly and
// ctx's error when it had to force the stop.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return fmt.Errorf("jobd: already draining")
	}
	d.draining = true
	close(d.queue)
	d.mu.Unlock()
	d.journal.Append(supervisor.Entry{Event: supervisor.EventDrain, Message: "begin"})

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		d.signalWorkers(syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(5 * d.cfg.PollInterval):
			d.signalWorkers(syscall.SIGKILL)
			<-done
		}
	}
	if forced == nil {
		d.journal.Append(supervisor.Entry{Event: supervisor.EventDrain, Message: "complete"})
		return nil
	}
	d.journal.Append(supervisor.Entry{Event: supervisor.EventDrain,
		Message: "forced: " + forced.Error()})
	return forced
}

// signalWorkers delivers sig to every live worker process and marks
// the jobs cancelled so runJob stops respawning.
func (d *Daemon) signalWorkers(sig syscall.Signal) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, j := range d.jobs {
		j.mu.Lock()
		select {
		case <-j.cancel:
		default:
			close(j.cancel)
		}
		if j.st.PID > 0 {
			syscall.Kill(j.st.PID, sig)
		}
		j.mu.Unlock()
	}
}

func (d *Daemon) count(path string) {
	d.treeMu.Lock()
	d.tree.Counter(path).Add(1)
	d.treeMu.Unlock()
}

// runJob owns one job end to end: spawn a worker, monitor it, classify
// its death, and respawn from the rotated checkpoint directory while
// the classification is retryable and the respawn budget lasts.
func (d *Daemon) runJob(j *job) {
	id := j.st.ID
	jobDir := filepath.Join(d.cfg.Dir, "jobs", id)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		d.failJob(j, "error", fmt.Sprintf("job dir: %v", err), false)
		return
	}
	if err := writeJSON(filepath.Join(jobDir, specFile), &j.spec); err != nil {
		d.failJob(j, "error", fmt.Sprintf("spec: %v", err), false)
		return
	}

	j.mu.Lock()
	j.started = time.Now()
	j.st.State = StateRunning
	j.st.StartedAt = rfc3339(j.started)
	j.mu.Unlock()
	d.count("jobd.jobs.started")

	for attempt := 1; ; attempt++ {
		j.mu.Lock()
		j.st.Attempts = attempt
		cancelled := isClosed(j.cancel)
		j.mu.Unlock()
		if cancelled {
			d.failJob(j, "interrupted", "daemon stopping", false)
			return
		}

		var fail Failure
		switch err := d.superviseWorker(j, jobDir, attempt); {
		case err == nil:
			res, rerr := readResult(filepath.Join(jobDir, resultFile))
			if rerr == nil {
				d.completeJob(j, res)
				return
			}
			fail = Failure{Kind: string(simerr.KindPanic), Retryable: true,
				Message: fmt.Sprintf("worker exited 0 but result unreadable: %v", rerr)}
		default:
			var ok bool
			if fail, ok = errFailure(err); !ok {
				d.failJob(j, "error", err.Error(), false)
				return
			}
		}

		d.count("jobd.workers.exit." + fail.Kind)
		d.journal.Append(supervisor.Entry{Event: supervisor.EventWorkerExit, Job: id,
			Attempt: attempt, Kind: fail.Kind, Message: fail.Message,
			Retryable: fail.Retryable, Cycle: fail.Cycle, RIP: fail.RIP})

		j.mu.Lock()
		j.st.Kind = fail.Kind
		j.st.Error = fail.Message
		retry := fail.Retryable && attempt <= j.restarts && !isClosed(j.cancel)
		j.mu.Unlock()
		if !retry {
			// Interrupted jobs (daemon drain) say nothing about the
			// workload's health — they never count toward the breaker.
			d.failJob(j, fail.Kind, fail.Message,
				!fail.Retryable && fail.Kind != "interrupted")
			return
		}
		d.count("jobd.jobs.retried")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventJobRetry, Job: id,
			Attempt: attempt, Message: "respawning from rotated checkpoints"})
	}
}

// killReason is set by the monitor before it SIGKILLs a worker, so the
// exit can be classified by cause rather than by signal.
type killReason struct {
	kind    simerr.Kind
	message string
}

// errFailureWrap carries a Failure through the error return of
// superviseWorker.
type errFailureWrap struct{ f Failure }

func (e *errFailureWrap) Error() string { return e.f.Kind + ": " + e.f.Message }

func errFailure(err error) (Failure, bool) {
	var w *errFailureWrap
	if errors.As(err, &w) {
		return w.f, true
	}
	return Failure{}, false
}

// superviseWorker spawns one worker subprocess for the job and watches
// it until exit: waitpid for death, the heartbeat file for wedging,
// the wall clock for the deadline, and RSS for the memory budget. A
// nil return means the worker exited 0; otherwise the error wraps the
// classified Failure (errFailure extracts it).
func (d *Daemon) superviseWorker(j *job, jobDir string, attempt int) error {
	// Stale verdicts from the previous attempt must not be re-read.
	os.Remove(filepath.Join(jobDir, resultFile))
	os.Remove(filepath.Join(jobDir, failureFile))

	cmd := d.cfg.WorkerCommand(jobDir)
	if cmd == nil {
		return fmt.Errorf("jobd: WorkerCommand returned nil")
	}
	cmd.Env = append(os.Environ(), cmd.Env...)
	if j.memLimit > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("GOMEMLIMIT=%d", j.memLimit))
	}
	if cmd.Stdout == nil || cmd.Stderr == nil {
		if lf, err := os.OpenFile(filepath.Join(jobDir, logFile),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
			defer lf.Close()
			if cmd.Stdout == nil {
				cmd.Stdout = lf
			}
			if cmd.Stderr == nil {
				cmd.Stderr = lf
			}
		}
	}
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("jobd: spawning worker: %w", err)
	}
	pid := cmd.Process.Pid
	j.mu.Lock()
	j.st.PID = pid
	j.mu.Unlock()
	d.journal.Append(supervisor.Entry{Event: supervisor.EventJobStart, Job: j.st.ID,
		Attempt: attempt, PID: pid, Started: rfc3339(start)})

	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd.Wait() }()

	hbPath := filepath.Join(jobDir, heartbeatFile)
	var reason *killReason
	kill := func(r killReason) {
		if reason != nil {
			return
		}
		reason = &r
		syscall.Kill(pid, syscall.SIGKILL)
	}
	ticker := time.NewTicker(d.cfg.PollInterval)
	defer ticker.Stop()
	var waitErr error
	cancel := j.cancel
monitor:
	for {
		select {
		case waitErr = <-waitDone:
			break monitor
		case <-cancel:
			kill(killReason{kind: "interrupted", message: "daemon stopping"})
			cancel = nil // fired once; a nil channel never selects again
		case <-ticker.C:
			now := time.Now()
			if j.deadline > 0 && now.Sub(start) > j.deadline {
				kill(killReason{kind: simerr.KindTimeout,
					message: fmt.Sprintf("wall-clock deadline %v exceeded", j.deadline)})
				continue
			}
			if d.cfg.HeartbeatTimeout > 0 {
				if st, err := os.Stat(hbPath); err == nil &&
					now.Sub(latest(st.ModTime(), start)) > d.cfg.HeartbeatTimeout {
					kill(killReason{kind: simerr.KindTimeout,
						message: fmt.Sprintf("worker heartbeat stale for %v (wedged)", d.cfg.HeartbeatTimeout)})
					continue
				}
			}
			if j.memLimit > 0 {
				if rss, err := d.cfg.ReadRSS(pid); err == nil && rss > j.memLimit {
					kill(killReason{kind: simerr.KindResource,
						message: fmt.Sprintf("worker RSS %dMB over budget %dMB", rss>>20, j.memLimit>>20)})
				}
			}
		}
	}
	j.mu.Lock()
	j.st.PID = 0
	j.mu.Unlock()

	return d.classifyExit(j, jobDir, waitErr, reason)
}

// classifyExit turns a worker's death into the simerr taxonomy:
//
//   - exit 0: success (the caller reads result.json)
//   - killed by the monitor: the monitor's reason (timeout/resource)
//   - structured exit (failure.json): the worker's own classification
//   - any other death — external SIGKILL, OOM kill, panic without a
//     report, unknown exit code: KindPanic, retryable, because the
//     rotated checkpoints make a resume both safe and cheap.
func (d *Daemon) classifyExit(j *job, jobDir string, waitErr error, reason *killReason) error {
	if waitErr == nil {
		// Exited 0 — even if a kill raced the exit, the worker finished
		// its work and wrote its result.
		return nil
	}
	if reason != nil {
		retryable := reason.kind.Retryable()
		if reason.kind == simerr.KindResource && j.spec.RetryResource {
			retryable = true
		}
		return &errFailureWrap{Failure{Kind: string(reason.kind),
			Message: reason.message, Retryable: retryable}}
	}
	if f, err := readFailure(filepath.Join(jobDir, failureFile)); err == nil {
		return &errFailureWrap{*f}
	}
	var ee *exec.ExitError
	if errors.As(waitErr, &ee) && ee.ExitCode() == ExitSetup {
		return &errFailureWrap{Failure{Kind: "error",
			Message: "worker setup failed (see worker.log)", Retryable: false}}
	}
	return &errFailureWrap{Failure{Kind: string(simerr.KindPanic),
		Message: fmt.Sprintf("worker died: %v", waitErr), Retryable: true}}
}

func (d *Daemon) completeJob(j *job, res *Result) {
	now := time.Now()
	j.mu.Lock()
	j.st.State = StateDone
	j.st.Result = res
	j.st.Kind = ""
	j.st.Error = ""
	j.st.FinishedAt = rfc3339(now)
	j.st.ElapsedMs = now.Sub(j.submitted).Milliseconds()
	id, elapsed := j.st.ID, j.st.ElapsedMs
	started := j.submitted
	j.mu.Unlock()
	d.breaker.Success(j.key)
	d.count("jobd.jobs.done")
	d.journal.Append(supervisor.Entry{Event: supervisor.EventJobDone, Job: id,
		Cycle: res.Cycles, Insns: res.Insns,
		Started: rfc3339(started), ElapsedMs: elapsed})
}

func (d *Daemon) failJob(j *job, kind, message string, breaker bool) {
	now := time.Now()
	j.mu.Lock()
	j.st.State = StateFailed
	j.st.Kind = kind
	j.st.Error = message
	j.st.FinishedAt = rfc3339(now)
	j.st.ElapsedMs = now.Sub(j.submitted).Milliseconds()
	id, elapsed := j.st.ID, j.st.ElapsedMs
	started := j.submitted
	j.mu.Unlock()
	d.count("jobd.jobs.failed")
	d.journal.Append(supervisor.Entry{Event: supervisor.EventJobFail, Job: id,
		Kind: kind, Message: message, Started: rfc3339(started), ElapsedMs: elapsed})
	if breaker && d.breaker.Failure(j.key) {
		d.count("jobd.breaker.opened")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventBreakerOpen,
			Job: id, Message: fmt.Sprintf("config %#x admission stopped", j.key)})
	}
}

func readResult(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

func readFailure(path string) (*Failure, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f Failure
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func latest(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// procRSS reads a process's resident set size from /proc/<pid>/statm
// (Linux). On hosts without procfs the error disables RSS enforcement
// for that poll; GOMEMLIMIT still applies inside the worker.
func procRSS(pid int) (int64, error) {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/statm", pid))
	if err != nil {
		return 0, err
	}
	var size, resident int64
	if _, err := fmt.Sscanf(string(data), "%d %d", &size, &resident); err != nil {
		return 0, err
	}
	return resident * int64(os.Getpagesize()), nil
}
