package jobd

import (
	"container/heap"
	"sync"

	"ptlsim/internal/metrics"
)

// The admission queue replaces the old flat `chan *job` FIFO with a
// multi-tenant scheduler. Three policies compose:
//
//   - Within a tenant, jobs dequeue by Priority (higher first), FIFO
//     within a priority level — a per-tenant binary heap.
//   - Across tenants, dequeue is weighted fair share via stride
//     scheduling: each tenant accumulates "pass" at a rate inversely
//     proportional to its weight, and the eligible tenant with the
//     lowest pass dequeues next. A tenant that floods the queue — even
//     with high-priority jobs — only speeds up its own pass clock; it
//     cannot starve a quieter tenant.
//   - Per-tenant quotas: MaxQueued is enforced at admission (the HTTP
//     layer answers 429 with a tenant-scoped Retry-After), MaxRunning
//     at dequeue (the tenant's jobs simply wait while others run).
//
// Lock order: the daemon serializes all pushes under d.mu (admission
// and recovery), exactly as it did with the channel, so a capacity or
// quota check at admission time stays valid through the push. The
// queue's own mutex protects against concurrent poppers (the worker
// pool) and metric scrapes; its methods never take d.mu.

// TenantPolicy is one tenant's admission policy. Zero values fall back
// to the daemon-wide defaults (Config.TenantMaxQueued /
// Config.TenantMaxRunning / weight 1).
type TenantPolicy struct {
	MaxQueued  int // queued-job quota (0 = daemon default; -1 = unlimited)
	MaxRunning int // running-job quota (0 = daemon default; -1 = unlimited)
	Weight     int // fair-share weight (0 = default 1)
}

// defaultTenant is the account used when a spec carries no tenant.
const defaultTenant = "default"

// tenantName normalizes a spec's tenant field to its account name.
func tenantName(t string) string {
	if t == "" {
		return defaultTenant
	}
	return t
}

// strideOne is the pass a weight-1 tenant accumulates per dequeue;
// weight w tenants accumulate strideOne/w, so they dequeue w times as
// often under contention.
const strideOne = 1 << 16

// tenantQueue is one tenant's admission account: its priority heap,
// running count, quota policy, and stride-scheduler state.
type tenantQueue struct {
	name    string
	heap    jobHeap
	running int
	pass    uint64
	stride  uint64
	pol     TenantPolicy

	queuedGauge  *metrics.Gauge
	runningGauge *metrics.Gauge
}

// jobHeap orders a tenant's queued jobs: higher Priority first, then
// admission order (seq) so equal priorities stay FIFO.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.Priority != h[j].spec.Priority {
		return h[i].spec.Priority > h[j].spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// admitQueue is the daemon's multi-tenant admission layer.
type admitQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenantQueue
	queued  int    // total queued across tenants
	seq     uint64 // admission-order stamp for FIFO within a priority
	closed  bool   // drain: pop returns remaining jobs then false

	defPol   TenantPolicy            // daemon-wide quota defaults
	policies map[string]TenantPolicy // per-tenant overrides
	reg      *metrics.Registry       // per-tenant gauges (nil in unit tests)
}

func newAdmitQueue(defPol TenantPolicy, policies map[string]TenantPolicy, reg *metrics.Registry) *admitQueue {
	q := &admitQueue{
		tenants:  map[string]*tenantQueue{},
		defPol:   defPol,
		policies: policies,
		reg:      reg,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tenant returns (creating if needed) a tenant's account. A new tenant
// starts at the minimum pass among active tenants, so it neither owes
// history it wasn't around for nor gets a burst of accumulated credit.
// Called with mu held.
func (q *admitQueue) tenant(name string) *tenantQueue {
	t := q.tenants[name]
	if t != nil {
		return t
	}
	pol := q.defPol
	if over, ok := q.policies[name]; ok {
		if over.MaxQueued != 0 {
			pol.MaxQueued = over.MaxQueued
		}
		if over.MaxRunning != 0 {
			pol.MaxRunning = over.MaxRunning
		}
		if over.Weight != 0 {
			pol.Weight = over.Weight
		}
	}
	if pol.Weight <= 0 {
		pol.Weight = 1
	}
	t = &tenantQueue{name: name, pol: pol, stride: strideOne / uint64(pol.Weight)}
	minPass, any := uint64(0), false
	for _, other := range q.tenants {
		if !any || other.pass < minPass {
			minPass, any = other.pass, true
		}
	}
	t.pass = minPass
	if q.reg != nil {
		t.queuedGauge = q.reg.Gauge("jobd.tenant." + name + ".queued")
		t.runningGauge = q.reg.Gauge("jobd.tenant." + name + ".running")
	}
	q.tenants[name] = t
	return t
}

func (t *tenantQueue) setGauges() {
	if t.queuedGauge != nil {
		t.queuedGauge.Set(int64(len(t.heap)))
		t.runningGauge.Set(int64(t.running))
	}
}

// quotaExceeded reports whether admitting one more job for tenant name
// would breach its queued-job quota. Called with the daemon's mu held
// (push is serialized), so a false answer stays valid through push.
func (q *admitQueue) quotaExceeded(name string) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(name)
	if t.pol.MaxQueued <= 0 {
		return 0, false // unlimited (global QueueDepth still bounds)
	}
	return t.pol.MaxQueued, len(t.heap) >= t.pol.MaxQueued
}

// push admits a job to its tenant's heap. The daemon has already
// checked global depth and tenant quota under d.mu.
func (q *admitQueue) push(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	j.seq = q.seq
	t := q.tenant(tenantName(j.spec.Tenant))
	heap.Push(&t.heap, j)
	q.queued++
	t.setGauges()
	q.cond.Signal()
}

// pop blocks until a job is eligible to run and returns it, or returns
// false when the queue is closed and fully drained. Eligible means the
// tenant has queued work and is under its running quota; among eligible
// tenants the one with the lowest stride pass wins, then its
// highest-priority job. The popped job's tenant is charged one running
// slot (released by done).
func (q *admitQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		var best *tenantQueue
		for _, t := range q.tenants {
			if len(t.heap) == 0 {
				continue
			}
			if t.pol.MaxRunning > 0 && t.running >= t.pol.MaxRunning {
				continue
			}
			if best == nil || t.pass < best.pass ||
				(t.pass == best.pass && t.name < best.name) {
				best = t
			}
		}
		if best != nil {
			j := heap.Pop(&best.heap).(*job)
			q.queued--
			best.pass += best.stride
			best.running++
			best.setGauges()
			return j, true
		}
		if q.closed && q.queued == 0 {
			return nil, false
		}
		// Either empty, or every backlogged tenant is at its running
		// quota: wait for a push, a done, or close. On close with a
		// quota-blocked backlog, running jobs finishing (or being
		// killed by drain) release slots and wake us to drain the rest.
		q.cond.Wait()
	}
}

// done releases the running slot pop charged to the job's tenant.
func (q *admitQueue) done(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(tenantName(tenant))
	if t.running > 0 {
		t.running--
	}
	t.setGauges()
	q.cond.Broadcast()
}

// noteRunning charges a running slot without a pop — recovery uses it
// for adopted/respawned jobs that never pass through the queue, so
// per-tenant running accounting (and MaxRunning) survives a restart.
func (q *admitQueue) noteRunning(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(tenantName(tenant))
	t.running++
	t.setGauges()
}

// close starts drain: pop hands out the remaining backlog (runJob fails
// cancelled jobs as "interrupted" without spawning workers) and then
// returns false to each worker.
func (q *admitQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len is the total queued (admitted, not yet running) job count.
func (q *admitQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// tenantLoad reports a tenant's queued and running counts (both 0 for
// an unknown tenant) — the tenant-scoped Retry-After inputs.
func (q *admitQueue) tenantLoad(name string) (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenants[tenantName(name)]
	if t == nil {
		return 0, 0
	}
	return len(t.heap), t.running
}
