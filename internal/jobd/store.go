package jobd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The job store is the daemon's write-ahead log: every job state
// transition (accepted → queued → running(pid, attempt) →
// done/failed) is appended as an fsync'd JSONL record to
// <dir>/store.jsonl before the transition is acted on, so a daemon
// crash — SIGKILL, OOM kill, deploy restart — loses at most the
// in-flight HTTP response, never an accepted job. Startup replays the
// log to rebuild the queue, re-attach or reap orphaned workers, and
// answer idempotent resubmits.
//
// Replay is bounded by snapshot compaction: every CompactEvery
// appends, the materialized state is written atomically (temp + fsync
// + rename) to <dir>/store-snap.json stamped with the last applied
// sequence number, and the log is atomically replaced with an empty
// one. A crash between the two renames is harmless: records at or
// below the snapshot's LastSeq are skipped during replay, so applying
// the old log over the new snapshot is idempotent.

// Store record operations (Record.Op).
const (
	opAccept = "accept" // job admitted (spec + idempotency key); phase → queued
	opStart  = "start"  // worker spawned for an attempt (pid + start time); phase → running
	opExit   = "exit"   // worker died abnormally; phase stays running while retryable
	opAdopt  = "adopt"  // recovery re-attached a live orphan worker
	opDone   = "done"   // job completed (result); terminal
	opFail   = "fail"   // job failed terminally (kind + message); terminal
	opState  = "state"  // synthetic: compacted-away history summarized as one record
)

// Record is one WAL entry. It doubles as the wire format of the
// /jobs/{id}/events stream (Seq is the SSE event id).
type Record struct {
	Seq      int64   `json:"seq"`
	Time     string  `json:"time,omitempty"`
	Op       string  `json:"op"`
	Job      string  `json:"job,omitempty"`
	IdemKey  string  `json:"idem_key,omitempty"`
	Spec     *Spec   `json:"spec,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	PID      int     `json:"pid,omitempty"`
	PIDStart uint64  `json:"pid_start,omitempty"`
	Kind     string  `json:"kind,omitempty"`
	Message  string  `json:"message,omitempty"`
	Result   *Result `json:"result,omitempty"`
	Phase    State   `json:"phase,omitempty"` // state/terminal records: the job's phase
}

// JobState is the materialized per-job state the WAL replays into —
// everything recovery needs to re-queue, adopt, or report a job.
type JobState struct {
	ID       string  `json:"id"`
	IdemKey  string  `json:"idem_key,omitempty"`
	Spec     Spec    `json:"spec"`
	Phase    State   `json:"phase"`
	Attempt  int     `json:"attempt,omitempty"`
	PID      int     `json:"pid,omitempty"`
	PIDStart uint64  `json:"pid_start,omitempty"`
	Kind     string  `json:"kind,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`

	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"` // newest attempt's start
	FinishedAt  string `json:"finished_at,omitempty"`
}

// terminal reports whether the phase can no longer change.
func (js *JobState) terminal() bool {
	return js.Phase == StateDone || js.Phase == StateFailed
}

// storeSnapshot is the compaction file format.
type storeSnapshot struct {
	LastSeq int64       `json:"last_seq"`
	Jobs    []*JobState `json:"jobs"`
}

const (
	storeLogFile  = "store.jsonl"
	storeSnapFile = "store-snap.json"
)

// StoreExists reports whether dir holds a job store (log or snapshot
// present) — how ptlmon -inspect recognizes a daemon data directory.
func StoreExists(dir string) bool {
	for _, name := range []string{storeLogFile, storeSnapFile} {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil && !st.IsDir() {
			return true
		}
	}
	return false
}

// JobStore is the WAL plus its materialized state. All methods are
// safe for concurrent use; appends are serialized and fsync'd in
// order.
type JobStore struct {
	dir          string
	compactEvery int
	now          func() time.Time

	mu          sync.Mutex
	f           *os.File
	seq         int64
	appended    int // records in the current (post-compaction) log
	compactions int64
	jobs        map[string]*JobState
	order       []string
	idem        map[string]string   // idempotency key → job ID
	events      map[string][]Record // per-job replayable event history
	skipped     int                 // unparseable lines tolerated during replay
	watch       chan struct{}       // closed and replaced on every append
}

// Compactions reports how many snapshot compactions this incarnation
// has performed (exported via the daemon's metrics registry).
func (s *JobStore) Compactions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactions
}

// OpenJobStore opens (creating if absent) the store in dir, replaying
// the snapshot and log into memory. compactEvery bounds the log length
// between compactions (<=0 selects the default of 256).
func OpenJobStore(dir string, compactEvery int) (*JobStore, error) {
	if compactEvery <= 0 {
		compactEvery = 256
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobd: store dir: %w", err)
	}
	s := &JobStore{
		dir:          dir,
		compactEvery: compactEvery,
		now:          time.Now,
		jobs:         map[string]*JobState{},
		idem:         map[string]string{},
		events:       map[string][]Record{},
		watch:        make(chan struct{}),
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, storeLogFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobd: store log: %w", err)
	}
	s.f = f
	return s, nil
}

// ReadJobStore replays a store read-only (no files are created or
// opened for writing) — the ptlmon -inspect entry point. The int is
// the count of unparseable log lines skipped (torn writes).
func ReadJobStore(dir string) ([]JobState, int, error) {
	s := &JobStore{
		dir:    dir,
		jobs:   map[string]*JobState{},
		idem:   map[string]string{},
		events: map[string][]Record{},
	}
	if err := s.replay(); err != nil {
		return nil, 0, err
	}
	return s.Jobs(), s.skipped, nil
}

// replay loads the snapshot (if any) and applies log records past its
// LastSeq. Unparseable lines — the torn final line a crash mid-append
// leaves, or a torn middle line followed by post-restart appends — are
// skipped and counted, never fatal.
func (s *JobStore) replay() error {
	snapPath := filepath.Join(s.dir, storeSnapFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap storeSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("jobd: store snapshot %s: %w", snapPath, err)
		}
		s.seq = snap.LastSeq
		for _, js := range snap.Jobs {
			s.jobs[js.ID] = js
			s.order = append(s.order, js.ID)
			if js.IdemKey != "" {
				s.idem[js.IdemKey] = js.ID
			}
			// The compacted-away history is summarized as one synthetic
			// state record so event-stream clients reconnecting with an
			// old Last-Event-ID still get the job's current phase.
			s.events[js.ID] = []Record{{Seq: snap.LastSeq, Op: opState, Job: js.ID,
				Phase: js.Phase, Attempt: js.Attempt, PID: js.PID,
				Kind: js.Kind, Message: js.Error, Result: js.Result}}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("jobd: store snapshot: %w", err)
	}

	f, err := os.Open(filepath.Join(s.dir, storeLogFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("jobd: store log: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			s.skipped++
			continue
		}
		if rec.Seq <= s.seq && rec.Seq != 0 {
			// Already covered by the snapshot (crash between the
			// snapshot rename and the log rotation).
			continue
		}
		s.apply(rec)
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		s.appended++
	}
	return sc.Err()
}

// apply folds one record into the materialized state and the per-job
// event history.
func (s *JobStore) apply(rec Record) {
	js := s.jobs[rec.Job]
	switch rec.Op {
	case opAccept:
		if js == nil {
			js = &JobState{ID: rec.Job}
			s.jobs[rec.Job] = js
			s.order = append(s.order, rec.Job)
		}
		if rec.Spec != nil {
			js.Spec = *rec.Spec
		}
		js.IdemKey = rec.IdemKey
		js.Phase = StateQueued
		js.SubmittedAt = rec.Time
		if rec.IdemKey != "" {
			s.idem[rec.IdemKey] = rec.Job
		}
	case opStart:
		if js == nil {
			return
		}
		js.Phase = StateRunning
		js.Attempt = rec.Attempt
		js.PID = rec.PID
		js.PIDStart = rec.PIDStart
		js.StartedAt = rec.Time
	case opAdopt:
		if js == nil {
			return
		}
		js.Phase = StateRunning
		js.PID = rec.PID
		js.PIDStart = rec.PIDStart
	case opExit:
		if js == nil {
			return
		}
		js.PID = 0
		js.PIDStart = 0
		js.Kind = rec.Kind
		js.Error = rec.Message
	case opDone:
		if js == nil {
			return
		}
		js.Phase = StateDone
		js.PID = 0
		js.PIDStart = 0
		js.Kind = ""
		js.Error = ""
		js.Result = rec.Result
		js.FinishedAt = rec.Time
	case opFail:
		if js == nil {
			return
		}
		js.Phase = StateFailed
		js.PID = 0
		js.PIDStart = 0
		js.Kind = rec.Kind
		js.Error = rec.Message
		js.FinishedAt = rec.Time
	case opState:
		// Synthetic snapshot summary; state already loaded from the
		// snapshot file. Only the event history carries it.
	}
	if rec.Job != "" {
		s.events[rec.Job] = append(s.events[rec.Job], rec)
	}
}

// Append stamps, persists (write + fsync), and applies one record,
// returning the stamped record. The write hits disk before the state
// change is visible to readers — WAL discipline: a transition the
// daemon acted on is always recoverable.
func (s *JobStore) Append(rec Record) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	rec.Seq = s.seq
	now := time.Now
	if s.now != nil {
		now = s.now
	}
	rec.Time = now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(rec)
	if err != nil {
		s.seq--
		return Record{}, fmt.Errorf("jobd: store encode: %w", err)
	}
	if _, err := s.f.Write(append(data, '\n')); err != nil {
		return Record{}, fmt.Errorf("jobd: store append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return Record{}, fmt.Errorf("jobd: store fsync: %w", err)
	}
	s.apply(rec)
	s.appended++
	close(s.watch)
	s.watch = make(chan struct{})
	if s.appended >= s.compactEvery {
		if err := s.compact(); err != nil {
			// Compaction failure is not fatal to the append: the WAL
			// already holds the record; the log just stays long.
			return rec, fmt.Errorf("jobd: store compact: %w", err)
		}
	}
	return rec, nil
}

// compact writes the materialized state as an atomic snapshot and
// replaces the log with an empty one. Called with mu held.
func (s *JobStore) compact() error {
	snap := storeSnapshot{LastSeq: s.seq}
	for _, id := range s.order {
		snap.Jobs = append(snap.Jobs, s.jobs[id])
	}
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(s.dir, storeSnapFile), data); err != nil {
		return err
	}
	// Replace the log *after* the snapshot is durable. A crash between
	// the two renames leaves the old log in place; replay skips its
	// records via LastSeq.
	if err := atomicWrite(filepath.Join(s.dir, storeLogFile), nil); err != nil {
		return err
	}
	old := s.f
	f, err := os.OpenFile(filepath.Join(s.dir, storeLogFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	s.f = f
	s.appended = 0
	s.compactions++
	return nil
}

// atomicWrite lands data at path via temp + fsync + rename — the same
// discipline as snapshot checkpoint writes, so a crash mid-write can
// never present a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".store-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Close closes the log file (the store stays readable in memory).
func (s *JobStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Skipped is the count of unparseable log lines tolerated at replay.
func (s *JobStore) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Job returns a copy of one job's materialized state.
func (s *JobStore) Job(id string) (JobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return JobState{}, false
	}
	return *js, true
}

// Jobs returns every job's materialized state in acceptance order.
func (s *JobStore) Jobs() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobState, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// IdemLookup resolves an idempotency key to the job it accepted.
func (s *JobStore) IdemLookup(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.idem[key]
	return id, ok
}

// MaxID returns the highest numeric job ID in the store (0 when
// empty) — recovery resumes ID allocation past it.
func (s *JobStore) MaxID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0
	for _, id := range s.order {
		if n, err := strconv.Atoi(id); err == nil && n > max {
			max = n
		}
	}
	return max
}

// EventsWatch returns the job's event records with Seq > after,
// whether the job is terminal, and a channel closed on the next append
// anywhere in the store. ok is false when the job is unknown.
func (s *JobStore) EventsWatch(job string, after int64) (recs []Record, terminal bool, watch <-chan struct{}, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, found := s.jobs[job]
	if !found {
		return nil, false, nil, false
	}
	for _, rec := range s.events[job] {
		if rec.Seq > after {
			recs = append(recs, rec)
		}
	}
	return recs, js.terminal(), s.watch, true
}

// SortedJobStates orders states by numeric ID (for rendering).
func SortedJobStates(states []JobState) []JobState {
	out := append([]JobState(nil), states...)
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(out[i].ID)
		b, _ := strconv.Atoi(out[j].ID)
		if a != b {
			return a < b
		}
		return out[i].ID < out[j].ID
	})
	return out
}
