package jobd

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"runtime"
	"runtime/debug"
)

// Version is the GET /version response: enough for a campaign
// dispatcher to refuse a mixed fleet at campaign start instead of
// failing mid-sweep. SchemaHash is the load-bearing field — it is
// computed from the wire types themselves (Spec, Status, Result,
// Record), so two binaries that would disagree about the job protocol
// necessarily report different hashes even when their VCS metadata is
// missing (test binaries, `go run`).
type Version struct {
	Version    string `json:"version"`     // VCS revision (or "devel" when unstamped)
	Modified   bool   `json:"modified"`    // VCS working tree was dirty at build
	Go         string `json:"go"`          // toolchain that built the binary
	SchemaHash uint64 `json:"schema_hash"` // hash of the job wire protocol types
}

// VersionInfo describes this binary's job-protocol version.
func VersionInfo() Version {
	v := Version{Go: runtime.Version(), Version: "devel", SchemaHash: SchemaHash()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				v.Version = s.Value
			case "vcs.modified":
				v.Modified = s.Value == "true"
			}
		}
	}
	return v
}

// SchemaHash folds the exported shape of the job wire protocol — field
// names, JSON tags, and kinds of every type that crosses the HTTP
// boundary — into one FNV-64a value. Any change to the protocol (a new
// Spec knob, a renamed Status field, a new store record op) changes the
// hash, which is exactly when mixing daemon versions inside one
// campaign stops being safe.
func SchemaHash() uint64 {
	h := fnv.New64a()
	for _, t := range []reflect.Type{
		reflect.TypeOf(Spec{}),
		reflect.TypeOf(Status{}),
		reflect.TypeOf(Result{}),
		reflect.TypeOf(Failure{}),
		reflect.TypeOf(Record{}),
	} {
		hashType(h, t, map[reflect.Type]bool{})
	}
	for _, op := range []string{opAccept, opStart, opExit, opAdopt, opDone, opFail, opState} {
		fmt.Fprintf(h, "op:%s;", op)
	}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed} {
		fmt.Fprintf(h, "state:%s;", st)
	}
	return h.Sum64()
}

// hashType writes a deterministic structural description of t. seen
// breaks cycles (none today, but schema types evolve).
func hashType(h interface{ Write([]byte) (int, error) }, t reflect.Type, seen map[reflect.Type]bool) {
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		fmt.Fprintf(h, "%s[", t.Kind())
		hashType(h, t.Elem(), seen)
		fmt.Fprint(h, "]")
	case reflect.Map:
		fmt.Fprint(h, "map[")
		hashType(h, t.Key(), seen)
		fmt.Fprint(h, "]")
		hashType(h, t.Elem(), seen)
	case reflect.Struct:
		if seen[t] {
			fmt.Fprintf(h, "cycle:%s", t.Name())
			return
		}
		seen[t] = true
		fmt.Fprintf(h, "struct:%s{", t.Name())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fmt.Fprintf(h, "%s:%s:", f.Name, f.Tag.Get("json"))
			hashType(h, f.Type, seen)
			fmt.Fprint(h, ";")
		}
		fmt.Fprint(h, "}")
		delete(seen, t)
	default:
		fmt.Fprint(h, t.Kind().String())
	}
}
