package jobd

// End-to-end daemon crash-recovery tests. The daemon under test is a
// real subprocess (TestMain's PTLSERVE_DAEMON_DIR mode), so SIGKILL
// really does what a power cut, OOM kill, or `kill -9` does: no
// deferred cleanup runs, no channel drains — the only thing the next
// incarnation has is what the job store fsync'd.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemonMain is the subprocess entry point: a daemon plus HTTP server
// on the given data directory. The listen address lands in
// PTLSERVE_DAEMON_ADDRFILE (atomically, temp+rename); the process then
// blocks until killed.
func daemonMain(dir string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		return 1
	}
	jf, err := os.OpenFile(filepath.Join(dir, "service.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		return 1
	}
	compact := 256
	if v := os.Getenv("PTLSERVE_DAEMON_COMPACT"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			compact = n
		}
	}
	tenantQueued := 0
	if v := os.Getenv("PTLSERVE_DAEMON_TQUEUED"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			tenantQueued = n
		}
	}
	workerCmd := func(jobDir string) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = []string{"PTLSERVE_WORKER_DIR=" + jobDir}
		return cmd
	}
	if os.Getenv("PTLSERVE_DAEMON_SLEEPWORKER") == "1" {
		// Stub workers that never finish: the multi-tenant recovery test
		// needs a backlog that stays put while it asserts scheduling.
		workerCmd = func(string) *exec.Cmd { return exec.Command("sleep", "60") }
	}
	d, err := New(Config{
		Dir:              dir,
		WorkerCommand:    workerCmd,
		TenantMaxQueued:  tenantQueued,
		Workers:          1,
		QueueDepth:       16,
		PollInterval:     10 * time.Millisecond,
		HeartbeatTimeout: 30 * time.Second,
		Deadline:         5 * time.Minute,
		CompactEvery:     compact,
		Journal:          jf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		return 1
	}
	d.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		return 1
	}
	go http.Serve(ln, d.Handler())
	if af := os.Getenv("PTLSERVE_DAEMON_ADDRFILE"); af != "" {
		tmp := af + ".tmp"
		if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "daemon:", err)
			return 1
		}
		if err := os.Rename(tmp, af); err != nil {
			fmt.Fprintln(os.Stderr, "daemon:", err)
			return 1
		}
	}
	select {} // until SIGKILL
}

// daemonProc is a test handle on a daemon subprocess.
type daemonProc struct {
	cmd *exec.Cmd
	url string
}

// startDaemonProc launches the daemon subprocess on dir and waits for
// its HTTP address.
func startDaemonProc(t *testing.T, dir string) *daemonProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, fmt.Sprintf("addr-%d", time.Now().UnixNano()))
	logf, err := os.OpenFile(filepath.Join(dir, "daemon.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"PTLSERVE_DAEMON_DIR="+dir,
		"PTLSERVE_DAEMON_ADDRFILE="+addrFile)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	dp := &daemonProc{cmd: cmd}
	t.Cleanup(func() { dp.kill() })

	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon subprocess never published its address (see %s/daemon.log)", dir)
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			dp.url = string(data)
			return dp
		}
		if cmd.ProcessState != nil {
			t.Fatalf("daemon subprocess exited early (see %s/daemon.log)", dir)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon — the crash under test — and reaps it.
func (dp *daemonProc) kill() {
	if dp.cmd.Process != nil {
		syscall.Kill(dp.cmd.Process.Pid, syscall.SIGKILL)
		dp.cmd.Wait()
	}
}

func httpSubmit(t *testing.T, url string, spec Spec, idemKey string) (Status, int) {
	t.Helper()
	body, _ := json.Marshal(&spec)
	req, err := http.NewRequest("POST", url+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func httpJob(t *testing.T, url, id string) Status {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitHTTPJob(t *testing.T, url, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := httpJob(t, url, id)
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := httpJob(t, url, id)
	t.Fatalf("job %s did not finish in %v (state %s, kind %s, err %q)",
		id, timeout, st.State, st.Kind, st.Error)
	return Status{}
}

// waitRunningWithCheckpoint waits until the job has a live worker PID
// and at least one rotation slot to resume from, and returns the status.
func waitRunningWithCheckpoint(t *testing.T, url, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := httpJob(t, url, id)
		if st.State == StateDone || st.State == StateFailed {
			t.Fatalf("job %s finished (%s) before the crash landed — widen the workload", id, st.State)
		}
		if st.PID > 0 {
			slots, _ := filepath.Glob(filepath.Join(st.Dir, ckptSubdir, "*.ckpt"))
			if len(slots) > 0 {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached running-with-checkpoint", id)
	return Status{}
}

// TestDaemonSIGKILLRecoveryMixedStates is the tentpole acceptance test:
// SIGKILL the daemon with jobs in mixed states — one done, one running
// (whose worker is then killed too, forcing the respawn path), two
// queued — restart it on the same data directory, and every job must
// reach a terminal state with guest output bit-identical to an
// uncrashed run. Idempotent resubmission across the crash returns the
// original job, and nothing is lost or duplicated.
func TestDaemonSIGKILLRecoveryMixedStates(t *testing.T) {
	spec := killSpec()

	// Reference: the same workload on an unkilled in-process daemon.
	clean := func() *Result {
		d := newDaemon(t, nil, nil)
		st, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		fin := waitJob(t, d, st.ID, 3*time.Minute)
		if fin.State != StateDone {
			t.Fatalf("clean run failed: %s %s", fin.Kind, fin.Error)
		}
		return fin.Result
	}()

	dir := t.TempDir()
	dp := startDaemonProc(t, dir)

	// One job all the way to done before the crash.
	doneJob, code := httpSubmit(t, dp.url, smallSpec(), "job-done")
	if code != http.StatusAccepted {
		t.Fatalf("submit done-job: %d", code)
	}
	doneSt := waitHTTPJob(t, dp.url, doneJob.ID, 2*time.Minute)
	if doneSt.State != StateDone {
		t.Fatalf("pre-crash job failed: %s %s", doneSt.Kind, doneSt.Error)
	}
	preCrashFNV := doneSt.Result.ConsoleFNV

	// One running (the crash victim) and two queued behind it.
	victim, code := httpSubmit(t, dp.url, spec, "job-victim")
	if code != http.StatusAccepted {
		t.Fatalf("submit victim: %d", code)
	}
	queuedA, _ := httpSubmit(t, dp.url, spec, "job-queued-a")
	queuedB, _ := httpSubmit(t, dp.url, spec, "job-queued-b")

	vst := waitRunningWithCheckpoint(t, dp.url, victim.ID, 2*time.Minute)
	workerPID := vst.PID

	// The crash: SIGKILL the daemon, then SIGKILL its orphan worker too,
	// so recovery must take the reap-and-respawn path (adoption has its
	// own test).
	dp.kill()
	syscall.Kill(workerPID, syscall.SIGKILL)

	dp2 := startDaemonProc(t, dir)

	// Idempotent resubmit across the crash: same key, original job back,
	// 200 not 202, and no fourth copy of the workload admitted.
	rest, code := httpSubmit(t, dp2.url, spec, "job-queued-a")
	if code != http.StatusOK {
		t.Fatalf("idempotent resubmit: %d, want 200", code)
	}
	if rest.ID != queuedA.ID {
		t.Fatalf("idempotent resubmit returned job %s, original was %s", rest.ID, queuedA.ID)
	}

	// Every job reaches a terminal state with bit-identical output.
	for _, id := range []string{victim.ID, queuedA.ID, queuedB.ID} {
		fin := waitHTTPJob(t, dp2.url, id, 4*time.Minute)
		if fin.State != StateDone {
			t.Fatalf("job %s did not recover: %s %s: %s", id, fin.State, fin.Kind, fin.Error)
		}
		if fin.Result.Console != clean.Console {
			t.Fatalf("job %s console differs after crash recovery:\nclean:\n%s\ngot:\n%s",
				id, clean.Console, fin.Result.Console)
		}
		if fin.Result.ConsoleFNV != clean.ConsoleFNV ||
			fin.Result.Cycles != clean.Cycles || fin.Result.Insns != clean.Insns {
			t.Fatalf("job %s not bit-identical: cycles %d vs %d, insns %d vs %d",
				id, fin.Result.Cycles, clean.Cycles, fin.Result.Insns, clean.Insns)
		}
	}

	// The pre-crash done job was preserved, not re-run.
	doneAfter := httpJob(t, dp2.url, doneJob.ID)
	if doneAfter.State != StateDone || doneAfter.Result == nil ||
		doneAfter.Result.ConsoleFNV != preCrashFNV {
		t.Fatalf("pre-crash done job mangled by recovery: %+v", doneAfter)
	}

	// Nothing lost, nothing duplicated.
	resp, err := http.Get(dp2.url + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all []Status
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("job count after crash recovery: %d, want 4", len(all))
	}
}

// TestDaemonRestartAdoptsLiveOrphan: SIGKILL the daemon while its
// worker survives. The restarted daemon must adopt the orphan — the
// same worker process finishes the job, with no respawn.
func TestDaemonRestartAdoptsLiveOrphan(t *testing.T) {
	// A longer workload than killSpec so the worker comfortably outlives
	// the daemon restart gap.
	spec := Spec{Scale: "bench", NFiles: 4, FileSize: 8192, Seed: 13, Change: 0.5,
		Timer: 4_000_000_000, MaxCycles: -1, CheckpointCycles: 25_000}

	dir := t.TempDir()
	dp := startDaemonProc(t, dir)
	st, code := httpSubmit(t, dp.url, spec, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	run := waitRunningWithCheckpoint(t, dp.url, st.ID, 2*time.Minute)
	workerPID := run.PID

	dp.kill()
	// The worker is now an orphan — and must still be alive.
	if err := syscall.Kill(workerPID, 0); err != nil {
		t.Fatalf("worker %d died with the daemon: %v", workerPID, err)
	}

	dp2 := startDaemonProc(t, dir)

	// While the job runs under the new daemon, its PID must stay the
	// orphan's — a respawn (new pid) means adoption failed.
	deadline := time.Now().Add(4 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("adopted job never finished")
		}
		cur := httpJob(t, dp2.url, st.ID)
		if cur.State == StateDone || cur.State == StateFailed {
			break
		}
		if cur.PID > 0 && cur.PID != workerPID {
			t.Fatalf("job respawned with pid %d instead of adopting %d", cur.PID, workerPID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	fin := httpJob(t, dp2.url, st.ID)
	if fin.State != StateDone {
		t.Fatalf("adopted job failed: %s %s: %s", fin.State, fin.Kind, fin.Error)
	}
	if !fin.Adopted {
		t.Fatal("job finished without the adoption marker — the worker was respawned")
	}
	if fin.Attempts != 1 {
		t.Fatalf("adoption must not burn an attempt: %d attempts", fin.Attempts)
	}
	if !strings.Contains(fin.Result.Console, "rsync ok") {
		t.Fatalf("adopted run missing success marker:\n%s", fin.Result.Console)
	}
}

// TestStalePidReapedNeverSignalled covers the pid-reuse guard: the
// store records a running worker whose pid is now owned by an unrelated
// process (this test process, with a fabricated start time). Recovery
// must NOT signal the pid — killing an innocent process — and must
// respawn the job from scratch.
func TestStalePidReapedNeverSignalled(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenJobStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	if _, err := s.Append(Record{Op: opAccept, Job: "0001", Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	// Our own pid with a wrong start time: the classic pid-reuse shape.
	// If the daemon signals it, this test process dies — the strongest
	// possible assertion that it must not.
	if _, err := s.Append(Record{Op: opStart, Job: "0001", Attempt: 1,
		PID: os.Getpid(), PIDStart: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	d, err := New(Config{
		Dir:              dir,
		WorkerCommand:    selfWorker(t),
		Workers:          1,
		PollInterval:     10 * time.Millisecond,
		HeartbeatTimeout: 30 * time.Second,
		Deadline:         5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := d.Recovery(); rec.Resumed != 1 {
		t.Fatalf("recovery: %+v, want 1 resumed", rec)
	}
	d.Start()

	fin := waitJob(t, d, "0001", 2*time.Minute)
	if fin.State != StateDone {
		t.Fatalf("reaped job did not finish: %s %s: %s", fin.State, fin.Kind, fin.Error)
	}
	if fin.Adopted {
		t.Fatal("a reused pid was adopted — the start-time guard failed")
	}
	if !strings.Contains(fin.Result.Console, "rsync ok") {
		t.Fatalf("respawned run missing success marker:\n%s", fin.Result.Console)
	}
	if n := d.Counters()["jobd.jobs.reaped"]; n != 1 {
		t.Fatalf("jobd.jobs.reaped = %d, want 1", n)
	}
}

// TestIdempotencyAcrossRestartInProcess: the idempotency mapping is
// durable — a key accepted by one daemon incarnation dedupes in the
// next, even for a job that already finished.
func TestIdempotencyAcrossRestartInProcess(t *testing.T) {
	dir := t.TempDir()
	mkDaemon := func() *Daemon {
		d, err := New(Config{
			Dir:              dir,
			WorkerCommand:    selfWorker(t),
			Workers:          1,
			PollInterval:     10 * time.Millisecond,
			HeartbeatTimeout: 30 * time.Second,
			Deadline:         5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		return d
	}
	d1 := mkDaemon()
	st, dup, err := d1.SubmitKey(smallSpec(), "the-key")
	if err != nil || dup {
		t.Fatalf("first submit: dup=%v err=%v", dup, err)
	}
	fin := waitJob(t, d1, st.ID, 2*time.Minute)
	if fin.State != StateDone {
		t.Fatalf("job failed: %s", fin.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	d1.Drain(ctx)
	cancel()

	d2 := mkDaemon()
	st2, dup, err := d2.SubmitKey(smallSpec(), "the-key")
	if err != nil || !dup {
		t.Fatalf("resubmit after restart: dup=%v err=%v", dup, err)
	}
	if st2.ID != st.ID || st2.State != StateDone {
		t.Fatalf("resubmit returned %s/%s, want original %s done", st2.ID, st2.State, st.ID)
	}
	if st2.Result == nil || st2.Result.ConsoleFNV != fin.Result.ConsoleFNV {
		t.Fatal("recovered duplicate lost the original result")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	d2.Drain(ctx2)
	cancel2()
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id   int64
	op   string
	data Record
}

// readSSE consumes an event stream until it closes.
func readSSE(t *testing.T, r *http.Response) []sseEvent {
	t.Helper()
	defer r.Body.Close()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.op != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.ParseInt(line[4:], 10, 64)
		case strings.HasPrefix(line, "event: "):
			cur.op = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return out
}

// TestEventsStreamReplaysAcrossRestart: /jobs/{id}/events streams the
// job's WAL records live, and — because the stream is replayed from the
// durable store — a client reconnecting after a daemon restart with
// Last-Event-ID resumes without losing records.
func TestEventsStreamReplaysAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	mkDaemon := func() *Daemon {
		d, err := New(Config{
			Dir:              dir,
			WorkerCommand:    selfWorker(t),
			Workers:          1,
			PollInterval:     10 * time.Millisecond,
			HeartbeatTimeout: 30 * time.Second,
			Deadline:         5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		return d
	}
	d1 := mkDaemon()
	srv := httptest.NewServer(d1.Handler())
	defer srv.Close()

	if resp, err := http.Get(srv.URL + "/jobs/9999/events"); err != nil ||
		resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job: %v %v", resp.StatusCode, err)
	}

	st, err := d1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Live stream: subscribe while the job runs, read until the terminal
	// record closes the stream.
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	events := readSSE(t, resp)
	if len(events) < 3 {
		t.Fatalf("stream too short: %+v", events)
	}
	ops := map[string]bool{}
	var lastSeq int64
	for _, ev := range events {
		ops[ev.op] = true
		if ev.id <= lastSeq {
			t.Fatalf("event ids not increasing: %d after %d", ev.id, lastSeq)
		}
		lastSeq = ev.id
	}
	for _, want := range []string{"accept", "start", "done"} {
		if !ops[want] {
			t.Fatalf("stream missing %q record: %v", want, ops)
		}
	}
	final := events[len(events)-1]
	if final.op != "done" || final.data.Result == nil {
		t.Fatalf("stream did not end at the terminal record: %+v", final)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	d1.Drain(ctx)
	cancel()

	// Restart: a client that saw everything but the terminal record
	// reconnects with Last-Event-ID and gets exactly the rest.
	d2 := mkDaemon()
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	req, _ := http.NewRequest("GET", srv2.URL+"/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatInt(events[len(events)-2].id, 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, resp2)
	if len(replay) != 1 || replay[0].op != "done" || replay[0].id != final.id {
		t.Fatalf("reconnect replay wrong: %+v", replay)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	d2.Drain(ctx2)
	cancel2()
}

// TestDaemonSIGKILLRecoveryMultiTenantBacklog is the multi-tenant
// acceptance test: SIGKILL the daemon with a mixed-priority backlog
// from two tenants, restart it, and the replayed admission queue must
// restore both the intended dequeue order (priority within tenant) and
// the per-tenant quota accounting — a tenant at its queued quota before
// the crash is still rejected after it. Stub sleep-workers keep the
// backlog pinned so every assertion is race-free.
func TestDaemonSIGKILLRecoveryMultiTenantBacklog(t *testing.T) {
	t.Setenv("PTLSERVE_DAEMON_TQUEUED", "2")
	t.Setenv("PTLSERVE_DAEMON_SLEEPWORKER", "1")
	dir := t.TempDir()
	dp := startDaemonProc(t, dir)

	// The blocker occupies the single worker slot; everything behind it
	// stays queued.
	blocker := Spec{Tenant: "alpha", Seed: 100}
	bst, code := httpSubmit(t, dp.url, blocker, "job-blocker")
	if code != http.StatusAccepted {
		t.Fatalf("submit blocker: %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	var workerPID int
	for {
		st := httpJob(t, dp.url, bst.ID)
		if st.State == StateRunning && st.PID > 0 {
			workerPID = st.PID
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Mixed-priority backlog: two queued per tenant (each tenant exactly
	// at its quota of 2), priorities deliberately admitted low-first.
	a1, _ := httpSubmit(t, dp.url, Spec{Tenant: "alpha", Priority: 1, Seed: 101}, "job-a1")
	a5, _ := httpSubmit(t, dp.url, Spec{Tenant: "alpha", Priority: 5, Seed: 102}, "job-a5")
	b2, _ := httpSubmit(t, dp.url, Spec{Tenant: "beta", Priority: 2, Seed: 201}, "job-b2")
	b9, _ := httpSubmit(t, dp.url, Spec{Tenant: "beta", Priority: 9, Seed: 202}, "job-b9")
	// Quota is live pre-crash.
	if _, code := httpSubmit(t, dp.url, Spec{Tenant: "alpha", Seed: 103}, "job-a-over"); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota pre-crash submit: %d, want 429", code)
	}

	dp.kill()
	syscall.Kill(workerPID, syscall.SIGKILL)

	dp2 := startDaemonProc(t, dir)

	// The single pool worker pops exactly one backlog job. Stride
	// scheduling breaks the fresh-start tie to tenant alpha, and the
	// replayed heap must hand out alpha's priority-5 job — not the
	// priority-1 job admitted before it.
	deadline = time.Now().Add(30 * time.Second)
	for {
		st := httpJob(t, dp2.url, a5.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("a5 not dispatched after restart (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := httpJob(t, dp2.url, a1.ID); st.State != StateQueued {
		t.Fatalf("priority inversion after replay: a1 is %s, a5 should run first", st.State)
	}
	for _, id := range []string{b2.ID, b9.ID} {
		if st := httpJob(t, dp2.url, id); st.State != StateQueued {
			t.Fatalf("beta job %s is %s, want queued behind the single worker", id, st.State)
		}
	}
	// The blocker was re-staged as running (adopt-or-respawn), not
	// requeued — its tenant's running slot survived the crash.
	if st := httpJob(t, dp2.url, bst.ID); st.State != StateRunning {
		t.Fatalf("blocker is %s after restart, want running", st.State)
	}

	// Per-tenant quota accounting replayed: beta still holds 2 queued →
	// at quota; alpha drained one (a5 popped) → one slot free, then full
	// again.
	if _, code := httpSubmit(t, dp2.url, Spec{Tenant: "beta", Seed: 203}, "job-b-over"); code != http.StatusTooManyRequests {
		t.Fatalf("beta over-quota submit after restart: %d, want 429", code)
	}
	if _, code := httpSubmit(t, dp2.url, Spec{Tenant: "alpha", Seed: 104}, "job-a-refill"); code != http.StatusAccepted {
		t.Fatalf("alpha refill submit after restart: %d, want 202", code)
	}
	if _, code := httpSubmit(t, dp2.url, Spec{Tenant: "alpha", Seed: 105}, "job-a-over2"); code != http.StatusTooManyRequests {
		t.Fatalf("alpha second over-quota submit: %d, want 429", code)
	}

	// Idempotent replay across the crash: original job back, no dup.
	re, code := httpSubmit(t, dp2.url, Spec{Tenant: "alpha", Priority: 1, Seed: 101}, "job-a1")
	if code != http.StatusOK || re.ID != a1.ID {
		t.Fatalf("idempotent resubmit: %d job %s, want 200 job %s", code, re.ID, a1.ID)
	}

	// Nothing lost, nothing duplicated: blocker + 4 backlog + 1 refill.
	resp, err := http.Get(dp2.url + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all []Status
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("job count after crash recovery: %d, want 6", len(all))
	}
}

// TestRetryAfterReflectsDrainRate: once job latency is measured, the
// 429 Retry-After header is computed from the queue drain rate instead
// of the configured constant.
func TestRetryAfterReflectsDrainRate(t *testing.T) {
	d := newDaemon(t, nil, func(cfg *Config) {
		cfg.WorkerCommand = func(string) *exec.Cmd { return exec.Command("sleep", "60") }
		cfg.QueueDepth = 1
		cfg.RetryAfter = 2 * time.Second
	})
	defer drainDaemon(t, d)

	// No samples yet: the configured constant.
	if got := d.RetryAfter(); got != 2*time.Second {
		t.Fatalf("unmeasured RetryAfter = %v, want 2s", got)
	}

	// Measured: p50 of 3s, one queued job, one worker → two drain
	// cycles → 6s.
	for i := 0; i < 3; i++ {
		d.noteLatency(3000)
	}
	first, err := d.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		st, _ := d.Job(first.ID)
		if st.State == StateRunning {
			break
		}
		if i > 2000 {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := d.Submit(Spec{Seed: 2}); err != nil {
		t.Fatalf("second job should queue: %v", err)
	}
	if got := d.RetryAfter(); got != 6*time.Second {
		t.Fatalf("measured RetryAfter = %v, want 6s", got)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full POST: %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "6" {
		t.Fatalf("Retry-After = %q, want 6", ra)
	}
	if got := d.Counters()["jobd.retry_after_ms"]; got != 6000 {
		t.Fatalf("jobd.retry_after_ms = %d", got)
	}

	// The estimate is clamped: absurd p50s do not produce absurd hints.
	for i := 0; i < 256; i++ {
		d.noteLatency(100 * 60 * 1000)
	}
	if got := d.RetryAfter(); got != 5*time.Minute {
		t.Fatalf("clamped RetryAfter = %v, want 5m", got)
	}
}
