package jobd

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func mkJob(tenant string, pri int) *job {
	return &job{spec: Spec{Tenant: tenant, Priority: pri}}
}

// TestAdmitQueuePriorityOrder: within one tenant, higher priority pops
// first; equal priorities stay FIFO in admission order.
func TestAdmitQueuePriorityOrder(t *testing.T) {
	q := newAdmitQueue(TenantPolicy{}, nil, nil)
	first5 := mkJob("", 5)
	second5 := mkJob("", 5)
	for _, j := range []*job{mkJob("", 1), first5, mkJob("", 3), second5} {
		q.push(j)
	}
	wantPri := []int{5, 5, 3, 1}
	var got []*job
	for range wantPri {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop returned closed on a non-empty queue")
		}
		got = append(got, j)
	}
	for i, j := range got {
		if j.spec.Priority != wantPri[i] {
			t.Fatalf("pop %d: priority %d, want %d", i, j.spec.Priority, wantPri[i])
		}
	}
	if got[0] != first5 || got[1] != second5 {
		t.Fatal("equal priorities did not pop in admission order")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

// TestAdmitQueueWeightedFairness: stride scheduling splits dequeues by
// weight under contention — a weight-3 tenant gets 3 of every 4 slots
// against a weight-1 tenant, regardless of job priorities.
func TestAdmitQueueWeightedFairness(t *testing.T) {
	q := newAdmitQueue(TenantPolicy{}, map[string]TenantPolicy{
		"greedy": {Weight: 3},
	}, nil)
	for i := 0; i < 8; i++ {
		// The greedy tenant even marks everything max priority — priority
		// must not buy cross-tenant share.
		q.push(mkJob("greedy", 9))
		q.push(mkJob("meek", 0))
	}
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("unexpected close")
		}
		counts[j.spec.Tenant]++
	}
	if counts["greedy"] != 6 || counts["meek"] != 2 {
		t.Fatalf("8 pops split %v, want greedy:6 meek:2", counts)
	}
}

// TestAdmitQueueRunningCap: a tenant at its MaxRunning quota is
// ineligible — pop blocks rather than handing out its jobs, and a
// done() releasing the slot unblocks it.
func TestAdmitQueueRunningCap(t *testing.T) {
	q := newAdmitQueue(TenantPolicy{}, map[string]TenantPolicy{
		"capped": {MaxRunning: 1},
	}, nil)
	q.push(mkJob("capped", 0))
	q.push(mkJob("capped", 0))
	if _, ok := q.pop(); !ok {
		t.Fatal("first pop failed")
	}

	popped := make(chan *job, 1)
	go func() {
		j, _ := q.pop()
		popped <- j
	}()
	select {
	case <-popped:
		t.Fatal("pop handed out a job past the tenant's running cap")
	case <-time.After(50 * time.Millisecond):
	}
	q.done("capped")
	select {
	case j := <-popped:
		if j == nil {
			t.Fatal("pop returned closed, want a job")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop still blocked after done() released the slot")
	}

	// Close with an empty queue: poppers get a clean false.
	q.done("capped")
	q.close()
	if j, ok := q.pop(); ok {
		t.Fatalf("pop after close+drain returned job %+v", j)
	}
}

// TestTenantQuotaBackpressure: per-tenant queued quotas reject at
// admission with a tenant-scoped 429, without touching other tenants
// or the global queue.
func TestTenantQuotaBackpressure(t *testing.T) {
	d := newDaemon(t, nil, func(cfg *Config) {
		cfg.WorkerCommand = func(string) *exec.Cmd { return exec.Command("sleep", "60") }
		cfg.TenantMaxQueued = 1
	})
	defer drainDaemon(t, d)

	first, err := d.Submit(Spec{Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		st, _ := d.Job(first.ID)
		if st.State == StateRunning {
			break
		}
		if i > 2000 {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := d.Submit(Spec{Tenant: "alpha", Seed: 2}); err != nil {
		t.Fatalf("second alpha job should queue: %v", err)
	}
	if _, err := d.Submit(Spec{Tenant: "alpha", Seed: 3}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third alpha job: %v, want ErrTenantQuota", err)
	}
	// Another tenant is untouched by alpha's quota.
	if _, err := d.Submit(Spec{Tenant: "beta", Seed: 4}); err != nil {
		t.Fatalf("beta job should queue: %v", err)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"tenant":"alpha","seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota POST: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 missing Retry-After")
	}
	if n := d.Counters()["jobd.rejected.tenant_quota"]; n != 2 {
		t.Fatalf("jobd.rejected.tenant_quota = %d, want 2", n)
	}
	if q, r := d.queue.tenantLoad("alpha"); q != 1 || r != 1 {
		t.Fatalf("alpha load queued=%d running=%d, want 1/1", q, r)
	}
}

// TestDeadlineShedAtAdmission: a job whose client deadline is shorter
// than the estimated queue wait is rejected at admission — and the
// estimate fails open while the latency ring is cold.
func TestDeadlineShedAtAdmission(t *testing.T) {
	d := newDaemon(t, nil, func(cfg *Config) {
		cfg.WorkerCommand = func(string) *exec.Cmd { return exec.Command("sleep", "60") }
	})
	defer drainDaemon(t, d)

	// Cold ring: no wait estimate, an aggressive deadline is admitted.
	first, err := d.Submit(Spec{ClientDeadlineMs: 1})
	if err != nil {
		t.Fatalf("cold-ring submit should fail open: %v", err)
	}
	for i := 0; ; i++ {
		st, _ := d.Job(first.ID)
		if st.State == StateRunning {
			break
		}
		if i > 2000 {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := d.Submit(Spec{Seed: 2}); err != nil {
		t.Fatal(err)
	}

	// Measured p50 3s, one queued job, one worker → estimated wait 6s.
	for i := 0; i < 3; i++ {
		d.noteLatency(3000)
	}
	if _, err := d.Submit(Spec{Seed: 3, ClientDeadlineMs: 1000}); !errors.Is(err, ErrDeadlineShed) {
		t.Fatalf("1s-deadline submit: %v, want ErrDeadlineShed", err)
	}
	if _, err := d.Submit(Spec{Seed: 4, ClientDeadlineMs: 60_000}); err != nil {
		t.Fatalf("60s-deadline submit should pass: %v", err)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"seed":5,"client_deadline_ms":500}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed POST: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 429 missing Retry-After")
	}
	if n := d.Counters()["jobd.jobs.shed"]; n != 2 {
		t.Fatalf("jobd.jobs.shed = %d, want 2", n)
	}
}

// TestRetryAfterWarmAfterRestart: the completed-job latency ring is
// re-seeded from the store on recovery, so the first 429 after a
// restart carries the measured drain rate, not the configured
// cold-start constant.
func TestRetryAfterWarmAfterRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenJobStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three completed jobs, 4s submit→finish each, at controlled times.
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := base
	s.now = func() time.Time { return clock }
	for i := 0; i < 3; i++ {
		id := []string{"0001", "0002", "0003"}[i]
		spec := Spec{Seed: int64(i + 1)}
		clock = base.Add(time.Duration(i) * 10 * time.Second)
		if _, err := s.Append(Record{Op: opAccept, Job: id, Spec: &spec}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(Record{Op: opStart, Job: id, Attempt: 1, PID: 1, PIDStart: 1}); err != nil {
			t.Fatal(err)
		}
		clock = clock.Add(4 * time.Second)
		if _, err := s.Append(Record{Op: opDone, Job: id, Result: &Result{}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	d, err := New(Config{
		Dir:              dir,
		WorkerCommand:    func(string) *exec.Cmd { return exec.Command("sleep", "60") },
		Workers:          1,
		QueueDepth:       8,
		PollInterval:     10 * time.Millisecond,
		HeartbeatTimeout: 30 * time.Second,
		Deadline:         5 * time.Minute,
		RetryAfter:       2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer drainDaemon(t, d)

	if rec := d.Recovery(); rec.Terminal != 3 {
		t.Fatalf("recovery %+v, want 3 terminal", rec)
	}
	// Warm ring: p50 4s, empty queue, one worker → one drain cycle.
	// The cold-ring constant (2s) must NOT surface.
	if got := d.RetryAfter(); got != 4*time.Second {
		t.Fatalf("post-recovery RetryAfter = %v, want 4s (seeded ring)", got)
	}
	// The wait estimate is warm too, so deadline shedding works from
	// the first post-restart submission.
	if est := d.estimatedWaitMs(); est != 4000 {
		t.Fatalf("post-recovery estimatedWaitMs = %d, want 4000", est)
	}
}
