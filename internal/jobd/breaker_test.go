package jobd

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(2, time.Minute)
	b.now = func() time.Time { return clock }
	const key = uint64(0xbeef)

	if err := b.Allow(key); err != nil {
		t.Fatalf("fresh key rejected: %v", err)
	}
	if b.Failure(key) {
		t.Fatal("opened below threshold")
	}
	if err := b.Allow(key); err != nil {
		t.Fatalf("rejected below threshold: %v", err)
	}
	if !b.Failure(key) {
		t.Fatal("did not open at threshold")
	}
	if err := b.Allow(key); err == nil {
		t.Fatal("open breaker admitted a job")
	}
	if err := b.Allow(0xf00d); err != nil {
		t.Fatalf("unrelated key rejected: %v", err)
	}

	// Cooldown elapses: one half-open probe is admitted, and because
	// the failure streak is kept, its failure re-opens immediately.
	clock = clock.Add(2 * time.Minute)
	if err := b.Allow(key); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if !b.Failure(key) {
		t.Fatal("failed probe did not re-open")
	}
	if err := b.Allow(key); err == nil {
		t.Fatal("re-opened breaker admitted a job")
	}

	// A success closes it completely.
	clock = clock.Add(2 * time.Minute)
	if err := b.Allow(key); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success(key)
	if b.Failure(key) {
		t.Fatal("single failure after success re-opened (streak not reset)")
	}
}

func TestBreakerZeroCooldownStaysOpen(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(1, 0)
	b.now = func() time.Time { return clock }
	b.Failure(7)
	clock = clock.Add(24 * time.Hour * 365)
	if err := b.Allow(7); err == nil {
		t.Fatal("zero-cooldown breaker re-admitted")
	}
	b.Success(7)
	if err := b.Allow(7); err != nil {
		t.Fatalf("explicit success did not close: %v", err)
	}
}
