package jobd

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(2, time.Minute)
	b.now = func() time.Time { return clock }
	const key = uint64(0xbeef)

	if err := b.Allow(key); err != nil {
		t.Fatalf("fresh key rejected: %v", err)
	}
	if b.Failure(key) {
		t.Fatal("opened below threshold")
	}
	if err := b.Allow(key); err != nil {
		t.Fatalf("rejected below threshold: %v", err)
	}
	if !b.Failure(key) {
		t.Fatal("did not open at threshold")
	}
	if err := b.Allow(key); err == nil {
		t.Fatal("open breaker admitted a job")
	}
	if err := b.Allow(0xf00d); err != nil {
		t.Fatalf("unrelated key rejected: %v", err)
	}

	// Cooldown elapses: one half-open probe is admitted, and because
	// the failure streak is kept, its failure re-opens immediately.
	clock = clock.Add(2 * time.Minute)
	if err := b.Allow(key); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if !b.Failure(key) {
		t.Fatal("failed probe did not re-open")
	}
	if err := b.Allow(key); err == nil {
		t.Fatal("re-opened breaker admitted a job")
	}

	// A success closes it completely.
	clock = clock.Add(2 * time.Minute)
	if err := b.Allow(key); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success(key)
	if b.Failure(key) {
		t.Fatal("single failure after success re-opened (streak not reset)")
	}
}

// TestBreakerHalfOpenSingleProbe: once the cooldown elapses, exactly
// one submission becomes the probe — a concurrent second submission
// must be rejected while the probe is in flight, not ride along as a
// shadow probe whose failure would double-count.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(1, time.Minute)
	b.now = func() time.Time { return clock }
	const key = uint64(0xcafe)

	b.Failure(key)
	clock = clock.Add(2 * time.Minute)

	probe, err := b.AllowProbe(key)
	if err != nil || !probe {
		t.Fatalf("first post-cooldown submission not the probe: probe=%v err=%v", probe, err)
	}
	// Concurrent second submission while the probe is in flight.
	if _, err := b.AllowProbe(key); err == nil ||
		!strings.Contains(err.Error(), "probe in flight") {
		t.Fatalf("second submission admitted alongside the probe: %v", err)
	}
	// Time passing does not admit more probes while one is in flight.
	clock = clock.Add(10 * time.Minute)
	if _, err := b.AllowProbe(key); err == nil {
		t.Fatal("probe slot leaked after more cooldown time")
	}

	// The probe succeeds: breaker closes, everyone is admitted again.
	b.Success(key)
	if probe, err := b.AllowProbe(key); err != nil || probe {
		t.Fatalf("closed breaker still probing: probe=%v err=%v", probe, err)
	}
}

// TestBreakerProbeSettledReleasesSlot: a probe that ends without a
// verdict (interrupted by a drain) must release the slot so the next
// submission probes, rather than wedging the config half-open forever.
func TestBreakerProbeSettledReleasesSlot(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(1, time.Minute)
	b.now = func() time.Time { return clock }
	const key = uint64(0xd00d)

	b.Failure(key)
	clock = clock.Add(2 * time.Minute)
	if probe, err := b.AllowProbe(key); err != nil || !probe {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.ProbeSettled(key)
	// The slot is free again: the next submission is the new probe.
	probe, err := b.AllowProbe(key)
	if err != nil || !probe {
		t.Fatalf("slot not released: probe=%v err=%v", probe, err)
	}
	// And a failed probe re-opens immediately for a fresh cooldown.
	if !b.Failure(key) {
		t.Fatal("failed probe did not re-open")
	}
	if _, err := b.AllowProbe(key); err == nil {
		t.Fatal("re-opened breaker admitted")
	}
}

// TestBreakerHalfOpenConcurrentSubmissions drives the race through the
// daemon path: many goroutines submit the tripped config the instant
// the cooldown elapses; exactly one may be admitted as the probe.
func TestBreakerHalfOpenConcurrentSubmissions(t *testing.T) {
	clock := time.Unix(1000, 0)
	var clockMu sync.Mutex
	b := NewBreaker(1, time.Minute)
	b.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	const key = uint64(0xfeed)
	b.Failure(key)
	clockMu.Lock()
	clock = clock.Add(2 * time.Minute)
	clockMu.Unlock()

	const n = 16
	var admitted, probes int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probe, err := b.AllowProbe(key)
			if err == nil {
				atomic.AddInt32(&admitted, 1)
				if probe {
					atomic.AddInt32(&probes, 1)
				}
			}
		}()
	}
	wg.Wait()
	if admitted != 1 || probes != 1 {
		t.Fatalf("half-open admitted %d job(s), %d probe(s); want exactly 1/1", admitted, probes)
	}
}

func TestBreakerZeroCooldownStaysOpen(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(1, 0)
	b.now = func() time.Time { return clock }
	b.Failure(7)
	clock = clock.Add(24 * time.Hour * 365)
	if err := b.Allow(7); err == nil {
		t.Fatal("zero-cooldown breaker re-admitted")
	}
	b.Success(7)
	if err := b.Allow(7); err != nil {
		t.Fatalf("explicit success did not close: %v", err)
	}
}
