package jobd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ptlsim/internal/supervisor"
)

// TestMain doubles as the worker entry point: the daemon under test
// re-execs this test binary with PTLSERVE_WORKER_DIR set, exactly as
// cmd/ptlserve re-execs itself with -ptlserve-worker. That keeps the
// e2e tests honest — workers really are separate processes that can be
// SIGKILL'd without touching the daemon.
// It also doubles as a daemon entry point: PTLSERVE_DAEMON_DIR runs a
// full daemon + HTTP server on that data directory (daemonMain in
// restart_test.go), so the restart tests can SIGKILL a real daemon
// process — not a goroutine — and prove recovery from the job store.
func TestMain(m *testing.M) {
	if dir := os.Getenv("PTLSERVE_WORKER_DIR"); dir != "" {
		os.Exit(WorkerMain(dir, os.Stderr))
	}
	if dir := os.Getenv("PTLSERVE_DAEMON_DIR"); dir != "" {
		os.Exit(daemonMain(dir))
	}
	os.Exit(m.Run())
}

// selfWorker builds WorkerCommand funcs that re-exec the test binary in
// worker mode.
func selfWorker(t *testing.T) func(string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(jobDir string) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = []string{"PTLSERVE_WORKER_DIR=" + jobDir}
		return cmd
	}
}

// syncBuffer is a goroutine-safe journal sink for tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) entries(t *testing.T) []supervisor.Entry {
	t.Helper()
	s.mu.Lock()
	data := append([]byte(nil), s.b.Bytes()...)
	s.mu.Unlock()
	es, err := supervisor.ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	return es
}

func newDaemon(t *testing.T, jb *syncBuffer, mut func(*Config)) *Daemon {
	t.Helper()
	cfg := Config{
		Dir:              t.TempDir(),
		WorkerCommand:    selfWorker(t),
		Workers:          1,
		QueueDepth:       8,
		PollInterval:     10 * time.Millisecond,
		HeartbeatTimeout: 30 * time.Second,
		Deadline:         5 * time.Minute,
	}
	if jb != nil {
		cfg.Journal = jb
	}
	if mut != nil {
		mut(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	return d
}

// smallSpec is the quick end-to-end workload (one file, one round trip;
// finishes in well under a second of wall clock).
func smallSpec() Spec {
	return Spec{Scale: "bench", NFiles: 1, FileSize: 1024, Seed: 5, Change: 0.4,
		Timer: 4_000_000_000, MaxCycles: -1, CheckpointCycles: 50_000}
}

// killSpec is a longer workload with a tight checkpoint cadence: plenty
// of rotation slots land before it finishes, which gives the SIGKILL
// test a wide window to murder the worker mid-run.
func killSpec() Spec {
	return Spec{Scale: "bench", NFiles: 2, FileSize: 4096, Seed: 9, Change: 0.5,
		Timer: 4_000_000_000, MaxCycles: -1, CheckpointCycles: 25_000}
}

func waitJob(t *testing.T, d *Daemon, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := d.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := d.Job(id)
	t.Fatalf("job %s did not finish in %v (state %s, kind %s, err %q)",
		id, timeout, st.State, st.Kind, st.Error)
	return Status{}
}

// drainDaemon force-stops a daemon whose stub workers never finish: an
// already-cancelled drain context goes straight to SIGTERM/SIGKILL.
func drainDaemon(t *testing.T, d *Daemon) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d.Drain(ctx)
}

func TestJobCompletes(t *testing.T) {
	jb := &syncBuffer{}
	d := newDaemon(t, jb, nil)
	st, err := d.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, d, st.ID, 2*time.Minute)
	if fin.State != StateDone {
		t.Fatalf("state %s, kind %s: %s", fin.State, fin.Kind, fin.Error)
	}
	if fin.Result == nil {
		t.Fatal("done job has no result")
	}
	if !strings.Contains(fin.Result.Console, "rsync ok") {
		t.Fatalf("guest console missing success marker:\n%s", fin.Result.Console)
	}
	if got := consoleFNV(fin.Result.Console); got != fin.Result.ConsoleFNV {
		t.Fatalf("console FNV mismatch: %#x vs %#x", got, fin.Result.ConsoleFNV)
	}
	if fin.Attempts != 1 {
		t.Fatalf("clean job took %d attempts", fin.Attempts)
	}
	// The worker checkpointed into the job dir; the slots must be
	// intact (this is also what a respawn would restore from).
	slots, _ := filepath.Glob(filepath.Join(fin.Dir, ckptSubdir, "*.ckpt"))
	if len(slots) == 0 {
		t.Fatal("no rotation slots in job dir")
	}

	// HTTP view of the same job.
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", st.ID, resp.StatusCode)
	}
	var hst Status
	if err := json.NewDecoder(resp.Body).Decode(&hst); err != nil {
		t.Fatal(err)
	}
	if hst.State != StateDone || hst.Result == nil || hst.Result.ConsoleFNV != fin.Result.ConsoleFNV {
		t.Fatalf("HTTP status disagrees with daemon: %+v", hst)
	}
	if resp, err := http.Get(srv.URL + "/jobs/9999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /jobs/9999: %v %v", resp.StatusCode, err)
	}

	// Journal: submit → start → done, in the shared entry format.
	var sawSubmit, sawStart, sawDone bool
	for _, e := range jb.entries(t) {
		switch e.Event {
		case supervisor.EventJobSubmit:
			sawSubmit = true
		case supervisor.EventJobStart:
			sawStart = e.PID > 0
		case supervisor.EventJobDone:
			sawDone = e.Job == st.ID && e.Insns > 0
		}
	}
	if !sawSubmit || !sawStart || !sawDone {
		t.Fatalf("journal missing lifecycle events: submit=%v start=%v done=%v",
			sawSubmit, sawStart, sawDone)
	}
}

// TestWorkerKilledMidJobResumesBitIdentical is the acceptance test for
// the isolation tentpole: SIGKILL a worker mid-run (from outside — the
// daemon has no idea it is coming), and the job must still finish, by
// respawn + restore from the rotated checkpoint directory, with guest
// output bit-identical to an unkilled run. A second job queued behind
// the victim must be unaffected.
func TestWorkerKilledMidJobResumesBitIdentical(t *testing.T) {
	spec := killSpec()

	// Reference: the same workload, never killed.
	clean := func() *Result {
		d := newDaemon(t, nil, nil)
		st, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		fin := waitJob(t, d, st.ID, 3*time.Minute)
		if fin.State != StateDone {
			t.Fatalf("clean run failed: %s %s", fin.Kind, fin.Error)
		}
		return fin.Result
	}()
	if !strings.Contains(clean.Console, "rsync ok") {
		t.Fatalf("clean run missing success marker:\n%s", clean.Console)
	}

	jb := &syncBuffer{}
	d := newDaemon(t, jb, nil) // Workers: 1 — the bystander queues behind the victim
	victim, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the victim's worker as soon as it has both a live PID and at
	// least one rotation slot to resume from.
	killDeadline := time.Now().Add(2 * time.Minute)
	killed := false
	for !killed {
		if time.Now().After(killDeadline) {
			t.Fatal("never caught the victim worker alive with a checkpoint slot")
		}
		st, _ := d.Job(victim.ID)
		if st.State == StateDone || st.State == StateFailed {
			t.Fatalf("victim finished (%s) before the kill landed — widen killSpec", st.State)
		}
		if st.PID > 0 {
			slots, _ := filepath.Glob(filepath.Join(st.Dir, ckptSubdir, "*.ckpt"))
			if len(slots) > 0 {
				if err := syscall.Kill(st.PID, syscall.SIGKILL); err == nil {
					killed = true
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	vfin := waitJob(t, d, victim.ID, 3*time.Minute)
	if vfin.State != StateDone {
		t.Fatalf("killed job did not recover: %s %s: %s", vfin.State, vfin.Kind, vfin.Error)
	}
	if vfin.Attempts < 2 {
		t.Fatalf("killed job finished in %d attempt(s) — the kill did not land mid-run", vfin.Attempts)
	}
	// Bit-identical guest output after the SIGKILL + resume.
	if vfin.Result.Console != clean.Console {
		t.Fatalf("resumed console differs from clean run:\nclean:\n%s\nresumed:\n%s",
			clean.Console, vfin.Result.Console)
	}
	if vfin.Result.ConsoleFNV != clean.ConsoleFNV ||
		vfin.Result.Cycles != clean.Cycles || vfin.Result.Insns != clean.Insns {
		t.Fatalf("resumed run not bit-identical: cycles %d vs %d, insns %d vs %d, fnv %#x vs %#x",
			vfin.Result.Cycles, clean.Cycles, vfin.Result.Insns, clean.Insns,
			vfin.Result.ConsoleFNV, clean.ConsoleFNV)
	}

	// The concurrently queued job is unaffected — same deterministic
	// output, one attempt.
	bfin := waitJob(t, d, bystander.ID, 3*time.Minute)
	if bfin.State != StateDone || bfin.Attempts != 1 {
		t.Fatalf("bystander affected by victim's death: state %s, %d attempts, %s",
			bfin.State, bfin.Attempts, bfin.Error)
	}
	if bfin.Result.ConsoleFNV != clean.ConsoleFNV {
		t.Fatal("bystander guest output differs from clean run")
	}

	// The death was journaled as an abnormal worker exit (panic — an
	// unexplained SIGKILL) followed by a retry.
	var sawExit, sawRetry bool
	for _, e := range jb.entries(t) {
		if e.Job != victim.ID {
			continue
		}
		if e.Event == supervisor.EventWorkerExit && e.Kind == "panic" && e.Retryable {
			sawExit = true
		}
		if e.Event == supervisor.EventJobRetry {
			sawRetry = true
		}
	}
	if !sawExit || !sawRetry {
		t.Fatalf("journal missing death/retry: worker_exit=%v job_retry=%v", sawExit, sawRetry)
	}
	if n := d.Counters()["jobd.jobs.retried"]; n < 1 {
		t.Fatalf("jobd.jobs.retried = %d", n)
	}
}

func TestDrainGraceful(t *testing.T) {
	jb := &syncBuffer{}
	d := newDaemon(t, jb, nil)
	st, err := d.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	if resp, _ := http.Get(srv.URL + "/readyz"); resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatal("readyz not ready before drain")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- d.Drain(ctx) }()

	// Admission closes immediately, well before the running job ends.
	for i := 0; d.Accepting(); i++ {
		if i > 1000 {
			t.Fatal("daemon still accepting after Drain")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := d.Submit(smallSpec()); err != ErrDraining {
		t.Fatalf("submit while draining: %v", err)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"scale":"small"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /jobs while draining: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/readyz"); resp == nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatal("readyz still ready while draining")
	}

	// The running job finishes; drain completes cleanly.
	if err := <-drained; err != nil {
		t.Fatalf("drain forced: %v", err)
	}
	fin, _ := d.Job(st.ID)
	if fin.State != StateDone {
		t.Fatalf("in-flight job lost to drain: %s %s", fin.State, fin.Error)
	}

	// The journal renders through the shared report machinery.
	var report bytes.Buffer
	supervisor.WriteReport(&report, jb.entries(t), 0)
	out := report.String()
	if !strings.Contains(out, "service drained cleanly") {
		t.Fatalf("report missing drain outcome:\n%s", out)
	}
	if !strings.Contains(out, "service:") {
		t.Fatalf("report missing service summary:\n%s", out)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	d := newDaemon(t, nil, func(cfg *Config) {
		// Stub workers that never finish: the queue stays full.
		cfg.WorkerCommand = func(string) *exec.Cmd { return exec.Command("sleep", "60") }
		cfg.QueueDepth = 1
		cfg.RetryAfter = 2 * time.Second
	})
	defer drainDaemon(t, d)

	first, err := d.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the runner to take it off the queue.
	for i := 0; ; i++ {
		st, _ := d.Job(first.ID)
		if st.State == StateRunning {
			break
		}
		if i > 2000 {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := d.Submit(Spec{Seed: 2}); err != nil {
		t.Fatalf("second job should queue: %v", err)
	}
	if _, err := d.Submit(Spec{Seed: 3}); err != ErrQueueFull {
		t.Fatalf("third job should hit backpressure, got %v", err)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"seed":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full POST: %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q", ra)
	}
	// Bad specs are a 422, not a 429 — validation happens first.
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"scale":"galactic"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad-spec POST: %d", resp.StatusCode)
	}
}

func TestDeadlineTimeoutClassification(t *testing.T) {
	d := newDaemon(t, nil, func(cfg *Config) {
		cfg.WorkerCommand = func(string) *exec.Cmd { return exec.Command("sleep", "60") }
	})
	defer drainDaemon(t, d)

	// No respawn budget: the timeout is terminal and visible.
	st, err := d.Submit(Spec{DeadlineMs: 150, Restarts: -1})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, d, st.ID, time.Minute)
	if fin.State != StateFailed || fin.Kind != "timeout" {
		t.Fatalf("want terminal timeout, got %s/%s: %s", fin.State, fin.Kind, fin.Error)
	}
	if !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("timeout message: %q", fin.Error)
	}
	if fin.Attempts != 1 {
		t.Fatalf("restarts=-1 but %d attempts", fin.Attempts)
	}

	// Timeouts are retryable by classification: with a respawn budget
	// the daemon tries again (each attempt gets a fresh deadline).
	st2, err := d.Submit(Spec{Seed: 2, DeadlineMs: 150, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitJob(t, d, st2.ID, time.Minute)
	if fin2.Attempts != 2 || fin2.Kind != "timeout" {
		t.Fatalf("want 2 timed-out attempts, got %d/%s", fin2.Attempts, fin2.Kind)
	}
}

func TestMemoryBudgetKillClassification(t *testing.T) {
	d := newDaemon(t, nil, func(cfg *Config) {
		cfg.WorkerCommand = func(string) *exec.Cmd { return exec.Command("sleep", "60") }
		cfg.ReadRSS = func(int) (int64, error) { return 4 << 30, nil } // 4GB, always over
	})
	defer drainDaemon(t, d)

	st, err := d.Submit(Spec{MemLimitMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, d, st.ID, time.Minute)
	if fin.State != StateFailed || fin.Kind != "resource" {
		t.Fatalf("want resource kill, got %s/%s: %s", fin.State, fin.Kind, fin.Error)
	}
	if fin.Attempts != 1 {
		t.Fatalf("resource kills are non-retryable by default, got %d attempts", fin.Attempts)
	}

	// Opt-in retry: retry_resource re-admits up to the respawn budget.
	st2, err := d.Submit(Spec{Seed: 2, MemLimitMB: 64, RetryResource: true, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitJob(t, d, st2.ID, time.Minute)
	if fin2.Attempts != 2 || fin2.Kind != "resource" {
		t.Fatalf("want 2 resource-killed attempts, got %d/%s", fin2.Attempts, fin2.Kind)
	}
}

func TestBreakerOpensAfterRepeatedFailures(t *testing.T) {
	jb := &syncBuffer{}
	d := newDaemon(t, jb, func(cfg *Config) {
		// ExitSetup: a non-retryable structured failure every time.
		cfg.WorkerCommand = func(string) *exec.Cmd { return exec.Command("sh", "-c", "exit 2") }
		cfg.BreakerThreshold = 2
	})
	defer drainDaemon(t, d)

	for i := 0; i < 2; i++ {
		st, err := d.Submit(Spec{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		fin := waitJob(t, d, st.ID, time.Minute)
		if fin.State != StateFailed || fin.Kind != "error" {
			t.Fatalf("want setup failure, got %s/%s", fin.State, fin.Kind)
		}
	}
	_, err := d.Submit(Spec{})
	if err == nil || !strings.Contains(err.Error(), "circuit breaker") {
		t.Fatalf("breaker should be open: %v", err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, herr := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{}`))
	if herr != nil {
		t.Fatal(herr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("breaker POST: %d", resp.StatusCode)
	}
	// A different workload config is unaffected.
	if _, err := d.Submit(Spec{Seed: 99}); err != nil {
		t.Fatalf("unrelated config rejected: %v", err)
	}
	var opened bool
	for _, e := range jb.entries(t) {
		if e.Event == supervisor.EventBreakerOpen {
			opened = true
		}
	}
	if !opened {
		t.Fatal("breaker_open never journaled")
	}
}

// A fuzz campaign job runs the conformance fuzzer in an isolated
// worker: the job completes with the campaign summary as its result
// and the fuzz lifecycle events land in the shared journal.
func TestFuzzJobCompletes(t *testing.T) {
	jb := &syncBuffer{}
	d := newDaemon(t, jb, nil)
	st, err := d.Submit(Spec{Fuzz: &FuzzSpec{Seqs: 6, Seed: 99, MaxUnits: 8}})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, d, st.ID, 2*time.Minute)
	if fin.State != StateDone {
		t.Fatalf("state %s, kind %s: %s", fin.State, fin.Kind, fin.Error)
	}
	if fin.Result == nil || fin.Result.Fuzz == nil {
		t.Fatalf("fuzz job has no fuzz result: %+v", fin.Result)
	}
	fr := fin.Result.Fuzz
	if fr.Seqs != 6 {
		t.Fatalf("campaign ran %d sequences, want 6", fr.Seqs)
	}
	if fr.Findings != 0 {
		t.Fatalf("clean campaign reported %d findings: %v", fr.Findings, fr.Kinds)
	}
	// The campaign trail is in the worker journal, not the daemon's.
	data, err := os.ReadFile(filepath.Join(fin.Dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	es, err := supervisor.ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var sawStart, sawDone bool
	for _, e := range es {
		switch e.Event {
		case supervisor.EventFuzzStart:
			sawStart = true
		case supervisor.EventFuzzDone:
			sawDone = true
		}
	}
	if !sawStart || !sawDone {
		t.Fatalf("worker journal missing fuzz events: start=%v done=%v", sawStart, sawDone)
	}
}

// A fuzz spec that cannot run is rejected at admission.
func TestFuzzSpecValidation(t *testing.T) {
	if err := (&Spec{Fuzz: &FuzzSpec{Seqs: -1}}).Validate(); err == nil {
		t.Fatal("negative seqs should be rejected")
	}
	if err := (&Spec{Mode: "native", Fuzz: &FuzzSpec{}}).Validate(); err == nil {
		t.Fatal("fuzz + native mode should be rejected")
	}
}
