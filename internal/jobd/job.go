// Package jobd is the fault-isolated simulation job service behind
// cmd/ptlserve: it accepts simulation jobs (workload scale, machine
// config, fault spec) and executes each one in an isolated worker
// subprocess, so a worker panic, SIGKILL, runaway allocation, or
// wedged run is contained to that job. The daemon detects worker death
// via waitpid plus a heartbeat file, classifies it into the simerr
// taxonomy (timeout, resource, panic), and — when the classification
// is retryable — respawns the worker, which resumes from the job's
// rotated checkpoint directory through the PR 2 supervisor machinery,
// so even a SIGKILL'd job finishes with bit-identical guest output.
//
// Around that core sit the serving-robustness pieces: a bounded job
// queue with backpressure, per-job wall-clock deadlines, a per-worker
// memory budget (GOMEMLIMIT plus RSS polling), a per-config circuit
// breaker, graceful drain, and a JSONL job journal in the shared
// supervisor entry format so ptlmon -journal renders service runs.
package jobd

import (
	"fmt"
	"hash/fnv"
	"time"

	"ptlsim/internal/core"
	"ptlsim/internal/experiments"
	"ptlsim/internal/faultinject"
	"ptlsim/internal/guest"
	"ptlsim/internal/ooo"
)

// Spec is a simulation job request (the POST /jobs body). Zero-valued
// fields take daemon defaults; MaxCycles uses 0 = scale default and
// -1 = unlimited, since JSON cannot distinguish absent from zero.
type Spec struct {
	// Workload.
	Scale    string  `json:"scale,omitempty"`    // small | bench | paper (default bench)
	NFiles   int     `json:"nfiles,omitempty"`   // corpus file count override
	FileSize int     `json:"filesize,omitempty"` // corpus file size override (multiple of 512)
	Seed     int64   `json:"seed,omitempty"`     // corpus seed override
	Change   float64 `json:"change,omitempty"`   // corpus change fraction override (0 = default)
	Timer    uint64  `json:"timer,omitempty"`    // guest timer period in cycles

	// Engine.
	Mode      string `json:"mode,omitempty"`      // native | sim (default sim)
	Core      string `json:"core,omitempty"`      // default | k8 (default k8)
	MaxCycles int64  `json:"maxcycles,omitempty"` // 0 = scale default, -1 = unlimited
	Inject    string `json:"inject,omitempty"`    // faultinject spec list (kind@insn[:k=v,...];...)

	// Robustness knobs (0 = daemon default).
	DeadlineMs       int64  `json:"deadline_ms,omitempty"`       // per-attempt wall-clock deadline
	MemLimitMB       int64  `json:"mem_limit_mb,omitempty"`      // worker memory budget (-1 = unlimited)
	CheckpointCycles uint64 `json:"checkpoint_cycles,omitempty"` // supervisor rotation cadence
	MaxRetries       int    `json:"max_retries,omitempty"`       // in-worker supervisor retry budget
	Restarts         int    `json:"restarts,omitempty"`          // daemon worker-respawn budget (-1 = none)
	RetryResource    bool   `json:"retry_resource,omitempty"`    // re-admit after a memory-budget kill

	// Fuzz turns the job into a conformance fuzz campaign instead of a
	// benchmark run; the workload fields above are ignored. Campaigns
	// run to completion or cancellation — they are not checkpointed, so
	// a respawned worker restarts the campaign (it is deterministic in
	// the seed, so nothing is lost but wall clock).
	Fuzz *FuzzSpec `json:"fuzz,omitempty"`

	// HeartbeatMs is stamped by the daemon before the spec is handed
	// to the worker; jobs cannot set it.
	HeartbeatMs int64 `json:"heartbeat_ms,omitempty"`

	// Campaign dispatch metadata (internal/fleet). A campaign
	// dispatcher stamps each submission with the campaign name, the
	// grid cell the job computes, and the cell's current lease epoch —
	// a monotonic fencing token. The daemon rejects a submission whose
	// epoch is below the highest it has seen for the same (campaign,
	// cell), so a partitioned-then-healed dispatcher path can never
	// re-admit a superseded lease; the dispatcher applies the same
	// fence when collecting verdicts. All three fields are opaque to
	// the worker and excluded from ConfigKey — they describe the
	// dispatch, not the workload.
	Campaign string `json:"campaign,omitempty"`
	Cell     string `json:"cell,omitempty"`
	Epoch    int64  `json:"epoch,omitempty"`

	// Multi-tenant admission metadata. Tenant names the submitting
	// tenant ("" = the default tenant): the admission layer keeps one
	// priority queue, quota ledger, and fair-share account per tenant.
	// Priority orders jobs *within* a tenant (higher dequeues first;
	// cross-tenant ordering is weighted fair share, so one tenant's
	// priorities never starve another tenant). ClientDeadlineMs is the
	// submitting client's end-to-end budget: a job whose estimated
	// queue wait already exceeds it is shed at admission (HTTP 429)
	// instead of timing out after consuming a worker, and it caps the
	// per-attempt deadline once running. Like the campaign fields,
	// these describe the dispatch, not the workload, and are excluded
	// from ConfigKey.
	Tenant           string `json:"tenant,omitempty"`
	Priority         int    `json:"priority,omitempty"`
	ClientDeadlineMs int64  `json:"client_deadline_ms,omitempty"`
}

// CellKey identifies a campaign grid cell for the daemon-side epoch
// fence ("" for non-campaign jobs).
func (s *Spec) CellKey() string {
	if s.Campaign == "" {
		return ""
	}
	return s.Campaign + "/" + s.Cell
}

// FuzzSpec configures a conformance fuzz campaign job (see
// internal/conformance). Zero values take the campaign defaults.
type FuzzSpec struct {
	Seqs        int   `json:"seqs,omitempty"`         // sequences to generate (default 1000)
	Seed        int64 `json:"seed,omitempty"`         // campaign seed (deterministic stream)
	MaxUnits    int   `json:"max_units,omitempty"`    // instruction units per sequence
	MaxInsns    int64 `json:"max_insns,omitempty"`    // per-case committed-instruction budget
	TimingSeeds int   `json:"timing_seeds,omitempty"` // extra scrambled-predictor passes per case
}

// Validate rejects specs the worker could not run. It is called at
// admission so a bad job costs an HTTP 422, not a worker spawn.
func (s *Spec) Validate() error {
	switch s.Scale {
	case "", "small", "bench", "paper":
	default:
		return fmt.Errorf("jobd: unknown scale %q (want small|bench|paper)", s.Scale)
	}
	switch s.Mode {
	case "", "sim", "native":
	default:
		return fmt.Errorf("jobd: unknown mode %q (want sim|native)", s.Mode)
	}
	switch s.Core {
	case "", "default", "k8":
	default:
		return fmt.Errorf("jobd: unknown core %q (want default|k8)", s.Core)
	}
	if s.FileSize > 0 && s.FileSize%guest.BlockSize != 0 {
		return fmt.Errorf("jobd: filesize %d is not a multiple of %d", s.FileSize, guest.BlockSize)
	}
	if s.Change < 0 || s.Change > 1 {
		return fmt.Errorf("jobd: change fraction %v out of [0,1]", s.Change)
	}
	if s.ClientDeadlineMs < 0 {
		return fmt.Errorf("jobd: client deadline %dms is negative", s.ClientDeadlineMs)
	}
	if s.Inject != "" {
		if _, err := faultinject.ParseList(s.Inject); err != nil {
			return fmt.Errorf("jobd: bad fault spec: %w", err)
		}
	}
	if s.Fuzz != nil {
		if s.Fuzz.Seqs < 0 {
			return fmt.Errorf("jobd: fuzz seqs %d is negative", s.Fuzz.Seqs)
		}
		if s.Mode == "native" {
			return fmt.Errorf("jobd: fuzz jobs are dual-engine; -mode native does not apply")
		}
	}
	return nil
}

// ConfigKey identifies the workload configuration for the circuit
// breaker: jobs that would build the same guest under the same engine
// share a key, so repeated non-retryable failures of one workload stop
// its re-admission without touching unrelated configs. Robustness
// knobs (deadline, memory, retry budgets) are deliberately excluded.
func (s *Spec) ConfigKey() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%v|%d|%s|%s|%d|%s",
		s.Scale, s.NFiles, s.FileSize, s.Seed, s.Change, s.Timer,
		s.Mode, s.Core, s.MaxCycles, s.Inject)
	if s.Fuzz != nil {
		fmt.Fprintf(h, "|fuzz:%d:%d:%d:%d:%d",
			s.Fuzz.Seqs, s.Fuzz.Seed, s.Fuzz.MaxUnits, s.Fuzz.MaxInsns, s.Fuzz.TimingSeeds)
	}
	return h.Sum64()
}

// experimentConfig resolves the workload scale plus overrides into the
// experiments.Config the worker boots from (mirrors cmd/ptlsim).
func (s *Spec) experimentConfig() experiments.Config {
	var cfg experiments.Config
	switch s.Scale {
	case "small":
		cfg = experiments.BenchScale()
		cfg.Corpus = guest.CorpusSpec{NFiles: 2, FileSize: 2048, Seed: 7, ChangeFraction: 0.3}
	case "paper":
		cfg = experiments.PaperScale()
	default:
		cfg = experiments.BenchScale()
	}
	if s.NFiles > 0 {
		cfg.Corpus.NFiles = s.NFiles
	}
	if s.FileSize > 0 {
		cfg.Corpus.FileSize = s.FileSize
	}
	if s.Seed != 0 {
		cfg.Corpus.Seed = s.Seed
	}
	if s.Change > 0 {
		cfg.Corpus.ChangeFraction = s.Change
	}
	if s.Timer > 0 {
		cfg.TimerPeriod = s.Timer
	}
	switch {
	case s.MaxCycles < 0:
		cfg.MaxCycles = 0
	case s.MaxCycles > 0:
		cfg.MaxCycles = uint64(s.MaxCycles)
	}
	return cfg
}

// machineConfig is the core.Config the worker builds the machine with.
// It must be a pure function of the spec: a respawned worker restores
// the previous attempt's checkpoints, and snapshot.Restore rejects an
// image captured under a different config hash.
func (s *Spec) machineConfig(snapshotCycles uint64) core.Config {
	oc := ooo.K8Config()
	if s.Core == "default" {
		oc = ooo.DefaultConfig()
	}
	return core.Config{Core: oc, NativeCPI: 1, ThreadsPerCore: 1,
		SnapshotCycles: snapshotCycles, WatchdogCycles: 10_000_000}
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Result is what a worker reports back for a completed job
// (result.json in the job directory).
type Result struct {
	Cycles     uint64 `json:"cycles"`
	Insns      int64  `json:"insns"`
	Console    string `json:"console"`
	ConsoleFNV uint64 `json:"console_fnv"` // FNV-64a of Console, for cheap equality checks
	// Supervisor accounting for the final (successful) attempt.
	Attempts        int    `json:"attempts"`
	Retries         int    `json:"retries"`
	DegradedWindows int    `json:"degraded_windows"`
	FinalSlot       string `json:"final_slot,omitempty"`

	// Fuzz is set for fuzz campaign jobs (Spec.Fuzz != nil); the
	// benchmark fields above are zero for those.
	Fuzz *FuzzResult `json:"fuzz,omitempty"`
}

// FuzzResult is the campaign summary a fuzz job reports. Findings are
// data, not a job failure: the campaign itself succeeded, and the
// minimized reproducers are in the job directory's findings/ subdir
// with the full event trail in the worker journal.
type FuzzResult struct {
	Seqs       int      `json:"seqs"`
	SeqsPerSec float64  `json:"seqs_per_sec"`
	ShrinkMs   int64    `json:"shrink_ms"`
	Findings   int      `json:"findings"`
	Kinds      []string `json:"kinds,omitempty"`
	Promoted   []string `json:"promoted,omitempty"`
}

// Failure is a worker's structured failure report (failure.json).
type Failure struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	Cycle     uint64 `json:"cycle,omitempty"`
	RIP       uint64 `json:"rip,omitempty"`
}

// Status is the externally visible view of a job (GET /jobs/{id}).
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Spec  Spec   `json:"spec"`

	// Attempts counts worker processes spawned for this job; PID is
	// the live worker's process ID (0 when no worker is running).
	// Adopted is set when a restarted daemon re-attached this job's
	// still-alive orphan worker instead of respawning it.
	Attempts int  `json:"attempts"`
	PID      int  `json:"pid,omitempty"`
	Adopted  bool `json:"adopted,omitempty"`

	// Kind/Error describe the last worker failure (terminal or retried).
	Kind  string `json:"kind,omitempty"`
	Error string `json:"error,omitempty"`

	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	ElapsedMs   int64  `json:"elapsed_ms,omitempty"`    // submit → finish wall clock
	QueueWaitMs int64  `json:"queue_wait_ms,omitempty"` // submit → first attempt start

	Result *Result `json:"result,omitempty"`

	// Dir is the job's on-disk directory (spec, checkpoints, journal) —
	// the triage entry point (ptlmon -inspect <dir>/ckpt).
	Dir string `json:"dir,omitempty"`
}

// consoleFNV hashes guest console output for Result.ConsoleFNV.
func consoleFNV(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// rfc3339 renders a timestamp for Status fields ("" for zero time).
func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
