package jobd

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// procStartTime returns pid's kernel start time (clock ticks since
// boot — /proc/<pid>/stat field 22). The (pid, start time) pair
// uniquely identifies a process incarnation: pids are recycled, start
// times within one boot are not, so a recovered daemon can tell "our
// orphan worker, still alive" from "an unrelated process that reused
// the pid". On hosts without procfs the error makes recovery treat the
// recorded worker as unverifiable (and therefore dead); it never
// guesses.
func procStartTime(pid int) (uint64, error) {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return 0, err
	}
	// The comm field (2) is parenthesized and may itself contain spaces
	// or parentheses; everything after the *last* ')' is well-formed
	// space-separated fields starting at field 3 (state).
	i := bytes.LastIndexByte(data, ')')
	if i < 0 || i+2 >= len(data) {
		return 0, fmt.Errorf("jobd: malformed /proc/%d/stat", pid)
	}
	fields := strings.Fields(string(data[i+2:]))
	const startTimeField = 19 // field 22 overall; fields[0] is field 3
	if len(fields) <= startTimeField {
		return 0, fmt.Errorf("jobd: short /proc/%d/stat", pid)
	}
	return strconv.ParseUint(fields[startTimeField], 10, 64)
}

// sameProcess reports whether pid is still the exact process
// incarnation recorded as (pid, start). A zero recorded start never
// matches — a record that predates start-time tracking must not adopt.
func sameProcess(pid int, start uint64) bool {
	if pid <= 0 || start == 0 {
		return false
	}
	ts, err := procStartTime(pid)
	return err == nil && ts == start
}
