package jobd

import (
	"fmt"
	"sync"
	"time"
)

// Breaker is the per-workload-config circuit breaker: a config whose
// jobs keep failing terminally with non-retryable classifications is a
// config that will keep failing — re-admitting it burns worker slots
// and queue depth that healthy jobs need. After Threshold consecutive
// non-retryable failures the breaker opens for that config key and
// Allow rejects new submissions until Cooldown passes (after which the
// next job probes the config again: one success resets the streak).
type Breaker struct {
	// Threshold is the consecutive non-retryable failure count that
	// opens the breaker (minimum 1). Cooldown is how long it stays
	// open; 0 means it never reopens admission automatically.
	Threshold int
	Cooldown  time.Duration

	now func() time.Time // test seam

	mu     sync.Mutex
	states map[uint64]*breakerState
}

type breakerState struct {
	consecutive int
	openUntil   time.Time
	opens       int
}

// NewBreaker builds a breaker (threshold < 1 is clamped to 1).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{Threshold: threshold, Cooldown: cooldown,
		now: time.Now, states: map[uint64]*breakerState{}}
}

// Allow reports whether a job with this config key may be admitted; a
// non-nil error carries the operator-facing reason.
func (b *Breaker) Allow(key uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || st.openUntil.IsZero() {
		return nil
	}
	if b.Cooldown > 0 && b.now().After(st.openUntil) {
		// Cooldown elapsed: half-open. Admit one probe; the streak is
		// kept so its failure re-opens immediately.
		st.openUntil = time.Time{}
		return nil
	}
	return fmt.Errorf("jobd: circuit breaker open for config %#x (%d consecutive non-retryable failures)",
		key, st.consecutive)
}

// Success records a completed job, closing the breaker for the key.
func (b *Breaker) Success(key uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.states, key)
}

// Failure records a terminal non-retryable job failure; the return
// value is true when this failure just opened the breaker.
func (b *Breaker) Failure(key uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	st.consecutive++
	if st.consecutive < b.Threshold || !st.openUntil.IsZero() {
		return false
	}
	if b.Cooldown > 0 {
		st.openUntil = b.now().Add(b.Cooldown)
	} else {
		st.openUntil = b.now().Add(100 * 365 * 24 * time.Hour)
	}
	st.opens++
	return true
}
