package jobd

import (
	"fmt"
	"sync"
	"time"
)

// Breaker is the per-workload-config circuit breaker: a config whose
// jobs keep failing terminally with non-retryable classifications is a
// config that will keep failing — re-admitting it burns worker slots
// and queue depth that healthy jobs need. After Threshold consecutive
// non-retryable failures the breaker opens for that config key and
// Allow rejects new submissions until Cooldown passes, at which point
// the breaker is half-open: exactly one probe job is admitted (further
// submissions are rejected while the probe is in flight — two
// concurrent jobs must not both count as "the" probe), and the probe's
// verdict decides — success closes the breaker, failure re-opens it
// immediately, and a verdict-free end (interrupted) releases the probe
// slot for the next submission.
type Breaker struct {
	// Threshold is the consecutive non-retryable failure count that
	// opens the breaker (minimum 1). Cooldown is how long it stays
	// open; 0 means it never reopens admission automatically.
	Threshold int
	Cooldown  time.Duration

	now func() time.Time // test seam

	mu     sync.Mutex
	states map[uint64]*breakerState
}

type breakerState struct {
	consecutive int
	openUntil   time.Time
	probing     bool // the single half-open probe is in flight
	opens       int
}

// NewBreaker builds a breaker (threshold < 1 is clamped to 1).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{Threshold: threshold, Cooldown: cooldown,
		now: time.Now, states: map[uint64]*breakerState{}}
}

// Allow reports whether a job with this config key may be admitted; a
// non-nil error carries the operator-facing reason.
func (b *Breaker) Allow(key uint64) error {
	_, err := b.AllowProbe(key)
	return err
}

// AllowProbe is Allow plus the half-open bookkeeping: probe is true
// when the admitted job is the single half-open probe, whose outcome
// the caller must settle via Success, Failure, or ProbeSettled.
func (b *Breaker) AllowProbe(key uint64) (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || (st.openUntil.IsZero() && !st.probing) {
		return false, nil
	}
	if st.probing {
		// The half-open probe is already in flight; a second job must
		// not ride along as a shadow probe.
		return false, fmt.Errorf("jobd: circuit breaker half-open for config %#x (probe in flight)", key)
	}
	if b.Cooldown > 0 && b.now().After(st.openUntil) {
		// Cooldown elapsed: half-open. Admit exactly one probe; the
		// streak is kept so its failure re-opens immediately.
		st.openUntil = time.Time{}
		st.probing = true
		return true, nil
	}
	return false, fmt.Errorf("jobd: circuit breaker open for config %#x (%d consecutive non-retryable failures)",
		key, st.consecutive)
}

// Success records a completed job, closing the breaker for the key.
func (b *Breaker) Success(key uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.states, key)
}

// ProbeSettled releases the half-open probe slot without a verdict —
// the probe job ended in a way that says nothing about the config's
// health (e.g. interrupted by a drain). The next submission becomes
// the new probe.
func (b *Breaker) ProbeSettled(key uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.probing {
		return
	}
	st.probing = false
	// Back to half-open with the cooldown already served: the next
	// AllowProbe admits a fresh probe (and only a probe — the config is
	// still unproven, so full admission stays off).
	st.openUntil = b.now().Add(-time.Nanosecond)
}

// Failure records a terminal non-retryable job failure; the return
// value is true when this failure just opened the breaker.
func (b *Breaker) Failure(key uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	st.consecutive++
	if st.probing {
		// The half-open probe failed: re-open immediately, regardless
		// of where the streak stands relative to the threshold.
		st.probing = false
		b.open(st)
		return true
	}
	if st.consecutive < b.Threshold || !st.openUntil.IsZero() {
		return false
	}
	b.open(st)
	return true
}

// OpenCount reports how many workload configs currently have an open
// (or half-open, probe-in-flight) breaker — the daemon exports it as a
// gauge so operators can see admission throttling from /metrics.
func (b *Breaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, st := range b.states {
		if !st.openUntil.IsZero() || st.probing {
			n++
		}
	}
	return n
}

// open marks the state open for the cooldown (with mu held).
func (b *Breaker) open(st *breakerState) {
	if b.Cooldown > 0 {
		st.openUntil = b.now().Add(b.Cooldown)
	} else {
		st.openUntil = b.now().Add(100 * 365 * 24 * time.Hour)
	}
	st.opens++
}
