package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler exposes the daemon over HTTP:
//
//	POST /jobs        submit a Spec            → 202 Status
//	                  queue full               → 429 + Retry-After
//	                  draining                 → 503
//	                  breaker open / bad spec  → 422
//	GET  /jobs        all job statuses         → 200 []Status
//	GET  /jobs/{id}   one job status           → 200 Status | 404
//	GET  /healthz     liveness                 → 200 always
//	GET  /readyz      admission readiness      → 200 | 503 (draining)
//	GET  /statz       service counters         → 200 map[string]int64
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResponse(w, http.StatusOK, d.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSONResponse(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !d.Accepting() {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResponse(w, http.StatusOK, d.Counters())
	})
	return mux
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "bad job spec: "+err.Error())
		return
	}
	st, err := d.Submit(spec)
	switch {
	case err == nil:
		writeJSONResponse(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the bounded queue is at depth. Retry-After is
		// the polite half of load shedding.
		w.Header().Set("Retry-After",
			strconv.Itoa(int(d.cfg.RetryAfter.Seconds())))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case strings.Contains(err.Error(), "circuit breaker"):
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

func writeJSONResponse(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSONResponse(w, code, map[string]string{"error": msg})
}
