package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ptlsim/internal/metrics"
)

// Handler exposes the daemon over HTTP:
//
//	POST /jobs             submit a Spec            → 202 Status
//	                       Idempotency-Key replay   → 200 original Status
//	                       queue full               → 429 + Retry-After
//	                       tenant quota / deadline  → 429 + tenant-scoped
//	                       shed                       Retry-After
//	                       draining                 → 503
//	                       stale campaign epoch     → 409 (fencing)
//	                       breaker open / bad spec  → 422
//	GET  /jobs             all job statuses         → 200 []Status
//	                       ?phase=&limit= filter and bound the response
//	GET  /version          build + protocol version → 200 Version
//	GET  /jobs/{id}        one job status           → 200 Status | 404
//	GET  /jobs/{id}/events SSE stream of the job's durable store
//	                       records, replayed from the WAL — clients
//	                       reconnect across daemon restarts with
//	                       Last-Event-ID (or ?after=seq)
//	GET  /healthz          liveness                 → 200 always
//	GET  /readyz           admission readiness      → 200 | 503 (draining)
//	GET  /statz            service counters         → 200 map[string]int64
//	GET  /metrics          Prometheus text exposition of the same
//	                       registry backing /statz
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		phase := State(q.Get("phase"))
		switch phase {
		case "", StateQueued, StateRunning, StateDone, StateFailed:
		default:
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown phase %q", phase))
			return
		}
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", v))
				return
			}
			limit = n
		}
		writeJSONResponse(w, http.StatusOK, d.JobsFiltered(phase, limit))
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResponse(w, http.StatusOK, VersionInfo())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSONResponse(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !d.Accepting() {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResponse(w, http.StatusOK, d.Counters())
	})
	mux.Handle("GET /metrics", metrics.Handler(d.Metrics()))
	return mux
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "bad job spec: "+err.Error())
		return
	}
	st, duplicate, err := d.SubmitKey(spec, r.Header.Get("Idempotency-Key"))
	switch {
	case duplicate:
		// A resubmit after a crash (or a client retry) of an already
		// accepted job: 200 with the original job, not a second 202.
		writeJSONResponse(w, http.StatusOK, st)
	case err == nil:
		writeJSONResponse(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the bounded queue is at depth. Retry-After is
		// the polite half of load shedding — computed from the measured
		// queue drain rate so recovering clients pace themselves to
		// reality.
		w.Header().Set("Retry-After", retryAfterSeconds(d.RetryAfter()))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrTenantQuota), errors.Is(err, ErrDeadlineShed):
		// Tenant-scoped backpressure: the quota breach (or shed) is this
		// tenant's own doing, so the hint reflects the tenant's backlog
		// drain rate — other tenants keep submitting unthrottled.
		w.Header().Set("Retry-After", retryAfterSeconds(d.RetryAfterTenant(spec.Tenant)))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrStaleEpoch):
		// Fencing: a superseded lease must not re-admit its job. 409 is
		// terminal for that epoch — the dispatcher must not retry it.
		httpError(w, http.StatusConflict, err.Error())
	case strings.Contains(err.Error(), "circuit breaker"):
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

// retryAfterSeconds renders a duration as the Retry-After header's
// integer seconds, rounding up so clients never come back early.
func retryAfterSeconds(dur time.Duration) string {
	secs := int64((dur + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleEvents streams a job's durable store records as server-sent
// events. The stream is replayed from the WAL, not from daemon memory,
// so a client that reconnects after a daemon restart — sending the
// last Seq it saw as Last-Event-ID (or ?after=N) — resumes exactly
// where it left off (compacted-away history arrives as one synthetic
// "state" record). The stream ends after the terminal record.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	}
	if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	if _, _, _, ok := d.store.EventsWatch(id, -1); !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		recs, terminal, watch, ok := d.store.EventsWatch(id, after)
		if !ok {
			return
		}
		for _, rec := range recs {
			data, err := json.Marshal(rec)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", rec.Seq, rec.Op, data)
			after = rec.Seq
		}
		flusher.Flush()
		if terminal {
			return
		}
		select {
		case <-watch:
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSONResponse(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSONResponse(w, code, map[string]string{"error": msg})
}
