package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ptlsim/internal/conformance"
	"ptlsim/internal/conformance/corpus"
	"ptlsim/internal/core"
	"ptlsim/internal/faultinject"
	"ptlsim/internal/guest"
	"ptlsim/internal/kern"
	"ptlsim/internal/simerr"
	"ptlsim/internal/snapshot"
	"ptlsim/internal/stats"
	"ptlsim/internal/supervisor"
)

// Job-directory file names shared by the daemon and the worker. The
// directory is the whole worker protocol: the daemon writes spec.json
// and spawns the worker on the directory; the worker heartbeats into
// heartbeatFile, checkpoints into ckptSubdir, journals into
// journalFile, and reports through resultFile or failureFile plus its
// exit code.
const (
	specFile      = "spec.json"
	resultFile    = "result.json"
	failureFile   = "failure.json"
	heartbeatFile = "heartbeat"
	journalFile   = "worker.jsonl"
	logFile       = "worker.log"
	ckptSubdir    = "ckpt"
)

// Worker exit codes (beyond the conventional 0).
const (
	// ExitFailure: a structured simulation failure; failureFile has the
	// classification.
	ExitFailure = 3
	// ExitSetup: the worker could not even start the job (bad spec,
	// unreadable directory) — never retryable.
	ExitSetup = 2
)

// WorkerMain is the hidden worker mode of the serving binary: execute
// the job described by <dir>/spec.json in this process, under the PR 2
// supervisor, with checkpoints rotated into <dir>/ckpt. If the
// rotation already holds slots — this is a respawn after the previous
// worker was killed — the newest intact slot is restored first, so the
// re-run resumes instead of restarting and (by the snapshot Runner's
// determinism-by-construction property) finishes with guest output
// bit-identical to an unkilled run.
//
// The returned value is the process exit code; errw receives human
// diagnostics (the daemon redirects it to <dir>/worker.log).
func WorkerMain(dir string, errw io.Writer) int {
	spec, err := readSpec(filepath.Join(dir, specFile))
	if err != nil {
		fmt.Fprintln(errw, "worker:", err)
		return ExitSetup
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(errw, "worker:", err)
		return ExitSetup
	}

	// SIGTERM (daemon drain timeout) cancels the run context; the
	// supervisor answers with a final checkpoint and ErrInterrupted.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stopSignals()

	// Heartbeat: rewrite <dir>/heartbeat until the run ends so the
	// daemon can tell "slow" from "wedged". The file is created
	// immediately — a worker that never heartbeats is already suspect.
	// Each beat carries the worker's (pid, start time) identity and is
	// written temp+rename (the same discipline as checkpoint writes),
	// so a worker crashing mid-beat can never present a torn or
	// zero-length heartbeat as a fresh one, and a recovering daemon can
	// cross-check whose heartbeat it is looking at.
	interval := time.Duration(spec.HeartbeatMs) * time.Millisecond
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	hbPath := filepath.Join(dir, heartbeatFile)
	hb := heartbeat{PID: os.Getpid()}
	hb.PIDStart, _ = procStartTime(hb.PID)
	if err := writeHeartbeat(hbPath, hb); err != nil {
		fmt.Fprintln(errw, "worker: heartbeat:", err)
		return ExitSetup
	}
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				hb.Seq++
				writeHeartbeat(hbPath, hb)
			}
		}
	}()

	jf, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(errw, "worker:", err)
		return ExitSetup
	}
	defer jf.Close()

	var res *Result
	var runErr error
	if spec.Fuzz != nil {
		res, runErr = runFuzzJob(ctx, spec, dir, jf)
	} else {
		res, runErr = runJob(ctx, spec, filepath.Join(dir, ckptSubdir), jf)
	}
	switch {
	case runErr == nil:
		if err := writeJSON(filepath.Join(dir, resultFile), res); err != nil {
			fmt.Fprintln(errw, "worker:", err)
			return ExitSetup
		}
		return 0
	case errors.Is(runErr, supervisor.ErrInterrupted):
		// Drain: progress is checkpointed; a future re-admission of the
		// job resumes where this worker stopped.
		writeFailure(dir, Failure{Kind: "interrupted", Retryable: true,
			Message: "worker interrupted (drain): " + runErr.Error()})
		fmt.Fprintln(errw, "worker:", runErr)
		return ExitFailure
	default:
		f := Failure{Kind: "error", Message: runErr.Error(), Retryable: simerr.Retryable(runErr)}
		if se, ok := simerr.As(runErr); ok {
			f.Kind = string(se.Kind)
			f.Cycle = se.Cycle
			f.RIP = se.RIP
			fmt.Fprintln(errw, "worker:", se.Detail())
		} else {
			fmt.Fprintln(errw, "worker:", runErr)
		}
		writeFailure(dir, f)
		return ExitFailure
	}
}

// runJob executes the spec under supervision, resuming from the rotated
// checkpoint directory when it already holds an intact slot.
func runJob(ctx context.Context, spec *Spec, ckptDir string, journal io.Writer) (*Result, error) {
	cfg := spec.experimentConfig()
	mcfg := spec.machineConfig(cfg.SnapshotCycles)
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}

	interval := spec.CheckpointCycles
	if interval == 0 {
		interval = 10_000_000
	}

	// The store is opened before the supervisor so a respawned worker
	// can look for slots the killed attempt left behind.
	store, err := supervisor.OpenStore(ckptDir, max(spec.MaxRetries, 3))
	if err != nil {
		return nil, err
	}
	var m *core.Machine
	if len(store.Slots()) > 0 {
		img, slot, err := store.LoadLatest(nil)
		if err != nil {
			return nil, err
		}
		if m, err = snapshot.Restore(img, mcfg); err != nil {
			return nil, fmt.Errorf("jobd: resuming %s: %w", slot, err)
		}
	} else {
		spec2, err := guest.RsyncBenchmark(cfg.Corpus, cfg.TimerPeriod)
		if err != nil {
			return nil, err
		}
		tree := stats.NewTree()
		spec2.Tree = tree
		img, err := kern.Build(spec2)
		if err != nil {
			return nil, err
		}
		m = core.NewMachine(img.Domain, tree, mcfg)
		if spec.Mode != "native" {
			m.SwitchMode(core.ModeSim)
		}
	}
	if spec.Inject != "" {
		specs, err := faultinject.ParseList(spec.Inject)
		if err != nil {
			return nil, err
		}
		faultinject.New(specs...).Attach(m)
	}

	sup, err := supervisor.New(m, supervisor.Config{
		Interval:  interval,
		MaxCycles: cfg.MaxCycles,
		Dir:       ckptDir,
		Keep:      max(spec.MaxRetries, 3),
		MaxRetries: func() int {
			if spec.MaxRetries > 0 {
				return spec.MaxRetries
			}
			return 5
		}(),
		Journal: journal,
	})
	if err != nil {
		return nil, err
	}
	if err := sup.Run(ctx); err != nil {
		return nil, err
	}
	m = sup.M
	sres := sup.Result()
	console := m.Dom.Console()
	return &Result{
		Cycles: m.Cycle, Insns: m.Insns(),
		Console: console, ConsoleFNV: consoleFNV(console),
		Attempts: sres.Attempts, Retries: sres.Retries,
		DegradedWindows: sres.DegradedWindows, FinalSlot: sres.FinalSlot,
	}, nil
}

// runFuzzJob executes a conformance fuzz campaign. It is not
// checkpointed — the campaign is deterministic in its seed, so a
// respawned worker just reruns it. Minimized reproducers land in
// <dir>/findings; the campaign event trail goes to the worker journal
// in the shared supervisor entry format.
func runFuzzJob(ctx context.Context, spec *Spec, dir string, journal io.Writer) (*Result, error) {
	fs := spec.Fuzz
	run := conformance.Config{MaxInsns: fs.MaxInsns}
	for k := 0; k < fs.TimingSeeds; k++ {
		run.TimingSeeds = append(run.TimingSeeds, fs.Seed*1_000_003+int64(k)+1)
	}
	if spec.Inject != "" {
		specs, err := faultinject.ParseList(spec.Inject)
		if err != nil {
			return nil, err
		}
		run.Instrument = func(m *core.Machine) { faultinject.New(specs...).Attach(m) }
	}
	var pool [][]byte
	if seedDir, err := corpus.SeedDir(); err == nil {
		if cases, err := corpus.Load(seedDir); err == nil {
			for _, cs := range cases {
				if code, err := cs.Code(); err == nil && len(code) > 0 {
					pool = append(pool, code)
				}
			}
		}
	}
	cres, err := conformance.RunCampaign(ctx, conformance.CampaignConfig{
		Run: run, Seqs: fs.Seqs, Seed: fs.Seed, MaxUnits: fs.MaxUnits,
		SeedPool: pool, Journal: supervisor.NewJournal(journal),
		PromoteDir: filepath.Join(dir, "findings"),
	})
	if err != nil {
		return nil, err
	}
	if cres.Interrupted {
		return nil, supervisor.ErrInterrupted
	}
	fr := &FuzzResult{
		Seqs: cres.Seqs, SeqsPerSec: cres.SeqsPerSec, ShrinkMs: cres.ShrinkMs,
		Findings: len(cres.Findings), Promoted: cres.Promoted,
	}
	for _, f := range cres.Findings {
		fr.Kinds = append(fr.Kinds, f.Finding.Kind)
	}
	return &Result{Fuzz: fr}, nil
}

func readSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("jobd: %s: %w", path, err)
	}
	return &s, nil
}

// writeJSON writes v to path atomically (temp + rename), so the daemon
// never reads a torn result file from a worker killed mid-write.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".jobd-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func writeFailure(dir string, f Failure) {
	writeJSON(filepath.Join(dir, failureFile), f)
}

// heartbeat is the content of the worker's heartbeat file: freshness
// is still the file's mtime (the daemon stats it each poll), but the
// body identifies which process incarnation is beating — a diagnostic
// cross-check for the recovery adopt-vs-reap decision.
type heartbeat struct {
	PID      int    `json:"pid"`
	PIDStart uint64 `json:"pid_start,omitempty"` // /proc start time (pid-reuse guard)
	Seq      int64  `json:"seq"`
}

// writeHeartbeat lands one beat atomically (temp + rename): the rename
// refreshes the mtime the daemon watches, and a crash mid-write leaves
// the previous intact beat in place instead of a zero-length file.
func writeHeartbeat(path string, hb heartbeat) error {
	data, err := json.Marshal(&hb)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".hb-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readHeartbeat parses a heartbeat file's body.
func readHeartbeat(path string) (heartbeat, error) {
	var hb heartbeat
	data, err := os.ReadFile(path)
	if err != nil {
		return hb, err
	}
	err = json.Unmarshal(data, &hb)
	return hb, err
}
