package jobd

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ptlsim/internal/metrics"
)

// TestMetricsEndpointMatchesStatz is the one-registry guarantee: the
// Prometheus /metrics exposition and the /statz JSON snapshot must be
// two renderings of the same counters, never parallel bookkeeping.
func TestMetricsEndpointMatchesStatz(t *testing.T) {
	d := newDaemon(t, nil, nil)
	defer drainDaemon(t, d)
	st, err := d.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, d, st.ID, 60*time.Second)

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	prom, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	counters := d.Counters()
	if counters["jobd.jobs.submitted"] < 1 || counters["jobd.jobs.done"] < 1 {
		t.Fatalf("statz counters missing the completed job: %v", counters)
	}
	// Every /statz key must appear in the exposition under its
	// sanitized name. Values may legitimately move between the two
	// scrapes (gauges recompute), so only counter identity is compared
	// for the monotonic series.
	for name, v := range counters {
		pn := metrics.SanitizeName(name)
		pv, ok := prom[pn]
		if !ok {
			t.Errorf("/statz key %q has no /metrics series %q", name, pn)
			continue
		}
		if strings.HasPrefix(name, "jobd.jobs.") && int64(pv) != v {
			t.Errorf("series %s: /metrics %v vs /statz %d", pn, pv, v)
		}
	}
	for _, want := range []string{"jobd_queue_depth", "jobd_breaker_open",
		"jobd_retry_after_ms", "jobd_store_compactions", "jobd_jobs_running"} {
		if _, ok := prom[want]; !ok {
			t.Errorf("exposition missing %s", want)
		}
	}
}

func TestBreakerOpenCount(t *testing.T) {
	b := NewBreaker(1, 0)
	if b.OpenCount() != 0 {
		t.Fatalf("fresh breaker open count %d", b.OpenCount())
	}
	b.Failure(1)
	b.Failure(2)
	if b.OpenCount() != 2 {
		t.Fatalf("open count %d, want 2", b.OpenCount())
	}
	b.Success(1)
	if b.OpenCount() != 1 {
		t.Fatalf("open count after close %d, want 1", b.OpenCount())
	}
}

func TestStoreCompactionsCounted(t *testing.T) {
	s, err := OpenJobStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Compactions() != 0 {
		t.Fatalf("fresh store compactions %d", s.Compactions())
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append(Record{Op: opAccept, Job: "j1"}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Compactions() < 2 {
		t.Fatalf("compactions = %d after 5 appends with compactEvery=2", s.Compactions())
	}
}
