package jobd

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func acceptRec(id, idemKey string) Record {
	spec := Spec{Scale: "small", Seed: 42}
	return Record{Op: opAccept, Job: id, IdemKey: idemKey, Spec: &spec}
}

func TestStoreReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenJobStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend := func(rec Record) {
		t.Helper()
		if _, err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(acceptRec("0001", "key-a"))
	mustAppend(Record{Op: opStart, Job: "0001", Attempt: 1, PID: 4242, PIDStart: 987654})
	mustAppend(Record{Op: opDone, Job: "0001", Phase: StateDone,
		Result: &Result{Cycles: 100, Insns: 50, Console: "ok"}})
	mustAppend(acceptRec("0002", ""))
	mustAppend(Record{Op: opStart, Job: "0002", Attempt: 2, PID: 777, PIDStart: 111222})
	s.Close()

	// A fresh open — the daemon restarting — replays the same state.
	s2, err := OpenJobStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Skipped() != 0 {
		t.Fatalf("clean log skipped %d lines", s2.Skipped())
	}
	if got := s2.MaxID(); got != 2 {
		t.Fatalf("MaxID = %d, want 2", got)
	}
	js, ok := s2.Job("0001")
	if !ok || js.Phase != StateDone || js.Result == nil || js.Result.Cycles != 100 {
		t.Fatalf("job 0001 replayed wrong: %+v", js)
	}
	if js.PID != 0 {
		t.Fatalf("terminal job kept pid %d", js.PID)
	}
	if js.SubmittedAt == "" || js.FinishedAt == "" {
		t.Fatalf("timestamps lost: %+v", js)
	}
	js2, ok := s2.Job("0002")
	if !ok || js2.Phase != StateRunning || js2.PID != 777 || js2.PIDStart != 111222 || js2.Attempt != 2 {
		t.Fatalf("job 0002 replayed wrong: %+v", js2)
	}
	if id, ok := s2.IdemLookup("key-a"); !ok || id != "0001" {
		t.Fatalf("idempotency mapping lost: %q %v", id, ok)
	}
	if _, ok := s2.IdemLookup("key-zzz"); ok {
		t.Fatal("unknown idempotency key resolved")
	}
}

func TestStoreCompactionBoundsLogAndSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenJobStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		id := []string{"", "0001", "0002", "0003", "0004", "0005"}[i]
		if _, err := s.Append(acceptRec(id, "")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Append(Record{Op: opDone, Job: "0001", Phase: StateDone,
		Result: &Result{Cycles: 7}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// 6 appends with compactEvery=4: at least one compaction ran, so the
	// snapshot exists and the log holds fewer lines than total appends.
	if _, err := os.Stat(filepath.Join(dir, storeSnapFile)); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	log, err := os.ReadFile(filepath.Join(dir, storeLogFile))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(log), "\n"); lines >= 6 {
		t.Fatalf("log not compacted: %d lines", lines)
	}

	states, skipped, err := ReadJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d lines", skipped)
	}
	if len(states) != 5 {
		t.Fatalf("replayed %d jobs, want 5", len(states))
	}
	byID := map[string]JobState{}
	for _, js := range states {
		byID[js.ID] = js
	}
	if byID["0001"].Phase != StateDone || byID["0001"].Result.Cycles != 7 {
		t.Fatalf("compacted job 0001 wrong: %+v", byID["0001"])
	}
	for _, id := range []string{"0002", "0003", "0004", "0005"} {
		if byID[id].Phase != StateQueued {
			t.Fatalf("job %s phase %s, want queued", id, byID[id].Phase)
		}
	}

	// Event history across compaction: a client reconnecting from seq 0
	// still sees the job's current phase (as the synthetic state record)
	// even though the raw accept record was compacted away.
	s3, err := OpenJobStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	recs, terminal, _, ok := s3.EventsWatch("0001", 0)
	if !ok || !terminal || len(recs) == 0 {
		t.Fatalf("events after compaction: ok=%v terminal=%v n=%d", ok, terminal, len(recs))
	}
	last := recs[len(recs)-1]
	if last.Phase != StateDone {
		t.Fatalf("replayed event history does not end done: %+v", last)
	}
}

func TestStoreTornLinesSkipped(t *testing.T) {
	dir := t.TempDir()
	a, _ := json.Marshal(acceptRec("0001", ""))
	b, _ := json.Marshal(Record{Seq: 3, Op: opAccept, Job: "0002", Spec: &Spec{Scale: "small"}})
	// A torn middle line (crash mid-append followed by post-restart
	// appends) and a torn final line.
	log := string(a) + "\n" + `{"seq":2,"op":"acc` + "\n" + string(b) + "\n" + `{"seq":4,"op":`
	if err := os.WriteFile(filepath.Join(dir, storeLogFile), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	states, skipped, err := ReadJobStore(dir)
	if err != nil {
		t.Fatalf("torn log fatal: %v", err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if len(states) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(states))
	}

	// A writable open over the same torn log keeps appending past it.
	s, err := OpenJobStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(Record{Op: opDone, Job: "0001", Phase: StateDone}); err != nil {
		t.Fatal(err)
	}
	js, _ := s.Job("0001")
	if js.Phase != StateDone {
		t.Fatalf("append after torn replay: %+v", js)
	}
}

// TestStoreSnapshotOverlapIdempotent simulates the crash window between
// the snapshot rename and the log rotation: the old log (records the
// snapshot already covers) is still in place. Replay must skip those
// records rather than double-apply them.
func TestStoreSnapshotOverlapIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenJobStore(dir, 2) // compacts on the 2nd append
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(acceptRec("0001", "k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Op: opStart, Job: "0001", Attempt: 1, PID: 99, PIDStart: 5}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Re-create the pre-compaction log next to the snapshot, as if the
	// crash hit between the two renames.
	oldA, _ := json.Marshal(Record{Seq: 1, Op: opAccept, Job: "0001", IdemKey: "k1",
		Spec: &Spec{Scale: "small", Seed: 42}})
	oldB, _ := json.Marshal(Record{Seq: 2, Op: opStart, Job: "0001", Attempt: 1, PID: 99, PIDStart: 5})
	stale := string(oldA) + "\n" + string(oldB) + "\n"
	if err := os.WriteFile(filepath.Join(dir, storeLogFile), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenJobStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	js, ok := s2.Job("0001")
	if !ok || js.Phase != StateRunning || js.Attempt != 1 || js.PID != 99 {
		t.Fatalf("overlap replay wrong: %+v", js)
	}
	if len(s2.Jobs()) != 1 {
		t.Fatalf("job duplicated: %d jobs", len(s2.Jobs()))
	}
	// New appends continue past the snapshot's sequence.
	rec, err := s2.Append(Record{Op: opDone, Job: "0001", Phase: StateDone})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq <= 2 {
		t.Fatalf("sequence regressed to %d", rec.Seq)
	}
}

func TestStoreExistsDetection(t *testing.T) {
	dir := t.TempDir()
	if StoreExists(dir) {
		t.Fatal("empty dir detected as store")
	}
	s, err := OpenJobStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !StoreExists(dir) {
		t.Fatal("store dir not detected")
	}
}
