package jobd

import (
	"fmt"
	"path/filepath"
	"time"

	"ptlsim/internal/supervisor"
)

// recoverFromStore rebuilds the daemon's runtime state from the
// replayed job store: terminal jobs come back as status (and keep
// their idempotency mapping), queued jobs are re-admitted to the
// queue, and running jobs are staged for adopt-or-reap once Start
// launches the pool. It also sizes the queue: recovered queued jobs
// must all fit even if they exceed the configured depth (they were
// admitted legitimately by the previous incarnation).
func (d *Daemon) recoverFromStore() error {
	states := d.store.Jobs()
	d.recovery.Jobs = len(states)
	d.recovery.Skipped = d.store.Skipped()
	d.nextID = d.store.MaxID()

	var queued []*job
	for i := range states {
		js := &states[i]
		j := d.resolveJob(js.Spec)
		j.submitted = parseRFC3339(js.SubmittedAt)
		j.st = Status{
			ID:          js.ID,
			State:       js.Phase,
			Spec:        j.spec,
			Attempts:    js.Attempt,
			Kind:        js.Kind,
			Error:       js.Error,
			Result:      js.Result,
			SubmittedAt: js.SubmittedAt,
			StartedAt:   js.StartedAt,
			FinishedAt:  js.FinishedAt,
			Dir:         filepath.Join(d.cfg.Dir, "jobs", js.ID),
		}
		d.jobs[js.ID] = j
		d.order = append(d.order, js.ID)
		// The campaign epoch fence is durable: every accepted spec is in
		// the store, so the highest epoch per cell survives a crash.
		if ck := js.Spec.CellKey(); ck != "" && js.Spec.Epoch > d.cellEpoch[ck] {
			d.cellEpoch[ck] = js.Spec.Epoch
		}

		switch js.Phase {
		case StateDone, StateFailed:
			d.recovery.Terminal++
			if fin, sub := parseRFC3339(js.FinishedAt), j.submitted; !fin.IsZero() && !sub.IsZero() {
				j.st.ElapsedMs = fin.Sub(sub).Milliseconds()
				if js.Phase == StateDone {
					d.noteLatency(j.st.ElapsedMs)
				}
			}
		case StateQueued:
			d.recovery.Requeued++
			queued = append(queued, j)
		case StateRunning:
			d.recovery.Resumed++
			// A fresh respawn budget per daemon incarnation: the daemon
			// crashing is not evidence against the job, and a chaos soak
			// of N daemon kills must not exhaust a per-job budget.
			j.restarts += js.Attempt
			d.resume = append(d.resume, resumeInfo{j: j, o: orphan{
				pid:      js.PID,
				pidStart: js.PIDStart,
				started:  parseRFC3339(js.StartedAt),
				attempt:  maxInt(js.Attempt, 1),
			}})
		default:
			return fmt.Errorf("jobd: store job %s in unknown phase %q", js.ID, js.Phase)
		}
	}

	depth := d.cfg.QueueDepth
	if len(queued) > depth {
		depth = len(queued)
	}
	d.queue = make(chan *job, depth)
	for _, j := range queued {
		d.queue <- j
	}

	if d.recovery.Requeued > 0 || d.recovery.Resumed > 0 || d.recovery.Skipped > 0 {
		d.count("jobd.recovery.runs")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventRecover,
			Message: fmt.Sprintf("store replayed: %d job(s), %d terminal, %d requeued, %d running (adopt-or-reap), %d torn line(s) skipped",
				d.recovery.Jobs, d.recovery.Terminal, d.recovery.Requeued,
				d.recovery.Resumed, d.recovery.Skipped)})
	}
	return nil
}

func parseRFC3339(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
