package jobd

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"ptlsim/internal/supervisor"
)

// recoverFromStore rebuilds the daemon's runtime state from the
// replayed job store: terminal jobs come back as status (and keep
// their idempotency mapping), queued jobs are re-admitted to the
// admission queue — whose per-tenant priority heaps restore the
// pre-crash dequeue order, since Priority and Tenant ride in the
// persisted spec — and running jobs are staged for adopt-or-reap once
// Start launches the pool, with their tenant's running slot re-charged
// so per-tenant quota accounting survives the restart. Recovered
// queued jobs may exceed the configured depth (they were admitted
// legitimately by the previous incarnation); admission stays closed to
// new work until the backlog drains below it.
//
// The completed-job latency ring is re-seeded here too, in completion
// order, so the first Retry-After after a restart reflects measured
// drain rate instead of the cold-start constant — the recorded
// submit/finish stamps survive snapshot compaction in JobState.
func (d *Daemon) recoverFromStore() error {
	states := d.store.Jobs()
	d.recovery.Jobs = len(states)
	d.recovery.Skipped = d.store.Skipped()
	d.nextID = d.store.MaxID()

	type latSample struct {
		fin time.Time
		ms  int64
	}
	var doneLats []latSample
	for i := range states {
		js := &states[i]
		j := d.resolveJob(js.Spec)
		j.submitted = parseRFC3339(js.SubmittedAt)
		j.st = Status{
			ID:          js.ID,
			State:       js.Phase,
			Spec:        j.spec,
			Attempts:    js.Attempt,
			Kind:        js.Kind,
			Error:       js.Error,
			Result:      js.Result,
			SubmittedAt: js.SubmittedAt,
			StartedAt:   js.StartedAt,
			FinishedAt:  js.FinishedAt,
			Dir:         filepath.Join(d.cfg.Dir, "jobs", js.ID),
		}
		if start := parseRFC3339(js.StartedAt); !start.IsZero() && !j.submitted.IsZero() {
			j.st.QueueWaitMs = start.Sub(j.submitted).Milliseconds()
		}
		d.jobs[js.ID] = j
		d.order = append(d.order, js.ID)
		// The campaign epoch fence is durable: every accepted spec is in
		// the store, so the highest epoch per cell survives a crash.
		if ck := js.Spec.CellKey(); ck != "" && js.Spec.Epoch > d.cellEpoch[ck] {
			d.cellEpoch[ck] = js.Spec.Epoch
		}

		switch js.Phase {
		case StateDone, StateFailed:
			d.recovery.Terminal++
			if fin, sub := parseRFC3339(js.FinishedAt), j.submitted; !fin.IsZero() && !sub.IsZero() {
				j.st.ElapsedMs = fin.Sub(sub).Milliseconds()
				if js.Phase == StateDone {
					ms := j.st.ElapsedMs
					if ms <= 0 {
						ms = 1 // sub-millisecond completion: still a sample
					}
					doneLats = append(doneLats, latSample{fin: fin, ms: ms})
				}
			}
		case StateQueued:
			d.recovery.Requeued++
			d.queue.push(j)
		case StateRunning:
			d.recovery.Resumed++
			// A fresh respawn budget per daemon incarnation: the daemon
			// crashing is not evidence against the job, and a chaos soak
			// of N daemon kills must not exhaust a per-job budget.
			j.restarts += js.Attempt
			d.queue.noteRunning(js.Spec.Tenant)
			d.resume = append(d.resume, resumeInfo{j: j, o: orphan{
				pid:      js.PID,
				pidStart: js.PIDStart,
				started:  parseRFC3339(js.StartedAt),
				attempt:  maxInt(js.Attempt, 1),
			}})
		default:
			return fmt.Errorf("jobd: store job %s in unknown phase %q", js.ID, js.Phase)
		}
	}

	// Seed the latency ring oldest-completion-first: the bounded ring
	// keeps the most recent samples, so a store holding more history
	// than the ring leaves the estimate reflecting the newest drain
	// rate, not whichever jobs happened to be accepted first.
	sort.Slice(doneLats, func(i, k int) bool { return doneLats[i].fin.Before(doneLats[k].fin) })
	for _, s := range doneLats {
		d.noteLatency(s.ms)
	}

	if d.recovery.Requeued > 0 || d.recovery.Resumed > 0 || d.recovery.Skipped > 0 {
		d.count("jobd.recovery.runs")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventRecover,
			Message: fmt.Sprintf("store replayed: %d job(s), %d terminal, %d requeued, %d running (adopt-or-reap), %d torn line(s) skipped",
				d.recovery.Jobs, d.recovery.Terminal, d.recovery.Requeued,
				d.recovery.Resumed, d.recovery.Skipped)})
	}
	return nil
}

func parseRFC3339(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
