package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// campaignSpec is smallSpec stamped as a campaign cell at an epoch.
func campaignSpec(cell string, epoch int64) Spec {
	s := smallSpec()
	s.Campaign, s.Cell, s.Epoch = "camp", cell, epoch
	return s
}

// TestVersionEndpoint: GET /version reports build identity plus the
// protocol schema hash the dispatcher uses to refuse mixed fleets.
func TestVersionEndpoint(t *testing.T) {
	d := newDaemon(t, nil, nil)
	defer drainDaemon(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /version: %d", resp.StatusCode)
	}
	var v Version
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.SchemaHash == 0 || v.SchemaHash != SchemaHash() {
		t.Fatalf("schema hash %016x, want %016x (non-zero)", v.SchemaHash, SchemaHash())
	}
	if v.Go == "" || v.Version == "" {
		t.Fatalf("version info incomplete: %+v", v)
	}
}

// TestSchemaHashStability: the hash is deterministic within a build —
// it only moves when the wire types or state machine change.
func TestSchemaHashStability(t *testing.T) {
	if SchemaHash() != SchemaHash() {
		t.Fatal("schema hash is not deterministic")
	}
}

// TestJobsPhaseFilterAndLimit: GET /jobs?phase=&limit= filters and
// bounds the listing, and bad parameters are 400s, not empty lists.
func TestJobsPhaseFilterAndLimit(t *testing.T) {
	d := newDaemon(t, nil, func(cfg *Config) { cfg.Workers = 2 })
	defer drainDaemon(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := d.Submit(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitJob(t, d, id, time.Minute); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}

	get := func(query string) []Status {
		t.Helper()
		resp, err := http.Get(srv.URL + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs%s: %d", query, resp.StatusCode)
		}
		var out []Status
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := get("?phase=done"); len(got) != 3 {
		t.Fatalf("phase=done returned %d jobs, want 3", len(got))
	}
	if got := get("?phase=failed"); len(got) != 0 {
		t.Fatalf("phase=failed returned %d jobs, want 0", len(got))
	}
	if got := get("?limit=2"); len(got) != 2 {
		t.Fatalf("limit=2 returned %d jobs, want 2", len(got))
	}
	if got := get("?phase=done&limit=1"); len(got) != 1 || got[0].State != StateDone {
		t.Fatalf("phase=done&limit=1 returned %+v", got)
	}
	for _, bad := range []string{"?phase=bogus", "?limit=-1", "?limit=x"} {
		resp, err := http.Get(srv.URL + "/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /jobs%s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestStaleEpochFenced: the daemon-side fence. Once an epoch is
// accepted for a campaign cell, lower epochs are 409s (a superseded
// lease must not re-admit its job), same-epoch idempotent replays
// still dedup to 200, and higher epochs advance the fence.
func TestStaleEpochFenced(t *testing.T) {
	jb := &syncBuffer{}
	d := newDaemon(t, jb, nil)
	defer drainDaemon(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	st1, code := httpSubmit(t, srv.URL, campaignSpec("00001", 2), "camp/00001/2")
	if code != http.StatusAccepted {
		t.Fatalf("epoch 2 submit: %d", code)
	}
	if _, code := httpSubmit(t, srv.URL, campaignSpec("00001", 1), "camp/00001/1"); code != http.StatusConflict {
		t.Fatalf("stale epoch 1 submit: %d, want 409", code)
	}
	// Same-epoch idempotent replay dedups before the fence looks.
	if st3, code := httpSubmit(t, srv.URL, campaignSpec("00001", 2), "camp/00001/2"); code != http.StatusOK || st3.ID != st1.ID {
		t.Fatalf("same-epoch replay: %d job %q, want 200 job %q", code, st3.ID, st1.ID)
	}
	if _, code := httpSubmit(t, srv.URL, campaignSpec("00001", 3), "camp/00001/3"); code != http.StatusAccepted {
		t.Fatalf("epoch 3 submit: %d, want 202", code)
	}
	// A different cell has its own fence.
	if _, code := httpSubmit(t, srv.URL, campaignSpec("00002", 1), "camp/00002/1"); code != http.StatusAccepted {
		t.Fatalf("other cell epoch 1 submit: %d, want 202", code)
	}

	found := false
	for _, e := range jb.entries(t) {
		if e.Event == "reject" && e.Kind == "stale-epoch" {
			found = true
		}
	}
	if !found {
		t.Fatal("no stale-epoch reject journaled")
	}
}

// TestFencePersistsAcrossRestart: the per-cell epoch high-water mark is
// rebuilt from the durable store, so a daemon crash does not forget
// which leases it fenced.
func TestFencePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Daemon {
		d, err := New(Config{
			Dir:              dir,
			WorkerCommand:    selfWorker(t),
			Workers:          1,
			PollInterval:     10 * time.Millisecond,
			HeartbeatTimeout: 30 * time.Second,
			Deadline:         5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		return d
	}

	d1 := mk()
	st, err := d1.Submit(campaignSpec("00007", 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, d1, st.ID, time.Minute); got.State != StateDone {
		t.Fatalf("campaign job: %s (%s)", got.State, got.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	d1.Drain(ctx)
	cancel()

	d2 := mk()
	defer drainDaemon(t, d2)
	if _, err := d2.Submit(campaignSpec("00007", 3)); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch after restart: %v, want ErrStaleEpoch", err)
	}
	if _, err := d2.Submit(campaignSpec("00007", 5)); err != nil {
		t.Fatalf("higher epoch after restart: %v", err)
	}
}

// TestEventsStreamSurvivesCompaction: an open /jobs/{id}/events stream
// keeps delivering records while the store compacts underneath it —
// churn from other jobs rolls the WAL into a snapshot mid-stream, and
// the watcher still sees its job through to the terminal record with
// strictly increasing event ids.
func TestEventsStreamSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	d := newDaemon(t, nil, func(cfg *Config) {
		cfg.Dir = dir
		cfg.Workers = 2
		// Compact every two records: the watched job's own accept and
		// start records roll the WAL into a snapshot before its done
		// record exists, so the open stream necessarily spans at least
		// one compaction (the churn below adds several more).
		cfg.CompactEvery = 2
		cfg.QueueDepth = 32
	})
	defer drainDaemon(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	watched, err := d.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/jobs/" + watched.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}

	// Churn: each job contributes accept/start/done records, forcing
	// further compactions while the stream above is live.
	var churn []string
	for i := 0; i < 4; i++ {
		st, err := d.Submit(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		churn = append(churn, st.ID)
	}
	for _, id := range churn {
		waitJob(t, d, id, time.Minute)
	}

	if _, err := os.Stat(filepath.Join(dir, "store-snap.json")); err != nil {
		t.Fatalf("no compaction snapshot was written: %v", err)
	}
	events := readSSE(t, resp)
	if len(events) < 3 {
		t.Fatalf("stream too short: %+v", events)
	}
	var lastSeq int64
	ops := map[string]bool{}
	for _, ev := range events {
		if ev.id <= lastSeq {
			t.Fatalf("event ids not increasing across compaction: %d after %d", ev.id, lastSeq)
		}
		lastSeq = ev.id
		ops[ev.op] = true
	}
	for _, want := range []string{"accept", "start", "done"} {
		if !ops[want] {
			t.Fatalf("stream missing %q record: %v", want, ops)
		}
	}
	if events[len(events)-1].op != "done" {
		t.Fatalf("stream did not end at the terminal record: %+v", events[len(events)-1])
	}
}

// TestEventsReconnectAfterCompactedRestart: a client reconnecting with
// a Last-Event-ID that predates the snapshot — after a restart whose
// replay starts from a compacted store — receives the job's history as
// one synthetic "state" record instead of a gap or a hang.
func TestEventsReconnectAfterCompactedRestart(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Daemon {
		d, err := New(Config{
			Dir:              dir,
			WorkerCommand:    selfWorker(t),
			Workers:          1,
			PollInterval:     10 * time.Millisecond,
			HeartbeatTimeout: 30 * time.Second,
			Deadline:         5 * time.Minute,
			CompactEvery:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		return d
	}

	d1 := mk()
	st, err := d1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, d1, st.ID, time.Minute); got.State != StateDone {
		t.Fatalf("job: %s (%s)", got.State, got.Error)
	}
	// More churn so the terminal record itself is compacted away.
	st2, err := d1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, d1, st2.ID, time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	d1.Drain(ctx)
	cancel()

	d2 := mk()
	defer drainDaemon(t, d2)
	srv := httptest.NewServer(d2.Handler())
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp)
	if len(events) != 1 || events[0].op != "state" {
		t.Fatalf("compacted replay = %+v, want one synthetic state record", events)
	}
	rec := events[0].data
	if rec.Phase != StateDone || rec.Result == nil || rec.Result.ConsoleFNV == 0 {
		t.Fatalf("synthetic state record incomplete: %+v", rec)
	}
	if events[0].id != rec.Seq || rec.Seq == 0 {
		t.Fatalf("synthetic record id %d / seq %d", events[0].id, rec.Seq)
	}
}
