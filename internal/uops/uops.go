// Package uops defines PTLsim's internal micro-operation (uop)
// instruction set: the RISC-like operations that every x86 instruction
// is translated into before entering a simulated pipeline, together
// with their exact execution semantics (including x86 condition-code
// behavior). The same semantics functions back both the sequential
// functional core and the out-of-order core, which is what makes
// integrated (functional+timing) simulation self-checking.
package uops

import (
	"fmt"

	"ptlsim/internal/x86"
)

// ArchReg names a uop-level architectural register: the 16 GPRs, the
// 16 XMM registers, the FLAGS register (renamed like a normal register,
// split into ZAPS/CF/OF groups by the SetFlags mask), microcode
// temporaries (live only within one x86 instruction), and a hardwired
// zero register.
type ArchReg uint8

// Architectural register numbering.
const (
	// 0..15: GPRs, matching x86 encoding.
	RegRAX ArchReg = iota
	RegRCX
	RegRDX
	RegRBX
	RegRSP
	RegRBP
	RegRSI
	RegRDI
	RegR8
	RegR9
	RegR10
	RegR11
	RegR12
	RegR13
	RegR14
	RegR15
	// 16..31: XMM scalar FP registers.
	RegXMM0
)

// Remaining register numbers.
const (
	RegFlags ArchReg = 32 + iota // condition codes
	RegT0                        // microcode temporaries
	RegT1
	RegT2
	RegT3
	RegT4
	RegT5
	RegZero // hardwired zero

	// NumArchRegs is the size of the uop-level architectural register
	// file (and hence the rename table).
	NumArchRegs
)

// GPR converts an x86 general-purpose register to its uop register.
func GPR(r x86.Reg) ArchReg { return ArchReg(r) }

// XMM converts an x86 XMM register to its uop register.
func XMM(r x86.Reg) ArchReg { return ArchReg(16 + r.Enc()) }

// String names the register.
func (r ArchReg) String() string {
	switch {
	case r < 16:
		return x86.Reg(r).String()
	case r < 32:
		return fmt.Sprintf("xmm%d", r-16)
	case r == RegFlags:
		return "flags"
	case r >= RegT0 && r <= RegT5:
		return fmt.Sprintf("t%d", r-RegT0)
	case r == RegZero:
		return "zero"
	default:
		return fmt.Sprintf("ar%d", uint8(r))
	}
}

// Op is a micro-operation opcode.
type Op uint8

// Micro-operations.
const (
	OpNop Op = iota

	// Integer ALU. rd = ra OP rb (rb may be RegZero with Imm instead).
	OpMov // rd = ra + imm (ra often zero): move/load-immediate
	OpAdd
	OpSub
	OpAdc // + carry from rc (flags operand)
	OpSbb
	OpAnd
	OpOr
	OpXor
	OpAndNot // rd = ra &^ rb (used by microcode flag masking)

	// Shifts/rotates: rd = ra shift (rb|imm).
	OpShl
	OpShr
	OpSar
	OpRol
	OpRor

	// Multiply/divide.
	OpMull  // rd = low64(ra*rb)
	OpMulh  // rd = high64(signed ra*rb)
	OpMulhu // rd = high64(unsigned ra*rb)
	OpDiv   // rd = unsigned (rc:ra)/rb, faults on rb==0 or overflow
	OpRem   // rd = unsigned (rc:ra)%rb
	OpDivs  // signed divide
	OpRems  // signed remainder

	// Width changes. MemSize gives the source width.
	OpSext
	OpZext
	// Subword insert: rd = (ra &^ mask(MemSize)) | (rb & mask(MemSize)).
	// Used to write 8/16-bit results into a GPR, which preserves the
	// upper bits on x86 (unlike 32-bit writes, which zero them).
	OpIns

	// Address generation: rd = ra + (rb << Scale) + imm. Also used for
	// LEA. Never sets flags.
	OpAdda

	// Memory. Address = ra + (rb << Scale) + imm; stores take data in
	// rc. Locked forms implement x86 LOCK semantics (acquire on load,
	// release on the final store of the instruction).
	OpLd
	OpLdAcq
	OpSt
	OpStRel
	OpFence

	// Control flow. Direct branches carry both possible targets
	// (RIPTaken / RIPNot); indirect branches compute target = ra + imm.
	OpBr    // unconditional direct
	OpBrcc  // conditional on flags in rc
	OpBrInd // indirect jump/call/ret target
	OpBrZ   // taken when ra == 0 (REP iteration entry check; no flags)
	OpBrNZ  // taken when ra != 0 (REP iteration loop-back; no flags)

	// Conditional data: cond evaluated on flags in rc.
	OpSetcc // rd = cond ? 1 : 0
	OpSel   // rd = cond ? rb : ra

	// Flag gathering: rd = current flags (rc), as a value.
	OpCollcc

	// Scalar double FP. Register values hold the raw IEEE754 bits.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFCmp   // writes ZF/PF/CF like ucomisd
	OpFCvtID // int64 -> double
	OpFCvtDI // double -> int64 (truncating)

	// Assist: microcode escape for complex/privileged operations
	// (syscall, hypercall, CR writes, interrupt entry...). Always a
	// single-uop, serializing x86 instruction; the core invokes the
	// system layer's assist handler at commit.
	OpAssist

	// NumOps is the number of defined uop opcodes.
	NumOps
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpAdc: "adc", OpSbb: "sbb", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpAndNot: "andnot",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpRol: "rol", OpRor: "ror",
	OpMull: "mull", OpMulh: "mulh", OpMulhu: "mulhu",
	OpDiv: "div", OpRem: "rem", OpDivs: "divs", OpRems: "rems",
	OpSext: "sext", OpZext: "zext", OpIns: "ins", OpAdda: "adda",
	OpLd: "ld", OpLdAcq: "ld.acq", OpSt: "st", OpStRel: "st.rel",
	OpFence: "fence",
	OpBr: "br", OpBrcc: "br.cc", OpBrInd: "br.ind",
	OpBrZ: "br.z", OpBrNZ: "br.nz",
	OpSetcc: "set.cc", OpSel: "sel", OpCollcc: "collcc",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFCmp: "fcmp", OpFCvtID: "fcvt.id", OpFCvtDI: "fcvt.di",
	OpAssist: "assist",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("uop(%d)", uint8(o))
}

// Flag group masks for Uop.SetFlags: which parts of RFLAGS a uop
// writes. PTLsim renames the three groups separately so instructions
// like INC (which preserves CF) don't serialize on the carry chain.
const (
	SetZAPS uint8 = 1 << iota // ZF, AF, PF, SF
	SetCF
	SetOF
	SetAll = SetZAPS | SetCF | SetOF
)

// BranchKind classifies branch uops for the predictor.
type BranchKind uint8

// Branch kinds.
const (
	BranchNone BranchKind = iota
	BranchCond
	BranchUncond
	BranchCall
	BranchRet
	BranchIndirect
)

// AssistID selects the microcode assist routine for OpAssist uops.
type AssistID uint8

// Assist routines.
const (
	AssistNone AssistID = iota
	AssistSyscall
	AssistSysret
	AssistIretq
	AssistHypercall
	AssistPtlcall
	AssistCpuid
	AssistRdtsc
	AssistHlt
	AssistMovToCR
	AssistMovFromCR
	AssistInvlpg
	AssistUD // undefined opcode: raise #UD when executed
)

// Fault is a synchronous exception raised by uop execution.
type Fault uint8

// Fault codes, mirroring the x86 exception vectors the simulator models.
const (
	FaultNone Fault = iota
	FaultDivide
	FaultDebug
	FaultUD
	FaultGP        // privilege violation
	FaultPageRead  // page fault on load
	FaultPageWrite // page fault on store
	FaultPageExec  // page fault on instruction fetch
	FaultUnaligned // unaligned access crossing forbidden boundary
)

var faultNames = [...]string{
	FaultNone: "none", FaultDivide: "#DE", FaultDebug: "#DB",
	FaultUD: "#UD", FaultGP: "#GP",
	FaultPageRead: "#PF(read)", FaultPageWrite: "#PF(write)",
	FaultPageExec: "#PF(exec)", FaultUnaligned: "#AC",
}

// String names the fault.
func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Uop is one micro-operation. A decoded x86 instruction becomes a
// sequence of uops; SOM marks the first and EOM the last, and the
// commit unit retires all uops of an instruction atomically (x86
// atomic-commit semantics).
type Uop struct {
	Op   Op
	Size uint8 // result operand size in bytes (1/2/4/8)

	Rd, Ra, Rb, Rc ArchReg
	Imm            int64
	BImm           bool // operand b is Imm rather than the Rb register

	Cond     x86.Cond // for Brcc/Setcc/Sel
	SetFlags uint8    // flag groups written

	// Memory fields.
	MemSize uint8 // access width (also sext/zext source width)
	Scale   uint8 // index shift for adda/ld/st (0..3)

	// Branch fields.
	Branch   BranchKind
	RIPTaken uint64 // target when taken (direct branches)
	RIPNot   uint64 // fall-through RIP

	Assist AssistID

	// Instruction boundary markers and the x86 RIP of the owning
	// instruction (for precise exceptions and SMC checks).
	SOM, EOM bool
	RIP      uint64
	X86Len   uint8 // byte length of owning x86 instruction

	// NoCount marks a pseudo-instruction (the REP entry check) whose
	// EOM must not be counted as a committed x86 instruction.
	NoCount bool
}

// IsLoad reports whether the uop reads memory.
func (u *Uop) IsLoad() bool { return u.Op == OpLd || u.Op == OpLdAcq }

// IsStore reports whether the uop writes memory.
func (u *Uop) IsStore() bool { return u.Op == OpSt || u.Op == OpStRel }

// IsBranch reports whether the uop may redirect the front end.
func (u *Uop) IsBranch() bool { return u.Branch != BranchNone }

// String renders the uop for traces.
func (u *Uop) String() string {
	s := fmt.Sprintf("%s", u.Op)
	if u.Cond != 0 && (u.Op == OpBrcc || u.Op == OpSetcc || u.Op == OpSel) {
		s += "." + u.Cond.String()
	}
	s += fmt.Sprintf(" rd=%s ra=%s rb=%s rc=%s imm=%#x", u.Rd, u.Ra, u.Rb, u.Rc, u.Imm)
	if u.SOM {
		s += " SOM"
	}
	if u.EOM {
		s += " EOM"
	}
	return s
}
