package uops

import (
	"math"
	"math/bits"

	"ptlsim/internal/x86"
)

// Mask returns the value mask for an operand size in bytes.
func Mask(size uint8) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (size * 8)) - 1
}

// SignBit returns the sign-bit mask for an operand size.
func SignBit(size uint8) uint64 {
	return uint64(1) << (size*8 - 1)
}

// Truncate clips v to the operand size.
func Truncate(v uint64, size uint8) uint64 { return v & Mask(size) }

// SignExtend sign-extends the low size bytes of v to 64 bits.
func SignExtend(v uint64, size uint8) uint64 {
	if size >= 8 {
		return v
	}
	shift := 64 - uint(size)*8
	return uint64(int64(v<<shift) >> shift)
}

// groupBits converts a SetFlags mask to the RFLAGS bits it covers.
func groupBits(set uint8) uint64 {
	var m uint64
	if set&SetZAPS != 0 {
		m |= x86.FlagZF | x86.FlagSF | x86.FlagPF | x86.FlagAF
	}
	if set&SetCF != 0 {
		m |= x86.FlagCF
	}
	if set&SetOF != 0 {
		m |= x86.FlagOF
	}
	return m
}

// MergeFlags overlays the groups in set from new onto old.
func MergeFlags(old, new uint64, set uint8) uint64 {
	m := groupBits(set)
	return (old &^ m) | (new & m)
}

// zsp computes ZF, SF and PF for a result.
func zsp(res uint64, size uint8) uint64 {
	var f uint64
	if Truncate(res, size) == 0 {
		f |= x86.FlagZF
	}
	if res&SignBit(size) != 0 {
		f |= x86.FlagSF
	}
	if bits.OnesCount8(uint8(res))%2 == 0 {
		f |= x86.FlagPF
	}
	return f
}

// Exec executes one uop's value computation. a, b, c are the source
// register values (c carries the old flags for flag-consuming or
// partially-flag-writing uops, or the store data for stores). It
// returns the result value, the full new flags value (already merged
// with the old flags according to u.SetFlags), and any fault.
//
// Memory uops return the effective address as the result; the core is
// responsible for the actual access, forwarding and faults. Branch uops
// return the resolved next RIP.
func Exec(u *Uop, a, b, c uint64) (res uint64, flagsOut uint64, fault Fault) {
	size := u.Size
	if size == 0 {
		size = 8
	}
	old := c // by convention Rc=RegFlags whenever flags are read/merged
	m := Mask(size)
	sign := SignBit(size)

	merge := func(raw uint64) uint64 { return MergeFlags(old, raw, u.SetFlags) }

	switch u.Op {
	case OpNop, OpFence, OpAssist:
		return 0, old, FaultNone

	case OpMov:
		return Truncate(a+uint64(u.Imm), size), old, FaultNone

	case OpAdd, OpAdc:
		ci := uint64(0)
		if u.Op == OpAdc && old&x86.FlagCF != 0 {
			ci = 1
		}
		var carry uint64
		if size == 8 {
			res, carry = bits.Add64(a, b, ci)
		} else {
			sum := (a & m) + (b & m) + ci
			res = sum & m
			if sum > m {
				carry = 1
			}
		}
		var raw uint64
		if carry != 0 {
			raw |= x86.FlagCF
		}
		if (a^res)&(b^res)&sign != 0 {
			raw |= x86.FlagOF
		}
		if (a^b^res)&0x10 != 0 {
			raw |= x86.FlagAF
		}
		raw |= zsp(res, size)
		return res, merge(raw), FaultNone

	case OpSub, OpSbb:
		bi := uint64(0)
		if u.Op == OpSbb && old&x86.FlagCF != 0 {
			bi = 1
		}
		var borrow uint64
		if size == 8 {
			res, borrow = bits.Sub64(a, b, bi)
		} else {
			res = (a - b - bi) & m
			if (a & m) < (b&m)+bi {
				borrow = 1
			}
		}
		var raw uint64
		if borrow != 0 {
			raw |= x86.FlagCF
		}
		if (a^b)&(a^res)&sign != 0 {
			raw |= x86.FlagOF
		}
		if (a^b^res)&0x10 != 0 {
			raw |= x86.FlagAF
		}
		raw |= zsp(res, size)
		return res, merge(raw), FaultNone

	case OpAnd, OpOr, OpXor, OpAndNot:
		switch u.Op {
		case OpAnd:
			res = a & b
		case OpOr:
			res = a | b
		case OpXor:
			res = a ^ b
		case OpAndNot:
			res = a &^ b
		}
		res &= m
		return res, merge(zsp(res, size)), FaultNone

	case OpShl, OpShr, OpSar, OpRol, OpRor:
		return execShift(u, a, b, old, size)

	case OpMull:
		full := int64(SignExtend(a, size)) * int64(SignExtend(b, size))
		res = uint64(full) & m
		var raw uint64
		if SignExtend(res, size) != uint64(full) {
			raw |= x86.FlagCF | x86.FlagOF
		}
		raw |= zsp(res, size) // architecturally undefined; modeled from result
		return res, merge(raw), FaultNone

	case OpMulh:
		var hi, lo uint64
		if size == 8 {
			hi, lo = bits.Mul64(a, b)
			// Convert the unsigned 128-bit product high word to signed.
			if int64(a) < 0 {
				hi -= b
			}
			if int64(b) < 0 {
				hi -= a
			}
		} else {
			full := int64(SignExtend(a, size)) * int64(SignExtend(b, size))
			lo = uint64(full) & m
			hi = uint64(full) >> (size * 8) & m
		}
		res = hi & m
		var raw uint64
		// CF=OF=1 when the high word is not the sign extension of the
		// low word (the product did not fit).
		signFill := uint64(0)
		if lo&sign != 0 {
			signFill = m
		}
		if res != signFill&m {
			raw |= x86.FlagCF | x86.FlagOF
		}
		raw |= zsp(res, size)
		return res, merge(raw), FaultNone

	case OpMulhu:
		var hi uint64
		if size == 8 {
			hi, _ = bits.Mul64(a, b)
		} else {
			full := (a & m) * (b & m)
			hi = full >> (size * 8)
		}
		res = hi & m
		var raw uint64
		if hi != 0 {
			raw |= x86.FlagCF | x86.FlagOF
		}
		raw |= zsp(res, size)
		return res, merge(raw), FaultNone

	case OpDiv, OpRem:
		return execDivU(u, a, b, c, size)
	case OpDivs, OpRems:
		return execDivS(u, a, b, c, size)

	case OpSext:
		res = Truncate(SignExtend(a, u.MemSize), size)
		return res, old, FaultNone
	case OpZext:
		res = Truncate(a&Mask(u.MemSize), size)
		return res, old, FaultNone
	case OpIns:
		res = a&^Mask(u.MemSize) | b&Mask(u.MemSize)
		return res, old, FaultNone

	case OpAdda, OpLd, OpLdAcq, OpSt, OpStRel:
		res = a + (b << u.Scale) + uint64(u.Imm)
		if u.Op == OpAdda {
			res = Truncate(res, size)
		}
		return res, old, FaultNone

	case OpBr:
		return u.RIPTaken, old, FaultNone
	case OpBrcc:
		if u.Cond.Eval(old) {
			return u.RIPTaken, old, FaultNone
		}
		return u.RIPNot, old, FaultNone
	case OpBrInd:
		return a + uint64(u.Imm), old, FaultNone
	case OpBrZ:
		if a == 0 {
			return u.RIPTaken, old, FaultNone
		}
		return u.RIPNot, old, FaultNone
	case OpBrNZ:
		if a != 0 {
			return u.RIPTaken, old, FaultNone
		}
		return u.RIPNot, old, FaultNone

	case OpSetcc:
		if u.Cond.Eval(old) {
			return 1, old, FaultNone
		}
		return 0, old, FaultNone
	case OpSel:
		if u.Cond.Eval(old) {
			return Truncate(b, size), old, FaultNone
		}
		return Truncate(a, size), old, FaultNone
	case OpCollcc:
		return old & x86.FlagsMask, old, FaultNone

	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		x := math.Float64frombits(a)
		y := math.Float64frombits(b)
		var z float64
		switch u.Op {
		case OpFAdd:
			z = x + y
		case OpFSub:
			z = x - y
		case OpFMul:
			z = x * y
		case OpFDiv:
			z = x / y
		}
		return math.Float64bits(z), old, FaultNone

	case OpFCmp:
		x := math.Float64frombits(a)
		y := math.Float64frombits(b)
		var raw uint64
		switch {
		case math.IsNaN(x) || math.IsNaN(y):
			raw = x86.FlagZF | x86.FlagPF | x86.FlagCF
		case x == y:
			raw = x86.FlagZF
		case x < y:
			raw = x86.FlagCF
		}
		return 0, merge(raw), FaultNone

	case OpFCvtID:
		return math.Float64bits(float64(int64(a))), old, FaultNone
	case OpFCvtDI:
		x := math.Float64frombits(a)
		if math.IsNaN(x) || x >= math.MaxInt64 || x < math.MinInt64 {
			return 0x8000000000000000, old, FaultNone // x86 integer indefinite
		}
		return uint64(int64(x)), old, FaultNone
	}
	return 0, old, FaultUD
}

func execShift(u *Uop, a, b, old uint64, size uint8) (uint64, uint64, Fault) {
	bitsN := uint(size) * 8
	countMask := uint64(31)
	if size == 8 {
		countMask = 63
	}
	count := b & countMask
	if u.Op == OpRol || u.Op == OpRor {
		count %= uint64(bitsN)
	}
	if count == 0 {
		// x86: shift/rotate by zero leaves all flags unchanged.
		return Truncate(a, size), old, FaultNone
	}
	a = Truncate(a, size)
	var res uint64
	var cf, of bool
	switch u.Op {
	case OpShl:
		if count >= uint64(bitsN) {
			res = 0
			cf = false
		} else {
			res = Truncate(a<<count, size)
			cf = a&(uint64(1)<<(uint64(bitsN)-count)) != 0
		}
		of = (res&SignBit(size) != 0) != cf
	case OpShr:
		if count >= uint64(bitsN) {
			res, cf = 0, false
		} else {
			res = a >> count
			cf = a&(uint64(1)<<(count-1)) != 0
		}
		of = a&SignBit(size) != 0 // defined for count==1; modeled always
	case OpSar:
		s := SignExtend(a, size)
		if count >= uint64(bitsN) {
			count = uint64(bitsN) - 1
		}
		res = Truncate(uint64(int64(s)>>count), size)
		cf = (s>>(count-1))&1 != 0
		of = false
	case OpRol:
		res = Truncate(a<<count|a>>(uint64(bitsN)-count), size)
		cf = res&1 != 0
		of = (res&SignBit(size) != 0) != cf
	case OpRor:
		res = Truncate(a>>count|a<<(uint64(bitsN)-count), size)
		cf = res&SignBit(size) != 0
		msb2 := res&(SignBit(size)>>1) != 0
		of = (res&SignBit(size) != 0) != msb2
	}
	raw := zsp(res, size)
	if cf {
		raw |= x86.FlagCF
	}
	if of {
		raw |= x86.FlagOF
	}
	return res, MergeFlags(old, raw, u.SetFlags), FaultNone
}

// execDivU implements the unsigned divide/remainder: dividend is the
// double-width value rc:ra (rc = high word), divisor rb.
func execDivU(u *Uop, a, b, c uint64, size uint8) (uint64, uint64, Fault) {
	m := Mask(size)
	b &= m
	if b == 0 {
		return 0, c, FaultDivide
	}
	if size == 8 {
		if c >= b { // quotient would overflow 64 bits
			return 0, c, FaultDivide
		}
		q, r := bits.Div64(c, a, b)
		if u.Op == OpDiv {
			return q, c, FaultNone
		}
		return r, c, FaultNone
	}
	dividend := (c&m)<<(size*8) | (a & m)
	q := dividend / b
	r := dividend % b
	if q > m {
		return 0, c, FaultDivide
	}
	if u.Op == OpDiv {
		return q, c, FaultNone
	}
	return r, c, FaultNone
}

// execDivS implements the signed divide/remainder on rc:ra by rb.
func execDivS(u *Uop, a, b, c uint64, size uint8) (uint64, uint64, Fault) {
	m := Mask(size)
	db := int64(SignExtend(b, size))
	if db == 0 {
		return 0, c, FaultDivide
	}
	var dividend int64
	if size == 8 {
		// Only support dividends whose high word is the sign extension
		// of the low word (the CQO+IDIV idiom); anything wider faults,
		// as real hardware would on quotient overflow.
		if c != uint64(int64(a)>>63) {
			return 0, c, FaultDivide
		}
		dividend = int64(a)
	} else {
		dividend = int64(SignExtend((c&m)<<(size*8)|(a&m), size*2))
	}
	if dividend == math.MinInt64 && db == -1 {
		return 0, c, FaultDivide
	}
	q := dividend / db
	r := dividend % db
	if size < 8 {
		if q > int64(m>>1) || q < -int64(m>>1)-1 {
			return 0, c, FaultDivide
		}
	}
	if u.Op == OpDivs {
		return uint64(q) & m, c, FaultNone
	}
	return uint64(r) & m, c, FaultNone
}
