package uops

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ptlsim/internal/x86"
)

func u(op Op, size uint8) *Uop {
	return &Uop{Op: op, Size: size, SetFlags: SetAll}
}

func TestAddFlags(t *testing.T) {
	cases := []struct {
		size    uint8
		a, b    uint64
		res     uint64
		cf, of  bool
		zf, sf  bool
	}{
		{1, 0x7F, 0x01, 0x80, false, true, false, true},
		{1, 0xFF, 0x01, 0x00, true, false, true, false},
		{1, 0x80, 0x80, 0x00, true, true, true, false},
		{4, 0x7FFFFFFF, 1, 0x80000000, false, true, false, true},
		{8, math.MaxUint64, 1, 0, true, false, true, false},
		{8, 5, 7, 12, false, false, false, false},
	}
	for i, tc := range cases {
		res, fl, fault := Exec(u(OpAdd, tc.size), tc.a, tc.b, 0)
		if fault != FaultNone {
			t.Fatalf("#%d fault %v", i, fault)
		}
		if res != tc.res {
			t.Errorf("#%d res = %#x, want %#x", i, res, tc.res)
		}
		check := func(name string, bit uint64, want bool) {
			if (fl&bit != 0) != want {
				t.Errorf("#%d flag %s = %v, want %v", i, name, fl&bit != 0, want)
			}
		}
		check("CF", x86.FlagCF, tc.cf)
		check("OF", x86.FlagOF, tc.of)
		check("ZF", x86.FlagZF, tc.zf)
		check("SF", x86.FlagSF, tc.sf)
	}
}

func TestSubFlags(t *testing.T) {
	// 0 - 1 = 0xFF..: borrow set, SF set.
	res, fl, _ := Exec(u(OpSub, 8), 0, 1, 0)
	if res != math.MaxUint64 || fl&x86.FlagCF == 0 || fl&x86.FlagSF == 0 {
		t.Fatalf("0-1: res=%#x flags=%#x", res, fl)
	}
	// INT_MIN - 1 overflows.
	_, fl, _ = Exec(u(OpSub, 8), 0x8000000000000000, 1, 0)
	if fl&x86.FlagOF == 0 {
		t.Fatal("INT64_MIN - 1 should set OF")
	}
	// cmp equal: ZF.
	_, fl, _ = Exec(u(OpSub, 4), 42, 42, 0)
	if fl&x86.FlagZF == 0 || fl&x86.FlagCF != 0 {
		t.Fatalf("42-42 flags=%#x", fl)
	}
}

func TestAdcSbbChainProperty(t *testing.T) {
	// A 128-bit add implemented as add+adc must match big arithmetic.
	f := func(a0, a1, b0, b1 uint64) bool {
		lo, fl, _ := Exec(u(OpAdd, 8), a0, b0, 0)
		hi, _, _ := Exec(u(OpAdc, 8), a1, b1, fl)
		carry := uint64(0)
		if a0 > math.MaxUint64-b0 {
			carry = 1
		}
		return lo == a0+b0 && hi == a1+b1+carry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIncPreservesCF(t *testing.T) {
	// INC writes ZAPS and OF but not CF: simulate by SetFlags without CF.
	op := &Uop{Op: OpAdd, Size: 8, SetFlags: SetZAPS | SetOF, Imm: 0}
	old := uint64(x86.FlagCF)
	_, fl, _ := Exec(op, 1, 1, old)
	if fl&x86.FlagCF == 0 {
		t.Fatal("partial flag write clobbered CF")
	}
	if fl&x86.FlagZF != 0 {
		t.Fatal("1+1 should clear ZF")
	}
}

func TestLogicClearsCFOF(t *testing.T) {
	old := uint64(x86.FlagCF | x86.FlagOF)
	_, fl, _ := Exec(u(OpAnd, 8), 0xF0, 0x0F, old)
	if fl&(x86.FlagCF|x86.FlagOF) != 0 {
		t.Fatalf("and should clear CF/OF: %#x", fl)
	}
	if fl&x86.FlagZF == 0 {
		t.Fatal("0xF0 & 0x0F should set ZF")
	}
}

func TestShiftByZeroPreservesFlags(t *testing.T) {
	old := uint64(x86.FlagCF | x86.FlagZF | x86.FlagOF)
	res, fl, _ := Exec(u(OpShl, 8), 0x1234, 0, old)
	if res != 0x1234 || fl != old {
		t.Fatalf("shl by 0: res=%#x flags=%#x", res, fl)
	}
	// Count masking: shift of 64 on a 32-bit op uses count&31 = 0.
	res, fl, _ = Exec(u(OpShl, 4), 0x1234, 64, old)
	if res != 0x1234 || fl != old {
		t.Fatalf("shl32 by 64: res=%#x flags=%#x", res, fl)
	}
}

func TestShiftSemantics(t *testing.T) {
	res, fl, _ := Exec(u(OpShl, 1), 0x81, 1, 0)
	if res != 0x02 || fl&x86.FlagCF == 0 {
		t.Fatalf("shl8 0x81,1: res=%#x fl=%#x", res, fl)
	}
	res, fl, _ = Exec(u(OpShr, 1), 0x03, 1, 0)
	if res != 0x01 || fl&x86.FlagCF == 0 {
		t.Fatalf("shr8 3,1: res=%#x fl=%#x", res, fl)
	}
	res, _, _ = Exec(u(OpSar, 1), 0x80, 7, 0)
	if res != 0xFF {
		t.Fatalf("sar8 0x80,7 = %#x, want 0xFF", res)
	}
	res, _, _ = Exec(u(OpRol, 1), 0x81, 1, 0)
	if res != 0x03 {
		t.Fatalf("rol8 0x81,1 = %#x", res)
	}
	res, _, _ = Exec(u(OpRor, 1), 0x01, 1, 0)
	if res != 0x80 {
		t.Fatalf("ror8 1,1 = %#x", res)
	}
}

func TestMulDivIdentityProperty(t *testing.T) {
	// For random a, b (b != 0): div/rem of the widened product plus
	// remainder reconstructs the dividend.
	f := func(a, b uint64) bool {
		if b == 0 {
			return true
		}
		hiU := &Uop{Op: OpMulhu, Size: 8, SetFlags: SetAll}
		loU := &Uop{Op: OpMull, Size: 8, SetFlags: SetAll}
		hi, _, _ := Exec(hiU, a, b, 0)
		_, _, _ = Exec(loU, a, b, 0)
		// unsigned (hi:lo)/b == a when lo = a*b.
		lo := a * b
		q, _, f1 := Exec(&Uop{Op: OpDiv, Size: 8}, lo, b, hi)
		r, _, f2 := Exec(&Uop{Op: OpRem, Size: 8}, lo, b, hi)
		return f1 == FaultNone && f2 == FaultNone && q == a && r == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivFaults(t *testing.T) {
	if _, _, f := Exec(&Uop{Op: OpDiv, Size: 8}, 10, 0, 0); f != FaultDivide {
		t.Fatal("divide by zero must fault")
	}
	// Quotient overflow: high word >= divisor.
	if _, _, f := Exec(&Uop{Op: OpDiv, Size: 8}, 0, 5, 5); f != FaultDivide {
		t.Fatal("quotient overflow must fault")
	}
	// Signed INT_MIN / -1 overflows.
	minInt := uint64(0x8000000000000000)
	if _, _, f := Exec(&Uop{Op: OpDivs, Size: 8}, minInt, ^uint64(0), ^uint64(0)); f != FaultDivide {
		t.Fatal("INT_MIN / -1 must fault")
	}
}

func TestSignedDiv(t *testing.T) {
	// -7 / 2 = -3 rem -1 (x86 truncates toward zero).
	a := uint64(0xFFFFFFFFFFFFFFF9) // -7
	c := ^uint64(0)                 // sign extension
	q, _, f := Exec(&Uop{Op: OpDivs, Size: 8}, a, 2, c)
	if f != FaultNone || int64(q) != -3 {
		t.Fatalf("-7/2 = %d fault %v", int64(q), f)
	}
	r, _, _ := Exec(&Uop{Op: OpRems, Size: 8}, a, 2, c)
	if int64(r) != -1 {
		t.Fatalf("-7%%2 = %d", int64(r))
	}
}

func TestDiv32(t *testing.T) {
	// 32-bit: dividend = EDX:EAX.
	q, _, f := Exec(&Uop{Op: OpDiv, Size: 4}, 0x10, 0x3, 0x1)
	// dividend = (1<<32)|0x10 = 4294967312; /3 = 1431655770 rem 2
	if f != FaultNone || q != 1431655770 {
		t.Fatalf("div32: q=%d fault=%v", q, f)
	}
	r, _, _ := Exec(&Uop{Op: OpRem, Size: 4}, 0x10, 0x3, 0x1)
	if r != 2 {
		t.Fatalf("rem32 = %d", r)
	}
}

func TestSextZext(t *testing.T) {
	res, _, _ := Exec(&Uop{Op: OpSext, Size: 8, MemSize: 1}, 0x80, 0, 0)
	if res != 0xFFFFFFFFFFFFFF80 {
		t.Fatalf("sext8 = %#x", res)
	}
	res, _, _ = Exec(&Uop{Op: OpZext, Size: 8, MemSize: 2}, 0xFFFF1234, 0, 0)
	if res != 0x1234 {
		t.Fatalf("zext16 = %#x", res)
	}
}

func TestAddaAddressing(t *testing.T) {
	op := &Uop{Op: OpAdda, Size: 8, Scale: 3, Imm: -16}
	res, _, _ := Exec(op, 0x1000, 4, 0)
	if res != 0x1000+32-16 {
		t.Fatalf("adda = %#x", res)
	}
}

func TestLoadEffectiveAddress(t *testing.T) {
	op := &Uop{Op: OpLd, Size: 8, MemSize: 8, Scale: 2, Imm: 8}
	addr, _, _ := Exec(op, 0x2000, 3, 0)
	if addr != 0x2000+12+8 {
		t.Fatalf("ld ea = %#x", addr)
	}
}

func TestBranchResolution(t *testing.T) {
	br := &Uop{Op: OpBrcc, Cond: x86.CondE, RIPTaken: 0x100, RIPNot: 0x105}
	next, _, _ := Exec(br, 0, 0, x86.FlagZF)
	if next != 0x100 {
		t.Fatalf("taken branch -> %#x", next)
	}
	next, _, _ = Exec(br, 0, 0, 0)
	if next != 0x105 {
		t.Fatalf("not-taken branch -> %#x", next)
	}
	ind := &Uop{Op: OpBrInd}
	next, _, _ = Exec(ind, 0x4242, 0, 0)
	if next != 0x4242 {
		t.Fatalf("indirect -> %#x", next)
	}
}

func TestSetccSel(t *testing.T) {
	set := &Uop{Op: OpSetcc, Size: 1, Cond: x86.CondNE}
	res, _, _ := Exec(set, 0, 0, 0)
	if res != 1 {
		t.Fatal("setne with ZF clear should be 1")
	}
	sel := &Uop{Op: OpSel, Size: 8, Cond: x86.CondE}
	res, _, _ = Exec(sel, 111, 222, x86.FlagZF)
	if res != 222 {
		t.Fatalf("sel taken = %d", res)
	}
	res, _, _ = Exec(sel, 111, 222, 0)
	if res != 111 {
		t.Fatalf("sel not taken = %d", res)
	}
}

func TestFPOps(t *testing.T) {
	a := math.Float64bits(1.5)
	b := math.Float64bits(2.25)
	res, _, _ := Exec(&Uop{Op: OpFAdd, Size: 8}, a, b, 0)
	if math.Float64frombits(res) != 3.75 {
		t.Fatalf("fadd = %v", math.Float64frombits(res))
	}
	res, _, _ = Exec(&Uop{Op: OpFMul, Size: 8}, a, b, 0)
	if math.Float64frombits(res) != 3.375 {
		t.Fatalf("fmul = %v", math.Float64frombits(res))
	}
	res, _, _ = Exec(&Uop{Op: OpFCvtID, Size: 8}, uint64(42), 0, 0)
	if math.Float64frombits(res) != 42.0 {
		t.Fatalf("cvt i2d = %v", math.Float64frombits(res))
	}
	res, _, _ = Exec(&Uop{Op: OpFCvtDI, Size: 8}, math.Float64bits(-3.9), 0, 0)
	if int64(res) != -3 {
		t.Fatalf("cvt d2i truncation = %d", int64(res))
	}
	res, _, _ = Exec(&Uop{Op: OpFCvtDI, Size: 8}, math.Float64bits(math.NaN()), 0, 0)
	if res != 0x8000000000000000 {
		t.Fatalf("cvt NaN = %#x", res)
	}
}

func TestFCmpFlags(t *testing.T) {
	fc := &Uop{Op: OpFCmp, Size: 8, SetFlags: SetAll}
	_, fl, _ := Exec(fc, math.Float64bits(1.0), math.Float64bits(2.0), 0)
	if fl&x86.FlagCF == 0 || fl&x86.FlagZF != 0 {
		t.Fatalf("1<2 flags=%#x", fl)
	}
	_, fl, _ = Exec(fc, math.Float64bits(2.0), math.Float64bits(2.0), 0)
	if fl&x86.FlagZF == 0 || fl&x86.FlagCF != 0 {
		t.Fatalf("2==2 flags=%#x", fl)
	}
	_, fl, _ = Exec(fc, math.Float64bits(math.NaN()), math.Float64bits(2.0), 0)
	if fl&(x86.FlagZF|x86.FlagPF|x86.FlagCF) != x86.FlagZF|x86.FlagPF|x86.FlagCF {
		t.Fatalf("NaN flags=%#x", fl)
	}
}

func TestParityFlag(t *testing.T) {
	// PF covers only the low byte; 0x03 has even parity.
	_, fl, _ := Exec(u(OpOr, 8), 0x03, 0, 0)
	if fl&x86.FlagPF == 0 {
		t.Fatal("0x03 should have PF set (even parity)")
	}
	_, fl, _ = Exec(u(OpOr, 8), 0x01, 0, 0)
	if fl&x86.FlagPF != 0 {
		t.Fatal("0x01 should have PF clear")
	}
	// High bytes don't matter.
	_, fl, _ = Exec(u(OpOr, 8), 0xFF00, 0, 0)
	if fl&x86.FlagPF == 0 {
		t.Fatal("0xFF00: low byte 0 -> even parity")
	}
}

// Exec must be a pure function: same inputs, same outputs, and never
// panic on any op/size/value combination.
func TestExecPureAndTotal(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sizes := []uint8{1, 2, 4, 8}
	for i := 0; i < 50000; i++ {
		op := &Uop{
			Op:       Op(r.Intn(int(NumOps))),
			Size:     sizes[r.Intn(4)],
			MemSize:  sizes[r.Intn(4)],
			Scale:    uint8(r.Intn(4)),
			Cond:     x86.Cond(r.Intn(16)),
			SetFlags: uint8(r.Intn(8)),
			Imm:      r.Int63() - r.Int63(),
			RIPTaken: r.Uint64(),
			RIPNot:   r.Uint64(),
		}
		a, b, c := r.Uint64(), r.Uint64(), r.Uint64()
		r1, f1, e1 := Exec(op, a, b, c)
		r2, f2, e2 := Exec(op, a, b, c)
		if r1 != r2 || f1 != f2 || e1 != e2 {
			t.Fatalf("Exec not deterministic for %s", op)
		}
	}
}

func TestMergeFlags(t *testing.T) {
	old := uint64(x86.FlagCF | x86.FlagZF)
	merged := MergeFlags(old, x86.FlagOF|x86.FlagSF, SetOF)
	if merged != x86.FlagCF|x86.FlagZF|x86.FlagOF {
		t.Fatalf("merged = %#x", merged)
	}
	if MergeFlags(old, 0, SetAll) != 0 {
		t.Fatal("SetAll should replace everything")
	}
}

func TestTruncateSignExtend(t *testing.T) {
	if Truncate(0x1FF, 1) != 0xFF {
		t.Fatal("truncate 1")
	}
	if SignExtend(0xFF, 1) != math.MaxUint64 {
		t.Fatal("sext -1")
	}
	if SignExtend(0x7F, 1) != 0x7F {
		t.Fatal("sext positive")
	}
	if Mask(8) != ^uint64(0) || Mask(4) != 0xFFFFFFFF {
		t.Fatal("masks")
	}
}

func TestMulhSigned(t *testing.T) {
	// (-1) * (-1) = 1: high word 0.
	hi, fl, _ := Exec(&Uop{Op: OpMulh, Size: 8, SetFlags: SetAll}, ^uint64(0), ^uint64(0), 0)
	if hi != 0 {
		t.Fatalf("mulh(-1,-1) = %#x", hi)
	}
	if fl&x86.FlagCF != 0 {
		t.Fatal("product fits: CF should be clear")
	}
	// INT64_MAX * 2: high word 0, low overflows -> CF set.
	_, fl, _ = Exec(&Uop{Op: OpMulh, Size: 8, SetFlags: SetAll}, uint64(math.MaxInt64), 2, 0)
	if fl&x86.FlagCF == 0 {
		t.Fatal("overflowing product should set CF")
	}
}
