// Package trace implements the interrupt and DMA trace record/inject
// scheme of the paper's §4.2: device events (interrupts and the memory
// a DMA transaction overwrote) are captured with their cycle-counter
// timestamps during one run, then injected into a later simulation run
// at exactly the recorded cycles — the technique used by commercial
// simulation toolsuites to guarantee deterministic, repeatable
// simulation of real external bus traffic.
package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"ptlsim/internal/hv"
)

// Recorder captures a domain's device event stream. Attach with
// dom.Sink = recorder.
type Recorder struct {
	events []hv.InjectedEvent
	// pending DMA payload to pair with its event (the DMA write is
	// recorded immediately before its completion interrupt).
	pendingData  []byte
	pendingBufVA uint64
}

var _ hv.TraceSink = (*Recorder)(nil)

// RecordDMAWrite implements hv.TraceSink.
func (r *Recorder) RecordDMAWrite(cycle uint64, vcpu int, bufVA uint64, data []byte) {
	r.pendingBufVA = bufVA
	r.pendingData = append([]byte(nil), data...)
}

// RecordDeviceEvent implements hv.TraceSink.
func (r *Recorder) RecordDeviceEvent(cycle uint64, vcpu, ch int) {
	ev := hv.InjectedEvent{Cycle: cycle, VCPU: vcpu, Chan: ch,
		BufVA: r.pendingBufVA, Data: r.pendingData}
	r.pendingData = nil
	r.pendingBufVA = 0
	r.events = append(r.events, ev)
}

// Trace returns the captured trace.
func (r *Recorder) Trace() *Trace {
	return &Trace{Events: append([]hv.InjectedEvent(nil), r.events...)}
}

// Trace is a recorded device event stream.
type Trace struct {
	Events []hv.InjectedEvent
}

// Injector replays a trace into a domain. Attach with
// dom.Source = NewInjector(trace); the domain suppresses its own device
// completions while a source is attached.
type Injector struct {
	events []hv.InjectedEvent
	next   int
}

var _ hv.TraceSource = (*Injector)(nil)

// NewInjector builds an injector over the trace (events must be in
// cycle order, as the recorder produces them).
func NewInjector(t *Trace) *Injector {
	return &Injector{events: t.Events}
}

// NextBefore implements hv.TraceSource.
func (in *Injector) NextBefore(cycle uint64) []hv.InjectedEvent {
	start := in.next
	for in.next < len(in.events) && in.events[in.next].Cycle <= cycle {
		in.next++
	}
	return in.events[start:in.next]
}

// NextCycle implements hv.TraceSource.
func (in *Injector) NextCycle() (uint64, bool) {
	if in.next >= len(in.events) {
		return 0, false
	}
	return in.events[in.next].Cycle, true
}

// Remaining reports how many events have not been injected yet.
func (in *Injector) Remaining() int { return len(in.events) - in.next }

// Serialization: a simple length-prefixed binary format so traces can
// be written by cmd/ptlmon and replayed later.

const magic = 0x50544C54 // "PTLT"

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	le := binary.LittleEndian
	hdr := make([]byte, 12)
	le.PutUint32(hdr, magic)
	le.PutUint64(hdr[4:], uint64(len(t.Events)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, ev := range t.Events {
		rec := make([]byte, 8+4+4+8+8)
		le.PutUint64(rec[0:], ev.Cycle)
		le.PutUint32(rec[8:], uint32(ev.VCPU))
		le.PutUint32(rec[12:], uint32(ev.Chan))
		le.PutUint64(rec[16:], ev.BufVA)
		le.PutUint64(rec[24:], uint64(len(ev.Data)))
		if _, err := w.Write(rec); err != nil {
			return err
		}
		if _, err := w.Write(ev.Data); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a trace.
func Read(r io.Reader) (*Trace, error) {
	le := binary.LittleEndian
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if le.Uint32(hdr) != magic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	n := le.Uint64(hdr[4:])
	if n > 1<<24 {
		return nil, fmt.Errorf("trace: implausible event count %d", n)
	}
	t := &Trace{Events: make([]hv.InjectedEvent, 0, n)}
	for i := uint64(0); i < n; i++ {
		rec := make([]byte, 32)
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, err
		}
		ev := hv.InjectedEvent{
			Cycle: le.Uint64(rec[0:]),
			VCPU:  int(le.Uint32(rec[8:])),
			Chan:  int(le.Uint32(rec[12:])),
			BufVA: le.Uint64(rec[16:]),
		}
		dn := le.Uint64(rec[24:])
		if dn > 1<<26 {
			return nil, fmt.Errorf("trace: implausible DMA size %d", dn)
		}
		if dn > 0 {
			ev.Data = make([]byte, dn)
			if _, err := io.ReadFull(r, ev.Data); err != nil {
				return nil, err
			}
		}
		t.Events = append(t.Events, ev)
	}
	return t, nil
}

// RoundTrip is a convenience for tests: serialize and re-read.
func (t *Trace) RoundTrip() (*Trace, error) {
	var buf bytes.Buffer
	if err := t.Write(&buf); err != nil {
		return nil, err
	}
	return Read(&buf)
}
