package trace

import (
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/hv"
	"ptlsim/internal/kern"
	"ptlsim/internal/stats"
	"ptlsim/internal/x86"
)

// diskGuest builds a domain whose single process asks the kernel...
// the block device is kernel-level, so the "process" here is the
// kernel boot path itself: we use a raw kernel-mode program as the
// guest (no scheduler) that issues a block read, halts until the
// completion event, checksums the DMA'd data and prints it.
//
// To keep this self-contained we construct the domain manually rather
// than through the full kernel builder.
func diskGuest(t *testing.T) (*hv.Domain, *stats.Tree) {
	t.Helper()
	tree := stats.NewTree()

	// Reuse the kern builder for memory layout, but run our own
	// kernel-mode program as the "kernel": program below at the boot
	// entry performs the DMA dance directly.
	a := x86.NewAssembler(kern.KernelTextVA)
	// Block-read sectors 0..3 (2 KiB) into the kernel data area + 0x800.
	kd := uint64(kern.KernelDataVA) // force non-constant conversion
	bufVA := int64(kd + 0x800)
	a.Mov(x86.R(x86.RDI), x86.I(0)) // sector
	a.Mov(x86.R(x86.RSI), x86.I(bufVA))
	a.Mov(x86.R(x86.RDX), x86.I(4)) // sectors
	a.Mov(x86.R(x86.RAX), x86.I(hv.HcBlockRead))
	a.Hypercall()
	// Wait for the completion event: hlt, then ack.
	wait := a.Mark()
	a.Hlt()
	a.Mov(x86.R(x86.RAX), x86.I(hv.HcEventAck))
	a.Hypercall()
	a.Test(x86.R(x86.RAX), x86.I(1<<hv.ChanBlock))
	a.Jcc(x86.CondE, wait)
	// Checksum the 2 KiB buffer.
	a.Mov(x86.R(x86.RBX), x86.I(0))
	a.Mov(x86.R(x86.RSI), x86.I(bufVA))
	a.Mov(x86.R(x86.RCX), x86.I(2048))
	top := a.Mark()
	a.Movzx(x86.RDX, x86.M(x86.RSI, 0), 1)
	a.Add(x86.R(x86.RBX), x86.R(x86.RDX))
	a.Inc(x86.R(x86.RSI))
	a.Dec(x86.R(x86.RCX))
	a.Cmp(x86.R(x86.RCX), x86.I(0))
	a.Jcc(x86.CondNE, top)
	// Store result at bufVA-8 and read TSC for timing identity.
	a.Mov(x86.R(x86.RDI), x86.I(bufVA - 8))
	a.Mov(x86.M(x86.RDI, 0), x86.R(x86.RBX))
	a.Rdtsc()
	a.Mov(x86.R(x86.RDI), x86.I(bufVA - 16))
	a.Mov(x86.M(x86.RDI, 0), x86.R(x86.RAX))
	// Shut down.
	a.Mov(x86.R(x86.RDI), x86.I(0))
	a.Mov(x86.R(x86.RAX), x86.I(hv.HcShutdown))
	a.Hypercall()
	a.Hlt()
	prog, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	// Build via the kernel builder's memory plumbing: a dummy process
	// keeps the builder happy; VCPU0 boots our program instead.
	dummy := x86.NewAssembler(kern.UserTextVA)
	dummy.Ptlcall()
	dcode, _ := dummy.Bytes()
	_ = dcode

	spec := kern.BuildSpec{
		Procs: []kern.ProcSpec{{Name: "dummy", Code: dcode, DataPages: 1}},
		Tree:  tree,
	}
	img, err := kern.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the kernel text with our program and point the boot
	// entry at it.
	if f := img.KernCtx.WriteVirtBytes(kern.KernelTextVA, prog); f != 0 {
		t.Fatalf("loading disk guest: %v", f)
	}
	img.Domain.VCPUs[0].RIP = kern.KernelTextVA

	// A deterministic disk image.
	img.Domain.Disk = make([]byte, 64*512)
	for i := range img.Domain.Disk {
		img.Domain.Disk[i] = byte(i*13 + 7)
	}
	img.Domain.BlockLat = 5000
	return img.Domain, tree
}

func run(t *testing.T, dom *hv.Domain, tree *stats.Tree) *core.Machine {
	t.Helper()
	m := core.NewMachine(dom, tree, core.DefaultConfig())
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func readResult(t *testing.T, dom *hv.Domain) (sum, tsc uint64) {
	t.Helper()
	ctx := dom.VCPUs[0]
	sum, f := ctx.ReadVirt(uint64(kern.KernelDataVA)+0x800-8, 8)
	if f != 0 {
		t.Fatal(f)
	}
	tsc, f = ctx.ReadVirt(uint64(kern.KernelDataVA)+0x800-16, 8)
	if f != 0 {
		t.Fatal(f)
	}
	return sum, tsc
}

func TestRecordThenInject(t *testing.T) {
	// Run A: record the DMA completion trace.
	domA, treeA := diskGuest(t)
	rec := &Recorder{}
	domA.Sink = rec
	run(t, domA, treeA)
	sumA, tscA := readResult(t, domA)
	tr := rec.Trace()
	if len(tr.Events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(tr.Events))
	}
	if tr.Events[0].Chan != hv.ChanBlock || len(tr.Events[0].Data) != 2048 {
		t.Fatalf("event: chan=%d data=%d", tr.Events[0].Chan, len(tr.Events[0].Data))
	}

	// Run B: replay. The domain's own DMA path is suppressed; data and
	// interrupt come from the trace at the recorded cycle, so results
	// and timing are identical.
	domB, treeB := diskGuest(t)
	// Corrupt B's disk to prove the data comes from the trace.
	for i := range domB.Disk {
		domB.Disk[i] = 0xEE
	}
	inj := NewInjector(tr)
	domB.Source = inj
	run(t, domB, treeB)
	sumB, tscB := readResult(t, domB)
	if sumB != sumA {
		t.Fatalf("replayed checksum %#x != recorded %#x", sumB, sumA)
	}
	if tscB != tscA {
		t.Fatalf("replay timing diverged: tsc %d vs %d", tscB, tscA)
	}
	if inj.Remaining() != 0 {
		t.Fatalf("%d events never injected", inj.Remaining())
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr := &Trace{Events: []hv.InjectedEvent{
		{Cycle: 12345, VCPU: 0, Chan: 2, BufVA: 0xFFFF800000400800, Data: []byte{1, 2, 3}},
		{Cycle: 99999, VCPU: 1, Chan: 0},
	}}
	got, err := tr.RoundTrip()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 {
		t.Fatalf("events = %d", len(got.Events))
	}
	e := got.Events[0]
	if e.Cycle != 12345 || e.Chan != 2 || e.BufVA != 0xFFFF800000400800 || string(e.Data) != "\x01\x02\x03" {
		t.Fatalf("event mismatch: %+v", e)
	}
	if got.Events[1].Data != nil {
		t.Fatal("empty payload should stay nil-ish")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}
