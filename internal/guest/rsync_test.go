package guest

import (
	"fmt"
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/kern"
	"ptlsim/internal/stats"
)

func smallCorpus() CorpusSpec {
	return CorpusSpec{NFiles: 3, FileSize: 4096, Seed: 7, ChangeFraction: 0.3}
}

func runBench(t *testing.T, cs CorpusSpec, mode core.Mode, maxCycles uint64) (*core.Machine, string) {
	t.Helper()
	tree := stats.NewTree()
	spec, err := RsyncBenchmark(cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(img.Domain, tree, core.DefaultConfig())
	m.SwitchMode(mode)
	if err := m.Run(maxCycles); err != nil {
		t.Fatalf("run: %v (console %q)", err, img.Domain.Console())
	}
	return m, img.Domain.Console()
}

func checkRsyncOutput(t *testing.T, cs CorpusSpec, out string) {
	t.Helper()
	_, newData := cs.Generate()
	want := fmt.Sprintf("rsync ok  %016x\n", cs.ExpectedChecksum(newData))
	if out != want {
		t.Fatalf("console = %q, want %q", out, want)
	}
}

func TestRsyncBenchmarkNative(t *testing.T) {
	cs := smallCorpus()
	_, out := runBench(t, cs, core.ModeNative, 4_000_000_000)
	checkRsyncOutput(t, cs, out)
}

func TestRsyncBenchmarkSim(t *testing.T) {
	cs := CorpusSpec{NFiles: 2, FileSize: 2048, Seed: 7, ChangeFraction: 0.3}
	m, out := runBench(t, cs, core.ModeSim, 500_000_000)
	checkRsyncOutput(t, cs, out)
	// Full-system properties: kernel and user instructions both ran.
	k := m.Tree.Lookup("core0.commit.kernel_insns").Value()
	u := m.Tree.Lookup("core0.commit.user_insns").Value()
	if k == 0 || u == 0 {
		t.Fatalf("kernel=%d user=%d instructions", k, u)
	}
}

func TestRsyncHighSimilarityUsesCopies(t *testing.T) {
	// A nearly-identical corpus should transfer mostly COPY tokens:
	// verify by comparing bytes moved through the wire pipes... proxy:
	// the run with low change fraction must push fewer socket bytes
	// than a high-change one. We measure via kernel pipe positions.
	run := func(change float64) uint64 {
		cs := CorpusSpec{NFiles: 2, FileSize: 4096, Seed: 11, ChangeFraction: change}
		tree := stats.NewTree()
		spec, err := RsyncBenchmark(cs, 0)
		if err != nil {
			t.Fatal(err)
		}
		spec.Tree = tree
		img, err := kern.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		m := core.NewMachine(img.Domain, tree, core.DefaultConfig())
		if err := m.Run(4_000_000_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		if !strings.Contains(img.Domain.Console(), "rsync ok") {
			t.Fatalf("console: %q", img.Domain.Console())
		}
		// wire-up pipe (index 2) write position = total bytes sent.
		wpos, fault := img.KernCtx.ReadVirt(
			kern.KernelDataVA+uint64(kern.GPipeTable+2*kern.PipeHdrSize+kern.PipeWPos), 8)
		if fault != 0 {
			t.Fatalf("read pipe pos: %v", fault)
		}
		return wpos
	}
	low := run(0.02)
	high := run(0.9)
	if low >= high {
		t.Fatalf("delta transfer did not shrink with similarity: low=%d high=%d", low, high)
	}
	// The delta should be a small fraction of the corpus for the
	// nearly-identical case (2*4096 data, tokens ~16B per block).
	if low > 4096 {
		t.Fatalf("low-change transfer too large: %d bytes", low)
	}
}

func TestRsyncDeterministicAcrossRuns(t *testing.T) {
	cs := CorpusSpec{NFiles: 2, FileSize: 2048, Seed: 3, ChangeFraction: 0.4}
	m1, out1 := runBench(t, cs, core.ModeNative, 4_000_000_000)
	m2, out2 := runBench(t, cs, core.ModeNative, 4_000_000_000)
	if out1 != out2 || m1.Cycle != m2.Cycle {
		t.Fatalf("nondeterministic: %q/%d vs %q/%d", out1, m1.Cycle, out2, m2.Cycle)
	}
}

func TestCorpusProperties(t *testing.T) {
	cs := DefaultCorpus()
	oldD, newD := cs.Generate()
	if len(oldD) != cs.NFiles*cs.FileSize || len(newD) != len(oldD) {
		t.Fatal("corpus size wrong")
	}
	same := 0
	for i := range oldD {
		if oldD[i] == newD[i] {
			same++
		}
	}
	frac := float64(same) / float64(len(oldD))
	if frac < 0.5 || frac > 0.99 {
		t.Fatalf("similarity %.2f out of expected band", frac)
	}
	// Deterministic generation.
	o2, n2 := cs.Generate()
	for i := range oldD {
		if oldD[i] != o2[i] || newD[i] != n2[i] {
			t.Fatal("corpus generation not deterministic")
		}
	}
}

func TestRollingSumsMatchDefinition(t *testing.T) {
	block := make([]byte, BlockSize)
	for i := range block {
		block[i] = byte(i * 7)
	}
	a, b := RollingSums(block)
	// Slide by one and verify the incremental identity the guest uses:
	// a' = a - out + in ; b' = b - B*out + a'.
	extended := append(block, 0x42)
	a2, b2 := RollingSums(extended[1:])
	out, in := uint64(block[0]), uint64(0x42)
	if a2 != a-out+in {
		t.Fatalf("a' mismatch: %d vs %d", a2, a-out+in)
	}
	if b2 != b-BlockSize*out+a2 {
		t.Fatalf("b' mismatch: %d vs %d", b2, b-BlockSize*out+a2)
	}
}
