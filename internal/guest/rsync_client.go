package guest

import (
	"ptlsim/internal/kern"
	"ptlsim/internal/x86"
)

// RsyncClient builds the rsync client: per file it receives the
// server's block signature table, slides the rolling-checksum window
// over its new copy of the file, emits COPY/LITERAL tokens (literals
// RLE-compressed), and verifies the server's reconstruction ack.
// Persistent registers: RBX=file index, RBP=file base, R12=pos,
// R13=rolling a, R14=rolling b, R15=literal run start.
func RsyncClient(cs CorpusSpec) Prog {
	ws := int64(wsBase(cs))
	tab := ws + wsBlockTab + 8 // payload of the received table frame
	fb := ws + wsFrame
	vars := ws + wsBlockTab + 0x1800 // scratch vars after table
	const (
		vAccum = 0
		vBad   = 8
		vK     = 16
	)
	fs := int64(cs.FileSize)

	return Prog{Name: "rsync", Body: func(a *x86.Assembler) {
		skip := a.NewLabel()
		a.Jmp(skip)
		fnv := emitFNV64(a)
		roll := emitRollBlock(a)
		rleenc := emitRLEEncode(a)
		recvF := emitRecvFrame(a)
		sendF := emitSendFrame(a)

		// flushLits(litStart=R15 .. pos=R12): RLE-compress and send.
		flush := a.Func(func() {
			done := a.NewLabel()
			a.Mov(x86.R(x86.RSI), x86.R(x86.R12))
			a.Sub(x86.R(x86.RSI), x86.R(x86.R15))
			a.Cmp(x86.R(x86.RSI), x86.I(0))
			a.Jcc(x86.CondE, done)
			a.Lea(x86.RDI, x86.MIdx(x86.RBP, x86.R15, 1, 0))
			a.Mov(x86.R(x86.RDX), x86.I(ws+wsRLE))
			a.Call(rleenc) // rax = rle length
			// Frame: [16+rlelen][tokLit][rawlen][rle bytes].
			a.Mov(x86.R(x86.RDX), x86.R(x86.RAX))
			a.Mov(x86.R(x86.RCX), x86.R(x86.RAX))
			a.Add(x86.R(x86.RDX), x86.I(16))
			a.Mov(x86.R(x86.RDI), x86.I(fb))
			a.Mov(x86.M(x86.RDI, 0), x86.R(x86.RDX))
			a.Mov(x86.M(x86.RDI, 8), x86.I(tokLit))
			a.Mov(x86.R(x86.RSI), x86.R(x86.R12))
			a.Sub(x86.R(x86.RSI), x86.R(x86.R15))
			a.Mov(x86.M(x86.RDI, 16), x86.R(x86.RSI))
			// Copy the RLE bytes into the frame.
			a.Mov(x86.R(x86.RSI), x86.I(ws+wsRLE))
			a.Lea(x86.RDI, x86.M(x86.RDI, 24))
			a.RepMovs(1)
			a.Mov(x86.R(x86.RDI), x86.I(PipeClientUp))
			a.Mov(x86.R(x86.RSI), x86.I(fb))
			a.Call(sendF)
			a.Bind(done)
			a.Ret()
		})

		a.Bind(skip)
		// Startup delay: page-in / ssh connection establishment (the
		// paper's phases (a)-(b) include waits that show up as idle).
		a.Mov(x86.R(x86.RDI), x86.I(3))
		SysSleep(a)
		// Zero the accumulator vars.
		a.Mov(x86.R(x86.RDI), x86.I(vars))
		a.Mov(x86.M(x86.RDI, vAccum), x86.I(0))
		a.Mov(x86.M(x86.RDI, vBad), x86.I(0))

		// Handshake: HELO up, config down.
		a.Mov(x86.R(x86.RDI), x86.I(fb))
		a.Mov(x86.M(x86.RDI, 0), x86.I(8))
		a.Mov(x86.M(x86.RDI, 8), x86.I(0x4F4C4548)) // "HELO"
		a.Mov(x86.R(x86.RDI), x86.I(PipeClientUp))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendF)
		a.Mov(x86.R(x86.RDI), x86.I(PipeDownClient))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(recvF)

		a.Mov(x86.R(x86.RBX), x86.I(0)) // file index
		fileLoop := a.Mark()
		allDone := a.NewLabel()
		a.Cmp(x86.R(x86.RBX), x86.I(int64(cs.NFiles)))
		a.Jcc(x86.CondGE, allDone)
		// RBP = file base.
		a.Mov(x86.R(x86.RBP), x86.R(x86.RBX))
		a.Imul3(x86.RBP, x86.R(x86.RBP), fs)
		a.Add(x86.R(x86.RBP), x86.I(kern.UserDataVA))

		// Receive the block table.
		a.Mov(x86.R(x86.RDI), x86.I(PipeDownClient))
		a.Mov(x86.R(x86.RSI), x86.I(ws+wsBlockTab))
		a.Call(recvF)
		a.Shr(x86.R(x86.RAX), x86.I(4)) // K = len/16
		a.Mov(x86.R(x86.RDI), x86.I(vars))
		a.Mov(x86.M(x86.RDI, vK), x86.R(x86.RAX))

		// Clear + fill the slot table.
		a.Mov(x86.R(x86.RDI), x86.I(ws+wsSlotTab))
		a.Mov(x86.R(x86.RCX), x86.I(1024))
		a.Mov(x86.R(x86.RAX), x86.I(0))
		a.RepStos(8)
		a.Mov(x86.R(x86.RCX), x86.I(0)) // idx
		fillTop := a.Mark()
		fillEnd := a.NewLabel()
		a.Mov(x86.R(x86.RDI), x86.I(vars))
		a.Cmp(x86.R(x86.RCX), x86.M(x86.RDI, vK))
		a.Jcc(x86.CondGE, fillEnd)
		a.Mov(x86.R(x86.RDX), x86.R(x86.RCX))
		a.Shl(x86.R(x86.RDX), x86.I(4))
		a.Add(x86.R(x86.RDX), x86.I(tab))
		a.Mov(x86.R(x86.RAX), x86.M(x86.RDX, 0)) // roll key
		// slot = (key ^ key>>32) & 1023
		a.Mov(x86.R(x86.RSI), x86.R(x86.RAX))
		a.Shr(x86.R(x86.RSI), x86.I(32))
		a.Xor(x86.R(x86.RSI), x86.R(x86.RAX))
		a.And(x86.R(x86.RSI), x86.I(1023))
		a.Shl(x86.R(x86.RSI), x86.I(3))
		a.Add(x86.R(x86.RSI), x86.I(ws+wsSlotTab))
		a.Cmp(x86.M(x86.RSI, 0), x86.I(0))
		fillNext := a.NewLabel()
		a.Jcc(x86.CondNE, fillNext)
		a.Lea(x86.RDX, x86.M(x86.RCX, 1)) // idx+1
		a.Mov(x86.M(x86.RSI, 0), x86.R(x86.RDX))
		a.Bind(fillNext)
		a.Inc(x86.R(x86.RCX))
		a.Jmp(fillTop)
		a.Bind(fillEnd)

		// Delta scan.
		a.Mov(x86.R(x86.R12), x86.I(0)) // pos
		a.Mov(x86.R(x86.R15), x86.I(0)) // litStart
		a.Mov(x86.R(x86.RDI), x86.R(x86.RBP))
		a.Call(roll)
		a.Mov(x86.R(x86.R13), x86.R(x86.RAX))
		a.Mov(x86.R(x86.R14), x86.R(x86.RDX))

		deltaTop := a.Mark()
		tail := a.NewLabel()
		noMatch := a.NewLabel()
		a.Lea(x86.RAX, x86.M(x86.R12, BlockSize))
		a.Cmp(x86.R(x86.RAX), x86.I(fs))
		a.Jcc(x86.CondA, tail)
		// Slot lookup.
		a.Mov(x86.R(x86.RSI), x86.R(x86.R13))
		a.Xor(x86.R(x86.RSI), x86.R(x86.R14))
		a.And(x86.R(x86.RSI), x86.I(1023))
		a.Shl(x86.R(x86.RSI), x86.I(3))
		a.Add(x86.R(x86.RSI), x86.I(ws+wsSlotTab))
		a.Mov(x86.R(x86.RDX), x86.M(x86.RSI, 0))
		a.Cmp(x86.R(x86.RDX), x86.I(0))
		a.Jcc(x86.CondE, noMatch)
		a.Dec(x86.R(x86.RDX)) // block index
		// Compare the full rolling key.
		a.Mov(x86.R(x86.RAX), x86.R(x86.R14))
		a.Shl(x86.R(x86.RAX), x86.I(32))
		a.Or(x86.R(x86.RAX), x86.R(x86.R13))
		a.Mov(x86.R(x86.RSI), x86.R(x86.RDX))
		a.Shl(x86.R(x86.RSI), x86.I(4))
		a.Add(x86.R(x86.RSI), x86.I(tab))
		a.Cmp(x86.R(x86.RAX), x86.M(x86.RSI, 0))
		a.Jcc(x86.CondNE, noMatch)
		// Strong hash verify.
		a.Push(x86.R(x86.RDX))
		a.Push(x86.R(x86.RSI))
		a.Lea(x86.RDI, x86.MIdx(x86.RBP, x86.R12, 1, 0))
		a.Mov(x86.R(x86.RSI), x86.I(BlockSize))
		a.Call(fnv)
		a.Pop(x86.R(x86.RSI))
		a.Pop(x86.R(x86.RDX))
		a.Cmp(x86.R(x86.RAX), x86.M(x86.RSI, 8))
		a.Jcc(x86.CondNE, noMatch)
		// Match: flush literals, emit COPY(idx in RDX).
		a.Push(x86.R(x86.RDX))
		a.Call(flush)
		a.Pop(x86.R(x86.RDX))
		a.Mov(x86.R(x86.RDI), x86.I(fb))
		a.Mov(x86.M(x86.RDI, 0), x86.I(16))
		a.Mov(x86.M(x86.RDI, 8), x86.I(tokCopy))
		a.Mov(x86.M(x86.RDI, 16), x86.R(x86.RDX))
		a.Mov(x86.R(x86.RDI), x86.I(PipeClientUp))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendF)
		a.Add(x86.R(x86.R12), x86.I(BlockSize))
		a.Mov(x86.R(x86.R15), x86.R(x86.R12))
		// Fresh window if one still fits.
		a.Lea(x86.RAX, x86.M(x86.R12, BlockSize))
		a.Cmp(x86.R(x86.RAX), x86.I(fs))
		a.Jcc(x86.CondA, deltaTop)
		a.Lea(x86.RDI, x86.MIdx(x86.RBP, x86.R12, 1, 0))
		a.Call(roll)
		a.Mov(x86.R(x86.R13), x86.R(x86.RAX))
		a.Mov(x86.R(x86.R14), x86.R(x86.RDX))
		a.Jmp(deltaTop)

		a.Bind(noMatch)
		// Cap the literal run.
		a.Mov(x86.R(x86.RAX), x86.R(x86.R12))
		a.Sub(x86.R(x86.RAX), x86.R(x86.R15))
		a.Cmp(x86.R(x86.RAX), x86.I(litRunCap))
		noFlush := a.NewLabel()
		a.Jcc(x86.CondB, noFlush)
		a.Call(flush)
		a.Mov(x86.R(x86.R15), x86.R(x86.R12))
		a.Bind(noFlush)
		// Slide if the window stays in bounds after advancing.
		a.Lea(x86.RAX, x86.M(x86.R12, BlockSize+1))
		a.Cmp(x86.R(x86.RAX), x86.I(fs))
		bump := a.NewLabel()
		a.Jcc(x86.CondA, bump)
		a.Movzx(x86.RCX, x86.MIdx(x86.RBP, x86.R12, 1, 0), 1)         // outgoing
		a.Movzx(x86.RDX, x86.MIdx(x86.RBP, x86.R12, 1, BlockSize), 1) // incoming
		a.Sub(x86.R(x86.R13), x86.R(x86.RCX))
		a.Add(x86.R(x86.R13), x86.R(x86.RDX))
		a.Shl(x86.R(x86.RCX), x86.I(9)) // *BlockSize
		a.Sub(x86.R(x86.R14), x86.R(x86.RCX))
		a.Add(x86.R(x86.R14), x86.R(x86.R13))
		a.Inc(x86.R(x86.R12))
		a.Jmp(deltaTop)
		a.Bind(bump)
		a.Inc(x86.R(x86.R12))
		a.Jmp(deltaTop)

		a.Bind(tail)
		a.Mov(x86.R(x86.R12), x86.I(fs))
		a.Call(flush)
		// EOF token.
		a.Mov(x86.R(x86.RDI), x86.I(fb))
		a.Mov(x86.M(x86.RDI, 0), x86.I(8))
		a.Mov(x86.M(x86.RDI, 8), x86.I(tokEOF))
		a.Mov(x86.R(x86.RDI), x86.I(PipeClientUp))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendF)
		// Ack: the server's checksum of the rebuilt file.
		a.Mov(x86.R(x86.RDI), x86.I(PipeDownClient))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(recvF)
		a.Mov(x86.R(x86.R12), x86.I(fb))
		a.Mov(x86.R(x86.R12), x86.M(x86.R12, 8)) // server checksum
		// Our own checksum of the new file.
		a.Mov(x86.R(x86.RDI), x86.R(x86.RBP))
		a.Mov(x86.R(x86.RSI), x86.I(fs))
		a.Call(fnv)
		a.Mov(x86.R(x86.RDI), x86.I(vars))
		a.Add(x86.M(x86.RDI, vAccum), x86.R(x86.RAX))
		a.Cmp(x86.R(x86.RAX), x86.R(x86.R12))
		ok := a.NewLabel()
		a.Jcc(x86.CondE, ok)
		a.Mov(x86.M(x86.RDI, vBad), x86.I(1))
		a.Bind(ok)
		a.Inc(x86.R(x86.RBX))
		a.Jmp(fileLoop)

		a.Bind(allDone)
		// Zero frame up; wait for the zero frame down.
		a.Mov(x86.R(x86.RDI), x86.I(fb))
		a.Mov(x86.M(x86.RDI, 0), x86.I(0))
		a.Mov(x86.R(x86.RDI), x86.I(PipeClientUp))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendF)
		a.Mov(x86.R(x86.RDI), x86.I(PipeDownClient))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(recvF)

		// Shutdown wait (the paper's phase (g)).
		a.Mov(x86.R(x86.RDI), x86.I(2))
		SysSleep(a)
		// Report: "rsync ok <hex>\n" or "rsync BAD <hex>\n".
		msg := ws + wsRLE // reuse as message buffer
		a.Mov(x86.R(x86.RDI), x86.I(msg))
		for i, ch := range []byte("rsync ") {
			a.Movb(x86.M(x86.RDI, int32(i)), x86.I(int64(ch)))
		}
		a.Mov(x86.R(x86.RSI), x86.I(vars))
		a.Cmp(x86.M(x86.RSI, vBad), x86.I(0))
		bad := a.NewLabel()
		wrote := a.NewLabel()
		a.Jcc(x86.CondNE, bad)
		for i, ch := range []byte("ok  ") {
			a.Movb(x86.M(x86.RDI, int32(6+i)), x86.I(int64(ch)))
		}
		a.Jmp(wrote)
		a.Bind(bad)
		for i, ch := range []byte("BAD ") {
			a.Movb(x86.M(x86.RDI, int32(6+i)), x86.I(int64(ch)))
		}
		a.Bind(wrote)
		a.Add(x86.R(x86.RDI), x86.I(10))
		a.Mov(x86.R(x86.RSI), x86.I(vars))
		a.Mov(x86.R(x86.RAX), x86.M(x86.RSI, vAccum))
		emitPrintHex(a)
		a.Movb(x86.M(x86.RDI, 0), x86.I('\n'))
		a.Mov(x86.R(x86.RDI), x86.I(msg))
		a.Mov(x86.R(x86.RSI), x86.I(27))
		SysConsWrite(a)
		SysExit(a)
	}}
}
