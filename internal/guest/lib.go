// Package guest contains the user-space workloads run inside the
// simulated domain — most importantly the rsync client/server pair,
// the stream cipher ("ssh") filter and the compressor that together
// reproduce the paper's full system benchmark — plus the small syscall
// runtime they share. All are x86-64 programs emitted through the DSL
// assembler and executed as ordinary guest code.
package guest

import (
	"ptlsim/internal/kern"
	"ptlsim/internal/x86"
)

// Prog is a buildable user program.
type Prog struct {
	Name string
	Body func(a *x86.Assembler)
}

// Build assembles the program at the user text base.
func (p Prog) Build() ([]byte, error) {
	a := x86.NewAssembler(kern.UserTextVA)
	p.Body(a)
	return a.Bytes()
}

// Syscall wrappers: arguments are placed in RDI/RSI/RDX by the caller;
// these clobber RAX (number + result) and RCX/R11 (hardware syscall).

// SysExit emits exit().
func SysExit(a *x86.Assembler) {
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysExit))
	a.Syscall()
}

// SysWrite emits write(pipe=RDI, buf=RSI, n=RDX) -> RAX.
func SysWrite(a *x86.Assembler) {
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysWrite))
	a.Syscall()
}

// SysRead emits read(pipe=RDI, buf=RSI, n=RDX) -> RAX.
func SysRead(a *x86.Assembler) {
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysRead))
	a.Syscall()
}

// SysYield emits yield().
func SysYield(a *x86.Assembler) {
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysYield))
	a.Syscall()
}

// SysClose emits close(pipe=RDI).
func SysClose(a *x86.Assembler) {
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysClose))
	a.Syscall()
}

// SysConsWrite emits conswrite(buf=RDI, n=RSI).
func SysConsWrite(a *x86.Assembler) {
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysConsWrite))
	a.Syscall()
}

// SysSleep emits sleep(ticks=RDI): the process blocks until the
// kernel's timer tick counter advances by that many ticks.
func SysSleep(a *x86.Assembler) {
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysSleep))
	a.Syscall()
}

// SysGetTSC emits gettsc() -> RAX.
func SysGetTSC(a *x86.Assembler) {
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysGetTSC))
	a.Syscall()
}

// WriteAll emits a loop performing write(pipe, buf, n) until all n
// bytes are written (handles partial writes). Registers: pipe in RDI,
// buf in RSI, n in RDX; clobbers RAX/RCX/R11 and advances RSI/RDX.
func WriteAll(a *x86.Assembler) {
	top := a.Mark()
	done := a.NewLabel()
	a.Cmp(x86.R(x86.RDX), x86.I(0))
	a.Jcc(x86.CondE, done)
	a.Push(x86.R(x86.RDI))
	SysWrite(a)
	a.Pop(x86.R(x86.RDI))
	a.Add(x86.R(x86.RSI), x86.R(x86.RAX))
	a.Sub(x86.R(x86.RDX), x86.R(x86.RAX))
	a.Jmp(top)
	a.Bind(done)
}

// ReadFull emits a loop reading exactly n bytes (pipe in RDI, buf in
// RSI, n in RDX); sets RAX=0 on EOF before completion, 1 otherwise.
func ReadFull(a *x86.Assembler) {
	top := a.Mark()
	done := a.NewLabel()
	eof := a.NewLabel()
	out := a.NewLabel()
	a.Cmp(x86.R(x86.RDX), x86.I(0))
	a.Jcc(x86.CondE, done)
	a.Push(x86.R(x86.RDI))
	SysRead(a)
	a.Pop(x86.R(x86.RDI))
	a.Cmp(x86.R(x86.RAX), x86.I(0))
	a.Jcc(x86.CondE, eof)
	a.Add(x86.R(x86.RSI), x86.R(x86.RAX))
	a.Sub(x86.R(x86.RDX), x86.R(x86.RAX))
	a.Jmp(top)
	a.Bind(done)
	a.Mov(x86.R(x86.RAX), x86.I(1))
	a.Jmp(out)
	a.Bind(eof)
	a.Mov(x86.R(x86.RAX), x86.I(0))
	a.Bind(out)
}
