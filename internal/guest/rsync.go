package guest

import (
	"ptlsim/internal/kern"
	"ptlsim/internal/x86"
)

// This file implements the paper's benchmark workload as guest x86-64
// programs: a genuine rsync delta-transfer protocol (rolling checksum +
// strong hash block matching, literal runs compressed with an RLE
// "gzip" stage) between a client and server process, tunneled through
// stream-cipher relay processes standing in for ssh/sshd, over
// checksummed loopback "TCP" socket pipes. The protocol is phase
// structured exactly like rsync: per file, the server sends its block
// signature table, the client slides a window over its new copy
// emitting COPY/LITERAL tokens, and the server reconstructs and
// acknowledges with a strong checksum of the rebuilt file.

// Pipe assignments (indexes into the kernel pipe table).
const (
	PipeClientUp   = 0 // client -> upEnc (plaintext)
	PipeDownClient = 1 // downDec -> client (plaintext)
	PipeUpWire     = 2 // upEnc -> upDec ("TCP", ciphered)
	PipeDownWire   = 3 // downEnc -> downDec ("TCP", ciphered)
	PipeUpServer   = 4 // upDec -> server (plaintext)
	PipeServerDown = 5 // server -> downEnc (plaintext)
)

// Token types in the delta stream.
const (
	tokCopy = 1
	tokLit  = 2
	tokEOF  = 3
)

// Workspace offsets from the per-process workspace base (which sits
// after the corpus in the data region, page aligned).
const (
	wsBlockTab = 0x0000 // client: received block table; server: out file
	wsSlotTab  = 0x2000 // client: 1024-entry hash slot table
	wsFrame    = 0x6000 // frame buffer: [len][payload...]
	wsRLE      = 0x8000 // RLE staging
	wsOut      = 0xA000 // server: reconstructed file buffer
	wsSize     = 0xA000 + 0x20000
)

// litRunCap flushes literal runs at this size (fits a frame easily).
const litRunCap = 1024

// wsBase returns the workspace virtual address for a corpus size.
func wsBase(cs CorpusSpec) uint64 {
	corpus := uint64(cs.NFiles * cs.FileSize)
	return kern.UserDataVA + (corpus+0xFFF)&^uint64(0xFFF) + 0x1000
}

// dataPages returns the DataPages needed for corpus + workspace.
func dataPages(cs CorpusSpec) int {
	end := wsBase(cs) + wsSize - kern.UserDataVA
	return int((end + 0xFFF) / 0x1000)
}

// --- shared emitters -------------------------------------------------

// emitFNV64 defines fnv64(rdi=buf, rsi=len) -> rax. Clobbers rdi, rsi,
// rcx, rdx.
func emitFNV64(a *x86.Assembler) x86.Label {
	return a.Func(func() {
		a.Mov(x86.R(x86.RAX), x86.I(-3750763034362895579)) // 0xcbf29ce484222325
		a.Mov(x86.R(x86.RDX), x86.I(0x100000001b3))
		top := a.Mark()
		done := a.NewLabel()
		a.Cmp(x86.R(x86.RSI), x86.I(0))
		a.Jcc(x86.CondE, done)
		a.Movzx(x86.RCX, x86.M(x86.RDI, 0), 1)
		a.Xor(x86.R(x86.RAX), x86.R(x86.RCX))
		a.Imul(x86.RAX, x86.R(x86.RDX))
		a.Inc(x86.R(x86.RDI))
		a.Dec(x86.R(x86.RSI))
		a.Jmp(top)
		a.Bind(done)
		a.Ret()
	})
}

// emitRollBlock defines rollblock(rdi=buf) -> rax=a, rdx=b over one
// BlockSize block. Clobbers rcx, rsi, r8.
func emitRollBlock(a *x86.Assembler) x86.Label {
	return a.Func(func() {
		a.Mov(x86.R(x86.RAX), x86.I(0)) // a
		a.Mov(x86.R(x86.RDX), x86.I(0)) // b
		a.Mov(x86.R(x86.RCX), x86.I(BlockSize))
		top := a.Mark()
		a.Movzx(x86.RSI, x86.M(x86.RDI, 0), 1)
		a.Add(x86.R(x86.RAX), x86.R(x86.RSI))
		// b += weight * byte, weight = rcx (counts B..1)
		a.Mov(x86.R(x86.R8), x86.R(x86.RCX))
		a.Imul(x86.R8, x86.R(x86.RSI))
		a.Add(x86.R(x86.RDX), x86.R(x86.R8))
		a.Inc(x86.R(x86.RDI))
		a.Dec(x86.R(x86.RCX))
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		a.Jcc(x86.CondNE, top)
		a.Ret()
	})
}

// emitRecvFrame defines recvframe(rdi=pipe, rsi=dst) -> rax=payload len.
// dst receives [len][payload]. Clobbers rcx, rdx, r8, r11.
func emitRecvFrame(a *x86.Assembler) x86.Label {
	return a.Func(func() {
		a.Push(x86.R(x86.RBX))
		a.Mov(x86.R(x86.RBX), x86.R(x86.RSI)) // dst
		a.Push(x86.R(x86.RDI))
		// Read the 8-byte length.
		a.Mov(x86.R(x86.RDX), x86.I(8))
		ReadFull(a)
		a.Pop(x86.R(x86.RDI))
		// len
		a.Mov(x86.R(x86.R8), x86.M(x86.RBX, 0))
		done := a.NewLabel()
		a.Cmp(x86.R(x86.R8), x86.I(0))
		a.Jcc(x86.CondE, done)
		a.Lea(x86.RSI, x86.M(x86.RBX, 8))
		a.Mov(x86.R(x86.RDX), x86.R(x86.R8))
		ReadFull(a)
		a.Bind(done)
		a.Mov(x86.R(x86.RAX), x86.M(x86.RBX, 0))
		a.Pop(x86.R(x86.RBX))
		a.Ret()
	})
}

// emitSendFrame defines sendframe(rdi=pipe, rsi=frame) where frame is
// [len][payload]; writes len+8 bytes. Clobbers rax, rcx, rdx, r11.
func emitSendFrame(a *x86.Assembler) x86.Label {
	return a.Func(func() {
		a.Mov(x86.R(x86.RDX), x86.M(x86.RSI, 0))
		a.Add(x86.R(x86.RDX), x86.I(8))
		WriteAll(a)
		a.Ret()
	})
}

// emitRLEEncode defines rleenc(rdi=src, rsi=len, rdx=dst) -> rax=outlen.
// Runs of >= 4 equal bytes become [0xFE][count][byte] (count <= 255);
// 0xFE itself is escaped as [0xFE][0][0xFE]. Clobbers r8-r11, rcx.
func emitRLEEncode(a *x86.Assembler) x86.Label {
	return a.Func(func() {
		// r8 = src, r9 = end, r10 = dst base, rdx = dst cursor
		a.Mov(x86.R(x86.R8), x86.R(x86.RDI))
		a.Lea(x86.R9, x86.MIdx(x86.RDI, x86.RSI, 1, 0))
		a.Mov(x86.R(x86.R10), x86.R(x86.RDX))
		top := a.Mark()
		done := a.NewLabel()
		a.Cmp(x86.R(x86.R8), x86.R(x86.R9))
		a.Jcc(x86.CondAE, done)
		a.Movzx(x86.RCX, x86.M(x86.R8, 0), 1) // current byte
		// Count the run length (max 255, bounded by end).
		a.Mov(x86.R(x86.R11), x86.I(1))
		runTop := a.Mark()
		runEnd := a.NewLabel()
		a.Cmp(x86.R(x86.R11), x86.I(255))
		a.Jcc(x86.CondAE, runEnd)
		a.Lea(x86.RAX, x86.MIdx(x86.R8, x86.R11, 1, 0))
		a.Cmp(x86.R(x86.RAX), x86.R(x86.R9))
		a.Jcc(x86.CondAE, runEnd)
		a.Movzx(x86.RAX, x86.MIdx(x86.R8, x86.R11, 1, 0), 1)
		a.Cmp(x86.R(x86.RAX), x86.R(x86.RCX))
		a.Jcc(x86.CondNE, runEnd)
		a.Inc(x86.R(x86.R11))
		a.Jmp(runTop)
		a.Bind(runEnd)
		// Escape or run?
		emitRun := a.NewLabel()
		plain := a.NewLabel()
		next := a.NewLabel()
		a.Cmp(x86.R(x86.RCX), x86.I(0xFE))
		a.Jcc(x86.CondE, emitRun) // 0xFE always escaped via run form
		a.Cmp(x86.R(x86.R11), x86.I(4))
		a.Jcc(x86.CondAE, emitRun)
		a.Bind(plain)
		// Copy r11 plain bytes.
		a.Mov(x86.R(x86.RAX), x86.I(0))
		plTop := a.Mark()
		plEnd := a.NewLabel()
		a.Cmp(x86.R(x86.RAX), x86.R(x86.R11))
		a.Jcc(x86.CondAE, plEnd)
		a.Movzx(x86.RSI, x86.MIdx(x86.R8, x86.RAX, 1, 0), 1)
		a.Movb(x86.M(x86.RDX, 0), x86.R(x86.RSI))
		a.Inc(x86.R(x86.RDX))
		a.Inc(x86.R(x86.RAX))
		a.Jmp(plTop)
		a.Bind(plEnd)
		a.Jmp(next)
		a.Bind(emitRun)
		// [0xFE][count][byte]; count 0 encodes a literal 0xFE.
		a.Movb(x86.M(x86.RDX, 0), x86.I(0xFE))
		a.Cmp(x86.R(x86.RCX), x86.I(0xFE))
		isEsc := a.NewLabel()
		notEsc := a.NewLabel()
		a.Jcc(x86.CondE, isEsc)
		a.Movb(x86.M(x86.RDX, 1), x86.R(x86.R11))
		a.Movb(x86.M(x86.RDX, 2), x86.R(x86.RCX))
		a.Jmp(notEsc)
		a.Bind(isEsc)
		a.Mov(x86.R(x86.R11), x86.I(1)) // consume one 0xFE
		a.Movb(x86.M(x86.RDX, 1), x86.I(0))
		a.Movb(x86.M(x86.RDX, 2), x86.I(0xFE))
		a.Bind(notEsc)
		a.Add(x86.R(x86.RDX), x86.I(3))
		a.Bind(next)
		a.Add(x86.R(x86.R8), x86.R(x86.R11))
		a.Jmp(top)
		a.Bind(done)
		a.Mov(x86.R(x86.RAX), x86.R(x86.RDX))
		a.Sub(x86.R(x86.RAX), x86.R(x86.R10))
		a.Ret()
	})
}

// emitRLEDecode defines rledec(rdi=src, rsi=len, rdx=dst) -> rax=outlen.
func emitRLEDecode(a *x86.Assembler) x86.Label {
	return a.Func(func() {
		a.Mov(x86.R(x86.R8), x86.R(x86.RDI))
		a.Lea(x86.R9, x86.MIdx(x86.RDI, x86.RSI, 1, 0))
		a.Mov(x86.R(x86.R10), x86.R(x86.RDX))
		top := a.Mark()
		done := a.NewLabel()
		a.Cmp(x86.R(x86.R8), x86.R(x86.R9))
		a.Jcc(x86.CondAE, done)
		a.Movzx(x86.RCX, x86.M(x86.R8, 0), 1)
		run := a.NewLabel()
		next := a.NewLabel()
		a.Cmp(x86.R(x86.RCX), x86.I(0xFE))
		a.Jcc(x86.CondE, run)
		a.Movb(x86.M(x86.RDX, 0), x86.R(x86.RCX))
		a.Inc(x86.R(x86.RDX))
		a.Inc(x86.R(x86.R8))
		a.Jmp(next)
		a.Bind(run)
		a.Movzx(x86.RCX, x86.M(x86.R8, 1), 1) // count
		a.Movzx(x86.R11, x86.M(x86.R8, 2), 1) // byte
		a.Add(x86.R(x86.R8), x86.I(3))
		esc := a.NewLabel()
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		a.Jcc(x86.CondE, esc)
		runTop := a.Mark()
		a.Movb(x86.M(x86.RDX, 0), x86.R(x86.R11))
		a.Inc(x86.R(x86.RDX))
		a.Dec(x86.R(x86.RCX))
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		a.Jcc(x86.CondNE, runTop)
		a.Jmp(next)
		a.Bind(esc)
		a.Movb(x86.M(x86.RDX, 0), x86.I(0xFE))
		a.Inc(x86.R(x86.RDX))
		a.Bind(next)
		a.Jmp(top)
		a.Bind(done)
		a.Mov(x86.R(x86.RAX), x86.R(x86.RDX))
		a.Sub(x86.R(x86.RAX), x86.R(x86.R10))
		a.Ret()
	})
}

// --- cipher relay ----------------------------------------------------

// CipherRelay builds the "ssh" stream-cipher relay: it reads frames
// from arg0, XORs the payload with an xorshift64 keystream seeded by
// arg2, and forwards to arg1, exiting after relaying a zero frame.
func CipherRelay() Prog {
	return Prog{Name: "ssh-relay", Body: func(a *x86.Assembler) {
		fb := int64(wsBase(CorpusSpec{NFiles: 0, FileSize: 0})) // no corpus: ws right at data base
		// r12 = in pipe, r13 = out pipe, r14 = keystream state
		a.Mov(x86.R(x86.R12), x86.R(x86.RDI))
		a.Mov(x86.R(x86.R13), x86.R(x86.RSI))
		a.Mov(x86.R(x86.R14), x86.R(x86.RDX))

		recvFrame := a.NewLabel()
		sendFrame := a.NewLabel()
		mainEntry := a.NewLabel()
		a.Jmp(mainEntry)
		a.Bind(recvFrame)
		emitRecvFrameBody(a)
		a.Bind(sendFrame)
		emitSendFrameBody(a)

		a.Bind(mainEntry)
		loop := a.Mark()
		a.Mov(x86.R(x86.RDI), x86.R(x86.R12))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(recvFrame)
		a.Mov(x86.R(x86.R15), x86.R(x86.RAX)) // payload len
		// XOR payload with keystream: full 8-byte words then tail.
		a.Mov(x86.R(x86.RBX), x86.I(fb+8)) // cursor
		a.Mov(x86.R(x86.RBP), x86.R(x86.R15))
		a.Shr(x86.R(x86.RBP), x86.I(3)) // words
		wordTop := a.Mark()
		wordEnd := a.NewLabel()
		a.Cmp(x86.R(x86.RBP), x86.I(0))
		a.Jcc(x86.CondE, wordEnd)
		emitXorShift(a, x86.R14)
		a.Xor(x86.M(x86.RBX, 0), x86.R(x86.R14))
		a.Add(x86.R(x86.RBX), x86.I(8))
		a.Dec(x86.R(x86.RBP))
		a.Jmp(wordTop)
		a.Bind(wordEnd)
		a.Mov(x86.R(x86.RBP), x86.R(x86.R15))
		a.And(x86.R(x86.RBP), x86.I(7)) // tail bytes
		noTail := a.NewLabel()
		a.Cmp(x86.R(x86.RBP), x86.I(0))
		a.Jcc(x86.CondE, noTail)
		emitXorShift(a, x86.R14)
		a.Mov(x86.R(x86.RDX), x86.R(x86.R14))
		tailTop := a.Mark()
		a.Xor(x86.R(x86.RCX), x86.R(x86.RCX))
		a.Movb(x86.R(x86.RCX), x86.R(x86.RDX)) // low byte of keystream
		a.Xor(x86.R(x86.RAX), x86.R(x86.RAX))
		a.Movb(x86.R(x86.RAX), x86.M(x86.RBX, 0))
		a.Xor(x86.R(x86.RAX), x86.R(x86.RCX))
		a.Movb(x86.M(x86.RBX, 0), x86.R(x86.RAX))
		a.Inc(x86.R(x86.RBX))
		a.Shr(x86.R(x86.RDX), x86.I(8))
		a.Dec(x86.R(x86.RBP))
		a.Cmp(x86.R(x86.RBP), x86.I(0))
		a.Jcc(x86.CondNE, tailTop)
		a.Bind(noTail)
		// Forward.
		a.Mov(x86.R(x86.RDI), x86.R(x86.R13))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendFrame)
		// Zero frame terminates the relay.
		a.Cmp(x86.R(x86.R15), x86.I(0))
		a.Jcc(x86.CondNE, loop)
		SysExit(a)
	}}
}

// emitXorShift advances the keystream register in place.
func emitXorShift(a *x86.Assembler, r x86.Reg) {
	a.Mov(x86.R(x86.RCX), x86.R(r))
	a.Shl(x86.R(x86.RCX), x86.I(13))
	a.Xor(x86.R(r), x86.R(x86.RCX))
	a.Mov(x86.R(x86.RCX), x86.R(r))
	a.Shr(x86.R(x86.RCX), x86.I(7))
	a.Xor(x86.R(r), x86.R(x86.RCX))
	a.Mov(x86.R(x86.RCX), x86.R(r))
	a.Shl(x86.R(x86.RCX), x86.I(17))
	a.Xor(x86.R(r), x86.R(x86.RCX))
}

// emitRecvFrameBody / emitSendFrameBody inline the frame helpers as
// plain function bodies ending in Ret (bound to caller labels).
func emitRecvFrameBody(a *x86.Assembler) {
	a.Push(x86.R(x86.RBX))
	a.Mov(x86.R(x86.RBX), x86.R(x86.RSI))
	a.Push(x86.R(x86.RDI))
	a.Mov(x86.R(x86.RDX), x86.I(8))
	ReadFull(a)
	a.Pop(x86.R(x86.RDI))
	a.Mov(x86.R(x86.R8), x86.M(x86.RBX, 0))
	done := a.NewLabel()
	a.Cmp(x86.R(x86.R8), x86.I(0))
	a.Jcc(x86.CondE, done)
	a.Lea(x86.RSI, x86.M(x86.RBX, 8))
	a.Mov(x86.R(x86.RDX), x86.R(x86.R8))
	ReadFull(a)
	a.Bind(done)
	a.Mov(x86.R(x86.RAX), x86.M(x86.RBX, 0))
	a.Pop(x86.R(x86.RBX))
	a.Ret()
}

func emitSendFrameBody(a *x86.Assembler) {
	a.Mov(x86.R(x86.RDX), x86.M(x86.RSI, 0))
	a.Add(x86.R(x86.RDX), x86.I(8))
	WriteAll(a)
	a.Ret()
}

// emitPrintHex emits code writing RAX as 16 hex digits at [RDI],
// advancing RDI. Clobbers rbx, rcx, rdx.
func emitPrintHex(a *x86.Assembler) {
	a.Mov(x86.R(x86.RCX), x86.I(16))
	top := a.Mark()
	a.Mov(x86.R(x86.RDX), x86.R(x86.RAX))
	a.Mov(x86.R(x86.RBX), x86.R(x86.RCX))
	a.Dec(x86.R(x86.RBX))
	a.Shl(x86.R(x86.RBX), x86.I(2))
	a.Push(x86.R(x86.RCX))
	a.Mov(x86.R(x86.RCX), x86.R(x86.RBX))
	a.Shr(x86.R(x86.RDX), x86.R(x86.RCX))
	a.Pop(x86.R(x86.RCX))
	a.And(x86.R(x86.RDX), x86.I(15))
	alpha := a.NewLabel()
	out := a.NewLabel()
	a.Cmp(x86.R(x86.RDX), x86.I(10))
	a.Jcc(x86.CondGE, alpha)
	a.Add(x86.R(x86.RDX), x86.I('0'))
	a.Jmp(out)
	a.Bind(alpha)
	a.Add(x86.R(x86.RDX), x86.I('a'-10))
	a.Bind(out)
	a.Movb(x86.M(x86.RDI, 0), x86.R(x86.RDX))
	a.Inc(x86.R(x86.RDI))
	a.Dec(x86.R(x86.RCX))
	a.Cmp(x86.R(x86.RCX), x86.I(0))
	a.Jcc(x86.CondNE, top)
}
