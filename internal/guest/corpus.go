package guest

import "math/rand"

// CorpusSpec describes the synthetic file set for the rsync benchmark
// (the paper used 6186 text files totalling 48 MB split in two similar
// groups; the sizes here are scaled by configuration).
type CorpusSpec struct {
	NFiles   int
	FileSize int // bytes; must be a multiple of BlockSize
	Seed     int64
	// ChangeFraction is the fraction of blocks mutated between the old
	// (server) and new (client) copies of each file.
	ChangeFraction float64
}

// BlockSize is the rsync block size used by the guest implementation.
const BlockSize = 512

// DefaultCorpus is the bench-scale corpus.
func DefaultCorpus() CorpusSpec {
	return CorpusSpec{NFiles: 8, FileSize: 8192, Seed: 20070425, ChangeFraction: 0.25}
}

// Generate builds the old (server-side) and new (client-side) file
// sets. Files are concatenated; file i occupies [i*FileSize, (i+1)*FileSize).
func (cs CorpusSpec) Generate() (oldData, newData []byte) {
	r := rand.New(rand.NewSource(cs.Seed))
	total := cs.NFiles * cs.FileSize
	oldData = make([]byte, total)
	// Compressible, text-like content: runs of repeated printable
	// bytes (gives the RLE "gzip" stage something to do).
	for i := 0; i < total; {
		run := 1 + r.Intn(24)
		ch := byte('a' + r.Intn(26))
		for j := 0; j < run && i < total; j++ {
			oldData[i] = ch
			i++
		}
	}
	newData = make([]byte, total)
	copy(newData, oldData)
	blocks := cs.FileSize / BlockSize
	for f := 0; f < cs.NFiles; f++ {
		for b := 0; b < blocks; b++ {
			if r.Float64() < cs.ChangeFraction {
				off := f*cs.FileSize + b*BlockSize
				n := 1 + r.Intn(BlockSize)
				for j := 0; j < n; j++ {
					newData[off+j] = byte('A' + r.Intn(26))
				}
			}
		}
	}
	return oldData, newData
}

// fnv64 is the strong hash both sides of the guest protocol use.
func fnv64(data []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range data {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

// ExpectedChecksum computes the value the rsync client prints on
// success: the wrapping sum of per-file FNV-64 hashes of the new data.
func (cs CorpusSpec) ExpectedChecksum(newData []byte) uint64 {
	var sum uint64
	for f := 0; f < cs.NFiles; f++ {
		sum += fnv64(newData[f*cs.FileSize : (f+1)*cs.FileSize])
	}
	return sum
}

// RollingSums computes the (a, b) block checksums exactly as the guest
// assembly does, for tests.
func RollingSums(block []byte) (a, b uint64) {
	n := uint64(len(block))
	for i, by := range block {
		a += uint64(by)
		b += (n - uint64(i)) * uint64(by)
	}
	return a, b
}
