package guest

import (
	"fmt"

	"ptlsim/internal/kern"
	"ptlsim/internal/x86"
)

// RsyncServer builds the rsync server/receiver: per file it computes
// and sends the block signature table over its old copy, then applies
// the client's COPY/LITERAL token stream to reconstruct the new file,
// acknowledging each file with a strong checksum of the result.
func RsyncServer(cs CorpusSpec) Prog {
	ws := int64(wsBase(cs))
	fb := ws + wsFrame
	out := ws + wsOut
	fs := int64(cs.FileSize)
	blocks := int64(cs.FileSize / BlockSize)

	return Prog{Name: "rsync-server", Body: func(a *x86.Assembler) {
		skip := a.NewLabel()
		a.Jmp(skip)
		fnv := emitFNV64(a)
		roll := emitRollBlock(a)
		rledec := emitRLEDecode(a)
		recvF := emitRecvFrame(a)
		sendF := emitSendFrame(a)

		a.Bind(skip)
		// sshd startup delay.
		a.Mov(x86.R(x86.RDI), x86.I(1))
		SysSleep(a)
		// Handshake: HELO in, config out.
		a.Mov(x86.R(x86.RDI), x86.I(PipeUpServer))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(recvF)
		a.Mov(x86.R(x86.RDI), x86.I(fb))
		a.Mov(x86.M(x86.RDI, 0), x86.I(16))
		a.Mov(x86.M(x86.RDI, 8), x86.I(int64(cs.NFiles)))
		a.Mov(x86.M(x86.RDI, 16), x86.R(x86.RAX)) // echo length (unused)
		a.Mov(x86.R(x86.RDI), x86.I(PipeServerDown))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendF)

		a.Mov(x86.R(x86.RBX), x86.I(0)) // file index
		fileLoop := a.Mark()
		allDone := a.NewLabel()
		a.Cmp(x86.R(x86.RBX), x86.I(int64(cs.NFiles)))
		a.Jcc(x86.CondGE, allDone)
		a.Mov(x86.R(x86.RBP), x86.R(x86.RBX))
		a.Imul3(x86.RBP, x86.R(x86.RBP), fs)
		a.Add(x86.R(x86.RBP), x86.I(kern.UserDataVA))

		// Build and send the signature table (this is the "build file
		// list" phase: CPU + memory heavy).
		a.Mov(x86.R(x86.RDI), x86.I(fb))
		a.Mov(x86.M(x86.RDI, 0), x86.I(blocks*16))
		a.Mov(x86.R(x86.R13), x86.I(0)) // block k
		sigTop := a.Mark()
		sigEnd := a.NewLabel()
		a.Cmp(x86.R(x86.R13), x86.I(blocks))
		a.Jcc(x86.CondGE, sigEnd)
		a.Mov(x86.R(x86.RDI), x86.R(x86.R13))
		a.Shl(x86.R(x86.RDI), x86.I(9))
		a.Add(x86.R(x86.RDI), x86.R(x86.RBP))
		a.Push(x86.R(x86.RDI))
		a.Call(roll) // rax = a, rdx = b
		a.Shl(x86.R(x86.RDX), x86.I(32))
		a.Or(x86.R(x86.RAX), x86.R(x86.RDX))
		// entry address = fb + 8 + k*16
		a.Mov(x86.R(x86.RSI), x86.R(x86.R13))
		a.Shl(x86.R(x86.RSI), x86.I(4))
		a.Add(x86.R(x86.RSI), x86.I(fb+8))
		a.Mov(x86.M(x86.RSI, 0), x86.R(x86.RAX))
		a.Pop(x86.R(x86.RDI))
		a.Push(x86.R(x86.RSI))
		a.Mov(x86.R(x86.RSI), x86.I(BlockSize))
		a.Call(fnv)
		a.Pop(x86.R(x86.RSI))
		a.Mov(x86.M(x86.RSI, 8), x86.R(x86.RAX))
		a.Inc(x86.R(x86.R13))
		a.Jmp(sigTop)
		a.Bind(sigEnd)
		a.Mov(x86.R(x86.RDI), x86.I(PipeServerDown))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendF)

		// Apply the token stream.
		a.Mov(x86.R(x86.R12), x86.I(0)) // outpos
		tokTop := a.Mark()
		tokEOFL := a.NewLabel()
		a.Mov(x86.R(x86.RDI), x86.I(PipeUpServer))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(recvF)
		a.Mov(x86.R(x86.R13), x86.R(x86.RAX)) // payload len
		a.Mov(x86.R(x86.RDX), x86.I(fb))
		a.Mov(x86.R(x86.RCX), x86.M(x86.RDX, 8)) // type
		isCopy := a.NewLabel()
		isLit := a.NewLabel()
		a.Cmp(x86.R(x86.RCX), x86.I(tokCopy))
		a.Jcc(x86.CondE, isCopy)
		a.Cmp(x86.R(x86.RCX), x86.I(tokLit))
		a.Jcc(x86.CondE, isLit)
		a.Jmp(tokEOFL)

		a.Bind(isCopy)
		a.Mov(x86.R(x86.RSI), x86.M(x86.RDX, 16)) // block idx
		a.Shl(x86.R(x86.RSI), x86.I(9))
		a.Add(x86.R(x86.RSI), x86.R(x86.RBP))
		a.Mov(x86.R(x86.RDI), x86.I(out))
		a.Add(x86.R(x86.RDI), x86.R(x86.R12))
		a.Mov(x86.R(x86.RCX), x86.I(BlockSize))
		a.RepMovs(1)
		a.Add(x86.R(x86.R12), x86.I(BlockSize))
		a.Jmp(tokTop)

		a.Bind(isLit)
		// payload: [type][rawlen][rle...]; rle length = len-16.
		a.Lea(x86.RDI, x86.M(x86.RDX, 24))
		a.Mov(x86.R(x86.RSI), x86.R(x86.R13))
		a.Sub(x86.R(x86.RSI), x86.I(16))
		a.Mov(x86.R(x86.RDX), x86.I(out))
		a.Add(x86.R(x86.RDX), x86.R(x86.R12))
		a.Call(rledec)
		a.Add(x86.R(x86.R12), x86.R(x86.RAX))
		a.Jmp(tokTop)

		a.Bind(tokEOFL)
		// Checksum the reconstruction and ack.
		a.Mov(x86.R(x86.RDI), x86.I(out))
		a.Mov(x86.R(x86.RSI), x86.I(fs))
		a.Call(fnv)
		a.Mov(x86.R(x86.RDI), x86.I(fb))
		a.Mov(x86.M(x86.RDI, 0), x86.I(8))
		a.Mov(x86.M(x86.RDI, 8), x86.R(x86.RAX))
		a.Mov(x86.R(x86.RDI), x86.I(PipeServerDown))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendF)
		a.Inc(x86.R(x86.RBX))
		a.Jmp(fileLoop)

		a.Bind(allDone)
		// Read the zero frame, forward shutdown down the stack.
		a.Mov(x86.R(x86.RDI), x86.I(PipeUpServer))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(recvF)
		a.Mov(x86.R(x86.RDI), x86.I(fb))
		a.Mov(x86.M(x86.RDI, 0), x86.I(0))
		a.Mov(x86.R(x86.RDI), x86.I(PipeServerDown))
		a.Mov(x86.R(x86.RSI), x86.I(fb))
		a.Call(sendF)
		SysExit(a)
	}}
}

// RsyncBenchmark assembles the full 6-process benchmark domain spec:
// client and server rsync processes plus four cipher relay processes
// (encrypt/decrypt on each direction — the select()-less equivalent of
// the paper's ssh/sshd pair), wired through plaintext pipes at the
// edges and checksummed loopback "TCP" socket pipes in the middle.
func RsyncBenchmark(cs CorpusSpec, timerPeriod uint64) (kern.BuildSpec, error) {
	if cs.FileSize%BlockSize != 0 {
		return kern.BuildSpec{}, fmt.Errorf("guest: file size %d not a multiple of %d", cs.FileSize, BlockSize)
	}
	if cs.FileSize/BlockSize > 128 {
		return kern.BuildSpec{}, fmt.Errorf("guest: too many blocks per file (max 128)")
	}
	oldData, newData := cs.Generate()

	client, err := RsyncClient(cs).Build()
	if err != nil {
		return kern.BuildSpec{}, fmt.Errorf("guest: client: %w", err)
	}
	server, err := RsyncServer(cs).Build()
	if err != nil {
		return kern.BuildSpec{}, fmt.Errorf("guest: server: %w", err)
	}
	relay, err := CipherRelay().Build()
	if err != nil {
		return kern.BuildSpec{}, fmt.Errorf("guest: relay: %w", err)
	}

	const seedUp, seedDown = 0x5DEECE66D, 0x2545F4914F6CDD1D
	dp := dataPages(cs)
	return kern.BuildSpec{
		Procs: []kern.ProcSpec{
			{Name: "rsync", Code: client, Data: newData, DataPages: dp},
			{Name: "rsync-server", Code: server, Data: oldData, DataPages: dp},
			{Name: "ssh-enc", Code: relay, Args: [3]uint64{PipeClientUp, PipeUpWire, seedUp}, DataPages: 4},
			{Name: "sshd-dec", Code: relay, Args: [3]uint64{PipeUpWire, PipeUpServer, seedUp}, DataPages: 4},
			{Name: "sshd-enc", Code: relay, Args: [3]uint64{PipeServerDown, PipeDownWire, seedDown}, DataPages: 4},
			{Name: "ssh-dec", Code: relay, Args: [3]uint64{PipeDownWire, PipeDownClient, seedDown}, DataPages: 4},
		},
		Pipes: []kern.PipeSpec{
			{},             // 0 client -> upEnc
			{},             // 1 downDec -> client
			{Socket: true}, // 2 wire up
			{Socket: true}, // 3 wire down
			{},             // 4 upDec -> server
			{},             // 5 server -> downEnc
		},
		TimerPeriod: timerPeriod,
	}, nil
}
