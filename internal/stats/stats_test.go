package stats

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	tr := NewTree()
	c := tr.Counter("a.b")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if tr.Counter("a.b") != c {
		t.Fatal("Counter should return the same handle for the same path")
	}
	c.Set(7)
	if got := c.Value(); got != 7 {
		t.Fatalf("after Set, Value = %d, want 7", got)
	}
}

func TestLookupMissing(t *testing.T) {
	tr := NewTree()
	if tr.Lookup("nope") != nil {
		t.Fatal("Lookup of unregistered path should be nil")
	}
	tr.Counter("yes")
	if tr.Lookup("yes") == nil {
		t.Fatal("Lookup of registered path should be non-nil")
	}
}

func TestPathsSorted(t *testing.T) {
	tr := NewTree()
	tr.Counter("z")
	tr.Counter("a")
	tr.Counter("m")
	got := tr.Paths()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("Paths = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Paths = %v, want %v", got, want)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tr := NewTree()
	c := tr.Counter("x")
	c.Add(5)
	s := tr.Snapshot(100)
	c.Add(5)
	if s.Get("x") != 5 {
		t.Fatalf("snapshot mutated: got %d, want 5", s.Get("x"))
	}
	if s.Cycle != 100 {
		t.Fatalf("Cycle = %d, want 100", s.Cycle)
	}
}

func TestSubBasic(t *testing.T) {
	tr := NewTree()
	c := tr.Counter("x")
	c.Add(10)
	a := tr.Snapshot(10)
	c.Add(32)
	b := tr.Snapshot(50)
	d := Sub(b, a)
	if d.Get("x") != 32 {
		t.Fatalf("delta = %d, want 32", d.Get("x"))
	}
	if d.Cycle != 40 {
		t.Fatalf("delta cycle = %d, want 40", d.Cycle)
	}
}

func TestSubMissingKeys(t *testing.T) {
	a := Snapshot{Cycle: 0, Values: map[string]int64{"old": 3}}
	b := Snapshot{Cycle: 10, Values: map[string]int64{"new": 7}}
	d := Sub(b, a)
	if d.Get("new") != 7 || d.Get("old") != -3 {
		t.Fatalf("delta = %v", d.Values)
	}
}

// Snapshot subtraction must compose: (s2-s1)+(s1-s0) == s2-s0 for every
// counter. This is the invariant PTLstats relies on when stripping
// warmup intervals.
func TestSnapshotAlgebraProperty(t *testing.T) {
	f := func(v0, d1, d2 int32) bool {
		tr := NewTree()
		c := tr.Counter("k")
		c.Add(int64(v0))
		s0 := tr.Snapshot(0)
		c.Add(int64(d1))
		s1 := tr.Snapshot(1)
		c.Add(int64(d2))
		s2 := tr.Snapshot(2)
		lhs := Sub(s2, s1).Get("k") + Sub(s1, s0).Get("k")
		rhs := Sub(s2, s0).Get("k")
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTableFilters(t *testing.T) {
	tr := NewTree()
	tr.Counter("ooo.commit").Add(1)
	tr.Counter("cache.l1d.miss").Add(2)
	var buf bytes.Buffer
	if err := tr.Snapshot(0).WriteTable(&buf, "cache."); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cache.l1d.miss") || strings.Contains(out, "ooo.commit") {
		t.Fatalf("filtered table wrong:\n%s", out)
	}
}

func TestCollectorIntervals(t *testing.T) {
	tr := NewTree()
	c := tr.Counter("ev")
	col := NewCollector(tr, 100)
	for cyc := uint64(1); cyc <= 350; cyc++ {
		c.Inc()
		col.Tick(cyc)
	}
	s := col.Finish(350)
	if len(s.Snapshots) != 4 {
		t.Fatalf("snapshots = %d, want 4 (100,200,300,350)", len(s.Snapshots))
	}
	if s.Snapshots[0].Cycle != 100 || s.Snapshots[3].Cycle != 350 {
		t.Fatalf("cycles = %d..%d", s.Snapshots[0].Cycle, s.Snapshots[3].Cycle)
	}
	deltas := s.Deltas()
	if deltas[0].Get("ev") != 100 || deltas[1].Get("ev") != 100 || deltas[3].Get("ev") != 50 {
		t.Fatalf("deltas wrong: %d %d %d", deltas[0].Get("ev"), deltas[1].Get("ev"), deltas[3].Get("ev"))
	}
}

func TestCollectorSkippedCycles(t *testing.T) {
	tr := NewTree()
	col := NewCollector(tr, 10)
	col.Tick(35) // jumped over 3 boundaries at once
	s := col.Finish(35)
	if len(s.Snapshots) != 4 {
		t.Fatalf("snapshots = %d, want 4", len(s.Snapshots))
	}
}

func TestCollectorFinishNoDuplicate(t *testing.T) {
	tr := NewTree()
	col := NewCollector(tr, 10)
	col.Tick(20)
	s := col.Finish(20)
	if len(s.Snapshots) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(s.Snapshots))
	}
}

func TestRateColumn(t *testing.T) {
	col := Rate("miss%", "miss", "acc")
	d := Snapshot{Values: map[string]int64{"miss": 3, "acc": 60}}
	if got := col.Value(d); got != 5 {
		t.Fatalf("rate = %v, want 5", got)
	}
	empty := Snapshot{Values: map[string]int64{}}
	if got := col.Value(empty); got != 0 {
		t.Fatalf("rate on empty = %v, want 0", got)
	}
}

func TestWriteSeries(t *testing.T) {
	tr := NewTree()
	m := tr.Counter("miss")
	a := tr.Counter("acc")
	col := NewCollector(tr, 100)
	for cyc := uint64(1); cyc <= 200; cyc++ {
		a.Inc()
		if cyc%10 == 0 {
			m.Inc()
		}
		col.Tick(cyc)
	}
	s := col.Finish(200)
	var buf bytes.Buffer
	if err := s.WriteSeries(&buf, Rate("miss%", "miss", "acc")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10.000") {
		t.Fatalf("series output missing 10%% rate:\n%s", buf.String())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("occ", 4, 10)
	for _, v := range []int64{0, 5, 10, 15, 39, 40, 1000, -2} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Bucket(0) != 3 { // 0, 5, -2 (clamped)
		t.Fatalf("bucket0 = %d, want 3", h.Bucket(0))
	}
	if h.Bucket(1) != 2 || h.Bucket(3) != 1 {
		t.Fatalf("bucket1 = %d bucket3 = %d", h.Bucket(1), h.Bucket(3))
	}
	if h.Bucket(4) != 2 { // overflow: 40, 1000
		t.Fatalf("overflow = %d, want 2", h.Bucket(4))
	}
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "8 samples") {
		t.Fatalf("histogram render:\n%s", buf.String())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram("m", 2, 1)
	if h.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	h.Observe(2)
	h.Observe(4)
	if h.Mean() != 3 {
		t.Fatalf("mean = %v, want 3", h.Mean())
	}
}
