package stats

import (
	"fmt"
	"io"
	"strings"
)

// Series is an ordered sequence of snapshots taken at regular cycle
// intervals, the raw material behind the paper's time-lapse plots
// (Figures 2 and 3, one snapshot per 2.2M cycles).
type Series struct {
	Interval  uint64
	Snapshots []Snapshot
}

// Collector periodically snapshots a Tree as simulation advances.
type Collector struct {
	tree     *Tree
	interval uint64
	next     uint64
	series   Series
}

// NewCollector returns a collector that snapshots tree every interval
// cycles, beginning at cycle interval (cycle 0 state is implicit).
func NewCollector(tree *Tree, interval uint64) *Collector {
	if interval == 0 {
		interval = 1
	}
	return &Collector{
		tree:     tree,
		interval: interval,
		next:     interval,
		series:   Series{Interval: interval},
	}
}

// Tick informs the collector that simulation has reached cycle; it takes
// any snapshots that have become due. Safe to call with non-consecutive
// cycles (the simulator may advance several cycles between calls).
func (c *Collector) Tick(cycle uint64) {
	for cycle >= c.next {
		c.series.Snapshots = append(c.series.Snapshots, c.tree.Snapshot(c.next))
		c.next += c.interval
	}
}

// Finish takes a final snapshot at cycle (if beyond the last periodic
// one) and returns the accumulated series.
func (c *Collector) Finish(cycle uint64) Series {
	if n := len(c.series.Snapshots); n == 0 || c.series.Snapshots[n-1].Cycle < cycle {
		c.series.Snapshots = append(c.series.Snapshots, c.tree.Snapshot(cycle))
	}
	return c.series
}

// Deltas converts the cumulative series into per-interval deltas, so
// each returned snapshot holds the events that occurred within its
// interval only. The first interval is measured from zero.
func (s Series) Deltas() []Snapshot {
	out := make([]Snapshot, len(s.Snapshots))
	prev := Snapshot{Values: map[string]int64{}}
	for i, snap := range s.Snapshots {
		d := Sub(snap, prev)
		d.Cycle = snap.Cycle
		out[i] = d
		prev = snap
	}
	return out
}

// Column describes one output column of a rendered series: a display
// name and a function deriving the column value from an interval delta.
type Column struct {
	Name  string
	Value func(Snapshot) float64
}

// Rate returns a Column computing 100*num/den from interval deltas, the
// shape of every curve in Figures 2 and 3 (e.g. mispredicted branches as
// a percentage of all conditional branches per snapshot interval).
func Rate(name, num, den string) Column {
	return Column{Name: name, Value: func(d Snapshot) float64 {
		n, m := d.Get(num), d.Get(den)
		if m == 0 {
			return 0
		}
		return 100 * float64(n) / float64(m)
	}}
}

// WriteSeries renders per-interval values of the given columns as a
// text table: one row per snapshot, first column the snapshot ID.
func (s Series) WriteSeries(w io.Writer, cols ...Column) error {
	deltas := s.Deltas()
	hdr := make([]string, 0, len(cols)+2)
	hdr = append(hdr, fmt.Sprintf("%8s", "snapshot"), fmt.Sprintf("%12s", "cycle"))
	for _, c := range cols {
		hdr = append(hdr, fmt.Sprintf("%12s", c.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(hdr, " ")); err != nil {
		return err
	}
	for i, d := range deltas {
		row := make([]string, 0, len(cols)+2)
		row = append(row, fmt.Sprintf("%8d", i), fmt.Sprintf("%12d", d.Cycle))
		for _, c := range cols {
			row = append(row, fmt.Sprintf("%12.3f", c.Value(d)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, " ")); err != nil {
			return err
		}
	}
	return nil
}
