package stats

import (
	"fmt"
	"io"
)

// Histogram is a fixed-bucket distribution statistic (e.g. issue-queue
// occupancy or store-forward distance). Values beyond the last bucket
// accumulate in an overflow bucket.
type Histogram struct {
	name    string
	bucketW int64
	buckets []int64
	over    int64
	total   int64
	sum     int64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(name string, n int, width int64) *Histogram {
	if n <= 0 {
		n = 1
	}
	if width <= 0 {
		width = 1
	}
	return &Histogram{name: name, bucketW: width, buckets: make([]int64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.total++
	h.sum += v
	if v < 0 {
		v = 0
	}
	idx := v / h.bucketW
	if idx >= int64(len(h.buckets)) {
		h.over++
		return
	}
	h.buckets[idx]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the arithmetic mean of recorded samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Bucket returns the count in bucket i (and the overflow bucket count
// for i == len).
func (h *Histogram) Bucket(i int) int64 {
	if i == len(h.buckets) {
		return h.over
	}
	return h.buckets[i]
}

// NumBuckets returns the number of regular buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// WriteTo renders the histogram as a text table with percentages.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	var n int64
	k, err := fmt.Fprintf(w, "%s: %d samples, mean %.2f\n", h.name, h.total, h.Mean())
	n += int64(k)
	if err != nil {
		return n, err
	}
	for i, b := range h.buckets {
		pct := 0.0
		if h.total > 0 {
			pct = 100 * float64(b) / float64(h.total)
		}
		k, err = fmt.Fprintf(w, "  [%6d,%6d) %10d %6.2f%%\n", int64(i)*h.bucketW, int64(i+1)*h.bucketW, b, pct)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	if h.over > 0 {
		pct := 100 * float64(h.over) / float64(h.total)
		k, err = fmt.Fprintf(w, "  [%6d,   inf) %10d %6.2f%%\n", int64(len(h.buckets))*h.bucketW, h.over, pct)
		n += int64(k)
	}
	return n, err
}
