// Package stats implements PTLsim's hierarchical statistics subsystem
// (the engine behind the PTLstats tool): a tree of named counters that
// can be snapshotted at any simulated cycle, subtracted to isolate an
// interval, and collected into time-lapse series like the ones plotted
// in Figures 2 and 3 of the paper.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Counter is a single int64 statistic registered in a Tree. Handles are
// stable for the life of the Tree, so hot simulator paths hold a
// *Counter and bump it directly instead of doing a map lookup per event.
type Counter struct {
	v int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Set overwrites the counter value. Used for level-style statistics
// (e.g. occupancy high-water marks) rather than event counts.
func (c *Counter) Set(n int64) { c.v = n }

// Value returns the current counter value.
func (c *Counter) Value() int64 { return c.v }

// Tree is a hierarchical collection of counters addressed by
// dot-separated paths such as "ooo.commit.insns" or
// "external.cycles_in_mode.kernel". The tree itself is not safe for
// concurrent mutation of a single counter, matching the simulator's
// single-threaded cycle loop; registration is guarded so helper
// goroutines (e.g. the monitor) may register lazily.
type Tree struct {
	mu       sync.Mutex
	counters map[string]*Counter
	order    []string
}

// NewTree returns an empty statistics tree.
func NewTree() *Tree {
	return &Tree{counters: make(map[string]*Counter)}
}

// Counter returns the counter registered at path, creating it (at zero)
// on first use.
func (t *Tree) Counter(path string) *Counter {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.counters[path]; ok {
		return c
	}
	c := &Counter{}
	t.counters[path] = c
	t.order = append(t.order, path)
	return c
}

// Lookup returns the counter at path, or nil if none is registered.
func (t *Tree) Lookup(path string) *Counter {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[path]
}

// Paths returns all registered counter paths in sorted order.
func (t *Tree) Paths() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	copy(out, t.order)
	sort.Strings(out)
	return out
}

// Snapshot is a point-in-time copy of every counter in a Tree, stamped
// with the simulated cycle at which it was taken. Snapshots are plain
// values: they remain valid after the tree continues to advance.
type Snapshot struct {
	Cycle  uint64
	Values map[string]int64
}

// Snapshot captures the current value of every registered counter.
func (t *Tree) Snapshot(cycle uint64) Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{Cycle: cycle, Values: make(map[string]int64, len(t.counters))}
	for p, c := range t.counters {
		s.Values[p] = c.v
	}
	return s
}

// Get returns the value recorded for path, or zero if absent.
func (s Snapshot) Get(path string) int64 { return s.Values[path] }

// Sub returns the interval statistics b - a: each counter's growth
// between snapshot a and the later snapshot b. This is the PTLstats
// "subtract snapshots" operation used to strip warmup periods.
func Sub(b, a Snapshot) Snapshot {
	d := Snapshot{Cycle: b.Cycle - a.Cycle, Values: make(map[string]int64, len(b.Values))}
	for p, v := range b.Values {
		d.Values[p] = v - a.Values[p]
	}
	for p, v := range a.Values {
		if _, ok := b.Values[p]; !ok {
			d.Values[p] = -v
		}
	}
	return d
}

// WriteTable renders the snapshot as an aligned two-column text table,
// one row per counter, sorted by path. Rows matching none of the
// prefixes are skipped; an empty prefix list keeps everything.
func (s Snapshot) WriteTable(w io.Writer, prefixes ...string) error {
	paths := make([]string, 0, len(s.Values))
	for p := range s.Values {
		if len(prefixes) == 0 {
			paths = append(paths, p)
			continue
		}
		for _, pre := range prefixes {
			if strings.HasPrefix(p, pre) {
				paths = append(paths, p)
				break
			}
		}
	}
	sort.Strings(paths)
	width := 0
	for _, p := range paths {
		if len(p) > width {
			width = len(p)
		}
	}
	for _, p := range paths {
		if _, err := fmt.Fprintf(w, "%-*s %15d\n", width, p, s.Values[p]); err != nil {
			return err
		}
	}
	return nil
}
