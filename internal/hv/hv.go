// Package hv is the hypervisor substrate: the stand-in for the
// PTLsim-enhanced Xen hypervisor of the paper (§3-§4). It provides
// paravirtualized domains — VCPU contexts, machine memory, MMU
// hypercalls, event channels (the "Xen APIC"), virtual timers keyed to
// the simulated cycle counter, a console, and virtual block/network
// device backends — plus the time-virtualization machinery (virtual
// TSC offsets) that makes native↔simulation switching invisible to the
// guest.
package hv

import (
	"bytes"
	"fmt"

	"ptlsim/internal/mem"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// Hypercall numbers (RAX on entry; result in RAX).
const (
	HcConsoleWrite  = 1  // RDI=buf va, RSI=len
	HcSetTrapEntry  = 2  // RDI=entry rip
	HcSetSyscall    = 3  // RDI=entry rip
	HcStackSwitch   = 4  // RDI=kernel stack top
	HcSetTimer      = 5  // RDI=delta cycles (one shot, channel 0)
	HcEventSend     = 6  // RDI=vcpu, RSI=channel
	HcEventAck      = 7  // returns and clears pending channel mask
	HcNewBasePtr    = 8  // RDI=new cr3 (machine physical address)
	HcMMUUpdate     = 9  // RDI=pte machine address, RSI=value
	HcShutdown      = 10 // RDI=reason
	HcYield         = 11
	HcVCPUUp        = 12 // RDI=vcpu, RSI=entry, RDX=stack
	HcGetVCPUID     = 13
	HcSetPeriodic   = 14 // RDI=period cycles (channel 0)
	HcBlockRead     = 15 // RDI=sector, RSI=buf va, RDX=sector count (channel 2)
	HcBlockWrite    = 16
	HcGetCycles     = 17 // virtual cycle counter
	HcMemoryMap     = 18 // RDI=index: returns reserved MFN for guest allocator
)

// Event channels.
const (
	ChanTimer = 0
	ChanIPI   = 1
	ChanBlock = 2
	NumChans  = 64
)

// Clock is the domain's virtual time source. In simulation mode the
// machine advances it cycle by cycle; in native mode it advances by a
// calibrated cycles-per-instruction rate. Timer events and the virtual
// TSC both derive from it, which is what keeps I/O timing consistent
// under time dilation (paper §4.2).
type Clock struct {
	Cycle uint64
	// Hz is the modeled core frequency (cycles per second), used to
	// convert wall-clock style requests.
	Hz uint64
}

// Domain is one paravirtualized guest domain.
type Domain struct {
	M     *vm.Machine
	VCPUs []*vm.Context
	Clock Clock

	// Event channel state: per-VCPU pending bitmask.
	pending []uint64

	// Timers (per VCPU): one-shot deadline and periodic interval.
	oneshot  []uint64 // 0 = unarmed
	periodic []uint64 // 0 = off
	nextTick []uint64

	// Virtual block device (RAM-backed) with DMA completion latency.
	Disk        []byte
	BlockLat    uint64 // cycles from request to completion event
	pendingDMA  []dmaOp
	// Reserved page pool handed to the guest kernel allocator.
	ReservedMFNs []uint64

	ConsoleBuf bytes.Buffer

	// Shutdown state.
	ShutdownReq    bool
	ShutdownReason uint64

	// Sink, when set, records device events and DMA completions (the
	// paper's interrupt/DMA trace recording, §4.2).
	Sink TraceSink
	// Source, when set, injects recorded events at their original
	// cycles; the domain's own device completions are suppressed so
	// replay is deterministic regardless of simulation speed.
	Source TraceSource

	// Ptlcall command queue (command lists submitted by ptlctl inside
	// the guest, e.g. "-run -stopinsns 10m : -native").
	PtlCommands []string

	// Statistics.
	hypercalls, eventsSent, eventsDelivered *stats.Counter
	timerFires, dmaOps                      *stats.Counter
}

// TraceSink receives device events for trace recording.
type TraceSink interface {
	// RecordDeviceEvent is called when a device (not the timer, which
	// stays cycle-keyed internally) posts an event channel.
	RecordDeviceEvent(cycle uint64, vcpu, ch int)
	// RecordDMAWrite is called with the memory image a DMA transfer
	// deposited into the guest.
	RecordDMAWrite(cycle uint64, vcpu int, bufVA uint64, data []byte)
}

// TraceSource supplies recorded events during replay.
type TraceSource interface {
	// NextBefore returns events due at or before cycle, consuming them.
	NextBefore(cycle uint64) []InjectedEvent
	// NextCycle peeks at the next pending event's cycle (ok=false when
	// the trace is exhausted) so idle skipping can wake for it.
	NextCycle() (uint64, bool)
}

// InjectedEvent is one replayed device event.
type InjectedEvent struct {
	Cycle uint64
	VCPU  int
	Chan  int
	BufVA uint64
	Data  []byte // DMA payload written into guest memory (may be nil)
}

type dmaOp struct {
	vcpu     int
	complete uint64 // cycle at which the event fires
	write    bool
	sector   uint64
	bufVA    uint64
	count    uint64
}

// NewDomain creates a domain with n VCPUs and the given machine memory.
func NewDomain(m *vm.Machine, n int, tree *stats.Tree) *Domain {
	d := &Domain{
		M:        m,
		pending:  make([]uint64, n),
		oneshot:  make([]uint64, n),
		periodic: make([]uint64, n),
		nextTick: make([]uint64, n),
		BlockLat: 50000,
		Clock:    Clock{Hz: 2_200_000_000},

		hypercalls:      tree.Counter("hv.hypercalls"),
		eventsSent:      tree.Counter("hv.events.sent"),
		eventsDelivered: tree.Counter("hv.events.delivered"),
		timerFires:      tree.Counter("hv.timer.fires"),
		dmaOps:          tree.Counter("hv.dma.ops"),
	}
	for i := 0; i < n; i++ {
		ctx := vm.NewContext(m, i)
		if i > 0 {
			ctx.Running = false // APs wait for VCPUUp
		}
		d.VCPUs = append(d.VCPUs, ctx)
	}
	return d
}

// Tick advances domain time bookkeeping to cycle: firing timers and
// completing DMA. The machine loop calls this once per simulated cycle
// (or in larger steps during native mode).
func (d *Domain) Tick(cycle uint64) {
	d.Clock.Cycle = cycle
	for v := range d.VCPUs {
		if t := d.oneshot[v]; t != 0 && cycle >= t {
			d.oneshot[v] = 0
			d.post(v, ChanTimer)
			d.timerFires.Inc()
		}
		if p := d.periodic[v]; p != 0 && cycle >= d.nextTick[v] {
			d.nextTick[v] += p
			d.post(v, ChanTimer)
			d.timerFires.Inc()
		}
	}
	if len(d.pendingDMA) > 0 {
		live := d.pendingDMA[:0]
		for _, op := range d.pendingDMA {
			if cycle >= op.complete {
				d.completeDMA(op)
			} else {
				live = append(live, op)
			}
		}
		d.pendingDMA = live
	}
	if d.Source != nil {
		for _, ev := range d.Source.NextBefore(cycle) {
			if len(ev.Data) > 0 {
				_ = d.VCPUs[ev.VCPU].WriteVirtBytes(ev.BufVA, ev.Data)
			}
			d.post(ev.VCPU, ev.Chan)
		}
	}
}

// NextTimerDeadline returns the earliest pending timer/DMA cycle (0 if
// none), letting the native-mode loop skip idle time deterministically.
func (d *Domain) NextTimerDeadline() uint64 {
	var min uint64
	take := func(t uint64) {
		if t != 0 && (min == 0 || t < min) {
			min = t
		}
	}
	for v := range d.VCPUs {
		take(d.oneshot[v])
		if d.periodic[v] != 0 {
			take(d.nextTick[v])
		}
	}
	for _, op := range d.pendingDMA {
		take(op.complete)
	}
	if d.Source != nil {
		if c, ok := d.Source.NextCycle(); ok {
			take(c)
		}
	}
	return min
}

// post marks an event channel pending and wakes the target VCPU.
func (d *Domain) post(vcpu, ch int) {
	d.pending[vcpu] |= 1 << ch
	d.eventsSent.Inc()
	d.VCPUs[vcpu].Running = true
}

// Post delivers an external (device) event into the domain.
func (d *Domain) Post(vcpu, ch int) { d.post(vcpu, ch) }

// EventPending implements vm.EventSource.
func (d *Domain) EventPending(c *vm.Context) bool {
	return d.pending[c.ID] != 0
}

// ReadTSC implements vm.Hooks: the virtualized timestamp counter.
func (d *Domain) ReadTSC(c *vm.Context) uint64 {
	return d.Clock.Cycle + c.TSCOffset
}

// Cpuid implements vm.Hooks with a minimal identification leaf.
func (d *Domain) Cpuid(c *vm.Context) {
	leaf := c.Regs[uops.RegRAX]
	switch leaf {
	case 0:
		c.Regs[uops.RegRAX] = 1
		c.Regs[uops.RegRBX] = 0x4C545020 // "PTL "
		c.Regs[uops.RegRDX] = 0x6D697357 // "Wsim"
		c.Regs[uops.RegRCX] = 0x2F586E65 // "en/X"
	case 1:
		c.Regs[uops.RegRAX] = 0x0F4A // family/model
		c.Regs[uops.RegRBX] = uint64(len(d.VCPUs)) << 16
		c.Regs[uops.RegRCX] = 0
		c.Regs[uops.RegRDX] = 1 << 25 // sse-ish
	default:
		c.Regs[uops.RegRAX] = 0
		c.Regs[uops.RegRBX] = 0
		c.Regs[uops.RegRCX] = 0
		c.Regs[uops.RegRDX] = 0
	}
}

// Ptlcall implements vm.Hooks: the breakout opcode. RDI points at a
// command list string of RSI bytes (ptlctl); RDI=0 requests a plain
// mode switch recorded as "-switch".
func (d *Domain) Ptlcall(c *vm.Context) {
	va := c.Regs[uops.RegRDI]
	n := c.Regs[uops.RegRSI]
	if va == 0 || n == 0 || n > 4096 {
		d.PtlCommands = append(d.PtlCommands, "-switch")
		return
	}
	buf := make([]byte, n)
	if f := c.ReadVirtBytes(va, buf); f != uops.FaultNone {
		d.PtlCommands = append(d.PtlCommands, "-switch")
		return
	}
	d.PtlCommands = append(d.PtlCommands, string(buf))
}

// TakeCommands drains the queued ptlcall command lists.
func (d *Domain) TakeCommands() []string {
	cmds := d.PtlCommands
	d.PtlCommands = nil
	return cmds
}

// Hypercall implements vm.Hooks: dispatch the paravirt hypercall in
// c's registers.
func (d *Domain) Hypercall(c *vm.Context) uops.Fault {
	d.hypercalls.Inc()
	op := c.Regs[uops.RegRAX]
	a1 := c.Regs[uops.RegRDI]
	a2 := c.Regs[uops.RegRSI]
	a3 := c.Regs[uops.RegRDX]
	ret := uint64(0)
	switch op {
	case HcConsoleWrite:
		if a2 > 65536 {
			a2 = 65536
		}
		buf := make([]byte, a2)
		if f := c.ReadVirtBytes(a1, buf); f != uops.FaultNone {
			return f
		}
		d.ConsoleBuf.Write(buf)
		ret = a2
	case HcSetTrapEntry:
		c.TrapEntry = a1
	case HcSetSyscall:
		c.SyscallEntry = a1
	case HcStackSwitch:
		c.KernelRSP = a1
	case HcSetTimer:
		d.oneshot[c.ID] = d.Clock.Cycle + a1
	case HcSetPeriodic:
		d.periodic[c.ID] = a1
		d.nextTick[c.ID] = d.Clock.Cycle + a1
	case HcEventSend:
		if int(a1) < len(d.VCPUs) && a2 < NumChans {
			d.post(int(a1), int(a2))
		} else {
			ret = ^uint64(0)
		}
	case HcEventAck:
		ret = d.pending[c.ID]
		d.pending[c.ID] = 0
		d.eventsDelivered.Inc()
	case HcNewBasePtr:
		// Xen validates the new base; here presence of the root frame
		// is the invariant we can check.
		if !d.M.PM.Present(a1 >> mem.PageShift) {
			ret = ^uint64(0)
			break
		}
		c.CR3 = a1
		c.FlushGen++
	case HcMMUUpdate:
		// Validate the target is an allocated machine frame (Xen's
		// type checks are far richer; presence is the critical one).
		if !d.M.PM.Present(a1 >> mem.PageShift) {
			ret = ^uint64(0)
			break
		}
		if err := d.M.PM.Write(a1, a2, 8); err != nil {
			ret = ^uint64(0)
		}
		c.FlushGen++
	case HcShutdown:
		d.ShutdownReq = true
		d.ShutdownReason = a1
		for _, v := range d.VCPUs {
			v.Running = false
		}
	case HcYield:
		// Scheduling hint only; a single-domain hypervisor ignores it.
	case HcVCPUUp:
		if int(a1) >= len(d.VCPUs) || int(a1) == c.ID {
			ret = ^uint64(0)
			break
		}
		ap := d.VCPUs[a1]
		ap.RIP = a2
		ap.Regs[uops.RegRSP] = a3
		ap.CR3 = c.CR3
		ap.Kernel = true
		ap.TrapEntry = c.TrapEntry
		ap.SyscallEntry = c.SyscallEntry
		ap.Running = true
	case HcGetVCPUID:
		ret = uint64(c.ID)
	case HcBlockRead, HcBlockWrite:
		if d.Disk == nil {
			ret = ^uint64(0)
			break
		}
		end := (a1 + a3) * 512
		if end > uint64(len(d.Disk)) || a3 == 0 {
			ret = ^uint64(0)
			break
		}
		if d.Source == nil {
			// Normal operation: schedule the DMA and completion event.
			// In replay mode the traced events supply both the data
			// and the interrupt at the recorded cycles.
			d.pendingDMA = append(d.pendingDMA, dmaOp{
				vcpu: c.ID, complete: d.Clock.Cycle + d.BlockLat,
				write: op == HcBlockWrite, sector: a1, bufVA: a2, count: a3,
			})
		}
		d.dmaOps.Inc()
	case HcGetCycles:
		ret = d.Clock.Cycle
	case HcMemoryMap:
		if int(a1) < len(d.ReservedMFNs) {
			ret = d.ReservedMFNs[a1]
		} else {
			ret = ^uint64(0)
		}
	default:
		return uops.FaultGP
	}
	c.Regs[uops.RegRAX] = ret
	return uops.FaultNone
}

// completeDMA copies block data and fires the completion event — the
// deterministic, cycle-keyed interrupt delivery the paper requires for
// repeatable simulation.
func (d *Domain) completeDMA(op dmaOp) {
	c := d.VCPUs[op.vcpu]
	buf := d.Disk[op.sector*512 : (op.sector+op.count)*512]
	if op.write {
		tmp := make([]byte, len(buf))
		if f := c.ReadVirtBytes(op.bufVA, tmp); f == uops.FaultNone {
			copy(buf, tmp)
		}
	} else {
		tmp := make([]byte, len(buf))
		copy(tmp, buf)
		_ = c.WriteVirtBytes(op.bufVA, tmp)
		if d.Sink != nil {
			d.Sink.RecordDMAWrite(d.Clock.Cycle, op.vcpu, op.bufVA, tmp)
		}
	}
	if d.Sink != nil {
		d.Sink.RecordDeviceEvent(d.Clock.Cycle, op.vcpu, ChanBlock)
	}
	d.post(op.vcpu, ChanBlock)
}

// Console returns everything the guest has written to the console.
func (d *Domain) Console() string { return d.ConsoleBuf.String() }

// DomainState is the serializable hypervisor-level state of a domain:
// everything outside guest memory and VCPU contexts that determines
// future behavior — timers, pending events, in-flight DMA, the disk
// image, console output and shutdown state. Trace Sink/Source
// attachments are deliberately excluded (they are external interfaces
// the restoring process must reattach itself).
type DomainState struct {
	ClockCycle uint64
	ClockHz    uint64

	Pending  []uint64
	Oneshot  []uint64
	Periodic []uint64
	NextTick []uint64

	PendingDMA []DMAState

	Disk         []byte
	BlockLat     uint64
	ReservedMFNs []uint64

	Console []byte

	ShutdownReq    bool
	ShutdownReason uint64

	PtlCommands []string
}

// DMAState is one in-flight DMA operation in a DomainState.
type DMAState struct {
	VCPU     int
	Complete uint64
	Write    bool
	Sector   uint64
	BufVA    uint64
	Count    uint64
}

// SaveState captures the domain's hypervisor-level state for a
// checkpoint image. All slices are deep copies.
func (d *Domain) SaveState() DomainState {
	s := DomainState{
		ClockCycle:     d.Clock.Cycle,
		ClockHz:        d.Clock.Hz,
		Pending:        append([]uint64(nil), d.pending...),
		Oneshot:        append([]uint64(nil), d.oneshot...),
		Periodic:       append([]uint64(nil), d.periodic...),
		NextTick:       append([]uint64(nil), d.nextTick...),
		Disk:           append([]byte(nil), d.Disk...),
		BlockLat:       d.BlockLat,
		ReservedMFNs:   append([]uint64(nil), d.ReservedMFNs...),
		Console:        append([]byte(nil), d.ConsoleBuf.Bytes()...),
		ShutdownReq:    d.ShutdownReq,
		ShutdownReason: d.ShutdownReason,
		PtlCommands:    append([]string(nil), d.PtlCommands...),
	}
	for _, op := range d.pendingDMA {
		s.PendingDMA = append(s.PendingDMA, DMAState{
			VCPU: op.vcpu, Complete: op.complete, Write: op.write,
			Sector: op.sector, BufVA: op.bufVA, Count: op.count,
		})
	}
	return s
}

// LoadState restores hypervisor-level state saved by SaveState. Slice
// lengths for per-VCPU state must match the domain's VCPU count (the
// shorter prefix is applied otherwise).
func (d *Domain) LoadState(s DomainState) {
	d.Clock.Cycle = s.ClockCycle
	if s.ClockHz != 0 {
		d.Clock.Hz = s.ClockHz
	}
	copy(d.pending, s.Pending)
	copy(d.oneshot, s.Oneshot)
	copy(d.periodic, s.Periodic)
	copy(d.nextTick, s.NextTick)
	d.pendingDMA = d.pendingDMA[:0]
	for _, op := range s.PendingDMA {
		d.pendingDMA = append(d.pendingDMA, dmaOp{
			vcpu: op.VCPU, complete: op.Complete, write: op.Write,
			sector: op.Sector, bufVA: op.BufVA, count: op.Count,
		})
	}
	d.Disk = append([]byte(nil), s.Disk...)
	if s.BlockLat != 0 {
		d.BlockLat = s.BlockLat
	}
	d.ReservedMFNs = append([]uint64(nil), s.ReservedMFNs...)
	d.ConsoleBuf.Reset()
	d.ConsoleBuf.Write(s.Console)
	d.ShutdownReq = s.ShutdownReq
	d.ShutdownReason = s.ShutdownReason
	d.PtlCommands = append([]string(nil), s.PtlCommands...)
}

// String summarizes the domain.
func (d *Domain) String() string {
	return fmt.Sprintf("domain: %d vcpus, %d pages, cycle %d",
		len(d.VCPUs), d.M.PM.NumPages(), d.Clock.Cycle)
}
